package msg

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// TCPTransport connects np logical processors through a full mesh of TCP
// loopback connections.  Every payload byte crosses a real socket, making
// this the "honest" transport for validating that the runtime's message
// counts and sizes are what the in-process transport reports.
//
// Frame format (little-endian):
//
//	[8 bytes tag] [4 bytes payload length] [8 bytes sender clock bits] [payload]
//
// The tag field is 8 bytes because collective tags grow monotonically and
// never wrap (see TagCollBase).  The sender's rank is established once per
// connection by a 4-byte handshake, not repeated per frame.
type TCPTransport struct {
	np     int
	eps    []*tcpEndpoint
	stats  *Stats
	cost   *CostModel
	tracer *trace.Tracer
	closed atomic.Bool
	conns  []net.Conn // all conns for Close
	mu     sync.Mutex
}

const tcpFrameHeader = 20

// NewTCPTransport builds the mesh on 127.0.0.1 ephemeral ports.
func NewTCPTransport(np int, opts ...Option) (*TCPTransport, error) {
	if np <= 0 {
		return nil, fmt.Errorf("msg: invalid processor count %d", np)
	}
	t := &TCPTransport{np: np, stats: NewStats(np)}
	for _, o := range opts {
		o(&option{cost: &t.cost, tracer: &t.tracer})
	}
	t.eps = make([]*tcpEndpoint, np)
	for i := range t.eps {
		t.eps[i] = &tcpEndpoint{t: t, rank: i, box: newMatcher(), out: make([]*tcpConn, np)}
	}

	// Every rank i < j pair gets one connection: i listens, j dials.
	// All of this happens in-process, so setup is just sequential wiring.
	for i := 0; i < np; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("msg: listen: %w", err)
		}
		addr := ln.Addr().String()
		type dialRes struct {
			j    int
			conn net.Conn
			err  error
		}
		need := np - i - 1
		results := make(chan dialRes, need)
		for j := i + 1; j < np; j++ {
			go func(j int) {
				c, err := net.DialTimeout("tcp", addr, 5*time.Second)
				if err == nil {
					var hdr [4]byte
					PutUint32(hdr[:], 0, uint32(j))
					_, err = c.Write(hdr[:])
				}
				results <- dialRes{j, c, err}
			}(j)
		}
		accepted := make(map[int]net.Conn, need)
		for k := 0; k < need; k++ {
			c, err := ln.Accept()
			if err != nil {
				ln.Close()
				t.Close()
				return nil, fmt.Errorf("msg: accept: %w", err)
			}
			var hdr [4]byte
			if _, err := io.ReadFull(c, hdr[:]); err != nil {
				ln.Close()
				t.Close()
				return nil, fmt.Errorf("msg: handshake: %w", err)
			}
			accepted[int(GetUint32(hdr[:], 0))] = c
		}
		ln.Close()
		for k := 0; k < need; k++ {
			r := <-results
			if r.err != nil {
				t.Close()
				return nil, fmt.Errorf("msg: dial: %w", r.err)
			}
			// rank i's side of the pair is the accepted conn; rank j's
			// side is the dialed conn.
			ci := &tcpConn{conn: accepted[r.j]}
			cj := &tcpConn{conn: r.conn}
			t.eps[i].out[r.j] = ci
			t.eps[r.j].out[i] = cj
			t.mu.Lock()
			t.conns = append(t.conns, accepted[r.j], r.conn)
			t.mu.Unlock()
			go t.readLoop(t.eps[i], r.j, accepted[r.j])
			go t.readLoop(t.eps[r.j], i, r.conn)
		}
	}
	return t, nil
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

type tcpEndpoint struct {
	t    *TCPTransport
	rank int
	box  *matcher
	out  []*tcpConn // by peer rank; nil for self
}

func (t *TCPTransport) readLoop(ep *tcpEndpoint, from int, c net.Conn) {
	hdr := make([]byte, tcpFrameHeader)
	for {
		if _, err := io.ReadFull(c, hdr); err != nil {
			return // connection closed
		}
		tag := int(int64(uint64(GetUint32(hdr, 0)) | uint64(GetUint32(hdr, 4))<<32))
		n := int(GetUint32(hdr, 8))
		clockBits := uint64(GetUint32(hdr, 12)) | uint64(GetUint32(hdr, 16))<<32
		data := make([]byte, n)
		if _, err := io.ReadFull(c, data); err != nil {
			return
		}
		ep.box.put(Packet{From: from, Tag: tag, Data: data, SendClock: float64frombitsSafe(clockBits)})
	}
}

// NP returns the processor count.
func (t *TCPTransport) NP() int { return t.np }

// Stats returns the traffic statistics collector.
func (t *TCPTransport) Stats() *Stats { return t.stats }

// Cost returns the attached cost model (nil if none).
func (t *TCPTransport) Cost() *CostModel { return t.cost }

// Tracer returns the attached event tracer (nil if none).
func (t *TCPTransport) Tracer() *trace.Tracer { return t.tracer }

// Endpoint returns processor rank's endpoint.
func (t *TCPTransport) Endpoint(rank int) Endpoint { return t.eps[rank] }

// Close tears down all connections; blocked receives return ErrClosed.
func (t *TCPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.mu.Lock()
	for _, c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	for _, ep := range t.eps {
		if ep != nil {
			ep.box.close()
		}
	}
	return nil
}

func (e *tcpEndpoint) Rank() int { return e.rank }
func (e *tcpEndpoint) NP() int   { return e.t.np }

// Tracer exposes the transport's tracer so Comm can record collective
// spans without widening the Endpoint interface.
func (e *tcpEndpoint) Tracer() *trace.Tracer { return e.t.tracer }

func (e *tcpEndpoint) Send(to, tag int, data []byte) error {
	if e.t.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= e.t.np {
		return fmt.Errorf("msg: send to invalid rank %d (np=%d)", to, e.t.np)
	}
	var sendClock float64
	if c := e.t.cost; c != nil {
		sendClock = c.OnSend(e.rank, len(data))
	}
	e.t.stats.OnSend(e.rank, to, len(data))
	if tr := e.t.tracer; tr != nil {
		tr.Send(e.rank, to, len(data))
	}
	if to == e.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		e.box.put(Packet{From: e.rank, Tag: tag, Data: cp, SendClock: sendClock})
		return nil
	}
	oc := e.out[to]
	frame := make([]byte, tcpFrameHeader+len(data))
	tagBits := uint64(int64(tag))
	PutUint32(frame, 0, uint32(tagBits))
	PutUint32(frame, 4, uint32(tagBits>>32))
	PutUint32(frame, 8, uint32(len(data)))
	bits := float64bitsSafe(sendClock)
	PutUint32(frame, 12, uint32(bits))
	PutUint32(frame, 16, uint32(bits>>32))
	copy(frame[tcpFrameHeader:], data)
	oc.mu.Lock()
	_, err := oc.conn.Write(frame)
	oc.mu.Unlock()
	if err != nil {
		return fmt.Errorf("msg: tcp send: %w", err)
	}
	return nil
}

func (e *tcpEndpoint) Recv(from, tag int) (Packet, error) {
	p, err := e.box.get(from, tag)
	if err != nil {
		return p, err
	}
	e.afterRecv(p)
	return p, nil
}

func (e *tcpEndpoint) RecvTimeout(from, tag int, d time.Duration) (Packet, error) {
	p, err := e.box.getTimeout(from, tag, d)
	if err != nil {
		return p, err
	}
	e.afterRecv(p)
	return p, nil
}

func (e *tcpEndpoint) afterRecv(p Packet) {
	e.t.stats.OnRecv(e.rank, p.From, len(p.Data))
	if c := e.t.cost; c != nil {
		c.OnRecv(e.rank, p.SendClock, len(p.Data))
	}
	if tr := e.t.tracer; tr != nil {
		tr.Recv(e.rank, p.From, len(p.Data))
	}
}
