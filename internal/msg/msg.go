// Package msg is the message-passing substrate of the Vienna Fortran
// Engine (VFE, paper §3.2): "a run time library of communication routines
// for transferring single array elements and array sections, including
// specialized routines for handling reductions".
//
// Go has no MPI ecosystem, so this package implements the messaging layer
// from scratch.  It provides:
//
//   - tagged, matched point-to-point messaging between P logical
//     processors (Endpoint.Send / Endpoint.Recv with wildcard matching),
//   - two interchangeable transports: an in-process channel transport
//     (ChanTransport) and a TCP loopback transport (TCPTransport) that
//     pushes every byte through real sockets,
//   - tree-based collectives (Comm): barrier, broadcast, reduce,
//     allreduce, gather, allgather, alltoallv,
//   - per-processor traffic statistics (Stats) and a Hockney-style
//     alpha/beta cost model (CostModel) driving per-processor virtual
//     clocks, used by the experiment harnesses to reproduce the paper's
//     message-cost arguments (§4).
//
// All payloads are byte slices at the transport boundary; codec.go
// provides the encodings for the element types the runtime uses.  Byte
// counts observed by Stats are therefore real wire sizes on both
// transports.
package msg

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reserved tag ranges.  User-level tags must be < TagMemberBase.
const (
	// TagMemberBase is the base of the small tag space used by the
	// machine membership layer's survivor-agreement rounds (round k of
	// the regroup to epoch e uses FoldTag(e, TagMemberBase+k)); it sits
	// below the heartbeat tag so agreement traffic never matches
	// application receives.
	TagMemberBase = 1 << 24
	// TagHeartbeat is the single tag used by the machine liveness layer's
	// heartbeat instants; it sits below the RMA space so a failure
	// detector's receive loop never matches application traffic.
	TagHeartbeat = 1 << 25
	// TagJoinWelcome is the single tag used by the machine membership
	// layer to hand an admitted joiner its first epoch view (the welcome
	// carries [epoch, members...]).  It is sent unfolded — a joiner does
	// not know the epoch it is being admitted into — and lives in the
	// reserved space next to the heartbeat tag, so a waiting joiner's
	// receive loop never matches application or agreement traffic.
	TagJoinWelcome = TagHeartbeat + 1
	// TagRMABase is the base of the tag space used by the one-sided
	// get/put service of the darray package; that space ends below
	// TagCollBase.
	TagRMABase = 1 << 26
	// TagCollBase is the base of the unbounded tag space used by Comm
	// collectives.  Collective tags are TagCollBase + seq with a
	// monotonically increasing per-Comm sequence number: they never wrap,
	// so a tag can never be reused while an earlier collective's message
	// is still unconsumed in a mailbox (tags are int64-wide on the wire).
	TagCollBase = 1 << 27
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("msg: transport closed")

// ErrTimeout is returned by RecvTimeout when no matching message arrives
// in time.
var ErrTimeout = errors.New("msg: receive timeout")

// Packet is a delivered message.
type Packet struct {
	From int
	Tag  int
	Data []byte
	// SendClock is the sender's virtual clock (seconds) at send time,
	// used by the cost model; zero when no cost model is attached.
	SendClock float64
}

// Endpoint is one processor's connection to the transport.  Send may be
// called concurrently; Recv may be called concurrently by consumers with
// disjoint match sets (e.g. the SPMD body and the one-sided service loop,
// which listens on the RMA tag space only).
type Endpoint interface {
	// Rank returns this endpoint's processor number in 0..NP-1.
	Rank() int
	// NP returns the number of processors on the transport.
	NP() int
	// Send delivers data to processor `to` with the given tag.  The
	// transport finishes reading data before Send returns — the channel
	// transport copies it into the destination mailbox and the TCP
	// transport copies it into the outgoing frame — so the caller may
	// reuse the buffer as soon as Send returns.  This is the contract
	// that lets the data-movement layer recycle its per-peer pack
	// buffers across iterations.  Received Packet.Data, by contrast, is
	// always freshly owned by the receiver.
	Send(to, tag int, data []byte) error
	// Recv blocks until a message matching (from, tag) arrives and
	// returns it.  AnySource / AnyTag act as wildcards.  Messages from
	// the same sender with the same tag are received in send order.
	Recv(from, tag int) (Packet, error)
	// RecvTimeout is Recv with a deadline; it returns ErrTimeout if no
	// matching message arrives in time.
	RecvTimeout(from, tag int, d time.Duration) (Packet, error)
}

// Transport connects NP logical processors.
type Transport interface {
	NP() int
	Endpoint(rank int) Endpoint
	Close() error
	// Stats returns the transport's traffic statistics collector.
	Stats() *Stats
	// Cost returns the attached cost model, or nil.
	Cost() *CostModel
	// Tracer returns the attached event tracer, or nil.  Transports
	// record per-message send/recv events on it when it is enabled.
	Tracer() *trace.Tracer
}

// matcher is an unbounded mailbox with predicate matching.  Producers
// append packets; consumers block until a packet matching their (from,
// tag) pattern is present.  Multiple concurrent consumers are supported;
// per-(from,tag) FIFO order is preserved because consumers scan the queue
// front-to-back.
type matcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Packet
	closed bool
}

func newMatcher() *matcher {
	m := &matcher{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *matcher) put(p Packet) {
	m.mu.Lock()
	m.queue = append(m.queue, p)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *matcher) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

func matches(p Packet, from, tag int) bool {
	return (from == AnySource || p.From == from) && (tag == AnyTag || p.Tag == tag)
}

func (m *matcher) get(from, tag int) (Packet, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, p := range m.queue {
			if matches(p, from, tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return p, nil
			}
		}
		if m.closed {
			return Packet{}, ErrClosed
		}
		m.cond.Wait()
	}
}

func (m *matcher) getTimeout(from, tag int, d time.Duration) (Packet, error) {
	deadline := time.Now().Add(d)
	// A ticker goroutine broadcasts periodically so the cond.Wait below
	// always re-checks the deadline, even if the fire races with a
	// consumer about to block.  RecvTimeout is a debugging/test facility;
	// the polling overhead is irrelevant on the fast paths.
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				m.cond.Broadcast()
			}
		}
	}()
	defer close(stop)
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, p := range m.queue {
			if matches(p, from, tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return p, nil
			}
		}
		if m.closed {
			return Packet{}, ErrClosed
		}
		if time.Now().After(deadline) {
			return Packet{}, fmt.Errorf("%w (from=%d tag=%d)", ErrTimeout, from, tag)
		}
		m.cond.Wait()
	}
}
