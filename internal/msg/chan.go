package msg

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ChanTransport is the default in-process transport: each processor owns a
// matcher mailbox and Send appends a copied payload directly to the
// destination mailbox.  The copy is deliberate — it preserves
// distributed-memory semantics (no sharing of buffers between sender and
// receiver), and makes byte accounting identical to the TCP transport.
type ChanTransport struct {
	np     int
	boxes  []*matcher
	eps    []chanEndpoint
	stats  *Stats
	cost   *CostModel
	tracer *trace.Tracer
	closed atomic.Bool
}

// NewChanTransport creates an in-process transport for np processors.
// opts may carry a cost model (WithCost).
func NewChanTransport(np int, opts ...Option) *ChanTransport {
	if np <= 0 {
		panic(fmt.Sprintf("msg: invalid processor count %d", np))
	}
	t := &ChanTransport{
		np:    np,
		boxes: make([]*matcher, np),
		stats: NewStats(np),
	}
	for _, o := range opts {
		o(&option{cost: &t.cost, tracer: &t.tracer})
	}
	for i := range t.boxes {
		t.boxes[i] = newMatcher()
	}
	t.eps = make([]chanEndpoint, np)
	for i := range t.eps {
		t.eps[i] = chanEndpoint{t: t, rank: i}
	}
	return t
}

// Option configures a transport.
type Option func(*option)

type option struct {
	cost   **CostModel
	tracer **trace.Tracer
}

// WithCost attaches a cost model to the transport.
func WithCost(c *CostModel) Option {
	return func(o *option) { *o.cost = c }
}

// WithTracer attaches an event tracer: every point-to-point send and
// receive is recorded with peer and payload size while the tracer is
// enabled.  A nil tracer is a no-op.
func WithTracer(tr *trace.Tracer) Option {
	return func(o *option) { *o.tracer = tr }
}

// NP returns the processor count.
func (t *ChanTransport) NP() int { return t.np }

// Stats returns the traffic statistics collector.
func (t *ChanTransport) Stats() *Stats { return t.stats }

// Cost returns the attached cost model (nil if none).
func (t *ChanTransport) Cost() *CostModel { return t.cost }

// Tracer returns the attached event tracer (nil if none).
func (t *ChanTransport) Tracer() *trace.Tracer { return t.tracer }

// Endpoint returns processor rank's endpoint.
func (t *ChanTransport) Endpoint(rank int) Endpoint {
	return &t.eps[rank]
}

// Close shuts the transport down; blocked receives return ErrClosed.
func (t *ChanTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	for _, b := range t.boxes {
		b.close()
	}
	return nil
}

type chanEndpoint struct {
	t    *ChanTransport
	rank int
}

func (e *chanEndpoint) Rank() int { return e.rank }
func (e *chanEndpoint) NP() int   { return e.t.np }

// SharedMemory reports that sender and receiver share one address space,
// enabling the one-sided window fast path (direct copies between
// registered slices; the transport moves only notification tokens).
func (e *chanEndpoint) SharedMemory() bool { return true }

// Tracer exposes the transport's tracer so Comm can record collective
// spans without widening the Endpoint interface.
func (e *chanEndpoint) Tracer() *trace.Tracer { return e.t.tracer }

func (e *chanEndpoint) Send(to, tag int, data []byte) error {
	if e.t.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= e.t.np {
		return fmt.Errorf("msg: send to invalid rank %d (np=%d)", to, e.t.np)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	p := Packet{From: e.rank, Tag: tag, Data: cp}
	if c := e.t.cost; c != nil {
		p.SendClock = c.OnSend(e.rank, len(data))
	}
	e.t.stats.OnSend(e.rank, to, len(data))
	if tr := e.t.tracer; tr != nil {
		tr.Send(e.rank, to, len(data))
	}
	e.t.boxes[to].put(p)
	return nil
}

func (e *chanEndpoint) Recv(from, tag int) (Packet, error) {
	p, err := e.t.boxes[e.rank].get(from, tag)
	if err != nil {
		return p, err
	}
	e.afterRecv(p)
	return p, nil
}

func (e *chanEndpoint) RecvTimeout(from, tag int, d time.Duration) (Packet, error) {
	p, err := e.t.boxes[e.rank].getTimeout(from, tag, d)
	if err != nil {
		return p, err
	}
	e.afterRecv(p)
	return p, nil
}

func (e *chanEndpoint) afterRecv(p Packet) {
	e.t.stats.OnRecv(e.rank, p.From, len(p.Data))
	if c := e.t.cost; c != nil {
		c.OnRecv(e.rank, p.SendClock, len(p.Data))
	}
	if tr := e.t.tracer; tr != nil {
		tr.Recv(e.rank, p.From, len(p.Data))
	}
}
