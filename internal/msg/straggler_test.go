package msg

import (
	"testing"
	"time"
)

// TestSlowFaultParse: the slow kind parses with its factor, defaults to
// a persistent schedule, and rejects a missing base delay.
func TestSlowFaultParse(t *testing.T) {
	plan, err := ParseFaultPlan("slow,rank=2,delay=100us,factor=8")
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Rules[0]
	if r.Kind != FaultSlow || r.Rank != 2 || r.Delay != 100*time.Microsecond || r.Factor != 8 {
		t.Fatalf("rule = %+v", r)
	}
	if r.Count != 0 || r.Every != 0 || r.Prob != 0 {
		t.Fatalf("slow rule should default to a persistent schedule: %+v", r)
	}
	if r.slowDur() != 800*time.Microsecond {
		t.Fatalf("slowDur = %v, want 800µs", r.slowDur())
	}
	if _, err := ParseFaultPlan("slow,rank=2,factor=8"); err == nil {
		t.Fatal("slow without delay= should fail to parse")
	}
}

// TestSlowFaultStallsMatchingRank: only the slowed rank's operations pay
// the Delay×Factor latency; a peer's traffic is unaffected, and the
// slowed operations still succeed.
func TestSlowFaultStallsMatchingRank(t *testing.T) {
	const base = 5 * time.Millisecond
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultSlow, Rank: 1, Peer: -1, Delay: base, Factor: 4}},
	})
	defer ft.Close()

	// Rank 0 (healthy): send is effectively instant.
	t0 := time.Now()
	if err := ft.Endpoint(0).Send(1, 7, EncodeInts([]int{1})); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > base {
		t.Fatalf("healthy rank's send took %v (slowdown leaked to the wrong rank)", el)
	}

	// Rank 1 (slow): both its receive and its send stall ≥ Delay×Factor.
	t0 = time.Now()
	p, err := ft.Endpoint(1).RecvTimeout(0, 7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if DecodeInts(p.Data)[0] != 1 {
		t.Fatalf("slowed receive corrupted the payload: %v", p.Data)
	}
	if el := time.Since(t0); el < 4*base {
		t.Fatalf("slowed recv took %v, want >= %v", el, 4*base)
	}
	t0 = time.Now()
	if err := ft.Endpoint(1).Send(0, 8, nil); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < 4*base {
		t.Fatalf("slowed send took %v, want >= %v", el, 4*base)
	}
}

// TestSlowFaultArmDisarm: a disarmed straggler runs at full speed; Arm
// switches the latency on, like every other fault kind.
func TestSlowFaultArmDisarm(t *testing.T) {
	const base = 10 * time.Millisecond
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		StartDisarmed: true,
		Rules:         []FaultRule{{Kind: FaultSlow, Rank: 0, Peer: -1, Delay: base, Factor: 2}},
	})
	defer ft.Close()
	ep := ft.Endpoint(0)

	t0 := time.Now()
	if err := ep.Send(1, 7, nil); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > base {
		t.Fatalf("disarmed slow rule still stalled the send (%v)", el)
	}

	ft.Arm(0)
	t0 = time.Now()
	if err := ep.Send(1, 7, nil); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < 2*base {
		t.Fatalf("armed slow send took %v, want >= %v", el, 2*base)
	}
	ft.Disarm(0)
	t0 = time.Now()
	if err := ep.Send(1, 7, nil); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > base {
		t.Fatalf("disarmed slow rule still stalled the send (%v)", el)
	}
}

// TestBackoffJitterDeterministic: the jitter stream is a pure function
// of (seed, rank, op, attempt) — two configs with the same seed agree
// delay for delay, a different seed diverges somewhere, and every value
// stays within ±Jitter of the escalated base (and under MaxBackoff).
func TestBackoffJitterDeterministic(t *testing.T) {
	cfg := CommConfig{Backoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond, Jitter: 0.5, JitterSeed: 42}
	same := cfg
	other := cfg
	other.JitterSeed = 43
	diverged := false
	for rank := 0; rank < 4; rank++ {
		for attempt := 0; attempt < 6; attempt++ {
			d := cfg.BackoffDelay(rank, "bcast", attempt)
			if d != same.BackoffDelay(rank, "bcast", attempt) {
				t.Fatalf("same seed diverged at rank %d attempt %d", rank, attempt)
			}
			if d != other.BackoffDelay(rank, "bcast", attempt) {
				diverged = true
			}
			base := escalate(cfg.Backoff, attempt, cfg.MaxBackoff)
			lo := time.Duration(float64(base) * 0.5)
			hi := time.Duration(float64(base) * 1.5)
			if hi > cfg.MaxBackoff {
				hi = cfg.MaxBackoff
			}
			if d < lo || d > hi {
				t.Fatalf("rank %d attempt %d: delay %v outside [%v, %v]", rank, attempt, d, lo, hi)
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestBackoffJitterSpreadsRanks: the whole point — ranks retrying the
// same operation at the same attempt must not wake at the same instant.
func TestBackoffJitterSpreadsRanks(t *testing.T) {
	cfg := CommConfig{Backoff: 8 * time.Millisecond, Jitter: 0.5, JitterSeed: 1}
	seen := map[time.Duration]bool{}
	for rank := 0; rank < 8; rank++ {
		seen[cfg.BackoffDelay(rank, "gather", 2)] = true
	}
	if len(seen) < 6 {
		t.Fatalf("8 ranks collapsed onto %d distinct delays — the herd is still in lockstep", len(seen))
	}
}

// TestBackoffJitterZeroIsLegacy: Jitter 0 must reproduce the historical
// deterministic escalation bit for bit.
func TestBackoffJitterZeroIsLegacy(t *testing.T) {
	cfg := CommConfig{Backoff: time.Millisecond, MaxBackoff: 16 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		want := escalate(cfg.Backoff, attempt, cfg.MaxBackoff)
		if got := cfg.BackoffDelay(3, "scatter", attempt); got != want {
			t.Fatalf("attempt %d: BackoffDelay = %v, want plain escalate %v", attempt, got, want)
		}
	}
}
