package msg

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Stats collects per-processor traffic counters.  The experiment harnesses
// use these to reproduce the paper's §4 message-cost arguments ("2 messages
// per processor, each of size N" vs "4 messages of size N/p").
//
// Counters are updated with atomics so they can be read while the SPMD
// program runs; Snapshot gives a consistent-enough view for reporting after
// a barrier.
type Stats struct {
	np        int
	msgsSent  []atomic.Int64
	bytesSent []atomic.Int64
	msgsRecv  []atomic.Int64
	bytesRecv []atomic.Int64
	// dataSent counts only messages with a non-empty payload — the "data
	// messages" of the paper's cost arguments, excluding zero-byte
	// synchronization traffic (barriers).
	dataSent []atomic.Int64
	// wireCur/wirePeak track resident wire-buffer bytes per rank: packed
	// send buffers and received-but-not-yet-unpacked payloads held by the
	// data-movement layer.  The peak is the measured counterpart of the
	// redistribution planner's peak-bytes estimate — tests assert the
	// memory bound against this gauge rather than trusting the model.
	wireCur  []atomic.Int64
	wirePeak []atomic.Int64
}

// NewStats creates a collector for np processors.
func NewStats(np int) *Stats {
	return &Stats{
		np:        np,
		msgsSent:  make([]atomic.Int64, np),
		bytesSent: make([]atomic.Int64, np),
		msgsRecv:  make([]atomic.Int64, np),
		bytesRecv: make([]atomic.Int64, np),
		dataSent:  make([]atomic.Int64, np),
		wireCur:   make([]atomic.Int64, np),
		wirePeak:  make([]atomic.Int64, np),
	}
}

// WireAcquire records n wire-buffer bytes becoming resident on rank and
// updates the rank's high-water mark.
func (s *Stats) WireAcquire(rank int, n int64) {
	cur := s.wireCur[rank].Add(n)
	for {
		peak := s.wirePeak[rank].Load()
		if cur <= peak || s.wirePeak[rank].CompareAndSwap(peak, cur) {
			return
		}
	}
}

// WireRelease records n wire-buffer bytes leaving residency on rank.
func (s *Stats) WireRelease(rank int, n int64) {
	s.wireCur[rank].Add(-n)
}

// PeakWireBytes returns the high-water mark of resident wire-buffer
// bytes over all ranks since the last Reset/ResetWirePeak.
func (s *Stats) PeakWireBytes() int64 {
	var m int64
	for i := 0; i < s.np; i++ {
		if p := s.wirePeak[i].Load(); p > m {
			m = p
		}
	}
	return m
}

// PeakWireBytesRank returns rank's high-water mark of resident
// wire-buffer bytes.
func (s *Stats) PeakWireBytesRank(rank int) int64 { return s.wirePeak[rank].Load() }

// ResetWirePeak rewinds every rank's high-water mark to its current
// residency (so a phase can be measured in isolation without disturbing
// the traffic counters).
func (s *Stats) ResetWirePeak() {
	for i := 0; i < s.np; i++ {
		s.wirePeak[i].Store(s.wireCur[i].Load())
	}
}

// OnSend records a message of n bytes sent by from to to.
func (s *Stats) OnSend(from, to, n int) {
	s.msgsSent[from].Add(1)
	s.bytesSent[from].Add(int64(n))
	if n > 0 {
		s.dataSent[from].Add(1)
	}
	_ = to
}

// OnRecv records a message of n bytes received by rank from from.
func (s *Stats) OnRecv(rank, from, n int) {
	s.msgsRecv[rank].Add(1)
	s.bytesRecv[rank].Add(int64(n))
	_ = from
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	for i := 0; i < s.np; i++ {
		s.msgsSent[i].Store(0)
		s.bytesSent[i].Store(0)
		s.msgsRecv[i].Store(0)
		s.bytesRecv[i].Store(0)
		s.dataSent[i].Store(0)
		s.wireCur[i].Store(0)
		s.wirePeak[i].Store(0)
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	NP        int
	MsgsSent  []int64
	BytesSent []int64
	MsgsRecv  []int64
	BytesRecv []int64
	DataSent  []int64
}

// newSnapshot carves the five counter slices out of one backing array —
// snapshots are taken per step in instrumented loops, so the allocation
// count matters.
func newSnapshot(np int) Snapshot {
	back := make([]int64, 5*np)
	return Snapshot{
		NP:        np,
		MsgsSent:  back[0*np : 1*np],
		BytesSent: back[1*np : 2*np],
		MsgsRecv:  back[2*np : 3*np],
		BytesRecv: back[3*np : 4*np],
		DataSent:  back[4*np : 5*np],
	}
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() Snapshot {
	sn := newSnapshot(s.np)
	for i := 0; i < s.np; i++ {
		sn.MsgsSent[i] = s.msgsSent[i].Load()
		sn.BytesSent[i] = s.bytesSent[i].Load()
		sn.MsgsRecv[i] = s.msgsRecv[i].Load()
		sn.BytesRecv[i] = s.bytesRecv[i].Load()
		sn.DataSent[i] = s.dataSent[i].Load()
	}
	return sn
}

// TotalDataMsgs returns the total number of non-empty messages sent.
func (sn Snapshot) TotalDataMsgs() int64 {
	var t int64
	for _, v := range sn.DataSent {
		t += v
	}
	return t
}

// MaxDataMsgsPerProc returns the maximum number of non-empty messages
// sent by any single processor.
func (sn Snapshot) MaxDataMsgsPerProc() int64 {
	var m int64
	for _, v := range sn.DataSent {
		if v > m {
			m = v
		}
	}
	return m
}

// TotalMsgs returns the total number of messages sent.
func (sn Snapshot) TotalMsgs() int64 {
	var t int64
	for _, v := range sn.MsgsSent {
		t += v
	}
	return t
}

// TotalBytes returns the total number of payload bytes sent.
func (sn Snapshot) TotalBytes() int64 {
	var t int64
	for _, v := range sn.BytesSent {
		t += v
	}
	return t
}

// MaxMsgsPerProc returns the maximum number of messages sent by any single
// processor.
func (sn Snapshot) MaxMsgsPerProc() int64 {
	var m int64
	for _, v := range sn.MsgsSent {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxBytesPerProc returns the maximum number of bytes sent by any single
// processor.
func (sn Snapshot) MaxBytesPerProc() int64 {
	var m int64
	for _, v := range sn.BytesSent {
		if v > m {
			m = v
		}
	}
	return m
}

// Sub returns the counter deltas sn - base (for measuring a program phase).
func (sn Snapshot) Sub(base Snapshot) Snapshot {
	at := func(s []int64, i int) int64 {
		if s == nil {
			return 0
		}
		return s[i]
	}
	out := newSnapshot(sn.NP)
	for i := 0; i < sn.NP; i++ {
		out.MsgsSent[i] = at(sn.MsgsSent, i) - at(base.MsgsSent, i)
		out.BytesSent[i] = at(sn.BytesSent, i) - at(base.BytesSent, i)
		out.MsgsRecv[i] = at(sn.MsgsRecv, i) - at(base.MsgsRecv, i)
		out.BytesRecv[i] = at(sn.BytesRecv, i) - at(base.BytesRecv, i)
		out.DataSent[i] = at(sn.DataSent, i) - at(base.DataSent, i)
	}
	return out
}

func (sn Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgs=%d bytes=%d maxMsgs/proc=%d maxBytes/proc=%d",
		sn.TotalMsgs(), sn.TotalBytes(), sn.MaxMsgsPerProc(), sn.MaxBytesPerProc())
	return b.String()
}
