package msg

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/trace"
)

// ErrIntegrity is returned by a receive whose payload failed its CRC32C
// check.  The corrupt frame has already been consumed from the mailbox,
// so the operation cannot heal by retrying the receive — RecvRetry
// treats ErrIntegrity as terminal (like ErrClosed) and surfaces it as a
// named transport error immediately.
var ErrIntegrity = errors.New("msg: payload integrity check failed")

// castagnoli is the CRC32C polynomial table (the iSCSI/SSE4.2 one),
// shared by all integrity endpoints.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IntegrityTransport decorates any Transport with end-to-end payload
// integrity: Send appends a CRC32C trailer over the payload, Recv
// verifies and strips it, failing with ErrIntegrity on mismatch.  The
// checksum covers the payload from the sender's pack buffer to the
// receiver's unpack, so corruption introduced anywhere on the path —
// including a fault injector's bitflip — is detected at the receive.
//
// Layer it OUTSIDE a FaultTransport (Integrity(Fault(base))): the
// checksum is then computed before injection and verified after, so an
// injected FaultCorrupt flip is caught exactly as real wire corruption
// would be.
type IntegrityTransport struct {
	inner Transport
	eps   []integrityEndpoint
}

// NewIntegrityTransport wraps inner with per-message CRC32C checksums.
func NewIntegrityTransport(inner Transport) *IntegrityTransport {
	t := &IntegrityTransport{inner: inner}
	t.eps = make([]integrityEndpoint, inner.NP())
	for r := range t.eps {
		t.eps[r] = integrityEndpoint{inner: inner.Endpoint(r), tr: inner.Tracer()}
	}
	return t
}

// NP returns the processor count.
func (t *IntegrityTransport) NP() int { return t.inner.NP() }

// Endpoint returns rank's checksumming endpoint.
func (t *IntegrityTransport) Endpoint(rank int) Endpoint { return &t.eps[rank] }

// Close closes the wrapped transport.
func (t *IntegrityTransport) Close() error { return t.inner.Close() }

// Stats returns the wrapped transport's statistics (byte counts include
// the 4-byte trailers, which really do cross the wire).
func (t *IntegrityTransport) Stats() *Stats { return t.inner.Stats() }

// Cost returns the wrapped transport's cost model.
func (t *IntegrityTransport) Cost() *CostModel { return t.inner.Cost() }

// Tracer returns the wrapped transport's tracer.
func (t *IntegrityTransport) Tracer() *trace.Tracer { return t.inner.Tracer() }

type integrityEndpoint struct {
	inner Endpoint
	tr    *trace.Tracer
}

func (e *integrityEndpoint) Rank() int { return e.inner.Rank() }
func (e *integrityEndpoint) NP() int   { return e.inner.NP() }

// Tracer exposes the wrapped transport's tracer for Comm.
func (e *integrityEndpoint) Tracer() *trace.Tracer { return e.tr }

// SharedMemory forwards the one-sided fast-path capability; the CRC
// trailer still covers every notification token, so a bitflipped token
// surfaces as ErrIntegrity at the completion.
func (e *integrityEndpoint) SharedMemory() bool { return sharedMemory(e.inner) }

// CheckLive delegates to the wrapped endpoint when it carries a
// liveness check (a View stacked under the integrity layer).
func (e *integrityEndpoint) CheckLive() error {
	if lc, ok := e.inner.(interface{ CheckLive() error }); ok {
		return lc.CheckLive()
	}
	return nil
}

func (e *integrityEndpoint) Send(to, tag int, data []byte) error {
	framed := make([]byte, len(data)+4)
	copy(framed, data)
	PutUint32(framed, len(data), crc32.Checksum(data, castagnoli))
	return e.inner.Send(to, tag, framed)
}

func (e *integrityEndpoint) verify(p Packet) (Packet, error) {
	n := len(p.Data) - 4
	if n < 0 {
		return Packet{}, fmt.Errorf("%w: frame from %d (tag %d) too short for trailer (%d bytes)",
			ErrIntegrity, p.From, p.Tag, len(p.Data))
	}
	want := GetUint32(p.Data, n)
	if got := crc32.Checksum(p.Data[:n], castagnoli); got != want {
		return Packet{}, fmt.Errorf("%w: frame from %d (tag %d, %d bytes): crc32c %08x, want %08x",
			ErrIntegrity, p.From, p.Tag, n, got, want)
	}
	p.Data = p.Data[:n]
	return p, nil
}

func (e *integrityEndpoint) Recv(from, tag int) (Packet, error) {
	p, err := e.inner.Recv(from, tag)
	if err != nil {
		return p, err
	}
	return e.verify(p)
}

func (e *integrityEndpoint) RecvTimeout(from, tag int, d time.Duration) (Packet, error) {
	p, err := e.inner.RecvTimeout(from, tag, d)
	if err != nil {
		return p, err
	}
	return e.verify(p)
}
