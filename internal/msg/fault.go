package msg

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// ErrInjected is the error produced by injected send/recv faults.  An
// injected send error delivers nothing (the frame never left), so the
// operation is safe to retry.
var ErrInjected = errors.New("msg: injected fault")

// FaultKind selects what a FaultRule does when it fires.
type FaultKind int

// Fault kinds.
const (
	// FaultSendErr makes Send return ErrInjected without delivering the
	// frame (a failed socket write: retrying resends the data).
	FaultSendErr FaultKind = iota
	// FaultRecvErr makes Recv/RecvTimeout return ErrInjected without
	// consuming anything from the mailbox (a failed socket read: the
	// message is still there on retry).
	FaultRecvErr
	// FaultRecvDelay delays delivery of a sent frame by Delay (a slow
	// link: the receiver's deadline fires, and a retried receive with an
	// escalated deadline eventually sees the frame).
	FaultRecvDelay
	// FaultDrop silently discards a sent frame (a lost packet: no retry
	// of the receive can ever see it; only a deadline unblocks the
	// receiver).
	FaultDrop
	// FaultCorrupt flips one payload bit of a sent frame (wire
	// corruption: undetectable to the transport itself; an
	// IntegrityTransport layered outside the fault injector catches it
	// at the receive as ErrIntegrity).  Zero-length frames pass through
	// untouched.  The plan syntax accepts "corrupt" and "bitflip".
	FaultCorrupt
	// FaultSlow makes the matching endpoint a straggler: every matching
	// send and every matching receive attempt sleeps Delay×Factor before
	// the operation proceeds (the operation itself then succeeds
	// normally).  Unlike FaultRecvDelay — a one-shot schedule on frame
	// *delivery* — a slow rule is persistent by default (Count=0) and
	// charges the latency to the slowed endpoint itself, so a single
	// overloaded rank inflates every barrier it participates in exactly
	// as a real straggler would.  Combines with After/Count/Every/Prob
	// (the seeded per-rank RNG makes probabilistic slowdowns replayable)
	// and with Arm/Disarm like every other kind.
	FaultSlow
)

var faultKindNames = map[FaultKind]string{
	FaultSendErr:   "senderr",
	FaultRecvErr:   "recverr",
	FaultRecvDelay: "delay",
	FaultDrop:      "drop",
	FaultCorrupt:   "corrupt",
	FaultSlow:      "slow",
}

func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultRule describes one deterministic fault schedule.  A rule watches the
// matching operations of one endpoint (sends for FaultSendErr /
// FaultRecvDelay / FaultDrop / FaultCorrupt, receives for FaultRecvErr,
// both for FaultSlow) and fires on a subset of them.  Matching operations are counted per endpoint, so a
// schedule is deterministic for a deterministic program regardless of how
// ranks interleave.
type FaultRule struct {
	Kind FaultKind
	// Rank restricts the rule to one endpoint's operations (-1 = all).
	Rank int
	// Peer restricts by the remote rank: the destination for send-side
	// kinds, the requested source for FaultRecvErr (-1 = any; a receive
	// from AnySource matches any Peer).
	Peer int
	// After skips the first After matching operations.
	After int
	// Count fires on the next Count matches after After; 0 means every
	// subsequent match (a persistent fault).
	Count int
	// Every, when > 0, fires on every Every-th match after After instead
	// of the Count window.
	Every int
	// Prob, when > 0, fires each match after After with this probability
	// using the plan's seeded per-rank RNG instead of Count/Every.
	Prob float64
	// Delay is the injected latency for FaultRecvDelay, and the base
	// per-operation latency for FaultSlow.
	Delay time.Duration
	// Factor multiplies Delay for FaultSlow (<= 0 is treated as 1), so a
	// straggler plan reads as "base latency × slowdown": slow,rank=2,
	// delay=100us,factor=8 costs rank 2 800µs per matching operation.
	Factor float64
	// Win restricts the rule to one-sided window traffic (put/get tags in
	// the RMA tag space), leaving collectives and point-to-point sends
	// unaffected.  Plan syntax: win=1.
	Win bool
}

// FaultPlan is a set of fault rules plus the RNG seed for probabilistic
// rules.  The per-rank RNG streams are derived from Seed+rank, so a plan
// replays identically for a deterministic program.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
	// StartDisarmed builds the transport with injection switched off on
	// every rank; tests call FaultTransport.Arm(rank) at a point where the
	// rank's subsequent traffic is exactly the phase under test, keeping
	// the per-rank operation counts deterministic.
	StartDisarmed bool
}

// HasKind reports whether any rule of the plan is of kind k.  Callers
// use it to auto-enable the integrity layer when a plan injects
// corruption.
func (p *FaultPlan) HasKind(k FaultKind) bool {
	for _, r := range p.Rules {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// ParseFaultPlan parses the -fault flag syntax: semicolon-separated rules,
// each a kind followed by comma-separated key=value options, e.g.
//
//	senderr,rank=1,after=3,count=2;drop,peer=2,count=1;delay,delay=20ms,every=5
//
// Kinds: senderr, recverr, delay, drop, corrupt, slow.  Options: rank,
// peer, after, count, every, prob, delay (a Go duration), factor (the
// FaultSlow multiplier).  A bare "seed=N" segment sets the plan seed for
// prob rules.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("msg: fault plan: bad seed %q", v)
			}
			plan.Seed = n
			continue
		}
		fields := strings.Split(seg, ",")
		r := FaultRule{Rank: -1, Peer: -1}
		switch fields[0] {
		case "senderr":
			r.Kind = FaultSendErr
		case "recverr":
			r.Kind = FaultRecvErr
		case "delay":
			r.Kind = FaultRecvDelay
		case "drop":
			r.Kind = FaultDrop
		case "corrupt", "bitflip":
			r.Kind = FaultCorrupt
		case "slow":
			r.Kind = FaultSlow
		default:
			return nil, fmt.Errorf("msg: fault plan: unknown kind %q (want senderr|recverr|delay|drop|corrupt|slow)", fields[0])
		}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("msg: fault plan: bad option %q (want key=value)", f)
			}
			var err error
			switch k {
			case "rank":
				r.Rank, err = strconv.Atoi(v)
			case "peer":
				r.Peer, err = strconv.Atoi(v)
			case "after":
				r.After, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "every":
				r.Every, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "factor":
				r.Factor, err = strconv.ParseFloat(v, 64)
			case "win":
				var n int
				n, err = strconv.Atoi(v)
				r.Win = n != 0
			default:
				err = fmt.Errorf("unknown option %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("msg: fault plan: option %q: %v", f, err)
			}
		}
		if r.Kind == FaultRecvDelay && r.Delay <= 0 {
			return nil, fmt.Errorf("msg: fault plan: delay rule needs delay=<duration>")
		}
		if r.Kind == FaultSlow && r.Delay <= 0 {
			return nil, fmt.Errorf("msg: fault plan: slow rule needs delay=<duration> (the base per-operation latency)")
		}
		plan.Rules = append(plan.Rules, r)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("msg: fault plan: no rules in %q", spec)
	}
	return plan, nil
}

// FaultTransport decorates any Transport with deterministic fault
// injection.  Faults are injected on the sender side of the wrapped
// transport (where both the channel and TCP transports still share one
// code path), which keeps schedules independent of receiver timing:
//
//   - FaultSendErr: Send returns ErrInjected, nothing is delivered.
//   - FaultRecvDelay: the frame is delivered Delay later from a helper
//     goroutine (the payload is copied first, preserving the Send
//     buffer-reuse contract).
//   - FaultDrop: Send returns nil but the frame is never delivered; the
//     inner transport's Stats never see it.
//   - FaultRecvErr: injected on the receive side; the mailbox is not
//     consulted, so the message (if any) survives for the retry.
type FaultTransport struct {
	inner Transport
	plan  *FaultPlan
	eps   []*faultEndpoint
}

// NewFaultTransport wraps inner with the plan's fault rules.
func NewFaultTransport(inner Transport, plan *FaultPlan) *FaultTransport {
	t := &FaultTransport{inner: inner, plan: plan}
	t.eps = make([]*faultEndpoint, inner.NP())
	for r := range t.eps {
		ep := &faultEndpoint{
			t:     t,
			inner: inner.Endpoint(r),
			rng:   rand.New(rand.NewSource(plan.Seed + int64(r))),
			armed: !plan.StartDisarmed,
			seen:  make([]int, len(plan.Rules)),
		}
		t.eps[r] = ep
	}
	return t
}

// NP returns the processor count.
func (t *FaultTransport) NP() int { return t.inner.NP() }

// Endpoint returns rank's fault-injecting endpoint.
func (t *FaultTransport) Endpoint(rank int) Endpoint { return t.eps[rank] }

// Close closes the wrapped transport.
func (t *FaultTransport) Close() error { return t.inner.Close() }

// Stats returns the wrapped transport's statistics.  Dropped frames and
// failed injected sends never reach the inner transport, so they are not
// counted.
func (t *FaultTransport) Stats() *Stats { return t.inner.Stats() }

// Cost returns the wrapped transport's cost model.
func (t *FaultTransport) Cost() *CostModel { return t.inner.Cost() }

// Tracer returns the wrapped transport's tracer.
func (t *FaultTransport) Tracer() *trace.Tracer { return t.inner.Tracer() }

// Arm enables injection on rank's endpoint.  For plans built with
// StartDisarmed, a test arms each rank at a point where that rank's next
// matching operation is the first of the phase under test.
func (t *FaultTransport) Arm(rank int) { t.eps[rank].setArmed(true) }

// Disarm disables injection on rank's endpoint.
func (t *FaultTransport) Disarm(rank int) { t.eps[rank].setArmed(false) }

type faultEndpoint struct {
	t     *FaultTransport
	inner Endpoint

	mu    sync.Mutex
	rng   *rand.Rand
	armed bool
	seen  []int // per-rule count of matching operations
}

func (e *faultEndpoint) Rank() int { return e.inner.Rank() }
func (e *faultEndpoint) NP() int   { return e.inner.NP() }

// Tracer exposes the wrapped transport's tracer so Comm still records
// collective spans when running over a FaultTransport.
func (e *faultEndpoint) Tracer() *trace.Tracer { return e.t.inner.Tracer() }

func (e *faultEndpoint) setArmed(v bool) {
	e.mu.Lock()
	e.armed = v
	e.mu.Unlock()
}

// isWinTag reports whether a wire tag belongs to the one-sided window
// tag space (after stripping any folded membership epoch).
func isWinTag(tag int) bool {
	if tag < 0 {
		return false
	}
	t := UnfoldTag(tag)
	return t >= TagRMABase && t < TagCollBase
}

// fire decides whether any rule of the given kinds fires for an operation
// with the given peer and tag, advancing the per-rule match counters.
func (e *faultEndpoint) fire(peer, tag int, kinds ...FaultKind) *FaultRule {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.armed {
		return nil
	}
	var hit *FaultRule
	for i := range e.t.plan.Rules {
		r := &e.t.plan.Rules[i]
		match := false
		for _, k := range kinds {
			if r.Kind == k {
				match = true
			}
		}
		if !match {
			continue
		}
		if r.Rank >= 0 && r.Rank != e.inner.Rank() {
			continue
		}
		if r.Peer >= 0 && peer != AnySource && r.Peer != peer {
			continue
		}
		if r.Win && !isWinTag(tag) {
			continue
		}
		n := e.seen[i]
		e.seen[i]++
		if n < r.After {
			continue
		}
		fired := false
		switch {
		case r.Prob > 0:
			fired = e.rng.Float64() < r.Prob
		case r.Every > 0:
			fired = (n-r.After)%r.Every == 0
		case r.Count <= 0:
			fired = true
		default:
			fired = n-r.After < r.Count
		}
		if fired && hit == nil {
			hit = r
		}
	}
	return hit
}

// SharedMemory forwards the one-sided fast-path capability.  Injection
// still applies to window traffic: the direct copy is published by a
// notification token that passes through this endpoint, so dropping,
// delaying or failing the token drops, delays or fails the completion.
func (e *faultEndpoint) SharedMemory() bool { return sharedMemory(e.inner) }

// slowDur is the per-operation latency a fired FaultSlow rule charges.
func (r *FaultRule) slowDur() time.Duration {
	f := r.Factor
	if f <= 0 {
		f = 1
	}
	return time.Duration(float64(r.Delay) * f)
}

// stall consults the slow rules separately from the error-injecting
// kinds — a straggler endpoint still suffers every other scheduled
// fault on top of its latency — and sleeps the fired rule's Delay×Factor.
func (e *faultEndpoint) stall(peer, tag int) {
	if r := e.fire(peer, tag, FaultSlow); r != nil {
		time.Sleep(r.slowDur())
	}
}

func (e *faultEndpoint) Send(to, tag int, data []byte) error {
	e.stall(to, tag)
	if r := e.fire(to, tag, FaultSendErr, FaultRecvDelay, FaultDrop, FaultCorrupt); r != nil {
		switch r.Kind {
		case FaultSendErr:
			return fmt.Errorf("%w: send %d->%d", ErrInjected, e.inner.Rank(), to)
		case FaultDrop:
			return nil // frame silently lost
		case FaultCorrupt:
			if len(data) == 0 {
				return e.inner.Send(to, tag, data)
			}
			// Flip one mid-payload bit on a copy (the caller may reuse
			// its buffer, and must not see the corruption).
			cp := make([]byte, len(data))
			copy(cp, data)
			cp[len(cp)/2] ^= 0x10
			return e.inner.Send(to, tag, cp)
		case FaultRecvDelay:
			cp := make([]byte, len(data))
			copy(cp, data)
			go func() {
				time.Sleep(r.Delay)
				e.inner.Send(to, tag, cp) //nolint:errcheck // late frame on a dead transport is moot
			}()
			return nil
		}
	}
	return e.inner.Send(to, tag, data)
}

func (e *faultEndpoint) Recv(from, tag int) (Packet, error) {
	e.stall(from, tag)
	if r := e.fire(from, tag, FaultRecvErr); r != nil {
		return Packet{}, fmt.Errorf("%w: recv %d<-%d", ErrInjected, e.inner.Rank(), from)
	}
	return e.inner.Recv(from, tag)
}

func (e *faultEndpoint) RecvTimeout(from, tag int, d time.Duration) (Packet, error) {
	e.stall(from, tag)
	if r := e.fire(from, tag, FaultRecvErr); r != nil {
		return Packet{}, fmt.Errorf("%w: recv %d<-%d", ErrInjected, e.inner.Rank(), from)
	}
	return e.inner.RecvTimeout(from, tag, d)
}
