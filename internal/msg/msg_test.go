package msg

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// runSPMD executes body on every endpoint of t concurrently and fails the
// test on any returned error.
func runSPMD(t *testing.T, tr Transport, body func(ep Endpoint) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, tr.NP())
	for r := 0; r < tr.NP(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(tr.Endpoint(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// transports returns fresh instances of both transport kinds.
func transports(t *testing.T, np int) map[string]Transport {
	t.Helper()
	tcp, err := NewTCPTransport(np)
	if err != nil {
		t.Fatalf("tcp transport: %v", err)
	}
	return map[string]Transport{
		"chan": NewChanTransport(np),
		"tcp":  tcp,
	}
}

func TestPointToPointBothTransports(t *testing.T) {
	for name, tr := range transports(t, 4) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			runSPMD(t, tr, func(ep Endpoint) error {
				rank, np := ep.Rank(), ep.NP()
				// ring: send rank to the right, receive from the left
				if err := ep.Send((rank+1)%np, 7, EncodeInts([]int{rank * 10})); err != nil {
					return err
				}
				p, err := ep.Recv((rank-1+np)%np, 7)
				if err != nil {
					return err
				}
				got := DecodeInts(p.Data)[0]
				want := ((rank - 1 + np) % np) * 10
				if got != want {
					t.Errorf("rank %d: got %d want %d", rank, got, want)
				}
				return nil
			})
		})
	}
}

func TestFIFOOrderPerSenderTag(t *testing.T) {
	for name, tr := range transports(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			runSPMD(t, tr, func(ep Endpoint) error {
				if ep.Rank() == 0 {
					for i := 0; i < 100; i++ {
						if err := ep.Send(1, 3, EncodeInts([]int{i})); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < 100; i++ {
					p, err := ep.Recv(0, 3)
					if err != nil {
						return err
					}
					if got := DecodeInts(p.Data)[0]; got != i {
						t.Errorf("out of order: got %d want %d", got, i)
					}
				}
				return nil
			})
		})
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	tr := NewChanTransport(3)
	defer tr.Close()
	runSPMD(t, tr, func(ep Endpoint) error {
		switch ep.Rank() {
		case 0:
			return ep.Send(2, 11, EncodeInts([]int{100}))
		case 1:
			return ep.Send(2, 22, EncodeInts([]int{200}))
		case 2:
			// Receive the tag-22 message first even though tag-11 may have
			// arrived earlier.
			p, err := ep.Recv(AnySource, 22)
			if err != nil {
				return err
			}
			if DecodeInts(p.Data)[0] != 200 || p.From != 1 {
				t.Errorf("tag-22 matched wrong message: %+v", p)
			}
			p, err = ep.Recv(0, AnyTag)
			if err != nil {
				return err
			}
			if DecodeInts(p.Data)[0] != 100 {
				t.Errorf("source match wrong: %+v", p)
			}
		}
		return nil
	})
}

func TestRecvTimeout(t *testing.T) {
	for name, tr := range transports(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer tr.Close()
			ep := tr.Endpoint(0)
			start := time.Now()
			_, err := ep.RecvTimeout(1, 5, 30*time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("err = %v, want timeout", err)
			}
			if time.Since(start) > 2*time.Second {
				t.Fatal("timeout took far too long")
			}
			// and a successful timed receive
			if err := tr.Endpoint(1).Send(0, 5, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := ep.RecvTimeout(1, 5, time.Second); err != nil {
				t.Fatalf("expected delivery, got %v", err)
			}
		})
	}
}

func TestClosedTransport(t *testing.T) {
	tr := NewChanTransport(2)
	done := make(chan error)
	go func() {
		_, err := tr.Endpoint(0).Recv(1, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tr.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked recv returned %v, want ErrClosed", err)
	}
	if err := tr.Endpoint(0).Send(1, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed returned %v", err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	if err := tr.Endpoint(0).Send(5, 1, nil); err == nil {
		t.Fatal("send to rank 5 of 2 should fail")
	}
}

func TestDistributedMemorySemantics(t *testing.T) {
	// Mutating the sent buffer after Send must not affect the receiver.
	tr := NewChanTransport(2)
	defer tr.Close()
	runSPMD(t, tr, func(ep Endpoint) error {
		if ep.Rank() == 0 {
			buf := EncodeInts([]int{42})
			if err := ep.Send(1, 1, buf); err != nil {
				return err
			}
			for i := range buf {
				buf[i] = 0xFF
			}
			return nil
		}
		p, err := ep.Recv(0, 1)
		if err != nil {
			return err
		}
		if got := DecodeInts(p.Data)[0]; got != 42 {
			t.Errorf("receiver saw sender's mutation: %d", got)
		}
		return nil
	})
}

func TestCodecRoundTrips(t *testing.T) {
	f := []float64{0, 1.5, -2.25, 1e300, -0.0}
	got := DecodeFloat64s(EncodeFloat64s(f))
	for i := range f {
		if got[i] != f[i] {
			t.Fatalf("float64 roundtrip[%d] = %v want %v", i, got[i], f[i])
		}
	}
	dst := make([]float64, len(f))
	DecodeFloat64sInto(dst, EncodeFloat64s(f))
	if dst[3] != 1e300 {
		t.Fatal("DecodeFloat64sInto wrong")
	}
	ints := []int{0, -1, 1 << 40, -(1 << 40)}
	gi := DecodeInts(EncodeInts(ints))
	for i := range ints {
		if gi[i] != ints[i] {
			t.Fatalf("int roundtrip[%d] = %d want %d", i, gi[i], ints[i])
		}
	}
	i64 := []int64{-5, 9}
	g64 := DecodeInt64s(EncodeInt64s(i64))
	if g64[0] != -5 || g64[1] != 9 {
		t.Fatal("int64 roundtrip wrong")
	}
}

func TestStatsCounting(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	runSPMD(t, tr, func(ep Endpoint) error {
		if ep.Rank() == 0 {
			if err := ep.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			return ep.Send(1, 1, make([]byte, 50))
		}
		for i := 0; i < 2; i++ {
			if _, err := ep.Recv(0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	sn := tr.Stats().Snapshot()
	if sn.TotalMsgs() != 2 || sn.TotalBytes() != 150 {
		t.Fatalf("stats %v", sn)
	}
	if sn.MsgsSent[0] != 2 || sn.MsgsRecv[1] != 2 || sn.BytesRecv[1] != 150 {
		t.Fatalf("per-proc stats wrong: %+v", sn)
	}
	base := sn
	tr.Stats().Reset()
	if tr.Stats().Snapshot().TotalMsgs() != 0 {
		t.Fatal("reset failed")
	}
	delta := base.Sub(Snapshot{NP: 2, MsgsSent: []int64{1, 0}, BytesSent: []int64{0, 0}, MsgsRecv: []int64{0, 0}, BytesRecv: []int64{0, 0}})
	if delta.MsgsSent[0] != 1 {
		t.Fatal("Sub wrong")
	}
}

func TestCostModelPointToPoint(t *testing.T) {
	cost := NewCostModel(2, 1e-4, 1e-8)
	tr := NewChanTransport(2, WithCost(cost))
	defer tr.Close()
	runSPMD(t, tr, func(ep Endpoint) error {
		if ep.Rank() == 0 {
			return ep.Send(1, 1, make([]byte, 1000))
		}
		_, err := ep.Recv(0, 1)
		return err
	})
	// receiver clock = 0 (send clock) + alpha + beta*1000
	want := 1e-4 + 1e-8*1000
	if got := cost.Clock(1); got < want*0.999 || got > want*1.001 {
		t.Fatalf("receiver clock = %g want %g", got, want)
	}
	// sender paid its overhead
	if got := cost.Clock(0); got != 5e-5 {
		t.Fatalf("sender clock = %g want %g", got, 5e-5)
	}
	if m := cost.Makespan(); m < want {
		t.Fatalf("makespan %g < %g", m, want)
	}
	cost.Sync()
	if cost.Clock(0) != cost.Clock(1) {
		t.Fatal("sync should equalize clocks")
	}
	cost.Reset()
	if cost.Makespan() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCostModelCharge(t *testing.T) {
	cost := NewCostModel(1, 0, 0)
	cost.Charge(0, 2.5)
	cost.Charge(0, 0.5)
	if cost.Clock(0) != 3.0 {
		t.Fatalf("clock = %g", cost.Clock(0))
	}
	if cost.MessageTime(100) != 0 {
		t.Fatal("zero model should cost nothing")
	}
	c2 := NewCostModel(1, 1e-3, 1e-9)
	if c2.MessageTime(1000) != 1e-3+1e-6 {
		t.Fatalf("message time = %g", c2.MessageTime(1000))
	}
}
