package msg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire encodings for the element and header types the runtime exchanges.
// All integers are little-endian.  These are deliberately simple: the
// point is that both transports move real bytes, so Stats byte counts
// reflect true message sizes (8 bytes per REAL*8 element, as on the
// machines the paper targeted).

// AppendUint64s appends 64-bit values to buf.
func AppendUint64s(buf []byte, vals []uint64) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, 8*len(vals))...)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[off+8*i:], v)
	}
	return buf
}

// EncodeFloat64s encodes a []float64 payload.
func EncodeFloat64s(vals []float64) []byte {
	return AppendFloat64s(nil, vals)
}

// AppendFloat64s appends the wire encoding of vals to buf and returns the
// extended slice.  With a caller-retained buf of sufficient capacity the
// encode allocates nothing — the hot-path form the data-movement layer
// uses for reusable per-peer send buffers.
func AppendFloat64s(buf []byte, vals []float64) []byte {
	var off int
	buf, off = GrowFloat64s(buf, len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[off+8*i:], math.Float64bits(v))
	}
	return buf
}

// GrowFloat64s extends buf with room for n float64 wire slots (contents
// unspecified — callers must write every slot) and
// returns the extended slice plus the byte offset where the new region
// starts.  Growth reuses buf's capacity when available, so steady-state
// callers that recycle buffers pay no allocation.
func GrowFloat64s(buf []byte, n int) ([]byte, int) {
	off := len(buf)
	need := off + 8*n
	if need <= cap(buf) {
		buf = buf[:need]
		return buf, off
	}
	nbuf := make([]byte, need)
	copy(nbuf, buf)
	return nbuf, off
}

// PutFloat64 stores v at byte offset off of a wire buffer.
func PutFloat64(buf []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
}

// GetFloat64 reads the float64 at byte offset off of a wire buffer.
func GetFloat64(buf []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
}

// Float64Count returns the number of float64 values in a wire payload,
// panicking on misaligned lengths (a framing bug, not a data error).
func Float64Count(buf []byte) int {
	if len(buf)%8 != 0 {
		panic(fmt.Sprintf("msg: float64 payload length %d not a multiple of 8", len(buf)))
	}
	return len(buf) / 8
}

// DecodeFloat64s decodes a []float64 payload.
func DecodeFloat64s(buf []byte) []float64 {
	if len(buf)%8 != 0 {
		panic(fmt.Sprintf("msg: float64 payload length %d not a multiple of 8", len(buf)))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// DecodeFloat64sInto decodes into dst, which must have exactly the right
// length; it avoids an allocation on hot paths.
func DecodeFloat64sInto(dst []float64, buf []byte) {
	if len(buf) != 8*len(dst) {
		panic(fmt.Sprintf("msg: payload %d bytes, want %d", len(buf), 8*len(dst)))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
}

// EncodeInt64s encodes a []int64 payload.
func EncodeInt64s(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

// DecodeInt64s decodes a []int64 payload.
func DecodeInt64s(buf []byte) []int64 {
	if len(buf)%8 != 0 {
		panic(fmt.Sprintf("msg: int64 payload length %d not a multiple of 8", len(buf)))
	}
	out := make([]int64, len(buf)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// EncodeInts encodes a []int payload as int64s.
func EncodeInts(vals []int) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(v)))
	}
	return buf
}

// DecodeInts decodes a payload written by EncodeInts.
func DecodeInts(buf []byte) []int {
	v := DecodeInt64s(buf)
	out := make([]int, len(v))
	for i := range v {
		out[i] = int(v[i])
	}
	return out
}

// PutUint32 / GetUint32 are header helpers for framed transports.
func PutUint32(buf []byte, off int, v uint32) {
	binary.LittleEndian.PutUint32(buf[off:], v)
}

// GetUint32 reads a little-endian uint32 at off.
func GetUint32(buf []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(buf[off:])
}
