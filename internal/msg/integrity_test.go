package msg

import (
	"errors"
	"testing"
	"time"
)

// TestIntegrityRoundTrip: checksummed frames arrive with the trailer
// stripped, bit-identical to what was sent, including empty heartbeats.
func TestIntegrityRoundTrip(t *testing.T) {
	it := NewIntegrityTransport(NewChanTransport(2))
	defer it.Close()
	for _, payload := range [][]byte{
		EncodeInts([]int{1, 2, 3}),
		{0xde},
		nil, // heartbeat frames carry no payload
	} {
		if err := it.Endpoint(0).Send(1, 7, payload); err != nil {
			t.Fatal(err)
		}
		p, err := it.Endpoint(1).Recv(0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Data) != len(payload) {
			t.Fatalf("payload %x: got %x (trailer not stripped?)", payload, p.Data)
		}
		for i := range payload {
			if p.Data[i] != payload[i] {
				t.Fatalf("payload %x corrupted to %x", payload, p.Data)
			}
		}
	}
}

// TestIntegrityDetectsBitflip: a bitflip fault plan between the sender
// and the checksum verifier surfaces as the named ErrIntegrity — and is
// treated as terminal by the retry helpers (the frame is already
// consumed; retrying cannot heal it).
func TestIntegrityDetectsBitflip(t *testing.T) {
	plan, err := ParseFaultPlan("bitflip,rank=0,count=1")
	if err != nil {
		t.Fatal(err)
	}
	it := NewIntegrityTransport(NewFaultTransport(NewChanTransport(2), plan))
	defer it.Close()
	if err := it.Endpoint(0).Send(1, 7, EncodeInts([]int{42})); err != nil {
		t.Fatal(err)
	}
	_, err = it.Endpoint(1).Recv(0, 7)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("recv of flipped frame = %v, want ErrIntegrity", err)
	}
	if !terminal(err) {
		t.Fatal("ErrIntegrity must be terminal for the retry helpers")
	}

	// The fault budget is spent; the next frame passes verification.
	if err := it.Endpoint(0).Send(1, 7, EncodeInts([]int{43})); err != nil {
		t.Fatal(err)
	}
	p, err := it.Endpoint(1).Recv(0, 7)
	if err != nil || DecodeInts(p.Data)[0] != 43 {
		t.Fatalf("clean frame after bitflip: %+v, %v", p, err)
	}
}

// TestIntegrityRecvRetrySurfacesNamedError: through the full RecvRetry
// path a corrupted frame comes back immediately as ErrIntegrity — no
// retries are burned on it.
func TestIntegrityRecvRetrySurfacesNamedError(t *testing.T) {
	plan, err := ParseFaultPlan("corrupt,rank=0,count=1")
	if err != nil {
		t.Fatal(err)
	}
	it := NewIntegrityTransport(NewFaultTransport(NewChanTransport(2), plan))
	defer it.Close()
	if err := it.Endpoint(0).Send(1, 9001, EncodeInts([]int{7})); err != nil {
		t.Fatal(err)
	}
	cfg := CommConfig{Timeout: 50 * time.Millisecond, Retries: 8}
	start := time.Now()
	_, err = RecvRetry(it.Endpoint(1), cfg, nil, "recv", 0, 9001)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want wrapped ErrIntegrity", err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("RecvRetry burned %v retrying a terminal integrity failure", el)
	}
}

// TestIntegrityComm: collectives run unchanged over a checksummed
// transport (the CRC layer is invisible above the Endpoint interface).
func TestIntegrityComm(t *testing.T) {
	it := NewIntegrityTransport(NewChanTransport(3))
	defer it.Close()
	done := make(chan error, 3)
	for r := 0; r < 3; r++ {
		go func(r int) {
			c := NewComm(it.Endpoint(r))
			sum, err := c.AllreduceInts([]int{r + 1}, SumInt)
			if err == nil && sum[0] != 6 {
				err = errors.New("bad allreduce over integrity transport")
			}
			done <- err
		}(r)
	}
	for r := 0; r < 3; r++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParseCorruptKinds: both spellings parse to FaultCorrupt.
func TestParseCorruptKinds(t *testing.T) {
	for _, spec := range []string{"corrupt,rank=1", "bitflip,rank=1"} {
		plan, err := ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !plan.HasKind(FaultCorrupt) {
			t.Fatalf("%s: plan %+v lacks FaultCorrupt", spec, plan)
		}
	}
}
