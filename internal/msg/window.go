package msg

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// One-sided communication windows.
//
// A Window exposes each processor's registered []float64 storage for
// remote put/get access — the PGAS model layered over the repo's
// two-sided transports.  Every rank registers its own storage slice;
// afterwards any rank may Put into (or Get out of) a peer's registered
// region described by a Rect, without the target posting a matching
// receive for the data.
//
// Two completion disciplines are offered:
//
//   - Counted streams (PutAsync / AwaitPut, subtags 1..63): the initiator
//     puts into a known target region and the target later consumes
//     exactly one completion per expected put.  This is the ghost-exchange
//     discipline — both sides can derive the transfer geometry from the
//     (replicated) distribution descriptor, so the wire carries payload
//     only and the message/byte accounting is identical to the two-sided
//     exchange it replaces.
//   - Fence epochs (Put / Get / Fence, subtag 0): MPI-style active-target
//     synchronization.  Operations are buffered logically into an access
//     epoch; Fence announces per-peer operation counts, drains and applies
//     every incoming operation, services get requests, and returns when
//     both sides of every pairing are complete.
//
// Transport interplay:
//
//   - On a transport whose endpoints report SharedMemory() (the in-process
//     chan transport, possibly under fault/integrity/view wrappers), data
//     moves by a bounds-checked direct copy between the registered slices;
//     the transport moves only a notification token.  The token carries
//     the happens-before edge (matcher mutex) that makes the direct copy
//     race-free, and the payload bytes are accounted on both sides so
//     Stats and CostModel parity with the framed path is preserved.
//   - On other transports (TCP loopback) the initiator packs the region
//     span by span into a recycled wire buffer (the PR-2 pack engine) and
//     the target applies it bounds-checked at its synchronization point.
//
// Epoch safety: window operations go through the caller's endpoint, so
// when that endpoint is a *View the tags are epoch-folded and every
// retry consults the liveness checker — a put or await on a revoked
// epoch aborts with the view's error instead of matching stale traffic.
//
// Failure semantics: on the shared-memory path the direct copy happens
// before the notification token is sent, so a put whose token is lost
// may leave target memory updated while the completion errors out — as
// with MPI RMA, window contents are undefined after a failed epoch.

// Rect describes a strided hyper-rectangular region of a window's
// registered storage: element offset Off plus per-dimension (stride,
// count) pairs, innermost (fastest-varying) dimension first.  This is
// the affine span addressing of the darray pack engine lifted to the
// transport layer.
type Rect struct {
	Off  int
	Dims []RectDim
}

// RectDim is one dimension of a Rect.
type RectDim struct {
	Stride int
	Count  int
}

// RectRun builds a one-dimensional contiguous Rect.
func RectRun(off, count int) Rect {
	return Rect{Off: off, Dims: []RectDim{{Stride: 1, Count: count}}}
}

// Count returns the number of elements the rect covers.
func (r Rect) Count() int {
	n := 1
	for _, d := range r.Dims {
		n *= d.Count
	}
	return n
}

// bounds returns the inclusive min/max element offsets the rect touches.
func (r Rect) bounds() (lo, hi int) {
	lo, hi = r.Off, r.Off
	for _, d := range r.Dims {
		span := (d.Count - 1) * d.Stride
		if span < 0 {
			lo += span
		} else {
			hi += span
		}
	}
	return lo, hi
}

// validate checks the rect against a storage of n elements.
func (r Rect) validate(n int) error {
	for _, d := range r.Dims {
		if d.Count <= 0 {
			return fmt.Errorf("msg: rect dimension with count %d", d.Count)
		}
	}
	lo, hi := r.bounds()
	if lo < 0 || hi >= n {
		return fmt.Errorf("msg: rect [%d,%d] outside storage of %d elements", lo, hi, n)
	}
	return nil
}

// forEachRun walks the rect as innermost runs: f(off, stride, count) for
// each run, where off is the element offset of the run's first element.
func (r Rect) forEachRun(f func(off, stride, count int)) {
	if len(r.Dims) == 0 {
		f(r.Off, 1, 1)
		return
	}
	in := r.Dims[0]
	outer := r.Dims[1:]
	idx := make([]int, len(outer))
	for {
		off := r.Off
		for k, d := range outer {
			off += idx[k] * d.Stride
		}
		f(off, in.Stride, in.Count)
		k := 0
		for ; k < len(outer); k++ {
			idx[k]++
			if idx[k] < outer[k].Count {
				break
			}
			idx[k] = 0
		}
		if k == len(outer) {
			return
		}
	}
}

// copyRect copies src's sr region into dst's dr region directly (the
// shared-memory fast path).  Counts must match; contiguous innermost
// runs degrade to copy().
func copyRect(dst []float64, dr Rect, src []float64, sr Rect) {
	type run struct{ off, stride, count int }
	var druns []run
	dr.forEachRun(func(off, stride, count int) {
		druns = append(druns, run{off, stride, count})
	})
	di, dpos := 0, 0
	d := druns[0]
	sr.forEachRun(func(off, stride, count int) {
		for n := 0; n < count; {
			if dpos == d.count {
				di++
				d = druns[di]
				dpos = 0
			}
			take := min(count-n, d.count-dpos)
			so := off + n*stride
			do := d.off + dpos*d.stride
			if stride == 1 && d.stride == 1 {
				copy(dst[do:do+take], src[so:so+take])
			} else {
				for i := 0; i < take; i++ {
					dst[do+i*d.stride] = src[so+i*stride]
				}
			}
			n += take
			dpos += take
		}
	})
}

// PackRect appends the wire encoding of src's r region to buf in rect
// enumeration order (innermost dimension fastest) and returns the
// extended slice — the transport-level counterpart of the darray span
// pack engine; recycled buffers make the steady state allocation-free.
func PackRect(buf []byte, src []float64, r Rect) []byte {
	var off int
	buf, off = GrowFloat64s(buf, r.Count())
	r.forEachRun(func(ro, stride, count int) {
		for i := 0; i < count; i++ {
			PutFloat64(buf, off, src[ro+i*stride])
			off += 8
		}
	})
	return buf
}

// ApplyRect decodes a payload written by PackRect into dst's r region.
func ApplyRect(dst []float64, r Rect, payload []byte) error {
	if want := 8 * r.Count(); len(payload) != want {
		return fmt.Errorf("msg: put payload %d bytes, rect wants %d", len(payload), want)
	}
	if err := r.validate(len(dst)); err != nil {
		return err
	}
	off := 0
	r.forEachRun(func(ro, stride, count int) {
		for i := 0; i < count; i++ {
			dst[ro+i*stride] = GetFloat64(payload, off)
			off += 8
		}
	})
	return nil
}

// Window tag layout: each window owns winTagSlots consecutive tags above
// winTagBase; subtag 0 is the fence-epoch stream, subtags 1..63 are
// counted put streams.  The window id rotates through the space, which
// holds ~1M concurrently-live windows per transport.
const (
	winTagSlots = 64
	winTagBase  = TagRMABase + 8192
	maxWindows  = (TagCollBase - winTagBase) / winTagSlots
)

// MaxSubtag is the largest counted-stream subtag a window supports.
const MaxSubtag = winTagSlots - 1

var winSeq atomic.Int64

// fence frame kinds (first payload byte of a subtag-0 frame).
const (
	frPut      = 1 // put: [kind][rect?][payload?] (rect+payload absent on the shared path)
	frAnnounce = 2 // fence announcement: [kind][u32 ops-sent-to-you]
	frGetReq   = 3 // get request: [kind][rect]
	frGetRep   = 4 // get reply: [kind][payload]
	frAck      = 5 // fence completion ack: [kind]
)

// Window is a one-sided access window over per-rank registered storage.
// The object is shared by all ranks of a transport (SPMD discipline);
// per-rank state is indexed by rank.
type Window struct {
	id     int
	name   string
	np     int
	stats  *Stats
	cost   *CostModel
	shared []winShared
	fence  []winFence
}

// winShared is per-rank hot-path state.
type winShared struct {
	data    []float64 // registered storage (written by Register under program barriers)
	sendBuf []byte    // recycled pack buffer (framed path)
	_       [40]byte  // keep ranks off each other's cache lines
}

// winFence is per-rank fence-epoch state, allocated lazily on first use.
type winFence struct {
	once sync.Once
	sent []int  // ops sent to each peer this epoch (subtag-0 puts + get requests)
	pend []Rect // flattened pending gets: destination rects, FIFO per peer
	from []int  // pending gets: target rank per entry (parallel to pend)
}

// NewWindow creates a window for np ranks.  stats must be non-nil; cost
// may be nil.  All ranks must share the returned object (create it once
// and publish it, e.g. via a collective constructor).
func NewWindow(np int, name string, stats *Stats, cost *CostModel) *Window {
	return &Window{
		id:     int(winSeq.Add(1)),
		name:   name,
		np:     np,
		stats:  stats,
		cost:   cost,
		shared: make([]winShared, np),
		fence:  make([]winFence, np),
	}
}

// Name returns the window's diagnostic name.
func (w *Window) Name() string { return w.name }

// Register associates rank's storage with the window.  Call it whenever
// the rank's storage is (re)allocated, strictly before the next barrier
// or collective that precedes remote access — registration is published
// to peers by that synchronization, not by Register itself.
func (w *Window) Register(rank int, data []float64) {
	w.shared[rank].data = data
}

// Registered returns rank's registered storage (nil if none).
func (w *Window) Registered(rank int) []float64 { return w.shared[rank].data }

func (w *Window) tag(subtag int) int {
	return winTagBase + (w.id%maxWindows)*winTagSlots + subtag
}

// sharedMemory reports whether the endpoint's transport chain delivers
// within one address space (the chan transport, under any wrappers).
func sharedMemory(ep Endpoint) bool {
	s, ok := ep.(interface{ SharedMemory() bool })
	return ok && s.SharedMemory()
}

// physOf maps an endpoint-relative rank to the physical rank the Stats
// and CostModel are indexed by (identity except under a *View).
func physOf(ep Endpoint, r int) int {
	if v, ok := ep.(interface{ Phys(int) int }); ok {
		return v.Phys(r)
	}
	return r
}

// accountDirect records the payload bytes of one direct-copy transfer:
// the notification token already counted as one (zero-byte) message on
// each side, so adding the payload bytes to both ends makes the counters
// match the framed path exactly (one data message of n bytes).
func (w *Window) accountDirect(ep Endpoint, from, to, n int) {
	pf, pt := physOf(ep, from), physOf(ep, to)
	w.stats.bytesSent[pf].Add(int64(n))
	w.stats.dataSent[pf].Add(1)
	w.stats.bytesRecv[pt].Add(int64(n))
}

// chargeRecvBytes advances the calling rank's cost clock by the per-byte
// transfer cost the token's zero-byte arrival did not carry.  Only the
// clock's owner may call it (single-writer clocks).
func (w *Window) chargeRecvBytes(ep Endpoint, rank, n int) {
	if w.cost != nil {
		w.cost.Charge(physOf(ep, rank), w.cost.Beta*float64(n))
	}
}

func (w *Window) opErr(op string, peer int, err error) error {
	return fmt.Errorf("msg: window %s: %s rank %d: %w", w.name, op, peer, err)
}

// PutAsync initiates a counted one-sided put: the elements of src (in
// the caller's registered storage) are stored into dst (in rank to's
// registered storage).  The target completes it with a matching
// AwaitPut(from, subtag, dst).  src and dst must cover the same element
// count; subtag must be in 1..MaxSubtag.  The call returns when the
// local buffers are reusable; remote completion is the target's await.
func (w *Window) PutAsync(c *Comm, to, subtag int, src, dst Rect) error {
	if subtag < 1 || subtag > MaxSubtag {
		panic(fmt.Sprintf("msg: window %s: put subtag %d outside 1..%d", w.name, subtag, MaxSubtag))
	}
	if sc, dc := src.Count(), dst.Count(); sc != dc {
		panic(fmt.Sprintf("msg: window %s: put count mismatch: src %d, dst %d", w.name, sc, dc))
	}
	rank := c.Rank()
	sh := &w.shared[rank]
	if err := src.validate(len(sh.data)); err != nil {
		return w.opErr("put to", to, err)
	}
	tag := w.tag(subtag)
	if sharedMemory(c.ep) {
		tbuf := w.shared[to].data
		if err := dst.validate(len(tbuf)); err != nil {
			return w.opErr("put to", to, err)
		}
		// Direct copy first, then the notification token: the token's
		// delivery is the happens-before edge that publishes the copy.
		copyRect(tbuf, dst, sh.data, src)
		if err := SendRetry(c.ep, c.cfg, c.tr, "win-put "+w.name, to, tag, nil); err != nil {
			return w.opErr("put to", to, err)
		}
		w.accountDirect(c.ep, rank, to, 8*src.Count())
		// The zero-byte token is invisible to the trace; record the data
		// transfer the direct copy performed.
		c.tr.Send(physOf(c.ep, rank), physOf(c.ep, to), 8*src.Count())
		return nil
	}
	sh.sendBuf = PackRect(sh.sendBuf[:0], sh.data, src)
	if err := SendRetry(c.ep, c.cfg, c.tr, "win-put "+w.name, to, tag, sh.sendBuf); err != nil {
		return w.opErr("put to", to, err)
	}
	return nil
}

// AwaitPut completes one counted put from rank from on the given
// subtag, applying the payload into dst of the caller's registered
// storage (already in place on the shared-memory path).  Completions on
// one (from, subtag) stream match puts in their issue order.
func (w *Window) AwaitPut(c *Comm, from, subtag int, dst Rect) error {
	if subtag < 1 || subtag > MaxSubtag {
		panic(fmt.Sprintf("msg: window %s: await subtag %d outside 1..%d", w.name, subtag, MaxSubtag))
	}
	p, err := RecvRetry(c.ep, c.cfg, c.tr, "win-await "+w.name, from, w.tag(subtag))
	if err != nil {
		return w.opErr("await put from", from, err)
	}
	rank := c.Rank()
	if len(p.Data) == 0 {
		// Shared-path token: data already in place; charge the transfer
		// bytes the zero-byte token did not carry and record the arrival
		// the trace's zero-byte recv instant omitted.
		w.chargeRecvBytes(c.ep, rank, 8*dst.Count())
		c.tr.Recv(physOf(c.ep, rank), physOf(c.ep, from), 8*dst.Count())
		return nil
	}
	if err := ApplyRect(w.shared[rank].data, dst, p.Data); err != nil {
		return w.opErr("await put from", from, err)
	}
	return nil
}

func (w *Window) fenceState(rank int) *winFence {
	f := &w.fence[rank]
	f.once.Do(func() { f.sent = make([]int, w.np) })
	return f
}

// appendRectWire appends a rect's wire encoding: [u8 ndims][i64 off]
// then (stride, count) i64 pairs.
func appendRectWire(buf []byte, r Rect) []byte {
	buf = append(buf, byte(len(r.Dims)))
	vals := make([]uint64, 0, 1+2*len(r.Dims))
	vals = append(vals, uint64(int64(r.Off)))
	for _, d := range r.Dims {
		vals = append(vals, uint64(int64(d.Stride)), uint64(int64(d.Count)))
	}
	return AppendUint64s(buf, vals)
}

// decodeRectWire decodes a rect, returning it and the remaining bytes.
func decodeRectWire(buf []byte) (Rect, []byte, error) {
	if len(buf) < 1 {
		return Rect{}, nil, fmt.Errorf("msg: truncated rect header")
	}
	nd := int(buf[0])
	need := 8 * (1 + 2*nd)
	buf = buf[1:]
	if len(buf) < need {
		return Rect{}, nil, fmt.Errorf("msg: truncated rect (%d bytes, want %d)", len(buf), need)
	}
	vals := DecodeInt64s(buf[:need])
	r := Rect{Off: int(vals[0]), Dims: make([]RectDim, nd)}
	for i := 0; i < nd; i++ {
		r.Dims[i] = RectDim{Stride: int(vals[1+2*i]), Count: int(vals[2+2*i])}
	}
	return r, buf[need:], nil
}

// Put stores the caller's src region into rank to's dst region within
// the current fence epoch.  The target observes the data after its next
// Fence that pairs with the caller's.
func (w *Window) Put(c *Comm, to int, src, dst Rect) error {
	if sc, dc := src.Count(), dst.Count(); sc != dc {
		panic(fmt.Sprintf("msg: window %s: put count mismatch: src %d, dst %d", w.name, sc, dc))
	}
	rank := c.Rank()
	sh := &w.shared[rank]
	if err := src.validate(len(sh.data)); err != nil {
		return w.opErr("put to", to, err)
	}
	st := w.fenceState(rank)
	var frame []byte
	if sharedMemory(c.ep) {
		tbuf := w.shared[to].data
		if err := dst.validate(len(tbuf)); err != nil {
			return w.opErr("put to", to, err)
		}
		copyRect(tbuf, dst, sh.data, src)
		frame = []byte{frPut}
	} else {
		frame = append(sh.sendBuf[:0], frPut)
		frame = appendRectWire(frame, dst)
		frame = PackRect(frame, sh.data, src)
		sh.sendBuf = frame
	}
	if err := SendRetry(c.ep, c.cfg, c.tr, "win-put "+w.name, to, w.tag(0), frame); err != nil {
		return w.opErr("put to", to, err)
	}
	if sharedMemory(c.ep) {
		w.accountDirect(c.ep, rank, to, 8*src.Count())
	}
	st.sent[to]++
	return nil
}

// Get fetches rank from's src region into the caller's dst region.  On
// shared memory the data is read directly (and is whatever the source
// epoch last published); on framed transports the value arrives by the
// end of the caller's next Fence.
func (w *Window) Get(c *Comm, from int, src, dst Rect) error {
	if sc, dc := src.Count(), dst.Count(); sc != dc {
		panic(fmt.Sprintf("msg: window %s: get count mismatch: src %d, dst %d", w.name, sc, dc))
	}
	rank := c.Rank()
	sh := &w.shared[rank]
	if err := dst.validate(len(sh.data)); err != nil {
		return w.opErr("get from", from, err)
	}
	if sharedMemory(c.ep) {
		fbuf := w.shared[from].data
		if err := src.validate(len(fbuf)); err != nil {
			return w.opErr("get from", from, err)
		}
		copyRect(sh.data, dst, fbuf, src)
		// Simulated one-sided fetch: account a request/reply round trip's
		// payload on both sides and charge the caller its modeled cost
		// (the accounting convention of darray's element-level RMA).
		n := 8 * src.Count()
		w.accountDirect(c.ep, from, rank, n)
		if w.cost != nil {
			w.cost.Charge(physOf(c.ep, rank), 2*w.cost.Alpha+w.cost.Beta*float64(n))
		}
		return nil
	}
	st := w.fenceState(rank)
	frame := append(sh.sendBuf[:0], frGetReq)
	frame = appendRectWire(frame, src)
	sh.sendBuf = frame
	if err := SendRetry(c.ep, c.cfg, c.tr, "win-get "+w.name, from, w.tag(0), frame); err != nil {
		return w.opErr("get from", from, err)
	}
	st.sent[from]++
	st.pend = append(st.pend, dst)
	st.from = append(st.from, from)
	return nil
}

// Fence completes the current access epoch against the given peers:
// announces how many operations the caller issued toward each, drains
// and applies every incoming operation, services incoming get requests,
// collects the caller's own get replies, and exchanges a final ack round
// so no peer starts its next epoch before everyone in this one has
// drained.  Every listed peer must call Fence listing the caller
// symmetrically.  After Fence returns, all puts toward the caller from
// fenced peers are visible and all the caller's gets have completed.
func (w *Window) Fence(c *Comm, peers []int) error {
	rank := c.Rank()
	st := w.fenceState(rank)
	var hdr [5]byte
	for _, p := range peers {
		hdr[0] = frAnnounce
		PutUint32(hdr[:], 1, uint32(st.sent[p]))
		if err := SendRetry(c.ep, c.cfg, c.tr, "win-fence "+w.name, p, w.tag(0), hdr[:]); err != nil {
			return w.opErr("fence announce to", p, err)
		}
		st.sent[p] = 0
	}
	// Drain from all peers at once (AnySource): a fixed per-peer drain
	// order can deadlock a get cycle, since a peer's reply only arrives
	// once that peer drains us.  Frames from one peer arrive in send
	// order (per-(from,tag) FIFO), so its operations precede its
	// announce; replies and acks may arrive in any interleaving after.
	need := make(map[int]int, len(peers)) // announced op count per peer (-1: not yet announced)
	got := make(map[int]int, len(peers))  // ops consumed per peer
	reps := make(map[int]int, len(peers)) // get replies received per peer
	acked := make(map[int]bool, len(peers))
	wantReps := make(map[int]int, len(peers))
	for _, p := range peers {
		need[p] = -1
	}
	for _, p := range st.from {
		wantReps[p]++
	}
	pending := func() bool {
		for _, p := range peers {
			if need[p] < 0 || got[p] < need[p] || reps[p] < wantReps[p] {
				return true
			}
		}
		return false
	}
	for pending() {
		p, err := RecvRetry(c.ep, c.cfg, c.tr, "win-fence "+w.name, AnySource, w.tag(0))
		if err != nil {
			return w.opErr("fence drain from", AnySource, err)
		}
		if _, ok := need[p.From]; !ok {
			return w.opErr("fence drain from", p.From, fmt.Errorf("msg: frame from rank outside fence group"))
		}
		if len(p.Data) == 0 {
			return w.opErr("fence drain from", p.From, fmt.Errorf("msg: empty fence frame"))
		}
		kind, body := p.Data[0], p.Data[1:]
		switch kind {
		case frPut:
			if len(body) > 0 {
				dst, payload, err := decodeRectWire(body)
				if err != nil {
					return w.opErr("fence put from", p.From, err)
				}
				if err := ApplyRect(w.shared[rank].data, dst, payload); err != nil {
					return w.opErr("fence put from", p.From, err)
				}
			}
			// On the shared path the sender already applied the data; the
			// token only carries the count and the happens-before edge.
			got[p.From]++
		case frGetReq:
			src, rest, err := decodeRectWire(body)
			if err != nil {
				return w.opErr("fence get-request from", p.From, err)
			}
			if len(rest) != 0 {
				return w.opErr("fence get-request from", p.From, fmt.Errorf("msg: trailing bytes"))
			}
			sh := &w.shared[rank]
			if err := src.validate(len(sh.data)); err != nil {
				return w.opErr("fence get-request from", p.From, err)
			}
			rep := append([]byte{frGetRep}, PackRect(nil, sh.data, src)...)
			if err := SendRetry(c.ep, c.cfg, c.tr, "win-fence "+w.name, p.From, w.tag(0), rep); err != nil {
				return w.opErr("fence get-reply to", p.From, err)
			}
			got[p.From]++
		case frGetRep:
			// Match this peer's reps-th pending get on that peer (FIFO:
			// the peer services requests in the order they were sent).
			idx, seen := -1, 0
			for i, fp := range st.from {
				if fp == p.From {
					if seen == reps[p.From] {
						idx = i
						break
					}
					seen++
				}
			}
			if idx < 0 {
				return w.opErr("fence get-reply from", p.From, fmt.Errorf("msg: unexpected reply"))
			}
			if err := ApplyRect(w.shared[rank].data, st.pend[idx], body); err != nil {
				return w.opErr("fence get-reply from", p.From, err)
			}
			reps[p.From]++
		case frAnnounce:
			if len(body) != 4 {
				return w.opErr("fence announce from", p.From, fmt.Errorf("msg: malformed announce"))
			}
			need[p.From] = int(GetUint32(p.Data, 1))
		case frAck:
			// A peer that finished draining before we did; remember it so
			// the ack round below does not wait for it again.
			acked[p.From] = true
		default:
			return w.opErr("fence drain from", p.From, fmt.Errorf("msg: unknown frame kind %d", kind))
		}
	}
	st.pend = st.pend[:0]
	st.from = st.from[:0]
	// Ack round: a peer may only leave the fence (and start next-epoch
	// traffic) once every peer has acked, i.e. finished draining.  Acks
	// are awaited per peer — by FIFO the first unconsumed frame from a
	// finished peer is its ack, never a next-epoch operation.
	ack := [1]byte{frAck}
	for _, p := range peers {
		if err := SendRetry(c.ep, c.cfg, c.tr, "win-fence "+w.name, p, w.tag(0), ack[:]); err != nil {
			return w.opErr("fence ack to", p, err)
		}
	}
	for _, p := range peers {
		if acked[p] {
			continue
		}
		pk, err := RecvRetry(c.ep, c.cfg, c.tr, "win-fence "+w.name, p, w.tag(0))
		if err != nil {
			return w.opErr("fence ack from", p, err)
		}
		if len(pk.Data) != 1 || pk.Data[0] != frAck {
			return w.opErr("fence ack from", p, fmt.Errorf("msg: unexpected frame kind %d", pk.Data[0]))
		}
	}
	return nil
}
