package msg

import "math"

// float64bitsSafe / float64frombitsSafe wrap math bit conversions; named
// separately so the wire code reads as intent (clock stamps are transported
// as raw bits, never rounded).
func float64bitsSafe(f float64) uint64     { return math.Float64bits(f) }
func float64frombitsSafe(b uint64) float64 { return math.Float64frombits(b) }
