package msg

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// withWindowTransports runs f as a subtest over both built-in transports,
// so every window behaviour is exercised on the shared-memory fast path
// (chan) and the framed wire path (tcp).
func withWindowTransports(t *testing.T, np int, f func(t *testing.T, tr Transport)) {
	t.Run("chan", func(t *testing.T) {
		tr := NewChanTransport(np)
		defer tr.Close()
		f(t, tr)
	})
	t.Run("tcp", func(t *testing.T) {
		tr, err := NewTCPTransport(np)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		f(t, tr)
	})
}

// runWindowRanks is runCommsOn without the fatal-on-error policy: fault
// tests need the per-rank errors back to assert on their shape.
func runWindowRanks(tr Transport, cfg CommConfig, body func(c *Comm) error) []error {
	errs := make([]error, tr.NP())
	var wg sync.WaitGroup
	for r := 0; r < tr.NP(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewComm(tr.Endpoint(r))
			c.SetConfig(cfg)
			errs[r] = body(c)
		}(r)
	}
	wg.Wait()
	return errs
}

func TestWindowRectRoundTrip(t *testing.T) {
	src := make([]float64, 48)
	for i := range src {
		src[i] = float64(i)
	}
	cases := []struct {
		name string
		r    Rect
	}{
		{"run", RectRun(5, 7)},
		{"strided", Rect{Off: 2, Dims: []RectDim{{Stride: 3, Count: 5}}}},
		{"2d", Rect{Off: 1, Dims: []RectDim{{Stride: 1, Count: 4}, {Stride: 8, Count: 5}}}},
		{"2d-strided", Rect{Off: 0, Dims: []RectDim{{Stride: 2, Count: 3}, {Stride: 12, Count: 4}}}},
		{"scalar", Rect{Off: 47}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := PackRect(nil, src, tc.r)
			if len(wire) != 8*tc.r.Count() {
				t.Fatalf("packed %d bytes, want %d", len(wire), 8*tc.r.Count())
			}
			// Apply into a same-shaped region of a fresh slice and compare
			// element by element through the rect enumeration.
			viaWire := make([]float64, len(src))
			if err := ApplyRect(viaWire, tc.r, wire); err != nil {
				t.Fatal(err)
			}
			viaCopy := make([]float64, len(src))
			copyRect(viaCopy, tc.r, src, tc.r)
			touched := 0
			tc.r.forEachRun(func(off, stride, count int) {
				for i := 0; i < count; i++ {
					at := off + i*stride
					if viaWire[at] != src[at] || viaCopy[at] != src[at] {
						t.Fatalf("element %d: wire=%v copy=%v want %v", at, viaWire[at], viaCopy[at], src[at])
					}
					touched++
				}
			})
			if touched != tc.r.Count() {
				t.Fatalf("enumerated %d elements, Count()=%d", touched, tc.r.Count())
			}
			// Untouched elements must stay zero.
			zeros := 0
			for _, v := range viaWire {
				if v == 0 {
					zeros++
				}
			}
			if zeros < len(src)-touched {
				t.Fatalf("apply touched elements outside the rect (%d zeros, want >= %d)", zeros, len(src)-touched)
			}
		})
	}
}

func TestWindowRectValidate(t *testing.T) {
	if err := RectRun(0, 8).validate(8); err != nil {
		t.Fatalf("in-bounds rect rejected: %v", err)
	}
	if err := RectRun(1, 8).validate(8); err == nil {
		t.Fatal("overrunning rect accepted")
	}
	if err := RectRun(-1, 2).validate(8); err == nil {
		t.Fatal("negative-offset rect accepted")
	}
	if err := (Rect{Off: 0, Dims: []RectDim{{Stride: 1, Count: 0}}}).validate(8); err == nil {
		t.Fatal("zero-count rect accepted")
	}
	// A put whose payload disagrees with the rect must be rejected.
	if err := ApplyRect(make([]float64, 8), RectRun(0, 4), make([]byte, 24)); err == nil {
		t.Fatal("short payload accepted")
	}
}

// TestWindowPutAsyncRing drives the counted-stream discipline on both
// transports: every rank puts a block into its successor's storage and
// awaits the matching put from its predecessor.  The same traffic must
// produce identical Stats on the direct-copy and framed paths.
func TestWindowPutAsyncRing(t *testing.T) {
	const np, n = 4, 8
	snapshots := map[string]Snapshot{}
	withWindowTransports(t, np, func(t *testing.T, tr Transport) {
		win := NewWindow(np, "ring", tr.Stats(), tr.Cost())
		runCommsOn(t, tr, func(c *Comm) error {
			r := c.Rank()
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(100*r + i)
			}
			win.Register(r, data)
			if err := c.Barrier(); err != nil {
				return err
			}
			next, prev := (r+1)%np, (r+np-1)%np
			// Lower half of my storage -> upper half of next's.
			if err := win.PutAsync(c, next, 1, RectRun(0, n/2), RectRun(n/2, n/2)); err != nil {
				return err
			}
			if err := win.AwaitPut(c, prev, 1, RectRun(n/2, n/2)); err != nil {
				return err
			}
			for i := 0; i < n/2; i++ {
				if want := float64(100*prev + i); data[n/2+i] != want {
					t.Errorf("rank %d element %d: got %v, want %v", r, n/2+i, data[n/2+i], want)
				}
			}
			return c.Barrier()
		})
		// The run is over, so the whole-run totals (barriers plus puts) are
		// deterministic and directly comparable across transports.
		snapshots[t.Name()] = tr.Stats().Snapshot()
	})
	ch, ok1 := snapshots["TestWindowPutAsyncRing/chan"]
	tc, ok2 := snapshots["TestWindowPutAsyncRing/tcp"]
	if !ok1 || !ok2 {
		t.Fatalf("missing snapshots: %v", snapshots)
	}
	// One data message of 8*n/2 bytes per rank, plus identical barrier
	// traffic: the fast path must be accounting-equivalent to the wire.
	if ch.TotalDataMsgs() != tc.TotalDataMsgs() || ch.TotalBytes() != tc.TotalBytes() {
		t.Errorf("stats parity: chan %d msgs/%d bytes, tcp %d msgs/%d bytes",
			ch.TotalDataMsgs(), ch.TotalBytes(), tc.TotalDataMsgs(), tc.TotalBytes())
	}
	if ch.TotalDataMsgs() < np || ch.TotalBytes() < int64(np*8*n/2) {
		t.Errorf("chan put traffic unaccounted: %d msgs / %d bytes", ch.TotalDataMsgs(), ch.TotalBytes())
	}
}

// TestWindowPutAsyncStrided puts a strided 2-D sub-block (a column strip,
// the B_BLOCK ghost shape) and checks only the rect's elements change.
func TestWindowPutAsyncStrided(t *testing.T) {
	const np, rows, cols = 2, 5, 6
	withWindowTransports(t, np, func(t *testing.T, tr Transport) {
		win := NewWindow(np, "strided", tr.Stats(), tr.Cost())
		runCommsOn(t, tr, func(c *Comm) error {
			r := c.Rank()
			data := make([]float64, rows*cols)
			for i := range data {
				data[i] = float64(1000*r + i)
			}
			win.Register(r, data)
			if err := c.Barrier(); err != nil {
				return err
			}
			// Column 1 of rank 0 -> column 4 of rank 1 (row-major, stride
			// cols between consecutive column elements).
			srcCol := Rect{Off: 1, Dims: []RectDim{{Stride: cols, Count: rows}}}
			dstCol := Rect{Off: 4, Dims: []RectDim{{Stride: cols, Count: rows}}}
			if r == 0 {
				if err := win.PutAsync(c, 1, 2, srcCol, dstCol); err != nil {
					return err
				}
			} else {
				if err := win.AwaitPut(c, 0, 2, dstCol); err != nil {
					return err
				}
				for i := 0; i < rows*cols; i++ {
					want := float64(1000 + i)
					if i%cols == 4 {
						want = float64(i - 3) // rank 0's column 1, same row
					}
					if data[i] != want {
						t.Errorf("element %d: got %v, want %v", i, data[i], want)
					}
				}
			}
			return c.Barrier()
		})
	})
}

// TestWindowFencePutGet exercises the fence-epoch discipline, including a
// mutual get cycle (every rank gets from its successor) that would
// deadlock a fixed-order drain, and a second epoch to prove the counters
// reset cleanly.
func TestWindowFencePutGet(t *testing.T) {
	const np, n = 3, 10
	withWindowTransports(t, np, func(t *testing.T, tr Transport) {
		win := NewWindow(np, "fence", tr.Stats(), tr.Cost())
		runCommsOn(t, tr, func(c *Comm) error {
			c.SetConfig(CommConfig{Timeout: 2 * time.Second, Retries: 2})
			r := c.Rank()
			data := make([]float64, n)
			for i := 0; i < 2; i++ {
				data[i] = float64(100*r + i)
			}
			win.Register(r, data)
			if err := c.Barrier(); err != nil {
				return err
			}
			var peers []int
			for p := 0; p < np; p++ {
				if p != r {
					peers = append(peers, p)
				}
			}
			next, prev := (r+1)%np, (r+np-1)%np
			// Epoch 1: put my [0,2) into next's [2,4) and get next's [0,2)
			// into my [6,8) — a full get cycle around the ring.
			if err := win.Put(c, next, RectRun(0, 2), RectRun(2, 2)); err != nil {
				return err
			}
			if err := win.Get(c, next, RectRun(0, 2), RectRun(6, 2)); err != nil {
				return err
			}
			if err := win.Fence(c, peers); err != nil {
				return err
			}
			for i := 0; i < 2; i++ {
				if want := float64(100*prev + i); data[2+i] != want {
					t.Errorf("rank %d put-in element %d: got %v, want %v", r, 2+i, data[2+i], want)
				}
				if want := float64(100*next + i); data[6+i] != want {
					t.Errorf("rank %d got element %d: got %v, want %v", r, 6+i, data[6+i], want)
				}
			}
			// Epoch 2: fresh values through the same window; stale epoch-1
			// counts must not leak in.
			data[0] = float64(100*r) + 0.5
			if err := win.Put(c, prev, RectRun(0, 1), RectRun(9, 1)); err != nil {
				return err
			}
			if err := win.Fence(c, peers); err != nil {
				return err
			}
			if want := float64(100*next) + 0.5; data[9] != want {
				t.Errorf("rank %d epoch-2 element: got %v, want %v", r, data[9], want)
			}
			return c.Barrier()
		})
	})
}

// TestWindowFenceIdlePeer: a rank that issued no operations still fences
// collectively (count-0 announces) without hanging.
func TestWindowFenceIdlePeer(t *testing.T) {
	const np = 3
	withWindowTransports(t, np, func(t *testing.T, tr Transport) {
		win := NewWindow(np, "idle", tr.Stats(), tr.Cost())
		runCommsOn(t, tr, func(c *Comm) error {
			c.SetConfig(CommConfig{Timeout: 2 * time.Second, Retries: 2})
			r := c.Rank()
			data := make([]float64, 4)
			data[0] = float64(r + 1)
			win.Register(r, data)
			if err := c.Barrier(); err != nil {
				return err
			}
			peers := []int{(r + 1) % np, (r + 2) % np}
			if r == 0 { // only rank 0 communicates
				if err := win.Put(c, 1, RectRun(0, 1), RectRun(3, 1)); err != nil {
					return err
				}
			}
			if err := win.Fence(c, peers); err != nil {
				return err
			}
			if r == 1 && data[3] != 1 {
				t.Errorf("rank 1: got %v, want 1", data[3])
			}
			return nil
		})
	})
}

// TestWindowRevokedEpochAborts: window operations through a View whose
// liveness check fails must abort with the checker's error, wrapped with
// the window name and peer rank.
func TestWindowRevokedEpochAborts(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	win := NewWindow(2, "revoked", tr.Stats(), tr.Cost())
	win.Register(0, make([]float64, 8))
	win.Register(1, make([]float64, 8))
	revoked := errors.New("membership epoch revoked")
	v := NewView(tr.Endpoint(0), 1, []int{0, 1}, func() error { return revoked })
	c := NewComm(v)
	c.SetConfig(CommConfig{Timeout: 50 * time.Millisecond, Retries: 1})

	err := win.PutAsync(c, 1, 1, RectRun(0, 2), RectRun(0, 2))
	if !errors.Is(err, revoked) {
		t.Fatalf("put on revoked epoch = %v, want the checker's error", err)
	}
	if !strings.Contains(err.Error(), "window revoked") || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("put error %q does not name the window and rank", err)
	}
	if err := win.AwaitPut(c, 1, 1, RectRun(0, 2)); !errors.Is(err, revoked) {
		t.Fatalf("await on revoked epoch = %v, want the checker's error", err)
	}
	if err := win.Fence(c, []int{1}); !errors.Is(err, revoked) {
		t.Fatalf("fence on revoked epoch = %v, want the checker's error", err)
	}
}

// TestWindowStaleEpochTagNeverMatches: a put token sent under epoch 0
// must not satisfy an await posted under epoch 1 — the fold keeps the tag
// spaces disjoint, so the stale token rots in the mailbox and the await
// times out instead of consuming wrong-epoch traffic.
func TestWindowStaleEpochTagNeverMatches(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	win := NewWindow(2, "stale", tr.Stats(), tr.Cost())
	store0 := []float64{1, 2, 3, 4}
	store1 := make([]float64, 4)
	win.Register(0, store0)
	win.Register(1, store1)

	// Rank 0 puts under epoch 0 (bare endpoint: unfolded tags).
	c0 := NewComm(tr.Endpoint(0))
	if err := win.PutAsync(c0, 1, 1, RectRun(0, 2), RectRun(0, 2)); err != nil {
		t.Fatal(err)
	}
	// Rank 1 awaits under epoch 1: the epoch-0 token must not match.
	v1 := NewView(tr.Endpoint(1), 1, []int{0, 1}, nil)
	c1 := NewComm(v1)
	c1.SetConfig(CommConfig{Timeout: 30 * time.Millisecond, Retries: 1})
	err := win.AwaitPut(c1, 0, 1, RectRun(0, 2))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("await across epochs = %v, want ErrTimeout (stale tag must not match)", err)
	}
	// The epoch-0 token is still there for an epoch-0 await.
	c1e0 := NewComm(tr.Endpoint(1))
	if err := win.AwaitPut(c1e0, 0, 1, RectRun(0, 2)); err != nil {
		t.Fatalf("same-epoch await after cross-epoch miss: %v", err)
	}
	if store1[0] != 1 || store1[1] != 2 {
		t.Fatalf("put data not applied: %v", store1[:2])
	}
}

// faultMatrixSetup builds the layered transport for a window fault case:
// base transport per mode, fault injector from the plan, and an integrity
// layer outside the injector when the plan corrupts frames (mirroring
// apps.assembleTransport).
func faultMatrixSetup(t *testing.T, tcp bool, plan string) (Transport, func()) {
	t.Helper()
	p, err := ParseFaultPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	var base Transport
	if tcp {
		base, err = NewTCPTransport(2)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		base = NewChanTransport(2)
	}
	var tr Transport = NewFaultTransport(base, p)
	if p.HasKind(FaultCorrupt) {
		tr = NewIntegrityTransport(tr)
	}
	return tr, func() { tr.Close() }
}

// windowFaultCfg keeps fault-matrix cases fast: short deadlines, a couple
// of escalating retries.
var windowFaultCfg = CommConfig{
	Timeout:    25 * time.Millisecond,
	Retries:    3,
	Backoff:    time.Millisecond,
	MaxTimeout: 200 * time.Millisecond,
}

// windowFaultBody is the canonical two-rank put/await exchange used by
// the fault-matrix cases.  The leading barrier proves win=1 rules leave
// collective traffic alone — an unscoped rule would fire on the barrier
// and desynchronize the schedule.
func windowFaultBody(win *Window) func(c *Comm) error {
	return func(c *Comm) error {
		r := c.Rank()
		data := make([]float64, 8)
		for i := range data {
			data[i] = float64(10*r + i)
		}
		win.Register(r, data)
		if err := c.Barrier(); err != nil {
			return fmt.Errorf("pre-exchange barrier: %w", err)
		}
		if r == 0 {
			return win.PutAsync(c, 1, 1, RectRun(0, 4), RectRun(4, 4))
		}
		if err := win.AwaitPut(c, 0, 1, RectRun(4, 4)); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if data[4+i] != float64(i) {
				return fmt.Errorf("element %d: got %v, want %v", 4+i, data[4+i], float64(i))
			}
		}
		return nil
	}
}

// TestFaultMatrixWindowSendErr: a persistent injected send fault on the
// put token/frame exhausts the sender's retries with a wrapped error
// naming the window and peer; the starved awaiter times out.  No panics,
// no hangs, on either transport.
func TestFaultMatrixWindowSendErr(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		name := map[bool]string{false: "chan", true: "tcp"}[tcp]
		t.Run(name, func(t *testing.T) {
			tr, closeTr := faultMatrixSetup(t, tcp, "senderr,rank=0,win=1")
			defer closeTr()
			win := NewWindow(2, "senderr", tr.Stats(), tr.Cost())
			errs := runWindowRanks(tr, windowFaultCfg, windowFaultBody(win))
			if !errors.Is(errs[0], ErrInjected) {
				t.Errorf("rank 0 = %v, want wrapped ErrInjected", errs[0])
			}
			for _, frag := range []string{"window senderr", "rank 1"} {
				if errs[0] == nil || !strings.Contains(errs[0].Error(), frag) {
					t.Errorf("rank 0 error %q does not contain %q", errs[0], frag)
				}
			}
			if !errors.Is(errs[1], ErrTimeout) {
				t.Errorf("rank 1 = %v, want wrapped ErrTimeout", errs[1])
			}
		})
	}
}

// TestFaultMatrixWindowDrop: one silently dropped put leaves the sender
// successful and the awaiter timing out with an error naming the window —
// the lost-packet asymmetry, scoped by win=1 so the barrier is untouched.
func TestFaultMatrixWindowDrop(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		name := map[bool]string{false: "chan", true: "tcp"}[tcp]
		t.Run(name, func(t *testing.T) {
			tr, closeTr := faultMatrixSetup(t, tcp, "drop,rank=0,count=1,win=1")
			defer closeTr()
			win := NewWindow(2, "dropwin", tr.Stats(), tr.Cost())
			errs := runWindowRanks(tr, windowFaultCfg, windowFaultBody(win))
			if errs[0] != nil {
				t.Errorf("rank 0 = %v, want nil (drop is silent at the sender)", errs[0])
			}
			if !errors.Is(errs[1], ErrTimeout) {
				t.Errorf("rank 1 = %v, want wrapped ErrTimeout", errs[1])
			}
			if errs[1] == nil || !strings.Contains(errs[1].Error(), "window dropwin") {
				t.Errorf("rank 1 error %q does not name the window", errs[1])
			}
		})
	}
}

// TestFaultMatrixWindowDelay: a delayed put completion heals under the
// escalating receive deadline — the await retries until the late frame
// lands, and the data is intact.
func TestFaultMatrixWindowDelay(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		name := map[bool]string{false: "chan", true: "tcp"}[tcp]
		t.Run(name, func(t *testing.T) {
			tr, closeTr := faultMatrixSetup(t, tcp, "delay,rank=0,delay=40ms,count=1,win=1")
			defer closeTr()
			win := NewWindow(2, "delaywin", tr.Stats(), tr.Cost())
			errs := runWindowRanks(tr, windowFaultCfg, windowFaultBody(win))
			for r, err := range errs {
				if err != nil {
					t.Errorf("rank %d = %v, want heal via retry", r, err)
				}
			}
		})
	}
}

// TestFaultMatrixWindowBitflip: wire corruption of window traffic under
// an integrity layer surfaces ErrIntegrity at the awaiter instead of
// silently corrupt data.  On the shared-memory path the corruptible frame
// is the CRC-trailed notification token; on TCP it is the payload itself.
func TestFaultMatrixWindowBitflip(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		name := map[bool]string{false: "chan", true: "tcp"}[tcp]
		t.Run(name, func(t *testing.T) {
			tr, closeTr := faultMatrixSetup(t, tcp, "bitflip,rank=0,count=1,win=1")
			defer closeTr()
			win := NewWindow(2, "flipwin", tr.Stats(), tr.Cost())
			errs := runWindowRanks(tr, windowFaultCfg, windowFaultBody(win))
			if errs[0] != nil {
				t.Errorf("rank 0 = %v, want nil (corruption is invisible to the sender)", errs[0])
			}
			if !errors.Is(errs[1], ErrIntegrity) {
				t.Errorf("rank 1 = %v, want wrapped ErrIntegrity", errs[1])
			}
			if errs[1] == nil || !strings.Contains(errs[1].Error(), "window flipwin") {
				t.Errorf("rank 1 error %q does not name the window", errs[1])
			}
		})
	}
}

// TestFaultMatrixWindowFenceDrop: dropping a fence-epoch put starves the
// target's drain; both ranks unwind with wrapped fence errors instead of
// deadlocking — the sender because its peer never acks, the target
// because the announced operation never arrives.
func TestFaultMatrixWindowFenceDrop(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		name := map[bool]string{false: "chan", true: "tcp"}[tcp]
		t.Run(name, func(t *testing.T) {
			tr, closeTr := faultMatrixSetup(t, tcp, "drop,rank=0,count=1,win=1")
			defer closeTr()
			win := NewWindow(2, "fencedrop", tr.Stats(), tr.Cost())
			errs := runWindowRanks(tr, windowFaultCfg, func(c *Comm) error {
				r := c.Rank()
				win.Register(r, make([]float64, 4))
				if err := c.Barrier(); err != nil {
					return err
				}
				if r == 0 {
					if err := win.Put(c, 1, RectRun(0, 2), RectRun(0, 2)); err != nil {
						return err
					}
				}
				return win.Fence(c, []int{1 - r})
			})
			for r, err := range errs {
				if err == nil {
					t.Errorf("rank %d = nil, want a fence error", r)
					continue
				}
				if !strings.Contains(err.Error(), "fence") || !strings.Contains(err.Error(), "window fencedrop") {
					t.Errorf("rank %d error %q does not name the fence and window", r, err)
				}
			}
		})
	}
}
