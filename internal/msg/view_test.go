package msg

import (
	"errors"
	"testing"
	"time"
)

func TestFoldTag(t *testing.T) {
	for _, tc := range []struct {
		epoch, tag, want int
	}{
		{0, 42, 42}, // epoch 0 is the identity
		{0, TagCollBase, TagCollBase},
		{1, 42, 42 | 1<<40},
		{3, TagHeartbeat, TagHeartbeat | 3<<40},
		{2, AnyTag, AnyTag}, // wildcards pass through
	} {
		if got := FoldTag(tc.epoch, tc.tag); got != tc.want {
			t.Errorf("FoldTag(%d, %#x) = %#x, want %#x", tc.epoch, tc.tag, got, tc.want)
		}
		if tc.tag >= 0 {
			if back := UnfoldTag(FoldTag(tc.epoch, tc.tag)); back != tc.tag {
				t.Errorf("UnfoldTag(FoldTag(%d, %#x)) = %#x", tc.epoch, tc.tag, back)
			}
		}
	}
	// Distinct epochs of the same tag never collide on the wire.
	if FoldTag(1, 7) == FoldTag(2, 7) {
		t.Error("epoch 1 and 2 folds collide")
	}
}

// TestFoldTagBoundary: the fold has exactly MaxEpoch epochs of headroom.
// The last representable epoch folds and unfolds cleanly and stays
// non-negative (a negative folded tag would alias the AnyTag wildcard);
// one past it must fail loudly — CheckEpoch as an error for transition
// time, FoldTag as a panic for the can't-happen path.
func TestFoldTagBoundary(t *testing.T) {
	if got := FoldTag(MaxEpoch, TagCollBase); got < 0 {
		t.Fatalf("FoldTag(MaxEpoch, TagCollBase) = %#x, negative (wildcard alias)", got)
	} else if UnfoldTag(got) != TagCollBase {
		t.Fatalf("UnfoldTag(FoldTag(MaxEpoch, TagCollBase)) = %#x, want %#x", UnfoldTag(got), TagCollBase)
	}
	if err := CheckEpoch(MaxEpoch); err != nil {
		t.Errorf("CheckEpoch(MaxEpoch) = %v, want nil", err)
	}
	if err := CheckEpoch(MaxEpoch + 1); err == nil {
		t.Error("CheckEpoch(MaxEpoch+1) accepted an unfoldable epoch")
	}
	if err := CheckEpoch(-1); err == nil {
		t.Error("CheckEpoch(-1) accepted a negative epoch")
	}
	defer func() {
		if recover() == nil {
			t.Error("FoldTag(MaxEpoch+1, tag) did not panic")
		}
	}()
	FoldTag(MaxEpoch+1, TagCollBase)
}

// TestViewRenumbering: a 4-rank transport viewed as the 3 survivors
// [0 1 3] renumbers ranks, translates delivered From fields back to view
// coordinates, and isolates epochs by tag fold.
func TestViewRenumbering(t *testing.T) {
	tr := NewChanTransport(4)
	defer tr.Close()
	phys := []int{0, 1, 3}
	v0 := NewView(tr.Endpoint(0), 1, phys, nil)
	v2 := NewView(tr.Endpoint(3), 1, phys, nil) // physical 3 = view 2

	if v2.Rank() != 2 || v2.NP() != 3 || v2.Phys(2) != 3 {
		t.Fatalf("view numbering: rank %d np %d phys(2)=%d", v2.Rank(), v2.NP(), v2.Phys(2))
	}
	if err := v0.Send(2, 9001, EncodeInts([]int{11})); err != nil {
		t.Fatal(err)
	}
	p, err := v2.Recv(0, 9001)
	if err != nil {
		t.Fatal(err)
	}
	if p.From != 0 || p.Tag != 9001 || DecodeInts(p.Data)[0] != 11 {
		t.Fatalf("packet %+v: want From=0 Tag=9001 payload 11", p)
	}

	// A straggler sent on epoch 0 (unfolded tag) never matches an epoch-1
	// receive for the same user tag.
	if err := tr.Endpoint(0).Send(3, 9001, EncodeInts([]int{99})); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.RecvTimeout(0, 9001, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("revoked-epoch straggler matched an epoch-1 receive: %v", err)
	}

	// Out-of-range view ranks are rejected, not misrouted.
	if err := v0.Send(3, 9001, nil); err == nil {
		t.Fatal("send to rank outside view should fail")
	}
}

// TestViewAnySource: AnySource receives work through a view and report
// the sender in view coordinates.
func TestViewAnySource(t *testing.T) {
	tr := NewChanTransport(4)
	defer tr.Close()
	phys := []int{0, 1, 3}
	v1 := NewView(tr.Endpoint(1), 2, phys, nil)
	v2 := NewView(tr.Endpoint(3), 2, phys, nil)
	if err := v2.Send(1, 9002, EncodeInts([]int{5})); err != nil {
		t.Fatal(err)
	}
	p, err := v1.Recv(AnySource, 9002)
	if err != nil {
		t.Fatal(err)
	}
	if p.From != 2 {
		t.Fatalf("From = %d (physical?), want view rank 2", p.From)
	}
}

// TestViewCheckLiveAbortsRetry: a view's liveness check is consulted
// before every retry attempt, so a revoked epoch aborts a blocked
// receive with the checker's typed error instead of grinding through
// timeouts.
func TestViewCheckLiveAbortsRetry(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	revoked := errors.New("epoch revoked (test)")
	var dead bool
	v := NewView(tr.Endpoint(0), 1, []int{0, 1}, func() error {
		if dead {
			return revoked
		}
		return nil
	})
	cfg := CommConfig{Timeout: 20 * time.Millisecond, Retries: 5}
	dead = true
	start := time.Now()
	_, err := RecvRetry(v, cfg, nil, "test", 1, 9001)
	if !errors.Is(err, revoked) {
		t.Fatalf("err = %v, want the checker's error", err)
	}
	if el := time.Since(start); el > 15*time.Millisecond {
		t.Fatalf("abort took %v; checker should fire before the first timeout", el)
	}
}

// TestViewExcludingSelfPanics: constructing a view that excludes its own
// endpoint is a programming error, caught loudly.
func TestViewExcludingSelfPanics(t *testing.T) {
	tr := NewChanTransport(3)
	defer tr.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("NewView excluding self should panic")
		}
	}()
	NewView(tr.Endpoint(2), 1, []int{0, 1}, nil)
}
