package msg

import (
	"testing"
	"time"
)

// TestEscalateCap: the per-attempt exponential escalation must respect the
// configured ceiling, never overflow into a negative Duration, and keep
// the historical doubling behaviour below the cap.
func TestEscalateCap(t *testing.T) {
	base := 10 * time.Millisecond
	// Doubling below the cap.
	if got := escalate(base, 0, time.Second); got != base {
		t.Fatalf("attempt 0 = %v, want %v", got, base)
	}
	if got := escalate(base, 3, time.Second); got != base<<3 {
		t.Fatalf("attempt 3 = %v, want %v", got, base<<3)
	}
	// Clamped at the cap.
	if got := escalate(base, 10, 100*time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("capped = %v, want 100ms", got)
	}
	// Saturation, not overflow, with absurd inputs and no cap.
	for _, attempt := range []int{16, 63, 1 << 20} {
		got := escalate(time.Hour*1e6, attempt, 0)
		if got <= 0 {
			t.Fatalf("attempt %d: escalation overflowed to %v", attempt, got)
		}
	}
	// With a cap, even absurd inputs land exactly on the cap.
	if got := escalate(time.Hour*1e6, 1<<20, time.Minute); got != time.Minute {
		t.Fatalf("absurd capped = %v, want 1m", got)
	}
}

// TestRecvRetryHonorsMaxTimeout: a retry chain with an aggressive Timeout
// and many Retries must not stall for escalated deadlines beyond
// MaxTimeout — a regression test for the formerly unbounded doubling.
func TestRecvRetryHonorsMaxTimeout(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	cfg := CommConfig{
		Timeout:    2 * time.Millisecond,
		Retries:    6, // uncapped escalation would wait 2+4+...+128 ms
		MaxTimeout: 4 * time.Millisecond,
	}
	start := time.Now()
	_, err := RecvRetry(tr.Endpoint(0), cfg, nil, "test", 1, 7)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("receive with no sender should fail")
	}
	// Uncapped: 2+4+8+16+32+64+128 = 254ms.  Capped: 2+4+4*5 = 26ms.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("retry chain took %v; MaxTimeout cap not applied", elapsed)
	}
}
