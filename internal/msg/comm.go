package msg

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/trace"
)

// CommConfig bounds how long a collective may wait on the transport.  The
// zero value preserves the historical behaviour: block forever, fail only
// when the transport errors.
//
// With a Timeout set, every receive inside a collective runs under a
// deadline; a timed-out or failed operation is retried up to Retries times
// with exponential escalation (the deadline doubles per attempt, and
// failed sends sleep Backoff<<attempt between attempts) before the
// collective returns a wrapped error naming the collective and rank.
// Errors that cannot heal (ErrClosed, ErrIntegrity — the corrupt frame
// is already consumed) are never retried.
type CommConfig struct {
	// Timeout is the per-receive deadline inside collectives; 0 means
	// wait forever.
	Timeout time.Duration
	// Retries is the number of extra attempts after the first failure.
	Retries int
	// Backoff is the initial sleep between failed send attempts; it
	// doubles per retry.  0 means retry immediately.
	Backoff time.Duration
	// MaxTimeout caps the escalated per-receive deadline: no retry ever
	// waits longer than this, however many attempts have failed.  0 means
	// no explicit cap (the escalation still saturates rather than
	// overflowing).
	MaxTimeout time.Duration
	// MaxBackoff likewise caps the escalated sleep between failed send
	// attempts.
	MaxBackoff time.Duration
	// Jitter randomizes every escalated backoff sleep by ±Jitter as a
	// fraction of the escalated value (clamped to [0,1]).  Without it the
	// escalation is fully deterministic, so all ranks retrying against
	// one slow peer wake in lockstep and collide again; a fraction around
	// 0.5 spreads the herd.  The jitter stream is a pure function of
	// (JitterSeed, rank, operation, attempt), so a seeded run replays
	// identically.
	Jitter float64
	// JitterSeed seeds the deterministic jitter stream (any value,
	// including 0, is a valid seed).
	JitterSeed int64
}

// maxEscalateShift saturates the exponential deadline/backoff escalation so
// the shift cannot overflow a Duration even with absurd retry counts.
const maxEscalateShift = 16

// escalate returns d doubled attempt times, saturating (never negative or
// smaller than d on overflow) and clamped to max when max > 0.
func escalate(d time.Duration, attempt int, max time.Duration) time.Duration {
	if attempt > maxEscalateShift {
		attempt = maxEscalateShift
	}
	e := d << attempt
	if e>>attempt != d || e < 0 { // overflow: saturate
		e = 1<<63 - 1
	}
	if max > 0 && e > max {
		e = max
	}
	return e
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// stateless hash used to derive the jitter stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashOp folds an operation name into the jitter key.
func hashOp(op string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211 // FNV-1a
	h := uint64(offset)
	for i := 0; i < len(op); i++ {
		h = (h ^ uint64(op[i])) * prime
	}
	return h
}

// BackoffDelay returns the sleep before retry attempt+1 of the named
// operation on the given rank: the exponentially escalated Backoff,
// randomized by ±Jitter when configured.  The jitter is a pure function
// of (JitterSeed, rank, op, attempt) — deterministic for reproducible
// tests, yet distinct across ranks and attempts so retry herds against a
// slow peer de-synchronize.  Zero Jitter reproduces the historical
// deterministic escalation exactly.
func (cfg CommConfig) BackoffDelay(rank int, op string, attempt int) time.Duration {
	base := escalate(cfg.Backoff, attempt, cfg.MaxBackoff)
	j := cfg.Jitter
	if j <= 0 || base <= 0 {
		return base
	}
	if j > 1 {
		j = 1
	}
	h := splitmix64(uint64(cfg.JitterSeed) ^ hashOp(op) ^ uint64(rank)<<32 ^ uint64(attempt))
	u := float64(h>>11) / float64(1<<53) // uniform in [0,1)
	d := time.Duration(float64(base) * (1 + j*(2*u-1)))
	if d < 0 {
		d = 0
	}
	if cfg.MaxBackoff > 0 && d > cfg.MaxBackoff {
		d = cfg.MaxBackoff
	}
	return d
}

// liveChecker is the optional endpoint facet consulted before every
// retry attempt: a non-nil error (typically machine.ErrEpochRevoked from
// an epoch View) aborts the operation immediately instead of letting it
// time out attempt by attempt against a peer that is already known dead.
type liveChecker interface{ CheckLive() error }

func checkLive(ep Endpoint) error {
	if lc, ok := ep.(liveChecker); ok {
		return lc.CheckLive()
	}
	return nil
}

// terminal reports whether err can never heal by retrying: the
// transport is closed, or a corrupt frame was already consumed from the
// mailbox (retrying the receive would just time out on the gap).
func terminal(err error) bool {
	return errors.Is(err, ErrClosed) || errors.Is(err, ErrIntegrity)
}

// SendRetry sends with the config's bounded-retry policy, wrapping any
// terminal error with the operation name and sending rank.  Each retry is
// recorded as a "retry:<op>" instant on the tracer (when non-nil).
func SendRetry(ep Endpoint, cfg CommConfig, tr *trace.Tracer, op string, to, tag int, data []byte) error {
	for attempt := 0; ; attempt++ {
		if err := checkLive(ep); err != nil {
			return fmt.Errorf("msg: %s: rank %d: send to %d: %w", op, ep.Rank(), to, err)
		}
		err := ep.Send(to, tag, data)
		if err == nil {
			return nil
		}
		if attempt >= cfg.Retries || terminal(err) {
			return fmt.Errorf("msg: %s: rank %d: send to %d: %w", op, ep.Rank(), to, err)
		}
		if tr != nil {
			tr.Instant(ep.Rank(), trace.CatCollective, "retry:"+op, to, int64(attempt+1))
		}
		if cfg.Backoff > 0 {
			time.Sleep(cfg.BackoffDelay(ep.Rank(), op, attempt))
		}
	}
}

// RecvRetry receives with the config's deadline/bounded-retry policy,
// wrapping any terminal error with the operation name and receiving rank.
// With no Timeout configured it blocks forever (but still retries
// recoverable receive errors up to Retries times).
func RecvRetry(ep Endpoint, cfg CommConfig, tr *trace.Tracer, op string, from, tag int) (Packet, error) {
	for attempt := 0; ; attempt++ {
		if err := checkLive(ep); err != nil {
			return Packet{}, fmt.Errorf("msg: %s: rank %d: recv from %d: %w", op, ep.Rank(), from, err)
		}
		var p Packet
		var err error
		if cfg.Timeout > 0 {
			p, err = ep.RecvTimeout(from, tag, escalate(cfg.Timeout, attempt, cfg.MaxTimeout))
		} else {
			p, err = ep.Recv(from, tag)
		}
		if err == nil {
			return p, nil
		}
		if attempt >= cfg.Retries || terminal(err) {
			return Packet{}, fmt.Errorf("msg: %s: rank %d: recv from %d: %w", op, ep.Rank(), from, err)
		}
		if tr != nil {
			tr.Instant(ep.Rank(), trace.CatCollective, "retry:"+op, from, int64(attempt+1))
		}
		if cfg.Backoff > 0 {
			time.Sleep(cfg.BackoffDelay(ep.Rank(), op, attempt))
		}
	}
}

// Comm layers collective operations over an Endpoint.  Each logical
// processor of an SPMD program owns one Comm; because every processor
// executes the same sequence of collectives, a shared atomic sequence
// counter per transport is not needed — each Comm tracks its own count and
// the counts agree, yielding matching tags.
//
// All collectives use O(log P) binomial/dissemination algorithms where the
// operation allows, mirroring what the VFE's "specialized routines for
// handling reductions" (§3.2) would provide.
type Comm struct {
	ep  Endpoint
	tr  *trace.Tracer
	cfg CommConfig
	seq int64
}

// NewComm wraps an endpoint.  If the endpoint exposes a Tracer (both
// built-in transports do), every collective records a span on it.
func NewComm(ep Endpoint) *Comm {
	c := &Comm{ep: ep}
	if tp, ok := ep.(interface{ Tracer() *trace.Tracer }); ok {
		c.tr = tp.Tracer()
	}
	return c
}

// SetConfig installs the deadline/retry policy for this Comm's
// collectives.  Every processor of an SPMD program must install the same
// config (collective counts stay aligned either way, but retry behaviour
// should be uniform).
func (c *Comm) SetConfig(cfg CommConfig) { c.cfg = cfg }

// Config returns the installed deadline/retry policy.
func (c *Comm) Config() CommConfig { return c.cfg }

// send/recv are the retrying transport ops all collectives go through.
func (c *Comm) send(op string, to, tag int, data []byte) error {
	return SendRetry(c.ep, c.cfg, c.tr, op, to, tag, data)
}

func (c *Comm) recv(op string, from, tag int) (Packet, error) {
	return RecvRetry(c.ep, c.cfg, c.tr, op, from, tag)
}

// span opens a collective-category trace span.  Call sites guard on
// c.tr != nil themselves so the untraced hot path (barriers run in the
// hundreds of nanoseconds) skips the Rank() call, the Span construction,
// and the deferred End entirely.
func (c *Comm) span(name string) trace.Span {
	return c.tr.BeginSpan(c.ep.Rank(), trace.CatCollective, name)
}

// Rank returns this processor's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// NP returns the number of processors.
func (c *Comm) NP() int { return c.ep.NP() }

// Endpoint exposes the underlying endpoint for point-to-point traffic.
func (c *Comm) Endpoint() Endpoint { return c.ep }

// nextTag returns a fresh collective tag.  The sequence is monotonic and
// never wraps (the tag space above TagCollBase is unbounded and tags are 8
// bytes on the TCP wire), so a long run can never reuse a tag that still
// has an unconsumed message sitting in a mailbox — the wraparound bug the
// old `seq % (1<<20)` fold had.
func (c *Comm) nextTag() int {
	c.seq++
	return TagCollBase + int(c.seq)
}

// Barrier blocks until all processors have entered it (dissemination
// algorithm, ceil(log2 P) rounds).
func (c *Comm) Barrier() error {
	if c.tr != nil {
		defer c.span("barrier").End()
	}
	np, rank := c.NP(), c.Rank()
	tag := c.nextTag()
	if np == 1 {
		return nil
	}
	for k := 1; k < np; k <<= 1 {
		to := (rank + k) % np
		from := (rank - k + np) % np
		if err := c.send("barrier", to, tag, nil); err != nil {
			return err
		}
		if _, err := c.recv("barrier", from, tag); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts buf from root; on non-roots the returned slice holds the
// received data (buf is ignored there and may be nil).
func (c *Comm) Bcast(root int, buf []byte) ([]byte, error) {
	if c.tr != nil {
		defer c.span("bcast").End()
	}
	np, rank := c.NP(), c.Rank()
	tag := c.nextTag()
	if np == 1 {
		return buf, nil
	}
	// Binomial tree rooted at root: operate in the rotated rank space
	// vrank = (rank - root + np) % np.
	vrank := (rank - root + np) % np
	if vrank != 0 {
		p, err := c.recv("bcast", AnySource, tag)
		if err != nil {
			return nil, err
		}
		buf = p.Data
	}
	// Forward to children: vchild = vrank + 2^k for 2^k > vrank's low bits.
	mask := 1
	for mask < np && vrank&mask == 0 {
		vchild := vrank | mask
		if vchild < np {
			child := (vchild + root) % np
			if err := c.send("bcast", child, tag, buf); err != nil {
				return nil, err
			}
		}
		mask <<= 1
	}
	// Consume remaining: non-root ranks with low set bit stop forwarding.
	return buf, nil
}

// ReduceF64 reduces elementwise over op into root; on root the returned
// slice holds the reduction, on others it is nil.  All processors must
// pass slices of identical length.
func (c *Comm) ReduceF64(root int, vals []float64, op func(a, b float64) float64) ([]float64, error) {
	if c.tr != nil {
		defer c.span("reduce").End()
	}
	np, rank := c.NP(), c.Rank()
	tag := c.nextTag()
	acc := make([]float64, len(vals))
	copy(acc, vals)
	if np == 1 {
		return acc, nil
	}
	vrank := (rank - root + np) % np
	var got []float64 // decode scratch, shared by all receive rounds
	// Binomial tree: in round k, vranks with bit k set send to vrank-2^k.
	for mask := 1; mask < np; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % np
			if err := c.send("reduce", parent, tag, EncodeFloat64s(acc)); err != nil {
				return nil, err
			}
			return nil, nil
		}
		// I receive from vrank+mask if that rank exists.
		if vrank|mask < np {
			p, err := c.recv("reduce", ((vrank|mask)+root)%np, tag)
			if err != nil {
				return nil, err
			}
			if len(p.Data) != 8*len(acc) {
				return nil, fmt.Errorf("msg: reduce length mismatch %d vs %d", len(p.Data)/8, len(acc))
			}
			if got == nil {
				got = make([]float64, len(acc))
			}
			DecodeFloat64sInto(got, p.Data)
			for i := range acc {
				acc[i] = op(acc[i], got[i])
			}
		}
	}
	return acc, nil
}

// AllreduceF64 reduces over all processors and distributes the result to
// everyone.
func (c *Comm) AllreduceF64(vals []float64, op func(a, b float64) float64) ([]float64, error) {
	red, err := c.ReduceF64(0, vals, op)
	if err != nil {
		return nil, err
	}
	var buf []byte
	if c.Rank() == 0 {
		buf = EncodeFloat64s(red)
	}
	out, err := c.Bcast(0, buf)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(out), nil
}

// ReduceInts reduces an []int elementwise into root.
func (c *Comm) ReduceInts(root int, vals []int, op func(a, b int) int) ([]int, error) {
	f := make([]float64, len(vals))
	for i, v := range vals {
		f[i] = float64(v)
	}
	fop := func(a, b float64) float64 { return float64(op(int(a), int(b))) }
	r, err := c.ReduceF64(root, f, fop)
	if err != nil || r == nil {
		return nil, err
	}
	out := make([]int, len(r))
	for i, v := range r {
		out[i] = int(v)
	}
	return out, nil
}

// AllreduceInts reduces an []int over all processors; every processor gets
// the result.  Values must stay within float64's exact-integer range,
// which all runtime uses (counts, bounds) do.
func (c *Comm) AllreduceInts(vals []int, op func(a, b int) int) ([]int, error) {
	f := make([]float64, len(vals))
	for i, v := range vals {
		f[i] = float64(v)
	}
	fop := func(a, b float64) float64 { return float64(op(int(a), int(b))) }
	r, err := c.AllreduceF64(f, fop)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(r))
	for i, v := range r {
		out[i] = int(v)
	}
	return out, nil
}

// Gather collects each processor's buf at root.  On root, the returned
// slice has NP entries indexed by rank; on others it is nil.
func (c *Comm) Gather(root int, buf []byte) ([][]byte, error) {
	if c.tr != nil {
		defer c.span("gather").End()
	}
	np, rank := c.NP(), c.Rank()
	tag := c.nextTag()
	if rank != root {
		return nil, c.send("gather", root, tag, buf)
	}
	out := make([][]byte, np)
	cp := make([]byte, len(buf))
	copy(cp, buf)
	out[rank] = cp
	for i := 0; i < np-1; i++ {
		p, err := c.recv("gather", AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[p.From] = p.Data
	}
	return out, nil
}

// Allgather collects each processor's buf everywhere (gather at 0 followed
// by a broadcast of the framed concatenation).
func (c *Comm) Allgather(buf []byte) ([][]byte, error) {
	np := c.NP()
	parts, err := c.Gather(0, buf)
	if err != nil {
		return nil, err
	}
	var frame []byte
	if c.Rank() == 0 {
		// frame: np lengths then the payloads
		total := 4 * np
		for _, p := range parts {
			total += len(p)
		}
		frame = make([]byte, 4*np, total)
		for i, p := range parts {
			PutUint32(frame, 4*i, uint32(len(p)))
		}
		for _, p := range parts {
			frame = append(frame, p...)
		}
	}
	frame, err = c.Bcast(0, frame)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, np)
	off := 4 * np
	for i := 0; i < np; i++ {
		n := int(GetUint32(frame, 4*i))
		out[i] = frame[off : off+n]
		off += n
	}
	return out, nil
}

// AllgatherInts gathers one int slice per processor everywhere.
func (c *Comm) AllgatherInts(vals []int) ([][]int, error) {
	parts, err := c.Allgather(EncodeInts(vals))
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(parts))
	for i, p := range parts {
		out[i] = DecodeInts(p)
	}
	return out, nil
}

// Alltoallv sends send[i] to processor i and returns the NP buffers
// received (recv[j] is from processor j).  nil/empty sends are skipped —
// message counts reflect only real traffic, matching how a redistribution
// executes.  A barrier-free ring schedule staggers the peers.
func (c *Comm) Alltoallv(send [][]byte) ([][]byte, error) {
	np, rank := c.NP(), c.Rank()
	if len(send) != np {
		return nil, fmt.Errorf("msg: alltoallv needs %d send buffers, got %d", np, len(send))
	}
	if c.tr != nil {
		defer c.span("alltoallv").End()
	}
	tag := c.nextTag()
	recv := make([][]byte, np)
	if send[rank] != nil {
		cp := make([]byte, len(send[rank]))
		copy(cp, send[rank])
		recv[rank] = cp
	}
	// Peers learn what to expect through an allgather of per-destination
	// sizes (-1 marks "no message"); only real payloads then move, so the
	// payload message counts reflect the actual transfer pattern.
	sizes := make([]int, np)
	for i := range send {
		sizes[i] = len(send[i])
		if send[i] == nil {
			sizes[i] = -1
		}
	}
	allSizes, err := c.AllgatherInts(sizes)
	if err != nil {
		return nil, fmt.Errorf("msg: alltoallv: rank %d: size exchange: %w", rank, err)
	}
	for r := 1; r < np; r++ {
		to := (rank + r) % np
		from := (rank - r + np) % np
		if send[to] != nil {
			if err := c.send("alltoallv", to, tag, send[to]); err != nil {
				return nil, err
			}
		}
		if allSizes[from][rank] >= 0 {
			p, err := c.recv("alltoallv", from, tag)
			if err != nil {
				return nil, err
			}
			recv[from] = p.Data
		}
	}
	return recv, nil
}

// Scatterv distributes bufs[r] from root to each rank r; every rank
// returns its own buffer (root's copy is local).
func (c *Comm) Scatterv(root int, bufs [][]byte) ([]byte, error) {
	if c.tr != nil {
		defer c.span("scatterv").End()
	}
	np, rank := c.NP(), c.Rank()
	tag := c.nextTag()
	if rank == root {
		if len(bufs) != np {
			return nil, fmt.Errorf("msg: scatterv needs %d buffers, got %d", np, len(bufs))
		}
		for r := 0; r < np; r++ {
			if r == root {
				continue
			}
			if err := c.send("scatterv", r, tag, bufs[r]); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(bufs[root]))
		copy(cp, bufs[root])
		return cp, nil
	}
	p, err := c.recv("scatterv", root, tag)
	if err != nil {
		return nil, err
	}
	return p.Data, nil
}

// AlltoallvSched is Alltoallv for the case where every processor already
// knows which peers will send to it (recvFrom[j] true means a message from
// j is expected).  Redistribution schedules are computed symmetrically on
// all processors (§3.2.2), so no size exchange is needed and the message
// count equals the number of non-empty transfers — exactly the paper's
// cost model for DISTRIBUTE.
func (c *Comm) AlltoallvSched(send [][]byte, recvFrom []bool) ([][]byte, error) {
	np, rank := c.NP(), c.Rank()
	if len(send) != np || len(recvFrom) != np {
		return nil, fmt.Errorf("msg: alltoallv-sched needs %d buffers/flags, got %d/%d", np, len(send), len(recvFrom))
	}
	if c.tr != nil {
		defer c.span("alltoallv-sched").End()
	}
	tag := c.nextTag()
	recv := make([][]byte, np)
	if send[rank] != nil {
		cp := make([]byte, len(send[rank]))
		copy(cp, send[rank])
		recv[rank] = cp
	}
	for r := 1; r < np; r++ {
		to := (rank + r) % np
		from := (rank - r + np) % np
		if send[to] != nil {
			if err := c.send("alltoallv-sched", to, tag, send[to]); err != nil {
				return nil, err
			}
		}
		if recvFrom[from] {
			p, err := c.recv("alltoallv-sched", from, tag)
			if err != nil {
				return nil, err
			}
			recv[from] = p.Data
		}
	}
	return recv, nil
}

// AlltoallvStream is AlltoallvSched with just-in-time buffers: the same
// staggered ring order and the same messages on the wire, but each
// round's send buffer is produced by pack immediately before the send
// and each received payload is handed to consume immediately after the
// receive — so at most one outgoing and one incoming buffer per peer are
// resident at any time.  This is the executor primitive of
// memory-bounded redistribution (pairwise-exchange rounds).
//
// pack(to) returns the payload for peer `to`, or nil for "no message";
// it is only called for remote peers (to != rank — callers handle the
// self-transfer as a local copy).  consume(from, data) is likewise only
// called for remote peers, once per expected message; data is the
// transport's buffer and must be fully used (or copied) before consume
// returns.  Tag discipline matches the other collectives: one fresh
// collective tag for the whole exchange, identical on every rank.
func (c *Comm) AlltoallvStream(pack func(to int) ([]byte, error), recvFrom []bool, consume func(from int, data []byte) error) error {
	np, rank := c.NP(), c.Rank()
	if len(recvFrom) != np {
		return fmt.Errorf("msg: alltoallv-stream needs %d recv flags, got %d", np, len(recvFrom))
	}
	if c.tr != nil {
		defer c.span("alltoallv-stream").End()
	}
	tag := c.nextTag()
	for r := 1; r < np; r++ {
		to := (rank + r) % np
		from := (rank - r + np) % np
		buf, err := pack(to)
		if err != nil {
			return fmt.Errorf("msg: alltoallv-stream: rank %d: pack for %d: %w", rank, to, err)
		}
		if buf != nil {
			if err := c.send("alltoallv-stream", to, tag, buf); err != nil {
				return err
			}
		}
		if recvFrom[from] {
			p, err := c.recv("alltoallv-stream", from, tag)
			if err != nil {
				return err
			}
			if err := consume(from, p.Data); err != nil {
				return fmt.Errorf("msg: alltoallv-stream: rank %d: consume from %d: %w", rank, from, err)
			}
		}
	}
	return nil
}

// SendRecv exchanges buffers with two (possibly different) peers in one
// step: sends sbuf to `to` while receiving from `from`.  Used by shift
// communications (ghost-cell exchange).
func (c *Comm) SendRecv(to int, sbuf []byte, from, tag int) ([]byte, error) {
	if err := c.send("sendrecv", to, tag, sbuf); err != nil {
		return nil, err
	}
	p, err := c.recv("sendrecv", from, tag)
	if err != nil {
		return nil, err
	}
	return p.Data, nil
}

// BcastInts broadcasts an []int from root and returns it on every rank.
func (c *Comm) BcastInts(root int, vals []int) ([]int, error) {
	var buf []byte
	if c.Rank() == root {
		buf = EncodeInts(vals)
	}
	out, err := c.Bcast(root, buf)
	if err != nil {
		return nil, err
	}
	return DecodeInts(out), nil
}

// MaxInt / SumInt / MinInt are reduction ops.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SumInt returns a+b.
func SumInt(a, b int) int { return a + b }

// SumF64 returns a+b.
func SumF64(a, b float64) float64 { return a + b }

// MaxF64 returns the larger of a and b.
func MaxF64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinF64 returns the smaller of a and b.
func MinF64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
