package msg

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// epochShift is the bit position where the membership epoch is folded
// into wire tags.  All reserved tag spaces (TagMemberBase through
// TagCollBase plus the unbounded collective sequence) live far below
// bit 40, and tags are 8 bytes on the TCP wire, so folding never
// collides with an unfolded tag.
const epochShift = 40

// MaxEpoch is the largest membership epoch that fits in a folded wire
// tag: epochs occupy bits epochShift..62, and bit 63 must stay clear
// because a negative tag is the receive wildcard.  An epoch beyond this
// would silently collide with (or wildcard-match!) other epochs' tags,
// so the membership layer refuses to transition past it — see
// CheckEpoch.
const MaxEpoch = 1<<(63-epochShift) - 1

// CheckEpoch reports whether a membership epoch can be represented in
// folded wire tags.  Regroup/join transitions call it before installing
// a new epoch so the capacity limit fails loudly at the membership
// layer instead of as tag corruption deep in a collective.
func CheckEpoch(epoch int) error {
	if epoch < 0 || epoch > MaxEpoch {
		return fmt.Errorf("msg: membership epoch %d outside the foldable range 0..%d (folded tags would collide or go negative)", epoch, MaxEpoch)
	}
	return nil
}

// FoldTag folds a membership epoch into a wire tag.  Epoch 0 is the
// identity, so pre-regroup traffic is byte-compatible with a machine
// that never heard of epochs.  Wildcards (negative tags) are returned
// unchanged.  Epochs beyond MaxEpoch panic: a fold that flips bit 63
// produces a negative tag — the wildcard — and would match *anything*,
// so this is a programming error the transition layer must have caught
// with CheckEpoch.
func FoldTag(epoch, tag int) int {
	if tag < 0 || epoch == 0 {
		return tag
	}
	if epoch < 0 || epoch > MaxEpoch {
		panic(fmt.Sprintf("msg: FoldTag epoch %d outside the foldable range 0..%d", epoch, MaxEpoch))
	}
	return tag | epoch<<epochShift
}

// UnfoldTag strips the folded epoch from a wire tag.
func UnfoldTag(tag int) int {
	if tag < 0 {
		return tag
	}
	return tag & (1<<epochShift - 1)
}

// View is an Endpoint restricted to a membership epoch's survivor set:
// ranks are renumbered to the compacted survivor numbering (view rank i
// is physical rank Phys[i]) and every tag is folded with the epoch, so
// stragglers from a revoked epoch never match a receive on the current
// one — they rot unconsumed in the mailbox instead of corrupting a
// collective.
//
// A View may carry a liveness check; SendRetry/RecvRetry consult it
// before every attempt, so an operation blocked on a peer that has since
// been declared dead aborts with the checker's error (typically
// machine.ErrEpochRevoked) instead of timing out attempt by attempt.
type View struct {
	inner Endpoint
	epoch int
	phys  []int // view rank -> physical rank
	virt  []int // physical rank -> view rank (-1: not a member)
	check func() error
}

// NewView wraps inner for the given epoch and member set.  phys lists
// the members' physical ranks in view-rank order and must contain
// inner's own physical rank.  check may be nil.
func NewView(inner Endpoint, epoch int, phys []int, check func() error) *View {
	v := &View{inner: inner, epoch: epoch, phys: phys, check: check}
	v.virt = make([]int, inner.NP())
	for i := range v.virt {
		v.virt[i] = -1
	}
	for i, p := range phys {
		v.virt[p] = i
	}
	if v.virt[inner.Rank()] < 0 {
		panic(fmt.Sprintf("msg: view epoch %d excludes its own physical rank %d", epoch, inner.Rank()))
	}
	return v
}

// Epoch returns the membership epoch this view belongs to.
func (v *View) Epoch() int { return v.epoch }

// Phys returns the physical rank of view rank r.
func (v *View) Phys(r int) int { return v.phys[r] }

// Rank returns this endpoint's rank in the view's compacted numbering.
func (v *View) Rank() int { return v.virt[v.inner.Rank()] }

// NP returns the number of members of the view.
func (v *View) NP() int { return len(v.phys) }

// Tracer exposes the wrapped endpoint's tracer so Comm still records
// collective spans over a view.
func (v *View) Tracer() *trace.Tracer {
	if tp, ok := v.inner.(interface{ Tracer() *trace.Tracer }); ok {
		return tp.Tracer()
	}
	return nil
}

// SharedMemory forwards the one-sided fast-path capability of the
// wrapped endpoint (windows over a view keep the direct-copy path).
func (v *View) SharedMemory() bool { return sharedMemory(v.inner) }

// CheckLive reports whether the view's epoch is still valid; a non-nil
// error means a member has been declared dead and the epoch is revoked.
func (v *View) CheckLive() error {
	if v.check == nil {
		return nil
	}
	return v.check()
}

func (v *View) peer(r int) (int, error) {
	if r == AnySource {
		return AnySource, nil
	}
	if r < 0 || r >= len(v.phys) {
		return 0, fmt.Errorf("msg: view epoch %d: rank %d out of range (np=%d)", v.epoch, r, len(v.phys))
	}
	return v.phys[r], nil
}

// translate maps a delivered packet back into view coordinates.  A
// sender outside the member set cannot match (its tags carry a
// different epoch fold), so the translation is always defined.
func (v *View) translate(p Packet) Packet {
	p.From = v.virt[p.From]
	p.Tag = UnfoldTag(p.Tag)
	return p
}

// Send delivers data to view rank `to` with the epoch-folded tag.
func (v *View) Send(to, tag int, data []byte) error {
	pto, err := v.peer(to)
	if err != nil {
		return err
	}
	return v.inner.Send(pto, FoldTag(v.epoch, tag), data)
}

// Recv receives a message from view rank `from` on the epoch-folded tag.
func (v *View) Recv(from, tag int) (Packet, error) {
	pfrom, err := v.peer(from)
	if err != nil {
		return Packet{}, err
	}
	p, err := v.inner.Recv(pfrom, FoldTag(v.epoch, tag))
	if err != nil {
		return p, err
	}
	return v.translate(p), nil
}

// RecvTimeout is Recv with a deadline.
func (v *View) RecvTimeout(from, tag int, d time.Duration) (Packet, error) {
	pfrom, err := v.peer(from)
	if err != nil {
		return Packet{}, err
	}
	p, err := v.inner.RecvTimeout(pfrom, FoldTag(v.epoch, tag), d)
	if err != nil {
		return p, err
	}
	return v.translate(p), nil
}
