package msg

import (
	"sync"
	"testing"
	"time"
)

// runComms executes body on a Comm per rank over a chan transport.
func runComms(t *testing.T, np int, body func(c *Comm) error) *ChanTransport {
	t.Helper()
	tr := NewChanTransport(np)
	runCommsOn(t, tr, body)
	return tr
}

func runCommsOn(t *testing.T, tr Transport, body func(c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, tr.NP())
	for r := 0; r < tr.NP(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(NewComm(tr.Endpoint(r)))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 5, 8, 13} {
		var mu sync.Mutex
		entered := 0
		tr := runComms(t, np, func(c *Comm) error {
			mu.Lock()
			entered++
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if entered != np {
				t.Errorf("np=%d: barrier released before all %d entered (saw %d)", np, np, entered)
			}
			return nil
		})
		tr.Close()
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, np := range []int{1, 2, 3, 7, 8} {
		for root := 0; root < np; root++ {
			tr := runComms(t, np, func(c *Comm) error {
				var buf []byte
				if c.Rank() == root {
					buf = EncodeInts([]int{root*1000 + 7})
				}
				out, err := c.Bcast(root, buf)
				if err != nil {
					return err
				}
				if got := DecodeInts(out)[0]; got != root*1000+7 {
					t.Errorf("np=%d root=%d rank=%d: got %d", np, root, c.Rank(), got)
				}
				return nil
			})
			tr.Close()
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, np := range []int{1, 2, 3, 6, 8} {
		tr := runComms(t, np, func(c *Comm) error {
			vals := []float64{float64(c.Rank() + 1), float64(c.Rank() * 2)}
			r, err := c.ReduceF64(0, vals, SumF64)
			if err != nil {
				return err
			}
			wantSum := float64(np*(np+1)) / 2
			if c.Rank() == 0 {
				if r[0] != wantSum {
					t.Errorf("np=%d: reduce sum = %v want %v", np, r[0], wantSum)
				}
			} else if r != nil {
				t.Errorf("non-root got reduction %v", r)
			}
			ar, err := c.AllreduceF64([]float64{float64(c.Rank())}, MaxF64)
			if err != nil {
				return err
			}
			if ar[0] != float64(np-1) {
				t.Errorf("np=%d rank=%d: allreduce max = %v", np, c.Rank(), ar[0])
			}
			ai, err := c.AllreduceInts([]int{c.Rank() + 1}, SumInt)
			if err != nil {
				return err
			}
			if ai[0] != int(wantSum) {
				t.Errorf("allreduce int sum = %d want %d", ai[0], int(wantSum))
			}
			return nil
		})
		tr.Close()
	}
}

func TestReduceNonRoot(t *testing.T) {
	tr := runComms(t, 4, func(c *Comm) error {
		r, err := c.ReduceInts(2, []int{c.Rank()}, SumInt)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if r[0] != 6 {
				t.Errorf("reduce to root 2: %v", r)
			}
		} else if r != nil {
			t.Errorf("rank %d should get nil", c.Rank())
		}
		return nil
	})
	tr.Close()
}

func TestGatherAllgather(t *testing.T) {
	for _, np := range []int{1, 3, 5} {
		tr := runComms(t, np, func(c *Comm) error {
			payload := EncodeInts([]int{c.Rank() * 3})
			parts, err := c.Gather(0, payload)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				for r := 0; r < np; r++ {
					if got := DecodeInts(parts[r])[0]; got != r*3 {
						t.Errorf("gather[%d] = %d", r, got)
					}
				}
			}
			all, err := c.AllgatherInts([]int{c.Rank(), c.Rank() + 100})
			if err != nil {
				return err
			}
			for r := 0; r < np; r++ {
				if all[r][0] != r || all[r][1] != r+100 {
					t.Errorf("allgather[%d] = %v", r, all[r])
				}
			}
			return nil
		})
		tr.Close()
	}
}

func TestAlltoallv(t *testing.T) {
	for _, np := range []int{1, 2, 4, 5} {
		tr := runComms(t, np, func(c *Comm) error {
			send := make([][]byte, np)
			for to := 0; to < np; to++ {
				// send to even-distance peers only; nil elsewhere
				if (to-c.Rank()+np)%np%2 == 0 {
					send[to] = EncodeInts([]int{c.Rank()*100 + to})
				}
			}
			recv, err := c.Alltoallv(send)
			if err != nil {
				return err
			}
			for from := 0; from < np; from++ {
				expect := (c.Rank()-from+np)%np%2 == 0
				if expect {
					if recv[from] == nil {
						t.Errorf("np=%d rank %d missing msg from %d", np, c.Rank(), from)
						continue
					}
					if got := DecodeInts(recv[from])[0]; got != from*100+c.Rank() {
						t.Errorf("alltoallv payload wrong: %d", got)
					}
				} else if recv[from] != nil {
					t.Errorf("unexpected msg from %d", from)
				}
			}
			return nil
		})
		tr.Close()
	}
}

func TestAlltoallvSched(t *testing.T) {
	np := 4
	tr := runComms(t, np, func(c *Comm) error {
		send := make([][]byte, np)
		recvFrom := make([]bool, np)
		// ring: send only to right neighbor, expect only from left
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		send[right] = EncodeInts([]int{c.Rank()})
		recvFrom[left] = true
		recv, err := c.AlltoallvSched(send, recvFrom)
		if err != nil {
			return err
		}
		if recv[left] == nil || DecodeInts(recv[left])[0] != left {
			t.Errorf("rank %d: sched exchange wrong: %v", c.Rank(), recv)
		}
		for f := 0; f < np; f++ {
			if f != left && f != c.Rank() && recv[f] != nil {
				t.Errorf("unexpected buffer from %d", f)
			}
		}
		return nil
	})
	// Message-count honesty: exactly np payload messages (self-sends are
	// local copies and the ring has np directed edges, one per rank,
	// excluding self; here every rank sends exactly one remote message).
	sn := tr.Stats().Snapshot()
	if sn.TotalMsgs() != int64(np) {
		t.Fatalf("sched alltoallv sent %d messages, want %d", sn.TotalMsgs(), np)
	}
	tr.Close()
}

func TestAlltoallvStream(t *testing.T) {
	// Streamed exchange must deliver the same traffic as AlltoallvSched:
	// pack is called lazily per peer, consume per arriving payload, and
	// nil packs mean no message.
	for _, np := range []int{1, 2, 4, 5} {
		var mu sync.Mutex
		packs := map[int]int{}
		tr := runComms(t, np, func(c *Comm) error {
			recvFrom := make([]bool, np)
			for from := 0; from < np; from++ {
				recvFrom[from] = (c.Rank()-from+np)%np%2 == 0
			}
			seen := map[int]bool{}
			err := c.AlltoallvStream(
				func(to int) ([]byte, error) {
					mu.Lock()
					packs[c.Rank()]++
					mu.Unlock()
					if (to-c.Rank()+np)%np%2 != 0 {
						return nil, nil
					}
					return EncodeInts([]int{c.Rank()*100 + to}), nil
				},
				recvFrom,
				func(from int, data []byte) error {
					if seen[from] {
						t.Errorf("np=%d rank %d: duplicate consume from %d", np, c.Rank(), from)
					}
					seen[from] = true
					if got := DecodeInts(data)[0]; got != from*100+c.Rank() {
						t.Errorf("np=%d rank %d: stream payload from %d = %d", np, c.Rank(), from, got)
					}
					return nil
				})
			if err != nil {
				return err
			}
			for from := 0; from < np; from++ {
				if from == c.Rank() {
					continue
				}
				if want := recvFrom[from]; seen[from] != want {
					t.Errorf("np=%d rank %d: consume from %d = %v, want %v", np, c.Rank(), from, seen[from], want)
				}
			}
			return nil
		})
		// pack is invoked once per remote peer, never for self.
		for r := 0; r < np; r++ {
			if packs[r] != np-1 {
				t.Errorf("np=%d rank %d: pack called %d times, want %d", np, r, packs[r], np-1)
			}
		}
		tr.Close()
	}
}

func TestWireGauge(t *testing.T) {
	s := NewStats(3)
	if s.PeakWireBytes() != 0 {
		t.Fatal("fresh stats should have zero peak")
	}
	s.WireAcquire(0, 100)
	s.WireAcquire(0, 50) // rank 0 resident 150
	s.WireAcquire(1, 120)
	s.WireRelease(0, 100) // rank 0 resident 50, peak stays 150
	s.WireAcquire(0, 40)  // resident 90 < peak
	if got := s.PeakWireBytesRank(0); got != 150 {
		t.Errorf("rank 0 peak = %d, want 150", got)
	}
	if got := s.PeakWireBytes(); got != 150 {
		t.Errorf("global peak = %d, want 150", got)
	}
	// ResetWirePeak rewinds to current residency (90 on rank 0, 120 on 1)
	// without touching traffic counters.
	s.OnSend(0, 1, 8)
	s.ResetWirePeak()
	if got := s.PeakWireBytesRank(0); got != 90 {
		t.Errorf("after reset, rank 0 peak = %d, want current residency 90", got)
	}
	if got := s.PeakWireBytes(); got != 120 {
		t.Errorf("after reset, global peak = %d, want 120", got)
	}
	if sn := s.Snapshot(); sn.TotalBytes() != 8 {
		t.Errorf("ResetWirePeak disturbed traffic counters: %d bytes", sn.TotalBytes())
	}
	s.WireAcquire(0, 100) // resident 190 -> new peak
	if got := s.PeakWireBytesRank(0); got != 190 {
		t.Errorf("peak after re-acquire = %d, want 190", got)
	}
	s.Reset()
	if s.PeakWireBytes() != 0 || s.PeakWireBytesRank(1) != 0 {
		t.Error("Reset should zero wire gauges")
	}
}

func TestCollectivesOverTCP(t *testing.T) {
	tcp, err := NewTCPTransport(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	runCommsOn(t, tcp, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		out, err := c.AllreduceF64([]float64{1}, SumF64)
		if err != nil {
			return err
		}
		if out[0] != 4 {
			t.Errorf("allreduce over tcp = %v", out[0])
		}
		bi, err := c.BcastInts(3, []int{42, 43})
		if err != nil {
			return err
		}
		if bi[0] != 42 || bi[1] != 43 {
			t.Errorf("bcast ints over tcp = %v", bi)
		}
		return nil
	})
}

func TestSendRecvShift(t *testing.T) {
	np := 4
	tr := runComms(t, np, func(c *Comm) error {
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		got, err := c.SendRecv(right, EncodeInts([]int{c.Rank()}), left, 99)
		if err != nil {
			return err
		}
		if DecodeInts(got)[0] != left {
			t.Errorf("shift got %d want %d", DecodeInts(got)[0], left)
		}
		return nil
	})
	tr.Close()
}

func TestScatterv(t *testing.T) {
	for _, np := range []int{1, 3, 4} {
		tr := runComms(t, np, func(c *Comm) error {
			var bufs [][]byte
			if c.Rank() == 0 {
				bufs = make([][]byte, np)
				for r := 0; r < np; r++ {
					bufs[r] = EncodeInts([]int{r * 11})
				}
			}
			mine, err := c.Scatterv(0, bufs)
			if err != nil {
				return err
			}
			if got := DecodeInts(mine)[0]; got != c.Rank()*11 {
				t.Errorf("np=%d rank %d: got %d", np, c.Rank(), got)
			}
			return nil
		})
		tr.Close()
	}
}

func TestScattervWrongCount(t *testing.T) {
	tr := NewChanTransport(1)
	defer tr.Close()
	c := NewComm(tr.Endpoint(0))
	if _, err := c.Scatterv(0, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("wrong buffer count accepted")
	}
}

func TestBcastLargePayload(t *testing.T) {
	tr := runComms(t, 5, func(c *Comm) error {
		var buf []byte
		if c.Rank() == 2 {
			vals := make([]float64, 1<<15)
			for i := range vals {
				vals[i] = float64(i)
			}
			buf = EncodeFloat64s(vals)
		}
		out, err := c.Bcast(2, buf)
		if err != nil {
			return err
		}
		vals := DecodeFloat64s(out)
		if len(vals) != 1<<15 || vals[100] != 100 || vals[1<<15-1] != float64(1<<15-1) {
			t.Errorf("rank %d: large bcast corrupted", c.Rank())
		}
		return nil
	})
	tr.Close()
}

// TestCollectiveTagNeverWraps is the regression test for the old
// nextTag() fold `TagCollBase + seq%(1<<20)`: after 2^20 collectives the
// tag sequence restarted, so a stale message still sitting in a mailbox
// under an early tag could be consumed by a much later collective.  The
// fixed sequence is monotonic and unbounded, so a poison message planted
// at the tag the old scheme would reuse must stay untouched.
func TestCollectiveTagNeverWraps(t *testing.T) {
	const oldWrap = 1 << 20
	tr := NewChanTransport(2)
	defer tr.Close()
	// Poison rank 1's mailbox at the tag the old folding scheme would
	// produce for the next collective (seq wraps to 0 -> TagCollBase+0).
	poisonTag := TagCollBase
	if err := tr.Endpoint(0).Send(1, poisonTag, EncodeInts([]int{-666})); err != nil {
		t.Fatal(err)
	}
	runCommsOn(t, tr, func(c *Comm) error {
		c.seq = oldWrap - 1 // next collective crosses the old wrap boundary
		var buf []byte
		if c.Rank() == 0 {
			buf = EncodeInts([]int{12345})
		}
		out, err := c.Bcast(0, buf)
		if err != nil {
			return err
		}
		if got := DecodeInts(out)[0]; got != 12345 {
			t.Errorf("rank %d: bcast across old wrap boundary got %d, want 12345", c.Rank(), got)
		}
		return nil
	})
	// The poison message must still be pending — the collective never
	// reused its tag.
	p, err := tr.Endpoint(1).RecvTimeout(0, poisonTag, time.Second)
	if err != nil || DecodeInts(p.Data)[0] != -666 {
		t.Fatalf("poison message was consumed by a wrapped collective tag: packet %+v err %v", p, err)
	}
}

// TestHighCollectiveTagsOverTCP drives tags far past 32 bits through the
// TCP framing (the wire tag is 8 bytes), as a long-running program's
// monotonic collective sequence will.
func TestHighCollectiveTagsOverTCP(t *testing.T) {
	tcp, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	runCommsOn(t, tcp, func(c *Comm) error {
		c.seq = 1 << 33 // tag = TagCollBase + 2^33 + ... > 2^32
		if err := c.Barrier(); err != nil {
			return err
		}
		var buf []byte
		if c.Rank() == 1 {
			buf = EncodeInts([]int{777})
		}
		out, err := c.Bcast(1, buf)
		if err != nil {
			return err
		}
		if got := DecodeInts(out)[0]; got != 777 {
			t.Errorf("rank %d: high-tag bcast got %d", c.Rank(), got)
		}
		return nil
	})
}
