package msg

import (
	"math"
	"sync/atomic"
)

// CostModel maintains per-processor virtual clocks under the Hockney
// communication model: a message of n bytes sent at sender time t arrives
// at t + Alpha + Beta*n.  Receiving advances the receiver's clock to at
// least the arrival time; sending charges the sender the startup overhead.
// Computation is charged explicitly via Charge.
//
// The paper's §4 analysis ("given the startup overhead and cost per byte
// of each message of the target machine, the ratio N/p will determine the
// most appropriate distribution") is evaluated against this model: the
// experiment harnesses run the same program under several (Alpha, Beta)
// machine parameterizations and report the modeled makespan.
//
// Clocks are single-writer (only the owning processor advances its own
// clock) and stored as atomic float bits so the final collection and the
// packet timestamps read consistent values.
type CostModel struct {
	// Alpha is the per-message startup cost in seconds.
	Alpha float64
	// Beta is the per-byte transfer cost in seconds.
	Beta float64
	// SendOverhead is the CPU time the sender spends per message
	// (defaults to Alpha if zero at construction; see NewCostModel).
	SendOverhead float64

	clocks []atomic.Uint64
}

// NewCostModel creates a cost model for np processors.  alpha is the
// message startup in seconds, beta the per-byte cost in seconds.
func NewCostModel(np int, alpha, beta float64) *CostModel {
	c := &CostModel{Alpha: alpha, Beta: beta, SendOverhead: alpha / 2}
	c.clocks = make([]atomic.Uint64, np)
	return c
}

// Clock returns processor rank's current virtual time in seconds.
func (c *CostModel) Clock(rank int) float64 {
	return math.Float64frombits(c.clocks[rank].Load())
}

func (c *CostModel) setClock(rank int, t float64) {
	c.clocks[rank].Store(math.Float64bits(t))
}

// OnSend charges the sender its per-message overhead and returns the
// sender's clock at send time (stamped into the packet).
func (c *CostModel) OnSend(rank, nbytes int) float64 {
	t := c.Clock(rank)
	c.setClock(rank, t+c.SendOverhead)
	return t
}

// OnRecv advances the receiver's clock to the message arrival time
// (sender clock + Alpha + Beta*n) if that is later than its current time.
func (c *CostModel) OnRecv(rank int, sendClock float64, nbytes int) {
	arrival := sendClock + c.Alpha + c.Beta*float64(nbytes)
	if t := c.Clock(rank); arrival > t {
		c.setClock(rank, arrival)
	}
}

// Charge advances rank's clock by the given number of seconds of local
// computation.
func (c *CostModel) Charge(rank int, seconds float64) {
	c.setClock(rank, c.Clock(rank)+seconds)
}

// Sync advances every clock to the maximum clock (models a barrier in
// virtual time).  It must only be called when no processor is inside a
// communication operation, e.g. right after a real barrier.
func (c *CostModel) Sync() {
	m := c.Makespan()
	for i := range c.clocks {
		c.setClock(i, m)
	}
}

// Makespan returns the maximum virtual clock over all processors — the
// modeled parallel execution time.
func (c *CostModel) Makespan() float64 {
	m := 0.0
	for i := range c.clocks {
		if t := c.Clock(i); t > m {
			m = t
		}
	}
	return m
}

// Reset zeroes all clocks.
func (c *CostModel) Reset() {
	for i := range c.clocks {
		c.setClock(i, 0)
	}
}

// MessageTime returns the modeled cost of a single message of n bytes.
func (c *CostModel) MessageTime(n int) float64 {
	return c.Alpha + c.Beta*float64(n)
}
