package msg

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("senderr,rank=1,after=3,count=2;drop,peer=2,count=1;delay,delay=20ms,every=5;seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || len(plan.Rules) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	r := plan.Rules[0]
	if r.Kind != FaultSendErr || r.Rank != 1 || r.Peer != -1 || r.After != 3 || r.Count != 2 {
		t.Errorf("rule 0 = %+v", r)
	}
	if plan.Rules[1].Kind != FaultDrop || plan.Rules[1].Peer != 2 || plan.Rules[1].Rank != -1 {
		t.Errorf("rule 1 = %+v", plan.Rules[1])
	}
	if plan.Rules[2].Kind != FaultRecvDelay || plan.Rules[2].Delay != 20*time.Millisecond || plan.Rules[2].Every != 5 {
		t.Errorf("rule 2 = %+v", plan.Rules[2])
	}

	for _, bad := range []string{
		"",
		"frobnicate,count=1",
		"senderr,count",
		"senderr,bogus=1",
		"delay,every=2", // delay kind without delay=<duration>
		"seed=xyzzy",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) should fail", bad)
		}
	}
}

func TestFaultSendErrHealsOnRetry(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultSendErr, Rank: 0, Peer: -1, Count: 1}},
	})
	defer ft.Close()
	ep := ft.Endpoint(0)
	err := ep.Send(1, 7, EncodeInts([]int{42}))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first send err = %v, want ErrInjected", err)
	}
	// the failed send delivered nothing
	if _, err := ft.Endpoint(1).RecvTimeout(0, 7, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv after failed send = %v, want ErrTimeout", err)
	}
	// the retry goes through
	if err := ep.Send(1, 7, EncodeInts([]int{42})); err != nil {
		t.Fatal(err)
	}
	p, err := ft.Endpoint(1).Recv(0, 7)
	if err != nil || DecodeInts(p.Data)[0] != 42 {
		t.Fatalf("retried send: packet %+v err %v", p, err)
	}
}

func TestFaultDropLosesFrameSilently(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultDrop, Rank: 0, Peer: -1, Count: 1}},
	})
	defer ft.Close()
	if err := ft.Endpoint(0).Send(1, 3, EncodeInts([]int{1})); err != nil {
		t.Fatalf("dropped send must look successful, got %v", err)
	}
	if _, err := ft.Endpoint(1).RecvTimeout(0, 3, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv of dropped frame = %v, want ErrTimeout", err)
	}
	// the drop budget is spent: the next frame arrives
	if err := ft.Endpoint(0).Send(1, 3, EncodeInts([]int{2})); err != nil {
		t.Fatal(err)
	}
	p, err := ft.Endpoint(1).Recv(0, 3)
	if err != nil || DecodeInts(p.Data)[0] != 2 {
		t.Fatalf("second send: packet %+v err %v", p, err)
	}
}

func TestFaultRecvDelayHealsViaEscalatingDeadline(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultRecvDelay, Rank: 0, Peer: -1, Count: 1, Delay: 30 * time.Millisecond}},
	})
	defer ft.Close()
	if err := ft.Endpoint(0).Send(1, 5, EncodeInts([]int{9})); err != nil {
		t.Fatal(err)
	}
	// a single short deadline misses the delayed frame...
	if _, err := ft.Endpoint(1).RecvTimeout(0, 5, 5*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("short recv = %v, want ErrTimeout", err)
	}
	// ...but RecvRetry's escalating deadline eventually sees it
	cfg := CommConfig{Timeout: 5 * time.Millisecond, Retries: 6}
	p, err := RecvRetry(ft.Endpoint(1), cfg, nil, "probe", 0, 5)
	if err != nil || DecodeInts(p.Data)[0] != 9 {
		t.Fatalf("RecvRetry: packet %+v err %v", p, err)
	}
}

func TestFaultRecvErrLeavesMailboxIntact(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultRecvErr, Rank: 1, Peer: -1, Count: 1}},
	})
	defer ft.Close()
	if err := ft.Endpoint(0).Send(1, 4, EncodeInts([]int{11})); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Endpoint(1).Recv(0, 4); !errors.Is(err, ErrInjected) {
		t.Fatalf("first recv = %v, want ErrInjected", err)
	}
	// the message was not consumed; the retry finds it
	p, err := ft.Endpoint(1).Recv(0, 4)
	if err != nil || DecodeInts(p.Data)[0] != 11 {
		t.Fatalf("second recv: packet %+v err %v", p, err)
	}
}

func TestSendRetryTerminalErrorNamesOpAndRank(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultSendErr, Rank: 0, Peer: -1}}, // Count 0: persistent
	})
	defer ft.Close()
	err := SendRetry(ft.Endpoint(0), CommConfig{Retries: 2}, nil, "ghost-exchange", 1, 7, nil)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	for _, frag := range []string{"ghost-exchange", "rank 0", "send to 1"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestArmDisarmScopesInjection(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		StartDisarmed: true,
		Rules:         []FaultRule{{Kind: FaultSendErr, Rank: 0, Peer: -1}},
	})
	defer ft.Close()
	ep := ft.Endpoint(0)
	if err := ep.Send(1, 1, nil); err != nil {
		t.Fatalf("disarmed send = %v", err)
	}
	ft.Arm(0)
	if err := ep.Send(1, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed send = %v, want ErrInjected", err)
	}
	ft.Disarm(0)
	if err := ep.Send(1, 1, nil); err != nil {
		t.Fatalf("re-disarmed send = %v", err)
	}
}

func TestProbRulesReplayDeterministically(t *testing.T) {
	fire := func() []bool {
		ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
			Seed:  99,
			Rules: []FaultRule{{Kind: FaultSendErr, Rank: 0, Peer: -1, Prob: 0.5}},
		})
		defer ft.Close()
		out := make([]bool, 20)
		for i := range out {
			out[i] = ft.Endpoint(0).Send(1, 1, nil) != nil
		}
		return out
	}
	a, b := fire(), b2s(fire())
	if b2s(a) != b {
		t.Fatalf("same seed, different schedules: %v vs %v", b2s(a), b)
	}
}

func b2s(bs []bool) string {
	var sb strings.Builder
	for _, b := range bs {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// TestCollectiveTimeoutUnderDelay injects a long delivery delay on rank 0's
// sends and checks that rank 1's barrier surfaces ErrTimeout wrapped with
// the collective's name and rank once the bounded retries are exhausted.
func TestCollectiveTimeoutUnderDelay(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(2), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultRecvDelay, Rank: 0, Peer: -1, Delay: time.Second}},
	})
	defer ft.Close()
	cfg := CommConfig{Timeout: 5 * time.Millisecond, Retries: 1}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewComm(ft.Endpoint(r))
			c.SetConfig(cfg)
			errs[r] = c.Barrier()
		}(r)
	}
	wg.Wait()
	err := errs[1] // rank 1 waits on rank 0's delayed frame
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("rank 1 barrier = %v, want wrapped ErrTimeout", err)
	}
	for _, frag := range []string{"barrier", "rank 1", "recv from 0"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

// TestCollectiveHealsAfterTransientSendErr checks the whole retry loop
// end-to-end on a collective: a count-limited injected send failure inside
// a bcast is retried and the payload still arrives intact everywhere.
func TestCollectiveHealsAfterTransientSendErr(t *testing.T) {
	ft := NewFaultTransport(NewChanTransport(4), &FaultPlan{
		Rules: []FaultRule{{Kind: FaultSendErr, Rank: 0, Peer: -1, Count: 2}},
	})
	defer ft.Close()
	cfg := CommConfig{Timeout: 100 * time.Millisecond, Retries: 4, Backoff: time.Millisecond}
	runCommsOn(t, ft, func(c *Comm) error {
		c.SetConfig(cfg)
		var buf []byte
		if c.Rank() == 0 {
			buf = EncodeInts([]int{31337})
		}
		out, err := c.Bcast(0, buf)
		if err != nil {
			return err
		}
		if got := DecodeInts(out)[0]; got != 31337 {
			t.Errorf("rank %d: bcast got %d", c.Rank(), got)
		}
		return nil
	})
}
