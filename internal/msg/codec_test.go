package msg

import (
	"bytes"
	"math"
	"testing"
)

var codecVals = []float64{0, 1.5, -2.25, 1e300, -1e-300, math.Inf(1), math.Inf(-1), 42}

func TestAppendFloat64sMatchesEncode(t *testing.T) {
	want := EncodeFloat64s(codecVals)
	if got := AppendFloat64s(nil, codecVals); !bytes.Equal(got, want) {
		t.Fatalf("AppendFloat64s(nil, ...) != EncodeFloat64s")
	}
	// Appending after a prefix keeps the prefix and places the encoding
	// right behind it.
	prefix := []byte{0xaa, 0xbb, 0xcc}
	got := AppendFloat64s(append([]byte(nil), prefix...), codecVals)
	if !bytes.Equal(got[:3], prefix) || !bytes.Equal(got[3:], want) {
		t.Fatalf("append after prefix mangled the buffer")
	}
}

func TestGrowPutGetRoundTrip(t *testing.T) {
	buf, off := GrowFloat64s(nil, len(codecVals))
	if off != 0 || len(buf) != 8*len(codecVals) {
		t.Fatalf("Grow(nil, %d) = len %d off %d", len(codecVals), len(buf), off)
	}
	for i, v := range codecVals {
		PutFloat64(buf, off+8*i, v)
	}
	if n := Float64Count(buf); n != len(codecVals) {
		t.Fatalf("Float64Count = %d, want %d", n, len(codecVals))
	}
	for i, v := range codecVals {
		if got := GetFloat64(buf, 8*i); got != v {
			t.Errorf("slot %d = %v, want %v", i, got, v)
		}
	}
	if !bytes.Equal(buf, EncodeFloat64s(codecVals)) {
		t.Fatal("Put-based encoding differs from EncodeFloat64s")
	}
	// NaN survives as bits even though it compares unequal.
	PutFloat64(buf, 0, math.NaN())
	if !math.IsNaN(GetFloat64(buf, 0)) {
		t.Fatal("NaN did not round-trip")
	}
}

func TestGrowFloat64sReusesCapacity(t *testing.T) {
	buf := make([]byte, 0, 64)
	grown, off := GrowFloat64s(buf, 8)
	if off != 0 || len(grown) != 64 || &grown[0] != &buf[:1][0] {
		t.Fatal("Grow within capacity must reuse the backing array")
	}
	// Growth past capacity must preserve existing contents.
	buf = AppendFloat64s(nil, codecVals[:2])
	grown, off = GrowFloat64s(buf, 1<<10)
	if off != 16 || !bytes.Equal(grown[:16], buf) {
		t.Fatal("Grow past capacity lost the existing prefix")
	}
}

func TestFloat64CountPanicsOnMisalignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Float64Count accepted a misaligned payload")
		}
	}()
	Float64Count(make([]byte, 13))
}

func TestDecodeFloat64sIntoMatchesDecode(t *testing.T) {
	buf := EncodeFloat64s(codecVals)
	want := DecodeFloat64s(buf)
	got := make([]float64, len(codecVals))
	DecodeFloat64sInto(got, buf)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCodecHotPathsAllocationFree pins the zero-allocation contract the
// data-movement layer relies on: with recycled buffers, encode and decode
// allocate nothing.
func TestCodecHotPathsAllocationFree(t *testing.T) {
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	buf := make([]byte, 0, 8*len(vals))
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendFloat64s(buf[:0], vals)
	}); n != 0 {
		t.Errorf("AppendFloat64s with capacity: %v allocs/run, want 0", n)
	}
	dst := make([]float64, len(vals))
	if n := testing.AllocsPerRun(100, func() {
		DecodeFloat64sInto(dst, buf)
	}); n != 0 {
		t.Errorf("DecodeFloat64sInto: %v allocs/run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		var off int
		buf, off = GrowFloat64s(buf[:0], len(vals))
		for i, v := range vals {
			PutFloat64(buf, off+8*i, v)
		}
		for i := range dst {
			dst[i] = GetFloat64(buf, 8*i)
		}
	}); n != 0 {
		t.Errorf("Grow/Put/Get loop: %v allocs/run, want 0", n)
	}
}

func BenchmarkCodecAppendFloat64s(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i)
	}
	buf := make([]byte, 0, 8*len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFloat64s(buf[:0], vals)
	}
}

func BenchmarkCodecDecodeInto(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i)
	}
	buf := EncodeFloat64s(vals)
	dst := make([]float64, len(vals))
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeFloat64sInto(dst, buf)
	}
}
