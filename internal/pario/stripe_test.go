package pario

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
)

func TestStripeGridsPartition(t *testing.T) {
	dom := index.NewDomain([2]int{1, 5}, [2]int{1, 7}) // 5x7, split along dim 1
	grids := StripeGrids(dom, 3)
	if len(grids) != 3 {
		t.Fatalf("got %d grids", len(grids))
	}
	total := 0
	sizes := make([]int, len(grids))
	for s, g := range grids {
		sizes[s] = g.Count()
		total += g.Count()
	}
	if total != 35 {
		t.Fatalf("stripes cover %d points, want 35", total)
	}
	// Balanced BLOCK along the last dim: 3,2,2 rows of 5 points each.
	want := []int{15, 10, 10}
	for s := range want {
		if sizes[s] != want[s] {
			t.Fatalf("stripe sizes %v, want %v", sizes, want)
		}
	}
	// More stripes than extent: the tail comes back empty but well-formed.
	grids = StripeGrids(index.NewDomain([2]int{0, 3}), 6)
	nonEmpty := 0
	for _, g := range grids {
		if g.Rank() != 1 {
			t.Fatal("empty stripe changed rank")
		}
		if g.Count() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 4 {
		t.Fatalf("%d non-empty stripes for a 4-point domain, want 4", nonEmpty)
	}
}

// TestPlaceCanonical checks Place against a hand-computed canonical
// layout: payloads written through two disjoint sub-grids must land at
// each point's canonical (dim-0-fastest) offset within the stripe.
func TestPlaceCanonical(t *testing.T) {
	dom := index.NewDomain([2]int{0, 3}, [2]int{0, 2}) // 4x3
	into := StripeGrids(dom, 1)[0]
	dst := make([]byte, 8*into.Count())

	// Two "rank contributions": columns {0,1} and column {2}.
	parts := []index.Grid{
		{Dims: []index.RunSet{
			index.NewRunSet(index.NewRun(0, 3, 1)),
			index.NewRunSet(index.NewRun(0, 1, 1)),
		}},
		{Dims: []index.RunSet{
			index.NewRunSet(index.NewRun(0, 3, 1)),
			index.NewRunSet(index.NewRun(2, 2, 1)),
		}},
	}
	val := func(i, j int) uint64 { return uint64(100*i + j) }
	for _, g := range parts {
		payload := make([]byte, 0, 8*g.Count())
		g.ForEachRun(func(p index.Point, r index.Run) bool {
			for i := r.Lo; i <= r.Hi; i += r.Stride {
				payload = binary.LittleEndian.AppendUint64(payload, val(i, p[1]))
			}
			return true
		})
		Place(dst, payload, g, into)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			got := binary.LittleEndian.Uint64(dst[8*(j*4+i):])
			if got != val(i, j) {
				t.Fatalf("dst[%d,%d] = %d, want %d", i, j, got, val(i, j))
			}
		}
	}
}

// writeSet materializes a stripe set on disk and returns its metadata.
func writeSet(t *testing.T, dir, redundancy string, stripes ...[]byte) StripeSet {
	t.Helper()
	set := StripeSet{Dir: dir, Redundancy: redundancy}
	maxLen := 0
	for _, d := range stripes {
		maxLen = max(maxLen, len(d))
	}
	parity := make([]byte, maxLen)
	for i, d := range stripes {
		name := filepath.Join(dir, stripeName(i))
		if err := os.WriteFile(name, d, 0o644); err != nil {
			t.Fatal(err)
		}
		set.Stripes = append(set.Stripes, StripeInfo{Name: stripeName(i), Size: int64(len(d)), CRC: crc32.ChecksumIEEE(d)})
		XorInto(parity, d)
		if redundancy == RedundancyReplica {
			if err := os.WriteFile(ReplicaName(name), d, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if redundancy == RedundancyParity {
		if err := os.WriteFile(filepath.Join(dir, "parity.bin"), parity, 0o644); err != nil {
			t.Fatal(err)
		}
		set.Parity = &StripeInfo{Name: "parity.bin", Size: int64(len(parity)), CRC: crc32.ChecksumIEEE(parity)}
	}
	return set
}

func stripeName(i int) string { return fmt.Sprintf("stripe-%04d.bin", i) }

func corrupt(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParityReconstructAndRepair(t *testing.T) {
	dir := t.TempDir()
	a, b, c := []byte("aaaaaaaa"), []byte("bbbb"), []byte("cccccc")
	set := writeSet(t, dir, RedundancyParity, a, b, c)
	met := &Metrics{}
	cfg := Config{Metrics: met}

	// Delete one stripe: ReadStripe reconstructs from parity and heals.
	if err := os.Remove(filepath.Join(dir, set.Stripes[1].Name)); err != nil {
		t.Fatal(err)
	}
	data, repaired, err := set.ReadStripe(OS{}, cfg, nil, 0, 1, true)
	if err != nil || !repaired || string(data) != "bbbb" {
		t.Fatalf("ReadStripe = %q, repaired=%v, err=%v", data, repaired, err)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, set.Stripes[1].Name)); string(got) != "bbbb" {
		t.Fatalf("healed file = %q", got)
	}
	if met.Reconstructions.Load() != 1 || met.Repairs.Load() != 1 {
		t.Fatalf("metrics: %d reconstructions, %d repairs", met.Reconstructions.Load(), met.Repairs.Load())
	}

	// An intact read afterwards does not reconstruct again.
	if _, repaired, err = set.ReadStripe(OS{}, cfg, nil, 0, 1, true); err != nil || repaired {
		t.Fatalf("post-heal read repaired=%v err=%v", repaired, err)
	}

	// Corrupt (not delete) a different stripe: same outcome, repair off
	// leaves the damage in place.
	corrupt(t, filepath.Join(dir, set.Stripes[2].Name))
	data, repaired, err = set.ReadStripe(OS{}, cfg, nil, 0, 2, false)
	if err != nil || !repaired || string(data) != "cccccc" {
		t.Fatalf("ReadStripe(corrupt) = %q, repaired=%v, err=%v", data, repaired, err)
	}
	if h := set.Verify(OS{}, cfg, nil, 0); len(h.BadStripes) != 1 || h.BadStripes[0] != 2 || !h.Recoverable {
		t.Fatalf("Verify after no-repair read = %+v", h)
	}

	// Two damaged data files exceed single-parity redundancy.
	corrupt(t, filepath.Join(dir, set.Stripes[0].Name))
	if _, _, err := set.ReadStripe(OS{}, cfg, nil, 0, 0, false); err == nil {
		t.Fatal("double damage must be unrecoverable in parity mode")
	}
	if h := set.Verify(OS{}, cfg, nil, 0); h.Recoverable {
		t.Fatal("Verify calls a double-damaged parity set recoverable")
	}
}

func TestReplicaReconstruct(t *testing.T) {
	dir := t.TempDir()
	set := writeSet(t, dir, RedundancyReplica, []byte("aaaaaaaa"), []byte("bbbb"))
	cfg := Config{}

	// Lose a primary: the replica serves and heals it.
	os.Remove(filepath.Join(dir, set.Stripes[0].Name))
	data, repaired, err := set.ReadStripe(OS{}, cfg, nil, 0, 0, true)
	if err != nil || !repaired || string(data) != "aaaaaaaa" {
		t.Fatalf("ReadStripe = %q, repaired=%v, err=%v", data, repaired, err)
	}
	// Lose a primary AND its replica: unrecoverable.
	os.Remove(filepath.Join(dir, set.Stripes[1].Name))
	os.Remove(filepath.Join(dir, ReplicaName(set.Stripes[1].Name)))
	if _, _, err := set.ReadStripe(OS{}, cfg, nil, 0, 1, true); err == nil {
		t.Fatal("primary+replica loss must be unrecoverable")
	}
	if h := set.Verify(OS{}, cfg, nil, 0); h.Recoverable {
		t.Fatalf("Verify = %+v, want unrecoverable", h)
	}
}

func TestVerifyMatrix(t *testing.T) {
	type damage func(t *testing.T, dir string, set StripeSet)
	loseStripe := func(t *testing.T, dir string, set StripeSet) {
		os.Remove(filepath.Join(dir, set.Stripes[0].Name))
	}
	loseAux := func(t *testing.T, dir string, set StripeSet) {
		if set.Redundancy == RedundancyParity {
			corrupt(t, filepath.Join(dir, set.Parity.Name))
		} else {
			corrupt(t, filepath.Join(dir, ReplicaName(set.Stripes[0].Name)))
		}
	}
	cases := []struct {
		name        string
		redundancy  string
		damage      damage
		recoverable bool
	}{
		{"none/clean", RedundancyNone, nil, true},
		{"none/lost", RedundancyNone, loseStripe, false},
		{"parity/clean", RedundancyParity, nil, true},
		{"parity/lost-stripe", RedundancyParity, loseStripe, true},
		{"parity/lost-parity", RedundancyParity, loseAux, true},
		{"replica/lost-stripe", RedundancyReplica, loseStripe, true},
		{"replica/lost-replica", RedundancyReplica, loseAux, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			set := writeSet(t, dir, tc.redundancy, []byte("aaaaaaaa"), []byte("bbbbbbbb"))
			clean := set.Verify(OS{}, Config{}, nil, 0)
			if !clean.Clean() || !clean.Recoverable {
				t.Fatalf("fresh set not clean: %+v", clean)
			}
			if tc.damage != nil {
				tc.damage(t, dir, set)
			}
			h := set.Verify(OS{}, Config{}, nil, 0)
			if h.Recoverable != tc.recoverable {
				t.Fatalf("Recoverable = %v, want %v (%+v)", h.Recoverable, tc.recoverable, h)
			}
			if tc.damage != nil && h.Clean() {
				t.Fatal("damage not detected")
			}
		})
	}
}

func TestScrubRepairsEverything(t *testing.T) {
	dir := t.TempDir()
	set := writeSet(t, dir, RedundancyParity, []byte("aaaaaaaa"), []byte("bbbb"), []byte("cccccc"))
	met := &Metrics{}
	cfg := Config{Metrics: met}

	corrupt(t, filepath.Join(dir, set.Stripes[1].Name))
	corrupt(t, filepath.Join(dir, set.Parity.Name))
	// One damaged stripe + damaged parity: the stripe heals from the
	// remaining stripes... no — parity is damaged too, so stripe 1 is
	// unrecoverable.  Scrub reports it instead of erroring.
	rep, err := set.Scrub(OS{}, cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrecoverable) != 2 {
		t.Fatalf("Scrub = %+v, want stripe 1 and parity unrecoverable", rep)
	}

	// Re-materialize, damage only parity: Scrub recomputes it in place.
	dir = t.TempDir()
	set = writeSet(t, dir, RedundancyParity, []byte("aaaaaaaa"), []byte("bbbb"), []byte("cccccc"))
	corrupt(t, filepath.Join(dir, set.Parity.Name))
	rep, err = set.Scrub(OS{}, cfg, nil, 0)
	if err != nil || len(rep.Repaired) != 1 || rep.Repaired[0] != "parity.bin" || len(rep.Unrecoverable) != 0 {
		t.Fatalf("Scrub(parity rot) = %+v, %v", rep, err)
	}
	if !set.Verify(OS{}, cfg, nil, 0).Clean() {
		t.Fatal("set not clean after parity recompute")
	}

	// Replica mode: a rotten replica is recopied from its primary.
	dir = t.TempDir()
	set = writeSet(t, dir, RedundancyReplica, []byte("aaaaaaaa"), []byte("bbbb"))
	corrupt(t, filepath.Join(dir, ReplicaName(set.Stripes[1].Name)))
	os.Remove(filepath.Join(dir, set.Stripes[0].Name))
	rep, err = set.Scrub(OS{}, cfg, nil, 0)
	if err != nil || len(rep.Repaired) != 2 || len(rep.Unrecoverable) != 0 {
		t.Fatalf("Scrub(replica) = %+v, %v", rep, err)
	}
	if !set.Verify(OS{}, cfg, nil, 0).Clean() {
		t.Fatal("set not clean after replica scrub")
	}
}

func TestServerOverlapAndFailure(t *testing.T) {
	dir := t.TempDir()
	srv := StartServer(OS{}, Config{}, nil, 0)
	for i := 0; i < 8; i++ {
		srv.Write(filepath.Join(dir, stripeName(i)), []byte{byte(i), byte(i)})
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got, err := os.ReadFile(filepath.Join(dir, stripeName(i)))
		if err != nil || len(got) != 2 || got[0] != byte(i) {
			t.Fatalf("stripe %d = %v, %v", i, got, err)
		}
	}

	// First failure is sticky; later jobs are skipped, not written.
	ff := NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultEIO, Op: "write", Rank: -1, Count: 1}}})
	srv = StartServer(ff.Rank(0), Config{}, nil, 0)
	srv.Write(filepath.Join(dir, "fail.bin"), []byte("x"))
	srv.Write(filepath.Join(dir, "skipped.bin"), []byte("y"))
	if err := srv.Close(); err == nil {
		t.Fatal("Close swallowed the write failure")
	}
	if _, err := os.Stat(filepath.Join(dir, "skipped.bin")); !os.IsNotExist(err) {
		t.Fatal("a job after the first failure still reached the disk")
	}
}
