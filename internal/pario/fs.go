// Package pario is the ViPIOS-style parallel I/O subsystem: the storage
// counterpart of the fault-injecting transport layer (internal/msg).
// It treats disk failure as a first-class input, the way PR 3 treated
// the network:
//
//   - an FS abstraction seam under every read/write/rename the
//     checkpoint paths perform, with FaultFS — a deterministic, seedable
//     fault injector (I/O errors, short writes, torn renames, silent bit
//     rot, stalls) sharing the plan syntax and Arm/Disarm shape of
//     msg.FaultTransport;
//   - Config, a CommConfig-style timeout/retry/backoff policy applied to
//     each I/O operation, with "io:" trace spans and retry instants;
//   - stripe geometry (StripeGrids/Place) that decouples the on-disk
//     layout from the in-memory distribution: file order is the array's
//     canonical enumeration, split into contiguous slabs that I/O server
//     ranks own, whatever the compute distribution looks like;
//   - redundancy and self-healing (StripeSet): per-stripe CRCs plus a
//     parity or replica stripe, so any single lost or corrupt stripe
//     file is reconstructed at read time — and repaired in place — and a
//     Scrub pass detects and fixes rot before it is needed;
//   - Server, a dedicated I/O goroutine per server rank, so stripe
//     writes overlap the collective coordination that follows them.
//
// The package is deliberately below internal/ckpt: it knows bytes,
// files, grids and checksums, not arrays or manifests.
package pario

import (
	"io/fs"
	"os"
	"sync/atomic"
)

// FS is the filesystem seam under every parallel-I/O operation.  OS is
// the real implementation; FaultFS decorates any FS with deterministic
// fault injection.  All writes are whole-file and idempotent, so a
// failed operation is always safe to retry.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	WriteFile(path string, data []byte, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	Rename(oldpath, newpath string) error
	RemoveAll(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

// MkdirAll delegates to os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// WriteFile delegates to os.WriteFile.
func (OS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

// ReadFile delegates to os.ReadFile.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Rename delegates to os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// RemoveAll delegates to os.RemoveAll.
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// ReadDir delegates to os.ReadDir.
func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// Metrics counts what the I/O layer did; attach one to a Config to
// observe a run.  All fields are safe for concurrent update.
type Metrics struct {
	BytesWritten atomic.Int64
	BytesRead    atomic.Int64
	WriteOps     atomic.Int64
	ReadOps      atomic.Int64
	// Retries counts operation attempts after a failure.
	Retries atomic.Int64
	// Repairs counts stripe files rewritten from redundancy (by restore
	// or Scrub).
	Repairs atomic.Int64
	// Reconstructions counts stripe payloads rebuilt from parity or a
	// replica at read time (whether or not they were written back).
	Reconstructions atomic.Int64
}
