package pario

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("eio,op=write,path=stripe-,rank=1,after=2,count=3;stall,delay=20ms,every=4;seed=7;bitrot,op=read,prob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || len(plan.Rules) != 3 {
		t.Fatalf("seed=%d rules=%d, want 7 and 3", plan.Seed, len(plan.Rules))
	}
	r := plan.Rules[0]
	if r.Kind != FaultEIO || r.Op != "write" || r.Path != "stripe-" || r.Rank != 1 || r.After != 2 || r.Count != 3 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if plan.Rules[1].Kind != FaultStall || plan.Rules[1].Delay != 20*time.Millisecond || plan.Rules[1].Every != 4 {
		t.Fatalf("rule 1 = %+v", plan.Rules[1])
	}
	if plan.Rules[2].Kind != FaultBitrot || plan.Rules[2].Op != "read" || plan.Rules[2].Prob != 0.5 {
		t.Fatalf("rule 2 = %+v", plan.Rules[2])
	}
	if !plan.HasKind(FaultStall) || plan.HasKind(FaultTornRename) {
		t.Fatal("HasKind misreports")
	}
	for _, bad := range []string{
		"", "zap", "eio,count", "eio,op=link", "eio,nope=1", "stall", "stall,count=2", "seed=x",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

// TestFaultSchedule pins the after/count/every windows and the per-rank
// isolation of the match counters: rank 1's operations must not advance
// rank 0's schedule.
func TestFaultSchedule(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{Rules: []FaultRule{{Kind: FaultEIO, Op: "write", Rank: 0, After: 1, Count: 2}}}
	ff := NewFaultFS(OS{}, plan)
	f0, f1 := ff.Rank(0), ff.Rank(1)
	p := filepath.Join(dir, "x")
	var got []bool
	for i := 0; i < 5; i++ {
		// Interleave rank 1 writes; they must neither fail nor advance
		// rank 0's counter.
		if err := f1.WriteFile(p+"r1", []byte("ok"), 0o644); err != nil {
			t.Fatalf("rank 1 write %d: %v", i, err)
		}
		got = append(got, f0.WriteFile(p, []byte("ok"), 0o644) != nil)
	}
	want := []bool{false, true, true, false, false} // skip 1, fail 2, then clean
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank 0 failure schedule %v, want %v", got, want)
		}
	}

	plan = &FaultPlan{Rules: []FaultRule{{Kind: FaultEIO, Op: "write", Rank: -1, Every: 3}}}
	ff = NewFaultFS(OS{}, plan)
	f0 = ff.Rank(0)
	got = got[:0]
	for i := 0; i < 6; i++ {
		got = append(got, f0.WriteFile(p, []byte("ok"), 0o644) != nil)
	}
	want = []bool{true, false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("every=3 schedule %v, want %v", got, want)
		}
	}
}

func TestProbScheduleSeeded(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	run := func() []bool {
		ff := NewFaultFS(OS{}, &FaultPlan{Seed: 42, Rules: []FaultRule{{Kind: FaultEIO, Op: "write", Rank: -1, Prob: 0.5}}})
		f := ff.Rank(3)
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, f.WriteFile(p, []byte("ok"), 0o644) != nil)
		}
		return out
	}
	a, b := run(), run()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prob schedule not reproducible under a fixed seed")
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times", hits, len(a))
	}
}

func TestShortWriteLeavesTornPrefix(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultWriteShort, Rank: -1, Count: 1}}})
	f := ff.Rank(0)
	p := filepath.Join(dir, "f")
	data := []byte("0123456789abcdef")
	err := f.WriteFile(p, data, 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v, want ErrInjected", err)
	}
	got, rerr := os.ReadFile(p)
	if rerr != nil || string(got) != string(data[:len(data)/2]) {
		t.Fatalf("torn file = %q (%v), want the half prefix", got, rerr)
	}
	// The retry (rule exhausted) rewrites the whole file.
	if err := f.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(p); string(got) != string(data) {
		t.Fatalf("retry left %q", got)
	}
}

func TestBitrotWriteAndRead(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultBitrot, Rank: -1, Count: 1}}})
	f := ff.Rank(0)
	p := filepath.Join(dir, "f")
	data := []byte("0123456789abcdef")
	if err := f.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("bitrot write reported %v, want silent success", err)
	}
	if string(data) != "0123456789abcdef" {
		t.Fatal("caller's buffer was mutated")
	}
	onDisk, _ := os.ReadFile(p)
	diff := 0
	for i := range onDisk {
		if onDisk[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("stored copy differs in %d bytes, want exactly 1", diff)
	}

	ff = NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultBitrot, Op: "read", Rank: -1, Count: 1}}})
	f = ff.Rank(0)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile(p)
	if err != nil || string(got) == string(data) {
		t.Fatalf("read-path bitrot did not fire (%v)", err)
	}
	if onDisk, _ := os.ReadFile(p); string(onDisk) != string(data) {
		t.Fatal("read-path bitrot damaged the file itself")
	}
}

func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultTornRename, Rank: -1, Count: 1}}})
	f := ff.Rank(0)
	staging := filepath.Join(dir, "epoch-00000000.tmp")
	if err := os.MkdirAll(staging, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(staging, "a.bin"), []byte("aaaaaaaa"), 0o644)
	os.WriteFile(filepath.Join(staging, "b.bin"), []byte("bbbbbbbb"), 0o644)
	final := filepath.Join(dir, "epoch-00000000")
	if err := f.Rename(staging, final); err != nil {
		t.Fatalf("torn rename must report success, got %v", err)
	}
	a, _ := os.ReadFile(filepath.Join(final, "a.bin"))
	b, _ := os.ReadFile(filepath.Join(final, "b.bin"))
	if string(a) != "aaaaaaaa" {
		t.Fatalf("a.bin = %q, want intact", a)
	}
	if string(b) != "bbbb" {
		t.Fatalf("b.bin = %q, want the torn half", b)
	}
}

// TestStallTimeoutRetry drives a stalled write through Config's deadline:
// the first attempt exceeds Timeout, the retry hits a clean device.
func TestStallTimeoutRetry(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultStall, Op: "write", Rank: -1, Count: 1, Delay: 200 * time.Millisecond}}})
	f := ff.Rank(0)
	met := &Metrics{}
	cfg := Config{Timeout: 20 * time.Millisecond, Retries: 2, Metrics: met}
	p := filepath.Join(dir, "f")
	if err := cfg.WriteFile(f, nil, 0, p, []byte("ok")); err != nil {
		t.Fatalf("stalled write did not heal on retry: %v", err)
	}
	if met.Retries.Load() == 0 {
		t.Fatal("no retry was recorded")
	}
	// The stalled first attempt may still land in the background; what
	// matters is the caller got a success and the content is right.
	time.Sleep(250 * time.Millisecond)
	if got, _ := os.ReadFile(p); string(got) != "ok" {
		t.Fatalf("file = %q", got)
	}
}

func TestRetryHealsEIO(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultEIO, Op: "write", Rank: -1, Count: 2}}})
	f := ff.Rank(0)
	met := &Metrics{}
	cfg := Config{Retries: 2, Backoff: time.Millisecond, Metrics: met}
	p := filepath.Join(dir, "f")
	if err := cfg.WriteFile(f, nil, 0, p, []byte("ok")); err != nil {
		t.Fatalf("EIO did not heal within the retry budget: %v", err)
	}
	if got := met.Retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if met.WriteOps.Load() != 1 || met.BytesWritten.Load() != 2 {
		t.Fatalf("metrics = %d ops / %d bytes, want 1/2", met.WriteOps.Load(), met.BytesWritten.Load())
	}
	// A persistent fault exhausts the budget and surfaces.
	ff = NewFaultFS(OS{}, &FaultPlan{Rules: []FaultRule{{Kind: FaultEIO, Op: "write", Rank: -1}}})
	if err := cfg.WriteFile(ff.Rank(0), nil, 0, p, []byte("ok")); !errors.Is(err, ErrInjected) {
		t.Fatalf("persistent EIO = %v, want ErrInjected", err)
	}
}

func TestArmDisarm(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS{}, &FaultPlan{
		StartDisarmed: true,
		Rules:         []FaultRule{{Kind: FaultEIO, Op: "write", Rank: -1}},
	})
	f := ff.Rank(0)
	p := filepath.Join(dir, "f")
	if err := f.WriteFile(p, []byte("ok"), 0o644); err != nil {
		t.Fatalf("disarmed endpoint injected: %v", err)
	}
	ff.Arm(0)
	if err := f.WriteFile(p, []byte("ok"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed endpoint did not inject: %v", err)
	}
	ff.Disarm(0)
	if err := f.WriteFile(p, []byte("ok"), 0o644); err != nil {
		t.Fatalf("re-disarmed endpoint injected: %v", err)
	}
}
