package pario

import (
	"fmt"
	"hash/crc32"
	"path/filepath"

	"repro/internal/index"
	"repro/internal/trace"
)

// Redundancy modes for a stripe set.
const (
	// RedundancyNone stores only the data stripes; any lost or corrupt
	// stripe file makes the epoch unusable.
	RedundancyNone = "none"
	// RedundancyParity stores one extra parity stripe (the byte-wise XOR
	// of all data stripes, zero-padded to the largest); any single lost
	// or corrupt file — data or parity — is reconstructible from the
	// rest.
	RedundancyParity = "parity"
	// RedundancyReplica stores a full second copy of every data stripe;
	// either copy repairs the other.
	RedundancyReplica = "replica"
)

// ValidRedundancy reports whether s names a redundancy mode.
func ValidRedundancy(s string) bool {
	return s == RedundancyNone || s == RedundancyParity || s == RedundancyReplica
}

// StripeGrids partitions dom's canonical point set into ns contiguous
// slabs along the outermost (last) dimension — dimension 0 varies
// fastest in the canonical enumeration, so a slab of the last dimension
// is a contiguous byte range of the canonical file order.  This is the
// on-disk layout: a balanced BLOCK split that never depends on how the
// array is distributed in memory.  Stripes beyond the extent come back
// empty (still same-rank grids, so intersections stay legal).
func StripeGrids(dom index.Domain, ns int) []index.Grid {
	nd := dom.Rank()
	last := nd - 1
	n := dom.Hi[last] - dom.Lo[last] + 1
	out := make([]index.Grid, ns)
	base, rem := n/ns, n%ns
	start := dom.Lo[last]
	for s := 0; s < ns; s++ {
		take := base
		if s < rem {
			take++
		}
		g := index.Grid{Dims: make([]index.RunSet, nd)}
		for k := 0; k < last; k++ {
			g.Dims[k] = index.NewRunSet(index.NewRun(dom.Lo[k], dom.Hi[k], 1))
		}
		if take > 0 {
			g.Dims[last] = index.NewRunSet(index.NewRun(start, start+take-1, 1))
		} else {
			g.Dims[last] = index.NewRunSet()
		}
		start += take
		out[s] = g
	}
	return out
}

// Place scatters payload — the values of grid g in g's canonical
// enumeration order, 8 bytes each — into dst at the canonical positions
// of g's points within the enclosing grid into (g must be a subset of
// into).  It is the write-side inverse of the restore path's extract.
func Place(dst []byte, payload []byte, g, into index.Grid) {
	strd := make([]int, into.Rank())
	mul := 1
	for k := range strd {
		strd[k] = mul
		mul *= into.Dims[k].Count()
	}
	off := 0
	g.ForEachRun(func(p index.Point, r index.Run) bool {
		row := 0
		for k := 1; k < len(p); k++ {
			row += into.Dims[k].IndexOf(p[k]) * strd[k]
		}
		for i := r.Lo; i <= r.Hi; i += r.Stride {
			idx := row + into.Dims[0].IndexOf(i)
			copy(dst[8*idx:8*idx+8], payload[off:off+8])
			off += 8
		}
		return true
	})
}

// XorInto folds src into dst byte-wise (dst must be at least as long as
// src); the parity stripe is the XOR of all data stripes zero-padded to
// the longest.
func XorInto(dst, src []byte) {
	for i, b := range src {
		dst[i] ^= b
	}
}

// StripeInfo records one stripe file's integrity data.
type StripeInfo struct {
	Name string
	Size int64
	CRC  uint32
}

// ReplicaName is the on-disk name of a stripe's replica copy.
func ReplicaName(name string) string { return name + ".rep" }

// StripeSet describes the files of one committed epoch: the data
// stripes, the redundancy mode, and (in parity mode) the parity stripe.
// It is the unit Verify, ReadStripe and Scrub operate on; internal/ckpt
// builds one from each epoch manifest.
type StripeSet struct {
	Dir        string
	Stripes    []StripeInfo
	Redundancy string
	Parity     *StripeInfo
}

// checkedRead reads and integrity-checks one file against its recorded
// size and CRC; any mismatch (or a missing file) comes back as an error.
func (s *StripeSet) checkedRead(f FS, cfg Config, tr *trace.Tracer, rank int, name string, size int64, crc uint32) ([]byte, error) {
	data, err := cfg.ReadFile(f, tr, rank, filepath.Join(s.Dir, name))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != size || crc32.ChecksumIEEE(data) != crc {
		return nil, fmt.Errorf("pario: %s/%s: checksum mismatch (%d bytes, want %d)", s.Dir, name, len(data), size)
	}
	return data, nil
}

// reconstruct rebuilds data stripe i from the redundancy stripes: the
// replica copy in replica mode, the XOR of every other stripe plus
// parity in parity mode.
func (s *StripeSet) reconstruct(f FS, cfg Config, tr *trace.Tracer, rank, i int) ([]byte, error) {
	info := s.Stripes[i]
	switch s.Redundancy {
	case RedundancyReplica:
		data, err := s.checkedRead(f, cfg, tr, rank, ReplicaName(info.Name), info.Size, info.CRC)
		if err != nil {
			return nil, fmt.Errorf("pario: stripe %d unrecoverable (replica also damaged): %w", i, err)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Reconstructions.Add(1)
		}
		return data, nil
	case RedundancyParity:
		if s.Parity == nil {
			return nil, fmt.Errorf("pario: stripe %d unrecoverable (no parity stripe recorded)", i)
		}
		acc, err := s.checkedRead(f, cfg, tr, rank, s.Parity.Name, s.Parity.Size, s.Parity.CRC)
		if err != nil {
			return nil, fmt.Errorf("pario: stripe %d unrecoverable (parity damaged): %w", i, err)
		}
		buf := make([]byte, len(acc))
		copy(buf, acc)
		for j, other := range s.Stripes {
			if j == i {
				continue
			}
			data, err := s.checkedRead(f, cfg, tr, rank, other.Name, other.Size, other.CRC)
			if err != nil {
				return nil, fmt.Errorf("pario: stripe %d unrecoverable (stripe %d also damaged): %w", i, j, err)
			}
			XorInto(buf, data)
		}
		data := buf[:info.Size]
		if crc32.ChecksumIEEE(data) != info.CRC {
			return nil, fmt.Errorf("pario: stripe %d: parity reconstruction fails its checksum (multiple damaged files)", i)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Reconstructions.Add(1)
		}
		return data, nil
	}
	return nil, fmt.Errorf("pario: stripe %d unrecoverable (redundancy %q)", i, s.Redundancy)
}

// repairFile atomically rewrites name with data: the content lands under
// a rank-unique temporary name and is renamed into place, so concurrent
// repairs by several restoring ranks (always with identical bytes) are
// benign.
func (s *StripeSet) repairFile(f FS, cfg Config, tr *trace.Tracer, rank int, name string, data []byte) error {
	path := filepath.Join(s.Dir, name)
	tmp := fmt.Sprintf("%s.repair.%d", path, rank)
	if err := cfg.WriteFile(f, tr, rank, tmp, data); err != nil {
		return err
	}
	if err := cfg.Rename(f, tr, rank, tmp, path); err != nil {
		return err
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Repairs.Add(1)
	}
	tr.Instant(rank, trace.CatIO, "io:repair "+name, -1, int64(len(data)))
	return nil
}

// ReadStripe returns the verified content of data stripe i.  A damaged
// or missing stripe file is reconstructed from redundancy; with repair
// set the reconstruction is also written back in place (self-healing
// restore).  repaired reports whether a reconstruction happened.
func (s *StripeSet) ReadStripe(f FS, cfg Config, tr *trace.Tracer, rank, i int, repair bool) (data []byte, repaired bool, err error) {
	info := s.Stripes[i]
	data, err = s.checkedRead(f, cfg, tr, rank, info.Name, info.Size, info.CRC)
	if err == nil {
		return data, false, nil
	}
	data, rerr := s.reconstruct(f, cfg, tr, rank, i)
	if rerr != nil {
		return nil, false, fmt.Errorf("%v; %w", err, rerr)
	}
	if repair {
		if werr := s.repairFile(f, cfg, tr, rank, info.Name, data); werr != nil {
			return nil, true, fmt.Errorf("pario: repairing stripe %d: %w", i, werr)
		}
	}
	return data, true, nil
}

// Health reports a Verify pass over a stripe set.
type Health struct {
	// BadStripes lists the indices of damaged or missing data stripes.
	BadStripes []int
	// BadAux lists damaged redundancy files (parity or replica names).
	BadAux []string
	// Recoverable reports whether every data stripe is still readable,
	// through redundancy if need be — the "verifiably complete" test a
	// restore falls back on epoch by epoch.
	Recoverable bool
}

// Clean reports a fully intact set (no damage anywhere, redundancy
// included).
func (h Health) Clean() bool { return len(h.BadStripes) == 0 && len(h.BadAux) == 0 }

// Verify integrity-checks every file of the set without modifying
// anything.
func (s *StripeSet) Verify(f FS, cfg Config, tr *trace.Tracer, rank int) Health {
	var h Health
	for i, info := range s.Stripes {
		if _, err := s.checkedRead(f, cfg, tr, rank, info.Name, info.Size, info.CRC); err != nil {
			h.BadStripes = append(h.BadStripes, i)
		}
		if s.Redundancy == RedundancyReplica {
			if _, err := s.checkedRead(f, cfg, tr, rank, ReplicaName(info.Name), info.Size, info.CRC); err != nil {
				h.BadAux = append(h.BadAux, ReplicaName(info.Name))
			}
		}
	}
	parityOK := true
	if s.Redundancy == RedundancyParity && s.Parity != nil {
		if _, err := s.checkedRead(f, cfg, tr, rank, s.Parity.Name, s.Parity.Size, s.Parity.CRC); err != nil {
			h.BadAux = append(h.BadAux, s.Parity.Name)
			parityOK = false
		}
	}
	switch s.Redundancy {
	case RedundancyParity:
		h.Recoverable = len(h.BadStripes) == 0 || (len(h.BadStripes) == 1 && parityOK)
	case RedundancyReplica:
		h.Recoverable = true
		bad := map[int]bool{}
		for _, i := range h.BadStripes {
			bad[i] = true
		}
		for _, name := range h.BadAux {
			for i, info := range s.Stripes {
				if ReplicaName(info.Name) == name && bad[i] {
					h.Recoverable = false
				}
			}
		}
	default:
		h.Recoverable = len(h.BadStripes) == 0
	}
	return h
}

// ScrubReport says what a Scrub pass found and fixed.
type ScrubReport struct {
	// Checked counts integrity-checked files (stripes + redundancy).
	Checked int
	// Repaired lists files rewritten in place from redundancy.
	Repaired []string
	// Unrecoverable lists damaged files that could not be rebuilt.
	Unrecoverable []string
}

// Scrub detects and repairs rot in place: every damaged or missing data
// stripe is rebuilt from redundancy and rewritten, damaged parity is
// recomputed from the (now intact) data stripes, and damaged replicas
// are recopied from their primaries.  Unrecoverable damage is reported,
// not an error — the caller decides whether a degraded epoch is fatal.
func (s *StripeSet) Scrub(f FS, cfg Config, tr *trace.Tracer, rank int) (ScrubReport, error) {
	sp := tr.BeginSpan(rank, trace.CatIO, "io:scrub")
	defer sp.End()
	var rep ScrubReport
	intact := make([][]byte, len(s.Stripes))
	for i, info := range s.Stripes {
		rep.Checked++
		data, err := s.checkedRead(f, cfg, tr, rank, info.Name, info.Size, info.CRC)
		if err == nil {
			intact[i] = data
			continue
		}
		data, rerr := s.reconstruct(f, cfg, tr, rank, i)
		if rerr != nil {
			rep.Unrecoverable = append(rep.Unrecoverable, info.Name)
			continue
		}
		if werr := s.repairFile(f, cfg, tr, rank, info.Name, data); werr != nil {
			return rep, werr
		}
		intact[i] = data
		rep.Repaired = append(rep.Repaired, info.Name)
	}
	switch s.Redundancy {
	case RedundancyReplica:
		for i, info := range s.Stripes {
			rep.Checked++
			if _, err := s.checkedRead(f, cfg, tr, rank, ReplicaName(info.Name), info.Size, info.CRC); err == nil {
				continue
			}
			if intact[i] == nil {
				rep.Unrecoverable = append(rep.Unrecoverable, ReplicaName(info.Name))
				continue
			}
			if werr := s.repairFile(f, cfg, tr, rank, ReplicaName(info.Name), intact[i]); werr != nil {
				return rep, werr
			}
			rep.Repaired = append(rep.Repaired, ReplicaName(info.Name))
		}
	case RedundancyParity:
		if s.Parity == nil {
			break
		}
		rep.Checked++
		if _, err := s.checkedRead(f, cfg, tr, rank, s.Parity.Name, s.Parity.Size, s.Parity.CRC); err == nil {
			break
		}
		buf := make([]byte, s.Parity.Size)
		ok := true
		for i := range s.Stripes {
			if intact[i] == nil {
				ok = false
				break
			}
			XorInto(buf, intact[i])
		}
		if !ok || crc32.ChecksumIEEE(buf) != s.Parity.CRC {
			rep.Unrecoverable = append(rep.Unrecoverable, s.Parity.Name)
			break
		}
		if werr := s.repairFile(f, cfg, tr, rank, s.Parity.Name, buf); werr != nil {
			return rep, werr
		}
		rep.Repaired = append(rep.Repaired, s.Parity.Name)
	}
	return rep, nil
}
