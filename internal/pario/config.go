package pario

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"repro/internal/trace"
)

// ErrTimeout is returned when an I/O operation exceeds Config.Timeout.
// The operation may still complete in the background (a stalled device
// eventually answering); every write in this package is whole-file and
// idempotent, so the retry that follows is safe either way.
var ErrTimeout = errors.New("pario: I/O operation timed out")

// Config is the CommConfig of the storage layer: a per-operation
// deadline plus bounded retries with doubling backoff, applied to every
// FS operation the checkpoint paths perform.  The zero Config waits
// forever and never retries.
type Config struct {
	// Timeout is the per-operation deadline (0 = wait forever).
	Timeout time.Duration
	// Retries is the number of extra attempts after the first failure.
	Retries int
	// Backoff is the initial sleep between failed attempts; it doubles
	// per retry.  0 means retry immediately.
	Backoff time.Duration
	// Metrics, when non-nil, counts bytes, operations, retries and
	// repairs.
	Metrics *Metrics
}

func (c Config) addRetry(tr *trace.Tracer, rank int, op string) {
	if c.Metrics != nil {
		c.Metrics.Retries.Add(1)
	}
	tr.Instant(rank, trace.CatIO, "io:retry "+op, -1, -1)
}

// run executes one FS operation under the deadline/retry policy,
// recording an "io:" span on rank's timeline.  Torn state left behind by
// a failed attempt (a short write) is overwritten by the retry: all
// operations here are idempotent.
func (c Config) run(tr *trace.Tracer, rank int, name string, op func() error) error {
	sp := tr.BeginSpan(rank, trace.CatIO, "io:"+name)
	defer sp.End()
	backoff := c.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		err = c.once(op)
		if err == nil || attempt >= c.Retries || !retryable(err) {
			break
		}
		c.addRetry(tr, rank, name)
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	return err
}

// once runs op under the deadline.  The operation goroutine sends into a
// buffered channel, so a late completion after the timeout exits cleanly
// rather than leaking.
func (c Config) once(op func() error) error {
	if c.Timeout <= 0 {
		return op()
	}
	done := make(chan error, 1)
	go func() { done <- op() }()
	t := time.NewTimer(c.Timeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return ErrTimeout
	}
}

// retryable reports whether an error class can be healed by re-running
// the (idempotent) operation: injected transient faults, timeouts, and
// generic I/O errors qualify; a missing file or directory does not.
func retryable(err error) bool {
	return !os.IsNotExist(err) && !errors.Is(err, fs.ErrNotExist)
}

// WriteFile writes path whole-file under the retry policy.
func (c Config) WriteFile(f FS, tr *trace.Tracer, rank int, path string, data []byte) error {
	err := c.run(tr, rank, fmt.Sprintf("write %s (%dB)", filebase(path), len(data)), func() error {
		return f.WriteFile(path, data, 0o644)
	})
	if err == nil && c.Metrics != nil {
		c.Metrics.WriteOps.Add(1)
		c.Metrics.BytesWritten.Add(int64(len(data)))
	}
	return err
}

// ReadFile reads path under the retry policy.
func (c Config) ReadFile(f FS, tr *trace.Tracer, rank int, path string) ([]byte, error) {
	var data []byte
	err := c.run(tr, rank, "read "+filebase(path), func() error {
		var err error
		data, err = f.ReadFile(path)
		return err
	})
	if err == nil && c.Metrics != nil {
		c.Metrics.ReadOps.Add(1)
		c.Metrics.BytesRead.Add(int64(len(data)))
	}
	return data, err
}

// Rename renames under the retry policy.
func (c Config) Rename(f FS, tr *trace.Tracer, rank int, oldpath, newpath string) error {
	return c.run(tr, rank, "rename "+filebase(newpath), func() error {
		return f.Rename(oldpath, newpath)
	})
}

// MkdirAll creates a directory tree under the retry policy.
func (c Config) MkdirAll(f FS, tr *trace.Tracer, rank int, path string) error {
	return c.run(tr, rank, "mkdir "+filebase(path), func() error {
		return f.MkdirAll(path, 0o755)
	})
}

// filebase is filepath.Base without pulling the path package into every
// span label; it keeps only the last two path elements for context.
func filebase(path string) string {
	sep := byte(os.PathSeparator)
	last, prev := -1, -1
	for i := 0; i < len(path); i++ {
		if path[i] == sep {
			prev, last = last, i
		}
	}
	if prev >= 0 {
		return path[prev+1:]
	}
	return path
}
