package pario

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error produced by injected I/O faults.  An injected
// FaultEIO delivers no side effect (nothing reached the disk), so the
// operation is safe to retry; an injected FaultWriteShort leaves a torn
// prefix behind, exactly like a crash or a full disk mid-write.
var ErrInjected = errors.New("pario: injected I/O fault")

// FaultKind selects what a FaultRule does when it fires.
type FaultKind int

// Fault kinds.
const (
	// FaultEIO fails the operation with ErrInjected and no side effect
	// (a transient device error: retrying re-runs the operation).
	FaultEIO FaultKind = iota
	// FaultWriteShort writes only a prefix of the data, then fails with
	// ErrInjected (a crash or full disk mid-write: the torn file stays on
	// disk; a retry rewrites the whole file).  Fires on writes only.
	FaultWriteShort
	// FaultTornRename performs the rename but first truncates the last
	// regular file under the source to half its length (commit metadata
	// reached the disk, a data block did not — the classic missing-fsync
	// torn commit).  The operation reports success.  Fires on renames.
	FaultTornRename
	// FaultBitrot flips one bit: on a write, in the stored copy (the
	// caller's buffer is untouched and the call reports success — silent
	// media corruption, detectable only by checksum); on a read, in the
	// returned copy (a flaky read path; the file itself stays intact).
	FaultBitrot
	// FaultStall delays the operation by Delay before running it (a slow
	// or hung device; with a Config.Timeout the caller's deadline fires
	// first and the retry re-runs the operation).
	FaultStall
)

var faultKindNames = map[FaultKind]string{
	FaultEIO:        "eio",
	FaultWriteShort: "short",
	FaultTornRename: "torn",
	FaultBitrot:     "bitrot",
	FaultStall:      "stall",
}

func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultRule describes one deterministic disk-fault schedule.  A rule
// watches the matching operations of one rank's FS endpoint and fires on
// a subset of them; matching operations are counted per rank, so a
// schedule replays identically for a deterministic program regardless of
// how ranks interleave.
type FaultRule struct {
	Kind FaultKind
	// Op restricts the rule to one operation kind: "write", "read",
	// "rename", "mkdir", "remove", "readdir" ("" = the kind's natural
	// ops: writes for short/bitrot-on-write, renames for torn, any for
	// eio/stall; bitrot with op=read rots the read path instead).
	Op string
	// Rank restricts the rule to one rank's endpoint (-1 = all).
	Rank int
	// Path restricts by substring of the operation's path ("" = any);
	// e.g. path=manifest targets the manifest write, path=stripe- the
	// stripe files.
	Path string
	// After skips the first After matching operations.
	After int
	// Count fires on the next Count matches after After; 0 means every
	// subsequent match (a persistent fault).
	Count int
	// Every, when > 0, fires on every Every-th match after After instead
	// of the Count window.
	Every int
	// Prob, when > 0, fires each match after After with this probability
	// using the plan's seeded per-rank RNG instead of Count/Every.
	Prob float64
	// Delay is the injected latency for FaultStall.
	Delay time.Duration
}

// FaultPlan is a set of disk-fault rules plus the RNG seed for
// probabilistic rules; the per-rank streams derive from Seed+rank.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
	// StartDisarmed builds the FS with injection switched off on every
	// rank; tests call FaultFS.Arm(rank) at the point where the rank's
	// subsequent I/O is exactly the phase under test.
	StartDisarmed bool
}

// HasKind reports whether any rule of the plan is of kind k.
func (p *FaultPlan) HasKind(k FaultKind) bool {
	for _, r := range p.Rules {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// ParseFaultPlan parses the -io-fault flag syntax, the disk twin of
// msg.ParseFaultPlan: semicolon-separated rules, each a kind followed by
// comma-separated key=value options, e.g.
//
//	eio,op=write,path=stripe-,rank=1,count=2;stall,delay=20ms,every=3
//
// Kinds: eio, short, torn, bitrot, stall.  Options: op, rank, path,
// after, count, every, prob, delay (a Go duration).  A bare "seed=N"
// segment sets the plan seed for prob rules.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("pario: fault plan: bad seed %q", v)
			}
			plan.Seed = n
			continue
		}
		fields := strings.Split(seg, ",")
		r := FaultRule{Rank: -1}
		switch fields[0] {
		case "eio":
			r.Kind = FaultEIO
		case "short":
			r.Kind = FaultWriteShort
		case "torn":
			r.Kind = FaultTornRename
		case "bitrot":
			r.Kind = FaultBitrot
		case "stall":
			r.Kind = FaultStall
		default:
			return nil, fmt.Errorf("pario: fault plan: unknown kind %q (want eio|short|torn|bitrot|stall)", fields[0])
		}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("pario: fault plan: bad option %q (want key=value)", f)
			}
			var err error
			switch k {
			case "op":
				switch v {
				case "write", "read", "rename", "mkdir", "remove", "readdir":
					r.Op = v
				default:
					err = fmt.Errorf("unknown op %q", v)
				}
			case "rank":
				r.Rank, err = strconv.Atoi(v)
			case "path":
				r.Path = v
			case "after":
				r.After, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "every":
				r.Every, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown option %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("pario: fault plan: option %q: %v", f, err)
			}
		}
		if r.Kind == FaultStall && r.Delay <= 0 {
			return nil, fmt.Errorf("pario: fault plan: stall rule needs delay=<duration>")
		}
		plan.Rules = append(plan.Rules, r)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("pario: fault plan: no rules in %q", spec)
	}
	return plan, nil
}

// opMatches reports whether a rule applies to the given operation kind,
// honouring each fault kind's natural operation set when Op is elided.
func (r *FaultRule) opMatches(op string) bool {
	if r.Op != "" {
		return r.Op == op
	}
	switch r.Kind {
	case FaultWriteShort:
		return op == "write"
	case FaultTornRename:
		return op == "rename"
	case FaultBitrot:
		return op == "write"
	}
	return true // eio, stall: any operation
}

// FaultFS decorates any FS with the plan's deterministic fault
// schedules.  Each SPMD rank performs its I/O through its own endpoint
// (Rank), which carries that rank's match counters and armed flag —
// the Arm/Disarm shape of msg.FaultTransport, moved to storage.
type FaultFS struct {
	inner FS
	plan  *FaultPlan

	mu  sync.Mutex
	eps map[int]*faultEndpoint
}

// NewFaultFS wraps inner with the plan's fault rules.
func NewFaultFS(inner FS, plan *FaultPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan, eps: map[int]*faultEndpoint{}}
}

// Rank returns rank's fault-injecting FS endpoint (created on first use).
func (f *FaultFS) Rank(rank int) FS { return f.endpoint(rank) }

func (f *FaultFS) endpoint(rank int) *faultEndpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.eps[rank]
	if !ok {
		ep = &faultEndpoint{
			f:     f,
			rank:  rank,
			rng:   rand.New(rand.NewSource(f.plan.Seed + int64(rank))),
			armed: !f.plan.StartDisarmed,
			seen:  make([]int, len(f.plan.Rules)),
		}
		f.eps[rank] = ep
	}
	return ep
}

// Arm enables injection on rank's endpoint.
func (f *FaultFS) Arm(rank int) { f.endpoint(rank).setArmed(true) }

// Disarm disables injection on rank's endpoint.
func (f *FaultFS) Disarm(rank int) { f.endpoint(rank).setArmed(false) }

type faultEndpoint struct {
	f    *FaultFS
	rank int

	mu    sync.Mutex
	rng   *rand.Rand
	armed bool
	seen  []int
}

func (e *faultEndpoint) setArmed(v bool) {
	e.mu.Lock()
	e.armed = v
	e.mu.Unlock()
}

// fire decides whether any rule of the given kinds fires for an
// operation, advancing the per-rule match counters.
func (e *faultEndpoint) fire(op, path string, kinds ...FaultKind) *FaultRule {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.armed {
		return nil
	}
	var hit *FaultRule
	for i := range e.f.plan.Rules {
		r := &e.f.plan.Rules[i]
		match := false
		for _, k := range kinds {
			if r.Kind == k {
				match = true
			}
		}
		if !match || !r.opMatches(op) {
			continue
		}
		if r.Rank >= 0 && r.Rank != e.rank {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		n := e.seen[i]
		e.seen[i]++
		if n < r.After {
			continue
		}
		fired := false
		switch {
		case r.Prob > 0:
			fired = e.rng.Float64() < r.Prob
		case r.Every > 0:
			fired = (n-r.After)%r.Every == 0
		case r.Count <= 0:
			fired = true
		default:
			fired = n-r.After < r.Count
		}
		if fired && hit == nil {
			hit = r
		}
	}
	return hit
}

// stallThenEIO applies a stall (if one fired) and then checks the
// erroring kinds; returns a non-nil rule for the error-producing hit.
func (e *faultEndpoint) stallThenEIO(op, path string) *FaultRule {
	if r := e.fire(op, path, FaultStall); r != nil {
		time.Sleep(r.Delay)
	}
	return e.fire(op, path, FaultEIO)
}

func (e *faultEndpoint) MkdirAll(path string, perm os.FileMode) error {
	if r := e.stallThenEIO("mkdir", path); r != nil {
		return fmt.Errorf("%w: mkdir %s (rank %d)", ErrInjected, path, e.rank)
	}
	return e.f.inner.MkdirAll(path, perm)
}

func (e *faultEndpoint) WriteFile(path string, data []byte, perm os.FileMode) error {
	if r := e.fire("write", path, FaultStall); r != nil {
		time.Sleep(r.Delay)
	}
	if r := e.fire("write", path, FaultEIO, FaultWriteShort, FaultBitrot); r != nil {
		switch r.Kind {
		case FaultEIO:
			return fmt.Errorf("%w: write %s (rank %d)", ErrInjected, path, e.rank)
		case FaultWriteShort:
			// Half the data reaches the disk; the error reports the tear.
			n := len(data) / 2
			if err := e.f.inner.WriteFile(path, data[:n], perm); err != nil {
				return err
			}
			return fmt.Errorf("%w: short write %s: %d of %d bytes (rank %d)", ErrInjected, path, n, len(data), e.rank)
		case FaultBitrot:
			if len(data) == 0 {
				break
			}
			// The stored copy rots; the caller sees success and an intact
			// buffer.  Only a checksum can tell.
			cp := make([]byte, len(data))
			copy(cp, data)
			cp[len(cp)/2] ^= 0x04
			return e.f.inner.WriteFile(path, cp, perm)
		}
	}
	return e.f.inner.WriteFile(path, data, perm)
}

func (e *faultEndpoint) ReadFile(path string) ([]byte, error) {
	if r := e.stallThenEIO("read", path); r != nil {
		return nil, fmt.Errorf("%w: read %s (rank %d)", ErrInjected, path, e.rank)
	}
	data, err := e.f.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if r := e.fire("read", path, FaultBitrot); r != nil && len(data) > 0 {
		cp := make([]byte, len(data))
		copy(cp, data)
		cp[len(cp)/2] ^= 0x04
		return cp, nil
	}
	return data, nil
}

func (e *faultEndpoint) Rename(oldpath, newpath string) error {
	if r := e.fire("rename", oldpath, FaultStall); r != nil {
		time.Sleep(r.Delay)
	}
	if r := e.fire("rename", oldpath, FaultEIO, FaultTornRename); r != nil {
		switch r.Kind {
		case FaultEIO:
			return fmt.Errorf("%w: rename %s (rank %d)", ErrInjected, oldpath, e.rank)
		case FaultTornRename:
			if err := e.tear(oldpath); err != nil {
				return err
			}
			return e.f.inner.Rename(oldpath, newpath)
		}
	}
	return e.f.inner.Rename(oldpath, newpath)
}

// tear truncates the last regular file under path (or path itself, for a
// file rename) to half its length: the rename's metadata will land, one
// data block will not.
func (e *faultEndpoint) tear(path string) error {
	target := path
	if ents, err := e.f.inner.ReadDir(path); err == nil {
		var names []string
		for _, ent := range ents {
			if !ent.IsDir() {
				names = append(names, ent.Name())
			}
		}
		if len(names) == 0 {
			return nil
		}
		sort.Strings(names)
		target = path + string(os.PathSeparator) + names[len(names)-1]
	}
	data, err := e.f.inner.ReadFile(target)
	if err != nil || len(data) == 0 {
		return err
	}
	return e.f.inner.WriteFile(target, data[:len(data)/2], 0o644)
}

func (e *faultEndpoint) RemoveAll(path string) error {
	if r := e.stallThenEIO("remove", path); r != nil {
		return fmt.Errorf("%w: remove %s (rank %d)", ErrInjected, path, e.rank)
	}
	return e.f.inner.RemoveAll(path)
}

func (e *faultEndpoint) ReadDir(path string) ([]fs.DirEntry, error) {
	if r := e.stallThenEIO("readdir", path); r != nil {
		return nil, fmt.Errorf("%w: readdir %s (rank %d)", ErrInjected, path, e.rank)
	}
	return e.f.inner.ReadDir(path)
}
