package pario

import (
	"sync"

	"repro/internal/trace"
)

// Server is one dedicated I/O server goroutine: the rank that owns a
// stripe hands completed write jobs to its server and goes back to the
// collective protocol (checksum gathers, manifest agreement) while the
// bytes drain to disk.  Writes execute in submission order under the
// server's Config; the first failure is remembered and later jobs are
// skipped (the epoch cannot commit anyway, and skipping keeps fault
// schedules deterministic).  Close joins the goroutine — no Server ever
// outlives its Save.
type Server struct {
	f    FS
	cfg  Config
	tr   *trace.Tracer
	rank int

	jobs chan writeJob
	done sync.WaitGroup

	mu  sync.Mutex
	err error
}

type writeJob struct {
	path string
	data []byte
}

// StartServer launches the I/O server goroutine for one rank.
func StartServer(f FS, cfg Config, tr *trace.Tracer, rank int) *Server {
	s := &Server{f: f, cfg: cfg, tr: tr, rank: rank, jobs: make(chan writeJob, 4)}
	s.done.Add(1)
	go s.loop()
	return s
}

func (s *Server) loop() {
	defer s.done.Done()
	for j := range s.jobs {
		if s.Err() != nil {
			continue // drain: a failed epoch skips the remaining writes
		}
		if err := s.cfg.WriteFile(s.f, s.tr, s.rank, j.path, j.data); err != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
		}
	}
}

// Write enqueues one whole-file write; ownership of data passes to the
// server.  It never blocks longer than the slowest in-flight write.
func (s *Server) Write(path string, data []byte) {
	s.jobs <- writeJob{path: path, data: data}
}

// Err returns the first write failure so far (nil while healthy).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close drains the queue, stops the goroutine and returns the first
// write failure.  Idempotent-unsafe: call exactly once.
func (s *Server) Close() error {
	close(s.jobs)
	s.done.Wait()
	return s.Err()
}
