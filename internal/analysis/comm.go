package analysis

// Communication analysis — the companion pass §3.1 mentions: "An
// extensive communication analysis provides not only information on the
// communication associated with each plausible distribution for an
// array, but also the memory requirements of the array under that
// distribution."  (The paper defers details to the compiler literature;
// this implements the classic overlap analysis of Gerndt [7] plus the
// irregular-access detection that triggers the inspector/executor
// paradigm [10, 15].)
//
// For every assignment nested in DO loops, each right-hand-side array
// reference is classified against the left-hand side's iteration space,
// per plausible distribution of the referenced array:
//
//	Local      — the reference is owner-local under the distribution
//	             (the subscript driving each distributed dimension is the
//	             same induction variable as the LHS's, with zero offset);
//	Shift(d,w) — nearest-neighbour offset w along dimension d: satisfied
//	             by an overlap area of width |w| and one exchange per
//	             sweep (the smoothing pattern of §4);
//	Transpose  — a distributed dimension is driven by a different
//	             induction variable than the LHS's: satisfied only by
//	             all-to-all communication or a redistribution (the ADI
//	             y-sweep pattern of §4);
//	Broadcast  — a distributed dimension has a loop-invariant subscript:
//	             one owner's section is read by all iterations;
//	Irregular  — a subscript contains an array reference (A(IDX(I))):
//	             requires translation tables and an inspector/executor
//	             (the PIC reassignment pattern of §4).
//
// The pass also estimates each array's per-processor memory requirement
// under each plausible distribution, including the overlap areas implied
// by the Shift classifications — the "memory requirements" §3.1 speaks
// of.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dist"
	"repro/internal/lang"
	"repro/internal/sem"
)

// CommKind classifies one reference's communication requirement.
type CommKind int

// Communication kinds, ordered by severity (bump() relies on the order):
// local < shift < broadcast < transpose < irregular < unknown.
const (
	CommLocal CommKind = iota
	CommShift
	CommBroadcast
	CommTranspose
	CommIrregular
	CommUnknown
)

func (k CommKind) String() string {
	switch k {
	case CommLocal:
		return "local"
	case CommShift:
		return "shift"
	case CommTranspose:
		return "transpose/redistribute"
	case CommBroadcast:
		return "broadcast"
	case CommIrregular:
		return "irregular (inspector/executor)"
	}
	return "unknown"
}

// CommInfo is the classification of one RHS reference under one plausible
// distribution of the referenced array.
type CommInfo struct {
	Pos   lang.Pos
	Array string
	Under AbsDist // the plausible distribution this verdict is for
	Kind  CommKind
	// Dim / Width describe Shift (0-based dimension, absolute offset).
	Dim   int
	Width int
}

func (c CommInfo) String() string {
	s := fmt.Sprintf("%s under %v: %v", c.Array, c.Under, c.Kind)
	if c.Kind == CommShift {
		s += fmt.Sprintf(" dim %d width %d", c.Dim+1, c.Width)
	}
	return s
}

// MemEstimate is the per-processor memory requirement of one array under
// one plausible distribution.
type MemEstimate struct {
	Array string
	Under AbsDist
	// Elems is the dense local element count (ceil of extents over the
	// assumed processor counts), Ghost the additional overlap elements.
	Elems int
	Ghost int
	Bytes int
}

// CommResult extends an analysis Result with the communication pass.
type CommResult struct {
	Infos []CommInfo
	Mems  []MemEstimate
}

// AnalyzeComm runs the communication analysis over the unit, using the
// reaching sets of a prior Analyze.  np is the processor count assumed
// for memory estimates (per distributed dimension the estimate divides by
// the per-dimension factor of an even split).
func AnalyzeComm(r *Result, np int) *CommResult {
	c := &commPass{res: r, out: &CommResult{}, np: np}
	c.stmts(r.Unit.Prog.Stmts, nil, State{})
	c.memory()
	return c.out
}

type loopVar struct {
	name string
}

type commPass struct {
	res *Result
	out *CommResult
	np  int
	// ghost accumulates the max shift width per array per dim.
	ghost map[string][]int
}

// stmts walks statements tracking enclosing loop variables and a local
// copy of the reaching state (recomputed the same way Analyze did).
func (c *commPass) stmts(list []lang.Stmt, loops []loopVar, st State) State {
	if len(st) == 0 {
		st = c.initialState()
	}
	for _, s := range list {
		switch stm := s.(type) {
		case *lang.DistributeStmt:
			st = c.res.distributeNoDiag(stm, st)
		case *lang.ForallStmt:
			c.stmts(stm.Body, append(loops, loopVar{stm.Var}), st)
		case *lang.DoStmt:
			// fixpoint as in Analyze, then walk once with the stable state
			cur := st
			for {
				next := cur.join(c.res.stmtsNoRecord(stm.Body, cur))
				if next.equal(cur) {
					break
				}
				cur = next
			}
			c.stmts(stm.Body, append(loops, loopVar{stm.Var}), cur)
			st = cur
		case *lang.IfStmt:
			s1 := c.stmts(stm.Then, loops, st)
			s2 := c.stmts(stm.Else, loops, st)
			st = s1.join(s2)
		case *lang.SelectStmt:
			joined := st
			for _, arm := range stm.Arms {
				joined = joined.join(c.stmts(arm.Body, loops, st))
			}
			st = joined
		case *lang.AssignStmt:
			c.assign(stm, loops, st)
		}
	}
	return st
}

func (c *commPass) initialState() State {
	st := State{}
	u := c.res.Unit
	for _, name := range u.Order {
		ai := u.Arrays[name]
		switch {
		case ai.Init != nil:
			st[name] = TypeSet{{Type: *ai.Init, Target: ai.Target}}
		case ai.Conn == sem.ConnExtract && ai.Primary != nil:
			st[name] = st[ai.Primary.Name]
		case ai.Conn == sem.ConnAlign && ai.Primary != nil:
			st[name] = deriveSetThroughAlign(st[ai.Primary.Name], ai)
		default:
			st[name] = TypeSet{}
		}
	}
	return st
}

// distributeNoDiag reuses the transfer function without duplicating
// diagnostics.
func (r *Result) distributeNoDiag(stm *lang.DistributeStmt, st State) State {
	savedDiags := r.Diags
	out := r.distribute(stm, st)
	r.Diags = savedDiags
	return out
}

// subscriptShape classifies one subscript expression.
type subscriptShape struct {
	kind    CommKind // Local (affine), Broadcast (const), Irregular, Unknown
	varName string   // induction variable for affine subscripts
	offset  int
}

func (c *commPass) shape(e lang.Expr, loops []loopVar) subscriptShape {
	names := make([]string, len(loops))
	for i, l := range loops {
		names[i] = l.name
	}
	if hasArrayRef(e, c.res.Unit) {
		return subscriptShape{kind: CommIrregular}
	}
	if name, stride, off, ok := c.res.Unit.AffineOf(e, names); ok {
		if name == "" {
			return subscriptShape{kind: CommBroadcast, offset: off}
		}
		if stride == 1 {
			return subscriptShape{kind: CommLocal, varName: name, offset: off}
		}
		return subscriptShape{kind: CommUnknown}
	}
	// loop-invariant scalar expression: broadcast-like
	if isLoopInvariant(e, names) {
		return subscriptShape{kind: CommBroadcast}
	}
	return subscriptShape{kind: CommUnknown}
}

func hasArrayRef(e lang.Expr, u *sem.Unit) bool {
	switch ex := e.(type) {
	case *lang.Ref:
		if _, ok := u.Arrays[ex.Name]; ok && ex.Indices != nil {
			return true
		}
		for _, ix := range ex.Indices {
			if hasArrayRef(ix, u) {
				return true
			}
		}
	case *lang.BinExpr:
		return hasArrayRef(ex.L, u) || hasArrayRef(ex.R, u)
	case *lang.UnExpr:
		return hasArrayRef(ex.X, u)
	}
	return false
}

func isLoopInvariant(e lang.Expr, loopNames []string) bool {
	switch ex := e.(type) {
	case *lang.IntLit:
		return true
	case *lang.Ref:
		if ex.Indices != nil {
			return false
		}
		for _, n := range loopNames {
			if ex.Name == n {
				return false
			}
		}
		return true
	case *lang.BinExpr:
		return isLoopInvariant(ex.L, loopNames) && isLoopInvariant(ex.R, loopNames)
	case *lang.UnExpr:
		return isLoopInvariant(ex.X, loopNames)
	}
	return false
}

// assign classifies every RHS array reference of an owner-computes
// assignment A(subscripts) = expr.
func (c *commPass) assign(stm *lang.AssignStmt, loops []loopVar, st State) {
	u := c.res.Unit
	lhs := stm.LHS
	if _, ok := u.Arrays[lhs.Name]; !ok || lhs.Indices == nil {
		return // scalar assignment: no owner-computes placement
	}
	// where does each induction variable appear on the LHS?
	lhsDimOf := map[string]int{}
	lhsOffset := map[string]int{}
	for d, ix := range lhs.Indices {
		sh := c.shape(ix, loops)
		if sh.kind == CommLocal {
			lhsDimOf[sh.varName] = d
			lhsOffset[sh.varName] = sh.offset
		}
	}
	var refs []*lang.Ref
	collectArrayRefs(stm.RHS, u, &refs)
	for _, ref := range refs {
		for _, t := range st[ref.Name] {
			info := c.classify(ref, t, loops, lhsDimOf, lhsOffset)
			info.Pos = ref.Pos()
			info.Array = ref.Name
			info.Under = t
			c.out.Infos = append(c.out.Infos, info)
			if info.Kind == CommShift {
				c.noteGhost(ref.Name, info.Dim, info.Width)
			}
		}
	}
}

func collectArrayRefs(e lang.Expr, u *sem.Unit, out *[]*lang.Ref) {
	switch ex := e.(type) {
	case *lang.Ref:
		if _, ok := u.Arrays[ex.Name]; ok && ex.Indices != nil {
			*out = append(*out, ex)
		}
		for _, ix := range ex.Indices {
			collectArrayRefs(ix, u, out)
		}
	case *lang.BinExpr:
		collectArrayRefs(ex.L, u, out)
		collectArrayRefs(ex.R, u, out)
	case *lang.UnExpr:
		collectArrayRefs(ex.X, u, out)
	}
}

// classify determines the dominant communication kind of one reference
// under one plausible distribution.  Severity order: irregular >
// transpose > broadcast > shift > local.
func (c *commPass) classify(ref *lang.Ref, t AbsDist, loops []loopVar, lhsDimOf, lhsOffset map[string]int) CommInfo {
	info := CommInfo{Kind: CommLocal}
	bump := func(k CommKind) {
		if k > info.Kind && !(info.Kind == CommIrregular) {
			// order of the enum matches severity except Unknown; treat
			// Unknown as transpose-severity (conservative)
			info.Kind = k
		}
	}
	if t.Type.Any {
		info.Kind = CommUnknown
		return info
	}
	for d, ix := range ref.Indices {
		var pat dist.DimPattern
		if d < len(t.Type.Dims) {
			pat = t.Type.Dims[d]
		} else {
			pat = dist.PAny()
		}
		distributed := !(pat.Kind == dist.Elided && !pat.Any)
		sh := c.shape(ix, loops)
		if sh.kind == CommIrregular {
			if distributed {
				info.Kind = CommIrregular
				return info
			}
			continue // irregular subscript on a local dimension is free
		}
		if !distributed {
			continue
		}
		switch sh.kind {
		case CommLocal:
			lhsDim, drivesLHS := lhsDimOf[sh.varName]
			switch {
			case !drivesLHS:
				// the RHS dimension iterates over a variable that does
				// not place the LHS: every owner needs every value
				bump(CommTranspose)
			case lhsDim != d:
				// same variable, different dimension position: the
				// classic transpose access V(I,J) = U(J,I)
				bump(CommTranspose)
			default:
				delta := sh.offset - lhsOffset[sh.varName]
				if delta == 0 {
					// aligned: local under identical distributions
					continue
				}
				switch pat.Kind {
				case dist.Block, dist.SBlock, dist.BBlock:
					if info.Kind <= CommShift {
						info.Kind = CommShift
						if abs(delta) > info.Width {
							info.Dim, info.Width = d, abs(delta)
						}
					}
				default:
					// a shifted CYCLIC dimension has no useful overlap:
					// nearly every element's neighbour is remote
					bump(CommTranspose)
				}
			}
		case CommBroadcast:
			bump(CommBroadcast)
		default:
			bump(CommUnknown)
		}
	}
	return info
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (c *commPass) noteGhost(array string, dim, width int) {
	if c.ghost == nil {
		c.ghost = map[string][]int{}
	}
	ai := c.res.Unit.Arrays[array]
	if ai == nil {
		return
	}
	g := c.ghost[array]
	if g == nil {
		g = make([]int, ai.Rank)
		c.ghost[array] = g
	}
	if dim < len(g) && width > g[dim] {
		g[dim] = width
	}
}

// memory estimates per-processor storage for every array under every
// plausible distribution that reached one of its references (plus the
// final state), including the overlap areas the Shift classifications
// imply.
func (c *commPass) memory() {
	u := c.res.Unit
	seen := map[string]map[string]AbsDist{}
	add := func(name string, t AbsDist) {
		if seen[name] == nil {
			seen[name] = map[string]AbsDist{}
		}
		seen[name][t.key()] = t
	}
	for _, ref := range c.res.Refs {
		for _, t := range ref.Set {
			add(ref.Array, t)
		}
	}
	for name, set := range c.res.Final {
		for _, t := range set {
			add(name, t)
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		ai := u.Arrays[name]
		if ai == nil {
			continue
		}
		keys := make([]string, 0, len(seen[name]))
		for k := range seen[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t := seen[name][k]
			est := c.estimate(ai, t)
			c.out.Mems = append(c.out.Mems, est)
		}
	}
}

func (c *commPass) estimate(ai *sem.ArrayInfo, t AbsDist) MemEstimate {
	est := MemEstimate{Array: ai.Name, Under: t}
	// per-dimension processor factors: split np over the distributed dims
	distributedDims := 0
	if !t.Type.Any {
		for _, d := range t.Type.Dims {
			if d.Any || d.Kind != dist.Elided {
				distributedDims++
			}
		}
	}
	factors := make([]int, ai.Rank)
	for i := range factors {
		factors[i] = 1
	}
	if distributedDims > 0 {
		per := c.np
		if distributedDims > 1 {
			// near-square split
			q := 1
			for f := 1; f*f <= c.np; f++ {
				if c.np%f == 0 {
					q = f
				}
			}
			per = q
		}
		rest := c.np
		di := 0
		if !t.Type.Any {
			for i, d := range t.Type.Dims {
				if i >= ai.Rank {
					break
				}
				if d.Any || d.Kind != dist.Elided {
					if di == distributedDims-1 {
						factors[i] = rest
					} else {
						factors[i] = per
						rest = c.np / per
					}
					di++
				}
			}
		}
	}
	local := make([]int, ai.Rank)
	elems := 1
	for i := 0; i < ai.Rank; i++ {
		ext := ai.Extents[i]
		if ext < 0 {
			ext = 0 // unknown extent: report zero rather than guess
		}
		local[i] = (ext + factors[i] - 1) / factors[i]
		elems *= local[i]
	}
	est.Elems = elems
	if g := c.ghost[ai.Name]; g != nil {
		for i, w := range g {
			if w == 0 {
				continue
			}
			slab := 1
			for j, l := range local {
				if j != i {
					slab *= l
				}
			}
			est.Ghost += 2 * w * slab
		}
	}
	est.Bytes = 8 * (est.Elems + est.Ghost)
	return est
}

// Report renders the communication analysis as text.
func (cr *CommResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "communication requirements at references (per plausible distribution):\n")
	for _, i := range cr.Infos {
		fmt.Fprintf(&b, "  %6v  %v\n", i.Pos, i)
	}
	fmt.Fprintf(&b, "\nper-processor memory requirements:\n")
	for _, m := range cr.Mems {
		fmt.Fprintf(&b, "  %-8s under %-24v %7d elems + %5d ghost = %8d bytes\n",
			m.Array, m.Under, m.Elems, m.Ghost, m.Bytes)
	}
	return b.String()
}
