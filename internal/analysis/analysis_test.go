package analysis

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/sem"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u := sem.Analyze(prog)
	if u.HasErrors() {
		t.Fatalf("sem errors: %v", u.Diags)
	}
	return Analyze(u)
}

// refSets returns the reaching-set strings of every reference to name.
func refSets(r *Result, name string) []string {
	var out []string
	for _, ref := range r.Refs {
		if ref.Array == name {
			out = append(out, ref.Set.String())
		}
	}
	return out
}

func TestFig1ReachingSets(t *testing.T) {
	r := analyze(t, lang.FixtureFig1)
	sets := refSets(r, "V")
	if len(sets) != 3 {
		t.Fatalf("V referenced %d times, want 3 (RESID, x-sweep, y-sweep): %v", len(sets), sets)
	}
	// RESID and the x-sweep see the initial (:,BLOCK); after DISTRIBUTE
	// the y-sweep sees exactly (BLOCK,:).  The compiler knows the
	// distribution precisely at every reference — the paper's "in all
	// critical code sections the distribution is known at compile time".
	if !strings.Contains(sets[0], "(:,BLOCK)") || strings.Contains(sets[0], "(BLOCK,:)") {
		t.Fatalf("RESID set: %s", sets[0])
	}
	if !strings.Contains(sets[1], "(:,BLOCK)") || strings.Contains(sets[1], "(BLOCK,:)") {
		t.Fatalf("x-sweep set: %s", sets[1])
	}
	if !strings.Contains(sets[2], "(BLOCK,:)") || strings.Contains(sets[2], "(:,BLOCK)") {
		t.Fatalf("y-sweep set: %s", sets[2])
	}
	if len(r.Diags) != 0 {
		t.Fatalf("diags: %v", r.Diags)
	}
}

func TestFig1LoopJoin(t *testing.T) {
	// The ADI phases inside an outer iteration loop: references directly
	// after each DISTRIBUTE still see exactly one distribution (the
	// DISTRIBUTE kills the other), while a reference at the loop top sees
	// the join of the entry and end-of-body states.
	r := analyze(t, `
PARAMETER (NX = 8, NY = 8, T = 10)
REAL V(NX, NY) DYNAMIC, DIST (:, BLOCK)
DO K = 1, T
  CALL TOP(V)
  DISTRIBUTE V :: (:, BLOCK)
  CALL XSWEEP(V)
  DISTRIBUTE V :: (BLOCK, :)
  CALL YSWEEP(V)
ENDDO
`)
	sets := refSets(r, "V")
	if len(sets) != 3 {
		t.Fatalf("refs: %v", sets)
	}
	// TOP sees both distributions (entry (:,BLOCK) joined with loop-back
	// (BLOCK,:))
	if !strings.Contains(sets[0], "(:,BLOCK)") || !strings.Contains(sets[0], "(BLOCK,:)") {
		t.Fatalf("loop-top set should contain both: %s", sets[0])
	}
	// XSWEEP sees exactly (:,BLOCK); YSWEEP exactly (BLOCK,:)
	if strings.Contains(sets[1], "(BLOCK,:)") {
		t.Fatalf("x-sweep set not killed: %s", sets[1])
	}
	if strings.Contains(sets[2], "(:,BLOCK)") {
		t.Fatalf("y-sweep set not killed: %s", sets[2])
	}
}

func TestFig2BBlock(t *testing.T) {
	r := analyze(t, lang.FixtureFig2)
	sets := refSets(r, "FIELD")
	if len(sets) < 3 {
		t.Fatalf("FIELD refs: %v", sets)
	}
	// after the initial balance every reference sees B_BLOCK(*) in dim 0
	for i, s := range sets[2:] {
		if !strings.Contains(s, "B_BLOCK(*)") {
			t.Fatalf("ref %d: %s", i+2, s)
		}
	}
}

func TestExample4PartialEvaluation(t *testing.T) {
	r := analyze(t, lang.FixtureExample4)
	if len(r.Arms) != 3 {
		// arm 4 (DEFAULT) is never evaluated: arm 3 is Always and breaks
		t.Fatalf("arm evals: %+v", r.Arms)
	}
	// B1 is (BLOCK), B2 (BLOCK), B3 (BLOCK, CYCLIC):
	// arm 1 wants B3 = (CYCLIC(2),CYCLIC) -> Never
	// arm 2 wants B1 = (CYCLIC) -> Never
	// arm 3 wants B3 = (BLOCK, CYCLIC) -> Always
	want := []Verdict{Never, Never, Always}
	for i, a := range r.Arms {
		if a.Verdict != want[i] {
			t.Fatalf("arm %d: %v want %v (all %+v)", a.Arm, a.Verdict, want[i], r.Arms)
		}
	}
}

func TestDCaseMaybeAndRefinement(t *testing.T) {
	r := analyze(t, `
PARAMETER (N = 8)
REAL B(N,N) DYNAMIC, DIST(BLOCK, :)
REAL FLAG(2) DIST(BLOCK)
IF (FLAG(1) .GT. 0) THEN
  DISTRIBUTE B :: (CYCLIC, :)
ENDIF
SELECT DCASE (B)
CASE (BLOCK, :)
  CALL BLOCKALG(B)
CASE (CYCLIC, :)
  CALL CYCLICALG(B)
END SELECT
`)
	if len(r.Arms) != 2 || r.Arms[0].Verdict != Maybe || r.Arms[1].Verdict != Maybe {
		t.Fatalf("arm verdicts: %+v", r.Arms)
	}
	// inside each arm the query refines B to a single distribution
	sets := refSets(r, "B")
	var blockSet, cyclicSet string
	for i, ref := range r.Refs {
		if ref.Array == "B" {
			_ = i
		}
	}
	for _, s := range sets {
		if strings.Contains(s, "(BLOCK,:)") && !strings.Contains(s, "CYCLIC") {
			blockSet = s
		}
		if strings.Contains(s, "(CYCLIC,:)") && !strings.Contains(s, "BLOCK") {
			cyclicSet = s
		}
	}
	if blockSet == "" || cyclicSet == "" {
		t.Fatalf("refinement failed: %v", sets)
	}
}

func TestIDTPartialEvaluation(t *testing.T) {
	r := analyze(t, lang.FixtureIDT)
	if len(r.Conds) != 1 || r.Conds[0].Verdict != Always {
		t.Fatalf("conds: %+v", r.Conds)
	}
	// negative test: impossible IDT
	r = analyze(t, `
REAL B(8) DYNAMIC, DIST(BLOCK)
IF (IDT(B,(CYCLIC))) THEN
  X = 1
ENDIF
`)
	if r.Conds[0].Verdict != Never {
		t.Fatalf("verdict: %v", r.Conds[0].Verdict)
	}
	// unknown parameter: maybe
	r = analyze(t, `
REAL B(8) DYNAMIC, DIST(CYCLIC(K))
IF (IDT(B,(CYCLIC(4)))) THEN
  X = 1
ENDIF
`)
	if r.Conds[0].Verdict != Maybe {
		t.Fatalf("verdict: %v", r.Conds[0].Verdict)
	}
}

func TestAccessBeforeDistribution(t *testing.T) {
	r := analyze(t, `
REAL B1(8) DYNAMIC
X = B1(3)
`)
	found := false
	for _, d := range r.Diags {
		if strings.Contains(d.Msg, "before it has been associated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing access-before-distribution diagnostic: %v", r.Diags)
	}
}

func TestRangeFlowChecks(t *testing.T) {
	// definite violation detected statically
	r := analyze(t, `
REAL B(8) DYNAMIC, RANGE((BLOCK)), DIST(BLOCK)
DISTRIBUTE B :: (CYCLIC)
`)
	foundErr := false
	for _, d := range r.Diags {
		if d.Severity == sem.Error && strings.Contains(d.Msg, "violates") {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatalf("missing violation error: %v", r.Diags)
	}
	// possible violation (runtime K) warned
	r = analyze(t, `
REAL B(8) DYNAMIC, RANGE((CYCLIC(2))), DIST(CYCLIC(2))
DISTRIBUTE B :: (CYCLIC(K))
`)
	foundWarn := false
	for _, d := range r.Diags {
		if d.Severity == sem.Warning && strings.Contains(d.Msg, "may violate") {
			foundWarn = true
		}
	}
	if !foundWarn {
		t.Fatalf("missing may-violate warning: %v", r.Diags)
	}
}

func TestExtractionComponent(t *testing.T) {
	// paper Example 3: DISTRIBUTE B4 :: (=B1, CYCLIC(3))
	r := analyze(t, `
PARAMETER (M = 8, N = 8)
PROCESSORS R2(1:2,1:2)
REAL B1(M) DYNAMIC, DIST(BLOCK)
REAL B4(N,N) DYNAMIC, DIST(BLOCK, CYCLIC) TO R2
DISTRIBUTE B1 :: (CYCLIC(2))
DISTRIBUTE B4 :: (=B1, CYCLIC(3)) TO R2
CALL USE(B4)
`)
	sets := refSets(r, "B4")
	if len(sets) != 1 {
		t.Fatalf("refs: %v", sets)
	}
	if !strings.Contains(sets[0], "(CYCLIC(2),CYCLIC(3)) TO R2") {
		t.Fatalf("extraction set: %s", sets[0])
	}
}

func TestSecondariesFollowInAnalysis(t *testing.T) {
	r := analyze(t, `
PARAMETER (N = 8)
REAL B(N) DYNAMIC, DIST(BLOCK)
REAL A(N) DYNAMIC, CONNECT(=B)
DISTRIBUTE B :: (CYCLIC)
CALL USE(A)
`)
	sets := refSets(r, "A")
	if len(sets) != 1 || !strings.Contains(sets[0], "CYCLIC") || strings.Contains(sets[0], "BLOCK") {
		t.Fatalf("secondary set: %v", sets)
	}
}

func TestAlignedSecondaryDerivation(t *testing.T) {
	r := analyze(t, `
PARAMETER (N = 8)
PROCESSORS G(1:2,1:2)
REAL B(N,N) DYNAMIC, DIST(BLOCK, CYCLIC(2)) TO G
REAL A(N,N) DYNAMIC, CONNECT A(I,J) WITH B(J,I)
CALL USE(A)
`)
	sets := refSets(r, "A")
	if len(sets) != 1 {
		t.Fatalf("refs: %v", sets)
	}
	// A's dim0 follows B's dim1 (CYCLIC(2)); A's dim1 follows B's dim0
	// (BLOCK, identity -> kind preserved)
	if !strings.Contains(sets[0], "(CYCLIC(2),BLOCK)") {
		t.Fatalf("aligned set: %s", sets[0])
	}
}

func TestReportRenders(t *testing.T) {
	r := analyze(t, lang.FixtureFig1)
	rep := r.Report()
	for _, frag := range []string{"reaching distribution sets", "V", "(BLOCK,:)", "final reaching sets"} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("report missing %q:\n%s", frag, rep)
		}
	}
}

func TestDeadArmAfterAlways(t *testing.T) {
	r := analyze(t, `
REAL B(8) DYNAMIC, DIST(BLOCK)
SELECT DCASE (B)
CASE (BLOCK)
  X = 1
CASE (CYCLIC)
  X = 2
END SELECT
`)
	if len(r.Arms) != 1 || r.Arms[0].Verdict != Always {
		t.Fatalf("arms: %+v", r.Arms)
	}
}
