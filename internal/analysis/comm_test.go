package analysis

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/sem"
)

func analyzeComm(t *testing.T, src string, np int) *CommResult {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u := sem.Analyze(prog)
	if u.HasErrors() {
		t.Fatalf("sem: %v", u.Diags)
	}
	return AnalyzeComm(Analyze(u), np)
}

// infosFor returns the classifications recorded for one array.
func infosFor(cr *CommResult, name string) []CommInfo {
	var out []CommInfo
	for _, i := range cr.Infos {
		if i.Array == name {
			out = append(out, i)
		}
	}
	return out
}

func TestCommStencilShift(t *testing.T) {
	cr := analyzeComm(t, `
PARAMETER (N = 16)
REAL V(N,N) DYNAMIC, DIST(BLOCK, :)
REAL U(N,N) DYNAMIC, DIST(BLOCK, :)
DO J = 2, N-1
  DO I = 2, N-1
    V(I,J) = U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1)
  ENDDO
ENDDO
`, 4)
	infos := infosFor(cr, "U")
	if len(infos) != 4 {
		t.Fatalf("infos: %+v", infos)
	}
	// U(I±1,J): shift along distributed dim 0 width 1
	if infos[0].Kind != CommShift || infos[0].Dim != 0 || infos[0].Width != 1 {
		t.Fatalf("U(I-1,J): %+v", infos[0])
	}
	if infos[1].Kind != CommShift {
		t.Fatalf("U(I+1,J): %+v", infos[1])
	}
	// U(I,J±1): dim 1 is elided -> local
	if infos[2].Kind != CommLocal || infos[3].Kind != CommLocal {
		t.Fatalf("column-shift refs should be local: %+v %+v", infos[2], infos[3])
	}
	// memory: 16x16 over 4 procs on dim0 = 4x16=64 elems + ghosts 2*1*16=32
	found := false
	for _, m := range cr.Mems {
		if m.Array == "U" {
			found = true
			if m.Elems != 64 || m.Ghost != 32 || m.Bytes != 8*(64+32) {
				t.Fatalf("mem: %+v", m)
			}
		}
	}
	if !found {
		t.Fatal("no memory estimate for U")
	}
}

func TestCommTranspose(t *testing.T) {
	cr := analyzeComm(t, `
PARAMETER (N = 8)
REAL V(N,N) DYNAMIC, DIST(BLOCK, :)
REAL U(N,N) DYNAMIC, DIST(BLOCK, :)
DO J = 1, N
  DO I = 1, N
    V(I,J) = U(J,I)
  ENDDO
ENDDO
`, 4)
	infos := infosFor(cr, "U")
	if len(infos) != 1 || infos[0].Kind != CommTranspose {
		t.Fatalf("transpose access: %+v", infos)
	}
}

func TestCommIrregular(t *testing.T) {
	cr := analyzeComm(t, `
PARAMETER (N = 8)
REAL A(N) DYNAMIC, DIST(BLOCK)
REAL X(N) DYNAMIC, DIST(BLOCK)
INTEGER IDX(N)
DO I = 1, N
  X(I) = A(IDX(I))
ENDDO
`, 4)
	infos := infosFor(cr, "A")
	if len(infos) != 1 || infos[0].Kind != CommIrregular {
		t.Fatalf("irregular access: %+v", infos)
	}
}

func TestCommBroadcast(t *testing.T) {
	cr := analyzeComm(t, `
PARAMETER (N = 8)
REAL A(N,N) DYNAMIC, DIST(BLOCK, :)
REAL X(N,N) DYNAMIC, DIST(BLOCK, :)
DO J = 1, N
  DO I = 1, N
    X(I,J) = A(1,J)
  ENDDO
ENDDO
`, 4)
	infos := infosFor(cr, "A")
	if len(infos) != 1 || infos[0].Kind != CommBroadcast {
		t.Fatalf("broadcast access: %+v", infos)
	}
}

func TestCommLocalAligned(t *testing.T) {
	cr := analyzeComm(t, `
PARAMETER (N = 8)
REAL A(N) DYNAMIC, DIST(CYCLIC)
REAL X(N) DYNAMIC, DIST(CYCLIC)
DO I = 1, N
  X(I) = A(I) * 2
ENDDO
`, 4)
	infos := infosFor(cr, "A")
	if len(infos) != 1 || infos[0].Kind != CommLocal {
		t.Fatalf("aligned access: %+v", infos)
	}
}

func TestCommCyclicShiftIsNotOverlap(t *testing.T) {
	cr := analyzeComm(t, `
PARAMETER (N = 8)
REAL A(N) DYNAMIC, DIST(CYCLIC)
REAL X(N) DYNAMIC, DIST(CYCLIC)
DO I = 2, N
  X(I) = A(I-1)
ENDDO
`, 4)
	infos := infosFor(cr, "A")
	if len(infos) != 1 || infos[0].Kind != CommTranspose {
		t.Fatalf("shifted CYCLIC should need global communication: %+v", infos)
	}
}

func TestCommPerPlausibleDistribution(t *testing.T) {
	// After a conditional DISTRIBUTE, the reference is classified under
	// each plausible distribution separately — local under one, shifted
	// under the other.
	cr := analyzeComm(t, `
PARAMETER (N = 16)
REAL U(N,N) DYNAMIC, DIST(BLOCK, :)
REAL V(N,N) DYNAMIC, DIST(BLOCK, :)
REAL FLAG(2)
IF (FLAG(1) .GT. 0) THEN
  DISTRIBUTE U :: (:, BLOCK)
ENDIF
DO J = 2, N
  DO I = 1, N
    V(I,J) = U(I,J-1)
  ENDDO
ENDDO
`, 4)
	infos := infosFor(cr, "U")
	if len(infos) != 2 {
		t.Fatalf("want one verdict per plausible distribution: %+v", infos)
	}
	kinds := map[CommKind]bool{}
	for _, i := range infos {
		kinds[i.Kind] = true
	}
	if !kinds[CommLocal] || !kinds[CommShift] {
		t.Fatalf("want local under (BLOCK,:) and shift under (:,BLOCK): %+v", infos)
	}
}

func TestCommFig1SweepClassification(t *testing.T) {
	// The ADI pattern, expressed as explicit loops instead of TRIDIAG
	// calls: under (:,BLOCK) the column recurrence is local and the row
	// recurrence is a transpose-class access — exactly why Figure 1
	// redistributes between the sweeps.
	cr := analyzeComm(t, `
PARAMETER (N = 16)
REAL V(N,N) DYNAMIC, DIST(:, BLOCK)
DO J = 1, N
  DO I = 2, N
    V(I,J) = V(I,J) - V(I-1,J)
  ENDDO
ENDDO
DO I = 1, N
  DO J = 2, N
    V(I,J) = V(I,J) - V(I,J-1)
  ENDDO
ENDDO
`, 4)
	infos := infosFor(cr, "V")
	// refs: x-sweep V(I,J), V(I-1,J); y-sweep V(I,J), V(I,J-1)
	if len(infos) != 4 {
		t.Fatalf("infos: %+v", infos)
	}
	if infos[0].Kind != CommLocal || infos[1].Kind != CommLocal {
		t.Fatalf("x-sweep should be fully local under (:,BLOCK): %+v", infos[:2])
	}
	if infos[3].Kind != CommShift || infos[3].Dim != 1 {
		t.Fatalf("y-sweep recurrence should shift along the distributed dim: %+v", infos[3])
	}
	if rep := cr.Report(); !strings.Contains(rep, "shift") || !strings.Contains(rep, "memory requirements") {
		t.Fatalf("report:\n%s", rep)
	}
}
