package index

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDomainBasics(t *testing.T) {
	d := Dim(10, 20)
	if d.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", d.Rank())
	}
	if d.Size() != 200 {
		t.Fatalf("size = %d, want 200", d.Size())
	}
	if d.Extent(0) != 10 || d.Extent(1) != 20 {
		t.Fatalf("extents = %d,%d", d.Extent(0), d.Extent(1))
	}
	if !d.Contains(Point{1, 1}) || !d.Contains(Point{10, 20}) {
		t.Fatal("corner points should be contained")
	}
	if d.Contains(Point{0, 1}) || d.Contains(Point{11, 20}) || d.Contains(Point{1}) {
		t.Fatal("out-of-domain points should not be contained")
	}
}

func TestDomainCustomBounds(t *testing.T) {
	d := NewDomain([2]int{-5, 5}, [2]int{0, 9})
	if d.Extent(0) != 11 || d.Extent(1) != 10 {
		t.Fatalf("extents = %d,%d", d.Extent(0), d.Extent(1))
	}
	if d.Size() != 110 {
		t.Fatalf("size = %d", d.Size())
	}
	if !d.Contains(Point{-5, 0}) {
		t.Fatal("lower corner missing")
	}
}

func TestDomainOffsetColumnMajor(t *testing.T) {
	d := Dim(3, 4)
	// Column-major: (1,1)=0, (2,1)=1, (3,1)=2, (1,2)=3 ...
	cases := []struct {
		p    Point
		want int
	}{
		{Point{1, 1}, 0},
		{Point{2, 1}, 1},
		{Point{3, 1}, 2},
		{Point{1, 2}, 3},
		{Point{3, 4}, 11},
	}
	for _, c := range cases {
		if got := d.Offset(c.p); got != c.want {
			t.Errorf("Offset(%v) = %d, want %d", c.p, got, c.want)
		}
		if back := d.At(c.want); !back.Equal(c.p) {
			t.Errorf("At(%d) = %v, want %v", c.want, back, c.p)
		}
	}
}

func TestDomainOffsetRoundTripProperty(t *testing.T) {
	d := NewDomain([2]int{2, 9}, [2]int{-3, 7}, [2]int{1, 5})
	f := func(raw int) bool {
		off := ((raw % d.Size()) + d.Size()) % d.Size()
		return d.Offset(d.At(off)) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSectionBasics(t *testing.T) {
	s := NewSection([3]int{1, 10, 3}, [3]int{2, 2, 1})
	if s.Size() != 4 {
		t.Fatalf("size = %d, want 4 (1,4,7,10)", s.Size())
	}
	if !s.Contains(Point{7, 2}) {
		t.Fatal("(7,2) should be in section")
	}
	if s.Contains(Point{8, 2}) {
		t.Fatal("(8,2) off the stride")
	}
	var pts []Point
	s.ForEach(func(p Point) bool { pts = append(pts, p.Clone()); return true })
	if len(pts) != 4 || !pts[0].Equal(Point{1, 2}) || !pts[3].Equal(Point{10, 2}) {
		t.Fatalf("iteration = %v", pts)
	}
}

func TestSectionEmptyAndEarlyStop(t *testing.T) {
	s := NewSection([3]int{5, 4, 1})
	if s.Size() != 0 {
		t.Fatalf("size = %d, want 0", s.Size())
	}
	calls := 0
	s.ForEach(func(Point) bool { calls++; return true })
	if calls != 0 {
		t.Fatal("empty section iterated")
	}
	s2 := NewSection([3]int{1, 10, 1})
	calls = 0
	s2.ForEach(func(Point) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Fatalf("early stop after %d calls", calls)
	}
}

func TestRunBasics(t *testing.T) {
	r := NewRun(3, 17, 4) // 3 7 11 15
	if r.Count() != 4 || r.Hi != 15 {
		t.Fatalf("r = %v count=%d", r, r.Count())
	}
	if !r.Contains(11) || r.Contains(13) || r.Contains(19) {
		t.Fatal("containment wrong")
	}
	if r.IndexOf(15) != 3 || r.IndexOf(4) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if r.At(2) != 11 {
		t.Fatal("At wrong")
	}
}

func TestRunClip(t *testing.T) {
	r := NewRun(3, 23, 5) // 3 8 13 18 23
	c := r.Clip(9, 20)    // 13 18
	if c.Lo != 13 || c.Hi != 18 || c.Count() != 2 {
		t.Fatalf("clip = %v", c)
	}
	if !r.Clip(24, 30).Empty() {
		t.Fatal("clip beyond end should be empty")
	}
	if got := r.Clip(3, 23); got != r {
		t.Fatalf("identity clip changed run: %v", got)
	}
}

// brute-force intersection for cross-checking
func bruteIntersect(a, b Run) []int {
	var out []int
	a.ForEach(func(i int) bool {
		if b.Contains(i) {
			out = append(out, i)
		}
		return true
	})
	return out
}

func TestIntersectRunsExamples(t *testing.T) {
	a := NewRun(0, 30, 3) // 0 3 6 ...
	b := NewRun(1, 30, 5) // 1 6 11 16 21 26
	c := IntersectRuns(a, b)
	want := []int{6, 21}
	got := RunSet{c}.Indices()
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// disjoint progressions: same stride, different phase
	if !IntersectRuns(NewRun(0, 100, 4), NewRun(1, 100, 4)).Empty() {
		t.Fatal("phase-disjoint runs must not intersect")
	}
	// disjoint windows
	if !IntersectRuns(NewRun(0, 10, 1), NewRun(11, 20, 1)).Empty() {
		t.Fatal("window-disjoint runs must not intersect")
	}
}

func TestIntersectRunsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		a := NewRun(rng.Intn(40)-20, rng.Intn(60)-10, 1+rng.Intn(8))
		b := NewRun(rng.Intn(40)-20, rng.Intn(60)-10, 1+rng.Intn(8))
		got := RunSet{IntersectRuns(a, b)}.Indices()
		want := bruteIntersect(a, b)
		if len(got) != len(want) {
			t.Fatalf("trial %d: a=%v b=%v got %v want %v", trial, a, b, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: a=%v b=%v got %v want %v", trial, a, b, got, want)
			}
		}
	}
}

func TestRunSetFromIndices(t *testing.T) {
	rs := RunSetFromIndices([]int{5, 1, 2, 3, 9, 8, 3})
	if rs.Count() != 6 {
		t.Fatalf("count = %d, want 6 (dedupe)", rs.Count())
	}
	if len(rs) != 3 {
		t.Fatalf("runs = %v, want 3 coalesced runs", rs)
	}
	if !rs.Contains(2) || rs.Contains(6) {
		t.Fatal("containment wrong")
	}
	if RunSetFromIndices(nil).Count() != 0 {
		t.Fatal("empty input should give empty set")
	}
}

func TestRunSetIndexOfAt(t *testing.T) {
	rs := NewRunSet(NewRun(1, 9, 4), NewRun(20, 22, 1)) // 1 5 9 | 20 21 22
	if rs.Count() != 6 {
		t.Fatalf("count = %d", rs.Count())
	}
	wantOrder := []int{1, 5, 9, 20, 21, 22}
	for k, v := range wantOrder {
		if rs.At(k) != v {
			t.Fatalf("At(%d) = %d want %d", k, rs.At(k), v)
		}
		if rs.IndexOf(v) != k {
			t.Fatalf("IndexOf(%d) = %d want %d", v, rs.IndexOf(v), k)
		}
	}
	if rs.IndexOf(7) != -1 {
		t.Fatal("IndexOf of absent element")
	}
}

func TestRunSetIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := NewRunSet(
			NewRun(rng.Intn(20), rng.Intn(40), 1+rng.Intn(5)),
			NewRun(50+rng.Intn(20), 50+rng.Intn(40), 1+rng.Intn(5)),
		)
		b := NewRunSet(
			NewRun(rng.Intn(30), rng.Intn(70), 1+rng.Intn(6)),
		)
		got := a.Intersect(b)
		// brute force
		want := map[int]bool{}
		a.ForEach(func(i int) bool {
			if b.Contains(i) {
				want[i] = true
			}
			return true
		})
		if got.Count() != len(want) {
			t.Fatalf("trial %d: a=%v b=%v got %v (count %d) want %d elems", trial, a, b, got, got.Count(), len(want))
		}
		got.ForEach(func(i int) bool {
			if !want[i] {
				t.Fatalf("trial %d: spurious element %d", trial, i)
			}
			return true
		})
	}
}

func TestGridIntersectAndIterate(t *testing.T) {
	g1 := Grid{Dims: []RunSet{
		NewRunSet(NewRun(1, 10, 1)),
		NewRunSet(NewRun(1, 10, 2)), // 1 3 5 7 9
	}}
	g2 := Grid{Dims: []RunSet{
		NewRunSet(NewRun(5, 20, 1)),
		NewRunSet(NewRun(3, 9, 3)), // 3 6 9
	}}
	gi := g1.Intersect(g2)
	// dim0: 5..10 (6), dim1: {3,9} (2)
	if gi.Count() != 12 {
		t.Fatalf("count = %d, want 12", gi.Count())
	}
	if !gi.Contains(Point{5, 3}) || gi.Contains(Point{5, 6}) {
		t.Fatal("containment wrong")
	}
	seen := 0
	gi.ForEach(func(p Point) bool {
		if !g1.Contains(p) || !g2.Contains(p) {
			t.Fatalf("iterated point %v outside operands", p)
		}
		seen++
		return true
	})
	if seen != 12 {
		t.Fatalf("iterated %d points", seen)
	}
}

func TestGridEmpty(t *testing.T) {
	g := Grid{Dims: []RunSet{NewRunSet(NewRun(1, 5, 1)), {}}}
	if !g.Empty() {
		t.Fatal("grid with empty dim should be empty")
	}
	g.ForEach(func(Point) bool { t.Fatal("iterated empty grid"); return false })
}

func TestRunSetEqual(t *testing.T) {
	a := NewRunSet(NewRun(0, 8, 2)) // 0 2 4 6 8
	b := NewRunSet(NewRun(0, 4, 4), NewRun(2, 6, 4), NewRun(8, 8, 1))
	if !a.Equal(b) {
		t.Fatalf("%v should equal %v", a, b)
	}
	c := NewRunSet(NewRun(0, 8, 1))
	if a.Equal(c) {
		t.Fatal("different sets compared equal")
	}
}

func TestSectionGrid(t *testing.T) {
	s := NewSection([3]int{2, 11, 3}, [3]int{1, 4, 1})
	g := s.Grid()
	if g.Count() != s.Size() {
		t.Fatalf("grid count %d != section size %d", g.Count(), s.Size())
	}
	s.ForEach(func(p Point) bool {
		if !g.Contains(p) {
			t.Fatalf("grid missing %v", p)
		}
		return true
	})
}

// collectPoints expands an iteration into copied points.
func collectPoints(iter func(func(Point) bool)) []Point {
	var out []Point
	iter(func(p Point) bool {
		out = append(out, append(Point(nil), p...))
		return true
	})
	return out
}

func TestGridForEachRunMatchesForEach(t *testing.T) {
	grids := []Grid{
		{Dims: []RunSet{NewRunSet(NewRun(3, 9, 1))}},
		{Dims: []RunSet{NewRunSet(NewRun(0, 8, 2), NewRun(11, 15, 1))}},
		{Dims: []RunSet{
			NewRunSet(NewRun(1, 10, 3), NewRun(20, 22, 1)),
			NewRunSet(NewRun(5, 5, 1), NewRun(7, 13, 2)),
		}},
		{Dims: []RunSet{
			NewRunSet(NewRun(0, 3, 1)),
			NewRunSet(NewRun(2, 8, 3)),
			NewRunSet(NewRun(1, 5, 4), NewRun(9, 9, 1)),
		}},
	}
	for gi, g := range grids {
		want := collectPoints(g.ForEach)
		got := collectPoints(func(f func(Point) bool) {
			g.ForEachRun(func(p Point, r Run) bool {
				if p[0] != r.Lo {
					t.Fatalf("grid %d: p[0] = %d, want run lo %d", gi, p[0], r.Lo)
				}
				q := append(Point(nil), p...)
				for i := r.Lo; i <= r.Hi; i += r.Stride {
					q[0] = i
					if !f(q) {
						return false
					}
				}
				return true
			})
		})
		if len(got) != len(want) || len(got) != g.Count() {
			t.Fatalf("grid %d: %d points via runs, %d via ForEach, Count %d", gi, len(got), len(want), g.Count())
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("grid %d: point %d = %v via runs, %v via ForEach", gi, i, got[i], want[i])
			}
		}
	}
}

func TestGridForEachRunEmptyAndEarlyStop(t *testing.T) {
	empty := Grid{Dims: []RunSet{NewRunSet(NewRun(1, 5, 1)), {}}}
	empty.ForEachRun(func(Point, Run) bool { t.Fatal("iterated empty grid"); return false })

	g := Grid{Dims: []RunSet{
		NewRunSet(NewRun(0, 4, 2), NewRun(7, 9, 1)),
		NewRunSet(NewRun(0, 1, 1)),
	}}
	calls := 0
	g.ForEachRun(func(Point, Run) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop made %d calls, want 1", calls)
	}
}
