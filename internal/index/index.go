// Package index provides index domains, points, regular sections and an
// arithmetic-progression ("strided run") algebra for the Vienna Fortran
// runtime.
//
// Vienna Fortran models a distribution as an index mapping from an array's
// index domain I^A to the index domain of a processor array (paper §2.1,
// Definition 1).  Every structure in this package is a set of global array
// indices: a Domain is the whole index space of an array, a Section is a
// regular (triplet) subset, a Run is a one-dimensional arithmetic
// progression, a RunSet is a union of disjoint Runs, and a Grid is a
// cartesian product of per-dimension RunSets.  Ownership sets of all Vienna
// Fortran intrinsic distributions (BLOCK, CYCLIC(k), S_BLOCK, B_BLOCK) are
// exactly representable as Grids, which is what makes redistribution
// schedules computable by per-dimension intersection instead of per-element
// owner lookups.
//
// Index domains follow Fortran conventions: bounds are inclusive and arrays
// are stored column-major (leftmost subscript varies fastest).
package index

import (
	"fmt"
	"strings"
)

// Point is a multi-dimensional index.  Its length is the rank.
type Point []int

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are identical points.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Domain is a rectangular index domain with inclusive per-dimension bounds,
// e.g. the I^A of paper §2.1.  A REAL A(10,20) has Domain{Lo:[1,1],
// Hi:[10,20]}.
type Domain struct {
	Lo []int
	Hi []int
}

// NewDomain builds a domain from (lo,hi) bound pairs.
func NewDomain(bounds ...[2]int) Domain {
	d := Domain{Lo: make([]int, len(bounds)), Hi: make([]int, len(bounds))}
	for i, b := range bounds {
		d.Lo[i] = b[0]
		d.Hi[i] = b[1]
	}
	return d
}

// Dim builds the Fortran-default domain 1:n1, 1:n2, ... for the given
// extents.
func Dim(extents ...int) Domain {
	d := Domain{Lo: make([]int, len(extents)), Hi: make([]int, len(extents))}
	for i, n := range extents {
		d.Lo[i] = 1
		d.Hi[i] = n
	}
	return d
}

// Rank returns the number of dimensions.
func (d Domain) Rank() int { return len(d.Lo) }

// Extent returns the number of valid indices along dimension k.
func (d Domain) Extent(k int) int { return d.Hi[k] - d.Lo[k] + 1 }

// Size returns the total number of points in the domain.
func (d Domain) Size() int {
	if d.Rank() == 0 {
		return 0
	}
	n := 1
	for k := range d.Lo {
		e := d.Extent(k)
		if e <= 0 {
			return 0
		}
		n *= e
	}
	return n
}

// Contains reports whether p lies inside the domain.
func (d Domain) Contains(p Point) bool {
	if len(p) != d.Rank() {
		return false
	}
	for k, v := range p {
		if v < d.Lo[k] || v > d.Hi[k] {
			return false
		}
	}
	return true
}

// Equal reports whether two domains have identical bounds.
func (d Domain) Equal(e Domain) bool {
	if d.Rank() != e.Rank() {
		return false
	}
	for k := range d.Lo {
		if d.Lo[k] != e.Lo[k] || d.Hi[k] != e.Hi[k] {
			return false
		}
	}
	return true
}

// Offset returns the column-major linear offset of p within the domain.
// The first dimension varies fastest, matching Fortran storage order.
func (d Domain) Offset(p Point) int {
	off := 0
	mult := 1
	for k := 0; k < d.Rank(); k++ {
		off += (p[k] - d.Lo[k]) * mult
		mult *= d.Extent(k)
	}
	return off
}

// At returns the point at column-major linear offset off.
func (d Domain) At(off int) Point {
	p := make(Point, d.Rank())
	for k := 0; k < d.Rank(); k++ {
		e := d.Extent(k)
		p[k] = d.Lo[k] + off%e
		off /= e
	}
	return p
}

// WholeSection returns the section covering the entire domain with stride 1.
func (d Domain) WholeSection() Section {
	s := Section{Lo: make([]int, d.Rank()), Hi: make([]int, d.Rank()), Stride: make([]int, d.Rank())}
	copy(s.Lo, d.Lo)
	copy(s.Hi, d.Hi)
	for k := range s.Stride {
		s.Stride[k] = 1
	}
	return s
}

func (d Domain) String() string {
	parts := make([]string, d.Rank())
	for k := range d.Lo {
		parts[k] = fmt.Sprintf("%d:%d", d.Lo[k], d.Hi[k])
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Section is a regular array section given by per-dimension triplets
// lo:hi:stride with inclusive bounds, as in Fortran 90 section notation.
type Section struct {
	Lo     []int
	Hi     []int
	Stride []int
}

// NewSection builds a section from (lo,hi,stride) triplets.
func NewSection(triplets ...[3]int) Section {
	s := Section{Lo: make([]int, len(triplets)), Hi: make([]int, len(triplets)), Stride: make([]int, len(triplets))}
	for i, t := range triplets {
		s.Lo[i] = t[0]
		s.Hi[i] = t[1]
		st := t[2]
		if st == 0 {
			st = 1
		}
		s.Stride[i] = st
	}
	return s
}

// Rank returns the number of dimensions of the section.
func (s Section) Rank() int { return len(s.Lo) }

// DimCount returns the number of selected indices along dimension k.
func (s Section) DimCount(k int) int {
	if s.Hi[k] < s.Lo[k] {
		return 0
	}
	return (s.Hi[k]-s.Lo[k])/s.Stride[k] + 1
}

// Size returns the number of points the section selects.
func (s Section) Size() int {
	if s.Rank() == 0 {
		return 0
	}
	n := 1
	for k := range s.Lo {
		n *= s.DimCount(k)
	}
	return n
}

// Contains reports whether p is selected by the section.
func (s Section) Contains(p Point) bool {
	if len(p) != s.Rank() {
		return false
	}
	for k, v := range p {
		if v < s.Lo[k] || v > s.Hi[k] || (v-s.Lo[k])%s.Stride[k] != 0 {
			return false
		}
	}
	return true
}

// Run returns the Run describing dimension k of the section.
func (s Section) Run(k int) Run {
	return Run{Lo: s.Lo[k], Hi: lastOn(s.Lo[k], s.Hi[k], s.Stride[k]), Stride: s.Stride[k]}
}

// Grid converts the section into an equivalent Grid.
func (s Section) Grid() Grid {
	g := Grid{Dims: make([]RunSet, s.Rank())}
	for k := 0; k < s.Rank(); k++ {
		r := s.Run(k)
		if r.Count() > 0 {
			g.Dims[k] = RunSet{r}
		} else {
			g.Dims[k] = RunSet{}
		}
	}
	return g
}

// ForEach calls f for every point of the section in column-major order
// (first dimension fastest).  Iteration stops early if f returns false.
func (s Section) ForEach(f func(Point) bool) {
	if s.Size() == 0 {
		return
	}
	p := make(Point, s.Rank())
	copy(p, s.Lo)
	for {
		if !f(p) {
			return
		}
		k := 0
		for k < s.Rank() {
			p[k] += s.Stride[k]
			if p[k] <= s.Hi[k] {
				break
			}
			p[k] = s.Lo[k]
			k++
		}
		if k == s.Rank() {
			return
		}
	}
}

func (s Section) String() string {
	parts := make([]string, s.Rank())
	for k := range s.Lo {
		if s.Stride[k] == 1 {
			parts[k] = fmt.Sprintf("%d:%d", s.Lo[k], s.Hi[k])
		} else {
			parts[k] = fmt.Sprintf("%d:%d:%d", s.Lo[k], s.Hi[k], s.Stride[k])
		}
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// lastOn returns the largest value <= hi reachable from lo with the given
// stride, or lo-stride if the run is empty.
func lastOn(lo, hi, stride int) int {
	if hi < lo {
		return lo - stride
	}
	return lo + ((hi-lo)/stride)*stride
}
