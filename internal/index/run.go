package index

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Run is a one-dimensional arithmetic progression of global indices:
// {Lo, Lo+Stride, ..., Hi} with Hi reachable from Lo (the constructor and
// all algebra functions maintain this invariant).  Stride is always >= 1.
//
// Runs are the unit of the ownership algebra: the set of indices a
// processor owns along one distributed dimension is a union of Runs
// (a RunSet).  BLOCK, S_BLOCK and B_BLOCK yield a single stride-1 Run;
// CYCLIC(k) yields k Runs of stride k*np (or equivalently one RunSet with
// k strided runs).
type Run struct {
	Lo, Hi, Stride int
}

// NewRun builds a canonical Run from lo, hi, stride; hi is clipped down to
// the last element actually on the progression.
func NewRun(lo, hi, stride int) Run {
	if stride < 1 {
		panic(fmt.Sprintf("index: invalid run stride %d", stride))
	}
	return Run{Lo: lo, Hi: lastOn(lo, hi, stride), Stride: stride}
}

// Count returns the number of elements of the run.
func (r Run) Count() int {
	if r.Hi < r.Lo {
		return 0
	}
	return (r.Hi-r.Lo)/r.Stride + 1
}

// Empty reports whether the run selects no indices.
func (r Run) Empty() bool { return r.Hi < r.Lo }

// Contains reports whether i is on the progression.
func (r Run) Contains(i int) bool {
	return i >= r.Lo && i <= r.Hi && (i-r.Lo)%r.Stride == 0
}

// At returns the k-th element (0-based) of the run.
func (r Run) At(k int) int { return r.Lo + k*r.Stride }

// IndexOf returns the position of i in the run, or -1 if absent.
func (r Run) IndexOf(i int) int {
	if !r.Contains(i) {
		return -1
	}
	return (i - r.Lo) / r.Stride
}

// Clip returns the part of r falling within [lo,hi].
func (r Run) Clip(lo, hi int) Run {
	nlo := r.Lo
	if nlo < lo {
		// advance to the first element >= lo
		d := lo - r.Lo
		steps := (d + r.Stride - 1) / r.Stride
		nlo = r.Lo + steps*r.Stride
	}
	nhi := r.Hi
	if nhi > hi {
		nhi = hi
	}
	return Run{Lo: nlo, Hi: lastOn(nlo, nhi, r.Stride), Stride: r.Stride}
}

func (r Run) String() string {
	if r.Empty() {
		return "{}"
	}
	if r.Stride == 1 {
		return fmt.Sprintf("%d:%d", r.Lo, r.Hi)
	}
	return fmt.Sprintf("%d:%d:%d", r.Lo, r.Hi, r.Stride)
}

// ForEach calls f for every index of the run in increasing order.
func (r Run) ForEach(f func(int) bool) {
	for i := r.Lo; i <= r.Hi; i += r.Stride {
		if !f(i) {
			return
		}
	}
}

// gcd returns the greatest common divisor of a and b (a,b >= 0).
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// egcd returns (g, x, y) with a*x + b*y = g = gcd(a,b).
func egcd(a, b int) (g, x, y int) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := egcd(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// IntersectRuns computes the intersection of two runs, which is again a
// single (possibly empty) run with stride lcm(a.Stride, b.Stride).  The
// first common element is found with the extended Euclidean algorithm
// (Chinese remainder theorem on the two progressions).
func IntersectRuns(a, b Run) Run {
	if a.Empty() || b.Empty() || a.Hi < b.Lo || b.Hi < a.Lo {
		return Run{Lo: 0, Hi: -1, Stride: 1}
	}
	g, p, _ := egcd(a.Stride, b.Stride)
	diff := b.Lo - a.Lo
	if diff%g != 0 {
		return Run{Lo: 0, Hi: -1, Stride: 1} // progressions never meet
	}
	lcm := a.Stride / g * b.Stride
	// x = a.Lo + a.Stride * p * (diff/g) is a common point of the two
	// infinite progressions; reduce it modulo lcm into the valid window.
	x := a.Lo + a.Stride*mulmod(p, diff/g, lcm/a.Stride)
	lo := a.Lo
	if b.Lo > lo {
		lo = b.Lo
	}
	hi := a.Hi
	if b.Hi < hi {
		hi = b.Hi
	}
	// shift x to the smallest common element >= lo
	if x < lo {
		x += ((lo-x)+lcm-1)/lcm*lcm - 0
	} else {
		x -= (x - lo) / lcm * lcm
	}
	if x > hi {
		return Run{Lo: 0, Hi: -1, Stride: 1}
	}
	return Run{Lo: x, Hi: lastOn(x, hi, lcm), Stride: lcm}
}

// mulmod returns (a*b) mod m with the result in [0, m).
func mulmod(a, b, m int) int {
	if m == 1 {
		return 0
	}
	r := (a % m) * (b % m) % m
	if r < 0 {
		r += m
	}
	return r
}

// RunSet is a union of disjoint runs sorted by Lo.  The zero value is the
// empty set.
type RunSet []Run

// NewRunSet normalizes a collection of runs into a canonical RunSet:
// empties dropped, sorted by first element.  Runs are assumed disjoint
// (all producers in this codebase generate disjoint runs); use
// RunSetFromIndices when arbitrary index lists must be converted.
func NewRunSet(runs ...Run) RunSet {
	rs := make(RunSet, 0, len(runs))
	for _, r := range runs {
		if !r.Empty() {
			rs = append(rs, r)
		}
	}
	slices.SortFunc(rs, func(a, b Run) int { return a.Lo - b.Lo })
	return rs
}

// RunSetFromIndices builds a RunSet from an arbitrary set of indices,
// coalescing consecutive stretches into stride-1 runs.
func RunSetFromIndices(idx []int) RunSet {
	if len(idx) == 0 {
		return RunSet{}
	}
	sorted := make([]int, len(idx))
	copy(sorted, idx)
	sort.Ints(sorted)
	var rs RunSet
	lo := sorted[0]
	prev := sorted[0]
	for _, v := range sorted[1:] {
		if v == prev {
			continue // dedupe
		}
		if v == prev+1 {
			prev = v
			continue
		}
		rs = append(rs, Run{Lo: lo, Hi: prev, Stride: 1})
		lo, prev = v, v
	}
	rs = append(rs, Run{Lo: lo, Hi: prev, Stride: 1})
	return rs
}

// Count returns the total number of indices in the set.
func (rs RunSet) Count() int {
	n := 0
	for _, r := range rs {
		n += r.Count()
	}
	return n
}

// Empty reports whether the set has no indices.
func (rs RunSet) Empty() bool { return rs.Count() == 0 }

// Contains reports whether i belongs to the set.
func (rs RunSet) Contains(i int) bool {
	for _, r := range rs {
		if r.Contains(i) {
			return true
		}
	}
	return false
}

// IndexOf returns the 0-based position of i in the set's increasing
// enumeration, or -1 if absent.  Positions are the basis of local index
// computation (loc_map in paper §3.2.1).
//
// Note: positions are well-defined even when runs interleave, but all
// distribution-generated RunSets have non-interleaving runs, for which
// this is a simple prefix-sum walk.
func (rs RunSet) IndexOf(i int) int {
	pos := 0
	for _, r := range rs {
		if k := r.IndexOf(i); k >= 0 {
			return pos + k
		}
		pos += r.Count()
	}
	return -1
}

// At returns the k-th (0-based) index of the set in enumeration order.
func (rs RunSet) At(k int) int {
	for _, r := range rs {
		c := r.Count()
		if k < c {
			return r.At(k)
		}
		k -= c
	}
	panic("index: RunSet.At out of range")
}

// ForEach calls f for every index in enumeration order.
func (rs RunSet) ForEach(f func(int) bool) {
	for _, r := range rs {
		for i := r.Lo; i <= r.Hi; i += r.Stride {
			if !f(i) {
				return
			}
		}
	}
}

// Indices materializes the set as a sorted slice (for tests and small sets).
func (rs RunSet) Indices() []int {
	out := make([]int, 0, rs.Count())
	rs.ForEach(func(i int) bool { out = append(out, i); return true })
	sort.Ints(out)
	return out
}

// Intersect returns the intersection of two RunSets.
func (rs RunSet) Intersect(other RunSet) RunSet {
	if len(rs) == 0 || len(other) == 0 {
		return nil
	}
	out := make(RunSet, 0, len(rs)*len(other))
	for _, a := range rs {
		for _, b := range other {
			if c := IntersectRuns(a, b); !c.Empty() {
				out = append(out, c)
			}
		}
	}
	slices.SortFunc(out, func(a, b Run) int { return a.Lo - b.Lo })
	return out
}

// Equal reports whether two RunSets denote the same index set.
func (rs RunSet) Equal(other RunSet) bool {
	if rs.Count() != other.Count() {
		return false
	}
	a, b := rs.Indices(), other.Indices()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (rs RunSet) String() string {
	if len(rs) == 0 {
		return "{}"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Grid is a cartesian product of per-dimension RunSets, denoting the set of
// points whose k-th coordinate lies in Dims[k].  Ownership sets of Vienna
// Fortran distributions are Grids, and so are redistribution transfer sets
// (intersection of two Grids is the per-dimension intersection).
type Grid struct {
	Dims []RunSet
}

// Rank returns the grid's number of dimensions.
func (g Grid) Rank() int { return len(g.Dims) }

// Count returns the number of points in the grid.
func (g Grid) Count() int {
	if g.Rank() == 0 {
		return 0
	}
	n := 1
	for _, d := range g.Dims {
		n *= d.Count()
	}
	return n
}

// Empty reports whether the grid contains no points.
func (g Grid) Empty() bool { return g.Count() == 0 }

// Contains reports whether p lies in the grid.
func (g Grid) Contains(p Point) bool {
	if len(p) != g.Rank() {
		return false
	}
	for k, v := range p {
		if !g.Dims[k].Contains(v) {
			return false
		}
	}
	return true
}

// Intersect returns the per-dimension intersection of two grids.
func (g Grid) Intersect(other Grid) Grid {
	if g.Rank() != other.Rank() {
		panic("index: grid rank mismatch")
	}
	out := Grid{Dims: make([]RunSet, g.Rank())}
	for k := range g.Dims {
		out.Dims[k] = g.Dims[k].Intersect(other.Dims[k])
	}
	return out
}

// ForEach calls f for every point of the grid in column-major enumeration
// order (dimension 0 fastest).  The Point passed to f is reused between
// calls; clone it if it must be retained.
func (g Grid) ForEach(f func(Point) bool) {
	if g.Empty() {
		return
	}
	idx := make([]int, g.Rank()) // per-dim enumeration positions
	p := make(Point, g.Rank())
	for k := range p {
		p[k] = g.Dims[k].At(0)
	}
	for {
		if !f(p) {
			return
		}
		k := 0
		for k < g.Rank() {
			idx[k]++
			if idx[k] < g.Dims[k].Count() {
				p[k] = g.Dims[k].At(idx[k])
				break
			}
			idx[k] = 0
			p[k] = g.Dims[k].At(0)
			k++
		}
		if k == g.Rank() {
			return
		}
	}
}

// ForEachRun calls f for every innermost span of the grid: r is one run
// of dimension 0 and p is a point whose remaining coordinates select the
// outer position (p[0] is set to r.Lo for convenience).  Visiting every
// run's elements in order reproduces exactly the ForEach enumeration —
// spans are the unit the data-movement layer packs with copy-style loops
// instead of per-point callbacks.  The Point passed to f is reused
// between calls; clone it if it must be retained.
func (g Grid) ForEachRun(f func(p Point, r Run) bool) {
	if g.Empty() {
		return
	}
	rank := g.Rank()
	scratch := make([]int, 2*rank) // one allocation: point + positions
	p := Point(scratch[:rank])
	idx := scratch[rank:] // enumeration positions of dims >= 1
	for k := 1; k < rank; k++ {
		p[k] = g.Dims[k].At(0)
	}
	for {
		for _, r := range g.Dims[0] {
			p[0] = r.Lo
			if !f(p, r) {
				return
			}
		}
		k := 1
		for k < rank {
			idx[k]++
			if idx[k] < g.Dims[k].Count() {
				p[k] = g.Dims[k].At(idx[k])
				break
			}
			idx[k] = 0
			p[k] = g.Dims[k].At(0)
			k++
		}
		if k == rank {
			return
		}
	}
}

func (g Grid) String() string {
	parts := make([]string, g.Rank())
	for k, d := range g.Dims {
		parts[k] = d.String()
	}
	return "⨯[" + strings.Join(parts, ", ") + "]"
}
