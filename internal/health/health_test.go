package health

import (
	"testing"
)

// feed folds one per-unit-cost observation into rank's score: each call
// advances the cumulative counters by (units, units×cost) so the delta
// scored is exactly cost seconds per unit.
type feeder struct {
	seq   []int64
	units []float64
	secs  []float64
}

func newFeeder(np int) *feeder {
	return &feeder{seq: make([]int64, np), units: make([]float64, np), secs: make([]float64, np)}
}

func (f *feeder) feed(s *Scorer, rank int, cost float64) {
	f.seq[rank]++
	f.units[rank] += 100
	f.secs[rank] += 100 * cost
	s.Observe(rank, f.seq[rank], f.units[rank], f.secs[rank])
}

// warm gives every rank of the 4-rank scorer w nominal-cost rounds.
func warm(s *Scorer, f *feeder, rounds int) {
	for i := 0; i < rounds; i++ {
		for r := 0; r < 4; r++ {
			f.feed(s, r, 1.0)
		}
	}
}

// TestHealthDetectsStraggler: a persistent 8× rank crosses Degraded (and
// then Suspect) after the hysteresis streak; the healthy ranks stay put.
func TestHealthDetectsStraggler(t *testing.T) {
	s := New(4, Config{Window: 4, DegradedRatio: 2, SuspectRatio: 6, Hysteresis: 3})
	f := newFeeder(4)
	warm(s, f, 4)
	for i := 0; i < 12; i++ {
		for r := 0; r < 3; r++ {
			f.feed(s, r, 1.0)
		}
		f.feed(s, 3, 8.0)
	}
	if c := s.Class(3); c != Suspect {
		t.Fatalf("8x rank classified %v after 12 rounds, want suspect", c)
	}
	for r := 0; r < 3; r++ {
		if c := s.Class(r); c != Healthy {
			t.Fatalf("healthy rank %d classified %v", r, c)
		}
	}
	if sd := s.Slowdown(3); sd < 4 {
		t.Fatalf("slowdown(3) = %.2f, want ≈8", sd)
	}
	rep := s.Report([]int{0, 1, 2, 3})
	if !rep[3].EverDegraded || rep[0].EverDegraded {
		t.Fatalf("EverDegraded flags wrong: %+v", rep)
	}
	worst, class, _, ok := s.Worst([]int{0, 1, 2, 3})
	if !ok || worst != 3 || class != Suspect {
		t.Fatalf("Worst = (%d, %v, ok=%v), want rank 3 suspect", worst, class, ok)
	}
}

// TestHysteresisSingleSlowStepNeverFlips: the satellite's exact claim —
// one slow observation (however extreme) must not change the
// classification, at any configured hysteresis.
func TestHysteresisSingleSlowStepNeverFlips(t *testing.T) {
	for _, hyst := range []int{0, 1, 2, 3, 5} {
		s := New(4, Config{Window: 2, DegradedRatio: 1.5, Hysteresis: hyst})
		f := newFeeder(4)
		warm(s, f, 4)
		// One catastrophic step on rank 2: a 100× pause.
		for r := 0; r < 2; r++ {
			f.feed(s, r, 1.0)
		}
		f.feed(s, 2, 100.0)
		f.feed(s, 3, 1.0)
		if c := s.Class(2); c != Healthy {
			t.Fatalf("hysteresis=%d: a single slow step flipped rank 2 to %v", hyst, c)
		}
	}
}

// TestHysteresisRecovery: a rank that was Degraded returns to Healthy
// only after a full streak of nominal observations — and its
// EverDegraded flag stays set for the run's report.
func TestHysteresisRecovery(t *testing.T) {
	s := New(4, Config{Window: 2, DegradedRatio: 2, Hysteresis: 3})
	f := newFeeder(4)
	warm(s, f, 4)
	for i := 0; i < 10; i++ {
		for r := 0; r < 3; r++ {
			f.feed(s, r, 1.0)
		}
		f.feed(s, 3, 4.0)
	}
	if c := s.Class(3); c != Degraded {
		t.Fatalf("rank 3 = %v, want degraded", c)
	}
	// Recovery: nominal again.  The short window forgets fast; the
	// class must lag by the hysteresis streak, then flip back.
	flipped := -1
	for i := 0; i < 12; i++ {
		for r := 0; r < 4; r++ {
			f.feed(s, r, 1.0)
		}
		if s.Class(3) == Healthy {
			flipped = i
			break
		}
	}
	if flipped < 0 {
		t.Fatal("recovered rank never reclassified healthy")
	}
	if flipped < 2 {
		t.Fatalf("reclassified healthy after %d rounds, want >= hysteresis lag", flipped+1)
	}
	if !s.Report([]int{3})[0].EverDegraded {
		t.Fatal("EverDegraded cleared by recovery")
	}
}

// TestHealthDedupBySeq: the in-process machine delivers every heartbeat
// to np monitors; replaying the same sequence must fold in exactly one
// observation.
func TestHealthDedupBySeq(t *testing.T) {
	s := New(2, Config{})
	for i := 0; i < 5; i++ { // same report, five monitors
		s.Observe(1, 1, 100, 100)
	}
	if n := s.Observations(1); n != 1 {
		t.Fatalf("observations = %d after replaying seq 1 five times, want 1", n)
	}
	s.Observe(1, 0, 50, 50) // stale sequence: ignored
	if n := s.Observations(1); n != 1 {
		t.Fatalf("stale sequence was scored: observations = %d", n)
	}
}

// TestHealthSpeeds: the weights handed to a throughput-aware rebalance —
// the straggler's relative speed is ≈ 1/slowdown, healthy ranks ≈ 1.
func TestHealthSpeeds(t *testing.T) {
	s := New(4, Config{Window: 4})
	f := newFeeder(4)
	for i := 0; i < 16; i++ {
		for r := 0; r < 3; r++ {
			f.feed(s, r, 1.0)
		}
		f.feed(s, 3, 8.0)
	}
	sp := s.Speeds([]int{0, 1, 2, 3})
	for r := 0; r < 3; r++ {
		if sp[r] < 0.9 || sp[r] > 1.1 {
			t.Fatalf("healthy rank %d speed = %.3f, want ≈1", r, sp[r])
		}
	}
	if sp[3] > 0.2 {
		t.Fatalf("straggler speed = %.3f, want ≈0.125", sp[3])
	}
}

// TestHealthNoObservationsIsHealthy: before any report everything is
// Healthy at slowdown 1 — the policy has nothing to act on.
func TestHealthNoObservationsIsHealthy(t *testing.T) {
	s := New(3, Config{})
	if _, _, _, ok := s.Worst([]int{0, 1, 2}); ok {
		t.Fatal("Worst found a straggler in an empty scorer")
	}
	if s.Class(1) != Healthy || s.Slowdown(1) != 1 {
		t.Fatal("unobserved rank not nominal")
	}
	sp := s.Speeds([]int{0, 1, 2})
	for i, v := range sp {
		if v != 1 {
			t.Fatalf("speed[%d] = %v, want 1", i, v)
		}
	}
}

// TestHealthDefaultsClampHysteresis: the defaulting must never allow a
// hysteresis that lets one observation flip a class.
func TestHealthDefaultsClampHysteresis(t *testing.T) {
	if h := (Config{Hysteresis: 1}).withDefaults().Hysteresis; h < 2 {
		t.Fatalf("Hysteresis=1 defaulted to %d, want >= 2", h)
	}
	c := Config{}.withDefaults()
	if c.Window <= 0 || c.DegradedRatio <= 1 || c.SuspectRatio <= c.DegradedRatio || c.Hysteresis < 2 {
		t.Fatalf("zero config defaults unusable: %+v", c)
	}
}
