// Package health scores the throughput of every rank of a running SPMD
// machine and classifies each as Healthy, Degraded or Suspect — a state
// machine deliberately distinct from the liveness detector's binary
// dead set.  The liveness layer answers "is the rank gone?"; this layer
// answers "is the rank *slow*?", which is what a drain-or-rebalance
// policy needs: a persistently overloaded rank inflates every barrier
// long before it misses a heartbeat.
//
// The scorer consumes per-rank work reports — cumulative (work units,
// busy seconds) counters piggybacked on the machine's heartbeat traffic
// — and maintains an EWMA of each rank's seconds-per-unit cost.  A
// rank's *slowdown* is its EWMA cost relative to the median across
// ranks, so the classification is self-calibrating: it needs no
// absolute speed model, only that most ranks are healthy.  Transitions
// are guarded by hysteresis: a rank changes class only after Hysteresis
// consecutive observations land in the same new class, so one slow
// step (a GC pause, a page fault) never flips anyone.
//
// Everything here is pure, mutex-guarded state; the machine layer feeds
// it and the policy layer reads it.
package health

import (
	"fmt"
	"sort"
	"sync"
)

// Class is a rank's health classification.
type Class int

// Classes, ordered by severity.
const (
	// Healthy: the rank's per-unit cost tracks the median.
	Healthy Class = iota
	// Degraded: persistently slower than DegradedRatio × median — a
	// straggler worth rebalancing around or draining, but still making
	// progress.
	Degraded
	// Suspect: slower than SuspectRatio × median — so slow that the
	// policy should prefer draining it before the liveness window
	// declares it dead mid-collective.
	Suspect
)

func (c Class) String() string {
	switch c {
	case Degraded:
		return "degraded"
	case Suspect:
		return "suspect"
	}
	return "healthy"
}

// Config parameterizes the scorer.  The zero value is usable: every
// field has a default.
type Config struct {
	// Window is the EWMA window in observations (α = 2/(Window+1)).
	// Default 8.
	Window int
	// DegradedRatio is the slowdown (EWMA cost / median cost) at or
	// above which a rank is a Degraded candidate.  Default 2.
	DegradedRatio float64
	// SuspectRatio is the slowdown at or above which a rank is a
	// Suspect candidate.  Default 3× DegradedRatio.
	SuspectRatio float64
	// Hysteresis is the number of consecutive observations that must
	// agree on a new class before the rank transitions to it.  Default
	// 3; a value below 2 is raised to 2 so a single observation can
	// never flip a classification.
	Hysteresis int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.DegradedRatio <= 1 {
		c.DegradedRatio = 2
	}
	if c.SuspectRatio <= c.DegradedRatio {
		c.SuspectRatio = 3 * c.DegradedRatio
	}
	if c.Hysteresis < 2 {
		if c.Hysteresis == 0 {
			c.Hysteresis = 3
		} else {
			c.Hysteresis = 2
		}
	}
	return c
}

// rankState is one rank's scoring state.
type rankState struct {
	seq       int64   // newest report sequence folded in (dedup)
	units     float64 // cumulative work units at seq
	secs      float64 // cumulative busy seconds at seq
	n         int     // observations folded into the EWMA
	cost      float64 // EWMA seconds per work unit
	class     Class
	candidate Class // class of the current hysteresis streak
	streak    int   // consecutive observations agreeing on candidate
	everDegr  bool  // rank was classified Degraded or worse at least once
}

// Scorer maintains per-rank EWMA throughput scores with hysteresis.
// All methods are safe for concurrent use; Observe is fed by every
// rank's heartbeat monitor and deduplicates by report sequence, so the
// n-fold delivery of an in-process machine collapses to one observation.
type Scorer struct {
	mu    sync.Mutex
	cfg   Config
	ranks []rankState
}

// New creates a scorer for np physical ranks.
func New(np int, cfg Config) *Scorer {
	return &Scorer{cfg: cfg.withDefaults(), ranks: make([]rankState, np)}
}

// Config returns the effective (defaulted) configuration.
func (s *Scorer) Config() Config { return s.cfg }

// Observe folds one work report from rank into the score: seq is the
// report sequence (monotone per rank; stale or duplicate sequences are
// ignored), units and secs are *cumulative* work units completed and
// busy seconds spent since the run began.  Deltas between consecutive
// reports form the per-unit cost observation, so the sampling rate —
// how often heartbeats pick the counters up — does not skew the score.
func (s *Scorer) Observe(rank int, seq int64, units, secs float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rank < 0 || rank >= len(s.ranks) {
		return
	}
	st := &s.ranks[rank]
	if seq <= st.seq {
		return
	}
	du, ds := units-st.units, secs-st.secs
	st.seq, st.units, st.secs = seq, units, secs
	if du <= 0 || ds < 0 {
		return // no work completed since the last report: nothing to score
	}
	cost := ds / du
	if st.n == 0 {
		st.cost = cost
	} else {
		alpha := 2 / float64(s.cfg.Window+1)
		st.cost = alpha*cost + (1-alpha)*st.cost
	}
	st.n++
	s.reclassify(rank)
}

// reclassify recomputes rank's candidate class against the current
// median cost and advances its hysteresis streak.  Caller holds mu.
func (s *Scorer) reclassify(rank int) {
	med := s.medianLocked()
	st := &s.ranks[rank]
	if med <= 0 {
		return
	}
	ratio := st.cost / med
	target := Healthy
	switch {
	case ratio >= s.cfg.SuspectRatio:
		target = Suspect
	case ratio >= s.cfg.DegradedRatio:
		target = Degraded
	}
	if target == st.class {
		st.streak = 0
		return
	}
	if target == st.candidate {
		st.streak++
	} else {
		st.candidate = target
		st.streak = 1
	}
	if st.streak >= s.cfg.Hysteresis {
		st.class = target
		st.streak = 0
		if target >= Degraded {
			st.everDegr = true
		}
	}
}

// medianLocked returns the median EWMA cost across ranks with at least
// one observation (0 when none).  Caller holds mu.
func (s *Scorer) medianLocked() float64 {
	costs := make([]float64, 0, len(s.ranks))
	for i := range s.ranks {
		if s.ranks[i].n > 0 {
			costs = append(costs, s.ranks[i].cost)
		}
	}
	if len(costs) == 0 {
		return 0
	}
	sort.Float64s(costs)
	mid := len(costs) / 2
	if len(costs)%2 == 1 {
		return costs[mid]
	}
	return (costs[mid-1] + costs[mid]) / 2
}

// Class returns rank's current classification (Healthy before any
// observation).
func (s *Scorer) Class(rank int) Class {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rank < 0 || rank >= len(s.ranks) {
		return Healthy
	}
	return s.ranks[rank].class
}

// Slowdown returns rank's EWMA cost relative to the median (1 =
// nominal, 8 = eight times slower; 1 before any observation).
func (s *Scorer) Slowdown(rank int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slowdownLocked(rank)
}

func (s *Scorer) slowdownLocked(rank int) float64 {
	if rank < 0 || rank >= len(s.ranks) || s.ranks[rank].n == 0 {
		return 1
	}
	med := s.medianLocked()
	if med <= 0 {
		return 1
	}
	return s.ranks[rank].cost / med
}

// Observations returns how many scored observations rank has
// contributed — the policy layer gates decisions on a warm-up count.
func (s *Scorer) Observations(rank int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rank < 0 || rank >= len(s.ranks) {
		return 0
	}
	return s.ranks[rank].n
}

// Speeds returns the relative throughput of each given physical rank
// (median rank = 1, an 8× straggler ≈ 0.125; 1 for ranks with no
// observations).  These are the weights a throughput-aware B_BLOCK
// rebalance feeds to its bounds computation.
func (s *Scorer) Speeds(ranks []int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(ranks))
	for i, r := range ranks {
		sd := s.slowdownLocked(r)
		if sd <= 0 {
			sd = 1
		}
		out[i] = 1 / sd
	}
	return out
}

// RankReport is one rank's line of a health report.
type RankReport struct {
	Rank         int
	Class        Class
	Slowdown     float64
	Observations int
	// EverDegraded reports whether the rank was ever classified Degraded
	// or Suspect during the run — the "was the straggler detected"
	// answer, robust to the rank recovering (or being relieved by a
	// rebalance) afterwards.
	EverDegraded bool
}

func (r RankReport) String() string {
	return fmt.Sprintf("rank %d: %s (slowdown %.2fx over %d obs)", r.Rank, r.Class, r.Slowdown, r.Observations)
}

// Report returns the health lines of the given physical ranks.
func (s *Scorer) Report(ranks []int) []RankReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RankReport, len(ranks))
	for i, r := range ranks {
		rr := RankReport{Rank: r, Slowdown: 1}
		if r >= 0 && r < len(s.ranks) {
			rr.Class = s.ranks[r].class
			rr.Slowdown = s.slowdownLocked(r)
			rr.Observations = s.ranks[r].n
			rr.EverDegraded = s.ranks[r].everDegr
		}
		out[i] = rr
	}
	return out
}

// Worst returns the given rank set's worst classified member — the
// straggler a mitigation policy would act on: the rank whose class is
// highest, ties broken by the larger slowdown.  ok is false when every
// given rank is Healthy.
func (s *Scorer) Worst(ranks []int) (rank int, class Class, slowdown float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rank = -1
	for _, r := range ranks {
		if r < 0 || r >= len(s.ranks) || s.ranks[r].class == Healthy {
			continue
		}
		c, sd := s.ranks[r].class, s.slowdownLocked(r)
		if c > class || (c == class && sd > slowdown) {
			rank, class, slowdown, ok = r, c, sd, true
		}
	}
	return rank, class, slowdown, ok
}
