package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed Vienna Fortran subset unit (one procedure scope).
type Program struct {
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	Pos() Pos
	stmtNode()
}

type node struct{ P Pos }

// Pos returns the node's source position.
func (n node) Pos() Pos { return n.P }

// ParamDef is one NAME = value pair of a PARAMETER statement.
type ParamDef struct {
	Name  string
	Value Expr
}

// ParameterStmt is PARAMETER (N = 100, M = 4).
type ParameterStmt struct {
	node
	Defs []ParamDef
}

// ProcessorsStmt is PROCESSORS R(1:M, 1:M).
type ProcessorsStmt struct {
	node
	Name   string
	Bounds [][2]Expr // lo may be nil (defaults to 1)
}

// DeclName is one declared array: NAME(dims).  Scalars have no dims.
type DeclName struct {
	Name string
	Dims [][2]Expr // lo may be nil (defaults to 1)
}

// DistDimKind classifies a component of a distribution expression or
// query pattern.
type DistDimKind int

// Distribution expression component kinds.
const (
	DBlock DistDimKind = iota
	DCyclic
	DSBlock
	DBBlock
	DElided  // ":"
	DAny     // "*" (patterns and RANGE only)
	DExtract // "=B" (DISTRIBUTE extraction, paper Example 3)
)

func (k DistDimKind) String() string {
	switch k {
	case DBlock:
		return "BLOCK"
	case DCyclic:
		return "CYCLIC"
	case DSBlock:
		return "S_BLOCK"
	case DBBlock:
		return "B_BLOCK"
	case DElided:
		return ":"
	case DAny:
		return "*"
	case DExtract:
		return "="
	}
	return "?"
}

// DistDim is one component of a distribution expression / pattern:
// BLOCK, CYCLIC, CYCLIC(k), CYCLIC(*), S_BLOCK(a), B_BLOCK(a), ":", "*",
// or "=NAME".
type DistDim struct {
	Kind DistDimKind
	// Arg is CYCLIC's block length or S_BLOCK/B_BLOCK's bounds array
	// reference; nil when absent.  ArgAny marks CYCLIC(*).
	Arg    Expr
	ArgAny bool
	// Args holds literal bounds/sizes lists: B_BLOCK(3,5,9,12).  When a
	// single argument was given, Args has one element equal to Arg.
	Args []Expr
	// From names the array of an extraction component.
	From string
}

func (d DistDim) String() string {
	switch d.Kind {
	case DCyclic:
		if d.ArgAny {
			return "CYCLIC(*)"
		}
		if d.Arg != nil {
			return fmt.Sprintf("CYCLIC(%v)", d.Arg)
		}
		return "CYCLIC"
	case DSBlock, DBBlock:
		if d.Arg != nil {
			return fmt.Sprintf("%v(%v)", d.Kind, d.Arg)
		}
		return d.Kind.String()
	case DExtract:
		return "=" + d.From
	}
	return d.Kind.String()
}

// DistExpr is a parenthesized list of components plus an optional target.
type DistExpr struct {
	Dims   []DistDim
	Target string // "" = default; the TO R clause
}

func (d DistExpr) String() string {
	parts := make([]string, len(d.Dims))
	for i, c := range d.Dims {
		parts[i] = c.String()
	}
	s := "(" + strings.Join(parts, ",") + ")"
	if d.Target != "" {
		s += " TO " + d.Target
	}
	return s
}

// AlignSpec is "A(I,J) WITH B(J,I+1,3)": the source index names and the
// target index expressions over them.
type AlignSpec struct {
	SrcName string
	SrcIdx  []string
	DstName string
	DstIdx  []Expr
}

func (a AlignSpec) String() string {
	return fmt.Sprintf("%s(%s) WITH %s(...)", a.SrcName, strings.Join(a.SrcIdx, ","), a.DstName)
}

// ConnectAnn is the CONNECT annotation of a secondary declaration:
// either extraction "(=B)" or an alignment spec.
type ConnectAnn struct {
	Extract string // primary name for "(=B)"; "" when Align is used
	Align   *AlignSpec
}

// DeclStmt is an array declaration with annotations (paper §2.2–2.3):
//
//	REAL C(10,10,10) DIST(BLOCK,BLOCK,:) TO R
//	REAL D(...) ALIGN D(I,J,K) WITH C(J,I,K)
//	REAL B3(N,N), B4(N,N) DYNAMIC, RANGE(...), DIST(BLOCK, CYCLIC)
//	REAL A1(N,N) DYNAMIC, CONNECT (=B4)
type DeclStmt struct {
	node
	ElemType string // REAL or INTEGER
	Names    []DeclName
	Dist     *DistExpr  // DIST(...) [TO ...] — static or dynamic initial
	Align    *AlignSpec // static ALIGN ... WITH ...
	Dynamic  bool
	Range    []DistExpr // RANGE((...),(...))
	Connect  *ConnectAnn
}

func (*DeclStmt) stmtNode()       {}
func (*ParameterStmt) stmtNode()  {}
func (*ProcessorsStmt) stmtNode() {}

// DistributeStmt is DISTRIBUTE B1, B2 :: da [NOTRANSFER (C1, ...)], where
// da is a distribution expression (possibly with extraction components)
// or an alignment specification.
type DistributeStmt struct {
	node
	Names      []string
	Expr       *DistExpr  // nil when Align is used
	Align      *AlignSpec // "ALIGN ... WITH ..." form
	NoTransfer []string
}

func (*DistributeStmt) stmtNode() {}

// Query is one query of a DCASE condition: optionally name-tagged.
type Query struct {
	Tag     string
	Pattern []DistDim
}

// CaseArm is one condition-action pair of a DCASE construct.
type CaseArm struct {
	node
	Default bool
	Queries []Query
	Body    []Stmt
}

// SelectStmt is SELECT DCASE (A1,...,Ar) ... END SELECT.
type SelectStmt struct {
	node
	Selectors []string
	Arms      []CaseArm
}

func (*SelectStmt) stmtNode() {}

// IfStmt is IF (cond) THEN ... [ELSE ...] ENDIF.
type IfStmt struct {
	node
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*IfStmt) stmtNode() {}

// DoStmt is DO V = lo, hi [, step] ... ENDDO.
type DoStmt struct {
	node
	Var      string
	From, To Expr
	Step     Expr // nil = 1
	Body     []Stmt
}

func (*DoStmt) stmtNode() {}

// ForallStmt is the explicitly parallel loop FORALL V = lo, hi [, step]
// ... ENDFORALL: iterations are independent by assertion, so the engine
// may partition them by the owner-computes rule.
type ForallStmt struct {
	node
	Var      string
	From, To Expr
	Step     Expr // nil = 1
	Body     []Stmt
}

func (*ForallStmt) stmtNode() {}

// CallStmt is CALL NAME(args).
type CallStmt struct {
	node
	Name string
	Args []Expr
}

func (*CallStmt) stmtNode() {}

// AssignStmt is VAR = expr or ARR(idx...) = expr.
type AssignStmt struct {
	node
	LHS *Ref
	RHS Expr
}

func (*AssignStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface {
	Pos() Pos
	exprNode()
	String() string
}

// IntLit is an integer literal.
type IntLit struct {
	node
	Value int
}

func (*IntLit) exprNode()        {}
func (e *IntLit) String() string { return fmt.Sprint(e.Value) }

// Ref is a name, possibly subscripted: X, A(I,J), V(:,J), F(1:N:2, J).
// Unsubscripted scalars have nil Indices.  A Ref in call position may
// denote an intrinsic or routine reference; sema disambiguates.
type Ref struct {
	node
	Name    string
	Indices []Expr // each is an expression or *RangeIdx
}

func (*Ref) exprNode() {}
func (e *Ref) String() string {
	if e.Indices == nil {
		return e.Name
	}
	parts := make([]string, len(e.Indices))
	for i, ix := range e.Indices {
		parts[i] = ix.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

// RangeIdx is a section subscript lo:hi:step with any part omitted
// (V(:,J) has Lo=Hi=Step=nil in dimension 1).
type RangeIdx struct {
	node
	Lo, Hi, Step Expr
}

func (*RangeIdx) exprNode() {}
func (e *RangeIdx) String() string {
	s := ":"
	if e.Lo != nil {
		s = e.Lo.String() + ":"
	}
	if e.Hi != nil {
		s += e.Hi.String()
	}
	if e.Step != nil {
		s += ":" + e.Step.String()
	}
	return s
}

// BinExpr is a binary operation (arithmetic, comparison, logical).
type BinExpr struct {
	node
	Op   Kind
	L, R Expr
}

func (*BinExpr) exprNode() {}
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%v %v %v)", e.L, e.Op, e.R)
}

// UnExpr is unary minus or .NOT.
type UnExpr struct {
	node
	Op Kind
	X  Expr
}

func (*UnExpr) exprNode() {}
func (e *UnExpr) String() string {
	return fmt.Sprintf("(%v %v)", e.Op, e.X)
}

// IDTExpr is the intrinsic distribution test IDT(B, (pattern...)).
type IDTExpr struct {
	node
	Array   string
	Pattern []DistDim
}

func (*IDTExpr) exprNode() {}
func (e *IDTExpr) String() string {
	parts := make([]string, len(e.Pattern))
	for i, d := range e.Pattern {
		parts[i] = d.String()
	}
	return fmt.Sprintf("IDT(%s,(%s))", e.Array, strings.Join(parts, ","))
}
