package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer tokenizes Vienna Fortran subset source.  It is line-oriented:
// NEWLINE tokens separate statements; a trailing '&' (or a leading '&' on
// the continuation line, as in the paper's listings) joins lines;
// comments run from '!' to end of line, and lines starting with 'C ' or
// 'c ' in column one are comments (classic Fortran).  Keywords are case-
// insensitive; identifiers are upper-cased (Fortran semantics) and may
// contain '$' and '_' (for $NP and S_BLOCK-style names).
type Lexer struct {
	src    []rune
	pos    int
	line   int
	col    int
	err    error
	tokens []Token
}

// Lex tokenizes src, returning the token stream (ending with EOF).
func Lex(src string) ([]Token, error) {
	l := &Lexer{src: []rune(src), line: 1, col: 1}
	l.run()
	if l.err != nil {
		return nil, l.err
	}
	return l.tokens, nil
}

func (l *Lexer) errf(format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("%d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) emit(k Kind, text string, p Pos) {
	l.tokens = append(l.tokens, Token{Kind: k, Text: text, Pos: p})
}

func (l *Lexer) lastKind() Kind {
	if len(l.tokens) == 0 {
		return NEWLINE
	}
	return l.tokens[len(l.tokens)-1].Kind
}

func (l *Lexer) run() {
	atLineStart := true
	for l.pos < len(l.src) && l.err == nil {
		p := Pos{l.line, l.col}
		r := l.peek()
		switch {
		case r == '\n':
			l.advance()
			// collapse blank lines; suppress NEWLINE right after one
			if l.lastKind() != NEWLINE {
				l.emit(NEWLINE, "", p)
			}
			atLineStart = true
			continue
		case r == ' ' || r == '\t' || r == '\r':
			l.advance()
			continue
		case r == '!':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		case atLineStart && (r == 'C' || r == 'c') && (l.peek2() == ' ' || l.peek2() == '\t'):
			// classic comment line
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		case r == '&':
			// continuation: skip to (and including) the newline, plus a
			// possible leading '&' on the next line
			l.advance()
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			if l.pos < len(l.src) {
				l.advance() // the newline, not emitted
			}
			// skip leading whitespace and an optional leading '&'
			for l.pos < len(l.src) && (l.peek() == ' ' || l.peek() == '\t') {
				l.advance()
			}
			if l.peek() == '&' {
				l.advance()
			}
			atLineStart = false
			continue
		}
		atLineStart = false
		switch {
		case unicode.IsDigit(r):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
			l.emit(INT, string(l.src[start:l.pos]), p)
		case unicode.IsLetter(r) || r == '$' || r == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_' || l.peek() == '$') {
				l.advance()
			}
			word := strings.ToUpper(string(l.src[start:l.pos]))
			if k, ok := keywords[word]; ok {
				l.emit(k, word, p)
			} else {
				l.emit(IDENT, word, p)
			}
		case r == '.':
			// dotted operator .AND. etc — or a real literal (unsupported)
			l.advance()
			start := l.pos
			for l.pos < len(l.src) && unicode.IsLetter(l.peek()) {
				l.advance()
			}
			word := strings.ToUpper(string(l.src[start:l.pos]))
			if l.peek() != '.' {
				l.errf("malformed dotted operator .%s", word)
				return
			}
			l.advance()
			if k, ok := dotOps[word]; ok {
				l.emit(k, word, p)
			} else {
				l.errf("unknown operator .%s.", word)
				return
			}
		default:
			l.advance()
			switch r {
			case '(':
				l.emit(LPAREN, "", p)
			case ')':
				l.emit(RPAREN, "", p)
			case ',':
				l.emit(COMMA, "", p)
			case ':':
				if l.peek() == ':' {
					l.advance()
					l.emit(DCOLON, "", p)
				} else {
					l.emit(COLON, "", p)
				}
			case '=':
				l.emit(ASSIGN, "", p)
			case '*':
				l.emit(STAR, "", p)
			case '+':
				l.emit(PLUS, "", p)
			case '-':
				l.emit(MINUS, "", p)
			case '/':
				l.emit(SLASH, "", p)
			default:
				l.errf("unexpected character %q", r)
				return
			}
		}
	}
	if l.lastKind() != NEWLINE {
		l.emit(NEWLINE, "", Pos{l.line, l.col})
	}
	l.emit(EOF, "", Pos{l.line, l.col})
}
