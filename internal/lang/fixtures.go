package lang

// Verbatim-as-possible transcriptions of the paper's listings, used by
// tests, the analysis package, and cmd/vfanalyze as demonstration inputs.

// FixtureFig1 is Figure 1: "ADI iteration in Vienna Fortran".
const FixtureFig1 = `
PARAMETER (NX = 100, NY = 100)
REAL U(NX, NY), F(NX, NY) DIST (:, BLOCK)
REAL V(NX, NY) DYNAMIC, RANGE( (:, BLOCK), ( BLOCK, :)), &
&    DIST (:, BLOCK)

CALL RESID( V, U, F, NX, NY)

C Sweep over x-lines
DO J = 1, NY
  CALL TRIDIAG( V(:, J), NX)
ENDDO

DISTRIBUTE V :: ( BLOCK, : )

C Sweep over y-lines
DO I = 1, NX
  CALL TRIDIAG( V(I, :), NY)
ENDDO
`

// FixtureFig2 is Figure 2: "High level PIC code in Vienna Fortran".
// NPART-sized trailing dimensions are reduced to one for brevity, as the
// paper itself elides them ("...").
const FixtureFig2 = `
PARAMETER (NCELL = 1024, NPART = 32, MAX_TIME = 100)
INTEGER BOUNDS($NP)
REAL FIELD(NCELL, NPART) DYNAMIC, DIST( BLOCK, :)

C Compute initial position of particles
CALL INITPOS(FIELD, NCELL, NPART)
C Compute initial partition of cells
CALL BALANCE(BOUNDS, FIELD, NCELL, NPART)
DISTRIBUTE FIELD :: ( B_BLOCK (BOUNDS), : )

DO K = 1, MAX_TIME
C Compute new field
  CALL UPDATE_FIELD(FIELD, NCELL, NPART)
C Compute new particle positions and reassign them
  CALL UPDATE_PART(FIELD, NCELL, NPART)
C Rebalance every 10th iteration if necessary
  IF (REBAL .EQ. 1) THEN
    CALL BALANCE(BOUNDS, FIELD, NCELL, NPART)
    DISTRIBUTE FIELD :: ( B_BLOCK (BOUNDS), : )
  ENDIF
ENDDO
`

// FixtureExample2 is the declarations of paper Example 2.
const FixtureExample2 = `
PARAMETER (M = 16, N = 12)
PROCESSORS R2(1:2, 1:2)
REAL B1(M) DYNAMIC
REAL B2(N) DYNAMIC, DIST (BLOCK)
REAL B3(N,N), B4(N,N) DYNAMIC, RANGE ((BLOCK, BLOCK),(*,CYCLIC)), &
&    DIST ( BLOCK, CYCLIC) TO R2
REAL A1(N,N) DYNAMIC, CONNECT(=B4)
REAL A2(N,N) DYNAMIC, CONNECT A2(I,J) WITH B4(I,J)
`

// FixtureExample4 is the DCASE construct of paper Example 4, preceded by
// the declarations it needs and DISTRIBUTE statements that exercise every
// arm.
const FixtureExample4 = `
PARAMETER (M = 16, N = 12)
PROCESSORS R2(1:2, 1:2)
REAL B1(M) DYNAMIC
REAL B2(N) DYNAMIC, DIST(BLOCK)
REAL B3(N,N) DYNAMIC, RANGE ((BLOCK, BLOCK), (CYCLIC, CYCLIC(*)), (BLOCK, CYCLIC)), &
&    DIST( BLOCK, CYCLIC) TO R2

DISTRIBUTE B1 :: (BLOCK)

SELECT DCASE (B1,B2,B3)
CASE (BLOCK),(BLOCK),(CYCLIC(2),CYCLIC)
  X = 1
CASE B1: (CYCLIC), B3: ( BLOCK, *)
  X = 2
CASE B3: ( BLOCK, CYCLIC)
  X = 3
CASE DEFAULT
  X = 4
END SELECT
`

// FixtureADIStaticVsDynamic exercises the IF/IDT construct of §2.5.2.
const FixtureIDT = `
PARAMETER (N = 8)
REAL B1(N) DYNAMIC, DIST(CYCLIC)
REAL B3(N,N) DYNAMIC, DIST(BLOCK, :)

IF ( IDT(B1,(CYCLIC)) .AND. IDT(B3,(BLOCK(*))) ) THEN
  X = 2
ENDIF
`
