package lang

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("REAL V(NX, NY) DYNAMIC ! comment\nDISTRIBUTE V :: (BLOCK, :)\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KREAL, IDENT, LPAREN, IDENT, COMMA, IDENT, RPAREN, KDYNAMIC, NEWLINE,
		KDISTRIBUTE, IDENT, DCOLON, LPAREN, KBLOCK, COMMA, COLON, RPAREN, NEWLINE, EOF}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, toks[i].Kind, k, toks)
		}
	}
}

func TestLexContinuationAndComments(t *testing.T) {
	src := "REAL V(N) DYNAMIC, &\n&    DIST (BLOCK)\nC classic comment line\nX = 1\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	// the continuation must join the two lines: no NEWLINE between
	// DYNAMIC-comma and DIST
	sawDist := false
	for i, tk := range toks {
		if tk.Kind == KDIST {
			sawDist = true
			for j := 0; j < i; j++ {
				if toks[j].Kind == NEWLINE {
					t.Fatal("NEWLINE before DIST despite continuation")
				}
			}
		}
	}
	if !sawDist {
		t.Fatal("DIST token missing")
	}
}

func TestLexDottedOps(t *testing.T) {
	toks, err := Lex("IF (A .AND. .NOT. B .EQ. 3) THEN\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KIF, LPAREN, IDENT, AND, NOT, IDENT, EQ, INT, RPAREN, KTHEN, NEWLINE, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v want %v", i, toks[i].Kind, k)
		}
	}
	if _, err := Lex(".BOGUS. X"); err == nil {
		t.Fatal("unknown dotted op accepted")
	}
}

func TestLexDollarIdent(t *testing.T) {
	toks, err := Lex("INTEGER BOUNDS($NP)\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Kind != IDENT || toks[3].Text != "$NP" {
		t.Fatalf("$NP lexed as %v %q", toks[3].Kind, toks[3].Text)
	}
}

func TestParseFig1(t *testing.T) {
	prog := mustParse(t, FixtureFig1)
	// PARAMETER, Decl(U,F), Decl(V), CALL, DO, DISTRIBUTE, DO
	if len(prog.Stmts) != 7 {
		t.Fatalf("got %d statements, want 7: %#v", len(prog.Stmts), prog.Stmts)
	}
	uf, ok := prog.Stmts[1].(*DeclStmt)
	if !ok || len(uf.Names) != 2 || uf.Names[1].Name != "F" || uf.Dynamic {
		t.Fatalf("U,F declaration parsed wrong: %+v", prog.Stmts[1])
	}
	decl, ok := prog.Stmts[2].(*DeclStmt)
	if !ok {
		t.Fatalf("stmt 2 is %T", prog.Stmts[2])
	}
	if decl.Names[0].Name != "V" || !decl.Dynamic || len(decl.Range) != 2 || decl.Dist == nil {
		t.Fatalf("V declaration parsed wrong: %+v", decl)
	}
	if decl.Range[0].Dims[0].Kind != DElided || decl.Range[0].Dims[1].Kind != DBlock {
		t.Fatalf("range[0] = %v", decl.Range[0])
	}
	dstmt, ok := prog.Stmts[5].(*DistributeStmt)
	if !ok || dstmt.Names[0] != "V" || dstmt.Expr.Dims[0].Kind != DBlock || dstmt.Expr.Dims[1].Kind != DElided {
		t.Fatalf("DISTRIBUTE parsed wrong: %+v", prog.Stmts[5])
	}
	do, ok := prog.Stmts[6].(*DoStmt)
	if !ok || do.Var != "I" || len(do.Body) != 1 {
		t.Fatalf("second DO parsed wrong: %+v", prog.Stmts[6])
	}
	call := do.Body[0].(*CallStmt)
	if call.Name != "TRIDIAG" || len(call.Args) != 2 {
		t.Fatalf("call parsed wrong: %+v", call)
	}
	// V(I, :) — second subscript is a section
	ref := call.Args[0].(*Ref)
	if ref.Name != "V" {
		t.Fatal("arg 0 should reference V")
	}
	if _, ok := ref.Indices[1].(*RangeIdx); !ok {
		t.Fatalf("V(I,:) second index is %T", ref.Indices[1])
	}
}

func TestParseFig2(t *testing.T) {
	prog := mustParse(t, FixtureFig2)
	var distributes []*DistributeStmt
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *DistributeStmt:
				distributes = append(distributes, st)
			case *DoStmt:
				walk(st.Body)
			case *IfStmt:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(prog.Stmts)
	if len(distributes) != 2 {
		t.Fatalf("found %d DISTRIBUTE statements, want 2", len(distributes))
	}
	for _, d := range distributes {
		if d.Expr.Dims[0].Kind != DBBlock {
			t.Fatalf("expected B_BLOCK component: %v", d.Expr)
		}
		arg, ok := d.Expr.Dims[0].Arg.(*Ref)
		if !ok || arg.Name != "BOUNDS" {
			t.Fatalf("B_BLOCK argument: %v", d.Expr.Dims[0].Arg)
		}
	}
}

func TestParseExample2(t *testing.T) {
	prog := mustParse(t, FixtureExample2)
	// B3, B4 share one declaration
	var b34 *DeclStmt
	for _, s := range prog.Stmts {
		if d, ok := s.(*DeclStmt); ok && len(d.Names) == 2 && d.Names[0].Name == "B3" {
			b34 = d
		}
	}
	if b34 == nil {
		t.Fatal("B3,B4 declaration not found")
	}
	if !b34.Dynamic || len(b34.Range) != 2 || b34.Dist == nil || b34.Dist.Target != "R2" {
		t.Fatalf("B3/B4 annotations: %+v", b34)
	}
	if b34.Range[1].Dims[0].Kind != DAny || b34.Range[1].Dims[1].Kind != DCyclic {
		t.Fatalf("range[1] = %v", b34.Range[1])
	}
	// A1: extraction; A2: alignment
	var a1, a2 *DeclStmt
	for _, s := range prog.Stmts {
		if d, ok := s.(*DeclStmt); ok && len(d.Names) == 1 {
			switch d.Names[0].Name {
			case "A1":
				a1 = d
			case "A2":
				a2 = d
			}
		}
	}
	if a1 == nil || a1.Connect == nil || a1.Connect.Extract != "B4" {
		t.Fatalf("A1 connect: %+v", a1)
	}
	if a2 == nil || a2.Connect == nil || a2.Connect.Align == nil || a2.Connect.Align.DstName != "B4" {
		t.Fatalf("A2 connect: %+v", a2)
	}
}

func TestParseExample4DCase(t *testing.T) {
	prog := mustParse(t, FixtureExample4)
	var sel *SelectStmt
	for _, s := range prog.Stmts {
		if ss, ok := s.(*SelectStmt); ok {
			sel = ss
		}
	}
	if sel == nil {
		t.Fatal("SELECT DCASE not found")
	}
	if len(sel.Selectors) != 3 || sel.Selectors[2] != "B3" {
		t.Fatalf("selectors = %v", sel.Selectors)
	}
	if len(sel.Arms) != 4 {
		t.Fatalf("arms = %d", len(sel.Arms))
	}
	// arm 1: positional, 3 queries
	if len(sel.Arms[0].Queries) != 3 || sel.Arms[0].Queries[0].Tag != "" {
		t.Fatalf("arm 1: %+v", sel.Arms[0].Queries)
	}
	if sel.Arms[0].Queries[2].Pattern[0].Kind != DCyclic {
		t.Fatalf("arm 1 query 3: %v", sel.Arms[0].Queries[2].Pattern)
	}
	// arm 2: name-tagged
	if sel.Arms[1].Queries[0].Tag != "B1" || sel.Arms[1].Queries[1].Tag != "B3" {
		t.Fatalf("arm 2 tags: %+v", sel.Arms[1].Queries)
	}
	if sel.Arms[1].Queries[1].Pattern[1].Kind != DAny {
		t.Fatalf("arm 2 B3 pattern: %v", sel.Arms[1].Queries[1].Pattern)
	}
	// arm 4: DEFAULT
	if !sel.Arms[3].Default {
		t.Fatal("arm 4 should be DEFAULT")
	}
	// bodies are assignments X = k
	for i, arm := range sel.Arms {
		as, ok := arm.Body[0].(*AssignStmt)
		if !ok {
			t.Fatalf("arm %d body: %T", i+1, arm.Body[0])
		}
		if as.RHS.(*IntLit).Value != i+1 {
			t.Fatalf("arm %d assigns %v", i+1, as.RHS)
		}
	}
}

func TestParseIDT(t *testing.T) {
	prog := mustParse(t, FixtureIDT)
	ifs, ok := prog.Stmts[len(prog.Stmts)-1].(*IfStmt)
	if !ok {
		t.Fatalf("last stmt: %T", prog.Stmts[len(prog.Stmts)-1])
	}
	b, ok := ifs.Cond.(*BinExpr)
	if !ok || b.Op != AND {
		t.Fatalf("cond: %v", ifs.Cond)
	}
	l, ok := b.L.(*IDTExpr)
	if !ok || l.Array != "B1" || l.Pattern[0].Kind != DCyclic {
		t.Fatalf("left IDT: %v", b.L)
	}
	r, ok := b.R.(*IDTExpr)
	if !ok || r.Array != "B3" {
		t.Fatalf("right IDT: %v", b.R)
	}
	// BLOCK(*) normalizes to BLOCK with ArgAny
	if r.Pattern[0].Kind != DBlock || !r.Pattern[0].ArgAny {
		t.Fatalf("BLOCK(*) pattern: %+v", r.Pattern[0])
	}
}

func TestParseNoTransfer(t *testing.T) {
	prog := mustParse(t, `
REAL B(8), A(8) DYNAMIC
DISTRIBUTE B :: (CYCLIC(3)) NOTRANSFER (A)
`)
	d := prog.Stmts[1].(*DistributeStmt)
	if len(d.NoTransfer) != 1 || d.NoTransfer[0] != "A" {
		t.Fatalf("notransfer: %v", d.NoTransfer)
	}
	if d.Expr.Dims[0].Kind != DCyclic || d.Expr.Dims[0].Arg.(*IntLit).Value != 3 {
		t.Fatalf("expr: %v", d.Expr)
	}
}

func TestParseDistributeAlignForm(t *testing.T) {
	prog := mustParse(t, `
REAL B(8,8), C(8,8) DYNAMIC
DISTRIBUTE B :: B(I,J) WITH C(J,I)
`)
	d := prog.Stmts[1].(*DistributeStmt)
	if d.Align == nil || d.Align.DstName != "C" || len(d.Align.SrcIdx) != 2 {
		t.Fatalf("align form: %+v", d.Align)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"DISTRIBUTE :: (BLOCK)\n",          // missing name
		"REAL\n",                           // missing declarator
		"DO I = 1 10\nENDDO\n",             // missing comma
		"SELECT DCASE (A)\nCASE (BLOCK)\n", // unterminated
		"IF (X) THEN\n",                    // unterminated
		"X = \n",                           // missing RHS
		"PROCESSORS (1:4)\n",               // missing name
		"DISTRIBUTE B :: (WHAT)\n",         // bad component
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid program %q", src)
		}
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	prog := mustParse(t, "X = 1 + 2 * 3 - 4 / 2\n")
	as := prog.Stmts[0].(*AssignStmt)
	// ((1 + (2*3)) - (4/2))
	s := as.RHS.String()
	if !strings.Contains(s, "(2 * 3)") || !strings.Contains(s, "(4 / 2)") {
		t.Fatalf("precedence wrong: %s", s)
	}
}

func TestParseSectionSubscripts(t *testing.T) {
	prog := mustParse(t, "CALL F(V(2:8:2, :), U(1:, :5))\n")
	call := prog.Stmts[0].(*CallStmt)
	v := call.Args[0].(*Ref)
	ri := v.Indices[0].(*RangeIdx)
	if ri.Lo.(*IntLit).Value != 2 || ri.Hi.(*IntLit).Value != 8 || ri.Step.(*IntLit).Value != 2 {
		t.Fatalf("triplet: %v", ri)
	}
	u := call.Args[1].(*Ref)
	if u.Indices[0].(*RangeIdx).Lo == nil || u.Indices[0].(*RangeIdx).Hi != nil {
		t.Fatalf("open range: %v", u.Indices[0])
	}
	if u.Indices[1].(*RangeIdx).Hi.(*IntLit).Value != 5 {
		t.Fatalf(":5 range: %v", u.Indices[1])
	}
}

func TestParseForall(t *testing.T) {
	prog := mustParse(t, `
FORALL I = 1, 8, 2
  A(I) = I
END FORALL
FORALL J = 1, 4
  B(J) = J
ENDFORALL
`)
	f1, ok := prog.Stmts[0].(*ForallStmt)
	if !ok || f1.Var != "I" || f1.Step == nil || len(f1.Body) != 1 {
		t.Fatalf("forall 1: %+v", prog.Stmts[0])
	}
	f2, ok := prog.Stmts[1].(*ForallStmt)
	if !ok || f2.Var != "J" || f2.Step != nil {
		t.Fatalf("forall 2: %+v", prog.Stmts[1])
	}
	if _, err := Parse("FORALL I = 1, 4\n"); err == nil {
		t.Fatal("unterminated FORALL accepted")
	}
}

func TestStringersAndPositions(t *testing.T) {
	prog := mustParse(t, `
REAL D(4,4) ALIGN D(I,J) WITH C(J,2*I+1)
DISTRIBUTE D :: (=B1, CYCLIC(3)) TO R
X = IDT(D,(B_BLOCK(*), S_BLOCK(*)))
`)
	decl := prog.Stmts[0].(*DeclStmt)
	if s := decl.Align.String(); !strings.Contains(s, "WITH C") {
		t.Fatalf("align string: %s", s)
	}
	d := prog.Stmts[1].(*DistributeStmt)
	if s := d.Expr.String(); !strings.Contains(s, "=B1") || !strings.Contains(s, "TO R") {
		t.Fatalf("dist expr string: %s", s)
	}
	as := prog.Stmts[2].(*AssignStmt)
	if s := as.RHS.String(); !strings.Contains(s, "IDT(D") {
		t.Fatalf("idt string: %s", s)
	}
	if prog.Stmts[0].Pos().Line != 2 {
		t.Fatalf("pos: %v", prog.Stmts[0].Pos())
	}
}

func TestKindStringer(t *testing.T) {
	for k := EOF; k <= KIDT; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
	if Kind(999).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
