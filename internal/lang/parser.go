package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for the Vienna Fortran subset.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses src into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.at(EOF) {
		if p.at(NEWLINE) {
			p.next()
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

func (p *Parser) cur() Token     { return p.toks[p.pos] }
func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekKind(ahead int) Kind {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return EOF
	}
	return p.toks[i].Kind
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("%v: %s (at %q)", t.Pos, fmt.Sprintf(format, args...), t.String())
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %v", k)
	}
	return p.next(), nil
}

func (p *Parser) expectEOL() error {
	if p.at(EOF) {
		return nil
	}
	if _, err := p.expect(NEWLINE); err != nil {
		return err
	}
	return nil
}

// statement parses one statement (consuming its trailing NEWLINE).
func (p *Parser) statement() (Stmt, error) {
	switch p.cur().Kind {
	case KPARAMETER:
		return p.parameterStmt()
	case KPROCESSORS:
		return p.processorsStmt()
	case KREAL, KINTEGER:
		return p.declStmt()
	case KDISTRIBUTE:
		return p.distributeStmt()
	case KSELECT:
		return p.selectStmt()
	case KIF:
		return p.ifStmt()
	case KDO:
		return p.doStmt()
	case KFORALL:
		return p.forallStmt()
	case KCALL:
		return p.callStmt()
	case IDENT:
		return p.assignStmt()
	}
	return nil, p.errf("unexpected statement start")
}

func (p *Parser) parameterStmt() (Stmt, error) {
	s := &ParameterStmt{node: node{p.next().Pos}}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Defs = append(s.Defs, ParamDef{Name: name.Text, Value: val})
		if p.at(COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return s, p.expectEOL()
}

// bound parses "lo:hi" or "extent" (lo nil).
func (p *Parser) bound() ([2]Expr, error) {
	var b [2]Expr
	e, err := p.expr()
	if err != nil {
		return b, err
	}
	if p.at(COLON) {
		p.next()
		hi, err := p.expr()
		if err != nil {
			return b, err
		}
		b[0], b[1] = e, hi
	} else {
		b[1] = e
	}
	return b, nil
}

func (p *Parser) boundList() ([][2]Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var out [][2]Expr
	for {
		b, err := p.bound()
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		if p.at(COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) processorsStmt() (Stmt, error) {
	s := &ProcessorsStmt{node: node{p.next().Pos}}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	s.Name = name.Text
	s.Bounds, err = p.boundList()
	if err != nil {
		return nil, err
	}
	return s, p.expectEOL()
}

func (p *Parser) declStmt() (Stmt, error) {
	t := p.next()
	s := &DeclStmt{node: node{t.Pos}, ElemType: t.Text}
	// declared names
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		dn := DeclName{Name: name.Text}
		if p.at(LPAREN) {
			dims, err := p.boundList()
			if err != nil {
				return nil, err
			}
			dn.Dims = dims
		}
		s.Names = append(s.Names, dn)
		// another declared name only if "COMMA IDENT (LPAREN|COMMA|annotation-break)"
		if p.at(COMMA) && p.peekKind(1) == IDENT {
			p.next()
			continue
		}
		break
	}
	// annotations, separated by optional commas
	for {
		if p.at(COMMA) {
			p.next()
			continue
		}
		switch p.cur().Kind {
		case KDIST:
			p.next()
			de, err := p.distExpr()
			if err != nil {
				return nil, err
			}
			s.Dist = de
		case KDYNAMIC:
			p.next()
			s.Dynamic = true
		case KRANGE:
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			for {
				if _, err := p.expect(LPAREN); err != nil {
					return nil, err
				}
				dims, err := p.distDims()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(RPAREN); err != nil {
					return nil, err
				}
				s.Range = append(s.Range, DistExpr{Dims: dims})
				if p.at(COMMA) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
		case KCONNECT:
			p.next()
			c := &ConnectAnn{}
			if p.at(LPAREN) && p.peekKind(1) == ASSIGN {
				p.next()
				p.next()
				name, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				c.Extract = name.Text
				if _, err := p.expect(RPAREN); err != nil {
					return nil, err
				}
			} else {
				al, err := p.alignSpec()
				if err != nil {
					return nil, err
				}
				c.Align = al
			}
			s.Connect = c
		case KALIGN:
			p.next()
			al, err := p.alignSpec()
			if err != nil {
				return nil, err
			}
			s.Align = al
		default:
			return s, p.expectEOL()
		}
	}
}

// distExpr parses "( dims )" optionally followed by "TO NAME".
func (p *Parser) distExpr() (*DistExpr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	dims, err := p.distDims()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	de := &DistExpr{Dims: dims}
	if p.at(KTO) {
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		de.Target = name.Text
	}
	return de, nil
}

// distDims parses a comma-separated component list (without the outer
// parentheses).
func (p *Parser) distDims() ([]DistDim, error) {
	var out []DistDim
	for {
		d, err := p.distDim()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		if p.at(COMMA) {
			p.next()
			continue
		}
		return out, nil
	}
}

func (p *Parser) distDim() (DistDim, error) {
	switch p.cur().Kind {
	case KBLOCK:
		p.next()
		// BLOCK(*) appears in the paper's IF example as shorthand for
		// "(BLOCK, *)"; accept and normalize to BLOCK with ArgAny.
		if p.at(LPAREN) && p.peekKind(1) == STAR {
			p.next()
			p.next()
			if _, err := p.expect(RPAREN); err != nil {
				return DistDim{}, err
			}
			return DistDim{Kind: DBlock, ArgAny: true}, nil
		}
		return DistDim{Kind: DBlock}, nil
	case KCYCLIC:
		p.next()
		d := DistDim{Kind: DCyclic}
		if p.at(LPAREN) {
			p.next()
			if p.at(STAR) {
				p.next()
				d.ArgAny = true
			} else {
				arg, err := p.expr()
				if err != nil {
					return d, err
				}
				d.Arg = arg
			}
			if _, err := p.expect(RPAREN); err != nil {
				return d, err
			}
		}
		return d, nil
	case KSBLOCK, KBBLOCK:
		kind := DSBlock
		if p.cur().Kind == KBBLOCK {
			kind = DBBlock
		}
		p.next()
		d := DistDim{Kind: kind}
		if p.at(LPAREN) {
			p.next()
			if p.at(STAR) {
				p.next()
				d.ArgAny = true
			} else {
				for {
					arg, err := p.expr()
					if err != nil {
						return d, err
					}
					d.Args = append(d.Args, arg)
					if p.at(COMMA) {
						p.next()
						continue
					}
					break
				}
				d.Arg = d.Args[0]
			}
			if _, err := p.expect(RPAREN); err != nil {
				return d, err
			}
		}
		return d, nil
	case COLON:
		p.next()
		return DistDim{Kind: DElided}, nil
	case STAR:
		p.next()
		return DistDim{Kind: DAny}, nil
	case ASSIGN:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return DistDim{}, err
		}
		return DistDim{Kind: DExtract, From: name.Text}, nil
	}
	return DistDim{}, p.errf("expected distribution component")
}

// alignSpec parses "A(I,J) WITH B(J,2*I+1,3)".
func (p *Parser) alignSpec() (*AlignSpec, error) {
	src, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	al := &AlignSpec{SrcName: src.Text}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for {
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		al.SrcIdx = append(al.SrcIdx, id.Text)
		if p.at(COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(KWITH); err != nil {
		return nil, err
	}
	dst, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	al.DstName = dst.Text
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		al.DstIdx = append(al.DstIdx, e)
		if p.at(COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return al, nil
}

func (p *Parser) distributeStmt() (Stmt, error) {
	s := &DistributeStmt{node: node{p.next().Pos}}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		s.Names = append(s.Names, name.Text)
		if p.at(COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(DCOLON); err != nil {
		return nil, err
	}
	if p.at(LPAREN) {
		de, err := p.distExpr()
		if err != nil {
			return nil, err
		}
		s.Expr = de
	} else {
		al, err := p.alignSpec()
		if err != nil {
			return nil, err
		}
		s.Align = al
	}
	if p.at(KNOTRANSFER) {
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		for {
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			s.NoTransfer = append(s.NoTransfer, name.Text)
			if p.at(COMMA) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	return s, p.expectEOL()
}

func (p *Parser) selectStmt() (Stmt, error) {
	s := &SelectStmt{node: node{p.next().Pos}}
	if _, err := p.expect(KDCASE); err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		s.Selectors = append(s.Selectors, name.Text)
		if p.at(COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	for {
		for p.at(NEWLINE) {
			p.next()
		}
		if p.at(KEND) {
			p.next()
			if _, err := p.expect(KSELECT); err != nil {
				return nil, err
			}
			return s, p.expectEOL()
		}
		if _, err := p.expect(KCASE); err != nil {
			return nil, err
		}
		arm := CaseArm{node: node{p.toks[p.pos-1].Pos}}
		if p.at(KDEFAULT) {
			p.next()
			arm.Default = true
		} else {
			for {
				q := Query{}
				if p.at(IDENT) && p.peekKind(1) == COLON {
					q.Tag = p.next().Text
					p.next()
				}
				if _, err := p.expect(LPAREN); err != nil {
					return nil, err
				}
				dims, err := p.distDims()
				if err != nil {
					return nil, err
				}
				// tolerate the paper's stray extra ')' in Example 4
				q.Pattern = dims
				if _, err := p.expect(RPAREN); err != nil {
					return nil, err
				}
				arm.Queries = append(arm.Queries, q)
				if p.at(COMMA) {
					p.next()
					continue
				}
				break
			}
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		// body: statements until CASE or END SELECT
		for {
			for p.at(NEWLINE) {
				p.next()
			}
			if p.at(KCASE) || (p.at(KEND) && p.peekKind(1) == KSELECT) {
				break
			}
			if p.at(EOF) {
				return nil, p.errf("unterminated DCASE construct")
			}
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			arm.Body = append(arm.Body, st)
		}
		s.Arms = append(s.Arms, arm)
	}
}

func (p *Parser) ifStmt() (Stmt, error) {
	s := &IfStmt{node: node{p.next().Pos}}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	s.Cond = cond
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(KTHEN); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	inElse := false
	for {
		for p.at(NEWLINE) {
			p.next()
		}
		switch {
		case p.at(KENDIF):
			p.next()
			return s, p.expectEOL()
		case p.at(KEND) && p.peekKind(1) == KIF:
			p.next()
			p.next()
			return s, p.expectEOL()
		case p.at(KELSE):
			p.next()
			if err := p.expectEOL(); err != nil {
				return nil, err
			}
			inElse = true
		case p.at(EOF):
			return nil, p.errf("unterminated IF")
		default:
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			if inElse {
				s.Else = append(s.Else, st)
			} else {
				s.Then = append(s.Then, st)
			}
		}
	}
}

func (p *Parser) doStmt() (Stmt, error) {
	s := &DoStmt{node: node{p.next().Pos}}
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	s.Var = v.Text
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	if s.From, err = p.expr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	if s.To, err = p.expr(); err != nil {
		return nil, err
	}
	if p.at(COMMA) {
		p.next()
		if s.Step, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	for {
		for p.at(NEWLINE) {
			p.next()
		}
		switch {
		case p.at(KENDDO):
			p.next()
			return s, p.expectEOL()
		case p.at(KEND) && p.peekKind(1) == KDO:
			p.next()
			p.next()
			return s, p.expectEOL()
		case p.at(EOF):
			return nil, p.errf("unterminated DO")
		default:
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			s.Body = append(s.Body, st)
		}
	}
}

func (p *Parser) forallStmt() (Stmt, error) {
	s := &ForallStmt{node: node{p.next().Pos}}
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	s.Var = v.Text
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	if s.From, err = p.expr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	if s.To, err = p.expr(); err != nil {
		return nil, err
	}
	if p.at(COMMA) {
		p.next()
		if s.Step, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	for {
		for p.at(NEWLINE) {
			p.next()
		}
		switch {
		case p.at(KENDFORALL):
			p.next()
			return s, p.expectEOL()
		case p.at(KEND) && p.peekKind(1) == KFORALL:
			p.next()
			p.next()
			return s, p.expectEOL()
		case p.at(EOF):
			return nil, p.errf("unterminated FORALL")
		default:
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			s.Body = append(s.Body, st)
		}
	}
}

func (p *Parser) callStmt() (Stmt, error) {
	s := &CallStmt{node: node{p.next().Pos}}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	s.Name = name.Text
	if p.at(LPAREN) {
		p.next()
		if !p.at(RPAREN) {
			for {
				a, err := p.indexExpr()
				if err != nil {
					return nil, err
				}
				s.Args = append(s.Args, a)
				if p.at(COMMA) {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	return s, p.expectEOL()
}

func (p *Parser) assignStmt() (Stmt, error) {
	ref, err := p.refExpr()
	if err != nil {
		return nil, err
	}
	s := &AssignStmt{node: node{ref.Pos()}, LHS: ref}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	if s.RHS, err = p.expr(); err != nil {
		return nil, err
	}
	return s, p.expectEOL()
}

// --- expressions ---

// expr parses with precedence: OR < AND < NOT < comparison < additive <
// multiplicative < unary.
func (p *Parser) expr() (Expr, error) { return p.orExpr() }

func (p *Parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(OR) {
		pos := p.next().Pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{node: node{pos}, Op: OR, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.at(AND) {
		pos := p.next().Pos
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{node: node{pos}, Op: AND, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) notExpr() (Expr, error) {
	if p.at(NOT) {
		pos := p.next().Pos
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{node: node{pos}, Op: NOT, X: x}, nil
	}
	return p.cmpExpr()
}

func (p *Parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case EQ, NE, LT, LE, GT, GE:
		op := p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{node: node{op.Pos}, Op: op.Kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(PLUS) || p.at(MINUS) {
		op := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{node: node{op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(STAR) || p.at(SLASH) {
		op := p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{node: node{op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) unaryExpr() (Expr, error) {
	if p.at(MINUS) {
		pos := p.next().Pos
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{node: node{pos}, Op: MINUS, X: x}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	switch p.cur().Kind {
	case INT:
		t := p.next()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errf("bad integer %s", t.Text)
		}
		return &IntLit{node: node{t.Pos}, Value: v}, nil
	case IDENT:
		return p.refExpr()
	case KIDT:
		t := p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		dims, err := p.distDims()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &IDTExpr{node: node{t.Pos}, Array: name.Text, Pattern: dims}, nil
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression")
}

// refExpr parses NAME or NAME(index, ...) where an index may be a section
// subscript (":" / "lo:hi[:step]").
func (p *Parser) refExpr() (*Ref, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	r := &Ref{node: node{name.Pos}, Name: name.Text}
	if !p.at(LPAREN) {
		return r, nil
	}
	p.next()
	for {
		ix, err := p.indexExpr()
		if err != nil {
			return nil, err
		}
		r.Indices = append(r.Indices, ix)
		if p.at(COMMA) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return r, nil
}

// indexExpr parses one subscript: an expression, possibly extended into a
// section triplet with ':'.
func (p *Parser) indexExpr() (Expr, error) {
	if p.at(COLON) {
		// ":" or ":hi[:step]"
		pos := p.next().Pos
		ri := &RangeIdx{node: node{pos}}
		if !p.at(COMMA) && !p.at(RPAREN) && !p.at(COLON) {
			hi, err := p.expr()
			if err != nil {
				return nil, err
			}
			ri.Hi = hi
		}
		if p.at(COLON) {
			p.next()
			st, err := p.expr()
			if err != nil {
				return nil, err
			}
			ri.Step = st
		}
		return ri, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(COLON) {
		return e, nil
	}
	pos := p.next().Pos
	ri := &RangeIdx{node: node{pos}, Lo: e}
	if !p.at(COMMA) && !p.at(RPAREN) && !p.at(COLON) {
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		ri.Hi = hi
	}
	if p.at(COLON) {
		p.next()
		st, err := p.expr()
		if err != nil {
			return nil, err
		}
		ri.Step = st
	}
	return ri, nil
}
