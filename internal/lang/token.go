// Package lang is the front end for the Vienna Fortran subset this
// repository reproduces: a lexer, an AST, and a recursive-descent parser
// covering the declaration annotations of paper §2 (DIST, DYNAMIC, RANGE,
// CONNECT, ALIGN ... WITH, TO), the executable DISTRIBUTE statement with
// NOTRANSFER, the DCASE construct, IF with the IDT intrinsic, DO loops,
// assignments and calls — enough to parse the paper's Figures 1 and 2 and
// Examples 1–4 verbatim (modulo Fortran column conventions: comments use
// '!' or a leading 'C ', continuations use a trailing '&').
//
// The parsed programs feed internal/sem (static semantics: connect
// classes, range conformance) and internal/analysis (the reaching-
// distribution analysis of §3.1).
package lang

import "fmt"

// Kind is a token kind.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	NEWLINE
	IDENT
	INT

	LPAREN
	RPAREN
	COMMA
	COLON
	DCOLON // ::
	ASSIGN // =
	STAR
	PLUS
	MINUS
	SLASH

	// .AND. .OR. .NOT. .EQ. .NE. .LT. .LE. .GT. .GE.
	AND
	OR
	NOT
	EQ
	NE
	LT
	LE
	GT
	GE

	// keywords
	KPARAMETER
	KPROCESSORS
	KREAL
	KINTEGER
	KDIST
	KDYNAMIC
	KRANGE
	KCONNECT
	KALIGN
	KWITH
	KTO
	KNOTRANSFER
	KDISTRIBUTE
	KSELECT
	KDCASE
	KCASE
	KDEFAULT
	KEND
	KENDIF
	KENDDO
	KIF
	KTHEN
	KELSE
	KDO
	KFORALL
	KENDFORALL
	KCALL
	KBLOCK
	KCYCLIC
	KSBLOCK
	KBBLOCK
	KIDT
)

var kindNames = map[Kind]string{
	EOF: "end of file", NEWLINE: "end of line", IDENT: "identifier", INT: "integer",
	LPAREN: "(", RPAREN: ")", COMMA: ",", COLON: ":", DCOLON: "::", ASSIGN: "=",
	STAR: "*", PLUS: "+", MINUS: "-", SLASH: "/",
	AND: ".AND.", OR: ".OR.", NOT: ".NOT.", EQ: ".EQ.", NE: ".NE.",
	LT: ".LT.", LE: ".LE.", GT: ".GT.", GE: ".GE.",
	KPARAMETER: "PARAMETER", KPROCESSORS: "PROCESSORS", KREAL: "REAL",
	KINTEGER: "INTEGER", KDIST: "DIST", KDYNAMIC: "DYNAMIC", KRANGE: "RANGE",
	KCONNECT: "CONNECT", KALIGN: "ALIGN", KWITH: "WITH", KTO: "TO",
	KNOTRANSFER: "NOTRANSFER", KDISTRIBUTE: "DISTRIBUTE", KSELECT: "SELECT",
	KDCASE: "DCASE", KCASE: "CASE", KDEFAULT: "DEFAULT", KEND: "END",
	KENDIF: "ENDIF", KENDDO: "ENDDO", KIF: "IF", KTHEN: "THEN", KELSE: "ELSE",
	KDO: "DO", KFORALL: "FORALL", KENDFORALL: "ENDFORALL", KCALL: "CALL", KBLOCK: "BLOCK", KCYCLIC: "CYCLIC",
	KSBLOCK: "S_BLOCK", KBBLOCK: "B_BLOCK", KIDT: "IDT",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"PARAMETER": KPARAMETER, "PROCESSORS": KPROCESSORS, "REAL": KREAL,
	"INTEGER": KINTEGER, "DIST": KDIST, "DYNAMIC": KDYNAMIC, "RANGE": KRANGE,
	"CONNECT": KCONNECT, "ALIGN": KALIGN, "WITH": KWITH, "TO": KTO,
	"NOTRANSFER": KNOTRANSFER, "DISTRIBUTE": KDISTRIBUTE, "SELECT": KSELECT,
	"DCASE": KDCASE, "CASE": KCASE, "DEFAULT": KDEFAULT, "END": KEND,
	"ENDIF": KENDIF, "ENDDO": KENDDO, "IF": KIF, "THEN": KTHEN, "ELSE": KELSE,
	"DO": KDO, "FORALL": KFORALL, "ENDFORALL": KENDFORALL, "CALL": KCALL, "BLOCK": KBLOCK, "CYCLIC": KCYCLIC,
	"S_BLOCK": KSBLOCK, "B_BLOCK": KBBLOCK, "IDT": KIDT,
}

var dotOps = map[string]Kind{
	"AND": AND, "OR": OR, "NOT": NOT, "EQ": EQ, "NE": NE,
	"LT": LT, "LE": LE, "GT": GT, "GE": GE,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Kind Kind
	Text string // identifier text (upper-cased) or integer literal
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Text
	}
	return t.Kind.String()
}
