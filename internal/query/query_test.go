package query

import (
	"strings"
	"testing"

	"repro/internal/dist"
)

// fakeSel is a minimal Selector for tests.
type fakeSel struct {
	name string
	typ  dist.Type
	has  bool
}

func (f *fakeSel) QueryName() string   { return f.name }
func (f *fakeSel) Distributed() bool   { return f.has }
func (f *fakeSel) DistType() dist.Type { return f.typ }

func sel(name string, dims ...dist.DimSpec) *fakeSel {
	return &fakeSel{name: name, typ: dist.NewType(dims...), has: true}
}

func TestIDT(t *testing.T) {
	b := sel("B", dist.BlockDim(), dist.CyclicDim(2))
	if !IDT(b, dist.NewPattern(dist.PBlock(), dist.PCyclic(2))) {
		t.Error("exact IDT failed")
	}
	if IDT(b, dist.NewPattern(dist.PCyclic(2))) {
		t.Error("wrong leading dim matched")
	}
	if !IDT(b, dist.NewPattern(dist.PBlock())) {
		t.Error("short pattern (implicit *) failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("IDT on undistributed selector should panic")
		}
	}()
	IDT(&fakeSel{name: "U"}, dist.AnyPattern())
}

// TestPaperExample4 executes the dcase construct of paper Example 4 under
// several distribution assignments and checks which arm runs.
func TestPaperExample4(t *testing.T) {
	build := func(t1, t2, t3 dist.Type) (*DCase, *[]string) {
		log := &[]string{}
		act := func(name string) func() error {
			return func() error { *log = append(*log, name); return nil }
		}
		b1 := &fakeSel{name: "B1", typ: t1, has: true}
		b2 := &fakeSel{name: "B2", typ: t2, has: true}
		b3 := &fakeSel{name: "B3", typ: t3, has: true}
		d := Select(b1, b2, b3).
			// CASE (BLOCK),(BLOCK),(CYCLIC(2),CYCLIC)
			Case(act("a1"),
				P(dist.NewPattern(dist.PBlock())),
				P(dist.NewPattern(dist.PBlock())),
				P(dist.NewPattern(dist.PCyclic(2), dist.PCyclic(1)))).
			// CASE B1: (CYCLIC), B3: (BLOCK, *)
			Case(act("a2"),
				On("B1", dist.NewPattern(dist.PCyclic(1))),
				On("B3", dist.NewPattern(dist.PBlock(), dist.PAny()))).
			// CASE B3: (BLOCK, CYCLIC)
			Case(act("a3"),
				On("B3", dist.NewPattern(dist.PBlock(), dist.PCyclic(1)))).
			Default(act("a4"))
		return d, log
	}

	block := dist.NewType(dist.BlockDim())
	cyclic := dist.NewType(dist.CyclicDim(1))

	// t1=t2=(BLOCK), t3=(CYCLIC(2),CYCLIC): first query list matches
	d, log := build(block, block, dist.NewType(dist.CyclicDim(2), dist.CyclicDim(1)))
	if m, err := d.Run(); err != nil || m != 0 || (*log)[0] != "a1" {
		t.Fatalf("case 1: m=%d err=%v log=%v", m, err, log)
	}

	// t1=(CYCLIC), t3=(BLOCK, anything), t2 irrelevant: a2
	d, log = build(cyclic, dist.NewType(dist.SBlockDim(1)), dist.NewType(dist.BlockDim(), dist.CyclicDim(7)))
	if m, _ := d.Run(); m != 1 || (*log)[0] != "a2" {
		t.Fatalf("case 2: m=%d log=%v", m, log)
	}

	// t3=(BLOCK,CYCLIC), t1/t2 irrelevant: a3
	d, log = build(block, block, dist.NewType(dist.BlockDim(), dist.CyclicDim(1)))
	if m, _ := d.Run(); m != 2 || (*log)[0] != "a3" {
		t.Fatalf("case 3: m=%d log=%v", m, log)
	}

	// nothing matches: DEFAULT (a4)
	d, log = build(cyclic, block, dist.NewType(dist.CyclicDim(1), dist.CyclicDim(1)))
	if m, _ := d.Run(); m != 3 || (*log)[0] != "a4" {
		t.Fatalf("case 4: m=%d log=%v", m, log)
	}
}

func TestDCaseFirstMatchWins(t *testing.T) {
	b := sel("B", dist.BlockDim())
	order := []string{}
	m, err := Select(b).
		Case(func() error { order = append(order, "first"); return nil }, P(dist.AnyPattern())).
		Case(func() error { order = append(order, "second"); return nil }, P(dist.NewPattern(dist.PBlock()))).
		Run()
	if err != nil || m != 0 || len(order) != 1 || order[0] != "first" {
		t.Fatalf("m=%d order=%v", m, order)
	}
}

func TestDCaseNoMatchNoDefault(t *testing.T) {
	b := sel("B", dist.BlockDim())
	ran := false
	m, err := Select(b).
		Case(func() error { ran = true; return nil }, P(dist.NewPattern(dist.PCyclic(1)))).
		Run()
	if err != nil || m != -1 || ran {
		t.Fatalf("m=%d ran=%v", m, ran)
	}
}

func TestDCaseEmptyQueryListMatches(t *testing.T) {
	// "A query list need not contain a query for every selector" — the
	// empty list is all implicit "*".
	b := sel("B", dist.CyclicDim(5))
	m, err := Select(b).Case(nil).Run()
	if err != nil || m != 0 {
		t.Fatalf("m=%d err=%v", m, err)
	}
}

func TestDCaseErrors(t *testing.T) {
	b1 := sel("B1", dist.BlockDim())
	b2 := sel("B2", dist.BlockDim())
	// mixed positional and tagged
	if _, err := Select(b1, b2).Case(nil, P(dist.AnyPattern()), On("B2", dist.AnyPattern())).Run(); err == nil || !strings.Contains(err.Error(), "mixes") {
		t.Errorf("mixed list err = %v", err)
	}
	// unknown tag
	if _, err := Select(b1).Case(nil, On("NOPE", dist.AnyPattern())).Run(); err == nil || !strings.Contains(err.Error(), "not a selector") {
		t.Errorf("unknown tag err = %v", err)
	}
	// too many positional queries
	if _, err := Select(b1).Case(nil, P(dist.AnyPattern()), P(dist.AnyPattern())).Run(); err == nil {
		t.Error("too many positional queries accepted")
	}
	// duplicate tag
	if _, err := Select(b1, b2).Case(nil, On("B1", dist.AnyPattern()), On("B1", dist.AnyPattern())).Run(); err == nil {
		t.Error("duplicate tag accepted")
	}
	// no selectors
	if _, err := Select().Case(nil).Run(); err == nil {
		t.Error("empty selector list accepted")
	}
	// undistributed selector at execution
	u := &fakeSel{name: "U"}
	if _, err := Select(u).Case(nil).Run(); err == nil || !strings.Contains(err.Error(), "well-defined") {
		t.Errorf("undistributed selector err = %v", err)
	}
}

func TestDCaseTaggedOrderIrrelevant(t *testing.T) {
	// "The order in which the queries occur in such a list is
	// semantically irrelevant."
	b1 := sel("B1", dist.BlockDim())
	b2 := sel("B2", dist.CyclicDim(1))
	m1, _ := Select(b1, b2).Case(nil, On("B2", dist.NewPattern(dist.PCyclic(1))), On("B1", dist.NewPattern(dist.PBlock()))).Run()
	m2, _ := Select(b1, b2).Case(nil, On("B1", dist.NewPattern(dist.PBlock())), On("B2", dist.NewPattern(dist.PCyclic(1)))).Run()
	if m1 != 0 || m2 != 0 {
		t.Fatalf("tag order changed result: %d %d", m1, m2)
	}
}

func TestDCaseActionError(t *testing.T) {
	b := sel("B", dist.BlockDim())
	wantErr := "boom"
	_, err := Select(b).Default(func() error { return errOf(wantErr) }).Run()
	if err == nil || err.Error() != wantErr {
		t.Fatalf("err = %v", err)
	}
}

type strErr string

func (e strErr) Error() string { return string(e) }

func errOf(s string) error { return strErr(s) }
