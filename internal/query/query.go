// Package query implements the control constructs Vienna Fortran provides
// for programs whose array distributions vary at run time (paper §2.5):
// the IDT intrinsic function and the DCASE construct.
//
// Both operate on selectors — anything exposing a name and a current
// distribution type (darray.Array and core.DynArray qualify).  DCASE
// follows the paper's semantics precisely:
//
//   - every selector must be allocated and associated with a well-defined
//     distribution when the construct executes;
//   - condition-action pairs are evaluated in order; the first matching
//     condition's action runs; if none match, the construct completes
//     without executing an action;
//   - a condition is a query list, positional or name-tagged, or DEFAULT;
//   - a query list need not cover every selector: missing selectors get
//     an implicit "*".
package query

import (
	"fmt"

	"repro/internal/dist"
)

// Selector is an array whose distribution can be queried.
type Selector interface {
	// QueryName is the declaration name used by name-tagged query lists.
	QueryName() string
	// Distributed reports whether the array is currently associated with
	// a distribution.
	Distributed() bool
	// DistType returns the current distribution type.
	DistType() dist.Type
}

// IDT is the intrinsic distribution-type test of §2.5.2: it returns true
// when the selector's current distribution type matches the pattern.
// Like the paper's IDT it requires the array to have a well-defined
// distribution (panics otherwise, mirroring the run-time error a Vienna
// Fortran program would raise).
func IDT(s Selector, pat dist.Pattern) bool {
	if !s.Distributed() {
		panic(fmt.Sprintf("query: IDT on %s before association with a distribution", s.QueryName()))
	}
	return pat.Matches(s.DistType())
}

// IDTOn additionally tests the processor section the array is distributed
// to (the paper: "optionally, of the processor sections to which the
// arguments are distributed").
func IDTOn(s Selector, pat dist.Pattern, target dist.Target) bool {
	if !IDT(s, pat) {
		return false
	}
	type distGetter interface{ Dist() *dist.Distribution }
	dg, ok := s.(distGetter)
	if !ok {
		return false
	}
	d := dg.Dist()
	return d.Target() == target || d.Target().String() == target.String()
}

// Q is one query in a condition list.
type Q struct {
	// Tag names the selector this query applies to; empty means the
	// query is positional.
	Tag string
	// Pattern is the distribution-type pattern to match.
	Pattern dist.Pattern
}

// On builds a name-tagged query (the paper's "B3: (BLOCK, *)").
func On(tag string, pat dist.Pattern) Q { return Q{Tag: tag, Pattern: pat} }

// P builds a positional query.
func P(pat dist.Pattern) Q { return Q{Pattern: pat} }

type arm struct {
	queries   []Q
	isDefault bool
	action    func() error
}

// DCase is the dcase-construct builder:
//
//	matched, err := query.Select(b1, b2, b3).
//		Case(a1, query.P(p1), query.P(p2), query.P(p3)).
//		Case(a2, query.On("B1", pc), query.On("B3", pb)).
//		Default(a4).
//		Run()
type DCase struct {
	selectors []Selector
	arms      []arm
	err       error
}

// Select starts a dcase construct over the given selectors (at least
// one, as the paper requires r >= 1).
func Select(selectors ...Selector) *DCase {
	d := &DCase{selectors: selectors}
	if len(selectors) == 0 {
		d.err = fmt.Errorf("query: SELECT DCASE needs at least one selector")
	}
	return d
}

// Case appends a condition-action pair.  The query list may be positional
// (no tags) or name-tagged (all tags); mixing is rejected.  An empty
// query list is the always-matching list (all implicit "*").
func (d *DCase) Case(action func() error, queries ...Q) *DCase {
	if d.err != nil {
		return d
	}
	tagged, positional := 0, 0
	for _, q := range queries {
		if q.Tag == "" {
			positional++
		} else {
			tagged++
		}
	}
	if tagged > 0 && positional > 0 {
		d.err = fmt.Errorf("query: query list mixes positional and name-tagged queries")
		return d
	}
	if positional > len(d.selectors) {
		d.err = fmt.Errorf("query: %d positional queries for %d selectors", positional, len(d.selectors))
		return d
	}
	if tagged > 0 {
		names := map[string]bool{}
		for _, s := range d.selectors {
			names[s.QueryName()] = true
		}
		seen := map[string]bool{}
		for _, q := range queries {
			if !names[q.Tag] {
				d.err = fmt.Errorf("query: name tag %q is not a selector", q.Tag)
				return d
			}
			if seen[q.Tag] {
				d.err = fmt.Errorf("query: selector %q tagged twice in one query list", q.Tag)
				return d
			}
			seen[q.Tag] = true
		}
	}
	d.arms = append(d.arms, arm{queries: queries, action: action})
	return d
}

// Default appends the DEFAULT condition (always matches).
func (d *DCase) Default(action func() error) *DCase {
	if d.err != nil {
		return d
	}
	d.arms = append(d.arms, arm{isDefault: true, action: action})
	return d
}

// Run evaluates the construct: determines every selector's distribution
// type, evaluates the conditions in order and executes the first matching
// action.  It returns the index of the executed arm (-1 when no condition
// matched) and the action's error.
func (d *DCase) Run() (matched int, err error) {
	if d.err != nil {
		return -1, d.err
	}
	types := make([]dist.Type, len(d.selectors))
	byName := map[string]dist.Type{}
	for i, s := range d.selectors {
		if !s.Distributed() {
			return -1, fmt.Errorf("query: selector %s has no well-defined distribution at DCASE execution", s.QueryName())
		}
		types[i] = s.DistType()
		byName[s.QueryName()] = types[i]
	}
	for i, a := range d.arms {
		if a.isDefault || d.armMatches(a, types, byName) {
			if a.action == nil {
				return i, nil
			}
			return i, a.action()
		}
	}
	return -1, nil
}

func (d *DCase) armMatches(a arm, types []dist.Type, byName map[string]dist.Type) bool {
	for pos, q := range a.queries {
		var t dist.Type
		if q.Tag != "" {
			t = byName[q.Tag]
		} else {
			t = types[pos]
		}
		if !q.Pattern.Matches(t) {
			return false
		}
	}
	return true
}
