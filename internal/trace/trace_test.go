package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.SetEnabled(true)
	tr.SetClockSource(func(int) float64 { return 0 })
	sp := tr.BeginSpan(0, CatPhase, "p")
	sp.End()
	tr.EndSpan(0, CatPhase, "p")
	tr.Send(0, 1, 8)
	tr.Recv(1, 0, 8)
	tr.Instant(0, CatDistribute, "sched:hit", -1, 0)
	tr.Reset()
	if got := tr.Events(0); got != nil {
		t.Fatalf("events on nil tracer: %v", got)
	}
	if s := tr.Summarize(); len(s.Phases) != 0 || s.TotalMsgs != 0 {
		t.Fatalf("non-empty summary from nil tracer: %+v", s)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var v []any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("nil-tracer JSON invalid: %v", err)
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	tr := New(2)
	tr.SetEnabled(false)
	tr.BeginSpan(0, CatPhase, "p").End()
	tr.Send(0, 1, 100)
	if n := len(tr.Events(0)); n != 0 {
		t.Fatalf("disabled tracer recorded %d events", n)
	}
	tr.SetEnabled(true)
	tr.Send(0, 1, 100)
	if n := len(tr.Events(0)); n != 1 {
		t.Fatalf("re-enabled tracer recorded %d events, want 1", n)
	}
}

func TestSummaryAttribution(t *testing.T) {
	tr := New(2)
	clock := []float64{0, 0}
	tr.SetClockSource(func(r int) float64 { return clock[r] })

	// rank 0: phase "sweep" containing a DISTRIBUTE span with 2 sends,
	// plus 1 send outside any phase.
	ph := tr.BeginSpan(0, CatPhase, "sweep")
	d := tr.BeginSpan(0, CatDistribute, "DISTRIBUTE V")
	tr.Send(0, 1, 64)
	tr.Send(0, 1, 32)
	clock[0] = 0.5
	d.End()
	clock[0] = 0.75
	ph.End()
	tr.Send(0, 1, 8) // unphased

	// rank 1: a barrier inside "sweep" with virtual wait 0.25s.
	ph1 := tr.BeginSpan(1, CatPhase, "sweep")
	bar := tr.BeginSpan(1, CatCollective, "barrier")
	clock[1] = 0.25
	bar.End()
	ph1.End()

	s := tr.Summarize()
	dv, ok := s.Phase("DISTRIBUTE V")
	if !ok {
		t.Fatalf("missing DISTRIBUTE V phase: %+v", s.Phases)
	}
	if dv.Msgs != 2 || dv.Bytes != 96 {
		t.Fatalf("DISTRIBUTE V msgs/bytes = %d/%d, want 2/96", dv.Msgs, dv.Bytes)
	}
	if dv.VTime != 0.5 {
		t.Fatalf("DISTRIBUTE V vtime = %v, want 0.5", dv.VTime)
	}
	sw, ok := s.Phase("sweep")
	if !ok {
		t.Fatal("missing sweep phase")
	}
	// messages charged to the innermost span only
	if sw.Msgs != 0 {
		t.Fatalf("sweep msgs = %d, want 0 (inner DISTRIBUTE owns them)", sw.Msgs)
	}
	if sw.VTime != 0.75 {
		t.Fatalf("sweep vtime = %v, want 0.75 (rank-max)", sw.VTime)
	}
	if sw.BarrierWait != 0.25 {
		t.Fatalf("sweep barrier wait = %v, want 0.25", sw.BarrierWait)
	}
	if s.UnphasedMsgs != 1 || s.UnphasedBytes != 8 {
		t.Fatalf("unphased = %d/%d, want 1/8", s.UnphasedMsgs, s.UnphasedBytes)
	}
	if s.TotalMsgs != 3 || s.TotalBytes != 104 {
		t.Fatalf("total = %d/%d, want 3/104", s.TotalMsgs, s.TotalBytes)
	}
	if sw.Count != 1 || dv.Count != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", sw.Count, dv.Count)
	}
	// zero-byte messages (barrier traffic) are not data messages
	tr.Send(0, 1, 0)
	if s2 := tr.Summarize(); s2.TotalMsgs != 3 {
		t.Fatalf("zero-byte send counted as data message")
	}
}

func TestSummaryToleratesMismatchedPhases(t *testing.T) {
	tr := New(1)
	tr.BeginSpan(0, CatPhase, "a")
	tr.BeginSpan(0, CatPhase, "b")
	tr.EndSpan(0, CatPhase, "a") // out of order: closes "a", leaves "b" open
	tr.Send(0, 0, 16)            // attributed to still-open "b"
	s := tr.Summarize()
	b, ok := s.Phase("b")
	if !ok || b.Msgs != 1 {
		t.Fatalf("open phase b should own the message: %+v", s.Phases)
	}
	if a, _ := s.Phase("a"); a.Count != 1 {
		t.Fatalf("phase a should have closed once: %+v", a)
	}
}

func TestSummaryPhaseByRank(t *testing.T) {
	tr := New(3)
	clock := []float64{0, 0, 0}
	tr.SetClockSource(func(r int) float64 { return clock[r] })

	// rank 0: "sweep" with two sends and 0.1s of virtual time.
	ph0 := tr.BeginSpan(0, CatPhase, "sweep")
	tr.Send(0, 1, 64)
	tr.Send(0, 2, 32)
	clock[0] = 0.1
	ph0.End()

	// rank 1: "sweep" spent mostly waiting in a barrier (0.4s of 0.5s).
	ph1 := tr.BeginSpan(1, CatPhase, "sweep")
	clock[1] = 0.1
	bar := tr.BeginSpan(1, CatCollective, "barrier")
	clock[1] = 0.5
	bar.End()
	ph1.End()

	// rank 2 is the straggler: 0.5s of virtual work, no barrier wait —
	// and it never enters "setup".
	ph2 := tr.BeginSpan(2, CatPhase, "sweep")
	clock[2] = 0.5
	ph2.End()
	tr.BeginSpan(0, CatPhase, "setup").End()
	tr.BeginSpan(1, CatPhase, "setup").End()

	s := tr.Summarize()
	rows := s.PhaseByRank("sweep")
	if len(rows) != 3 {
		t.Fatalf("sweep by-rank rows = %d, want 3: %+v", len(rows), rows)
	}
	for i, r := range rows {
		if r.Rank != i {
			t.Fatalf("rows not ordered by rank: %+v", rows)
		}
		if r.Count != 1 {
			t.Fatalf("rank %d count = %d, want 1", r.Rank, r.Count)
		}
	}
	if rows[0].Msgs != 2 || rows[0].Bytes != 96 || rows[0].VTime != 0.1 {
		t.Fatalf("rank 0 share = %+v, want 2 msgs / 96 bytes / 0.1s", rows[0])
	}
	if rows[1].BarrierWait != 0.4 {
		t.Fatalf("rank 1 barrier wait = %v, want 0.4", rows[1].BarrierWait)
	}
	if rows[2].VTime != 0.5 || rows[2].BarrierWait != 0 || rows[2].Msgs != 0 {
		t.Fatalf("straggler share = %+v, want 0.5s busy, no wait, no msgs", rows[2])
	}

	// The phase row is exactly the maxima/sums over the per-rank shares.
	sw, ok := s.Phase("sweep")
	if !ok {
		t.Fatal("missing sweep phase")
	}
	if sw.Msgs != 2 || sw.Bytes != 96 || sw.VTime != 0.5 || sw.BarrierWait != 0.4 {
		t.Fatalf("sweep aggregate = %+v, want msgs 2 / bytes 96 / vtime 0.5 / wait 0.4", sw)
	}

	// Ranks that never entered the phase are omitted, not zero-filled.
	setup := s.PhaseByRank("setup")
	if len(setup) != 2 || setup[0].Rank != 0 || setup[1].Rank != 1 {
		t.Fatalf("setup by-rank rows = %+v, want ranks 0 and 1 only", setup)
	}

	// Absent phase -> nil, including on an empty summary.
	if s.PhaseByRank("nope") != nil {
		t.Fatal("absent phase should return nil")
	}
	var none *Tracer
	if none.Summarize().PhaseByRank("sweep") != nil {
		t.Fatal("empty summary should return nil")
	}
}

func TestWriteJSONIsChromeLoadable(t *testing.T) {
	tr := New(2)
	tr.SetClockSource(func(int) float64 { return 1.5 })
	sp := tr.BeginSpan(0, CatStmt, `DISTRIBUTE "V"`) // quoting-hostile name
	tr.Send(0, 1, 128)
	tr.Recv(1, 0, 128)
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	phases := map[string]int{}
	for _, e := range events {
		phases[e["ph"].(string)]++
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", e)
		}
		if e["ph"] == "i" {
			args := e["args"].(map[string]any)
			if args["bytes"].(float64) != 128 {
				t.Fatalf("message args wrong: %v", e)
			}
		}
	}
	if phases["B"] != 1 || phases["E"] != 1 || phases["i"] != 2 {
		t.Fatalf("phase mix = %v", phases)
	}
}

func TestResetClears(t *testing.T) {
	tr := New(1)
	tr.Send(0, 0, 4)
	tr.Reset()
	if len(tr.Events(0)) != 0 {
		t.Fatal("reset did not clear events")
	}
	if !tr.Enabled() {
		t.Fatal("reset changed enabled state")
	}
}

func TestEventTimesMonotonic(t *testing.T) {
	tr := New(1)
	tr.Send(0, 0, 1)
	time.Sleep(time.Millisecond)
	tr.Send(0, 0, 1)
	ev := tr.Events(0)
	if ev[1].T <= ev[0].T {
		t.Fatalf("timestamps not increasing: %v then %v", ev[0].T, ev[1].T)
	}
}
