package trace

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// PhaseStat aggregates one named phase-like span (user phase, DISTRIBUTE
// of one array, ghost exchange, declaration) over all processors and all
// of its dynamic instances.
//
// Phases nest (a ghost exchange inside a user phase reports under both
// rows); messages and barrier waits are charged only to the *innermost*
// enclosing phase-like span, so the message columns partition the
// traffic while the time columns describe each span as a whole.
type PhaseStat struct {
	// Cat and Name identify the span.
	Cat, Name string
	// Count is the number of times the phase ran (per-processor maximum;
	// in an SPMD program every processor enters each phase equally often).
	Count int
	// Msgs and Bytes count data messages (payload > 0) sent inside the
	// phase, summed over all processors.
	Msgs, Bytes int64
	// VTime is the per-processor maximum of virtual α/β seconds spent
	// inside the phase (0 without a cost model).
	VTime float64
	// BarrierWait is the per-processor maximum of virtual seconds spent
	// waiting in barriers inside the phase.
	BarrierWait float64
	// Wall is the per-processor maximum of wall time spent in the phase.
	Wall time.Duration
}

// RankPhaseStat is one processor's share of one phase — the per-rank
// breakdown the per-phase maxima of PhaseStat are taken over.  A
// straggler shows up here as the rank whose Wall dominates the phase
// while everyone else's BarrierWait grows.
type RankPhaseStat struct {
	Rank        int
	Count       int
	Msgs, Bytes int64
	VTime       float64
	BarrierWait float64
	Wall        time.Duration
}

// Summary is the per-phase cost account of a recorded trace.
type Summary struct {
	// Phases lists phase-like spans in order of first appearance
	// (rank 0's order first).
	Phases []PhaseStat
	// UnphasedMsgs / UnphasedBytes count data messages sent outside any
	// phase-like span.
	UnphasedMsgs, UnphasedBytes int64
	// TotalMsgs / TotalBytes count all data messages in the trace.
	TotalMsgs, TotalBytes int64

	byRank map[phaseKey][]RankPhaseStat
}

type phaseKey struct{ cat, name string }

// perRank accumulates one rank's contribution to one phase.
type perRank struct {
	count       int
	msgs, bytes int64
	vtime       float64
	barrierWait float64
	wall        time.Duration
}

type openSpan struct {
	cat, name string
	t0        time.Duration
	v0        float64
}

// Summarize walks every processor's timeline and produces the per-phase
// account.  Safe on a nil tracer (returns an empty summary).
func (t *Tracer) Summarize() *Summary {
	s := &Summary{}
	if t == nil {
		return s
	}
	type key = phaseKey
	order := []key{}
	acc := map[key]map[int]*perRank{} // phase -> rank -> stats
	get := func(k key, rank int) *perRank {
		m, ok := acc[k]
		if !ok {
			m = map[int]*perRank{}
			acc[k] = m
			order = append(order, k)
		}
		r, ok := m[rank]
		if !ok {
			r = &perRank{}
			m[rank] = r
		}
		return r
	}

	for rank := 0; rank < t.np; rank++ {
		var stack []openSpan
		// innermost returns the deepest attributable open span, or nil.
		innermost := func() *openSpan {
			for i := len(stack) - 1; i >= 0; i-- {
				if attributable(stack[i].cat) {
					return &stack[i]
				}
			}
			return nil
		}
		for _, e := range t.Events(rank) {
			switch e.Kind {
			case KindBegin:
				stack = append(stack, openSpan{cat: e.Cat, name: e.Name, t0: e.T, v0: e.V})
			case KindEnd:
				// pop the innermost span matching (cat, name); tolerate
				// mismatched user phase annotations by scanning down.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].cat != e.Cat || stack[i].name != e.Name {
						continue
					}
					sp := stack[i]
					stack = append(stack[:i], stack[i+1:]...)
					if e.Cat == CatCollective && e.Name == "barrier" {
						if in := innermost(); in != nil {
							get(key{in.cat, in.name}, rank).barrierWait += e.V - sp.v0
						}
					}
					if attributable(sp.cat) {
						r := get(key{sp.cat, sp.name}, rank)
						r.count++
						r.wall += e.T - sp.t0
						r.vtime += e.V - sp.v0
					}
					break
				}
			case KindInstant:
				if e.Cat == CatMsg && e.Name == "send" && e.Bytes > 0 {
					s.TotalMsgs++
					s.TotalBytes += e.Bytes
					if in := innermost(); in != nil {
						r := get(key{in.cat, in.name}, rank)
						r.msgs++
						r.bytes += e.Bytes
					} else {
						s.UnphasedMsgs++
						s.UnphasedBytes += e.Bytes
					}
				}
			}
		}
	}

	s.byRank = map[phaseKey][]RankPhaseStat{}
	for _, k := range order {
		ps := PhaseStat{Cat: k.cat, Name: k.name}
		for _, r := range acc[k] {
			ps.Msgs += r.msgs
			ps.Bytes += r.bytes
			if r.count > ps.Count {
				ps.Count = r.count
			}
			if r.vtime > ps.VTime {
				ps.VTime = r.vtime
			}
			if r.barrierWait > ps.BarrierWait {
				ps.BarrierWait = r.barrierWait
			}
			if r.wall > ps.Wall {
				ps.Wall = r.wall
			}
		}
		for rank := 0; rank < t.np; rank++ {
			if r, ok := acc[k][rank]; ok {
				s.byRank[k] = append(s.byRank[k], RankPhaseStat{
					Rank: rank, Count: r.count, Msgs: r.msgs, Bytes: r.bytes,
					VTime: r.vtime, BarrierWait: r.barrierWait, Wall: r.wall,
				})
			}
		}
		s.Phases = append(s.Phases, ps)
	}
	return s
}

// Phase returns the stats of the named phase-like span, if present.
func (s *Summary) Phase(name string) (PhaseStat, bool) {
	for _, p := range s.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStat{}, false
}

// PhaseByRank returns the named phase's per-rank breakdown, ordered by
// rank; ranks that never entered the phase are omitted.  Nil when the
// phase is absent.
func (s *Summary) PhaseByRank(name string) []RankPhaseStat {
	for k, v := range s.byRank {
		if k.name == name {
			return v
		}
	}
	return nil
}

// String renders the account as a plain-text table: one row per phase
// with entry count, data messages, payload bytes, virtual α/β time,
// barrier wait, and wall time (the per-processor maxima for the time
// columns).
func (s *Summary) String() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\tcount\tmsgs\tbytes\tαβ-time\tbarrier-wait\twall")
	for _, p := range s.Phases {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\t%s\t%v\n",
			p.Name, p.Count, p.Msgs, p.Bytes, fmtSec(p.VTime), fmtSec(p.BarrierWait), p.Wall.Round(time.Microsecond))
	}
	if s.UnphasedMsgs > 0 {
		fmt.Fprintf(w, "(unphased)\t\t%d\t%d\t\t\t\n", s.UnphasedMsgs, s.UnphasedBytes)
	}
	fmt.Fprintf(w, "total\t\t%d\t%d\t\t\t\n", s.TotalMsgs, s.TotalBytes)
	w.Flush()
	return b.String()
}

func fmtSec(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3gms", v*1e3)
}
