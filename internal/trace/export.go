package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteJSON emits the trace in Chrome trace_event format (JSON array
// flavour): one track ("thread") per logical processor, B/E pairs for
// spans and "i" instants for messages and markers.  Load the output in
// chrome://tracing or https://ui.perfetto.dev.
//
// Timestamps are microseconds of wall time since tracer creation; the
// virtual α/β clock, message peer, and payload size travel in args.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	for rank := 0; rank < t.np; rank++ {
		for _, e := range t.Events(rank) {
			if !first {
				if _, err := bw.WriteString(",\n"); err != nil {
					return err
				}
			}
			first = false
			if err := writeEvent(bw, rank, e); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONFile writes the trace to the named file.
func (t *Tracer) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeEvent(w *bufio.Writer, rank int, e Event) error {
	var ph string
	switch e.Kind {
	case KindBegin:
		ph = "B"
	case KindEnd:
		ph = "E"
	default:
		ph = "i"
	}
	ts := float64(e.T.Nanoseconds()) / 1e3
	var b strings.Builder
	fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"%s","ts":%.3f,"pid":0,"tid":%d`,
		quote(e.Name), quote(e.Cat), ph, ts, rank)
	if ph == "i" {
		b.WriteString(`,"s":"t"`)
	}
	args := make([]string, 0, 3)
	if e.V != 0 {
		args = append(args, fmt.Sprintf(`"vclock":%g`, e.V))
	}
	if e.Peer >= 0 {
		args = append(args, fmt.Sprintf(`"peer":%d`, e.Peer))
	}
	if e.Bytes >= 0 {
		args = append(args, fmt.Sprintf(`"bytes":%d`, e.Bytes))
	}
	if len(args) > 0 {
		b.WriteString(`,"args":{` + strings.Join(args, ",") + `}`)
	}
	b.WriteString("}")
	_, err := w.WriteString(b.String())
	return err
}

func quote(s string) string { return strconv.Quote(s) }
