// Package trace is the SPMD tracing and per-phase cost-accounting
// subsystem of the Vienna Fortran Engine.
//
// The paper's evaluation claims are communication-shape arguments: (C2)
// dynamic redistribution confines all ADI communication to the DISTRIBUTE
// statement, and (C1) the N/p vs. α/β tradeoff decides between a column
// and a 2-D block smoothing distribution.  Flat message counters
// (msg.Stats) cannot attribute traffic to a specific DISTRIBUTE, ghost
// exchange, or sweep phase; this package can.  Every logical processor
// records a sequence of span begin/end and instant events — DISTRIBUTE
// statements, per-array redistributions, ghost exchanges, collectives,
// user-annotated phases, and individual messages with their payload size
// and peer — each stamped with wall time and, when a cost model is
// attached, the processor's α/β virtual clock.
//
// Recorded traces export two ways: WriteJSON emits Chrome trace_event
// JSON (load in chrome://tracing or https://ui.perfetto.dev, one track
// per processor), and Summarize aggregates per-phase totals — messages,
// bytes, virtual α/β time, barrier wait — attributing each message to the
// innermost enclosing phase-like span on its processor's span stack.
//
// Overhead discipline: a nil *Tracer is valid everywhere and every
// recording method is gated on one atomic enabled-check, so the disabled
// path costs a nil test plus at most one atomic load.  Per-rank event
// buffers are guarded by per-rank mutexes: SPMD programs record almost
// exclusively rank-locally, so the locks are uncontended.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span/event categories.  Summarize treats CatPhase, CatDistribute,
// CatGhost and CatDeclare as phase-like (attributable); everything else
// is structural.
const (
	// CatPhase marks user-annotated program phases (Ctx.PhaseBegin/End).
	CatPhase = "phase"
	// CatStmt marks a whole DISTRIBUTE statement (all arrays of the
	// connect classes); the per-array work nests inside as CatDistribute.
	CatStmt = "stmt"
	// CatDistribute marks one array's redistribution — the paper's
	// DISTRIBUTE cost for that array.
	CatDistribute = "distribute"
	// CatGhost marks an overlap-area (ghost) exchange.
	CatGhost = "ghost"
	// CatDeclare marks array declaration/allocation.
	CatDeclare = "declare"
	// CatCollective marks a collective operation (barrier, bcast,
	// reduce, alltoallv, ...).
	CatCollective = "collective"
	// CatRedist marks redistribution planner/executor detail — the
	// "redist:plan" span naming the chosen decomposition and one
	// "redist:step[k]" span per bounded step.  Deliberately NOT
	// attributable: the enclosing CatDistribute span keeps the whole
	// DISTRIBUTE cost, and these nested spans only show the breakdown.
	CatRedist = "redist"
	// CatMsg marks point-to-point message instants ("send"/"recv").
	CatMsg = "msg"
	// CatIO marks parallel-I/O operations (stripe writes/reads, repairs,
	// retries) under the checkpoint paths.  Like CatRedist it is detail
	// inside an enclosing phase span, so it is not attributable: the
	// "checkpoint"/"restore" phase keeps the whole cost.
	CatIO = "io"
)

// Kind discriminates event records.
type Kind uint8

// Event kinds.
const (
	// KindBegin opens a span on the recording rank.
	KindBegin Kind = iota
	// KindEnd closes the innermost matching span.
	KindEnd
	// KindInstant is a point event (message, cache hit, ...).
	KindInstant
)

// Event is one record on a processor's timeline.
type Event struct {
	Kind Kind
	Cat  string
	Name string
	// T is wall time since the tracer was created.
	T time.Duration
	// V is the processor's α/β virtual clock in seconds at record time
	// (0 when no clock source is attached).
	V float64
	// Peer is the other rank of a message event, -1 otherwise.
	Peer int
	// Bytes is the payload size of a message or packing event, -1
	// otherwise.
	Bytes int64
}

// Tracer records per-processor event timelines for one machine.
type Tracer struct {
	on    atomic.Bool
	start time.Time
	np    int
	clock func(rank int) float64
	ranks []rankBuf
}

type rankBuf struct {
	mu sync.Mutex
	ev []Event
}

// New creates an enabled tracer for np logical processors.
func New(np int) *Tracer {
	t := &Tracer{start: time.Now(), np: np, ranks: make([]rankBuf, np)}
	t.on.Store(true)
	return t
}

// NP returns the number of processor timelines (0 on a nil tracer).
func (t *Tracer) NP() int {
	if t == nil {
		return 0
	}
	return t.np
}

// Enabled reports whether the tracer is recording.  Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// SetEnabled switches recording on or off.  Safe on nil.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.on.Store(on)
	}
}

// SetClockSource attaches a per-rank virtual-clock reader (typically
// (*msg.CostModel).Clock).  Call before the SPMD run starts; events then
// carry virtual timestamps.  Safe on nil.
func (t *Tracer) SetClockSource(f func(rank int) float64) {
	if t != nil {
		t.clock = f
	}
}

func (t *Tracer) record(rank int, e Event) {
	e.T = time.Since(t.start)
	if t.clock != nil {
		e.V = t.clock(rank)
	}
	b := &t.ranks[rank]
	b.mu.Lock()
	b.ev = append(b.ev, e)
	b.mu.Unlock()
}

// Span is a handle for ending a span opened with BeginSpan.  The zero
// Span is a no-op.
type Span struct {
	t    *Tracer
	rank int
	cat  string
	name string
}

// BeginSpan opens a span on rank's timeline and returns the handle to
// close it.  On a nil or disabled tracer it returns a no-op handle.
func (t *Tracer) BeginSpan(rank int, cat, name string) Span {
	if !t.Enabled() {
		return Span{}
	}
	t.record(rank, Event{Kind: KindBegin, Cat: cat, Name: name, Peer: -1, Bytes: -1})
	return Span{t: t, rank: rank, cat: cat, name: name}
}

// End closes the span.
func (s Span) End() {
	if s.t != nil {
		s.t.EndSpan(s.rank, s.cat, s.name)
	}
}

// EndSpan closes the innermost span with the given category and name
// (for the by-name PhaseEnd form; BeginSpan/Span.End is the usual pair).
func (t *Tracer) EndSpan(rank int, cat, name string) {
	if !t.Enabled() {
		return
	}
	t.record(rank, Event{Kind: KindEnd, Cat: cat, Name: name, Peer: -1, Bytes: -1})
}

// Instant records a point event on rank's timeline.
func (t *Tracer) Instant(rank int, cat, name string, peer int, bytes int64) {
	if !t.Enabled() {
		return
	}
	t.record(rank, Event{Kind: KindInstant, Cat: cat, Name: name, Peer: peer, Bytes: bytes})
}

// Send records a point-to-point message leaving rank for peer.
func (t *Tracer) Send(rank, peer, bytes int) {
	if !t.Enabled() {
		return
	}
	t.record(rank, Event{Kind: KindInstant, Cat: CatMsg, Name: "send", Peer: peer, Bytes: int64(bytes)})
}

// Recv records a message arriving at rank from peer.
func (t *Tracer) Recv(rank, peer, bytes int) {
	if !t.Enabled() {
		return
	}
	t.record(rank, Event{Kind: KindInstant, Cat: CatMsg, Name: "recv", Peer: peer, Bytes: int64(bytes)})
}

// Events returns a snapshot copy of rank's timeline.
func (t *Tracer) Events(rank int) []Event {
	if t == nil {
		return nil
	}
	b := &t.ranks[rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.ev))
	copy(out, b.ev)
	return out
}

// Reset clears all recorded events (the enabled state is unchanged).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.ranks {
		b := &t.ranks[i]
		b.mu.Lock()
		b.ev = nil
		b.mu.Unlock()
	}
}

// attributable reports whether a span category accumulates message and
// wait costs in the per-phase summary.
func attributable(cat string) bool {
	return cat == CatPhase || cat == CatDistribute || cat == CatGhost || cat == CatDeclare
}
