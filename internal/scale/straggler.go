// Straggler mitigation policy: given a measured per-rank slowdown (from
// the health scorer) and the same per-step cost breakdown the
// grow/shrink policy uses, decide whether to do nothing, rebalance the
// block bounds around the slow rank, or drain it from the membership.
//
// The model extends StepTime with a straggler term.  Let f be the slow
// rank's slowdown and np the processor count, with Step the *nominal*
// (healthy-rank) breakdown:
//
//   - Do nothing: the straggler stretches every step's critical path to
//     its own compute time — Compute×f + Comm + Idle.
//   - Rebalance: work is re-divided in proportion to measured speeds, so
//     all ranks finish together; the effective processor count is
//     (np−1) + 1/f and the compute term Compute×np/(np−1+1/f).  Comm
//     and Idle stay: the slow rank still sits on every collective.
//   - Drain: np−1 full-speed ranks run the step — exactly
//     StepTime(Step, np, np−1); the break-even of the issue's "P−1
//     healthy beat P with one slow".
//
// Rebalance and drain each pay the one-time redistribution cost Redist;
// the recommendation is the largest positive projected net over the
// remaining steps.
package scale

import "fmt"

// StragglerParams is one mitigation question: NP processors with
// StepsLeft steps remaining, one rank measured Slowdown× slower than
// the median, nominal per-step breakdown Step (at NP, healthy ranks),
// and one-time redistribution cost Redist for either mitigation.
type StragglerParams struct {
	NP        int
	StepsLeft int
	Step      PerStep
	Slowdown  float64
	Redist    float64
}

// StragglerAdvice reports the mitigation recommendation with the
// modeled per-step times and projected nets behind it.
type StragglerAdvice struct {
	// Decision is Hold, Rebalance, or Drain.
	Decision Decision
	// Modeled per-step seconds under each course of action.
	StepNone, StepRebalance, StepDrain float64
	// Projected remaining-time savings (vs doing nothing) of each
	// mitigation, net of Redist.  Positive iff the mitigation pays.
	NetRebalance, NetDrain float64
}

func (a StragglerAdvice) String() string {
	return fmt.Sprintf("%s (step none %.3gms, rebalance %.3gms, drain %.3gms; net rebalance %.3gms, drain %.3gms)",
		a.Decision, a.StepNone*1e3, a.StepRebalance*1e3, a.StepDrain*1e3, a.NetRebalance*1e3, a.NetDrain*1e3)
}

// StragglerStepTime models the per-step seconds of nominal breakdown s
// on np processors of which one runs slowdown× slower, with work
// divided evenly (the do-nothing baseline).
func StragglerStepTime(s PerStep, slowdown float64) float64 {
	if slowdown < 1 {
		slowdown = 1
	}
	return s.Compute*slowdown + s.Comm + s.Idle
}

// RebalancedStepTime models the per-step seconds when work is divided
// in proportion to speed instead: all ranks finish together behind an
// effective processor count of (np−1) + 1/slowdown.
func RebalancedStepTime(s PerStep, np int, slowdown float64) float64 {
	if slowdown < 1 {
		slowdown = 1
	}
	eff := float64(np-1) + 1/slowdown
	return s.Compute*float64(np)/eff + s.Comm + s.Idle
}

// RecommendStraggler evaluates the three courses of action.  Degenerate
// inputs (fewer than 2 processors, no measured slowdown, no steps left)
// hold.
func RecommendStraggler(p StragglerParams) StragglerAdvice {
	a := StragglerAdvice{Decision: Hold}
	a.StepNone = StragglerStepTime(p.Step, p.Slowdown)
	a.StepRebalance = a.StepNone
	a.StepDrain = a.StepNone
	if p.NP < 2 || p.Slowdown <= 1 || p.StepsLeft <= 0 {
		return a
	}
	a.StepRebalance = RebalancedStepTime(p.Step, p.NP, p.Slowdown)
	a.StepDrain = StepTime(p.Step, p.NP, p.NP-1)
	steps := float64(p.StepsLeft)
	a.NetRebalance = steps*(a.StepNone-a.StepRebalance) - p.Redist
	a.NetDrain = steps*(a.StepNone-a.StepDrain) - p.Redist
	switch {
	case a.NetDrain > 0 && a.NetDrain >= a.NetRebalance:
		a.Decision = Drain
	case a.NetRebalance > 0:
		a.Decision = Rebalance
	}
	return a
}

// FairShares normalizes per-rank speeds (from health.Scorer.Speeds)
// into work shares summing to 1.  Non-positive speeds are clamped to a
// small fraction of the fastest so a stalled rank still gets a sliver
// rather than a divide-by-zero; all-non-positive input degrades to an
// even split.
func FairShares(speeds []float64) []float64 {
	n := len(speeds)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	max := 0.0
	for _, v := range speeds {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	floor := max * 1e-3
	sum := 0.0
	for i, v := range speeds {
		if v < floor {
			v = floor
		}
		out[i] = v
		sum += v
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// WeightedBounds divides n items (rows, columns) over len(speeds)
// processors in proportion to their measured speeds: the generalized
// B_BLOCK bounds of the paper's §2.3, with the straggler's block shrunk
// by its slowdown.  Bounds are 1-based inclusive upper bounds per
// processor, non-decreasing, ending at n — the exact shape
// dist.BBlockDim wants.  Equal speeds reproduce the even block split.
func WeightedBounds(n int, speeds []float64) []int {
	shares := FairShares(speeds)
	np := len(shares)
	bounds := make([]int, np)
	cum := 0.0
	for p := 0; p < np; p++ {
		cum += shares[p]
		b := int(cum*float64(n) + 0.5)
		if p > 0 && b < bounds[p-1] {
			b = bounds[p-1]
		}
		if b > n {
			b = n
		}
		bounds[p] = b
	}
	if np > 0 {
		bounds[np-1] = n
	}
	return bounds
}
