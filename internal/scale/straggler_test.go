package scale

import "testing"

// TestStragglerRecommendsMitigation: a compute-bound step with an 8×
// rank and a cheap redistribution must not be left alone.
func TestStragglerRecommendsMitigation(t *testing.T) {
	a := RecommendStraggler(StragglerParams{
		NP: 4, StepsLeft: 50, Slowdown: 8,
		Step:   PerStep{Compute: 0.010, Comm: 0.001, Idle: 0.001},
		Redist: 0.020,
	})
	if a.Decision == Hold {
		t.Fatalf("8x straggler held: %v", a)
	}
	if a.StepNone <= a.StepRebalance || a.StepNone <= a.StepDrain {
		t.Fatalf("mitigated steps not faster than doing nothing: %v", a)
	}
}

// TestStragglerDrainBreakEven: the issue's break-even — P−1 healthy
// ranks beat P with one slow exactly when the slowdown exceeds
// np/(np−1) on a pure-compute step.
func TestStragglerDrainBreakEven(t *testing.T) {
	step := PerStep{Compute: 0.010}
	// f = 2 > 4/3: drain is a strict win.
	a := RecommendStraggler(StragglerParams{NP: 4, StepsLeft: 100, Slowdown: 2, Step: step})
	if a.StepDrain >= a.StepNone {
		t.Fatalf("f=2 np=4: drain (%.4f) not faster than none (%.4f)", a.StepDrain, a.StepNone)
	}
	// f = 1.2 < 4/3: doing nothing beats draining (rebalance may still win).
	a = RecommendStraggler(StragglerParams{NP: 4, StepsLeft: 100, Slowdown: 1.2, Step: step})
	if a.StepDrain <= a.StepNone {
		t.Fatalf("f=1.2 np=4: drain (%.4f) should lose to none (%.4f)", a.StepDrain, a.StepNone)
	}
	if a.NetDrain > 0 && a.Decision == Drain {
		t.Fatalf("sub-break-even drain recommended: %v", a)
	}
}

// TestStragglerExtremeFavorsDrain: with a huge slowdown and a real idle
// share, the drained machine's smaller barrier beats keeping the
// straggler on a sliver of work.
func TestStragglerExtremeFavorsDrain(t *testing.T) {
	a := RecommendStraggler(StragglerParams{
		NP: 4, StepsLeft: 200, Slowdown: 100,
		Step: PerStep{Compute: 0.010, Comm: 0.001, Idle: 0.004},
	})
	if a.Decision != Drain {
		t.Fatalf("extreme straggler with idle share: %v, want drain", a)
	}
	if a.NetDrain < a.NetRebalance {
		t.Fatalf("drain net %.4f < rebalance net %.4f", a.NetDrain, a.NetRebalance)
	}
}

// TestStragglerMildHolds: a barely-slow rank with an expensive
// redistribution and few steps left is not worth touching.
func TestStragglerMildHolds(t *testing.T) {
	a := RecommendStraggler(StragglerParams{
		NP: 4, StepsLeft: 2, Slowdown: 1.05,
		Step:   PerStep{Compute: 0.010, Comm: 0.002, Idle: 0.001},
		Redist: 1.0,
	})
	if a.Decision != Hold {
		t.Fatalf("mild straggler mitigated: %v", a)
	}
	for _, p := range []StragglerParams{
		{NP: 1, StepsLeft: 10, Slowdown: 8, Step: PerStep{Compute: 1}},
		{NP: 4, StepsLeft: 0, Slowdown: 8, Step: PerStep{Compute: 1}},
		{NP: 4, StepsLeft: 10, Slowdown: 1, Step: PerStep{Compute: 1}},
	} {
		if a := RecommendStraggler(p); a.Decision != Hold {
			t.Fatalf("degenerate %+v: %v, want hold", p, a)
		}
	}
}

// TestDecisionStrings: the new decisions print their names.
func TestDecisionStrings(t *testing.T) {
	for d, want := range map[Decision]string{
		Hold: "hold", Grow: "grow", Shrink: "shrink",
		Rebalance: "rebalance", Drain: "drain",
	} {
		if d.String() != want {
			t.Fatalf("Decision(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}

// TestFairShares: speeds normalize to shares; non-positive speeds are
// clamped, not divided by.
func TestFairShares(t *testing.T) {
	sh := FairShares([]float64{1, 1, 1, 0.125})
	sum := 0.0
	for _, v := range sh {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum %.4f, want 1", sum)
	}
	if sh[3] > sh[0]/4 {
		t.Fatalf("straggler share %.4f not ≈1/8 of healthy %.4f", sh[3], sh[0])
	}
	sh = FairShares([]float64{0, -1, 0})
	for i, v := range sh {
		if v < 0.3 || v > 0.35 {
			t.Fatalf("all-non-positive speeds: share[%d] = %.4f, want even split", i, v)
		}
	}
	if got := FairShares(nil); len(got) != 0 {
		t.Fatalf("FairShares(nil) = %v", got)
	}
}

// TestWeightedBounds: equal speeds reproduce the even block split;
// weighted speeds shrink the straggler's block; the bounds are always a
// valid non-decreasing cover of 1..n.
func TestWeightedBounds(t *testing.T) {
	b := WeightedBounds(100, []float64{1, 1, 1, 1})
	want := []int{25, 50, 75, 100}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("even bounds = %v, want %v", b, want)
		}
	}
	b = WeightedBounds(96, []float64{1, 1, 1, 0.125})
	if b[3] != 96 {
		t.Fatalf("last bound %d, want 96", b[3])
	}
	last := 0
	for i, v := range b {
		if v < last {
			t.Fatalf("bounds %v not non-decreasing at %d", b, i)
		}
		last = v
	}
	straggler := b[3] - b[2]
	healthy := b[0]
	if straggler >= healthy/2 {
		t.Fatalf("straggler block %d rows vs healthy %d: not shrunk (bounds %v)", straggler, healthy, b)
	}
	if straggler < 1 {
		t.Fatalf("straggler starved to %d rows (bounds %v)", straggler, b)
	}
}
