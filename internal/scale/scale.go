// Package scale implements the cost-driven grow/shrink policy of the
// elastic runtime: given a measured per-step cost breakdown, it decides
// whether resizing the processor set pays for itself before the run
// ends.
//
// The model extends the paper's §4 runtime distribution selection —
// pick the mapping with the lower modeled cost on the executing
// machine — to the *size* of the executing machine.  A step's cost is
// split into three differently-scaling components:
//
//   - Compute: the parallelizable work; scales with np/npNew,
//   - Comm: boundary/pipeline communication; modeled np-invariant (the
//     dominant ghost and pipeline message counts per processor do not
//     change with np for the §4 applications),
//   - Idle: barrier and imbalance wait; scales with npNew/np (more
//     processors wait on the same critical path).
//
// A resize additionally pays the one-time redistribution cost R of
// moving every live array onto the new view, so the policy recommends
// the resize iff the remaining steps amortize it:
//
//	stepsLeft × (tCur − tNew) > R
//
// Everything here is pure arithmetic over numbers the caller measured
// (typically from a trace.Summary via FromSummary/RedistCost), so the
// policy is unit-testable without a machine.
package scale

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// PerStep is a measured per-step cost breakdown at the current
// processor count, in (virtual or wall) seconds.
type PerStep struct {
	Compute float64 // parallelizable work per step
	Comm    float64 // communication per step (np-invariant)
	Idle    float64 // barrier/imbalance wait per step
}

// Total returns the per-step seconds at the measuring processor count.
func (s PerStep) Total() float64 { return s.Compute + s.Comm + s.Idle }

// Params is one grow/shrink question: resizing from NP to NPNew with
// StepsLeft iterations remaining, given the measured Step breakdown
// (at NP) and the one-time redistribution cost Redist of the resize.
type Params struct {
	NP, NPNew int
	StepsLeft int
	Step      PerStep
	Redist    float64
}

// Decision is the policy's recommendation.
type Decision int

// Recommendations.
const (
	// Hold keeps the current processor count: the resize would not
	// amortize (or would slow the run down outright).
	Hold Decision = iota
	// Grow admits the pending joiner(s): the remaining steps win back
	// more than the redistribution costs.
	Grow
	// Shrink releases processors: fewer ranks run the remaining steps
	// cheaper (communication/idle dominated regime).
	Shrink
	// Rebalance keeps every rank but re-divides the work in proportion
	// to measured speeds — the degraded-mode mitigation for a straggler
	// worth keeping (RecommendStraggler).
	Rebalance
	// Drain voluntarily releases the straggler: P−1 healthy ranks beat P
	// with one slow (RecommendStraggler).
	Drain
)

func (d Decision) String() string {
	switch d {
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	case Rebalance:
		return "rebalance"
	case Drain:
		return "drain"
	}
	return "hold"
}

// Advice reports the recommendation with the numbers behind it.
type Advice struct {
	Decision Decision
	// StepCur and StepNew are the modeled per-step seconds at NP and
	// NPNew.
	StepCur, StepNew float64
	// Gain is StepCur − StepNew (negative: the resize loses per step).
	Gain float64
	// BreakEven is the number of steps needed to amortize Redist at
	// Gain per step (-1 when Gain <= 0: no horizon amortizes it).
	BreakEven int
	// Net is the projected remaining-time saving of resizing now:
	// StepsLeft×Gain − Redist.  Positive iff the resize pays.
	Net float64
}

func (a Advice) String() string {
	return fmt.Sprintf("%s (step %.3gms -> %.3gms, gain %.3gms/step, break-even %d steps, net %.3gms)",
		a.Decision, a.StepCur*1e3, a.StepNew*1e3, a.Gain*1e3, a.BreakEven, a.Net*1e3)
}

// StepTime models the per-step seconds of breakdown s (measured at np)
// when run on npNew processors.
func StepTime(s PerStep, np, npNew int) float64 {
	f := float64(np) / float64(npNew)
	return s.Compute*f + s.Comm + s.Idle/f
}

// Recommend evaluates the crossover for p.  Degenerate inputs (a
// non-positive processor count, NPNew == NP, or no steps left) hold.
func Recommend(p Params) Advice {
	a := Advice{Decision: Hold, BreakEven: -1}
	if p.NP <= 0 || p.NPNew <= 0 || p.NPNew == p.NP {
		a.StepCur = p.Step.Total()
		a.StepNew = a.StepCur
		return a
	}
	a.StepCur = StepTime(p.Step, p.NP, p.NP)
	a.StepNew = StepTime(p.Step, p.NP, p.NPNew)
	a.Gain = a.StepCur - a.StepNew
	a.Net = float64(p.StepsLeft)*a.Gain - p.Redist
	if a.Gain > 0 {
		if p.Redist <= 0 {
			a.BreakEven = 0
		} else {
			a.BreakEven = int(math.Ceil(p.Redist / a.Gain))
		}
	}
	if p.StepsLeft > 0 && a.Gain > 0 && a.Net > 0 {
		if p.NPNew > p.NP {
			a.Decision = Grow
		} else {
			a.Decision = Shrink
		}
	}
	return a
}

// FromSummary extracts the per-step breakdown of the named phase from a
// trace summary of steps iterations on np processors.  The phase total
// is its virtual α/β time when a cost model recorded one, else its wall
// time; the communication share is modeled from the phase's message
// count and bytes under (alpha, beta) averaged over the processors; the
// idle share is the recorded barrier wait; compute is the remainder.
// ok is false when the phase is absent or steps <= 0.
func FromSummary(s *trace.Summary, phase string, steps, np int, alpha, beta float64) (ps PerStep, ok bool) {
	if s == nil || steps <= 0 || np <= 0 {
		return PerStep{}, false
	}
	st, found := s.Phase(phase)
	if !found {
		return PerStep{}, false
	}
	total := st.VTime
	if total == 0 {
		total = st.Wall.Seconds()
	}
	comm := (alpha*float64(st.Msgs) + beta*float64(st.Bytes)) / float64(np)
	idle := st.BarrierWait
	compute := total - comm - idle
	if compute < 0 {
		compute = 0
	}
	inv := 1 / float64(steps)
	return PerStep{Compute: compute * inv, Comm: comm * inv, Idle: idle * inv}, true
}

// RedistCost estimates the one-time cost of one resize from the
// DISTRIBUTE spans a trace recorded: the per-instance cost of every
// distributed array's DISTRIBUTE, summed (a resize re-distributes each
// live array once).  Arrays never redistributed contribute nothing;
// with no DISTRIBUTE spans at all the estimate is 0 (a resize is then
// modeled free, which errs toward resizing).
func RedistCost(s *trace.Summary) float64 {
	if s == nil {
		return 0
	}
	var cost float64
	for _, p := range s.Phases {
		if p.Cat != trace.CatDistribute || p.Count == 0 {
			continue
		}
		c := p.VTime
		if c == 0 {
			c = p.Wall.Seconds()
		}
		cost += c / float64(p.Count)
	}
	return cost
}
