package scale

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12+1e-9*math.Abs(want) {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

func TestStepTimeScaling(t *testing.T) {
	s := PerStep{Compute: 8, Comm: 1, Idle: 2}
	approx(t, "same np", StepTime(s, 4, 4), 11)
	// doubling np halves compute, doubles idle, keeps comm
	approx(t, "doubled np", StepTime(s, 4, 8), 8.0/2+1+2*2)
	// halving np doubles compute, halves idle
	approx(t, "halved np", StepTime(s, 4, 2), 8.0*2+1+2.0/2)
}

func TestRecommendGrowCrossover(t *testing.T) {
	// Compute-dominated: growing 4 -> 8 gains 4 - 0.1 = 3.9 s/step.
	p := Params{NP: 4, NPNew: 8, Step: PerStep{Compute: 8, Comm: 1, Idle: 0.1}, Redist: 10}
	// gain/step = (8+1+0.1) - (4+1+0.2) = 3.9; break-even = ceil(10/3.9) = 3
	p.StepsLeft = 2 // 2*3.9 = 7.8 < 10: does not amortize
	if a := Recommend(p); a.Decision != Hold {
		t.Errorf("2 steps left: got %v, want hold (%v)", a.Decision, a)
	}
	p.StepsLeft = 3 // 3*3.9 = 11.7 > 10: grows
	a := Recommend(p)
	if a.Decision != Grow {
		t.Errorf("3 steps left: got %v, want grow (%v)", a.Decision, a)
	}
	if a.BreakEven != 3 {
		t.Errorf("break-even = %d, want 3", a.BreakEven)
	}
	approx(t, "net", a.Net, 3*3.9-10)
}

func TestRecommendShrinkWhenIdleDominated(t *testing.T) {
	// Idle/comm dominated: halving the machine wins.
	p := Params{NP: 8, NPNew: 4, StepsLeft: 100,
		Step: PerStep{Compute: 1, Comm: 2, Idle: 8}, Redist: 5}
	// tCur = 11, tNew = 1*2 + 2 + 8/2 = 8, gain 3/step
	a := Recommend(p)
	if a.Decision != Shrink {
		t.Errorf("got %v, want shrink (%v)", a.Decision, a)
	}
	approx(t, "gain", a.Gain, 3)
}

func TestRecommendHoldsOnLoss(t *testing.T) {
	// Comm/idle dominated: growing only adds idle — no horizon pays.
	p := Params{NP: 4, NPNew: 8, StepsLeft: 1 << 20,
		Step: PerStep{Compute: 1, Comm: 1, Idle: 4}, Redist: 0}
	a := Recommend(p)
	if a.Decision != Hold {
		t.Errorf("got %v, want hold (%v)", a.Decision, a)
	}
	if a.Gain >= 0 {
		t.Errorf("gain = %g, want negative", a.Gain)
	}
	if a.BreakEven != -1 {
		t.Errorf("break-even = %d, want -1 (never)", a.BreakEven)
	}
}

func TestRecommendDegenerate(t *testing.T) {
	for _, p := range []Params{
		{NP: 0, NPNew: 4, StepsLeft: 10, Step: PerStep{Compute: 1}},
		{NP: 4, NPNew: 0, StepsLeft: 10, Step: PerStep{Compute: 1}},
		{NP: 4, NPNew: 4, StepsLeft: 10, Step: PerStep{Compute: 1}},
		{NP: 4, NPNew: 8, StepsLeft: 0, Step: PerStep{Compute: 1}},
	} {
		if a := Recommend(p); a.Decision != Hold {
			t.Errorf("Recommend(%+v) = %v, want hold", p, a.Decision)
		}
	}
}

func TestFromSummaryBreakdown(t *testing.T) {
	// A synthetic summary: the "iterate" phase ran 10 steps on 2 ranks
	// with 4s of virtual time, 1s of it barrier wait, and traffic whose
	// α/β cost averages 1s per rank.
	alpha, beta := 0.5, 1e-3
	s := &trace.Summary{Phases: []trace.PhaseStat{{
		Cat: trace.CatPhase, Name: "iterate", Count: 1,
		Msgs: 2, Bytes: 1000, // (0.5*2 + 1e-3*1000)/2 ranks = 1s comm
		VTime: 4, BarrierWait: 1,
	}}}
	ps, ok := FromSummary(s, "iterate", 10, 2, alpha, beta)
	if !ok {
		t.Fatal("FromSummary missed the phase")
	}
	approx(t, "comm/step", ps.Comm, 0.1)
	approx(t, "idle/step", ps.Idle, 0.1)
	approx(t, "compute/step", ps.Compute, 0.2) // (4 - 1 - 1)/10
	approx(t, "total/step", ps.Total(), 0.4)

	if _, ok := FromSummary(s, "absent", 10, 2, alpha, beta); ok {
		t.Error("FromSummary found an absent phase")
	}
	if _, ok := FromSummary(s, "iterate", 0, 2, alpha, beta); ok {
		t.Error("FromSummary accepted steps = 0")
	}
	if _, ok := FromSummary(nil, "iterate", 10, 2, alpha, beta); ok {
		t.Error("FromSummary accepted a nil summary")
	}
}

func TestFromSummaryFallsBackToWall(t *testing.T) {
	s := &trace.Summary{Phases: []trace.PhaseStat{{
		Cat: trace.CatPhase, Name: "iterate", Count: 1, Wall: 2 * time.Second,
	}}}
	ps, ok := FromSummary(s, "iterate", 4, 2, 0, 0)
	if !ok {
		t.Fatal("FromSummary missed the phase")
	}
	approx(t, "compute/step (wall fallback)", ps.Compute, 0.5)
}

func TestRedistCost(t *testing.T) {
	s := &trace.Summary{Phases: []trace.PhaseStat{
		{Cat: trace.CatDistribute, Name: "DISTRIBUTE V", Count: 4, VTime: 8},   // 2 per instance
		{Cat: trace.CatDistribute, Name: "DISTRIBUTE W", Count: 2, VTime: 1},   // 0.5 per instance
		{Cat: trace.CatPhase, Name: "iterate", Count: 1, VTime: 100},           // not a DISTRIBUTE
		{Cat: trace.CatDistribute, Name: "DISTRIBUTE Z", Count: 0, VTime: 100}, // never ran
	}}
	approx(t, "redist cost", RedistCost(s), 2.5)
	approx(t, "nil summary", RedistCost(nil), 0)
}
