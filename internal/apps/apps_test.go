package apps

import (
	"testing"

	"repro/internal/dist"
)

func TestADIDynamicMatchesSerial(t *testing.T) {
	res, err := RunADI(ADIConfig{NX: 32, NY: 24, Iters: 3, P: 4, Mode: ADIDynamic, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > 1e-10 {
		t.Fatalf("dynamic ADI deviates from serial by %g", res.MaxErr)
	}
	if res.RedistMsgs == 0 || res.RedistBytes == 0 {
		t.Fatal("dynamic ADI should communicate during DISTRIBUTE")
	}
	if res.SweepMsgs != 0 {
		t.Fatalf("dynamic ADI sweeps must be communication-free, saw %d msgs", res.SweepMsgs)
	}
}

func TestADIStaticColsMatchesSerial(t *testing.T) {
	res, err := RunADI(ADIConfig{NX: 32, NY: 24, Iters: 3, P: 4, Mode: ADIStaticCols, Validate: true, ChunkRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > 1e-10 {
		t.Fatalf("static-cols ADI deviates from serial by %g", res.MaxErr)
	}
	if res.SweepMsgs == 0 {
		t.Fatal("static ADI must pay pipeline communication in the y-sweep")
	}
	if res.RedistMsgs != 0 {
		t.Fatal("static ADI must not redistribute")
	}
}

func TestADIStaticRowsMatchesSerial(t *testing.T) {
	res, err := RunADI(ADIConfig{NX: 24, NY: 32, Iters: 2, P: 3, Mode: ADIStaticRows, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > 1e-10 {
		t.Fatalf("static-rows ADI deviates from serial by %g", res.MaxErr)
	}
}

func TestADIModesAgree(t *testing.T) {
	var sums []float64
	for _, mode := range []ADIMode{ADIDynamic, ADIStaticCols, ADIStaticRows} {
		res, err := RunADI(ADIConfig{NX: 20, NY: 20, Iters: 2, P: 4, Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sums = append(sums, res.Checksum)
	}
	for i := 1; i < len(sums); i++ {
		d := sums[i] - sums[0]
		if d < 0 {
			d = -d
		}
		if d > 1e-8 {
			t.Fatalf("checksums diverge: %v", sums)
		}
	}
}

func TestADIScheduleCacheWarm(t *testing.T) {
	res, err := RunADI(ADIConfig{NX: 16, NY: 16, Iters: 4, P: 2, Mode: ADIDynamic})
	if err != nil {
		t.Fatal(err)
	}
	// 7 redistributions x 2 ranks = 14 lookups over 2 distinct transitions
	// x 2 ranks = 4 misses.
	if res.CacheMisses != 4 {
		t.Fatalf("cache misses = %d, want 4", res.CacheMisses)
	}
	if res.CacheHits != 10 {
		t.Fatalf("cache hits = %d, want 10", res.CacheHits)
	}
}

func TestADIDynamicConfinesCommunicationClaim(t *testing.T) {
	// Claim C2: with the dynamic strategy all communication is confined
	// to the redistribution; with enough iterations the static pipeline
	// sends far more messages.
	dyn, err := RunADI(ADIConfig{NX: 64, NY: 64, Iters: 4, P: 4, Mode: ADIDynamic})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunADI(ADIConfig{NX: 64, NY: 64, Iters: 4, P: 4, Mode: ADIStaticCols, ChunkRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.RedistMsgs+dyn.SweepMsgs == 0 || st.SweepMsgs == 0 {
		t.Fatal("traffic accounting broken")
	}
	if st.SweepMsgs <= dyn.RedistMsgs {
		t.Fatalf("expected static pipeline (chunked) to send more messages: static %d vs dynamic %d",
			st.SweepMsgs, dyn.RedistMsgs)
	}
}

func TestPICConservationAndBalance(t *testing.T) {
	cfg := PICConfig{NCell: 64, Steps: 30, P: 4, DriftFrac: 0.3, InitPerCell: 50, WorkPerParticle: 4}
	static, err := RunPIC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rebalance = true
	reb, err := RunPIC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// conservation
	if static.ParticlesStart != static.ParticlesEnd {
		t.Fatalf("static run lost particles: %v -> %v", static.ParticlesStart, static.ParticlesEnd)
	}
	if reb.ParticlesStart != reb.ParticlesEnd {
		t.Fatalf("rebalanced run lost particles: %v -> %v", reb.ParticlesStart, reb.ParticlesEnd)
	}
	// claim C3: drift degrades the static distribution's balance; the
	// B_BLOCK rebalancing keeps it near 1.
	if static.FinalImbalance < 1.5 {
		t.Fatalf("static imbalance should degrade, got %v", static.FinalImbalance)
	}
	if reb.FinalImbalance >= static.FinalImbalance {
		t.Fatalf("rebalancing did not help: %v vs %v", reb.FinalImbalance, static.FinalImbalance)
	}
	if reb.Redistributions == 0 {
		t.Fatal("rebalanced run never redistributed")
	}
	if static.Redistributions != 0 {
		t.Fatal("static run should never redistribute")
	}
}

func TestPICImbalanceSeriesMonotoneStatic(t *testing.T) {
	res, err := RunPIC(PICConfig{NCell: 32, Steps: 20, P: 4, DriftFrac: 0.4, InitPerCell: 40, WorkPerParticle: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImbalanceSeries[19] < res.ImbalanceSeries[0] {
		t.Fatalf("static drift should increase imbalance: %v", res.ImbalanceSeries)
	}
	if res.PeakImbalance < res.MeanImbalance {
		t.Fatal("peak < mean?")
	}
}

func TestComputeBounds(t *testing.T) {
	counts := []float64{10, 10, 10, 10, 0, 0, 0, 0}
	b := computeBounds(counts, 4)
	if b[3] != 8 {
		t.Fatalf("last bound = %d", b[3])
	}
	// each processor should get ~10 particles: bounds 1,2,3,8
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatalf("bounds = %v", b)
	}
	// degenerate: everything in one cell
	b = computeBounds([]float64{0, 0, 100, 0}, 2)
	if b[1] != 4 || b[0] < 2 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestSmoothingMessageCounts(t *testing.T) {
	// Claim C1 exactly: columns -> 2 messages of 8N bytes; 2-D blocks on
	// q×q -> 4 messages of 8N/q bytes (per interior processor per step).
	const n, p = 64, 4
	cols, err := RunSmoothing(SmoothConfig{N: n, Steps: 3, P: p, Mode: SmoothColumns})
	if err != nil {
		t.Fatal(err)
	}
	if cols.MsgsPerProcStep != 2 {
		t.Fatalf("columns msgs/proc/step = %v, want 2", cols.MsgsPerProcStep)
	}
	if cols.BytesPerProcStep != 2*8*n {
		t.Fatalf("columns bytes/proc/step = %v, want %d", cols.BytesPerProcStep, 2*8*n)
	}
	// The "4 messages" count is for an *interior* processor, so the 2-D
	// case needs q >= 3 (a 2x2 arrangement has only corner processors).
	const n2, p2, q2 = 63, 9, 3
	blk, err := RunSmoothing(SmoothConfig{N: n2, Steps: 3, P: p2, Mode: SmoothBlock2D})
	if err != nil {
		t.Fatal(err)
	}
	if blk.MsgsPerProcStep != 4 {
		t.Fatalf("block msgs/proc/step = %v, want 4", blk.MsgsPerProcStep)
	}
	if blk.BytesPerProcStep != 4*8*n2/q2 {
		t.Fatalf("block bytes/proc/step = %v, want %d", blk.BytesPerProcStep, 4*8*n2/q2)
	}
}

func TestSmoothingResultsMatchSerial(t *testing.T) {
	for _, mode := range []SmoothMode{SmoothColumns, SmoothBlock2D} {
		res, err := RunSmoothing(SmoothConfig{N: 32, Steps: 4, P: 4, Mode: mode, Validate: true})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.MaxErr > 1e-12 {
			t.Fatalf("%v deviates from serial by %g", mode, res.MaxErr)
		}
	}
}

func TestSmoothingDistributionsAgree(t *testing.T) {
	a, err := RunSmoothing(SmoothConfig{N: 48, Steps: 5, P: 4, Mode: SmoothColumns})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSmoothing(SmoothConfig{N: 48, Steps: 5, P: 4, Mode: SmoothBlock2D})
	if err != nil {
		t.Fatal(err)
	}
	d := a.Checksum - b.Checksum
	if d < 0 {
		d = -d
	}
	if d > 1e-9 {
		t.Fatalf("checksums differ: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestChooseSmoothingDistCrossover(t *testing.T) {
	// §4: "the ratio N/p will determine the most appropriate
	// distribution".  High startup cost favours fewer messages
	// (columns); high bandwidth cost favours smaller messages (blocks).
	alpha, beta := 1e-4, 1e-9
	if ChooseSmoothingDist(64, 16, alpha, beta) != SmoothColumns {
		t.Error("small N: columns (2 msgs) should win on startup cost")
	}
	if ChooseSmoothingDist(1<<20, 16, alpha, beta) != SmoothBlock2D {
		t.Error("huge N: blocks (smaller messages) should win on volume")
	}
	// non-square processor count cannot use the 2-D arrangement
	if ChooseSmoothingDist(1<<20, 6, alpha, beta) != SmoothColumns {
		t.Error("non-square P must fall back to columns")
	}
	// crossover is monotone in N
	prev := ChooseSmoothingDist(2, 16, alpha, beta)
	switched := 0
	for n := 4; n <= 1<<21; n *= 2 {
		cur := ChooseSmoothingDist(n, 16, alpha, beta)
		if cur != prev {
			switched++
			prev = cur
		}
	}
	if switched != 1 {
		t.Errorf("expected exactly one crossover, saw %d", switched)
	}
}

func TestRedistCost(t *testing.T) {
	res, err := RunRedistCost(RedistCostConfig{
		N0: 128, P: 4, Rounds: 3,
		From: []dist.DimSpec{dist.BlockDim()},
		To:   []dist.DimSpec{dist.CyclicDim(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ValuesPreserved {
		t.Fatal("redistribution corrupted values")
	}
	if res.BytesPerRound == 0 || res.MsgsPerRound == 0 {
		t.Fatal("no traffic measured")
	}
	// BLOCK -> CYCLIC moves 3/4 of the data on 4 procs: 128*8*3/4 = 768B
	want := float64(128 * 8 * 3 / 4)
	if res.BytesPerRound != want {
		t.Fatalf("bytes/round = %v, want %v", res.BytesPerRound, want)
	}
	if res.CacheMisses == 0 || res.CacheHits == 0 {
		t.Fatal("schedule cache not exercised")
	}
}

func TestRedistCostGrowsWithN(t *testing.T) {
	small, err := RunRedistCost(RedistCostConfig{N0: 64, P: 4, Rounds: 2,
		From: []dist.DimSpec{dist.BlockDim()}, To: []dist.DimSpec{dist.CyclicDim(1)}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunRedistCost(RedistCostConfig{N0: 1024, P: 4, Rounds: 2,
		From: []dist.DimSpec{dist.BlockDim()}, To: []dist.DimSpec{dist.CyclicDim(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if big.BytesPerRound <= small.BytesPerRound {
		t.Fatal("redistribution volume should grow with N")
	}
}

func TestADIModelTimeCrossover(t *testing.T) {
	// Claim C4: dynamic wins when per-phase locality outweighs the
	// DISTRIBUTE cost.  Under a high-latency model the chunked static
	// pipeline (many small messages) is modeled slower than the dynamic
	// version (few large transfers).
	alpha, beta := 5e-4, 2e-9
	dyn, err := RunADI(ADIConfig{NX: 128, NY: 128, Iters: 3, P: 4, Mode: ADIDynamic, Alpha: alpha, Beta: beta, ChunkRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunADI(ADIConfig{NX: 128, NY: 128, Iters: 3, P: 4, Mode: ADIStaticCols, Alpha: alpha, Beta: beta, ChunkRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.ModelTime == 0 || st.ModelTime == 0 {
		t.Fatal("cost model inactive")
	}
	if dyn.ModelTime >= st.ModelTime {
		t.Fatalf("under high latency dynamic should win: dyn %.6fs vs static %.6fs", dyn.ModelTime, st.ModelTime)
	}
}

func TestAppsOverTCP(t *testing.T) {
	adi, err := RunADI(ADIConfig{NX: 24, NY: 24, Iters: 2, P: 3, Mode: ADIDynamic, Validate: true, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if adi.MaxErr > 1e-10 {
		t.Fatalf("TCP ADI deviates by %g", adi.MaxErr)
	}
	sm, err := RunSmoothing(SmoothConfig{N: 32, Steps: 2, P: 4, Mode: SmoothColumns, Validate: true, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if sm.MaxErr > 1e-12 {
		t.Fatalf("TCP smoothing deviates by %g", sm.MaxErr)
	}
	pic, err := RunPIC(PICConfig{NCell: 32, Steps: 10, P: 4, Rebalance: true, UseTCP: true, WorkPerParticle: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pic.ParticlesStart != pic.ParticlesEnd {
		t.Fatal("TCP PIC lost particles")
	}
}
