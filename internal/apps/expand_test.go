package apps

import (
	"fmt"
	"testing"
	"time"
)

// expandADI is the shared shape of the elastic scale-out matrix: a
// 3-rank dynamic ADI with one reserved joiner, per-iteration
// checkpoints, and Elastic polling from the given iteration boundary.
// The members must admit the joiner mid-run, replay the checkpoint onto
// the grown 4-rank view, finish there, and still match the serial
// reference bit-for-bit.
func expandADI(t *testing.T, useTCP bool, joinAfter int) ADIResult {
	t.Helper()
	dir := t.TempDir()
	cfg := ADIConfig{
		NX: 24, NY: 24, Iters: 8, P: 3, Mode: ADIDynamic, Validate: true,
		CkptDir: dir, CkptEvery: 1,
		UseTCP:        useTCP,
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		Join:          1,
		Elastic:       true,
		JoinAfterIter: joinAfter,
	}
	res, err := RunADI(cfg)
	if err != nil {
		t.Fatalf("elastic expand run (tcp=%v joinAfter=%d): %v", useTCP, joinAfter, err)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("run finished on epoch %d: the joiner was never admitted", res.FinalEpoch)
	}
	if len(res.Survivors) != 4 {
		t.Fatalf("survivors = %v, want all 4 (3 base + joiner)", res.Survivors)
	}
	if res.ResumedIter < 0 {
		t.Fatal("grown view did not resume from the pre-admission checkpoint")
	}
	if res.MaxErr != 0 {
		t.Fatalf("grown-view result deviates from serial reference: MaxErr = %g, want bit-for-bit 0", res.MaxErr)
	}
	return res
}

// TestExpandADIChan: the joiner is admitted at the first iteration
// boundary, before the iteration loop has built up collective state.
func TestExpandADIChan(t *testing.T) { expandADI(t, false, 0) }

// TestExpandADIChanMidRun: admission after several iterations of
// DISTRIBUTE traffic — the schedule/plan caches and collective
// sequences of the old epoch must not leak into the grown view.
func TestExpandADIChanMidRun(t *testing.T) { expandADI(t, false, 4) }

// TestExpandADITCP: the same join handshake over real sockets.
func TestExpandADITCP(t *testing.T) { expandADI(t, true, 0) }

// TestExpandADITCPMidRun: sockets × late admission.
func TestExpandADITCPMidRun(t *testing.T) { expandADI(t, true, 4) }

// TestExpandRejectedJoin: a reserved rank is configured but the members
// never reach the polling boundary (JoinAfterIter beyond the run).  The
// joiner parks, is told off at run end (ErrNeverJoined, non-fatal), and
// the epoch-0 members finish untouched and bit-exact.
func TestExpandRejectedJoin(t *testing.T) {
	dir := t.TempDir()
	res, err := RunADI(ADIConfig{
		NX: 24, NY: 24, Iters: 4, P: 3, Mode: ADIDynamic, Validate: true,
		CkptDir: dir, CkptEvery: 1,
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		Join:          1,
		Elastic:       true,
		JoinAfterIter: 100,
	})
	if err != nil {
		t.Fatalf("rejected join must not fail the run: %v", err)
	}
	if res.FinalEpoch != 0 {
		t.Fatalf("rejected join still moved the epoch to %d", res.FinalEpoch)
	}
	if res.MaxErr != 0 {
		t.Fatalf("MaxErr = %g on the unchanged epoch-0 view", res.MaxErr)
	}
}

// TestExpandUnderFault: a rank dies while a joiner is waiting.  The
// run must absorb both membership changes — shrink-recovery for the
// death, the join at a later boundary (or both in one transition) —
// and still finish bit-exact.
func TestExpandUnderFault(t *testing.T) {
	dir := t.TempDir()
	res, err := RunADI(ADIConfig{
		NX: 24, NY: 24, Iters: 8, P: 4, Mode: ADIDynamic, Validate: true,
		CkptDir: dir, CkptEvery: 1,
		Fault:         fmt.Sprintf("drop,rank=2,after=%d", 150),
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		OnlineRecover: true,
		Join:          1,
		Elastic:       true,
		JoinAfterIter: 2,
	})
	if err != nil {
		t.Fatalf("expand under fault: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("run finished on epoch %d: neither transition landed", res.FinalEpoch)
	}
	if res.MaxErr != 0 {
		t.Fatalf("MaxErr = %g after death + join", res.MaxErr)
	}
}

// TestExpandRespectsMemBudget: the post-join redistributions of the
// resumed loop run at the grown processor count and must stay under the
// configured planner budget — measured by the wire gauge, attributed to
// physical ranks.
func TestExpandRespectsMemBudget(t *testing.T) {
	const budget = 2048
	dir := t.TempDir()
	res, err := RunADI(ADIConfig{
		NX: 32, NY: 32, Iters: 6, P: 3, Mode: ADIDynamic, Validate: true,
		CkptDir: dir, CkptEvery: 1,
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		Join:          1,
		Elastic:       true,
		JoinAfterIter: 2,
		MemBudget:     budget,
	})
	if err != nil {
		t.Fatalf("elastic budgeted run: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatal("joiner was never admitted")
	}
	if res.MaxErr != 0 {
		t.Fatalf("MaxErr = %g", res.MaxErr)
	}
	if res.PeakWireBytes == 0 {
		t.Fatal("no redistribution residency measured")
	}
	if res.PeakWireBytes > budget {
		t.Fatalf("peak resident wire bytes %d exceed the %d budget", res.PeakWireBytes, budget)
	}
}

// TestExpandSmoothing: the double-buffered stencil grows mid-run; the
// checkpointed step parity replays onto the 4-rank view and the result
// stays within float tolerance of the serial reference.
func TestExpandSmoothing(t *testing.T) {
	dir := t.TempDir()
	res, err := RunSmoothing(SmoothConfig{
		N: 24, Steps: 8, P: 3, Mode: SmoothColumns, Validate: true,
		CkptDir: dir, CkptEvery: 1,
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		Join:          1,
		Elastic:       true,
		JoinAfterIter: 2,
	})
	if err != nil {
		t.Fatalf("elastic smoothing: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatal("joiner was never admitted")
	}
	if res.MaxErr > 1e-12 {
		t.Fatalf("MaxErr = %g after expansion", res.MaxErr)
	}
}

// TestExpandPICConservation: PIC grows mid-run; the next rebalance
// spreads B_BLOCK bounds over the admitted rank and particle
// conservation holds across the membership change.
func TestExpandPICConservation(t *testing.T) {
	dir := t.TempDir()
	res, err := RunPIC(PICConfig{
		NCell: 32, Steps: 8, P: 3, Rebalance: true, RebalanceEvery: 2, InitPerCell: 16,
		CkptDir: dir, CkptEvery: 1,
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		Join:          1,
		Elastic:       true,
		JoinAfterIter: 2,
	})
	if err != nil {
		t.Fatalf("elastic PIC: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatal("joiner was never admitted")
	}
	if res.ParticlesEnd != float64(32*16) {
		t.Fatalf("particles not conserved through the expansion: %v, want %v", res.ParticlesEnd, 32*16)
	}
}
