package apps

import (
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// RedistCostConfig parameterizes a DISTRIBUTE cost measurement (claim C4:
// "There are significant costs associated with using dynamic distribution
// of data").  The array ping-pongs between From and To `Round` times.
type RedistCostConfig struct {
	N0, N1 int // array extents (N1 = 0 for 1-D)
	P      int
	From   []dist.DimSpec
	To     []dist.DimSpec
	Rounds int
	// Alpha/Beta attach a cost model.
	Alpha, Beta float64
	// MemBudget bounds each redistribution's peak resident wire bytes per
	// rank (0 = unbounded: always the direct alltoallv plan).
	MemBudget int64
}

// RedistCostResult reports per-round averages.
type RedistCostResult struct {
	BytesPerRound   float64 // payload bytes moved per direction change
	MsgsPerRound    float64
	WallPerRound    time.Duration
	ModelPerRound   float64
	CacheHits       int
	CacheMisses     int
	ValuesPreserved bool
	// PeakWireBytes is the measured high-water mark of resident wire
	// bytes on any rank over the whole run (msg.Stats gauge) — with a
	// MemBudget set it must come in at or under the budget.
	PeakWireBytes int64
}

// RunRedistCost measures the cost of the DISTRIBUTE statement itself.
func RunRedistCost(cfg RedistCostConfig) (RedistCostResult, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	var mopts []machine.Option
	var cm *msg.CostModel
	if cfg.Alpha != 0 || cfg.Beta != 0 {
		cm = msg.NewCostModel(cfg.P, cfg.Alpha, cfg.Beta)
		mopts = append(mopts, machine.WithCostModel(cm))
	}
	m := machine.New(cfg.P, mopts...)
	defer m.Close()
	e := core.NewEngine(m)
	e.SetMemBudget(cfg.MemBudget)

	var dom index.Domain
	if cfg.N1 > 0 {
		dom = index.Dim(cfg.N0, cfg.N1)
	} else {
		dom = index.Dim(cfg.N0)
	}
	val := func(p index.Point) float64 {
		v := float64(p[0])
		if len(p) > 1 {
			v += 1000 * float64(p[1])
		}
		return v
	}

	res := RedistCostResult{ValuesPreserved: true}
	var wall time.Duration
	err := m.Run(func(ctx *machine.Ctx) error {
		a := e.MustDeclare(ctx, core.Decl{Name: "A", Domain: dom, Dynamic: true,
			Init: &core.DistSpec{Type: dist.NewType(cfg.From...)}})
		a.FillFunc(ctx, val)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		for r := 0; r < cfg.Rounds; r++ {
			if err := e.Distribute(ctx, []*core.Array{a}, core.DimsOf(cfg.To...)); err != nil {
				return err
			}
			if err := e.Distribute(ctx, []*core.Array{a}, core.DimsOf(cfg.From...)); err != nil {
				return err
			}
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			wall = time.Since(start)
			res.CacheHits, res.CacheMisses = a.DArray().ScheduleCacheStats()
		}
		bad := 0
		a.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
			if *v != val(p) {
				bad++
			}
		})
		if bad > 0 {
			res.ValuesPreserved = false
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	sn := m.Stats().Snapshot()
	res.PeakWireBytes = m.Stats().PeakWireBytes()
	rounds := float64(2 * cfg.Rounds) // two redistributions per round
	res.BytesPerRound = float64(sn.TotalBytes()) / rounds
	res.MsgsPerRound = float64(sn.TotalDataMsgs()) / rounds
	res.WallPerRound = time.Duration(float64(wall) / rounds)
	if cm != nil {
		res.ModelPerRound = cm.Makespan() / rounds
	}
	return res, nil
}
