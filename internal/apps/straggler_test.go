package apps

import (
	"testing"
	"time"
)

// stragglerCfg is the shared defense setup of the matrix: a fast-tick
// scorer (4-observation window, 2× degraded threshold, minimum
// hysteresis) with an 8× injected straggler on physical rank 2.
func stragglerCfg(policy string) StragglerConfig {
	return StragglerConfig{
		HealthWindow:  4,
		DegradedRatio: 2,
		Hysteresis:    2,
		Policy:        policy,
		CheckAfter:    3,
		SlowRank:      2,
		SlowFactor:    8,
	}
}

// stragglerADI is the shared shape of the mitigation matrix: a 4-rank
// dynamic ADI with an injected 8× straggler on rank 2.  The health
// scorer must classify it from the heartbeat-carried work reports, the
// configured policy must fire at an iteration boundary, and the result
// must still match the serial reference bit-for-bit.
func stragglerADI(t *testing.T, useTCP bool, policy string) ADIResult {
	t.Helper()
	cfg := ADIConfig{
		NX: 64, NY: 64, Iters: 40, P: 4, Mode: ADIDynamic, Validate: true,
		CkptDir: t.TempDir(), CkptEvery: 4,
		UseTCP:      useTCP,
		CommTimeout: 250 * time.Millisecond,
		CommRetries: 2,
		Liveness:    testLiveness(),
		Straggler:   stragglerCfg(policy),
	}
	res, err := RunADI(cfg)
	if err != nil {
		t.Fatalf("straggler run (tcp=%v policy=%s): %v", useTCP, policy, err)
	}
	if res.DegradedRank != 2 {
		t.Fatalf("DegradedRank = %d, want the injected straggler 2", res.DegradedRank)
	}
	if res.Mitigation != policy {
		t.Fatalf("Mitigation = %q, want %q", res.Mitigation, policy)
	}
	if res.MaxErr != 0 {
		t.Fatalf("mitigated result deviates from serial reference: MaxErr = %g, want bit-for-bit 0", res.MaxErr)
	}
	return res
}

// TestStragglerADIRebalanceChan: the rebalance policy re-divides the
// block bounds by measured speed and the run finishes on the original
// membership, bit-exact.
func TestStragglerADIRebalanceChan(t *testing.T) {
	res := stragglerADI(t, false, "rebalance")
	if res.FinalEpoch != 0 {
		t.Fatalf("rebalance moved the membership epoch to %d", res.FinalEpoch)
	}
	if len(res.Drained) != 0 {
		t.Fatalf("rebalance drained ranks: %v", res.Drained)
	}
}

// TestStragglerADIDrainChan: the drain policy checkpoints, voluntarily
// shrinks the membership by the straggler, and the 3 survivors replay
// onto epoch 1 and still match the reference bit-for-bit.
func TestStragglerADIDrainChan(t *testing.T) {
	res := stragglerADI(t, false, "drain")
	if res.FinalEpoch < 1 {
		t.Fatalf("drain finished on epoch %d, want a membership transition", res.FinalEpoch)
	}
	if len(res.Drained) != 1 || res.Drained[0] != 2 {
		t.Fatalf("Drained = %v, want [2]", res.Drained)
	}
}

// TestStragglerADIRebalanceTCP / TestStragglerADIDrainTCP: the same
// detection and mitigation over real sockets.
func TestStragglerADIRebalanceTCP(t *testing.T) {
	res := stragglerADI(t, true, "rebalance")
	if res.FinalEpoch != 0 {
		t.Fatalf("rebalance moved the membership epoch to %d", res.FinalEpoch)
	}
}

func TestStragglerADIDrainTCP(t *testing.T) {
	res := stragglerADI(t, true, "drain")
	if res.FinalEpoch < 1 {
		t.Fatalf("drain finished on epoch %d, want a membership transition", res.FinalEpoch)
	}
	if len(res.Drained) != 1 || res.Drained[0] != 2 {
		t.Fatalf("Drained = %v, want [2]", res.Drained)
	}
}

// TestStragglerObserveOnly: with the policy off, the scorer still
// classifies the injected straggler but nothing is mitigated — the
// do-nothing baseline of the defense.
func TestStragglerObserveOnly(t *testing.T) {
	res, err := RunADI(ADIConfig{
		NX: 64, NY: 64, Iters: 30, P: 4, Mode: ADIDynamic, Validate: true,
		CommTimeout: 250 * time.Millisecond,
		CommRetries: 2,
		Liveness:    testLiveness(),
		Straggler:   stragglerCfg("off"),
	})
	if err != nil {
		t.Fatalf("observe-only run: %v", err)
	}
	if res.DegradedRank != 2 {
		t.Fatalf("DegradedRank = %d, want 2", res.DegradedRank)
	}
	if res.Mitigation != "" || res.FinalEpoch != 0 {
		t.Fatalf("observe-only run mitigated: %q, epoch %d", res.Mitigation, res.FinalEpoch)
	}
	if res.MaxErr != 0 {
		t.Fatalf("MaxErr = %g", res.MaxErr)
	}
}

// TestStragglerPICRebalance: the weighted balance() divides particles —
// not cells — by measured speed: the 8× rank ends with the smallest
// particle share, and conservation holds.
func TestStragglerPICRebalance(t *testing.T) {
	res, err := RunPIC(PICConfig{
		NCell: 64, Steps: 30, P: 4, Rebalance: true, RebalanceEvery: 5,
		InitPerCell: 32, WorkPerParticle: 400,
		CommTimeout: 250 * time.Millisecond,
		CommRetries: 2,
		Liveness:    testLiveness(),
		Straggler:   stragglerCfg("rebalance"),
	})
	if err != nil {
		t.Fatalf("PIC straggler run: %v", err)
	}
	if res.DegradedRank != 2 {
		t.Fatalf("DegradedRank = %d, want 2", res.DegradedRank)
	}
	if res.Mitigation != "rebalance" {
		t.Fatalf("Mitigation = %q, want rebalance", res.Mitigation)
	}
	if res.ParticlesEnd != res.ParticlesStart {
		t.Fatalf("particles not conserved across the weighted rebalance: %v -> %v",
			res.ParticlesStart, res.ParticlesEnd)
	}
	if res.Redistributions == 0 {
		t.Fatal("weighted rebalance never redistributed")
	}
}

// TestStragglerPICDrain: the drain policy shrinks PIC's membership; the
// survivors replay the checkpoint and conservation still holds.
func TestStragglerPICDrain(t *testing.T) {
	res, err := RunPIC(PICConfig{
		NCell: 64, Steps: 30, P: 4, Rebalance: true, RebalanceEvery: 5,
		InitPerCell: 32, WorkPerParticle: 400,
		CkptDir: t.TempDir(), CkptEvery: 2,
		CommTimeout: 250 * time.Millisecond,
		CommRetries: 2,
		Liveness:    testLiveness(),
		Straggler:   stragglerCfg("drain"),
	})
	if err != nil {
		t.Fatalf("PIC drain run: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("drain finished on epoch %d", res.FinalEpoch)
	}
	if len(res.Drained) != 1 || res.Drained[0] != 2 {
		t.Fatalf("Drained = %v, want [2]", res.Drained)
	}
	if res.ParticlesEnd != float64(64*32) {
		t.Fatalf("particles not conserved across the drain: %v, want %v", res.ParticlesEnd, 64*32)
	}
}

// TestStragglerSmoothingDrain: the stencil's drain-only defense — the
// straggler leaves, the survivors replay the double-buffer parity, and
// the result stays within float tolerance of the serial reference.
func TestStragglerSmoothingDrain(t *testing.T) {
	res, err := RunSmoothing(SmoothConfig{
		N: 64, Steps: 30, P: 4, Mode: SmoothColumns, Validate: true,
		CkptDir: t.TempDir(), CkptEvery: 2,
		CommTimeout: 250 * time.Millisecond,
		CommRetries: 2,
		Liveness:    testLiveness(),
		Straggler:   stragglerCfg("drain"),
	})
	if err != nil {
		t.Fatalf("smoothing drain run: %v", err)
	}
	if res.DegradedRank != 2 {
		t.Fatalf("DegradedRank = %d, want 2", res.DegradedRank)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("drain finished on epoch %d", res.FinalEpoch)
	}
	if len(res.Drained) != 1 || res.Drained[0] != 2 {
		t.Fatalf("Drained = %v, want [2]", res.Drained)
	}
	if res.MaxErr > 1e-12 {
		t.Fatalf("MaxErr = %g after the drain", res.MaxErr)
	}
}

// TestStragglerConfigValidation: misconfigurations are named errors up
// front, not mid-run surprises.
func TestStragglerConfigValidation(t *testing.T) {
	base := ADIConfig{NX: 32, NY: 32, Iters: 4, P: 4, Mode: ADIDynamic}
	cases := []struct {
		name string
		mut  func(*ADIConfig)
	}{
		{"policy without window", func(c *ADIConfig) {
			c.Straggler = StragglerConfig{Policy: "drain"}
		}},
		{"no liveness", func(c *ADIConfig) {
			c.Straggler = StragglerConfig{HealthWindow: 4}
		}},
		{"mitigation without timeout", func(c *ADIConfig) {
			c.Liveness = testLiveness()
			c.Straggler = StragglerConfig{HealthWindow: 4, Policy: "rebalance"}
		}},
		{"drain without ckpt", func(c *ADIConfig) {
			c.Liveness = testLiveness()
			c.CommTimeout = 250 * time.Millisecond
			c.Straggler = StragglerConfig{HealthWindow: 4, Policy: "drain"}
		}},
		{"unknown policy", func(c *ADIConfig) {
			c.Liveness = testLiveness()
			c.CommTimeout = 250 * time.Millisecond
			c.Straggler = StragglerConfig{HealthWindow: 4, Policy: "panic"}
		}},
		{"static mode", func(c *ADIConfig) {
			c.Liveness = testLiveness()
			c.CommTimeout = 250 * time.Millisecond
			c.Mode = ADIStaticCols
			c.Straggler = StragglerConfig{HealthWindow: 4, Policy: "rebalance"}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := RunADI(cfg); err == nil {
			t.Errorf("%s: RunADI accepted an invalid straggler config", tc.name)
		}
	}
	if _, err := RunSmoothing(SmoothConfig{
		N: 32, Steps: 4, P: 4, Mode: SmoothColumns,
		CkptDir:     t.TempDir(),
		CommTimeout: 250 * time.Millisecond,
		Liveness:    testLiveness(),
		Straggler:   StragglerConfig{HealthWindow: 4, Policy: "rebalance"},
	}); err == nil {
		t.Error("smoothing accepted the rebalance policy")
	}
}
