// Package apps contains the paper's application studies (§4) as
// parameterized, metric-reporting harnesses shared by the examples, the
// benchmarks in bench_test.go, and cmd/vfbench:
//
//   - ADI (Figure 1, claim C2): dynamic redistribution between sweeps vs
//     a static distribution with a pipelined distributed tridiagonal
//     solve;
//   - PIC (Figure 2, claim C3): B_BLOCK load balancing vs static BLOCK;
//   - grid smoothing (claim C1): column vs 2-D block distribution and the
//     N/p crossover;
//   - redistribution microcosts (claim C4).
package apps

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/health"
	"repro/internal/index"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/scale"
	"repro/internal/trace"
)

// ADIMode selects the distribution strategy of the ADI run.
type ADIMode int

// ADI strategies.
const (
	// ADIDynamic is Figure 1: V is DYNAMIC, distributed (:,BLOCK) for the
	// x-sweep and redistributed to (BLOCK,:) for the y-sweep each
	// iteration.  All communication is confined to the two DISTRIBUTE
	// statements.
	ADIDynamic ADIMode = iota
	// ADIStaticCols keeps V statically distributed (:,BLOCK): the x-sweep
	// is local, the y-sweep runs a pipelined distributed Thomas solve —
	// the communication "the compiler must embed" per §4.
	ADIStaticCols
	// ADIStaticRows keeps V statically distributed (BLOCK,:): the y-sweep
	// is local, the x-sweep is pipelined.
	ADIStaticRows
)

func (m ADIMode) String() string {
	switch m {
	case ADIDynamic:
		return "dynamic"
	case ADIStaticCols:
		return "static(:,BLOCK)"
	case ADIStaticRows:
		return "static(BLOCK,:)"
	}
	return "?"
}

// ADIConfig parameterizes an ADI run.
type ADIConfig struct {
	NX, NY int
	Iters  int
	P      int
	Mode   ADIMode
	// ChunkRows batches pipeline messages in the static modes (default 8).
	ChunkRows int
	// Alpha/Beta attach a Hockney cost model when non-zero.
	Alpha, Beta float64
	// FlopTime charges modeled compute per element-update (default 2ns).
	FlopTime float64
	// Validate compares the final grid against the serial reference.
	Validate bool
	// UseTCP runs the machine over the TCP loopback transport instead of
	// the in-process one (same semantics, real sockets).
	UseTCP bool
	// Tracer, when non-nil, records the run's spans and messages (the
	// iteration loop is annotated as the "iterate" phase).
	Tracer *trace.Tracer
	// Fault, when non-empty, wraps the transport in a fault-injecting
	// decorator built from msg.ParseFaultPlan (the vfbench -fault flag).
	Fault string
	// CommTimeout/CommRetries install a deadline/retry policy on the
	// collectives so injected faults surface as errors instead of hangs.
	// The escalated per-receive deadline is capped at 4×CommTimeout.
	CommTimeout time.Duration
	CommRetries int
	// CkptDir enables coordinated checkpoints: after every CkptEvery-th
	// completed iteration the grid and its distribution descriptor are
	// written to this directory (see internal/ckpt).
	CkptDir string
	// CkptEvery is the checkpoint period in iterations (default 1 when
	// CkptDir is set).
	CkptEvery int
	// IO selects the parallel-I/O options (striping, redundancy,
	// retention, disk-fault injection) for the checkpoints.
	IO IOConfig
	// Recover resumes from the latest committed checkpoint in CkptDir
	// instead of the initial grid: the recorded distribution is replayed
	// onto this run's P processors (shrunken if fewer survive) and the
	// iteration counter restarts after the checkpointed iteration.
	Recover bool
	// Liveness, when non-nil, runs the heartbeat failure detector so a
	// run killed by a permanent rank loss can report its survivors.
	Liveness *machine.LivenessConfig
	// OnlineRecover enables in-process failure recovery: when a rank
	// dies mid-run, the survivors Regroup onto the next membership
	// epoch, replay the last committed checkpoint from CkptDir onto the
	// shrunken processor view, and resume the iteration without leaving
	// Run.  Requires CkptDir, Liveness, and a CommTimeout.
	OnlineRecover bool
	// Integrity appends a CRC32C trailer to every wire message, turning
	// silent payload corruption into the named msg.ErrIntegrity
	// transport error.  Implied when Fault has a corrupt/bitflip rule.
	Integrity bool
	// Join reserves this many extra ranks beyond P; they park in
	// AwaitJoin and are admitted mid-run when Elastic is set (see
	// machine.WithReserve).  Requires Liveness and a CommTimeout.
	Join int
	// Elastic lets the active members poll for pending joiners at every
	// iteration boundary at or after JoinAfterIter; on a hit they
	// checkpoint, admit the joiner into the next membership epoch, and
	// replay onto the grown view.  Requires CkptDir and Join > 0.
	Elastic bool
	// JoinAfterIter is the first iteration boundary at which the members
	// poll for joiners (0 = poll from the first).
	JoinAfterIter int
	// MemBudget bounds each rank's peak resident wire bytes during
	// redistributions (Engine.SetMemBudget), surviving every recovery
	// and expansion transition.  <= 0 means unbounded.
	MemBudget int64
	// Straggler configures the rank-health scorer, an optional injected
	// slow rank, and the mitigation policy (observe, rebalance the block
	// bounds by measured speed, or drain the straggler).  Mitigation
	// requires ADIDynamic — the static modes cannot re-divide their
	// distribution.
	Straggler StragglerConfig
}

// ADIResult reports an ADI run.
type ADIResult struct {
	Mode        ADIMode
	Wall        time.Duration
	Msgs, Bytes int64
	SweepMsgs   int64 // messages during sweeps (static pipeline traffic)
	RedistMsgs  int64 // messages during DISTRIBUTE (dynamic traffic)
	RedistBytes int64
	ModelTime   float64 // modeled makespan in seconds (0 without model)
	MaxErr      float64 // vs serial reference (when validated)
	Checksum    float64
	CacheHits   int
	CacheMisses int
	// Survivors is the failure detector's surviving rank set, populated
	// (even when Run errors) if Liveness was configured — the processor
	// count a recovery run should use.
	Survivors []int
	// ResumedIter is the checkpointed iteration a Recover run resumed
	// after, or -1 for a fresh start.
	ResumedIter int
	// Epochs counts the checkpoint epochs this run committed.
	Epochs int
	// FinalEpoch is the membership epoch the run completed on: 0 for a
	// failure-free run, >0 after in-process online recovery.
	FinalEpoch int
	// PeakWireBytes is the highest per-rank resident wire-buffer
	// residency any redistribution reached — the quantity MemBudget
	// bounds.
	PeakWireBytes int64
	// DegradedRank is the first physical rank the health scorer ever
	// classified Degraded (-1: none, or scoring off).
	DegradedRank int
	// Mitigation is the straggler mitigation that fired ("rebalance",
	// "drain", or empty).
	Mitigation string
	// Drained lists the physical ranks voluntarily drained from the
	// membership by the straggler policy.
	Drained []int
	// Health is the scorer's final per-rank report (nil with scoring
	// off) — class, slowdown vs the median, and observation count.
	Health []health.RankReport
}

const (
	adiA, adiB, adiC = -1.0, 4.0, -1.0
)

func colsType() dist.Type { return dist.NewType(dist.ElidedDim(), dist.BlockDim()) }
func rowsType() dist.Type { return dist.NewType(dist.BlockDim(), dist.ElidedDim()) }

// RunADI executes the Figure 1 iteration under the chosen strategy and
// reports traffic, modeled and measured time, and (optionally) the
// deviation from the serial reference.
func RunADI(cfg ADIConfig) (ADIResult, error) {
	if cfg.ChunkRows <= 0 {
		cfg.ChunkRows = 8
	}
	if cfg.FlopTime == 0 {
		cfg.FlopTime = 2e-9
	}
	// Reserved joiners share the cost model, transport, and detector, so
	// every physical-rank-indexed structure is sized to the capacity.
	total := cfg.P + cfg.Join
	if cfg.NX < total || cfg.NY < total {
		return ADIResult{}, fmt.Errorf("apps: ADI needs NX,NY >= P+Join (%dx%d on %d)", cfg.NX, cfg.NY, total)
	}
	if cfg.Elastic && (cfg.Join <= 0 || cfg.CkptDir == "") {
		return ADIResult{}, fmt.Errorf("apps: Elastic requires Join > 0 and a CkptDir")
	}
	if err := cfg.Straggler.validate(cfg.Liveness != nil, cfg.CommTimeout, cfg.CkptDir); err != nil {
		return ADIResult{}, err
	}
	if cfg.Straggler.mitigating() && cfg.Mode != ADIDynamic {
		return ADIResult{}, fmt.Errorf("apps: straggler mitigation requires the dynamic ADI mode (static distributions cannot be re-divided)")
	}
	var mopts []machine.Option
	var cm *msg.CostModel
	var topts []msg.Option
	if cfg.Alpha != 0 || cfg.Beta != 0 {
		cm = msg.NewCostModel(total, cfg.Alpha, cfg.Beta)
		mopts = append(mopts, machine.WithCostModel(cm))
		topts = append(topts, msg.WithCost(cm))
	}
	if cfg.Tracer != nil {
		mopts = append(mopts, machine.WithTrace(cfg.Tracer))
		topts = append(topts, msg.WithTracer(cfg.Tracer))
	}
	base, err := assembleTransport(total, cfg.UseTCP, cfg.Fault, cfg.Integrity, topts)
	if err != nil {
		return ADIResult{Mode: cfg.Mode}, err
	}
	if base != nil {
		mopts = append(mopts, machine.WithTransport(base))
	}
	if cfg.CommTimeout > 0 || cfg.CommRetries > 0 {
		mopts = append(mopts, machine.WithCommConfig(msg.CommConfig{
			Timeout: cfg.CommTimeout, Retries: cfg.CommRetries, Backoff: time.Millisecond,
			MaxTimeout: 4 * cfg.CommTimeout, MaxBackoff: 16 * time.Millisecond,
		}))
	}
	if cfg.Liveness != nil {
		mopts = append(mopts, machine.WithLiveness(*cfg.Liveness))
	}
	if cfg.Straggler.Enabled() {
		mopts = append(mopts, machine.WithHealth(cfg.Straggler.healthConfig()))
	}
	if cfg.CkptDir != "" && cfg.CkptEvery <= 0 {
		cfg.CkptEvery = 1
	}
	if cfg.Join > 0 {
		mopts = append(mopts, machine.WithReserve(cfg.Join))
	}
	m := machine.New(cfg.P, mopts...)
	defer m.Close()
	e := core.NewEngine(m)
	e.SetMemBudget(cfg.MemBudget)
	e.SetCkptOptions(cfg.IO.options())
	res := ADIResult{Mode: cfg.Mode, ResumedIter: -1, DegradedRank: -1}

	dom := index.Dim(cfg.NX, cfg.NY)
	initial := func(p index.Point) float64 {
		return float64((p[0]*31+p[1]*17)%13) - 6.0
	}

	// serial reference
	var ref []float64
	if cfg.Validate {
		ref = make([]float64, dom.Size())
		dom.WholeSection().ForEach(func(p index.Point) bool {
			ref[dom.Offset(p)] = initial(p)
			return true
		})
		kernels.SerialADI(ref, cfg.NX, cfg.NY, cfg.Iters, adiA, adiB, adiC)
	}

	var sweepMsgs, redistMsgs, redistBytes int64
	var finalErr, checksum float64
	var hits, misses int
	var resumedIter = -1
	var nEpochs, finalEpoch int
	var mitigation string
	var drainedPhys []int
	start := time.Now()
	err = m.Run(func(ctx *machine.Ctx) error {
		// Per-goroutine straggler state, persisting across body re-entries:
		// a rebalance installs weighted B_BLOCK bounds for the remaining
		// redistributions; mitigated makes the policy one-shot per run.
		var rowBounds, colBounds []int
		mitigated := false
		body := func(eng *core.Engine, online bool) error {
			if colBounds != nil && len(colBounds) != ctx.NP() {
				// A membership transition changed the view size since the
				// bounds were computed: fall back to the even block split.
				rowBounds, colBounds = nil, nil
			}
			colsTarget := func() core.Expr {
				if colBounds != nil {
					return core.DimsOf(dist.ElidedDim(), dist.BBlockDim(colBounds...))
				}
				return core.DimsOf(dist.ElidedDim(), dist.BlockDim())
			}
			rowsTarget := func() core.Expr {
				if rowBounds != nil {
					return core.DimsOf(dist.BBlockDim(rowBounds...), dist.ElidedDim())
				}
				return core.DimsOf(dist.BlockDim(), dist.ElidedDim())
			}
			colsDist := core.DistSpec{Type: colsType()}
			rowsDist := core.DistSpec{Type: rowsType()}
			var v *core.Array
			switch cfg.Mode {
			case ADIDynamic:
				v = eng.MustDeclare(ctx, core.Decl{Name: "V", Domain: dom, Dynamic: true, Init: &colsDist})
			case ADIStaticCols:
				v = eng.MustDeclare(ctx, core.Decl{Name: "V", Domain: dom, Static: &colsDist})
			case ADIStaticRows:
				v = eng.MustDeclare(ctx, core.Decl{Name: "V", Domain: dom, Static: &rowsDist})
			}
			// A fresh run starts from the analytic initial grid; a recovery
			// run replays the last committed checkpoint — values and
			// distribution descriptor — onto this (possibly smaller) machine
			// and resumes after the checkpointed iteration.  An online
			// recovery attempt does the same in-process, over the regrouped
			// survivor view.
			it0 := 0
			switch {
			case online:
				man, err := eng.Recover(ctx, cfg.CkptDir)
				if err != nil {
					return err
				}
				if iter, ok := man.MetaInt("iter"); ok {
					it0 = iter + 1
				}
				if ctx.Rank() == 0 {
					resumedIter = it0 - 1
				}
			case cfg.Recover:
				man, err := eng.Restore(ctx, cfg.CkptDir)
				if err != nil {
					return err
				}
				if iter, ok := man.MetaInt("iter"); ok {
					it0 = iter + 1
				}
				if ctx.Rank() == 0 {
					resumedIter = it0 - 1
				}
			default:
				v.FillFunc(ctx, initial)
			}
			if err := ctx.Barrier(); err != nil {
				return err
			}

			// account runs a phase and, after the trailing barrier, adds its
			// rank-0-observed global traffic delta to the given counters.
			account := func(phase func() error, msgs, bytes *int64) error {
				pre := m.Stats().Snapshot()
				if err := ctx.Barrier(); err != nil { // no rank may send before pre is taken
					return err
				}
				if err := phase(); err != nil {
					return err
				}
				if err := ctx.Barrier(); err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					d := m.Stats().Snapshot().Sub(pre)
					*msgs += d.TotalDataMsgs()
					if bytes != nil {
						*bytes += d.TotalBytes()
					}
				}
				return nil
			}

			ctx.PhaseBegin("iterate")
			for it := it0; it < cfg.Iters; it++ {
				var err error
				iterT0 := time.Now()
				switch cfg.Mode {
				case ADIDynamic:
					if it > 0 {
						err = account(func() error {
							return eng.Distribute(ctx, []*core.Array{v}, colsTarget())
						}, &redistMsgs, &redistBytes)
						if err != nil {
							return err
						}
					}
					// Compute sections run under timed: injected slowdown is
					// applied and the busy time reported to the health scorer
					// (barrier/communication waits deliberately excluded).
					el0 := cfg.Straggler.timed(ctx, func() { localSweep(ctx, v, 0, cfg.FlopTime) })
					units := localElems(ctx, v)
					if err = ctx.Barrier(); err != nil {
						return err
					}
					err = account(func() error {
						return eng.Distribute(ctx, []*core.Array{v}, rowsTarget())
					}, &redistMsgs, &redistBytes)
					if err != nil {
						return err
					}
					el1 := cfg.Straggler.timed(ctx, func() { localSweep(ctx, v, 1, cfg.FlopTime) })
					units += localElems(ctx, v)
					if err = ctx.Barrier(); err != nil {
						return err
					}
					if cfg.Straggler.Enabled() {
						ctx.ReportWork(units, el0+el1)
					}
				case ADIStaticCols:
					el := cfg.Straggler.timed(ctx, func() { localSweep(ctx, v, 0, cfg.FlopTime) })
					if cfg.Straggler.Enabled() {
						ctx.ReportWork(localElems(ctx, v), el)
					}
					if err = ctx.Barrier(); err != nil {
						return err
					}
					err = account(func() error { return pipelinedSweep(ctx, v, 1, cfg.ChunkRows, cfg.FlopTime) }, &sweepMsgs, nil)
					if err != nil {
						return err
					}
				case ADIStaticRows:
					err = account(func() error { return pipelinedSweep(ctx, v, 0, cfg.ChunkRows, cfg.FlopTime) }, &sweepMsgs, nil)
					if err != nil {
						return err
					}
					el := cfg.Straggler.timed(ctx, func() { localSweep(ctx, v, 1, cfg.FlopTime) })
					if cfg.Straggler.Enabled() {
						ctx.ReportWork(localElems(ctx, v), el)
					}
					if err = ctx.Barrier(); err != nil {
						return err
					}
				}
				if cfg.CkptDir != "" && (it+1)%cfg.CkptEvery == 0 {
					if _, err := eng.CheckpointIter(ctx, cfg.CkptDir, it); err != nil {
						return err
					}
					if ctx.Rank() == 0 {
						nEpochs++
					}
				}
				// Elastic scale-out: every member takes the same agreed
				// poll at the iteration boundary; on a pending joiner the
				// body checkpoints here and bails out so the recovery
				// driver can Admit it and replay onto the grown view.
				if cfg.Elastic && it+1 >= cfg.JoinAfterIter && it+1 < cfg.Iters {
					grow, gerr := ctx.PollJoin()
					if gerr != nil {
						return gerr
					}
					if grow {
						if _, err := eng.CheckpointIter(ctx, cfg.CkptDir, it); err != nil {
							return err
						}
						return errGrow
					}
				}
				// Straggler defense: the members take one agreed mitigation
				// decision per boundary once the scorer has had a chance to
				// classify.  A rebalance installs weighted bounds for the
				// remaining redistributions; a drain checkpoints and leaves
				// the body so the recovery driver can shrink the membership.
				if cfg.Straggler.mitigating() && !mitigated && it+1 >= cfg.Straggler.checkAfter() && it+1 < cfg.Iters {
					dec, view, speeds, derr := decideStraggler(ctx, m, cfg.Straggler, cfg.Iters-(it+1), time.Since(iterT0))
					if derr != nil {
						return derr
					}
					switch dec {
					case scale.Rebalance:
						mitigated = true
						rowBounds = scale.WeightedBounds(cfg.NX, speeds)
						colBounds = scale.WeightedBounds(cfg.NY, speeds)
						if ctx.Rank() == 0 {
							mitigation = "rebalance"
						}
					case scale.Drain:
						mitigated = true
						if _, err := eng.CheckpointIter(ctx, cfg.CkptDir, it); err != nil {
							return err
						}
						if ctx.Rank() == 0 {
							mitigation = "drain"
							drainedPhys = append(drainedPhys, ctx.PhysOf(view))
						}
						return &drainError{viewRank: view}
					}
				}
			}
			ctx.PhaseEnd("iterate")

			if cfg.Validate {
				got, err := v.GatherTo(ctx, 0)
				if err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					for i, x := range got {
						checksum += x
						d := x - ref[i]
						if d < 0 {
							d = -d
						}
						if d > finalErr {
							finalErr = d
						}
					}
				}
			} else {
				s, err := v.DArray().ReduceSum(ctx)
				if err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					checksum = s
				}
			}
			if ctx.Rank() == 0 {
				hits, misses = v.DArray().ScheduleCacheStats()
				finalEpoch = ctx.Epoch()
			}
			return nil
		}
		return runWithOnlineRecovery(ctx, m, e, cfg.OnlineRecover && cfg.CkptDir != "", max(cfg.P, 2), cfg.MemBudget, body)
	})
	res.Survivors = m.Survivors()
	res.DegradedRank = degradedRank(m)
	res.Health = healthReport(m)
	res.Mitigation = mitigation
	res.Drained = drainedPhys
	if err != nil {
		return res, err
	}
	res.Wall = time.Since(start)
	res.ResumedIter = resumedIter
	res.Epochs = nEpochs
	res.FinalEpoch = finalEpoch
	sn := m.Stats().Snapshot()
	res.Msgs, res.Bytes = sn.TotalDataMsgs(), sn.TotalBytes()
	res.PeakWireBytes = m.Stats().PeakWireBytes()
	res.SweepMsgs, res.RedistMsgs, res.RedistBytes = sweepMsgs, redistMsgs, redistBytes
	if cm != nil {
		res.ModelTime = cm.Makespan()
	}
	res.MaxErr = finalErr
	res.Checksum = checksum
	res.CacheHits, res.CacheMisses = hits, misses
	return res, nil
}

// localSweep solves the tridiagonal systems along dimension dim; every
// line must be fully local (dim elided in the current distribution).
func localSweep(ctx *machine.Ctx, v *core.Array, dim int, flopTime float64) {
	l := v.Local(ctx)
	alloc := l.AllocShape()
	other := 1 - dim
	strd := l.Stride()
	n := alloc[dim]
	if n == 0 || alloc[other] == 0 {
		return
	}
	scratch := make([]float64, n)
	data := l.Data()
	for li := 0; li < alloc[other]; li++ {
		start := li * strd[other]
		kernels.TridiagStrided(data, start, strd[dim], n, adiA, adiB, adiC, scratch)
	}
	ctx.Charge(flopTime * float64(5*n*alloc[other]))
}

// pipelinedSweep solves the tridiagonal systems along a BLOCK-distributed
// dimension dim: each processor eliminates its segment of every line and
// forwards per-line pipeline state (b', d') to the next processor in
// chunks, then back-substitutes in the reverse direction.  This is the
// communication pattern a compiler must generate for the static ADI
// (paper §4).  Transport failures are returned as wrapped errors (under
// the machine's CommConfig the pipeline receives run with deadlines).
func pipelinedSweep(ctx *machine.Ctx, v *core.Array, dim int, chunk int, flopTime float64) error {
	l := v.Local(ctx)
	rank, np := ctx.Rank(), ctx.NP()
	alloc := l.AllocShape()
	other := 1 - dim
	strd := l.Stride()
	segN := alloc[dim]    // my extent along the recurrence dimension
	lines := alloc[other] // number of independent systems (all local)
	if lines == 0 {
		return nil
	}
	data := l.Data()
	ep := ctx.Endpoint()
	cfg := ctx.Comm().Config()
	tr := ctx.Tracer()
	const fwdTag, bwdTag = 9001, 9002

	// per-line modified diagonals, needed again by the backward pass
	bps := make([][]float64, lines)
	for i := range bps {
		bps[i] = make([]float64, segN)
	}

	prev, next := rank-1, rank+1

	// forward elimination, pipelined in chunks of lines
	for c0 := 0; c0 < lines; c0 += chunk {
		c1 := c0 + chunk
		if c1 > lines {
			c1 = lines
		}
		in := make([]kernels.SweepState, c1-c0)
		if prev >= 0 {
			p, err := msg.RecvRetry(ep, cfg, tr, "pipelined-sweep", prev, fwdTag)
			if err != nil {
				return fmt.Errorf("apps: ADI forward sweep at rank %d: %w", rank, err)
			}
			vals := msg.DecodeFloat64s(p.Data)
			for k := range in {
				in[k] = kernels.SweepState{BP: vals[2*k], D: vals[2*k+1], Valid: true}
			}
		}
		out := make([]float64, 0, 2*(c1-c0))
		for li := c0; li < c1; li++ {
			st := kernels.ForwardSegment(data, li*strd[other], strd[dim], segN, adiA, adiB, adiC, in[li-c0], bps[li])
			out = append(out, st.BP, st.D)
		}
		ctx.Charge(flopTime * float64(5*segN*(c1-c0)))
		if next < np {
			if err := msg.SendRetry(ep, cfg, tr, "pipelined-sweep", next, fwdTag, msg.EncodeFloat64s(out)); err != nil {
				return fmt.Errorf("apps: ADI forward sweep at rank %d: %w", rank, err)
			}
		}
	}
	// back substitution, pipelined in the reverse direction
	for c0 := 0; c0 < lines; c0 += chunk {
		c1 := c0 + chunk
		if c1 > lines {
			c1 = lines
		}
		in := make([]kernels.BackState, c1-c0)
		if next < np {
			p, err := msg.RecvRetry(ep, cfg, tr, "pipelined-sweep", next, bwdTag)
			if err != nil {
				return fmt.Errorf("apps: ADI backward sweep at rank %d: %w", rank, err)
			}
			vals := msg.DecodeFloat64s(p.Data)
			for k := range in {
				in[k] = kernels.BackState{X: vals[k], Valid: true}
			}
		}
		out := make([]float64, 0, c1-c0)
		for li := c0; li < c1; li++ {
			st := kernels.BackwardSegment(data, li*strd[other], strd[dim], segN, adiC, in[li-c0], bps[li])
			out = append(out, st.X)
		}
		ctx.Charge(flopTime * float64(3*segN*(c1-c0)))
		if prev >= 0 {
			if err := msg.SendRetry(ep, cfg, tr, "pipelined-sweep", prev, bwdTag, msg.EncodeFloat64s(out)); err != nil {
				return fmt.Errorf("apps: ADI backward sweep at rank %d: %w", rank, err)
			}
		}
	}
	return nil
}
