package apps

import (
	"repro/internal/ckpt"
	"repro/internal/pario"
)

// IOConfig selects the parallel-I/O options for an app's checkpoints:
// how many I/O server ranks stripe each epoch, which redundancy mode
// protects it, how many epochs to retain, and — for fault-injection
// runs — the filesystem and retry policy every checkpoint operation
// goes through.  The zero value keeps the ckpt defaults (min(np, 4)
// servers, parity redundancy, keep-all, the real filesystem).
type IOConfig struct {
	// Servers is the number of I/O server ranks (stripe files) per epoch.
	Servers int
	// Redundancy is the self-healing mode: "parity" (default), "replica"
	// or "none".
	Redundancy string
	// Keep prunes all but the newest Keep committed epochs after each
	// successful checkpoint (<= 0: keep everything).
	Keep int
	// FS supplies each rank's filesystem (nil: the real one).  Pass
	// (*pario.FaultFS).Rank to put a seeded disk-fault plan under every
	// checkpoint read and write.
	FS func(rank int) pario.FS
	// IO is the per-operation deadline/retry/backoff policy and metrics
	// sink.
	IO pario.Config
}

func (c IOConfig) options() ckpt.Options {
	return ckpt.Options{Servers: c.Servers, Redundancy: c.Redundancy, Keep: c.Keep, FS: c.FS, IO: c.IO}
}
