package apps

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/scale"
	"repro/internal/trace"
)

// SmoothMode selects the grid distribution of the §4 smoothing study.
type SmoothMode int

// Smoothing distributions.
const (
	// SmoothColumns distributes the N×N grid (:,BLOCK): 2 messages of
	// size N per processor per step.
	SmoothColumns SmoothMode = iota
	// SmoothBlock2D distributes (BLOCK,BLOCK) on a q×q processor array
	// (P must be a square): 4 messages of size N/q per processor per
	// step.
	SmoothBlock2D
)

func (m SmoothMode) String() string {
	if m == SmoothColumns {
		return "(:,BLOCK)"
	}
	return "(BLOCK,BLOCK)"
}

// SmoothConfig parameterizes a smoothing run.
type SmoothConfig struct {
	N     int
	Steps int
	P     int
	Mode  SmoothMode
	// Overlap runs each step with the ghost exchange in flight during the
	// interior update (the StartExchangeAllGhosts/Wait split) instead of a
	// synchronous exchange followed by the full sweep.  The step loop then
	// runs without per-step barriers — neighbour completion is the only
	// synchronization — so per-step traffic is reported as the phase total
	// divided by Steps.  Results are bit-identical to the synchronous mode.
	Overlap bool
	// Alpha/Beta attach a cost model; FlopTime charges per grid-point
	// update (default 2ns).
	Alpha, Beta float64
	FlopTime    float64
	// Validate compares the final grid against the serial reference.
	Validate bool
	// UseTCP runs the machine over the TCP loopback transport instead of
	// the in-process one (same semantics, real sockets).
	UseTCP bool
	// Tracer, when non-nil, records the run's spans and messages (the
	// stepping loop is annotated as the "smooth" phase).
	Tracer *trace.Tracer
	// CkptDir enables coordinated checkpoints of both smoothing buffers
	// after every CkptEvery-th step (default every step when set).
	CkptDir   string
	CkptEvery int
	// IO selects the parallel-I/O options (striping, redundancy,
	// retention, disk-fault injection) for the checkpoints.
	IO IOConfig
	// Recover resumes from the latest committed checkpoint in CkptDir,
	// replaying the recorded distribution onto this run's P processors.
	Recover bool
	// Fault wraps the transport in a fault-injecting decorator built
	// from msg.ParseFaultPlan.
	Fault string
	// CommTimeout/CommRetries install a deadline/retry policy so faults
	// surface as errors instead of hangs.
	CommTimeout time.Duration
	CommRetries int
	// Liveness, when non-nil, runs the heartbeat failure detector.
	Liveness *machine.LivenessConfig
	// OnlineRecover enables in-process failure recovery (see
	// ADIConfig.OnlineRecover); requires CkptDir, Liveness and a
	// CommTimeout, and SmoothColumns mode (the 2-D processor grid of
	// SmoothBlock2D cannot shrink onto a non-square survivor count).
	OnlineRecover bool
	// Integrity appends a CRC32C trailer to every wire message; implied
	// when Fault has a corrupt/bitflip rule.
	Integrity bool
	// Join reserves this many extra ranks beyond P; they park in
	// AwaitJoin and are admitted mid-run when Elastic is set.
	Join int
	// Elastic polls for pending joiners at step boundaries at or after
	// JoinAfterIter and grows the view onto them (SmoothColumns only,
	// for the same reason as OnlineRecover).  Requires CkptDir, Join.
	Elastic bool
	// JoinAfterIter is the first step boundary at which members poll.
	JoinAfterIter int
	// MemBudget bounds each rank's peak resident wire bytes during
	// redistributions; <= 0 means unbounded.
	MemBudget int64
	// Straggler configures the rank-health scorer, an optional injected
	// slow rank, and the mitigation policy.  Smoothing supports
	// observation and the "drain" policy only (SmoothColumns, synchronous
	// steps): its ghost-bearing connect class keeps the even block split,
	// so a weighted rebalance is not available here.
	Straggler StragglerConfig
}

// SmoothResult reports a smoothing run.
type SmoothResult struct {
	Mode SmoothMode
	// MsgsPerProcStep and BytesPerProcStep are the *maximum* per-processor
	// per-step data traffic (interior processors; the quantities of the
	// paper's analysis).
	MsgsPerProcStep  float64
	BytesPerProcStep float64
	ModelTime        float64
	Wall             time.Duration
	MaxErr           float64
	Checksum         float64
	// Survivors is the failure detector's surviving rank set (when
	// Liveness was configured), populated even on error.
	Survivors []int
	// FinalEpoch is the membership epoch the run completed on: 0 for a
	// failure-free run, >0 after in-process online recovery.
	FinalEpoch int
	// DegradedRank is the first physical rank the health scorer ever
	// classified Degraded (-1: none, or scoring off).
	DegradedRank int
	// Mitigation is the straggler mitigation that fired ("drain" or
	// empty).
	Mitigation string
	// Drained lists the physical ranks voluntarily drained from the
	// membership by the straggler policy.
	Drained []int
}

// RunSmoothing performs Steps Jacobi smoothing steps on an N×N grid under
// the chosen distribution, counting ghost-exchange traffic.
func RunSmoothing(cfg SmoothConfig) (SmoothResult, error) {
	if cfg.FlopTime == 0 {
		cfg.FlopTime = 2e-9
	}
	res := SmoothResult{Mode: cfg.Mode, DegradedRank: -1}
	q := int(math.Round(math.Sqrt(float64(cfg.P))))
	if cfg.Mode == SmoothBlock2D && q*q != cfg.P {
		return res, fmt.Errorf("apps: 2-D smoothing needs a square processor count, got %d", cfg.P)
	}
	total := cfg.P + cfg.Join
	if cfg.N < total {
		return res, fmt.Errorf("apps: smoothing needs N >= P+Join")
	}
	if cfg.Elastic && (cfg.Join <= 0 || cfg.CkptDir == "" || cfg.Mode != SmoothColumns) {
		return res, fmt.Errorf("apps: Elastic smoothing requires Join > 0, a CkptDir, and SmoothColumns")
	}
	if err := cfg.Straggler.validate(cfg.Liveness != nil, cfg.CommTimeout, cfg.CkptDir); err != nil {
		return res, err
	}
	if cfg.Straggler.mitigating() {
		if cfg.Straggler.Policy != "drain" {
			return res, fmt.Errorf("apps: smoothing straggler policy must be drain or off (the ghost connect class keeps the even block split)")
		}
		if cfg.Mode != SmoothColumns || cfg.Overlap {
			return res, fmt.Errorf("apps: smoothing straggler drain requires SmoothColumns and synchronous steps")
		}
	}
	var mopts []machine.Option
	var cm *msg.CostModel
	var topts []msg.Option
	if cfg.Alpha != 0 || cfg.Beta != 0 {
		cm = msg.NewCostModel(total, cfg.Alpha, cfg.Beta)
		mopts = append(mopts, machine.WithCostModel(cm))
		topts = append(topts, msg.WithCost(cm))
	}
	if cfg.Tracer != nil {
		mopts = append(mopts, machine.WithTrace(cfg.Tracer))
		topts = append(topts, msg.WithTracer(cfg.Tracer))
	}
	base, err := assembleTransport(total, cfg.UseTCP, cfg.Fault, cfg.Integrity, topts)
	if err != nil {
		return res, err
	}
	if base != nil {
		mopts = append(mopts, machine.WithTransport(base))
	}
	if cfg.CommTimeout > 0 || cfg.CommRetries > 0 {
		mopts = append(mopts, machine.WithCommConfig(msg.CommConfig{
			Timeout: cfg.CommTimeout, Retries: cfg.CommRetries, Backoff: time.Millisecond,
			MaxTimeout: 4 * cfg.CommTimeout, MaxBackoff: 16 * time.Millisecond,
		}))
	}
	if cfg.Liveness != nil {
		mopts = append(mopts, machine.WithLiveness(*cfg.Liveness))
	}
	if cfg.Straggler.Enabled() {
		mopts = append(mopts, machine.WithHealth(cfg.Straggler.healthConfig()))
	}
	if cfg.Join > 0 {
		mopts = append(mopts, machine.WithReserve(cfg.Join))
	}
	m := machine.New(cfg.P, mopts...)
	defer m.Close()
	e := core.NewEngine(m)
	e.SetMemBudget(cfg.MemBudget)
	e.SetCkptOptions(cfg.IO.options())

	dom := index.Dim(cfg.N, cfg.N)
	initial := func(p index.Point) float64 {
		return float64((p[0]*13+p[1]*7)%11) * 0.25
	}

	var ref []float64
	if cfg.Validate {
		cur := make([]float64, dom.Size())
		dom.WholeSection().ForEach(func(p index.Point) bool {
			cur[dom.Offset(p)] = initial(p)
			return true
		})
		next := make([]float64, dom.Size())
		for s := 0; s < cfg.Steps; s++ {
			kernels.Smooth5(next, cur, cfg.N, cfg.N)
			cur, next = next, cur
		}
		ref = cur
	}

	var maxErr, checksum float64
	var exchMsgs, exchBytes int64
	var finalEpoch int
	var mitigation string
	var drainedPhys []int
	start := time.Now()
	err = m.Run(func(ctx *machine.Ctx) error {
		mitigated := false
		body := func(eng *core.Engine, online bool) error {
			var spec core.DistSpec
			switch cfg.Mode {
			case SmoothColumns:
				spec = core.DistSpec{Type: dist.NewType(dist.ElidedDim(), dist.BlockDim())}
			case SmoothBlock2D:
				g := m.ProcsDim("G", q, q)
				spec = core.DistSpec{Type: dist.NewType(dist.BlockDim(), dist.BlockDim()), Target: g.Whole()}
			}
			u := eng.MustDeclare(ctx, core.Decl{Name: "U", Domain: dom, Dynamic: true, Init: &spec, Ghost: []int{1, 1}})
			v := eng.MustDeclare(ctx, core.Decl{Name: "V", Domain: dom, Dynamic: true, ConnectTo: "U", Ghost: []int{1, 1}})
			// Fresh runs fill the initial grid; recovery runs replay the last
			// committed checkpoint — both buffers plus the step parity, so the
			// double-buffer swap resumes exactly where the lost run stopped.
			// An online attempt does the same in-process on the survivors.
			s0 := 0
			switch {
			case online:
				man, err := eng.Recover(ctx, cfg.CkptDir)
				if err != nil {
					return err
				}
				if step, ok := man.MetaInt("step"); ok {
					s0 = step + 1
				}
			case cfg.Recover:
				man, err := eng.Restore(ctx, cfg.CkptDir)
				if err != nil {
					return err
				}
				if step, ok := man.MetaInt("step"); ok {
					s0 = step + 1
				}
			default:
				u.FillFunc(ctx, initial)
			}
			if err := ctx.Barrier(); err != nil {
				return err
			}

			src, dst := u, v
			if s0%2 == 1 {
				src, dst = v, u
			}
			ctx.PhaseBegin("smooth")
			var phasePre msg.Snapshot
			if cfg.Overlap {
				if ctx.Rank() == 0 {
					phasePre = m.Stats().Snapshot()
				}
				// No rank may send before the phase baseline is taken; the
				// step loop itself runs barrier-free.
				if err := ctx.Barrier(); err != nil {
					return err
				}
			}
			for s := s0; s < cfg.Steps; s++ {
				stepT0 := time.Now()
				if cfg.Overlap {
					if err := smoothStepOverlap(ctx, src, dst, cfg.FlopTime); err != nil {
						return err
					}
				} else {
					var pre msg.Snapshot
					if ctx.Rank() == 0 {
						pre = m.Stats().Snapshot() // only rank 0 reads the deltas
					}
					ctx.Barrier() // no rank may send before pre is taken
					if err := src.ExchangeAllGhosts(ctx); err != nil {
						return err
					}
					ctx.Barrier()
					if ctx.Rank() == 0 {
						d := m.Stats().Snapshot().Sub(pre)
						exchMsgs += d.MaxDataMsgsPerProc()
						exchBytes += d.MaxBytesPerProc()
					}
					el := cfg.Straggler.timed(ctx, func() { smoothLocal(ctx, src, dst, cfg.FlopTime) })
					if cfg.Straggler.Enabled() {
						ctx.ReportWork(localElems(ctx, src), el)
					}
					ctx.Barrier()
				}
				src, dst = dst, src
				if cfg.CkptDir != "" && (s+1)%max(cfg.CkptEvery, 1) == 0 {
					if _, err := eng.Checkpoint(ctx, cfg.CkptDir, map[string]string{"step": fmt.Sprint(s)}); err != nil {
						return err
					}
				}
				// Elastic scale-out: agreed joiner poll at the step
				// boundary; checkpoint and bail so the driver can Admit.
				if cfg.Elastic && s+1 >= cfg.JoinAfterIter && s+1 < cfg.Steps {
					grow, gerr := ctx.PollJoin()
					if gerr != nil {
						return gerr
					}
					if grow {
						if _, err := eng.Checkpoint(ctx, cfg.CkptDir, map[string]string{"step": fmt.Sprint(s)}); err != nil {
							return err
						}
						return errGrow
					}
				}
				// Straggler defense (drain only): checkpoint the parity and
				// shrink the membership at an agreed step boundary.
				if cfg.Straggler.mitigating() && !mitigated && s+1 >= cfg.Straggler.checkAfter() && s+1 < cfg.Steps {
					dec, view, _, derr := decideStraggler(ctx, m, cfg.Straggler, cfg.Steps-(s+1), time.Since(stepT0))
					if derr != nil {
						return derr
					}
					if dec == scale.Drain {
						mitigated = true
						if _, err := eng.Checkpoint(ctx, cfg.CkptDir, map[string]string{"step": fmt.Sprint(s)}); err != nil {
							return err
						}
						if ctx.Rank() == 0 {
							mitigation = "drain"
							drainedPhys = append(drainedPhys, ctx.PhysOf(view))
						}
						return &drainError{viewRank: view}
					}
				}
			}
			if cfg.Overlap {
				if err := ctx.Barrier(); err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					d := m.Stats().Snapshot().Sub(phasePre)
					exchMsgs += d.MaxDataMsgsPerProc()
					exchBytes += d.MaxBytesPerProc()
				}
				// No rank may start post-phase traffic (the reduction below)
				// until the phase totals are read.
				if err := ctx.Barrier(); err != nil {
					return err
				}
			}
			ctx.PhaseEnd("smooth")
			if cfg.Validate {
				got, err := src.GatherTo(ctx, 0)
				if err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					for i, x := range got {
						checksum += x
						d := x - ref[i]
						if d < 0 {
							d = -d
						}
						if d > maxErr {
							maxErr = d
						}
					}
				}
			} else {
				s, err := src.DArray().ReduceSum(ctx)
				if err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					checksum = s
				}
			}
			if ctx.Rank() == 0 {
				finalEpoch = ctx.Epoch()
			}
			return nil
		}
		return runWithOnlineRecovery(ctx, m, e, cfg.OnlineRecover && cfg.CkptDir != "", max(cfg.P, 2), cfg.MemBudget, body)
	})
	res.Survivors = m.Survivors()
	res.DegradedRank = degradedRank(m)
	res.Mitigation = mitigation
	res.Drained = drainedPhys
	if err != nil {
		return res, err
	}
	res.Wall = time.Since(start)
	res.FinalEpoch = finalEpoch
	if cfg.Steps > 0 {
		res.MsgsPerProcStep = float64(exchMsgs) / float64(cfg.Steps)
		res.BytesPerProcStep = float64(exchBytes) / float64(cfg.Steps)
	}
	if cm != nil {
		res.ModelTime = cm.Makespan()
	}
	res.MaxErr = maxErr
	res.Checksum = checksum
	return res, nil
}

// smoothLocal computes dst = smooth(src) on the locally owned points,
// reading neighbours from src's ghost cells; global boundary points copy
// through.  Both arrays must share the distribution and ghost widths
// (they are one connect class), so their storage layouts coincide and the
// stencil runs on raw offsets.  Rows are processed as contiguous spans:
// boundary rows copy through with copy(), interior rows run
// kernels.SmoothRow over the interior span with the (at most two) global
// edge columns peeled off — the same run-based movement the pack/unpack
// layer uses, instead of a per-point branch in the inner loop.
func smoothLocal(ctx *machine.Ctx, src, dst *core.Array, flopTime float64) {
	ls, ld := src.Local(ctx), dst.Local(ctx)
	dom := src.Domain()
	n0, n1 := dom.Hi[0], dom.Hi[1]
	lo, hi, ok := ls.Segment()
	if !ok || ls.Count() == 0 {
		return
	}
	strd := ls.Stride()
	if strd[0] != 1 {
		panic("apps: smoothing needs unit stride along dimension 0")
	}
	cnt := smoothRect(ld.Data(), ls.Data(), ls.Offset(index.Point{lo[0], lo[1]}), strd[1],
		lo[0], hi[0], lo[1], hi[1], n0, n1)
	ctx.Charge(flopTime * float64(4*cnt))
}

// smoothRect applies one smoothing step to the global sub-rectangle
// [i0..i1]×[j0..j1] (rows j, unit-stride columns i, rowOff the storage
// offset of (i0, j0)), copying through points on the global boundary.
// It returns the number of stencil updates performed.
func smoothRect(dd, sd []float64, rowOff, s1, i0, i1, j0, j1, n0, n1 int) int {
	w := i1 - i0 + 1
	cnt := 0
	for j := j0; j <= j1; j, rowOff = j+1, rowOff+s1 {
		if j == 1 || j == n1 {
			copy(dd[rowOff:rowOff+w], sd[rowOff:rowOff+w])
			continue
		}
		off, a, b := rowOff, i0, i1
		if a == 1 { // global west edge copies through
			dd[off] = sd[off]
			a++
			off++
		}
		if b == n0 { // global east edge copies through
			dd[rowOff+w-1] = sd[rowOff+w-1]
			b--
		}
		if n := b - a + 1; n > 0 {
			kernels.SmoothRow(dd, sd, off, n, s1)
			cnt += n
		}
	}
	return cnt
}

// smoothStepOverlap performs one smoothing step with the ghost exchange
// in flight during the bulk of the computation: the owned region is
// split into an interior whose stencil reads no ghost cell and up to
// four one-point-wide edge strips that do; the interior runs between
// StartExchangeAllGhosts and Wait, the strips after.  Every point goes
// through the same smoothRect arithmetic as the synchronous path, so the
// result is bit-identical.
//
// The split is race-free without barriers: inbound puts land only in
// src's ghost cells, which the interior never reads, and the counted
// put/await streams bound neighbour skew to one step — a neighbour's
// next-step put targets the other buffer of the src/dst pair, whose
// ghost cells nothing is reading.
func smoothStepOverlap(ctx *machine.Ctx, src, dst *core.Array, flopTime float64) error {
	h, err := src.StartExchangeAllGhosts(ctx)
	if err != nil {
		return err
	}
	ls, ld := src.Local(ctx), dst.Local(ctx)
	dom := src.Domain()
	n0, n1 := dom.Hi[0], dom.Hi[1]
	lo, hi, ok := ls.Segment()
	if !ok || ls.Count() == 0 {
		return h.Wait()
	}
	sd, dd := ls.Data(), ld.Data()
	strd := ls.Stride()
	if strd[0] != 1 {
		panic("apps: smoothing needs unit stride along dimension 0")
	}
	s1 := strd[1]
	off := func(i, j int) int { return ls.Offset(index.Point{i, j}) }
	lo0, hi0, lo1, hi1 := lo[0], hi[0], lo[1], hi[1]

	// Shrink each side that has a neighbour (and hence a ghost margin the
	// boundary stencils read) by one point to get the interior box.
	iILo, iIHi, jILo, jIHi := lo0, hi0, lo1, hi1
	if lo0 > 1 {
		iILo++
	}
	if hi0 < n0 {
		iIHi--
	}
	if lo1 > 1 {
		jILo++
	}
	if hi1 < n1 {
		jIHi--
	}

	cnt := 0
	if iILo <= iIHi && jILo <= jIHi {
		cnt += smoothRect(dd, sd, off(iILo, jILo), s1, iILo, iIHi, jILo, jIHi, n0, n1)
	}
	if err := h.Wait(); err != nil {
		return err
	}
	// South and north strips span the full owned width; west and east
	// strips cover the remaining middle rows.  Together with the interior
	// they partition the owned region (degenerate segments collapse the
	// empty strips).
	if jILo-1 >= lo1 {
		cnt += smoothRect(dd, sd, off(lo0, lo1), s1, lo0, hi0, lo1, jILo-1, n0, n1)
	}
	if jN0 := max(jIHi+1, jILo); jN0 <= hi1 {
		cnt += smoothRect(dd, sd, off(lo0, jN0), s1, lo0, hi0, jN0, hi1, n0, n1)
	}
	if jILo <= jIHi {
		if iILo-1 >= lo0 {
			cnt += smoothRect(dd, sd, off(lo0, jILo), s1, lo0, iILo-1, jILo, jIHi, n0, n1)
		}
		if iE0 := max(iIHi+1, iILo); iE0 <= hi0 {
			cnt += smoothRect(dd, sd, off(iE0, jILo), s1, iE0, hi0, jILo, jIHi, n0, n1)
		}
	}
	ctx.Charge(flopTime * float64(4*cnt))
	return nil
}

// SmoothModelCost returns the modeled per-step communication cost of the
// two distributions for an N×N grid on P processors under (alpha, beta) —
// the §4 formula: columns pay 2 messages of 8N bytes, 2-D blocks pay 4
// messages of 8N/q bytes.  ChooseSmoothingDist picks the cheaper one.
func SmoothModelCost(n, p int, alpha, beta float64) (columns, block2d float64) {
	q := int(math.Round(math.Sqrt(float64(p))))
	columns = 2 * (alpha + beta*8*float64(n))
	block2d = 4 * (alpha + beta*8*float64(n)/float64(q))
	return columns, block2d
}

// ChooseSmoothingDist implements the §4 runtime decision: given the grid
// size (an input parameter) and the executing machine ($NP, alpha, beta),
// select the distribution with the lower modeled step cost.
func ChooseSmoothingDist(n, p int, alpha, beta float64) SmoothMode {
	q := int(math.Round(math.Sqrt(float64(p))))
	if q*q != p {
		return SmoothColumns // no square arrangement available
	}
	c, b := SmoothModelCost(n, p, alpha, beta)
	if b < c {
		return SmoothBlock2D
	}
	return SmoothColumns
}
