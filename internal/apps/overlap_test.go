package apps

import (
	"testing"
	"time"
)

// TestSmoothingOverlapBitIdentical: the overlapped step (interior while
// halos fly, edges after Wait) partitions the owned region over the same
// smoothRect arithmetic as the synchronous sweep, so the two paths must
// agree bit for bit — on both distributions and both transports.
func TestSmoothingOverlapBitIdentical(t *testing.T) {
	for _, mode := range []SmoothMode{SmoothColumns, SmoothBlock2D} {
		for _, tcp := range []bool{false, true} {
			name := mode.String()
			if tcp {
				name += "/tcp"
			}
			t.Run(name, func(t *testing.T) {
				base := SmoothConfig{N: 33, Steps: 3, P: 9, Mode: mode, UseTCP: tcp, Validate: true}
				sync, err := RunSmoothing(base)
				if err != nil {
					t.Fatal(err)
				}
				over := base
				over.Overlap = true
				ovl, err := RunSmoothing(over)
				if err != nil {
					t.Fatal(err)
				}
				if ovl.Checksum != sync.Checksum {
					t.Errorf("overlap checksum %v != sync checksum %v", ovl.Checksum, sync.Checksum)
				}
				if ovl.MaxErr != sync.MaxErr {
					t.Errorf("overlap MaxErr %g != sync MaxErr %g", ovl.MaxErr, sync.MaxErr)
				}
				if ovl.MaxErr > 1e-12 {
					t.Errorf("overlap deviates from serial by %g", ovl.MaxErr)
				}
			})
		}
	}
}

// TestSmoothingOverlapMessageCounts: the overlapped loop must move
// exactly the traffic of the synchronous one — claim C1's counts, now
// measured as a whole-phase total over a barrier-free loop.
func TestSmoothingOverlapMessageCounts(t *testing.T) {
	const n, p = 64, 4
	cols, err := RunSmoothing(SmoothConfig{N: n, Steps: 3, P: p, Mode: SmoothColumns, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if cols.MsgsPerProcStep != 2 {
		t.Fatalf("columns msgs/proc/step = %v, want 2", cols.MsgsPerProcStep)
	}
	if cols.BytesPerProcStep != 2*8*n {
		t.Fatalf("columns bytes/proc/step = %v, want %d", cols.BytesPerProcStep, 2*8*n)
	}
	const n2, p2, q2 = 63, 9, 3
	blk, err := RunSmoothing(SmoothConfig{N: n2, Steps: 3, P: p2, Mode: SmoothBlock2D, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if blk.MsgsPerProcStep != 4 {
		t.Fatalf("block msgs/proc/step = %v, want 4", blk.MsgsPerProcStep)
	}
	if blk.BytesPerProcStep != 4*8*n2/q2 {
		t.Fatalf("block bytes/proc/step = %v, want %d", blk.BytesPerProcStep, 4*8*n2/q2)
	}
}

// TestSmoothingOverlapUnevenHalos: uneven B_BLOCK-style segments — width-1
// column strips and a 10-point grid on a 3x3 arrangement — where some
// interiors degenerate to nothing and the edge strips carry the whole
// sweep.
func TestSmoothingOverlapUnevenHalos(t *testing.T) {
	cases := []SmoothConfig{
		{N: 13, Steps: 3, P: 9, Mode: SmoothColumns, Validate: true, Overlap: true},
		{N: 10, Steps: 3, P: 9, Mode: SmoothBlock2D, Validate: true, Overlap: true},
		{N: 9, Steps: 2, P: 9, Mode: SmoothColumns, Validate: true, Overlap: true},
	}
	for _, cfg := range cases {
		res, err := RunSmoothing(cfg)
		if err != nil {
			t.Fatalf("N=%d %v: %v", cfg.N, cfg.Mode, err)
		}
		if res.MaxErr > 1e-12 {
			t.Errorf("N=%d %v: overlap deviates from serial by %g", cfg.N, cfg.Mode, res.MaxErr)
		}
	}
}

// TestOnlineRecoverSmoothingOverlap: a rank dies while the barrier-free
// overlapped loop is in flight; the counted put/await streams surface the
// failure as wrapped errors, the survivors regroup, and the re-run from
// the last checkpoint still matches the serial reference.  Windows from
// the failed epoch are revoked with the view — no stale-tag traffic leaks
// into the survivor epoch.
func TestOnlineRecoverSmoothingOverlap(t *testing.T) {
	dir := t.TempDir()
	cfg := SmoothConfig{
		N: 24, Steps: 8, P: 4, Mode: SmoothColumns, Validate: true, Overlap: true,
		CkptDir: dir, CkptEvery: 1,
		// The barrier-free loop sends far fewer messages per step than the
		// synchronous one, so the kill threshold is lower than in the
		// synchronous online test.
		Fault:         "drop,rank=1,after=40",
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		OnlineRecover: true,
	}
	res, err := RunSmoothing(cfg)
	if err != nil {
		t.Fatalf("online overlapped smoothing recovery: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("run finished on epoch %d: kill never landed", res.FinalEpoch)
	}
	if res.MaxErr > 1e-12 {
		t.Fatalf("MaxErr = %g after online recovery", res.MaxErr)
	}
}
