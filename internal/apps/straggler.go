// Straggler defense wiring shared by the application harnesses: a
// StragglerConfig each app embeds, the compute-time injection that makes
// a chosen rank measurably slow, the agreed per-boundary mitigation
// decision (health report → scale policy → broadcast), and the drain
// sentinel the recovery driver turns into a voluntary scale-in.
package apps

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/machine"
	"repro/internal/scale"
)

// StragglerConfig parameterizes an app run's straggler defense.  The
// zero value disables everything.
type StragglerConfig struct {
	// HealthWindow enables health scoring when > 0: the machine runs the
	// EWMA throughput scorer (machine.WithHealth) over this many
	// observations, fed by the ranks' per-step work reports piggybacked
	// on heartbeat traffic.  Requires Liveness.
	HealthWindow int
	// DegradedRatio is the slowdown (vs the median rank) at which a rank
	// is classified Degraded (default 2).
	DegradedRatio float64
	// Hysteresis is the consecutive-classification streak required
	// before a rank's class flips (default 3, min 2): a single slow step
	// never reclassifies.
	Hysteresis int
	// Policy selects what to do about a Degraded rank at an iteration
	// boundary:
	//
	//	""/"off"    observe only — score health, mitigate nothing;
	//	"rebalance" re-divide the block bounds in proportion to measured
	//	            speeds (B_BLOCK with the straggler's block shrunk);
	//	"drain"     checkpoint and voluntarily drain the straggler from
	//	            the membership (scale-in); survivors replay onto the
	//	            shrunken view;
	//	"auto"      let scale.RecommendStraggler pick between them from
	//	            the measured step time and slowdown.
	Policy string
	// CheckAfter is the first iteration boundary at which the members
	// evaluate the mitigation policy (default 2 — the scorer needs a few
	// heartbeats of observations first).
	CheckAfter int
	// SlowRank/SlowFactor inject a synthetic straggler for experiments:
	// the given physical rank's compute sections are stretched by the
	// factor (sleep).  Injection is active only when SlowFactor > 1.
	SlowRank   int
	SlowFactor float64
}

// Enabled reports whether health scoring is on at all.
func (sc StragglerConfig) Enabled() bool { return sc.HealthWindow > 0 }

// mitigating reports whether the policy acts on a Degraded rank (as
// opposed to observing only).
func (sc StragglerConfig) mitigating() bool {
	switch sc.Policy {
	case "rebalance", "drain", "auto":
		return sc.Enabled()
	}
	return false
}

func (sc StragglerConfig) checkAfter() int {
	if sc.CheckAfter <= 0 {
		return 2
	}
	return sc.CheckAfter
}

func (sc StragglerConfig) healthConfig() health.Config {
	return health.Config{
		Window:        sc.HealthWindow,
		DegradedRatio: sc.DegradedRatio,
		Hysteresis:    sc.Hysteresis,
	}
}

// validate checks the prerequisites the chosen policy needs from the
// surrounding app config.
func (sc StragglerConfig) validate(haveLiveness bool, commTimeout time.Duration, ckptDir string) error {
	if !sc.Enabled() {
		if sc.mitigatingPolicyName() {
			return fmt.Errorf("apps: straggler policy %q needs HealthWindow > 0 (nothing is measured)", sc.Policy)
		}
		return nil
	}
	switch sc.Policy {
	case "", "off", "rebalance", "drain", "auto":
	default:
		return fmt.Errorf("apps: unknown straggler policy %q (want off, rebalance, drain, or auto)", sc.Policy)
	}
	if !haveLiveness {
		return errors.New("apps: straggler defense requires Liveness (work reports ride on heartbeats)")
	}
	if sc.mitigating() && commTimeout <= 0 {
		return errors.New("apps: straggler mitigation requires a CommTimeout")
	}
	if (sc.Policy == "drain" || sc.Policy == "auto") && ckptDir == "" {
		return errors.New("apps: straggler drain requires a CkptDir (survivors replay the checkpoint onto the shrunken view)")
	}
	return nil
}

func (sc StragglerConfig) mitigatingPolicyName() bool {
	switch sc.Policy {
	case "rebalance", "drain", "auto":
		return true
	}
	return false
}

// timed runs a compute section, stretches it on the injected straggler,
// and returns the (stretched) elapsed time the caller reports as busy
// time.  Only compute sections go through timed — barrier and
// communication waits must not count as work, or every rank waiting on
// the straggler would itself look slow.
func (sc StragglerConfig) timed(ctx *machine.Ctx, compute func()) time.Duration {
	t0 := time.Now()
	compute()
	el := time.Since(t0)
	if sc.SlowFactor > 1 && ctx.PhysRank() == sc.SlowRank {
		extra := time.Duration(float64(el) * (sc.SlowFactor - 1))
		time.Sleep(extra)
		el += extra
	}
	return el
}

// localElems counts the rank's local allocation of v — the work units a
// sweep over it performs.
func localElems(ctx *machine.Ctx, v *core.Array) float64 {
	n := 1
	for _, e := range v.Local(ctx).AllocShape() {
		n *= e
	}
	return float64(n)
}

// drainError is the sentinel an app body returns after an agreed drain
// decision (and a checkpoint): every member leaves the body at the same
// iteration boundary, runWithOnlineRecovery calls Ctx.Drain on the view
// rank, the drained rank exits non-fatally with ErrDrained, and the
// survivors re-enter the body in recovery mode on the shrunken view.
type drainError struct{ viewRank int }

func (e *drainError) Error() string {
	return fmt.Sprintf("apps: drain view rank %d (straggler mitigation)", e.viewRank)
}

// decideStraggler takes one iteration boundary's mitigation decision,
// collectively.  Rank 0 consults the health scorer and the configured
// policy; the decision, the straggler's view rank, and the measured
// per-rank speeds are broadcast so every member acts identically (and
// computes identical weighted bounds).  Returns Hold when no rank is
// classified Degraded yet — the policy simply re-checks at the next
// boundary.
//
// stepWall is the caller's measured wall time of the last step (used by
// the "auto" policy to size the cost model); stepsLeft the remaining
// iteration count.
func decideStraggler(ctx *machine.Ctx, m *machine.Machine, sc StragglerConfig,
	stepsLeft int, stepWall time.Duration) (scale.Decision, int, []float64, error) {
	var vals []int
	if ctx.Rank() == 0 {
		np := ctx.NP()
		vals = make([]int, 2+np)
		vals[0], vals[1] = int(scale.Hold), -1
		for i := range vals[2:] {
			vals[2+i] = 1e6 // nominal speed
		}
		if h := m.Health(); h != nil && np > 1 {
			members := ctx.Members()
			worst, class, slowdown, ok := h.Worst(members)
			if ok && class >= health.Degraded {
				view := -1
				for i, p := range members {
					if p == worst {
						view = i
					}
				}
				if view >= 0 {
					if dec := sc.decide(np, stepsLeft, slowdown, stepWall); dec != scale.Hold {
						vals[0], vals[1] = int(dec), view
						for i, sp := range h.Speeds(members) {
							vals[2+i] = int(sp * 1e6)
						}
					}
				}
			}
		}
	}
	out, err := ctx.Comm().BcastInts(0, vals)
	if err != nil {
		return scale.Hold, -1, nil, err
	}
	speeds := make([]float64, len(out)-2)
	for i := range speeds {
		speeds[i] = float64(out[2+i]) / 1e6
		if speeds[i] <= 0 {
			speeds[i] = 1
		}
	}
	return scale.Decision(out[0]), out[1], speeds, nil
}

// decide maps the configured policy to a decision for a rank measured
// slowdown× slow.  Forced policies skip the cost model; "auto" runs
// scale.RecommendStraggler on the measured step time split into a
// nominal compute estimate.
func (sc StragglerConfig) decide(np, stepsLeft int, slowdown float64, stepWall time.Duration) scale.Decision {
	switch sc.Policy {
	case "rebalance":
		return scale.Rebalance
	case "drain":
		return scale.Drain
	case "auto":
		// The measured step wall tracks the straggler's critical path:
		// nominal (healthy-rank) compute is the wall deflated by the
		// slowdown.  Comm/Idle are folded into compute — a conservative
		// split that still separates the three candidate step times.
		nominal := stepWall.Seconds()
		if slowdown > 1 {
			nominal /= slowdown
		}
		a := scale.RecommendStraggler(scale.StragglerParams{
			NP: np, StepsLeft: stepsLeft, Slowdown: slowdown,
			Step: scale.PerStep{Compute: nominal},
		})
		return a.Decision
	}
	return scale.Hold
}

// healthReport snapshots the machine's per-rank health report after a
// run; nil when health scoring was off.
func healthReport(m *machine.Machine) []health.RankReport {
	h := m.Health()
	if h == nil {
		return nil
	}
	ranks := make([]int, m.Capacity())
	for i := range ranks {
		ranks[i] = i
	}
	return h.Report(ranks)
}

// degradedRank scans the machine's health report after a run for the
// first rank that was ever classified Degraded (or worse); -1 when the
// run stayed healthy or health scoring was off.
func degradedRank(m *machine.Machine) int {
	for _, rr := range healthReport(m) {
		if rr.EverDegraded {
			return rr.Rank
		}
	}
	return -1
}
