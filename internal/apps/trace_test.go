package apps

import (
	"testing"

	"repro/internal/trace"
)

// openSpans replays a rank's event stream, calling visit for every data
// send (CatMsg "send" with a positive payload) with the stack of spans
// open at that moment.
func replaySends(events []trace.Event, visit func(stack []trace.Event)) {
	var stack []trace.Event
	for _, e := range events {
		switch e.Kind {
		case trace.KindBegin:
			stack = append(stack, e)
		case trace.KindEnd:
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].Cat == e.Cat && stack[i].Name == e.Name {
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
		case trace.KindInstant:
			if e.Cat == trace.CatMsg && e.Name == "send" && e.Bytes > 0 {
				visit(stack)
			}
		}
	}
}

func spanOpen(stack []trace.Event, cat, name string) bool {
	for _, s := range stack {
		if s.Cat == cat && (name == "" || s.Name == name) {
			return true
		}
	}
	return false
}

// TestADIDynamicTraceConfinement is claim C2 as a trace property: in the
// dynamic ADI every data message sent during the "iterate" phase happens
// inside a DISTRIBUTE span — the sweeps themselves are communication-free.
// The static-columns run is the control: its pipelined y-sweep sends data
// during "iterate" with no DISTRIBUTE open.
func TestADIDynamicTraceConfinement(t *testing.T) {
	const np = 4
	tr := trace.New(np)
	if _, err := RunADI(ADIConfig{NX: 32, NY: 32, Iters: 3, P: np, Mode: ADIDynamic, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	inIterate, escaped := 0, 0
	for rank := 0; rank < np; rank++ {
		replaySends(tr.Events(rank), func(stack []trace.Event) {
			if !spanOpen(stack, trace.CatPhase, "iterate") {
				return
			}
			inIterate++
			if !spanOpen(stack, trace.CatDistribute, "") {
				escaped++
			}
		})
	}
	if inIterate == 0 {
		t.Fatal("no data sends recorded during the iterate phase — tracer not wired?")
	}
	if escaped != 0 {
		t.Errorf("dynamic ADI: %d of %d iterate-phase data sends outside any DISTRIBUTE span", escaped, inIterate)
	}

	// Control: the static distribution communicates inside the sweep.
	tr2 := trace.New(np)
	if _, err := RunADI(ADIConfig{NX: 32, NY: 32, Iters: 3, P: np, Mode: ADIStaticCols, Tracer: tr2}); err != nil {
		t.Fatal(err)
	}
	sweepSends := 0
	for rank := 0; rank < np; rank++ {
		replaySends(tr2.Events(rank), func(stack []trace.Event) {
			if spanOpen(stack, trace.CatPhase, "iterate") && !spanOpen(stack, trace.CatDistribute, "") {
				sweepSends++
			}
		})
	}
	if sweepSends == 0 {
		t.Error("static ADI control: expected pipelined sweep sends outside DISTRIBUTE spans, saw none")
	}
}

// TestSmoothingTraceShape is claim C1's communication shape from the
// per-phase summary: on a 33x33 grid over 9 processors, columns exchange
// 16 boundary messages of 8N = 264 bytes per step while 2-D blocks on a
// 3x3 arrangement exchange 24 messages of 8N/q = 88 bytes per step.  Each
// of U and V is ghost-exchanged once over Steps=2, so each array's ghost
// row carries exactly one step's traffic.
func TestSmoothingTraceShape(t *testing.T) {
	cases := []struct {
		mode        SmoothMode
		msgs        int64
		bytesPerMsg int64
	}{
		{SmoothColumns, 16, 264},
		{SmoothBlock2D, 24, 88},
	}
	for _, tc := range cases {
		tr := trace.New(9)
		if _, err := RunSmoothing(SmoothConfig{N: 33, Steps: 2, P: 9, Mode: tc.mode, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		sum := tr.Summarize()
		if _, ok := sum.Phase("smooth"); !ok {
			t.Fatalf("%v: no \"smooth\" phase in summary", tc.mode)
		}
		for _, arr := range []string{"U", "V"} {
			// One-sided puts are issued (and traced) in the start span;
			// the wait span carries only the completion time.
			ps, ok := sum.Phase("ghost-start " + arr)
			if !ok {
				t.Fatalf("%v: no %q row in summary:\n%s", tc.mode, "ghost-start "+arr, sum.String())
			}
			if ps.Msgs != tc.msgs || ps.Bytes != tc.msgs*tc.bytesPerMsg {
				t.Errorf("%v ghost-start %s: %d msgs / %d bytes, want %d msgs of %d bytes",
					tc.mode, arr, ps.Msgs, ps.Bytes, tc.msgs, tc.bytesPerMsg)
			}
			if _, ok := sum.Phase("ghost-wait " + arr); !ok {
				t.Fatalf("%v: no %q row in summary:\n%s", tc.mode, "ghost-wait "+arr, sum.String())
			}
		}
	}
}
