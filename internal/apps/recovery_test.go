package apps

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/machine"
)

func testLiveness() *machine.LivenessConfig {
	return &machine.LivenessConfig{Interval: 5 * time.Millisecond, Window: 75 * time.Millisecond}
}

// TestADIKillAndRecover is the end-to-end acceptance path: an ADI run
// with periodic checkpoints is killed by a permanently silent rank, the
// failure detector names the survivors, and a relaunch on the three
// survivors with -recover resumes from the last committed epoch and
// converges to the fault-free answer within 1e-12.
func TestADIKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	base := ADIConfig{
		NX: 24, NY: 24, Iters: 8, Mode: ADIDynamic, Validate: true,
		CkptDir: dir, CkptEvery: 1,
	}

	// Phase 1: 4 ranks, rank 2 falls permanently silent once the run is
	// under way (after= lets the first checkpoints commit).
	killed := base
	killed.P = 4
	killed.Fault = "drop,rank=2,after=150"
	killed.CommTimeout = 150 * time.Millisecond
	killed.CommRetries = 2
	killed.Liveness = testLiveness()
	res, err := RunADI(killed)
	if err == nil {
		t.Fatal("run with a permanently silent rank should fail")
	}
	if len(res.Survivors) != 3 || res.Survivors[0] != 0 || res.Survivors[1] != 1 || res.Survivors[2] != 3 {
		t.Fatalf("survivors = %v, want [0 1 3]", res.Survivors)
	}
	epoch, man, lerr := ckpt.LatestEpoch(dir)
	if lerr != nil || epoch < 0 {
		t.Fatalf("no committed checkpoint before the kill (epoch %d, %v); raise after=", epoch, lerr)
	}
	if it, ok := man.MetaInt("iter"); !ok || it >= base.Iters-1 {
		t.Fatalf("checkpoint iter = %d (ok=%v): kill came too late to exercise resumption", it, ok)
	}

	// Phase 2: relaunch on the survivors.  The recovered run must resume
	// after the checkpointed iteration and land on the serial reference.
	rec := base
	rec.P = len(res.Survivors)
	rec.Recover = true
	res2, err := RunADI(rec)
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if res2.ResumedIter < 0 {
		t.Fatal("recovery run did not resume from a checkpoint")
	}
	if res2.MaxErr > 1e-12 {
		t.Fatalf("recovered result deviates from fault-free reference: MaxErr = %g", res2.MaxErr)
	}
}

// TestADIRecoverSameRankCount: recovery onto the original rank count
// replays the descriptor exactly (bit-identical restore) and still
// converges.
func TestADIRecoverSameRankCount(t *testing.T) {
	dir := t.TempDir()
	first := ADIConfig{NX: 16, NY: 16, Iters: 3, P: 4, Mode: ADIDynamic, CkptDir: dir}
	if _, err := RunADI(first); err != nil {
		t.Fatal(err)
	}
	rec := ADIConfig{NX: 16, NY: 16, Iters: 6, P: 4, Mode: ADIDynamic, CkptDir: dir, Recover: true, Validate: true}
	res, err := RunADI(rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedIter != 2 {
		t.Fatalf("resumed after iteration %d, want 2", res.ResumedIter)
	}
	if res.MaxErr > 1e-12 {
		t.Fatalf("MaxErr = %g", res.MaxErr)
	}
}

// TestSmoothingRecoverFewerRanks: the smoothing app checkpoints both
// double-buffers plus the step parity; a shrink-recovery must reproduce
// the serial reference exactly.
func TestSmoothingRecoverFewerRanks(t *testing.T) {
	dir := t.TempDir()
	first := SmoothConfig{N: 20, Steps: 3, P: 4, Mode: SmoothColumns, CkptDir: dir}
	if _, err := RunSmoothing(first); err != nil {
		t.Fatal(err)
	}
	rec := SmoothConfig{N: 20, Steps: 7, P: 2, Mode: SmoothColumns, CkptDir: dir, Recover: true, Validate: true}
	res, err := RunSmoothing(rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr > 1e-12 {
		t.Fatalf("MaxErr = %g", res.MaxErr)
	}
}

// TestPICRecoverConservation: PIC recovery restores FIELD and COUNT
// (connect class, B_BLOCK degrading to BLOCK on the shrunken machine)
// and particle conservation holds through kill and recovery.
func TestPICRecoverConservation(t *testing.T) {
	dir := t.TempDir()
	first := PICConfig{NCell: 32, Steps: 4, P: 4, Rebalance: true, RebalanceEvery: 2, InitPerCell: 16, CkptDir: dir}
	if _, err := RunPIC(first); err != nil {
		t.Fatal(err)
	}
	rec := PICConfig{NCell: 32, Steps: 8, P: 3, Rebalance: true, RebalanceEvery: 2, InitPerCell: 16, CkptDir: dir, Recover: true}
	res, err := RunPIC(rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ParticlesEnd != float64(32*16) {
		t.Fatalf("particles not conserved through recovery: %v, want %v", res.ParticlesEnd, 32*16)
	}
}

// TestSoakChaos is the bounded chaos run of `make soak`: seeded-random
// ADI shapes are killed at seeded-random points by a permanently silent
// seeded-random rank, recovered on the survivors, and checked against
// the serial reference.  Two rounds run in the normal suite; SOAK=1
// extends the matrix.
func TestSoakChaos(t *testing.T) {
	rounds := 2
	if os.Getenv("SOAK") != "" {
		rounds = 8
	}
	rng := rand.New(rand.NewSource(42)) // fixed seed: reproducible chaos
	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		n := 16 + 4*rng.Intn(4)
		iters := 5 + rng.Intn(4)
		victim := rng.Intn(4)
		after := 100 + rng.Intn(250)
		base := ADIConfig{NX: n, NY: n, Iters: iters, Mode: ADIDynamic, Validate: true, CkptDir: dir, CkptEvery: 1}

		killed := base
		killed.P = 4
		killed.Fault = fmt.Sprintf("drop,rank=%d,after=%d", victim, after)
		killed.CommTimeout = 150 * time.Millisecond
		killed.CommRetries = 2
		killed.Liveness = testLiveness()
		res, err := RunADI(killed)
		if err == nil {
			// The kill landed after the run finished all iterations —
			// still a valid chaos outcome; the checkpoint must validate.
			if res.MaxErr > 1e-12 {
				t.Fatalf("round %d: fault-free-ish run MaxErr = %g", round, res.MaxErr)
			}
			continue
		}
		epoch, _, lerr := ckpt.LatestEpoch(dir)
		if lerr != nil {
			t.Fatalf("round %d: %v", round, lerr)
		}
		if epoch < 0 {
			continue // killed before the first commit: nothing to recover
		}
		np := len(res.Survivors)
		if np == 0 {
			np = 3
		}
		rec := base
		rec.P = np
		rec.Recover = true
		res2, err := RunADI(rec)
		if err != nil {
			t.Fatalf("round %d (n=%d iters=%d victim=%d after=%d): recovery: %v", round, n, iters, victim, after, err)
		}
		if res2.MaxErr > 1e-12 {
			t.Fatalf("round %d (n=%d iters=%d victim=%d after=%d): MaxErr = %g", round, n, iters, victim, after, res2.MaxErr)
		}
	}
}
