package apps

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/scale"
)

// PICConfig parameterizes the Figure 2 particle-in-cell study.  The
// domain is a 1-D chain of NCell cells; each cell holds a particle count.
// Every step, a fixed fraction of each cell's particles drifts toward
// higher-numbered cells (reflecting at the last cell), so a uniform
// initial loading develops a pile-up — exactly the "motion of particles
// during the simulation may lead to a severe load imbalance" scenario of
// §4.
type PICConfig struct {
	NCell int
	Steps int
	P     int
	// Rebalance enables the B_BLOCK(BOUNDS) rebalancing path of Figure 2;
	// otherwise the cells stay statically BLOCK distributed.
	Rebalance bool
	// RebalanceEvery is the Figure 2 "every 10th iteration" check period.
	RebalanceEvery int
	// RebalanceThreshold triggers rebalancing when max/avg particles per
	// processor exceeds it (the rebalance() predicate; default 1.1).
	RebalanceThreshold float64
	// DriftFrac is the fraction of a cell's particles moving one cell
	// rightward per step (default 0.2).
	DriftFrac float64
	// InitPerCell is the initial particle count per cell (default 64).
	InitPerCell int
	// WorkPerParticle spins this many arithmetic ops per particle in
	// update_field, making wall time reflect the load (default 40).
	WorkPerParticle int
	// Alpha/Beta attach a cost model; FlopTime charges modeled compute
	// per particle-op.
	Alpha, Beta float64
	FlopTime    float64
	// UseTCP runs the machine over the TCP loopback transport instead of
	// the in-process one (same semantics, real sockets).
	UseTCP bool
	// CkptDir enables coordinated checkpoints of FIELD and COUNT after
	// every CkptEvery-th step (default every step when set).
	CkptDir   string
	CkptEvery int
	// IO selects the parallel-I/O options (striping, redundancy,
	// retention, disk-fault injection) for the checkpoints.
	IO IOConfig
	// Recover resumes from the latest committed checkpoint in CkptDir;
	// a B_BLOCK(BOUNDS) distribution sized for the lost machine degrades
	// to BLOCK on the survivors until the next rebalance.
	Recover bool
	// Fault wraps the transport in a fault-injecting decorator built
	// from msg.ParseFaultPlan.
	Fault string
	// CommTimeout/CommRetries install a deadline/retry policy so faults
	// surface as errors instead of hangs.
	CommTimeout time.Duration
	CommRetries int
	// Liveness, when non-nil, runs the heartbeat failure detector.
	Liveness *machine.LivenessConfig
	// OnlineRecover enables in-process failure recovery (see
	// ADIConfig.OnlineRecover); requires CkptDir, Liveness, and a
	// CommTimeout.
	OnlineRecover bool
	// Integrity appends a CRC32C trailer to every wire message; implied
	// when Fault has a corrupt/bitflip rule.
	Integrity bool
	// Join reserves this many extra ranks beyond P; they park in
	// AwaitJoin and are admitted mid-run when Elastic is set.
	Join int
	// Elastic polls for pending joiners at step boundaries at or after
	// JoinAfterIter; on a hit the members checkpoint, admit the joiner,
	// and replay onto the grown view (the next rebalance then spreads
	// B_BLOCK bounds over it).  Requires CkptDir and Join > 0.
	Elastic bool
	// JoinAfterIter is the first step boundary at which members poll.
	JoinAfterIter int
	// MemBudget bounds each rank's peak resident wire bytes during
	// redistributions; <= 0 means unbounded.
	MemBudget int64
	// Straggler configures the rank-health scorer, an optional injected
	// slow rank, and the mitigation policy.  A rebalance here feeds the
	// measured speeds into the B_BLOCK bounds computation, so the
	// straggler gets fewer particles, not just fewer cells.
	Straggler StragglerConfig
}

// PICResult reports a PIC run.
type PICResult struct {
	Rebalance       bool
	ImbalanceSeries []float64 // per-step max/avg particles per processor
	MeanImbalance   float64
	FinalImbalance  float64
	PeakImbalance   float64
	Redistributions int
	Msgs, Bytes     int64
	RedistBytes     int64
	ModelTime       float64
	Wall            time.Duration
	ParticlesStart  float64
	ParticlesEnd    float64 // conservation check: must equal start
	FieldChecksum   float64
	// Survivors is the failure detector's surviving rank set (when
	// Liveness was configured), populated even on error.
	Survivors []int
	// FinalEpoch is the membership epoch the run completed on: 0 for a
	// failure-free run, >0 after in-process online recovery.
	FinalEpoch int
	// DegradedRank is the first physical rank the health scorer ever
	// classified Degraded (-1: none, or scoring off).
	DegradedRank int
	// Mitigation is the straggler mitigation that fired ("rebalance",
	// "drain", or empty).
	Mitigation string
	// Drained lists the physical ranks voluntarily drained from the
	// membership by the straggler policy.
	Drained []int
}

// RunPIC executes the Figure 2 outer loop:
//
//	CALL initpos; CALL balance; DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)
//	DO k = 1, MAX_TIME
//	  CALL update_field; CALL update_part
//	  IF (MOD(k,10) == 0 .AND. rebalance()) THEN
//	    CALL balance; DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)
//	  ENDIF
//	ENDDO
//
// FIELD is the primary of a connect class {FIELD, COUNT}: COUNT (the
// per-cell particle counts) is declared CONNECT(=FIELD), so every
// DISTRIBUTE moves both — the class semantics of §2.3 doing real work.
func RunPIC(cfg PICConfig) (PICResult, error) {
	if cfg.RebalanceEvery <= 0 {
		cfg.RebalanceEvery = 10
	}
	if cfg.RebalanceThreshold == 0 {
		cfg.RebalanceThreshold = 1.1
	}
	if cfg.DriftFrac == 0 {
		cfg.DriftFrac = 0.2
	}
	if cfg.InitPerCell == 0 {
		cfg.InitPerCell = 64
	}
	if cfg.WorkPerParticle == 0 {
		cfg.WorkPerParticle = 40
	}
	if cfg.FlopTime == 0 {
		cfg.FlopTime = 2e-9
	}
	capacity := cfg.P + cfg.Join
	if cfg.NCell < capacity {
		return PICResult{}, fmt.Errorf("apps: PIC needs NCell >= P+Join")
	}
	if cfg.Elastic && (cfg.Join <= 0 || cfg.CkptDir == "") {
		return PICResult{}, fmt.Errorf("apps: Elastic requires Join > 0 and a CkptDir")
	}
	if err := cfg.Straggler.validate(cfg.Liveness != nil, cfg.CommTimeout, cfg.CkptDir); err != nil {
		return PICResult{}, err
	}
	var mopts []machine.Option
	var cm *msg.CostModel
	var topts []msg.Option
	if cfg.Alpha != 0 || cfg.Beta != 0 {
		cm = msg.NewCostModel(capacity, cfg.Alpha, cfg.Beta)
		mopts = append(mopts, machine.WithCostModel(cm))
		topts = append(topts, msg.WithCost(cm))
	}
	base, err := assembleTransport(capacity, cfg.UseTCP, cfg.Fault, cfg.Integrity, topts)
	if err != nil {
		return PICResult{Rebalance: cfg.Rebalance}, err
	}
	if base != nil {
		mopts = append(mopts, machine.WithTransport(base))
	}
	if cfg.CommTimeout > 0 || cfg.CommRetries > 0 {
		mopts = append(mopts, machine.WithCommConfig(msg.CommConfig{
			Timeout: cfg.CommTimeout, Retries: cfg.CommRetries, Backoff: time.Millisecond,
			MaxTimeout: 4 * cfg.CommTimeout, MaxBackoff: 16 * time.Millisecond,
		}))
	}
	if cfg.Liveness != nil {
		mopts = append(mopts, machine.WithLiveness(*cfg.Liveness))
	}
	if cfg.Straggler.Enabled() {
		mopts = append(mopts, machine.WithHealth(cfg.Straggler.healthConfig()))
	}
	if cfg.Join > 0 {
		mopts = append(mopts, machine.WithReserve(cfg.Join))
	}
	m := machine.New(cfg.P, mopts...)
	defer m.Close()
	e := core.NewEngine(m)
	e.SetMemBudget(cfg.MemBudget)
	e.SetCkptOptions(cfg.IO.options())
	res := PICResult{Rebalance: cfg.Rebalance, ImbalanceSeries: make([]float64, cfg.Steps), DegradedRank: -1}

	dom := index.Dim(cfg.NCell)
	var redistBytes int64
	var finalEpoch int
	var mitigation string
	var drainedPhys []int
	start := time.Now()
	err = m.Run(func(ctx *machine.Ctx) error {
		// Per-goroutine straggler state: a rebalance installs the measured
		// speed shares so every subsequent balance() weights its B_BLOCK
		// bounds by throughput; mitigated makes the policy one-shot.
		var speedShares []float64
		mitigated := false
		body := func(eng *core.Engine, online bool) error {
			if speedShares != nil && len(speedShares) != ctx.NP() {
				speedShares = nil
			}
			blockInit := core.DistSpec{Type: dist.NewType(dist.BlockDim())}
			field := eng.MustDeclare(ctx, core.Decl{Name: "FIELD", Domain: dom, Dynamic: true, Init: &blockInit})
			count := eng.MustDeclare(ctx, core.Decl{Name: "COUNT", Domain: dom, Dynamic: true, ConnectTo: "FIELD"})

			// initpos: uniform loading — or, when recovering, replay the last
			// committed checkpoint (cells, field and distribution descriptor)
			// onto this run's processors — online, onto the regrouped
			// survivors — and resume after the recorded step.
			k0 := 1
			switch {
			case online:
				man, err := eng.Recover(ctx, cfg.CkptDir)
				if err != nil {
					return err
				}
				if step, ok := man.MetaInt("step"); ok {
					k0 = step + 1
				}
			case cfg.Recover:
				man, err := eng.Restore(ctx, cfg.CkptDir)
				if err != nil {
					return err
				}
				if step, ok := man.MetaInt("step"); ok {
					k0 = step + 1
				}
			default:
				count.FillFunc(ctx, func(index.Point) float64 { return float64(cfg.InitPerCell) })
				field.FillFunc(ctx, func(index.Point) float64 { return 0 })
			}
			if err := ctx.Barrier(); err != nil {
				return err
			}

			balance := func() error {
				// compute BOUNDS equalizing particles per processor, then
				// DISTRIBUTE FIELD :: B_BLOCK(BOUNDS) — moving COUNT with it.
				counts, err := count.GatherTo(ctx, 0)
				if err != nil {
					return err
				}
				var bounds []int
				if ctx.Rank() == 0 {
					if speedShares != nil {
						bounds = computeWeightedBounds(counts, speedShares)
					} else {
						bounds = computeBounds(counts, ctx.NP())
					}
				}
				bounds, err = ctx.Comm().BcastInts(0, bounds)
				if err != nil {
					return err
				}
				pre := m.Stats().Snapshot()
				if err := eng.Distribute(ctx, []*core.Array{field},
					core.DimsOf(dist.BBlockDim(bounds...))); err != nil {
					return err
				}
				if err := ctx.Barrier(); err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					redistBytes += m.Stats().Snapshot().Sub(pre).TotalBytes()
					res.Redistributions++
				}
				return ctx.Barrier()
			}

			imbalance := func() (float64, error) {
				local := 0.0
				count.Local(ctx).ForEachOwned(func(_ index.Point, v *float64) { local += *v })
				tot, err := ctx.Comm().AllreduceF64([]float64{local}, msg.SumF64)
				if err != nil {
					return 0, err
				}
				mx, err := ctx.Comm().AllreduceF64([]float64{local}, msg.MaxF64)
				if err != nil {
					return 0, err
				}
				avg := tot[0] / float64(ctx.NP())
				if avg == 0 {
					return 1, nil
				}
				return mx[0] / avg, nil
			}

			// initial balance (Figure 2 does this before the time loop); a
			// recovered run keeps the restored distribution until the next
			// in-loop rebalance check.
			if cfg.Rebalance && !cfg.Recover {
				if err := balance(); err != nil {
					return err
				}
			}
			startCounts, err := count.GatherTo(ctx, 0)
			if err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				res.ParticlesStart = sum(startCounts)
			}

			for k := k0; k <= cfg.Steps; k++ {
				stepT0 := time.Now()
				// update_field: work proportional to local particle count.
				// The compute runs under timed so an injected straggler is
				// stretched and its per-particle cost reported to the scorer.
				lc, lf := count.Local(ctx), field.Local(ctx)
				particles := 0.0
				el := cfg.Straggler.timed(ctx, func() {
					lc.ForEachOwned(func(p index.Point, v *float64) {
						n := int(*v)
						particles += *v
						acc := lf.At(p)
						for w := 0; w < n*cfg.WorkPerParticle; w++ {
							acc += 1e-9 * float64(w%7)
						}
						lf.SetAt(p, acc+*v)
					})
				})
				ctx.Charge(cfg.FlopTime * particles * float64(cfg.WorkPerParticle))
				if cfg.Straggler.Enabled() {
					ctx.ReportWork(particles, el)
				}
				if err := ctx.Barrier(); err != nil {
					return err
				}

				// update_part: DriftFrac of each cell's particles moves to
				// cell+1; the last cell reflects (keeps its particles).  The
				// only cross-processor flow is from my last cell to the
				// owner of the next cell.
				if err := moveRight(ctx, count, cfg.DriftFrac); err != nil {
					return err
				}

				imb, err := imbalance() // identical on every rank (allreduce)
				if err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					res.ImbalanceSeries[k-1] = imb
				}
				if cfg.Rebalance && k%cfg.RebalanceEvery == 0 && imb > cfg.RebalanceThreshold {
					if err := balance(); err != nil {
						return err
					}
				}
				if cfg.CkptDir != "" && k%max(cfg.CkptEvery, 1) == 0 {
					if _, err := eng.Checkpoint(ctx, cfg.CkptDir, map[string]string{"step": fmt.Sprint(k)}); err != nil {
						return err
					}
				}
				// Elastic scale-out: agreed joiner poll at the step
				// boundary; checkpoint and bail so the driver can Admit.
				if cfg.Elastic && k >= cfg.JoinAfterIter && k < cfg.Steps {
					grow, gerr := ctx.PollJoin()
					if gerr != nil {
						return gerr
					}
					if grow {
						if _, err := eng.Checkpoint(ctx, cfg.CkptDir, map[string]string{"step": fmt.Sprint(k)}); err != nil {
							return err
						}
						return errGrow
					}
				}
				// Straggler defense: one agreed mitigation per run.  A
				// rebalance re-divides the particles by measured speed
				// immediately (and keeps weighting later balances); a drain
				// checkpoints and shrinks the membership.
				if cfg.Straggler.mitigating() && !mitigated && k >= cfg.Straggler.checkAfter() && k < cfg.Steps {
					dec, view, speeds, derr := decideStraggler(ctx, m, cfg.Straggler, cfg.Steps-k, time.Since(stepT0))
					if derr != nil {
						return derr
					}
					switch dec {
					case scale.Rebalance:
						mitigated = true
						speedShares = scale.FairShares(speeds)
						if err := balance(); err != nil {
							return err
						}
						if ctx.Rank() == 0 {
							mitigation = "rebalance"
						}
					case scale.Drain:
						mitigated = true
						if _, err := eng.Checkpoint(ctx, cfg.CkptDir, map[string]string{"step": fmt.Sprint(k)}); err != nil {
							return err
						}
						if ctx.Rank() == 0 {
							mitigation = "drain"
							drainedPhys = append(drainedPhys, ctx.PhysOf(view))
						}
						return &drainError{viewRank: view}
					}
				}
			}

			got, err := count.GatherTo(ctx, 0)
			if err != nil {
				return err
			}
			fields, err := field.GatherTo(ctx, 0)
			if err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				res.ParticlesEnd = sum(got)
				res.FieldChecksum = sum(fields)
				finalEpoch = ctx.Epoch()
			}
			return nil
		}
		return runWithOnlineRecovery(ctx, m, e, cfg.OnlineRecover && cfg.CkptDir != "", max(cfg.P, 2), cfg.MemBudget, body)
	})
	res.Survivors = m.Survivors()
	res.DegradedRank = degradedRank(m)
	res.Mitigation = mitigation
	res.Drained = drainedPhys
	if err != nil {
		return res, err
	}
	res.Wall = time.Since(start)
	res.FinalEpoch = finalEpoch
	sn := m.Stats().Snapshot()
	res.Msgs, res.Bytes = sn.TotalDataMsgs(), sn.TotalBytes()
	res.RedistBytes = redistBytes
	if cm != nil {
		res.ModelTime = cm.Makespan()
	}
	peak, total := 0.0, 0.0
	for _, v := range res.ImbalanceSeries {
		total += v
		if v > peak {
			res.PeakImbalance = v
			peak = v
		}
	}
	if cfg.Steps > 0 {
		res.MeanImbalance = total / float64(cfg.Steps)
		res.FinalImbalance = res.ImbalanceSeries[cfg.Steps-1]
	}
	return res, nil
}

// moveRight shifts frac of every cell's count one cell to the right
// (reflecting at the global last cell).  Cross-boundary flow travels as a
// point-to-point message to the owner of the next cell; transport
// failures are returned as wrapped errors.
func moveRight(ctx *machine.Ctx, count *core.Array, frac float64) error {
	l := count.Local(ctx)
	d := count.Dist()
	dom := count.Domain()
	n := dom.Extent(0)
	rs := l.Grid().Dims[0]
	ep := ctx.Endpoint()
	const tag = 9100

	var outflow float64 // from my last cell across the boundary
	var lastIdx int = -1
	if rs.Count() > 0 {
		lo, hi := rs[0].Lo, rs[len(rs)-1].Hi
		// walk right-to-left so a cell's inflow does not cascade this step
		for i := hi; i >= lo; i-- {
			p := index.Point{i}
			c := l.At(p)
			mv := float64(int(c * frac))
			if i == n { // reflecting boundary: stay
				continue
			}
			l.SetAt(p, c-mv)
			if i == hi {
				outflow = mv
				lastIdx = i
			} else {
				q := index.Point{i + 1}
				l.SetAt(q, l.At(q)+mv)
			}
		}
	}
	// exchange boundary flows: send to owner of my hi+1, receive from the
	// owner of my lo-1's segment (if any).  Every processor participates;
	// empty segments forward nothing.
	sendTo := -1
	if lastIdx >= 0 && lastIdx < n {
		sendTo = d.Owner(index.Point{lastIdx + 1})
	}
	recvFrom := -1
	if rs.Count() > 0 && rs[0].Lo > 1 {
		recvFrom = d.Owner(index.Point{rs[0].Lo - 1})
	}
	cfg := ctx.Comm().Config()
	tr := ctx.Tracer()
	if sendTo >= 0 && sendTo != ctx.Rank() {
		if err := msg.SendRetry(ep, cfg, tr, "pic-drift", sendTo, tag, msg.EncodeFloat64s([]float64{outflow, float64(lastIdx + 1)})); err != nil {
			return fmt.Errorf("apps: PIC drift at rank %d: %w", ctx.Rank(), err)
		}
	} else if sendTo == ctx.Rank() {
		q := index.Point{lastIdx + 1}
		l.SetAt(q, l.At(q)+outflow)
	}
	if recvFrom >= 0 && recvFrom != ctx.Rank() {
		p, err := msg.RecvRetry(ep, cfg, tr, "pic-drift", recvFrom, tag)
		if err != nil {
			return fmt.Errorf("apps: PIC drift at rank %d: %w", ctx.Rank(), err)
		}
		vals := msg.DecodeFloat64s(p.Data)
		q := index.Point{int(vals[1])}
		l.SetAt(q, l.At(q)+vals[0])
	}
	return ctx.Barrier()
}

// computeBounds returns B_BLOCK bounds assigning contiguous cells to
// processors so that each gets roughly total/np particles — the balance()
// of Figure 2.
func computeBounds(counts []float64, np int) []int {
	total := sum(counts)
	per := total / float64(np)
	bounds := make([]int, np)
	acc := 0.0
	p := 0
	for i, c := range counts {
		acc += c
		if acc >= per*float64(p+1) && p < np-1 {
			bounds[p] = i + 1 // 1-based cell index
			p++
		}
	}
	for ; p < np; p++ {
		bounds[p] = len(counts)
	}
	// bounds must be non-decreasing and end at NCell; fill any gaps
	prev := 0
	for i := range bounds {
		if bounds[i] < prev {
			bounds[i] = prev
		}
		prev = bounds[i]
	}
	bounds[np-1] = len(counts)
	return bounds
}

// computeWeightedBounds generalizes computeBounds to uneven targets: the
// cumulative particle targets follow the given work shares (summing to 1,
// from scale.FairShares) instead of an even total/np split, so a slow
// processor's segment carries proportionally fewer particles.
func computeWeightedBounds(counts, shares []float64) []int {
	np := len(shares)
	total := sum(counts)
	targets := make([]float64, np)
	cum := 0.0
	for p := range shares {
		cum += shares[p]
		targets[p] = total * cum
	}
	bounds := make([]int, np)
	acc := 0.0
	p := 0
	for i, c := range counts {
		acc += c
		for p < np-1 && acc >= targets[p] {
			bounds[p] = i + 1 // 1-based cell index
			p++
		}
	}
	for ; p < np; p++ {
		bounds[p] = len(counts)
	}
	prev := 0
	for i := range bounds {
		if bounds[i] < prev {
			bounds[i] = prev
		}
		prev = bounds[i]
	}
	bounds[np-1] = len(counts)
	return bounds
}

func sum(v []float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}
