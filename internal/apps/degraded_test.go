package apps

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/pario"
)

// degradedIO builds the test I/O options: striped checkpoints with the
// given redundancy, metrics attached, and a transient injected read
// fault (first stripe read per rank fails once) healed by the retry
// policy.
func degradedIO(t *testing.T, redundancy string) (IOConfig, *pario.Metrics) {
	t.Helper()
	plan, err := pario.ParseFaultPlan("eio,op=read,path=stripe,count=1")
	if err != nil {
		t.Fatal(err)
	}
	met := &pario.Metrics{}
	return IOConfig{
		Servers:    3,
		Redundancy: redundancy,
		FS:         pario.NewFaultFS(pario.OS{}, plan).Rank,
		IO:         pario.Config{Timeout: 2 * time.Second, Retries: 2, Backoff: time.Millisecond, Metrics: met},
	}, met
}

// damageNewest deletes one stripe file of the newest committed epoch and
// returns its name.
func damageNewest(t *testing.T, dir string) string {
	t.Helper()
	epoch, man, err := ckpt.LatestEpoch(dir)
	if err != nil || epoch < 0 {
		t.Fatalf("no committed checkpoint (epoch %d, %v)", epoch, err)
	}
	name := man.Stripes[len(man.Stripes)/2].Name
	if err := os.Remove(filepath.Join(ckpt.EpochDir(dir, epoch), name)); err != nil {
		t.Fatal(err)
	}
	return name
}

// adiDegraded is the app-level acceptance path: per-iteration striped
// parity checkpoints, one stripe file of the newest epoch deleted, and a
// -recover relaunch that reconstructs the stripe from parity (healing it
// on disk), resumes, and matches the fault-free serial reference
// bit-exactly — on either transport.
func adiDegraded(t *testing.T, useTCP bool) {
	dir := t.TempDir()
	io, met := degradedIO(t, pario.RedundancyParity)
	base := ADIConfig{
		NX: 24, NY: 24, Iters: 6, P: 4, Mode: ADIDynamic, UseTCP: useTCP,
		CkptDir: dir, CkptEvery: 1, IO: io,
	}
	if _, err := RunADI(base); err != nil {
		t.Fatal(err)
	}
	damageNewest(t, dir)

	rec := base
	rec.Recover, rec.Validate = true, true
	res, err := RunADI(rec)
	if err != nil {
		t.Fatalf("degraded recovery run: %v", err)
	}
	if res.ResumedIter < 0 {
		t.Fatal("recovery run did not resume from a checkpoint")
	}
	if res.MaxErr != 0 {
		t.Fatalf("degraded restore deviates from the serial reference: MaxErr = %g, want bit-exact 0", res.MaxErr)
	}
	if met.Reconstructions.Load() == 0 {
		t.Error("no stripe reconstruction was recorded")
	}
	if met.Repairs.Load() == 0 {
		t.Error("the lost stripe was not healed on disk")
	}
	if met.Retries.Load() == 0 {
		t.Error("the injected read faults never exercised the retry policy")
	}
}

func TestADIDegradedRestoreChan(t *testing.T) { adiDegraded(t, false) }
func TestADIDegradedRestoreTCP(t *testing.T)  { adiDegraded(t, true) }

// TestSmoothingDegradedRestore: same drill on the smoothing app (both
// double-buffers restored from a degraded epoch).
func TestSmoothingDegradedRestore(t *testing.T) {
	dir := t.TempDir()
	io, met := degradedIO(t, pario.RedundancyParity)
	base := SmoothConfig{
		N: 20, Steps: 4, P: 4, Mode: SmoothColumns,
		CkptDir: dir, CkptEvery: 1, IO: io,
	}
	if _, err := RunSmoothing(base); err != nil {
		t.Fatal(err)
	}
	damageNewest(t, dir)

	rec := base
	rec.Steps = 7
	rec.Recover, rec.Validate = true, true
	res, err := RunSmoothing(rec)
	if err != nil {
		t.Fatalf("degraded recovery run: %v", err)
	}
	if res.MaxErr > 1e-12 {
		t.Fatalf("MaxErr = %g", res.MaxErr)
	}
	if met.Reconstructions.Load() == 0 {
		t.Error("no stripe reconstruction was recorded")
	}
}

// TestPICDegradedRestoreReplica: replica redundancy on the PIC app — a
// lost stripe is served from its replica, FIELD and COUNT restore
// together (connect class), and particle conservation holds through the
// damage.
func TestPICDegradedRestoreReplica(t *testing.T) {
	dir := t.TempDir()
	io, met := degradedIO(t, pario.RedundancyReplica)
	base := PICConfig{
		NCell: 32, Steps: 4, P: 4, Rebalance: true, RebalanceEvery: 2, InitPerCell: 16,
		CkptDir: dir, CkptEvery: 1, IO: io,
	}
	if _, err := RunPIC(base); err != nil {
		t.Fatal(err)
	}
	damageNewest(t, dir)

	rec := base
	rec.Steps = 8
	rec.Recover = true
	res, err := RunPIC(rec)
	if err != nil {
		t.Fatalf("degraded recovery run: %v", err)
	}
	if res.ParticlesEnd != res.ParticlesStart {
		t.Fatalf("particle conservation violated: %v -> %v", res.ParticlesStart, res.ParticlesEnd)
	}
	if met.Reconstructions.Load() == 0 {
		t.Error("no stripe reconstruction was recorded")
	}
}

// TestDoubleDamageFailsLoudly: damage beyond what redundancy can rebuild
// must surface as an error (after falling back past the ruined epoch to
// an older one if present — here there is exactly one, so the recovery
// errors rather than fabricating state).
func TestDoubleDamageFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	base := ADIConfig{
		NX: 16, NY: 16, Iters: 2, P: 2, Mode: ADIDynamic,
		CkptDir: dir, CkptEvery: 1, IO: IOConfig{Servers: 2, Redundancy: pario.RedundancyParity, Keep: 1},
	}
	if _, err := RunADI(base); err != nil {
		t.Fatal(err)
	}
	epoch, man, err := ckpt.LatestEpoch(dir)
	if err != nil || epoch < 0 {
		t.Fatal(err)
	}
	for _, name := range []string{man.Stripes[0].Name, man.Stripes[1].Name} {
		if err := os.Remove(filepath.Join(ckpt.EpochDir(dir, epoch), name)); err != nil {
			t.Fatal(err)
		}
	}
	rec := base
	rec.Recover = true
	if _, err := RunADI(rec); err == nil {
		t.Fatal("recovery from a doubly-damaged sole epoch must fail, not fabricate state")
	}
}
