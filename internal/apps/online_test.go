package apps

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/msg"
)

// onlineADI is the shared shape of the online-recovery kill matrix: a
// 4-rank dynamic ADI with per-iteration checkpoints, a permanently
// silent rank, and OnlineRecover — the survivors must regroup and
// finish in the same process, matching the serial reference
// bit-for-bit.
func onlineADI(t *testing.T, useTCP bool, after int) {
	t.Helper()
	dir := t.TempDir()
	cfg := ADIConfig{
		NX: 24, NY: 24, Iters: 8, P: 4, Mode: ADIDynamic, Validate: true,
		CkptDir: dir, CkptEvery: 1,
		UseTCP:        useTCP,
		Fault:         fmt.Sprintf("drop,rank=2,after=%d", after),
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		OnlineRecover: true,
	}
	res, err := RunADI(cfg)
	if err != nil {
		t.Fatalf("online recovery run (tcp=%v after=%d): %v", useTCP, after, err)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("run finished on epoch %d: the kill never triggered a regroup (raise after=?)", res.FinalEpoch)
	}
	if len(res.Survivors) != 3 || res.Survivors[0] != 0 || res.Survivors[1] != 1 || res.Survivors[2] != 3 {
		t.Fatalf("survivors = %v, want [0 1 3]", res.Survivors)
	}
	if res.ResumedIter < 0 {
		t.Fatal("recovery did not resume from a committed checkpoint")
	}
	if res.MaxErr != 0 {
		t.Fatalf("survivor result deviates from serial reference: MaxErr = %g, want bit-for-bit 0", res.MaxErr)
	}
}

// TestOnlineRecoverADIChan: kill early in the run (between collectives)
// over the in-process transport.
func TestOnlineRecoverADIChan(t *testing.T) { onlineADI(t, false, 150) }

// TestOnlineRecoverADIChanMidCollective: a later kill point that lands
// inside the redistribution traffic of a DISTRIBUTE in flight.
func TestOnlineRecoverADIChanMidCollective(t *testing.T) { onlineADI(t, false, 260) }

// TestOnlineRecoverADITCP: the same regroup over real sockets.
func TestOnlineRecoverADITCP(t *testing.T) { onlineADI(t, true, 150) }

// TestOnlineRecoverADITCPMidCollective: sockets × late kill.
func TestOnlineRecoverADITCPMidCollective(t *testing.T) { onlineADI(t, true, 260) }

// TestOnlineRecoverSmoothing: the smoothing app's double-buffered
// stencil survives a mid-run rank loss in-process and still matches the
// serial reference.
func TestOnlineRecoverSmoothing(t *testing.T) {
	dir := t.TempDir()
	cfg := SmoothConfig{
		N: 24, Steps: 8, P: 4, Mode: SmoothColumns, Validate: true,
		CkptDir: dir, CkptEvery: 1,
		Fault:         "drop,rank=1,after=80",
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		OnlineRecover: true,
	}
	res, err := RunSmoothing(cfg)
	if err != nil {
		t.Fatalf("online smoothing recovery: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("run finished on epoch %d: kill never landed", res.FinalEpoch)
	}
	if res.MaxErr > 1e-12 {
		t.Fatalf("MaxErr = %g after online recovery", res.MaxErr)
	}
}

// TestOnlineRecoverPICConservation: PIC regroups in-process; particle
// conservation holds across the membership change (FIELD and COUNT are
// one connect class, restored together).
func TestOnlineRecoverPICConservation(t *testing.T) {
	dir := t.TempDir()
	cfg := PICConfig{
		NCell: 32, Steps: 8, P: 4, Rebalance: true, RebalanceEvery: 2, InitPerCell: 16,
		CkptDir: dir, CkptEvery: 1,
		Fault:         "drop,rank=3,after=80",
		CommTimeout:   150 * time.Millisecond,
		CommRetries:   2,
		Liveness:      testLiveness(),
		OnlineRecover: true,
	}
	res, err := RunPIC(cfg)
	if err != nil {
		t.Fatalf("online PIC recovery: %v", err)
	}
	if res.FinalEpoch < 1 {
		t.Fatalf("run finished on epoch %d: kill never landed", res.FinalEpoch)
	}
	if res.ParticlesEnd != float64(32*16) {
		t.Fatalf("particles not conserved through online recovery: %v, want %v", res.ParticlesEnd, 32*16)
	}
}

// TestOnlineBitflipSurfacesIntegrityError: a corrupted payload is caught
// by the CRC32C trailer and surfaces as the named msg.ErrIntegrity —
// never a silent wrong answer, never a panic.
func TestOnlineBitflipSurfacesIntegrityError(t *testing.T) {
	cfg := ADIConfig{
		NX: 16, NY: 16, Iters: 2, P: 4, Mode: ADIDynamic,
		Fault:       "bitflip,rank=1,count=1,after=40",
		CommTimeout: 100 * time.Millisecond,
		CommRetries: 2,
	}
	_, err := RunADI(cfg)
	if err == nil {
		t.Fatal("a corrupted frame must fail the run (it cannot be silently absorbed)")
	}
	if !errors.Is(err, msg.ErrIntegrity) {
		t.Fatalf("err = %v, want wrapped msg.ErrIntegrity", err)
	}
}

// TestOnlineIntegrityCleanRun: the CRC layer on a fault-free run is
// invisible — the result still validates bit-for-bit.
func TestOnlineIntegrityCleanRun(t *testing.T) {
	res, err := RunADI(ADIConfig{
		NX: 16, NY: 16, Iters: 3, P: 4, Mode: ADIDynamic, Validate: true,
		Integrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxErr != 0 {
		t.Fatalf("MaxErr = %g over integrity transport", res.MaxErr)
	}
}

// TestSoakOnline is the online arm of `make soak`: seeded-random ADI
// shapes are killed at seeded-random points and must finish in-process
// on the survivors.  Kills that land before the first checkpoint commit
// are legitimately unrecoverable and skipped.
func TestSoakOnline(t *testing.T) {
	rounds := 2
	if os.Getenv("SOAK") != "" {
		rounds = 6
	}
	rng := rand.New(rand.NewSource(17)) // fixed seed: reproducible chaos
	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		n := 16 + 4*rng.Intn(4)
		iters := 5 + rng.Intn(4)
		victim := rng.Intn(4)
		after := 120 + rng.Intn(250)
		cfg := ADIConfig{
			NX: n, NY: n, Iters: iters, P: 4, Mode: ADIDynamic, Validate: true,
			CkptDir: dir, CkptEvery: 1,
			Fault:         fmt.Sprintf("drop,rank=%d,after=%d", victim, after),
			CommTimeout:   150 * time.Millisecond,
			CommRetries:   2,
			Liveness:      testLiveness(),
			OnlineRecover: true,
		}
		res, err := RunADI(cfg)
		if err != nil {
			if epoch, _, lerr := ckpt.LatestEpoch(dir); lerr == nil && epoch < 0 {
				continue // killed before the first commit: nothing to recover from
			}
			t.Fatalf("round %d (n=%d iters=%d victim=%d after=%d): %v", round, n, iters, victim, after, err)
		}
		if res.MaxErr != 0 {
			t.Fatalf("round %d (n=%d iters=%d victim=%d after=%d): MaxErr = %g", round, n, iters, victim, after, res.MaxErr)
		}
	}
}
