package apps

import (
	"errors"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/msg"
)

// assembleTransport builds the transport stack an app run asked for:
// TCP loopback or in-process channels at the base, optionally wrapped in
// a fault injector (spec per msg.ParseFaultPlan), optionally wrapped —
// outermost, so injected corruption is caught — in the CRC32C integrity
// layer.  Integrity is implied by any corrupt/bitflip fault rule.  A nil
// transport (with nil error) means the machine's default suffices.
func assembleTransport(p int, useTCP bool, fault string, integrity bool, topts []msg.Option) (msg.Transport, error) {
	var plan *msg.FaultPlan
	if fault != "" {
		var err error
		plan, err = msg.ParseFaultPlan(fault)
		if err != nil {
			return nil, err
		}
		integrity = integrity || plan.HasKind(msg.FaultCorrupt)
	}
	var base msg.Transport
	if useTCP {
		tcp, err := msg.NewTCPTransport(p, topts...)
		if err != nil {
			return nil, err
		}
		base = tcp
	} else if plan != nil || integrity {
		base = msg.NewChanTransport(p, topts...)
	}
	if plan != nil {
		base = msg.NewFaultTransport(base, plan)
	}
	if integrity {
		base = msg.NewIntegrityTransport(base)
	}
	return base, nil
}

// runWithOnlineRecovery drives an app body under the in-process failure
// recovery policy.  body declares its arrays on eng and runs the
// iteration loop; online reports whether this attempt must replay the
// last committed checkpoint (Engine.Recover) instead of filling initial
// values.  On a body error with recovery enabled, the survivors Regroup
// onto the next membership epoch, share a fresh engine (the old one's
// arrays are bound to the revoked epoch's numbering), and re-enter the
// body.  The rank excluded by the regroup — and any rank that exhausts
// maxAttempts — returns its error to Machine.Run, which treats
// ErrExcluded as a non-fatal exit.
func runWithOnlineRecovery(ctx *machine.Ctx, m *machine.Machine, eng *core.Engine,
	enabled bool, maxAttempts int, body func(eng *core.Engine, online bool) error) error {
	online := false
	for attempt := 0; ; attempt++ {
		err := body(eng, online)
		if err == nil || !enabled {
			return err
		}
		if errors.Is(err, machine.ErrExcluded) || attempt+1 >= maxAttempts {
			return err
		}
		if rerr := ctx.Regroup(); rerr != nil {
			return rerr
		}
		eng = ctx.CollectiveOnce(func() any { return core.NewEngine(m) }).(*core.Engine)
		online = true
	}
}
