package apps

import (
	"errors"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/msg"
)

// assembleTransport builds the transport stack an app run asked for:
// TCP loopback or in-process channels at the base, optionally wrapped in
// a fault injector (spec per msg.ParseFaultPlan), optionally wrapped —
// outermost, so injected corruption is caught — in the CRC32C integrity
// layer.  Integrity is implied by any corrupt/bitflip fault rule.  A nil
// transport (with nil error) means the machine's default suffices.
func assembleTransport(p int, useTCP bool, fault string, integrity bool, topts []msg.Option) (msg.Transport, error) {
	var plan *msg.FaultPlan
	if fault != "" {
		var err error
		plan, err = msg.ParseFaultPlan(fault)
		if err != nil {
			return nil, err
		}
		integrity = integrity || plan.HasKind(msg.FaultCorrupt)
	}
	var base msg.Transport
	if useTCP {
		tcp, err := msg.NewTCPTransport(p, topts...)
		if err != nil {
			return nil, err
		}
		base = tcp
	} else if plan != nil || integrity {
		base = msg.NewChanTransport(p, topts...)
	}
	if plan != nil {
		base = msg.NewFaultTransport(base, plan)
	}
	if integrity {
		base = msg.NewIntegrityTransport(base)
	}
	return base, nil
}

// errGrow is the sentinel an app body returns after checkpointing when
// PollJoin reported a reserved rank waiting: the members leave the body
// at a common iteration boundary, Admit the joiner into epoch e+1, and
// re-enter the body in recovery mode so the checkpoint replays onto the
// grown view.
var errGrow = errors.New("apps: grow onto pending joiner")

// runWithOnlineRecovery drives an app body under the in-process
// elasticity policy — both directions of it.  body declares its arrays
// on eng and runs the iteration loop; online reports whether this
// attempt must replay the last committed checkpoint (Engine.Recover)
// instead of filling initial values.
//
// Scale-in: on a body error with recovery enabled, the survivors
// Regroup onto the next membership epoch, share a fresh engine (the old
// one's arrays are bound to the revoked epoch's numbering), and
// re-enter the body.  The rank excluded by the regroup — and any rank
// that exhausts maxAttempts — returns its error to Machine.Run, which
// treats ErrExcluded as a non-fatal exit.
//
// Scale-out: a reserved rank (machine.WithReserve) parks in AwaitJoin
// until the members admit it; a body that returns errGrow (after
// checkpointing) triggers that admission, and members and joiner alike
// re-enter the body on a fresh engine spanning the grown view.  A
// joiner that is never admitted returns ErrNeverJoined, also a
// non-fatal exit.
//
// memBudget is re-installed (Engine.SetMemBudget) on every fresh engine
// a transition creates, so post-transition redistributions keep the
// run's planner bound; <= 0 means unbounded.  The incoming engine's
// checkpoint I/O options are re-installed the same way, so recovery
// attempts keep writing (and healing) checkpoints under the run's
// striping, redundancy and fault-injection setup.
func runWithOnlineRecovery(ctx *machine.Ctx, m *machine.Machine, eng *core.Engine,
	enabled bool, maxAttempts int, memBudget int64,
	body func(eng *core.Engine, online bool) error) error {
	ckptOpts := eng.CkptOptions()
	freshEngine := func() *core.Engine {
		e := ctx.CollectiveOnce(func() any { return core.NewEngine(m) }).(*core.Engine)
		e.SetMemBudget(memBudget)
		e.SetCkptOptions(ckptOpts)
		return e
	}
	online := false
	if ctx.Reserved() {
		// Joiner arm: park until admitted, then build the grown epoch's
		// engine together with the members (the CollectiveOnce pairs with
		// theirs — both sides enter the new epoch with a fresh collective
		// sequence) and replay the checkpoint like any recovery attempt.
		if err := ctx.AwaitJoin(); err != nil {
			return err
		}
		eng = freshEngine()
		online = true
	}
	var dr *drainError
	for attempt := 0; ; attempt++ {
		err := body(eng, online)
		switch {
		case errors.Is(err, errGrow):
			// The body checkpointed and bailed out at an agreed iteration
			// boundary: admit every pending joiner into epoch e+1.
			if rerr := ctx.Admit(); rerr != nil {
				return rerr
			}
		case errors.As(err, &dr):
			// Straggler mitigation: the body checkpointed and agreed to
			// drain one member.  Every member runs the same transition;
			// the drained rank exits here with ErrDrained (non-fatal to
			// Machine.Run) and the survivors replay the checkpoint onto
			// the shrunken view.
			if rerr := ctx.Drain(dr.viewRank); rerr != nil {
				return rerr
			}
		case err == nil || !enabled:
			return err
		case errors.Is(err, machine.ErrExcluded) || attempt+1 >= maxAttempts:
			return err
		default:
			if rerr := ctx.Regroup(); rerr != nil {
				return rerr
			}
		}
		eng = freshEngine()
		online = true
	}
}
