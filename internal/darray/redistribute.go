package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/redist"
	"repro/internal/trace"
)

// RedistOption configures a single-array redistribution.
type RedistOption func(*redistConfig)

type redistConfig struct {
	noTransfer bool
	memBudget  int64
}

// NoTransfer requests the paper's NOTRANSFER semantics: "only the access
// function ... is changed and the elements of the array are not
// physically moved".  The new storage is zero-filled except for elements
// the processor already owned, which are kept in place.
func NoTransfer() RedistOption {
	return func(c *redistConfig) { c.noTransfer = true }
}

// MemBudget bounds the peak resident wire bytes per rank during the
// redistribution.  The planner decomposes the move into bounded steps
// that fit; if even the finest decomposition exceeds the budget the
// redistribution fails (on every rank symmetrically, before any data
// moves) and the old distribution stays fully readable.  n <= 0 means
// unbounded, which guarantees the single direct alltoallv plan.
func MemBudget(n int64) RedistOption {
	return func(c *redistConfig) { c.memBudget = n }
}

// RedistributeTo collectively re-associates the array with newD and moves
// the data so that every element keeps its value under the new mapping —
// the executable DISTRIBUTE statement of §2.4 for a single array
// (internal/core drives it across connect classes and implements the
// NOTRANSFER attribute by passing the NoTransfer option).
//
// The implementation follows §3.2.2 step by step: each processor
// evaluates the new distribution, determines the new locations of its
// current local data from the symmetric communication schedule, sends it,
// and receives its new local data.  Ghost areas are reallocated (their
// contents become stale and must be refreshed with ExchangeGhosts).
//
// Every processor must pass the same newD object.  Programmer errors (nil
// or domain-mismatched distribution) panic; transport failures during the
// data exchange are returned as errors wrapping the underlying cause.
func (a *Array) RedistributeTo(ctx *machine.Ctx, newD *dist.Distribution, opts ...RedistOption) error {
	if newD == nil {
		panic("darray: Redistribute with nil distribution")
	}
	if !newD.Domain().Equal(a.dom) {
		panic(fmt.Sprintf("darray: %s: new distribution domain %v != array domain %v", a.name, newD.Domain(), a.dom))
	}
	var cfg redistConfig
	for _, o := range opts {
		o(&cfg)
	}
	rank, np := ctx.Rank(), ctx.NP()
	oldD := a.Dist()

	if oldD != nil && oldD.Equal(newD) {
		// No-op redistribution: nothing moves, descriptors unchanged.
		if err := ctx.Barrier(); err != nil {
			return fmt.Errorf("darray: %s: redistribution barrier: %w", a.name, err)
		}
		return nil
	}

	tr := ctx.Tracer()
	prank := ctx.PhysRank() // trace timelines are physical-rank indexed
	sp := tr.BeginSpan(prank, trace.CatDistribute, "DISTRIBUTE "+a.name)
	defer sp.End()

	newLocal := a.takeLocal(rank, newD)

	if oldD == nil {
		// First association: no data to move.
		if err := ctx.Barrier(); err != nil {
			return fmt.Errorf("darray: %s: redistribution barrier: %w", a.name, err)
		}
		a.locals[rank] = newLocal
		a.registerWindow(rank)
		return a.swapDist(ctx, newD)
	}

	oldLocal := a.locals[rank]
	sched, hit := a.cache.Get(oldD, newD, rank, np)
	schedEv := "sched:miss"
	if hit {
		schedEv = "sched:hit"
	}

	switch {
	case !cfg.noTransfer && cfg.memBudget <= 0:
		// No budget: the plan is by definition the single direct
		// alltoallv, so skip plan construction entirely — this keeps the
		// default path byte-, message-, and work-identical to the
		// pre-planner execution (plan enumeration builds every rank's
		// schedule, which matters on redistribute-heavy loops).
		tr.Instant(prank, trace.CatDistribute, schedEv, -1, int64(sched.SendBytes()))
		tr.Instant(prank, trace.CatRedist, "plan:direct", -1, -1)
		for _, t := range sched.Sends {
			if t.Peer == rank {
				copyGrid(newLocal, oldLocal, t.Grid)
			}
		}
		ssp := tr.BeginSpan(prank, trace.CatRedist, "redist:step[0] direct")
		err := a.stepDirect(ctx, sched, oldLocal, newLocal, a.m.Stats())
		ssp.End()
		if err != nil {
			return fmt.Errorf("darray: %s: redistribution step 1/1 (direct): %w", a.name, err)
		}

	case !cfg.noTransfer:
		// Plan the move: decompose it into bounded collective steps that
		// fit the memory budget.  The plan is computed identically on
		// every rank from the distributions alone (and cached), so no
		// coordination is needed.
		psp := tr.BeginSpan(prank, trace.CatRedist, "redist:plan")
		opt := redist.PlanOptions{MemBudget: cfg.memBudget}
		if cm := a.m.Cost(); cm != nil {
			opt.Alpha, opt.Beta = cm.Alpha, cm.Beta
		}
		plan, perr := a.cache.GetPlan(oldD, newD, np, opt)
		psp.End()
		if perr != nil {
			// Every rank fails here symmetrically before any data moves:
			// the old distribution stays published and readable.
			a.retireLocal(rank, newD, newLocal)
			return fmt.Errorf("darray: %s: redistribution planning: %w", a.name, perr)
		}
		tr.Instant(prank, trace.CatDistribute, schedEv, -1, int64(sched.SendBytes()))
		tr.Instant(prank, trace.CatRedist, "plan:"+plan.Kind, -1, plan.PeakBytes)

		// The self-transfer never touches the wire: copy it whole before
		// the stepped exchange (still only into newLocal — two-phase
		// commit semantics are unchanged).
		for _, t := range sched.Sends {
			if t.Peer == rank {
				copyGrid(newLocal, oldLocal, t.Grid)
			}
		}

		st := a.m.Stats()
		for k := range plan.Steps {
			step := &plan.Steps[k]
			ssp := tr.BeginSpan(prank, trace.CatRedist, fmt.Sprintf("redist:step[%d] %s", k, step.Kind))
			sub := plan.StepSchedule(sched, k)
			var err error
			switch step.Kind {
			case redist.StepDirect:
				err = a.stepDirect(ctx, sub, oldLocal, newLocal, st)
			case redist.StepPairwise:
				err = a.stepPairwise(ctx, sub, oldLocal, newLocal, st)
			case redist.StepAllgather:
				err = a.stepAllgather(ctx, oldD, sub, oldLocal, newLocal, st)
			default:
				err = fmt.Errorf("unknown step kind %v", step.Kind)
			}
			ssp.End()
			if err != nil {
				return fmt.Errorf("darray: %s: redistribution step %d/%d (%s): %w",
					a.name, k+1, len(plan.Steps), step.Kind, err)
			}
		}

	default:
		// NOTRANSFER: keep whatever was already in place.
		tr.Instant(prank, trace.CatDistribute, schedEv, -1, 0)
		if keep := sched.LocalKeep; !keep.Empty() {
			copyGrid(newLocal, oldLocal, keep)
		}
		// Even without data motion all processors must agree the
		// descriptor swap happened; the barrier below provides that.
	}

	// Two-phase commit: nothing is published until the commit barrier
	// proves every processor received all its incoming spans.  A rank
	// whose exchange failed returned above without entering the barrier,
	// so under a deadline/retry CommConfig the surviving ranks' barrier
	// fails too and no rank commits: a failed DISTRIBUTE leaves the array
	// readable with its old Local and old distribution everywhere.
	if err := ctx.Barrier(); err != nil {
		a.retireLocal(rank, newD, newLocal)
		return fmt.Errorf("darray: %s: redistribution commit: %w", a.name, err)
	}
	a.locals[rank] = newLocal
	a.registerWindow(rank)
	a.retireLocal(rank, oldD, oldLocal)
	return a.swapDist(ctx, newD)
}

// swapDist publishes the new descriptor; the surrounding barriers give
// every processor a consistent view.  It runs only after the commit
// barrier, so every rank's data is already in place; a failure of its own
// barrier is reported but cannot un-publish the descriptor.
func (a *Array) swapDist(ctx *machine.Ctx, newD *dist.Distribution) error {
	if ctx.Rank() == 0 {
		a.mu.Lock()
		a.dst = newD
		a.epoc++
		a.mu.Unlock()
	}
	if err := ctx.Barrier(); err != nil {
		return fmt.Errorf("darray: %s: distribution swap barrier: %w", a.name, err)
	}
	return nil
}

// packGrid serializes the values at the grid's points in canonical order.
//
// This is the per-point reference implementation of the packing order;
// the hot paths use Local.appendPacked (fused span pack+encode), and the
// differential tests in pack_test.go hold the two to byte equality.
func packGrid(l *Local, g index.Grid) []float64 {
	out := make([]float64, 0, g.Count())
	g.ForEach(func(p index.Point) bool {
		out = append(out, l.data[l.Offset(p)])
		return true
	})
	return out
}

// unpackGrid stores values (canonical order) at the grid's points — the
// per-point reference counterpart of Local.unpackWire.
func unpackGrid(l *Local, g index.Grid, vals []float64) {
	i := 0
	g.ForEach(func(p index.Point) bool {
		l.data[l.Offset(p)] = vals[i]
		i++
		return true
	})
	if i != len(vals) {
		panic(fmt.Sprintf("darray: unpack count mismatch: %d points, %d values", i, len(vals)))
	}
}

// stepDirect executes one monolithic alltoallv over the step's schedule:
// every remote send is packed into its peer's recycled wire buffer before
// the exchange, and every received payload stays resident until unpacked
// — the legacy (maximal-peak) execution, kept byte- and message-identical
// for the unbounded plan.  Wire residency is reported to the Stats gauge
// so the planner's peak estimate is checkable against measurement.
func (a *Array) stepDirect(ctx *machine.Ctx, sched *redist.Schedule, oldLocal, newLocal *Local, st *msg.Stats) error {
	rank, np := ctx.Rank(), ctx.NP()
	// Stats slices are physical-rank indexed (sized to the transport);
	// after a regroup/join the view rank diverges from the physical one,
	// and charging the view rank would misattribute the gauge to another
	// (possibly dead) rank's slot.
	prank := ctx.PhysRank()
	bufs := &a.bufs[rank]
	send, recvFrom := bufs.alltoallScratch(np)
	var packed int64
	for _, t := range sched.Sends {
		if t.Peer == rank {
			continue
		}
		buf := oldLocal.appendPacked(bufs.sendBuf(np, t.Peer, t.Count), t.Grid)
		bufs.send[t.Peer] = buf
		send[t.Peer] = buf
		packed += int64(len(buf))
	}
	for _, t := range sched.Recvs {
		if t.Peer != rank {
			recvFrom[t.Peer] = true
		}
	}
	st.WireAcquire(prank, packed)
	recvd, err := ctx.Comm().AlltoallvSched(send, recvFrom)
	if err != nil {
		st.WireRelease(prank, packed)
		return fmt.Errorf("exchange failed: %w", err)
	}
	var rb int64
	for _, t := range sched.Recvs {
		if t.Peer != rank && recvd[t.Peer] != nil {
			rb += int64(len(recvd[t.Peer]))
		}
	}
	st.WireAcquire(prank, rb)
	defer st.WireRelease(prank, packed+rb)
	for _, t := range sched.Recvs {
		if t.Peer == rank {
			continue
		}
		buf := recvd[t.Peer]
		if buf == nil {
			return fmt.Errorf("missing payload from %d", t.Peer)
		}
		newLocal.unpackWire(t.Grid, buf)
	}
	return nil
}

// stepPairwise executes the step's schedule as staggered ring rounds with
// just-in-time buffers: each round packs exactly one peer's spans into
// one recycled buffer immediately before the send, and unpacks each
// received payload immediately on arrival — at most one outgoing and one
// incoming buffer resident per round, which is what bounds the peak.
// Messages and bytes on the wire are identical to stepDirect; only
// residency differs.
func (a *Array) stepPairwise(ctx *machine.Ctx, sched *redist.Schedule, oldLocal, newLocal *Local, st *msg.Stats) error {
	rank, np := ctx.Rank(), ctx.NP()
	prank := ctx.PhysRank() // stats gauge slots are physical-rank indexed
	bufs := &a.bufs[rank]
	_, recvFrom := bufs.alltoallScratch(np)
	sendT := make([]*redist.Transfer, np)
	recvT := make([]*redist.Transfer, np)
	for i := range sched.Sends {
		if t := &sched.Sends[i]; t.Peer != rank {
			sendT[t.Peer] = t
		}
	}
	for i := range sched.Recvs {
		if t := &sched.Recvs[i]; t.Peer != rank {
			recvT[t.Peer] = t
			recvFrom[t.Peer] = true
		}
	}
	var resident int64 // bytes of the round's packed send still accounted
	pack := func(to int) ([]byte, error) {
		if resident > 0 {
			// The previous round's send buffer is reusable as soon as its
			// Send returned (see msg.Endpoint); packing over it now ends
			// its residency.
			st.WireRelease(prank, resident)
			resident = 0
		}
		t := sendT[to]
		if t == nil {
			return nil, nil
		}
		buf := oldLocal.appendPacked(bufs.streamBuf(t.Count), t.Grid)
		bufs.stream = buf
		resident = int64(len(buf))
		st.WireAcquire(prank, resident)
		return buf, nil
	}
	consume := func(from int, data []byte) error {
		t := recvT[from]
		if t == nil {
			return fmt.Errorf("unexpected payload from %d", from)
		}
		n := int64(len(data))
		st.WireAcquire(prank, n)
		newLocal.unpackWire(t.Grid, data)
		st.WireRelease(prank, n)
		return nil
	}
	err := ctx.Comm().AlltoallvStream(pack, recvFrom, consume)
	if resident > 0 {
		st.WireRelease(prank, resident)
	}
	if err != nil {
		return fmt.Errorf("pairwise exchange failed: %w", err)
	}
	return nil
}

// stepAllgather publishes every primary rank's whole old-distribution
// part and selects this rank's incoming spans locally from the gathered
// frame — 2(np-1) messages total, peak memory on the order of the whole
// array (the planner only picks it when that fits the budget and beats
// the alternatives on message count).
func (a *Array) stepAllgather(ctx *machine.Ctx, oldD *dist.Distribution, sched *redist.Schedule, oldLocal, newLocal *Local, st *msg.Stats) error {
	rank, np := ctx.Rank(), ctx.NP()
	prank := ctx.PhysRank() // stats gauge slots are physical-rank indexed
	bufs := &a.bufs[rank]
	var mine []byte
	myGrid := oldD.LocalGrid(rank)
	if oldD.IsPrimaryRank(rank) && !myGrid.Empty() {
		mine = oldLocal.appendPacked(bufs.streamBuf(myGrid.Count()), myGrid)
		bufs.stream = mine
	}
	own := int64(len(mine))
	st.WireAcquire(prank, own)
	parts, err := ctx.Comm().Allgather(mine)
	if err != nil {
		st.WireRelease(prank, own)
		return fmt.Errorf("allgather failed: %w", err)
	}
	frame := int64(4 * np)
	for _, p := range parts {
		frame += int64(len(p))
	}
	st.WireAcquire(prank, frame)
	st.WireRelease(prank, own)
	defer st.WireRelease(prank, frame)
	for _, t := range sched.Recvs {
		if t.Peer == rank {
			continue
		}
		if err := newLocal.unpackSelect(t.Grid, oldD.LocalGrid(t.Peer), parts[t.Peer]); err != nil {
			return fmt.Errorf("select from %d: %w", t.Peer, err)
		}
	}
	return nil
}

// ScheduleCacheStats returns (hits, misses) of the redistribution
// schedule cache — phase-alternating programs should show hits after the
// first iteration.
func (a *Array) ScheduleCacheStats() (hits, misses int) {
	return a.cache.Stats()
}
