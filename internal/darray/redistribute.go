package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/trace"
)

// RedistOption configures a single-array redistribution.
type RedistOption func(*redistConfig)

type redistConfig struct {
	noTransfer bool
}

// NoTransfer requests the paper's NOTRANSFER semantics: "only the access
// function ... is changed and the elements of the array are not
// physically moved".  The new storage is zero-filled except for elements
// the processor already owned, which are kept in place.
func NoTransfer() RedistOption {
	return func(c *redistConfig) { c.noTransfer = true }
}

// RedistributeTo collectively re-associates the array with newD and moves
// the data so that every element keeps its value under the new mapping —
// the executable DISTRIBUTE statement of §2.4 for a single array
// (internal/core drives it across connect classes and implements the
// NOTRANSFER attribute by passing the NoTransfer option).
//
// The implementation follows §3.2.2 step by step: each processor
// evaluates the new distribution, determines the new locations of its
// current local data from the symmetric communication schedule, sends it,
// and receives its new local data.  Ghost areas are reallocated (their
// contents become stale and must be refreshed with ExchangeGhosts).
//
// Every processor must pass the same newD object.  Programmer errors (nil
// or domain-mismatched distribution) panic; transport failures during the
// data exchange are returned as errors wrapping the underlying cause.
func (a *Array) RedistributeTo(ctx *machine.Ctx, newD *dist.Distribution, opts ...RedistOption) error {
	if newD == nil {
		panic("darray: Redistribute with nil distribution")
	}
	if !newD.Domain().Equal(a.dom) {
		panic(fmt.Sprintf("darray: %s: new distribution domain %v != array domain %v", a.name, newD.Domain(), a.dom))
	}
	var cfg redistConfig
	for _, o := range opts {
		o(&cfg)
	}
	rank, np := ctx.Rank(), ctx.NP()
	oldD := a.Dist()

	if oldD != nil && oldD.Equal(newD) {
		// No-op redistribution: nothing moves, descriptors unchanged.
		if err := ctx.Barrier(); err != nil {
			return fmt.Errorf("darray: %s: redistribution barrier: %w", a.name, err)
		}
		return nil
	}

	tr := ctx.Tracer()
	sp := tr.BeginSpan(rank, trace.CatDistribute, "DISTRIBUTE "+a.name)
	defer sp.End()

	newLocal := a.takeLocal(rank, newD)

	if oldD == nil {
		// First association: no data to move.
		if err := ctx.Barrier(); err != nil {
			return fmt.Errorf("darray: %s: redistribution barrier: %w", a.name, err)
		}
		a.locals[rank] = newLocal
		a.registerWindow(rank)
		return a.swapDist(ctx, newD)
	}

	oldLocal := a.locals[rank]
	sched, hit := a.cache.Get(oldD, newD, rank, np)
	schedEv := "sched:miss"
	if hit {
		schedEv = "sched:hit"
	}

	if !cfg.noTransfer {
		// Pack each remote transfer straight into its peer's recycled
		// wire buffer (fused pack+encode, span loops); steady-state
		// phase alternation reuses the same buffers every iteration.
		bufs := &a.bufs[rank]
		send, recvFrom := bufs.alltoallScratch(np)
		var packed int64
		for _, t := range sched.Sends {
			if t.Peer == rank {
				// local move: straight copy old storage -> new storage
				copyGrid(newLocal, oldLocal, t.Grid)
				continue
			}
			buf := oldLocal.appendPacked(bufs.sendBuf(np, t.Peer, t.Count), t.Grid)
			bufs.send[t.Peer] = buf
			send[t.Peer] = buf
			packed += int64(len(buf))
		}
		for _, t := range sched.Recvs {
			if t.Peer != rank {
				recvFrom[t.Peer] = true
			}
		}
		tr.Instant(rank, trace.CatDistribute, schedEv, -1, packed)
		recvd, err := ctx.Comm().AlltoallvSched(send, recvFrom)
		if err != nil {
			return fmt.Errorf("darray: %s: redistribution exchange failed: %w", a.name, err)
		}
		for _, t := range sched.Recvs {
			if t.Peer == rank {
				continue
			}
			buf := recvd[t.Peer]
			if buf == nil {
				return fmt.Errorf("darray: %s: missing redistribution payload from %d", a.name, t.Peer)
			}
			newLocal.unpackWire(t.Grid, buf)
		}
	} else {
		// NOTRANSFER: keep whatever was already in place.
		tr.Instant(rank, trace.CatDistribute, schedEv, -1, 0)
		if keep := sched.LocalKeep; !keep.Empty() {
			copyGrid(newLocal, oldLocal, keep)
		}
		// Even without data motion all processors must agree the
		// descriptor swap happened; the barrier below provides that.
	}

	// Two-phase commit: nothing is published until the commit barrier
	// proves every processor received all its incoming spans.  A rank
	// whose exchange failed returned above without entering the barrier,
	// so under a deadline/retry CommConfig the surviving ranks' barrier
	// fails too and no rank commits: a failed DISTRIBUTE leaves the array
	// readable with its old Local and old distribution everywhere.
	if err := ctx.Barrier(); err != nil {
		a.retireLocal(rank, newD, newLocal)
		return fmt.Errorf("darray: %s: redistribution commit: %w", a.name, err)
	}
	a.locals[rank] = newLocal
	a.registerWindow(rank)
	a.retireLocal(rank, oldD, oldLocal)
	return a.swapDist(ctx, newD)
}

// swapDist publishes the new descriptor; the surrounding barriers give
// every processor a consistent view.  It runs only after the commit
// barrier, so every rank's data is already in place; a failure of its own
// barrier is reported but cannot un-publish the descriptor.
func (a *Array) swapDist(ctx *machine.Ctx, newD *dist.Distribution) error {
	if ctx.Rank() == 0 {
		a.mu.Lock()
		a.dst = newD
		a.epoc++
		a.mu.Unlock()
	}
	if err := ctx.Barrier(); err != nil {
		return fmt.Errorf("darray: %s: distribution swap barrier: %w", a.name, err)
	}
	return nil
}

// packGrid serializes the values at the grid's points in canonical order.
//
// This is the per-point reference implementation of the packing order;
// the hot paths use Local.appendPacked (fused span pack+encode), and the
// differential tests in pack_test.go hold the two to byte equality.
func packGrid(l *Local, g index.Grid) []float64 {
	out := make([]float64, 0, g.Count())
	g.ForEach(func(p index.Point) bool {
		out = append(out, l.data[l.Offset(p)])
		return true
	})
	return out
}

// unpackGrid stores values (canonical order) at the grid's points — the
// per-point reference counterpart of Local.unpackWire.
func unpackGrid(l *Local, g index.Grid, vals []float64) {
	i := 0
	g.ForEach(func(p index.Point) bool {
		l.data[l.Offset(p)] = vals[i]
		i++
		return true
	})
	if i != len(vals) {
		panic(fmt.Sprintf("darray: unpack count mismatch: %d points, %d values", i, len(vals)))
	}
}

// ScheduleCacheStats returns (hits, misses) of the redistribution
// schedule cache — phase-alternating programs should show hits after the
// first iteration.
func (a *Array) ScheduleCacheStats() (hits, misses int) {
	return a.cache.Stats()
}
