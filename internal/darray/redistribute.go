package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// Redistribute collectively re-associates the array with newD and, when
// transfer is true, moves the data so that every element keeps its value
// under the new mapping — the executable DISTRIBUTE statement of §2.4 for
// a single array (internal/core drives it across connect classes and
// implements the NOTRANSFER attribute by passing transfer=false).
//
// The implementation follows §3.2.2 step by step: each processor
// evaluates the new distribution, determines the new locations of its
// current local data from the symmetric communication schedule, sends it,
// and receives its new local data.  Ghost areas are reallocated (their
// contents become stale and must be refreshed with ExchangeGhosts).
//
// Every processor must pass the same newD object.  Passing transfer=false
// leaves the new storage zero-filled except for elements the processor
// already owned (the paper's NOTRANSFER semantics: "only the access
// function ... is changed and the elements of the array are not
// physically moved" — data that happens to remain in place is kept).
func (a *Array) Redistribute(ctx *machine.Ctx, newD *dist.Distribution, transfer bool) {
	if newD == nil {
		panic("darray: Redistribute with nil distribution")
	}
	if !newD.Domain().Equal(a.dom) {
		panic(fmt.Sprintf("darray: %s: new distribution domain %v != array domain %v", a.name, newD.Domain(), a.dom))
	}
	rank, np := ctx.Rank(), ctx.NP()
	oldD := a.Dist()

	if oldD != nil && oldD.Equal(newD) {
		// No-op redistribution: nothing moves, descriptors unchanged.
		ctx.Barrier()
		return
	}

	newLocal := a.allocLocal(rank, newD)

	if oldD == nil {
		// First association: no data to move.
		a.locals[rank] = newLocal
		ctx.Barrier()
		a.swapDist(ctx, newD)
		return
	}

	oldLocal := a.locals[rank]
	sched := a.cache.Get(oldD, newD, rank, np)

	if transfer {
		send := make([][]byte, np)
		recvFrom := make([]bool, np)
		for _, tr := range sched.Sends {
			if tr.Peer == rank {
				// local move: straight copy old storage -> new storage
				tr.Grid.ForEach(func(p index.Point) bool {
					newLocal.data[newLocal.Offset(p)] = oldLocal.data[oldLocal.Offset(p)]
					return true
				})
				continue
			}
			send[tr.Peer] = msg.EncodeFloat64s(packGrid(oldLocal, tr.Grid))
		}
		for _, tr := range sched.Recvs {
			if tr.Peer != rank {
				recvFrom[tr.Peer] = true
			}
		}
		recvd, err := ctx.Comm().AlltoallvSched(send, recvFrom)
		if err != nil {
			panic(fmt.Sprintf("darray: %s: redistribution exchange failed: %v", a.name, err))
		}
		for _, tr := range sched.Recvs {
			if tr.Peer == rank {
				continue
			}
			buf := recvd[tr.Peer]
			if buf == nil {
				panic(fmt.Sprintf("darray: %s: missing redistribution payload from %d", a.name, tr.Peer))
			}
			unpackGrid(newLocal, tr.Grid, msg.DecodeFloat64s(buf))
		}
	} else {
		// NOTRANSFER: keep whatever was already in place.
		if keep := sched.LocalKeep; !keep.Empty() {
			keep.ForEach(func(p index.Point) bool {
				newLocal.data[newLocal.Offset(p)] = oldLocal.data[oldLocal.Offset(p)]
				return true
			})
		}
		// Even without data motion all processors must agree the
		// descriptor swap happened; the barrier below provides that.
	}

	a.locals[rank] = newLocal
	ctx.Barrier()
	a.swapDist(ctx, newD)
}

// swapDist publishes the new descriptor; the surrounding barriers give
// every processor a consistent view.
func (a *Array) swapDist(ctx *machine.Ctx, newD *dist.Distribution) {
	if ctx.Rank() == 0 {
		a.mu.Lock()
		a.dst = newD
		a.epoc++
		a.mu.Unlock()
	}
	ctx.Barrier()
}

// packGrid serializes the values at the grid's points in canonical order.
func packGrid(l *Local, g index.Grid) []float64 {
	out := make([]float64, 0, g.Count())
	g.ForEach(func(p index.Point) bool {
		out = append(out, l.data[l.Offset(p)])
		return true
	})
	return out
}

// unpackGrid stores values (canonical order) at the grid's points.
func unpackGrid(l *Local, g index.Grid, vals []float64) {
	i := 0
	g.ForEach(func(p index.Point) bool {
		l.data[l.Offset(p)] = vals[i]
		i++
		return true
	})
	if i != len(vals) {
		panic(fmt.Sprintf("darray: unpack count mismatch: %d points, %d values", i, len(vals)))
	}
}

// ScheduleCacheStats returns (hits, misses) of the redistribution
// schedule cache — phase-alternating programs should show hits after the
// first iteration.
func (a *Array) ScheduleCacheStats() (hits, misses int) {
	return a.cache.Stats()
}
