package darray

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
)

// Failure-injection tests: the runtime must reject misuse loudly rather
// than corrupt distributed state.

func expectRunPanic(t *testing.T, np int, frag string, body func(ctx *machine.Ctx) error) {
	t.Helper()
	m := machine.New(np)
	defer m.Close()
	err := m.Run(body)
	if err == nil || !strings.Contains(err.Error(), frag) {
		t.Fatalf("expected failure containing %q, got %v", frag, err)
	}
}

func TestGhostOnCyclicRejected(t *testing.T) {
	expectRunPanic(t, 2, "ghost areas need a contiguous", func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.CyclicDim(1)), index.Dim(8), tg)
		New(ctx, "A", index.Dim(8), d, WithGhost(1))
		return nil
	})
}

func TestGhostWidthCountMismatch(t *testing.T) {
	expectRunPanic(t, 2, "ghost widths", func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), index.Dim(8, 8), tg)
		New(ctx, "A", index.Dim(8, 8), d, WithGhost(1)) // rank-2 array, 1 width
		return nil
	})
}

func TestRedistributeDomainMismatch(t *testing.T) {
	expectRunPanic(t, 2, "domain", func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(8), tg)
		a := New(ctx, "A", index.Dim(8), d)
		wrong := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(9), tg)
		return a.RedistributeTo(ctx, wrong)
	})
}

func TestRedistributeNilDistribution(t *testing.T) {
	expectRunPanic(t, 2, "nil distribution", func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(8), tg)
		a := New(ctx, "A", index.Dim(8), d)
		return a.RedistributeTo(ctx, nil)
	})
}

func TestOffsetOutsideAllocationPanics(t *testing.T) {
	expectRunPanic(t, 2, "outside local allocation", func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(8), tg)
		a := New(ctx, "A", index.Dim(8), d)
		l := a.Local(ctx)
		// element owned by the *other* rank, no ghosts allocated
		if ctx.Rank() == 0 {
			l.At(index.Point{8})
		} else {
			l.At(index.Point{1})
		}
		return nil
	})
}

func TestScatterLengthMismatch(t *testing.T) {
	expectRunPanic(t, 2, "scatter data length", func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(8), tg)
		a := New(ctx, "A", index.Dim(8), d)
		var data []float64
		if ctx.Rank() == 0 {
			data = make([]float64, 3) // wrong length
		}
		return a.ScatterFrom(ctx, 0, data)
	})
}

func TestAbortUnblocksPeers(t *testing.T) {
	// One rank panics mid-collective; the other must unwind via the
	// transport shutdown instead of deadlocking (MPI-abort semantics).
	m := machine.New(2)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(8), tg)
		a := New(ctx, "A", index.Dim(8), d)
		if ctx.Rank() == 1 {
			panic("injected failure")
		}
		// rank 0 blocks in the collective until the abort propagates
		return a.RedistributeTo(ctx, dist.MustNew(dist.NewType(dist.CyclicDim(1)), index.Dim(8), tg))
	})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v", err)
	}
}
