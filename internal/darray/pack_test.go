package darray

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// packCases are distribution pairs whose per-dimension intersections
// exercise every addressing shape the span pack paths must handle:
// contiguous blocks, stride-P cyclic runs, multi-run cyclic(k) sets
// (non-simple local dimensions), shifted irregular blocks, and 2-D
// transposes.
var packCases = []struct {
	name     string
	dom      index.Domain
	from, to []dist.DimSpec
}{
	{"blockToCyclic1", index.Dim(64), []dist.DimSpec{dist.BlockDim()}, []dist.DimSpec{dist.CyclicDim(1)}},
	{"blockToCyclic3", index.Dim(61), []dist.DimSpec{dist.BlockDim()}, []dist.DimSpec{dist.CyclicDim(3)}},
	{"cyclic3ToBlock", index.Dim(61), []dist.DimSpec{dist.CyclicDim(3)}, []dist.DimSpec{dist.BlockDim()}},
	{"cyclic1ToCyclic4", index.Dim(64), []dist.DimSpec{dist.CyclicDim(1)}, []dist.DimSpec{dist.CyclicDim(4)}},
	{"bblockShift", index.Dim(64), []dist.DimSpec{dist.BBlockDim(10, 20, 30, 64)}, []dist.DimSpec{dist.BBlockDim(25, 40, 50, 64)}},
	{"colsToRows", index.Dim(12, 16), []dist.DimSpec{dist.ElidedDim(), dist.BlockDim()}, []dist.DimSpec{dist.BlockDim(), dist.ElidedDim()}},
	{"block2dToCyclicCols", index.Dim(12, 16), []dist.DimSpec{dist.BlockDim(), dist.ElidedDim()}, []dist.DimSpec{dist.CyclicDim(2), dist.ElidedDim()}},
}

// TestPackUnpackMatchesPerPointReference holds the span-based wire path
// (appendPacked -> unpackWire) to exact equivalence with the per-point
// reference path (packGrid -> EncodeFloat64s -> DecodeFloat64s ->
// unpackGrid) on every transfer grid of each distribution pair,
// including the strided and non-contiguous local sets cyclic(k)
// produces.
func TestPackUnpackMatchesPerPointReference(t *testing.T) {
	const np = 4
	for _, tc := range packCases {
		t.Run(tc.name, func(t *testing.T) {
			run(t, np, func(ctx *machine.Ctx) error {
				rank := ctx.Rank()
				tg := ctx.Machine().ProcsDim("P", np).Whole()
				fromD := dist.MustNew(dist.NewType(tc.from...), tc.dom, tg)
				toD := dist.MustNew(dist.NewType(tc.to...), tc.dom, tg)
				val := func(p index.Point) float64 {
					v := 0.0
					for k, i := range p {
						v = v*1000 + float64(i+7*k)
					}
					return v
				}
				src := New(ctx, "S"+tc.name, tc.dom, fromD)
				src.FillFunc(ctx, val)
				// Two identically distributed destinations: one written
				// through the wire path, one through the reference path.
				gotA := New(ctx, "W"+tc.name, tc.dom, toD)
				refA := New(ctx, "R"+tc.name, tc.dom, toD)
				ctx.Barrier() // all sources filled; reads below are cross-rank
				got, ref := gotA.Local(ctx), refA.Local(ctx)
				covered := 0
				for peer := 0; peer < np; peer++ {
					g := fromD.LocalGrid(peer).Intersect(toD.LocalGrid(rank))
					if g.Empty() {
						continue
					}
					covered += g.Count()
					sl := src.locals[peer] // shared handle: read-only after the barrier
					wire := sl.appendPacked(nil, g)
					vals := packGrid(sl, g)
					if want := msg.EncodeFloat64s(vals); !bytes.Equal(wire, want) {
						t.Errorf("%s: rank %d <- %d: appendPacked differs from per-point encoding on %v", tc.name, rank, peer, g)
					}
					got.unpackWire(g, wire)
					unpackGrid(ref, g, msg.DecodeFloat64s(wire))
				}
				if covered != got.Count() {
					t.Errorf("%s: rank %d: transfer grids cover %d of %d owned points", tc.name, rank, covered, got.Count())
				}
				got.ForEachOwned(func(p index.Point, v *float64) {
					if want := val(p); *v != want {
						t.Errorf("%s: rank %d: wire path [%v] = %v, want %v", tc.name, rank, p, *v, want)
					}
					if rv := ref.At(p); *v != rv {
						t.Errorf("%s: rank %d: wire path [%v] = %v, reference path %v", tc.name, rank, p, *v, rv)
					}
				})
				return nil
			})
		})
	}
}

// TestCopyGridMatchesReference checks the local-move span copy against
// the reference pack/unpack pair on the same transfer grids (rank's own
// intersection — exactly what RedistributeTo's Peer==rank branch uses).
func TestCopyGridMatchesReference(t *testing.T) {
	const np = 4
	for _, tc := range packCases {
		t.Run(tc.name, func(t *testing.T) {
			run(t, np, func(ctx *machine.Ctx) error {
				rank := ctx.Rank()
				tg := ctx.Machine().ProcsDim("P", np).Whole()
				fromD := dist.MustNew(dist.NewType(tc.from...), tc.dom, tg)
				toD := dist.MustNew(dist.NewType(tc.to...), tc.dom, tg)
				src := New(ctx, "cs"+tc.name, tc.dom, fromD)
				src.FillFunc(ctx, func(p index.Point) float64 {
					v := 0.0
					for _, i := range p {
						v = v*500 + float64(i)
					}
					return v
				})
				gotA := New(ctx, "cw"+tc.name, tc.dom, toD)
				refA := New(ctx, "cr"+tc.name, tc.dom, toD)
				g := fromD.LocalGrid(rank).Intersect(toD.LocalGrid(rank))
				if !g.Empty() {
					sl := src.Local(ctx)
					copyGrid(gotA.Local(ctx), sl, g)
					unpackGrid(refA.Local(ctx), g, packGrid(sl, g))
					got, ref := gotA.Local(ctx), refA.Local(ctx)
					g.ForEach(func(p index.Point) bool {
						if got.At(p) != ref.At(p) {
							t.Errorf("%s: rank %d: copyGrid[%v] = %v, reference %v", tc.name, rank, p, got.At(p), ref.At(p))
							return false
						}
						return true
					})
				}
				return nil
			})
		})
	}
}

// TestPackAllocsPerRun pins the steady-state allocation behaviour of the
// span pack/unpack pair: with a recycled buffer the cost is a small
// constant (the run iterator's point/position slices and closure), not a
// function of the element count — the property that makes E3/E4
// allocation counts flat in N.
func TestPackAllocsPerRun(t *testing.T) {
	m := machine.New(1)
	defer m.Close()
	if err := m.Run(func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 1).Whole()
		dom := index.Dim(64, 64)
		d := dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), dom, tg)
		a := New(ctx, "alloc", dom, d)
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0] + 100*p[1]) })
		l := a.Local(ctx)
		// A strided, multi-run subgrid: 21×30 elements, no contiguous
		// fast path along either dimension boundary.
		g := index.Grid{Dims: []index.RunSet{
			index.NewRunSet(index.NewRun(1, 31, 2), index.NewRun(40, 48, 2)),
			index.NewRunSet(index.NewRun(2, 60, 2)),
		}}
		buf := l.appendPacked(nil, g)
		const iterOverhead = 8 // run-iterator scratch + closure; size-independent
		if n := testing.AllocsPerRun(100, func() {
			buf = l.appendPacked(buf[:0], g)
		}); n > iterOverhead {
			t.Errorf("appendPacked with recycled buffer: %v allocs/run for %d elements, want <= %d", n, g.Count(), iterOverhead)
		}
		if n := testing.AllocsPerRun(100, func() {
			l.unpackWire(g, buf)
		}); n > iterOverhead {
			t.Errorf("unpackWire: %v allocs/run for %d elements, want <= %d", n, g.Count(), iterOverhead)
		}
		if n := testing.AllocsPerRun(100, func() {
			copyGrid(l, l, g)
		}); n > iterOverhead {
			t.Errorf("copyGrid: %v allocs/run for %d elements, want <= %d", n, g.Count(), iterOverhead)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestGhostExchangeErrorOnClosedTransport checks the error-returning
// ghost API: a transport failure surfaces as a wrapped msg.ErrClosed
// from ExchangeAllGhosts instead of a panic.
func TestGhostExchangeErrorOnClosedTransport(t *testing.T) {
	tp := msg.NewChanTransport(2)
	m := machine.New(2, machine.WithTransport(tp))
	defer m.Close()
	errs := make([]error, 2)
	if err := m.Run(func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(16), tg)
		a := New(ctx, "G", index.Dim(16), d, WithGhost(1))
		a.Fill(ctx, 1)
		ctx.Barrier()
		if ctx.Rank() == 0 {
			tp.Close()
		}
		errs[ctx.Rank()] = a.ExchangeAllGhosts(ctx)
		return nil
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for rank, err := range errs {
		if err == nil {
			t.Errorf("rank %d: ExchangeAllGhosts = nil, want wrapped msg.ErrClosed", rank)
			continue
		}
		if !errors.Is(err, msg.ErrClosed) {
			t.Errorf("rank %d: ExchangeAllGhosts = %v, want errors.Is msg.ErrClosed", rank, err)
		}
	}
}
