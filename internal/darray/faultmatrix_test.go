package darray

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// TestFaultMatrix replays each collective pattern of the runtime —
// barrier, bcast, gather, alltoallv, ghost exchange, redistribute — under
// an injected send error, a delivery delay, and a dropped frame, on both
// transports.  Every cell must either complete after retry (send errors
// and delays heal under the deadline/retry CommConfig) or return a wrapped
// error naming the operation and a rank (drops are unrecoverable: only the
// deadline unblocks the receiver).  Nothing may panic, and a failed
// redistribute must leave the array readable with its old distribution on
// every rank.
func TestFaultMatrix(t *testing.T) {
	faults := []struct {
		name      string
		rule      msg.FaultRule
		expectErr bool
	}{
		{"senderr", msg.FaultRule{Kind: msg.FaultSendErr, Rank: faultRank, Peer: -1, Count: 1}, false},
		{"delay", msg.FaultRule{Kind: msg.FaultRecvDelay, Rank: faultRank, Peer: -1, Count: 1, Delay: 40 * time.Millisecond}, false},
		{"drop", msg.FaultRule{Kind: msg.FaultDrop, Rank: faultRank, Peer: -1, Count: 1}, true},
	}
	ops := []struct {
		name string
		frag string // fragment every failure error must carry
	}{
		{"barrier", "barrier"},
		{"bcast", "bcast"},
		{"gather", "gather"},
		{"alltoallv", "alltoallv"},
		{"ghost", "ghost"},
		{"redistribute", "redistribution"},
	}
	for _, transport := range []string{"chan", "tcp"} {
		for _, op := range ops {
			for _, fc := range faults {
				t.Run(transport+"/"+op.name+"/"+fc.name, func(t *testing.T) {
					runFaultCase(t, transport, op.name, op.frag, fc.rule, fc.expectErr)
				})
			}
		}
	}
}

const faultRank = 1 // the rank whose sends/receives carry the injected fault

func runFaultCase(t *testing.T, transport, opName, opFrag string, rule msg.FaultRule, expectErr bool) {
	const np = 4
	plan := &msg.FaultPlan{StartDisarmed: true, Rules: []msg.FaultRule{rule}}
	var base msg.Transport
	if transport == "tcp" {
		tcp, err := msg.NewTCPTransport(np)
		if err != nil {
			t.Fatal(err)
		}
		base = tcp
	} else {
		base = msg.NewChanTransport(np)
	}
	ft := msg.NewFaultTransport(base, plan)
	cfg := msg.CommConfig{Timeout: 20 * time.Millisecond, Retries: 3, Backoff: time.Millisecond}
	m := machine.New(np, machine.WithTransport(ft), machine.WithCommConfig(cfg))
	defer m.Close()

	errs := make([]error, np)
	if err := m.Run(func(ctx *machine.Ctx) error {
		rank := ctx.Rank()
		// Setup runs with injection disarmed, so the fault schedule counts
		// only the phase under test.
		tg := ctx.Machine().ProcsDim("P", np).Whole()
		dom := index.Dim(16)
		blk := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		cyc := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg)
		val := func(p index.Point) float64 { return float64(p[0] * 3) }
		var a *Array
		switch opName {
		case "ghost":
			a = New(ctx, "A", dom, blk, WithGhost(1))
		case "redistribute":
			a = New(ctx, "A", dom, blk)
		}
		if a != nil {
			a.FillFunc(ctx, val)
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		// All of a rank's own barrier sends precede its Barrier() return,
		// so arming here makes faultRank's next matching operation the
		// first of the op under test.
		if rank == faultRank {
			ft.Arm(faultRank)
		}
		var opErr error
		switch opName {
		case "barrier":
			opErr = ctx.Barrier()
		case "bcast":
			var buf []byte
			if rank == faultRank {
				buf = msg.EncodeInts([]int{4242})
			}
			out, err := ctx.Comm().Bcast(faultRank, buf)
			opErr = err
			if err == nil {
				if got := msg.DecodeInts(out)[0]; got != 4242 {
					t.Errorf("rank %d: bcast got %d, want 4242", rank, got)
				}
			}
		case "gather":
			parts, err := ctx.Comm().Gather(0, msg.EncodeInts([]int{rank * 11}))
			opErr = err
			if err == nil && rank == 0 {
				for r, p := range parts {
					if got := msg.DecodeInts(p)[0]; got != r*11 {
						t.Errorf("gather[%d] = %d, want %d", r, got, r*11)
					}
				}
			}
		case "alltoallv":
			send := make([][]byte, np)
			for to := range send {
				send[to] = msg.EncodeInts([]int{rank*100 + to})
			}
			recv, err := ctx.Comm().Alltoallv(send)
			opErr = err
			if err == nil {
				for from, p := range recv {
					if got := msg.DecodeInts(p)[0]; got != from*100+rank {
						t.Errorf("rank %d: alltoallv from %d = %d", rank, from, got)
					}
				}
			}
		case "ghost":
			opErr = a.ExchangeGhosts(ctx, 0)
			if opErr == nil && rank > 0 {
				// west ghost cell holds the left neighbour's last element
				l := a.Local(ctx)
				lo, _, _ := l.Segment()
				if got := l.At(index.Point{lo[0] - 1}); got != val(index.Point{lo[0] - 1}) {
					t.Errorf("rank %d: ghost cell = %v, want %v", rank, got, val(index.Point{lo[0] - 1}))
				}
			}
		case "redistribute":
			opErr = a.RedistributeTo(ctx, cyc)
			if opErr == nil {
				if !a.Dist().Equal(cyc) {
					t.Errorf("rank %d: dist after redistribute = %v, want cyclic", rank, a.DistType())
				}
			} else {
				// A failed DISTRIBUTE must leave the old association and
				// data intact everywhere (two-phase commit).
				if !a.Dist().Equal(blk) {
					t.Errorf("rank %d: failed redistribute left dist %v, want old block dist", rank, a.DistType())
				}
			}
			bad := 0
			a.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
				if *v != val(p) {
					bad++
				}
			})
			if bad != 0 {
				t.Errorf("rank %d: %d wrong values after redistribute (err=%v)", rank, bad, opErr)
			}
		}
		if rank == faultRank {
			ft.Disarm(faultRank)
		}
		errs[rank] = opErr
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}

	failed := 0
	for r, err := range errs {
		if err == nil {
			continue
		}
		failed++
		if !expectErr {
			t.Errorf("rank %d: %s failed under a healable fault: %v", r, opName, err)
			continue
		}
		for _, frag := range []string{opFrag, "rank"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("rank %d: error %q does not name %q", r, err, frag)
			}
		}
		if strings.Contains(err.Error(), "panic") {
			t.Errorf("rank %d: fault surfaced as a panic: %q", r, err)
		}
	}
	if expectErr && failed == 0 {
		t.Errorf("%s: frame dropped but every rank completed", opName)
	}
}
