package darray

import (
	"repro/internal/dist"
	"repro/internal/machine"
)

// ExchangeGhosts refreshes the overlap areas of dimension k: each
// processor puts its boundary faces into the neighbouring processors'
// ghost margins along that dimension's target dimension and waits for
// the neighbours' faces to land in its own.  Overlap areas are the
// mechanism the VFE uses to satisfy nearest-neighbour non-local
// references (§3.2: "the associated overlap areas"); a 5-point smoothing
// step needs one exchange per distributed dimension per sweep, which is
// exactly the message pattern analyzed in §4 (2 messages per processor
// for a column distribution, 4 for a 2-D block distribution).
//
// The dimension must be contiguous (block-family or elided).  Ghost
// areas are clipped at the domain boundary (non-periodic), and the
// exchanged face width is min(ghost width, neighbour segment width) —
// with degenerate segments thinner than the overlap, the farther ghost
// rows stay stale (only nearest neighbours exchange).
//
// ExchangeGhosts is simply StartExchangeGhosts followed by
// GhostHandle.Wait; use the start/wait pair directly to overlap local
// computation with the exchange.  Programmer errors (ghost exchange on a
// non-contiguous dimension) panic; transport failures are returned as
// errors wrapping the underlying cause.  The exchange runs under the
// machine's msg.CommConfig deadline/retry policy, so a lost face
// surfaces as a wrapped timeout instead of blocking forever.
func (a *Array) ExchangeGhosts(ctx *machine.Ctx, k int) error {
	h, err := a.StartExchangeGhosts(ctx, k)
	if err != nil {
		return err
	}
	return h.Wait()
}

// ExchangeAllGhosts refreshes every dimension with a non-zero overlap,
// stopping at the first transport failure.  It is StartExchangeAllGhosts
// followed by GhostHandle.Wait.
func (a *Array) ExchangeAllGhosts(ctx *machine.Ctx) error {
	h, err := a.StartExchangeAllGhosts(ctx)
	if err != nil {
		return err
	}
	return h.Wait()
}

// dimCount returns how many indices of array dimension k the given rank
// owns.  It reads the memoized per-rank grid rather than re-deriving the
// dimension's run set — this runs once per neighbour per exchange.
func dimCount(d *dist.Distribution, k, rank int) int {
	return d.LocalGrid(rank).Dims[k].Count()
}

// segDim returns the contiguous owned bounds of dimension k.
func segDim(l *Local, k int) (lo, hi int, ok bool) {
	rs := l.grid.Dims[k]
	if len(rs) != 1 || rs[0].Stride != 1 {
		return 0, 0, false
	}
	return rs[0].Lo, rs[0].Hi, true
}

// neighborRank finds the nearest processor along target dimension td (in
// direction dir) that owns a non-empty part of the array, or -1.
func neighborRank(d *dist.Distribution, coords []int, td, dir int) int {
	tg := d.Target()
	c := make([]int, len(coords))
	copy(c, coords)
	for {
		c[td] += dir
		if c[td] < 0 || c[td] >= tg.Extent(td) {
			return -1
		}
		r := tg.RankOf(c)
		if d.LocalCount(r) > 0 {
			return r
		}
	}
}
