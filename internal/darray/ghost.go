package darray

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/trace"
)

// ExchangeGhosts refreshes the overlap areas of dimension k: each
// processor sends its boundary faces to the neighbouring processors along
// that dimension's target dimension and receives their faces into its
// ghost margins.  Overlap areas are the mechanism the VFE uses to satisfy
// nearest-neighbour non-local references (§3.2: "the associated overlap
// areas"); a 5-point smoothing step needs one exchange per distributed
// dimension per sweep, which is exactly the message pattern analyzed in
// §4 (2 messages per processor for a column distribution, 4 for a 2-D
// block distribution).
//
// The dimension must be contiguous (block-family or elided).  Ghost areas
// are clipped at the domain boundary (non-periodic), and the exchanged
// face width is min(ghost width, neighbour segment width) — with
// degenerate segments thinner than the overlap, the farther ghost rows
// stay stale (only nearest neighbours exchange).
//
// Faces are packed span-by-span into a per-rank recycled wire buffer
// (reused for both travel directions — the transport is done with the
// buffer when Send returns), so steady-state stencil iteration allocates
// nothing on the send side.  Programmer errors (ghost exchange on a
// non-contiguous dimension) panic; transport failures are returned as
// errors wrapping the underlying cause.  The exchange runs under the
// machine's msg.CommConfig deadline/retry policy, so a lost face frame
// surfaces as a wrapped timeout instead of blocking forever.
func (a *Array) ExchangeGhosts(ctx *machine.Ctx, k int) error {
	d := a.requireDist()
	if a.ghost[k] == 0 {
		return nil
	}
	td := d.ProcDim(k)
	if td < 0 {
		return nil // dimension not distributed: the full extent is local
	}
	rank := ctx.Rank()
	l := a.locals[rank]
	coords, ok := d.Target().CoordsOf(rank)
	if !ok || l.Count() == 0 {
		return nil // outside the target or empty segment: nothing to exchange
	}
	lo, hi, okSeg := segDim(l, k)
	if !okSeg {
		panic(fmt.Sprintf("darray: %s: ghost exchange on non-contiguous dimension %d", a.name, k+1))
	}
	w := a.ghost[k]
	ep := ctx.Endpoint()
	cfg := ctx.Comm().Config()
	tr := ctx.Tracer()
	bufs := &a.bufs[rank]
	tag := msg.TagRMABase + 4096 + 2*k // per-dimension ghost tag space
	defer ctx.Tracer().BeginSpan(rank, trace.CatGhost, "ghost "+a.name).End()

	next := neighborRank(d, coords, td, +1)
	prev := neighborRank(d, coords, td, -1)

	// Phase 1: faces travel upward (I send my top rows to next; I receive
	// prev's top rows into my low ghost).
	if next >= 0 {
		fw := min(w, hi-lo+1)
		face := l.face(k, 0, index.NewRun(hi-fw+1, hi, 1))
		bufs.face = l.appendPacked(bufs.face[:0], face)
		if err := msg.SendRetry(ep, cfg, tr, "ghost-exchange", next, tag, bufs.face); err != nil {
			return fmt.Errorf("darray: %s: ghost exchange dim %d: %w", a.name, k+1, err)
		}
	}
	if prev >= 0 {
		fw := min(w, dimCount(d, k, prev))
		if fw > 0 {
			p, err := msg.RecvRetry(ep, cfg, tr, "ghost-exchange", prev, tag)
			if err != nil {
				return fmt.Errorf("darray: %s: ghost exchange dim %d: %w", a.name, k+1, err)
			}
			l.unpackWire(l.face(k, 1, index.NewRun(lo-fw, lo-1, 1)), p.Data)
		}
	}
	// Phase 2: faces travel downward.
	if prev >= 0 {
		fw := min(w, hi-lo+1)
		face := l.face(k, 2, index.NewRun(lo, lo+fw-1, 1))
		bufs.face = l.appendPacked(bufs.face[:0], face)
		if err := msg.SendRetry(ep, cfg, tr, "ghost-exchange", prev, tag+1, bufs.face); err != nil {
			return fmt.Errorf("darray: %s: ghost exchange dim %d: %w", a.name, k+1, err)
		}
	}
	if next >= 0 {
		fw := min(w, dimCount(d, k, next))
		if fw > 0 {
			p, err := msg.RecvRetry(ep, cfg, tr, "ghost-exchange", next, tag+1)
			if err != nil {
				return fmt.Errorf("darray: %s: ghost exchange dim %d: %w", a.name, k+1, err)
			}
			l.unpackWire(l.face(k, 3, index.NewRun(hi+1, hi+fw, 1)), p.Data)
		}
	}
	return nil
}

// ExchangeAllGhosts refreshes every dimension with a non-zero overlap,
// stopping at the first transport failure.
func (a *Array) ExchangeAllGhosts(ctx *machine.Ctx) error {
	for k := 0; k < a.dom.Rank(); k++ {
		if err := a.ExchangeGhosts(ctx, k); err != nil {
			return err
		}
	}
	return nil
}

// MustExchangeGhosts is ExchangeGhosts panicking on transport failure.
//
// Deprecated: use ExchangeGhosts and handle the error.
func (a *Array) MustExchangeGhosts(ctx *machine.Ctx, k int) {
	if err := a.ExchangeGhosts(ctx, k); err != nil {
		panic(err.Error())
	}
}

// MustExchangeAllGhosts is ExchangeAllGhosts panicking on transport
// failure.
//
// Deprecated: use ExchangeAllGhosts and handle the error.
func (a *Array) MustExchangeAllGhosts(ctx *machine.Ctx) {
	if err := a.ExchangeAllGhosts(ctx); err != nil {
		panic(err.Error())
	}
}

// dimCount returns how many indices of array dimension k the given rank
// owns.  It reads the memoized per-rank grid rather than re-deriving the
// dimension's run set — this runs once per neighbour per exchange.
func dimCount(d *dist.Distribution, k, rank int) int {
	return d.LocalGrid(rank).Dims[k].Count()
}

// segDim returns the contiguous owned bounds of dimension k.
func segDim(l *Local, k int) (lo, hi int, ok bool) {
	rs := l.grid.Dims[k]
	if len(rs) != 1 || rs[0].Stride != 1 {
		return 0, 0, false
	}
	return rs[0].Lo, rs[0].Hi, true
}

// neighborRank finds the nearest processor along target dimension td (in
// direction dir) that owns a non-empty part of the array, or -1.
func neighborRank(d *dist.Distribution, coords []int, td, dir int) int {
	tg := d.Target()
	c := make([]int, len(coords))
	copy(c, coords)
	for {
		c[td] += dir
		if c[td] < 0 || c[td] >= tg.Extent(td) {
			return -1
		}
		r := tg.RankOf(c)
		if d.LocalCount(r) > 0 {
			return r
		}
	}
}
