package darray

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// TestWireGaugeCrossEpoch: after a regroup renumbers the view, wire
// gauges (and the cost/trace attribution beside them) must land on
// *physical* rank slots.  Before the fix, the epoch-1 survivor with
// view rank 2 (physical rank 3) charged its redistribution residency to
// slot 2 — the dead rank — so per-rank budget verification read zero
// for a rank that was busy and nonzero for a corpse.
func TestWireGaugeCrossEpoch(t *testing.T) {
	lc := machine.LivenessConfig{Interval: 5 * time.Millisecond, Window: 75 * time.Millisecond}
	cc := msg.CommConfig{Timeout: 150 * time.Millisecond, Retries: 2, MaxTimeout: 250 * time.Millisecond}
	plan := &msg.FaultPlan{Rules: []msg.FaultRule{{Kind: msg.FaultDrop, Rank: 2, Peer: -1, After: 0}}}
	m := machine.New(4,
		machine.WithTransport(msg.NewFaultTransport(msg.NewChanTransport(4), plan)),
		machine.WithLiveness(lc), machine.WithCommConfig(cc))
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		var err error
		for i := 0; i < 400 && err == nil; i++ {
			time.Sleep(5 * time.Millisecond)
			err = ctx.Barrier()
		}
		if err == nil {
			return errors.New("no revocation observed")
		}
		if rerr := ctx.Regroup(); rerr != nil {
			return rerr // the killed rank exits with ErrExcluded
		}
		// Epoch 1, survivors [0 1 3] renumbered to views [0 1 2].  A
		// budgeted redistribution must charge residency to the physical
		// slots of the survivors.
		dom := index.Dim(24)
		tg := m.ProcsDim("PG", 3).Whole()
		a := New(ctx, "G", dom, dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg))
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		if err := ctx.Barrier(); err != nil {
			return err
		}
		newD := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg)
		return a.RedistributeTo(ctx, newD, MemBudget(1<<20))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	st := m.Stats()
	if got := st.PeakWireBytesRank(2); got != 0 {
		t.Errorf("dead physical rank 2 charged %d wire bytes (view-rank misattribution)", got)
	}
	if got := st.PeakWireBytesRank(3); got == 0 {
		t.Error("surviving physical rank 3 (view rank 2) charged no wire bytes")
	}
	for _, p := range []int{0, 1} {
		if st.PeakWireBytesRank(p) == 0 {
			t.Errorf("surviving physical rank %d charged no wire bytes", p)
		}
	}
}
