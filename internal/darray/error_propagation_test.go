package darray

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// TestRedistributeErrorOnClosedTransport checks the error-returning API
// path: when the transport dies under a redistribution, RedistributeTo
// reports a wrapped msg.ErrClosed instead of panicking (the old
// Redistribute wrapper's behaviour, still covered in failure_test.go).
func TestRedistributeErrorOnClosedTransport(t *testing.T) {
	tp := msg.NewChanTransport(2)
	m := machine.New(2, machine.WithTransport(tp))
	defer m.Close()
	errs := make([]error, 2)
	if err := m.Run(func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d1 := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(16), tg)
		d2 := dist.MustNew(dist.NewType(dist.CyclicDim(1)), index.Dim(16), tg)
		a := New(ctx, "E", index.Dim(16), d1)
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		if ctx.Rank() == 0 {
			tp.Close() // every rank's exchange must now fail
		}
		errs[ctx.Rank()] = a.RedistributeTo(ctx, d2)
		return nil
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for rank, err := range errs {
		if !errors.Is(err, msg.ErrClosed) {
			t.Errorf("rank %d: RedistributeTo = %v, want errors.Is msg.ErrClosed", rank, err)
		}
	}
}
