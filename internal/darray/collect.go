package darray

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// GatherTo collects the whole array on root as a dense column-major
// slice over the array's domain; other processors return nil.  Only
// primary owners contribute, so replicated arrays gather each element
// exactly once.  Packing and root-side placement run span-by-span
// (contiguous runs move with copy-style loops, never per-point
// callbacks).  Transport failures and contribution-size mismatches are
// returned as wrapped errors naming the array and the ranks involved.
func (a *Array) GatherTo(ctx *machine.Ctx, root int) ([]float64, error) {
	d := a.requireDist()
	rank := ctx.Rank()
	var payload []byte
	if d.IsPrimaryRank(rank) {
		l := a.locals[rank]
		payload = l.appendPacked(a.bufs[rank].sendBuf(ctx.NP(), root, l.Count()), l.grid)
		a.bufs[rank].send[root] = payload
	}
	parts, err := ctx.Comm().Gather(root, payload)
	if err != nil {
		return nil, fmt.Errorf("darray: %s: gather to %d: %w", a.name, root, err)
	}
	if rank != root {
		return nil, nil
	}
	out := make([]float64, a.dom.Size())
	for r := 0; r < ctx.NP(); r++ {
		if !d.IsPrimaryRank(r) {
			continue
		}
		g := d.LocalGrid(r)
		buf := parts[r]
		if msg.Float64Count(buf) != g.Count() {
			return nil, fmt.Errorf("darray: %s: gather at rank %d: contribution from rank %d has %d elements, want %d",
				a.name, root, r, msg.Float64Count(buf), g.Count())
		}
		off := 0
		g.ForEachRun(func(p index.Point, rn index.Run) bool {
			// dimension 0 of the dense domain has storage stride 1, so a
			// global run of stride s advances the offset by s.
			o := a.dom.Offset(p)
			for i := rn.Lo; i <= rn.Hi; i += rn.Stride {
				out[o] = msg.GetFloat64(buf, off)
				off += 8
				o += rn.Stride
			}
			return true
		})
	}
	return out, nil
}

// ScatterFrom distributes a dense column-major slice (significant on
// root only) into the array; every owner — including replicas — receives
// its local part.  A wrong-sized data slice on root and transport
// failures are returned as wrapped errors naming the array and ranks.
func (a *Array) ScatterFrom(ctx *machine.Ctx, root int, data []float64) error {
	d := a.requireDist()
	rank, np := ctx.Rank(), ctx.NP()
	var bufs [][]byte
	if rank == root {
		if len(data) != a.dom.Size() {
			return fmt.Errorf("darray: %s: scatter from rank %d: scatter data length %d != domain size %d",
				a.name, root, len(data), a.dom.Size())
		}
		bufs = make([][]byte, np)
		for r := 0; r < np; r++ {
			g := d.LocalGrid(r)
			buf, off := msg.GrowFloat64s(nil, g.Count())
			g.ForEachRun(func(p index.Point, rn index.Run) bool {
				o := a.dom.Offset(p)
				for i := rn.Lo; i <= rn.Hi; i += rn.Stride {
					msg.PutFloat64(buf, off, data[o])
					off += 8
					o += rn.Stride
				}
				return true
			})
			bufs[r] = buf
		}
	}
	mine, err := ctx.Comm().Scatterv(root, bufs)
	if err != nil {
		return fmt.Errorf("darray: %s: scatter from %d: %w", a.name, root, err)
	}
	a.locals[rank].unpackWire(a.locals[rank].grid, mine)
	return nil
}

// ReduceSum returns the sum of all owned elements across processors on
// every rank (replicas divide their contribution so each element counts
// once).
func (a *Array) ReduceSum(ctx *machine.Ctx) (float64, error) {
	d := a.requireDist()
	rank := ctx.Rank()
	local := 0.0
	if d.IsPrimaryRank(rank) {
		l := a.locals[rank]
		l.ForEachOwned(func(_ index.Point, v *float64) { local += *v })
	}
	out, err := ctx.Comm().AllreduceF64([]float64{local}, msg.SumF64)
	if err != nil {
		return 0, fmt.Errorf("darray: %s: reduce at rank %d: %w", a.name, rank, err)
	}
	return out[0], nil
}

// MaxAbsDiff compares two arrays with identical domains element-wise and
// returns the maximum absolute difference on every rank.  Both arrays
// must currently have the same distribution (it walks a's owned set and
// reads b locally).
func MaxAbsDiff(ctx *machine.Ctx, x, y *Array) (float64, error) {
	if !x.dom.Equal(y.dom) {
		return 0, fmt.Errorf("darray: MaxAbsDiff: domain mismatch between %s %v and %s %v",
			x.name, x.dom, y.name, y.dom)
	}
	rank := ctx.Rank()
	local := 0.0
	if x.requireDist().IsPrimaryRank(rank) {
		lx, ly := x.locals[rank], y.locals[rank]
		lx.ForEachOwned(func(p index.Point, v *float64) {
			dv := *v - ly.At(p)
			if dv < 0 {
				dv = -dv
			}
			if dv > local {
				local = dv
			}
		})
	}
	out, err := ctx.Comm().AllreduceF64([]float64{local}, msg.MaxF64)
	if err != nil {
		return 0, fmt.Errorf("darray: MaxAbsDiff %s/%s at rank %d: %w", x.name, y.name, rank, err)
	}
	return out[0], nil
}
