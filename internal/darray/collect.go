package darray

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// GatherTo collects the whole array on root as a dense column-major
// slice over the array's domain; other processors return nil.  Only
// primary owners contribute, so replicated arrays gather each element
// exactly once.
func (a *Array) GatherTo(ctx *machine.Ctx, root int) []float64 {
	d := a.requireDist()
	rank := ctx.Rank()
	var payload []byte
	if d.IsPrimaryRank(rank) {
		payload = msg.EncodeFloat64s(packGrid(a.locals[rank], a.locals[rank].grid))
	}
	parts, err := ctx.Comm().Gather(root, payload)
	if err != nil {
		panic(fmt.Sprintf("darray: %s: gather failed: %v", a.name, err))
	}
	if rank != root {
		return nil
	}
	out := make([]float64, a.dom.Size())
	for r := 0; r < ctx.NP(); r++ {
		if !d.IsPrimaryRank(r) {
			continue
		}
		g := d.LocalGrid(r)
		vals := msg.DecodeFloat64s(parts[r])
		i := 0
		g.ForEach(func(p index.Point) bool {
			out[a.dom.Offset(p)] = vals[i]
			i++
			return true
		})
		if i != len(vals) {
			panic(fmt.Sprintf("darray: %s: gather size mismatch from rank %d", a.name, r))
		}
	}
	return out
}

// ScatterFrom distributes a dense column-major slice (significant on
// root only) into the array; every owner — including replicas — receives
// its local part.
func (a *Array) ScatterFrom(ctx *machine.Ctx, root int, data []float64) {
	d := a.requireDist()
	rank, np := ctx.Rank(), ctx.NP()
	var bufs [][]byte
	if rank == root {
		if len(data) != a.dom.Size() {
			panic(fmt.Sprintf("darray: %s: scatter data length %d != domain size %d", a.name, len(data), a.dom.Size()))
		}
		bufs = make([][]byte, np)
		for r := 0; r < np; r++ {
			g := d.LocalGrid(r)
			vals := make([]float64, 0, g.Count())
			g.ForEach(func(p index.Point) bool {
				vals = append(vals, data[a.dom.Offset(p)])
				return true
			})
			bufs[r] = msg.EncodeFloat64s(vals)
		}
	}
	mine, err := ctx.Comm().Scatterv(root, bufs)
	if err != nil {
		panic(fmt.Sprintf("darray: %s: scatter failed: %v", a.name, err))
	}
	unpackGrid(a.locals[rank], a.locals[rank].grid, msg.DecodeFloat64s(mine))
}

// ReduceSum returns the sum of all owned elements across processors on
// every rank (replicas divide their contribution so each element counts
// once).
func (a *Array) ReduceSum(ctx *machine.Ctx) float64 {
	d := a.requireDist()
	rank := ctx.Rank()
	local := 0.0
	if d.IsPrimaryRank(rank) {
		l := a.locals[rank]
		l.ForEachOwned(func(_ index.Point, v *float64) { local += *v })
	}
	out, err := ctx.Comm().AllreduceF64([]float64{local}, msg.SumF64)
	if err != nil {
		panic(fmt.Sprintf("darray: %s: reduce failed: %v", a.name, err))
	}
	return out[0]
}

// MaxAbsDiff compares two arrays with identical domains element-wise and
// returns the maximum absolute difference on every rank.  Both arrays
// must currently have the same distribution (it walks a's owned set and
// reads b locally).
func MaxAbsDiff(ctx *machine.Ctx, x, y *Array) float64 {
	if !x.dom.Equal(y.dom) {
		panic("darray: MaxAbsDiff domain mismatch")
	}
	rank := ctx.Rank()
	local := 0.0
	if x.requireDist().IsPrimaryRank(rank) {
		lx, ly := x.locals[rank], y.locals[rank]
		lx.ForEachOwned(func(p index.Point, v *float64) {
			dv := *v - ly.At(p)
			if dv < 0 {
				dv = -dv
			}
			if dv > local {
				local = dv
			}
		})
	}
	out, err := ctx.Comm().AllreduceF64([]float64{local}, msg.MaxF64)
	if err != nil {
		panic(fmt.Sprintf("darray: MaxAbsDiff reduce failed: %v", err))
	}
	return out[0]
}
