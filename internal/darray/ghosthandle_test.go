package darray

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// TestStartExchangeGhostsOverlapsCompute splits the exchange into
// start/wait and mutates strictly-interior cells while the halos are in
// flight: the ghosts must land with the values the neighbours held at
// start time (unaffected by concurrent interior writes), and the interior
// writes must survive — the contract that makes compute/comm overlap
// safe.
func TestStartExchangeGhostsOverlapsCompute(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("G", 2, 2).Whole()
		dom := index.Dim(8, 8)
		d := dist.MustNew(dist.NewType(dist.BlockDim(), dist.BlockDim()), dom, tg)
		a := New(ctx, "A", dom, d, WithGhost(1, 1))
		a.FillFunc(ctx, val2)
		ctx.Barrier()
		h, err := a.StartExchangeAllGhosts(ctx)
		if err != nil {
			return err
		}
		// Overlapped "compute": rewrite every owned cell at least one away
		// from the segment boundary while the exchange is in flight.
		l := a.Local(ctx)
		lo, hi, _ := l.Segment()
		interior := 0
		l.ForEachOwned(func(p index.Point, v *float64) {
			if p[0] > lo[0] && p[0] < hi[0] && p[1] > lo[1] && p[1] < hi[1] {
				*v = -val2(p)
				interior++
			}
		})
		if err := h.Wait(); err != nil {
			return err
		}
		// Face-adjacent ghosts hold the neighbours' start-time values.
		for i := lo[0]; i <= hi[0]; i++ {
			for _, j := range []int{lo[1] - 1, hi[1] + 1} {
				if j < 1 || j > 8 {
					continue
				}
				if got := l.At(index.Point{i, j}); got != val2(index.Point{i, j}) {
					t.Errorf("rank %d ghost (%d,%d) = %v, want %v", ctx.Rank(), i, j, got, val2(index.Point{i, j}))
				}
			}
		}
		for j := lo[1]; j <= hi[1]; j++ {
			for _, i := range []int{lo[0] - 1, hi[0] + 1} {
				if i < 1 || i > 8 {
					continue
				}
				if got := l.At(index.Point{i, j}); got != val2(index.Point{i, j}) {
					t.Errorf("rank %d ghost (%d,%d) = %v, want %v", ctx.Rank(), i, j, got, val2(index.Point{i, j}))
				}
			}
		}
		// The overlapped writes survived.
		bad := 0
		l.ForEachOwned(func(p index.Point, v *float64) {
			if p[0] > lo[0] && p[0] < hi[0] && p[1] > lo[1] && p[1] < hi[1] && *v != -val2(p) {
				bad++
			}
		})
		if interior > 0 && bad != 0 {
			t.Errorf("rank %d: %d overlapped interior writes lost", ctx.Rank(), bad)
		}
		// Wait is idempotent.
		if err := h.Wait(); err != nil {
			t.Errorf("second Wait = %v, want nil", err)
		}
		return nil
	})
}

// TestStartExchangeGhostsThinBBlock drives the async path through the
// hardest geometry: B_BLOCK segments thinner than the ghost width, where
// a halo is assembled from partial contributions.
func TestStartExchangeGhostsThinBBlock(t *testing.T) {
	run(t, 3, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 3).Whole()
		dom := index.Dim(10)
		// segments: p0: 1-1 (thin), p1: 2-2 (thin), p2: 3-10
		d := dist.MustNew(dist.NewType(dist.BBlockDim(1, 2, 10)), dom, tg)
		a := New(ctx, "A", dom, d, WithGhost(2))
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		h, err := a.StartExchangeGhosts(ctx, 0)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		l := a.Local(ctx)
		if ctx.Rank() == 2 {
			if got := l.At(index.Point{2}); got != 2 {
				t.Errorf("thin neighbour ghost = %v, want 2", got)
			}
		}
		if ctx.Rank() == 1 {
			if got := l.At(index.Point{1}); got != 1 {
				t.Errorf("p1 low ghost = %v, want 1", got)
			}
			if got := l.At(index.Point{3}); got != 3 {
				t.Errorf("p1 high ghost = %v, want 3", got)
			}
		}
		return nil
	})
}

// TestStartExchangeGhostsUnevenBlock2D: a 7x7 domain on a 2x2 grid gives
// 4/3 splits in both dimensions — neighbouring halo rects of different
// extents on the two sides of each boundary.
func TestStartExchangeGhostsUnevenBlock2D(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("G", 2, 2).Whole()
		dom := index.Dim(7, 7)
		d := dist.MustNew(dist.NewType(dist.BlockDim(), dist.BlockDim()), dom, tg)
		a := New(ctx, "A", dom, d, WithGhost(2, 2))
		a.FillFunc(ctx, val2)
		ctx.Barrier()
		h, err := a.StartExchangeAllGhosts(ctx)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		l := a.Local(ctx)
		lo, hi, _ := l.Segment()
		for i := lo[0]; i <= hi[0]; i++ {
			for _, j := range []int{lo[1] - 2, lo[1] - 1, hi[1] + 1, hi[1] + 2} {
				if j < 1 || j > 7 {
					continue
				}
				if got := l.At(index.Point{i, j}); got != val2(index.Point{i, j}) {
					t.Errorf("rank %d ghost (%d,%d) = %v, want %v", ctx.Rank(), i, j, got, val2(index.Point{i, j}))
				}
			}
		}
		for j := lo[1]; j <= hi[1]; j++ {
			for _, i := range []int{lo[0] - 2, lo[0] - 1, hi[0] + 1, hi[0] + 2} {
				if i < 1 || i > 7 {
					continue
				}
				if got := l.At(index.Point{i, j}); got != val2(index.Point{i, j}) {
					t.Errorf("rank %d ghost (%d,%d) = %v, want %v", ctx.Rank(), i, j, got, val2(index.Point{i, j}))
				}
			}
		}
		return nil
	})
}

// TestStartExchangeGhostsOverTCP runs the async handle over the framed
// transport, where puts travel as packed payloads instead of direct
// copies.
func TestStartExchangeGhostsOverTCP(t *testing.T) {
	tcp, err := msg.NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(3, machine.WithTransport(tcp))
	defer m.Close()
	if err := m.Run(func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 3).Whole()
		dom := index.Dim(12)
		d := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		a := New(ctx, "A", dom, d, WithGhost(2))
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0] * p[0]) })
		ctx.Barrier()
		h, err := a.StartExchangeGhosts(ctx, 0)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		l := a.Local(ctx)
		lo, hi, _ := l.Segment()
		for i := lo[0] - 2; i <= hi[0]+2; i++ {
			if i < 1 || i > 12 {
				continue
			}
			if got := l.At(index.Point{i}); got != float64(i*i) {
				t.Errorf("rank %d: ghost/own at %d = %v, want %d", ctx.Rank(), i, got, i*i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
