package darray

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/trace"
)

// Asynchronous ghost exchange over one-sided windows.
//
// StartExchangeGhosts pushes this processor's boundary faces directly
// into its neighbours' ghost margins (msg.Window.PutAsync) and returns a
// GhostHandle immediately; the faces this processor is owed arrive
// whenever the neighbours start their own exchange.  GhostHandle.Wait
// blocks until every expected face has been deposited — a lightweight
// per-neighbour completion rather than a global barrier, which is what
// lets a stencil sweep compute its interior while the halos are still in
// flight (start → interior → Wait → peeled edges).
//
// Both sides derive the transfer geometry from the replicated
// distribution descriptor, so puts carry payload only and the per-step
// message and byte counts are identical to the two-sided exchange this
// replaces (the §4 cost arguments keep holding).  Each array owns a
// window with a private tag subspace, so concurrent exchanges of
// different arrays — or of several dimensions of one array — can be in
// flight together without tag collisions.

// window returns the array's one-sided window, creating and registering
// it on first use.  sync.Once publishes the shared object to every rank;
// the locals it registers were published by the barrier that followed
// their allocation.
func (a *Array) window(ctx *machine.Ctx) *msg.Window {
	a.winOnce.Do(func() {
		w := msg.NewWindow(ctx.NP(), a.name, a.m.Stats(), a.m.Cost())
		for r, l := range a.locals {
			if l != nil {
				w.Register(r, l.data)
			}
		}
		a.win = w
	})
	return a.win
}

// registerWindow re-registers rank's (re)allocated storage with the
// array's window, if one exists.  Callers must invoke it between the
// Local swap and the barrier that publishes it (RedistributeTo's commit
// sequence), so no peer can address the retired storage afterwards.
func (a *Array) registerWindow(rank int) {
	if a.win != nil {
		a.win.Register(rank, a.locals[rank].data)
	}
}

// ghostSubtag returns the counted-stream subtag of dimension k's
// exchange in direction dir (0: faces travel toward higher ranks, 1:
// toward lower ranks).
func ghostSubtag(k, dir int) int {
	st := 1 + 2*k + dir
	if st > msg.MaxSubtag {
		panic(fmt.Sprintf("darray: ghost exchange dimension %d exceeds the window subtag space", k+1))
	}
	return st
}

// storageRect describes the storage region covering dimension k's local
// positions for global indices [aIdx..bIdx] (which may lie in the ghost
// margins; the dimension must be contiguous) and the full owned extents
// of every other dimension, in canonical pack order.  It reads only
// immutable Local geometry, so building a rect over a neighbour's Local
// is race-free.
func (l *Local) storageRect(k, aIdx, bIdx int) msg.Rect {
	r := msg.Rect{Dims: make([]msg.RectDim, len(l.shape))}
	off := 0
	for d := range l.shape {
		if d == k {
			off += l.li(k, aIdx) * l.strd[d]
			r.Dims[d] = msg.RectDim{Stride: l.strd[d], Count: bIdx - aIdx + 1}
		} else {
			// Owned cells occupy the contiguous local positions
			// gLo[d]..gLo[d]+shape[d]-1 regardless of the global run
			// structure, in enumeration (pack) order.
			off += l.gLo[d] * l.strd[d]
			r.Dims[d] = msg.RectDim{Stride: l.strd[d], Count: l.shape[d]}
		}
	}
	r.Off = off
	return r
}

// ghostWait records one face this processor is owed.
type ghostWait struct {
	from   int
	subtag int
	dst    msg.Rect
	dim    int
}

// GhostHandle tracks an in-flight asynchronous ghost exchange.  Wait
// must be called exactly once per handle before the ghost cells are
// read; it is safe to call on a nil handle (a no-op, so callers may
// thread handles through optional paths).
type GhostHandle struct {
	a     *Array
	ctx   *machine.Ctx
	win   *msg.Window
	waits []ghostWait
	done  bool
	err   error
}

// StartExchangeGhosts begins refreshing the overlap areas of dimension
// k: boundary faces are put into the neighbours' ghost margins without
// waiting for the inbound faces.  Complete it with GhostHandle.Wait
// before reading this processor's own ghost cells.  See ExchangeGhosts
// for the synchronous semantics, clipping rules and error behaviour.
func (a *Array) StartExchangeGhosts(ctx *machine.Ctx, k int) (*GhostHandle, error) {
	h := &GhostHandle{a: a, ctx: ctx}
	if err := a.startGhostDim(ctx, k, h); err != nil {
		return nil, err
	}
	return h, nil
}

// StartExchangeAllGhosts begins the exchange of every dimension with a
// non-zero overlap, returning one handle that completes them all.  The
// dimensions' transfers are independent (faces carry owned cells only),
// so they ride different window subtags concurrently.
func (a *Array) StartExchangeAllGhosts(ctx *machine.Ctx) (*GhostHandle, error) {
	h := &GhostHandle{a: a, ctx: ctx}
	for k := 0; k < a.dom.Rank(); k++ {
		if err := a.startGhostDim(ctx, k, h); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// startGhostDim issues dimension k's outbound puts and records the
// inbound completions on h.
func (a *Array) startGhostDim(ctx *machine.Ctx, k int, h *GhostHandle) error {
	d := a.requireDist()
	if a.ghost[k] == 0 {
		return nil
	}
	td := d.ProcDim(k)
	if td < 0 {
		return nil // dimension not distributed: the full extent is local
	}
	rank := ctx.Rank()
	l := a.locals[rank]
	coords, ok := d.Target().CoordsOf(rank)
	if !ok || l.Count() == 0 {
		return nil // outside the target or empty segment: nothing to exchange
	}
	lo, hi, okSeg := segDim(l, k)
	if !okSeg {
		panic(fmt.Sprintf("darray: %s: ghost exchange on non-contiguous dimension %d", a.name, k+1))
	}
	w := a.ghost[k]
	win := a.window(ctx)
	h.win = win
	c := ctx.Comm()
	defer ctx.Tracer().BeginSpan(rank, trace.CatGhost, "ghost-start "+a.name).End()

	next := neighborRank(d, coords, td, +1)
	prev := neighborRank(d, coords, td, -1)

	stUp, stDn := ghostSubtag(k, 0), ghostSubtag(k, 1)

	// Faces traveling upward: my top rows into next's low ghost margin.
	if next >= 0 {
		fw := min(w, hi-lo+1)
		ln := a.locals[next]
		nlo, _, nok := segDim(ln, k)
		if !nok {
			panic(fmt.Sprintf("darray: %s: ghost exchange on non-contiguous dimension %d", a.name, k+1))
		}
		src := l.storageRect(k, hi-fw+1, hi)
		dst := ln.storageRect(k, nlo-fw, nlo-1)
		if err := win.PutAsync(c, next, stUp, src, dst); err != nil {
			return fmt.Errorf("darray: %s: ghost exchange dim %d: %w", a.name, k+1, err)
		}
	}
	if prev >= 0 {
		if fw := min(w, dimCount(d, k, prev)); fw > 0 {
			h.waits = append(h.waits, ghostWait{prev, stUp, l.storageRect(k, lo-fw, lo-1), k})
		}
	}
	// Faces traveling downward: my bottom rows into prev's high margin.
	if prev >= 0 {
		fw := min(w, hi-lo+1)
		lp := a.locals[prev]
		_, phi, pok := segDim(lp, k)
		if !pok {
			panic(fmt.Sprintf("darray: %s: ghost exchange on non-contiguous dimension %d", a.name, k+1))
		}
		src := l.storageRect(k, lo, lo+fw-1)
		dst := lp.storageRect(k, phi+1, phi+fw)
		if err := win.PutAsync(c, prev, stDn, src, dst); err != nil {
			return fmt.Errorf("darray: %s: ghost exchange dim %d: %w", a.name, k+1, err)
		}
	}
	if next >= 0 {
		if fw := min(w, dimCount(d, k, next)); fw > 0 {
			h.waits = append(h.waits, ghostWait{next, stDn, l.storageRect(k, hi+1, hi+fw), k})
		}
	}
	return nil
}

// Wait blocks until every face this processor is owed has been deposited
// in its ghost margins, completing the exchange.  A second Wait (or a
// Wait on a nil handle) returns the first completion's result without
// waiting again.
func (h *GhostHandle) Wait() error {
	if h == nil {
		return nil
	}
	if h.done {
		return h.err
	}
	h.done = true
	if len(h.waits) == 0 {
		return nil
	}
	c := h.ctx.Comm()
	defer h.ctx.Tracer().BeginSpan(h.ctx.Rank(), trace.CatGhost, "ghost-wait "+h.a.name).End()
	for _, wt := range h.waits {
		if err := h.win.AwaitPut(c, wt.from, wt.subtag, wt.dst); err != nil {
			h.err = fmt.Errorf("darray: %s: ghost exchange dim %d: %w", h.a.name, wt.dim+1, err)
			return h.err
		}
	}
	return nil
}
