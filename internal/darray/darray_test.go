package darray

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// run executes an SPMD body on a fresh machine.
func run(t *testing.T, np int, body func(ctx *machine.Ctx) error) *machine.Machine {
	t.Helper()
	m := machine.New(np)
	t.Cleanup(func() { m.Close() })
	if err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	return m
}

func val2(p index.Point) float64 { return float64(p[0]*1000 + p[1]) }

func TestCreateFillGather(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 4).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), index.Dim(8, 3), tg)
		a := New(ctx, "A", index.Dim(8, 3), d)
		a.FillFunc(ctx, val2)
		ctx.Barrier()
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			dom := a.Domain()
			dom.WholeSection().ForEach(func(p index.Point) bool {
				if got[dom.Offset(p)] != val2(p) {
					t.Errorf("gathered[%v] = %v want %v", p, got[dom.Offset(p)], val2(p))
				}
				return true
			})
		} else if got != nil {
			t.Error("non-root gather should return nil")
		}
		return nil
	})
}

func TestLocalAccessAndSegment(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(10), tg)
		a := New(ctx, "B", index.Dim(10), d)
		l := a.Local(ctx)
		if ctx.Rank() == 0 {
			if l.Count() != 5 || l.Shape()[0] != 5 {
				t.Errorf("rank 0 count = %d", l.Count())
			}
			lo, hi, ok := l.Segment()
			if !ok || lo[0] != 1 || hi[0] != 5 {
				t.Errorf("segment = %v %v %v", lo, hi, ok)
			}
			if !l.Owns(index.Point{3}) || l.Owns(index.Point{7}) {
				t.Error("ownership wrong")
			}
		}
		l.ForEachOwned(func(p index.Point, v *float64) { *v = float64(p[0]) })
		if got := l.At(index.Point{l.Grid().Dims[0].At(0)}); got != float64(l.Grid().Dims[0].At(0)) {
			t.Errorf("At = %v", got)
		}
		return nil
	})
}

func TestRemoteGetSetAccounting(t *testing.T) {
	m := run(t, 2, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		d := dist.MustNew(dist.NewType(dist.BlockDim()), index.Dim(10), tg)
		a := New(ctx, "C", index.Dim(10), d)
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(10 * p[0]) })
		ctx.Barrier()
		// rank 0 reads element 9 (owned by rank 1)
		if ctx.Rank() == 0 {
			if got := a.Get(ctx, index.Point{9}); got != 90 {
				t.Errorf("remote get = %v", got)
			}
			a.Set(ctx, index.Point{10}, -1) // remote put
		}
		ctx.Barrier()
		if ctx.Rank() == 1 {
			if got := a.Get(ctx, index.Point{10}); got != -1 {
				t.Errorf("after remote put, local get = %v", got)
			}
		}
		return nil
	})
	sn := m.Stats().Snapshot()
	if sn.TotalMsgs() == 0 {
		t.Fatal("simulated one-sided access should be accounted in stats")
	}
}

func TestAccessBeforeDistributionPanics(t *testing.T) {
	m := machine.New(2)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		a := NewUndistributed(ctx, "U", index.Dim(4))
		if a.Distributed() {
			t.Error("should be undistributed")
		}
		_ = a.Local(ctx) // must panic
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "before association") {
		t.Fatalf("err = %v", err)
	}
}

func TestFirstAssociationThenAccess(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		a := NewUndistributed(ctx, "U", index.Dim(6))
		d := dist.MustNew(dist.NewType(dist.CyclicDim(1)), index.Dim(6), tg)
		if err := a.RedistributeTo(ctx, d); err != nil {
			return err
		}
		if !a.Distributed() || a.Epoch() != 1 {
			t.Error("association failed")
		}
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		if got := a.Get(ctx, index.Point{5}); got != 5 {
			t.Errorf("get = %v", got)
		}
		return nil
	})
}

func TestRedistributePreservesValues(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 4).Whole()
		dom := index.Dim(16, 5)
		d1 := dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), dom, tg)
		d2 := dist.MustNew(dist.NewType(dist.ElidedDim(), dist.CyclicDim(2)), dom, tg)
		a := New(ctx, "A", dom, d1)
		a.FillFunc(ctx, val2)
		ctx.Barrier()
		if err := a.RedistributeTo(ctx, d2); err != nil {
			return err
		}
		// every element readable locally by its new owner with old value
		l := a.Local(ctx)
		bad := 0
		l.ForEachOwned(func(p index.Point, v *float64) {
			if *v != val2(p) {
				bad++
			}
		})
		if bad != 0 {
			t.Errorf("rank %d: %d wrong values after redistribute", ctx.Rank(), bad)
		}
		// redistribute back and gather
		if err := a.RedistributeTo(ctx, d1); err != nil {
			return err
		}
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			dom.WholeSection().ForEach(func(p index.Point) bool {
				if got[dom.Offset(p)] != val2(p) {
					t.Errorf("after roundtrip, [%v] = %v", p, got[dom.Offset(p)])
				}
				return true
			})
		}
		if a.Epoch() != 2 {
			t.Errorf("epoch = %d", a.Epoch())
		}
		return nil
	})
}

func TestRedistributeChainProperty(t *testing.T) {
	// Random chains of redistributions must preserve all values.
	rng := rand.New(rand.NewSource(77))
	dom := index.Dim(12, 9)
	mkDist := func(tg dist.Target, r *rand.Rand) *dist.Distribution {
		specs := make([]dist.DimSpec, 2)
		dims := 0
		for k := 0; k < 2; k++ {
			switch r.Intn(4) {
			case 0:
				specs[k] = dist.BlockDim()
				dims++
			case 1:
				specs[k] = dist.CyclicDim(1 + r.Intn(3))
				dims++
			case 2:
				specs[k] = dist.ElidedDim()
			case 3:
				n := dom.Extent(k)
				bounds := make([]int, 2)
				bounds[0] = r.Intn(n + 1)
				bounds[1] = n
				specs[k] = dist.BBlockDim(bounds...)
				dims++
			}
		}
		if dims > 2 {
			specs[1] = dist.ElidedDim()
		}
		d, err := dist.New(dist.NewType(specs...), dom, tg)
		if err != nil {
			panic(err)
		}
		return d
	}
	for trial := 0; trial < 8; trial++ {
		seed := rng.Int63()
		run(t, 4, func(ctx *machine.Ctx) error {
			r := rand.New(rand.NewSource(seed)) // same sequence on all ranks
			tg := ctx.Machine().ProcsDim("G", 2, 2).Whole()
			d0 := dist.MustNew(dist.NewType(dist.BlockDim(), dist.BlockDim()), dom, tg)
			a := New(ctx, "A", dom, d0)
			a.FillFunc(ctx, val2)
			ctx.Barrier()
			dists := []*dist.Distribution{d0}
			for i := 0; i < 5; i++ {
				nd := ctx.CollectiveOnce(func() any { return mkDist(tg, r) }).(*dist.Distribution)
				_ = r.Intn(2) // keep local rng in sync with the creator
				dists = append(dists, nd)
				if err := a.RedistributeTo(ctx, nd); err != nil {
					return err
				}
			}
			bad := 0
			a.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
				if *v != val2(p) {
					bad++
				}
			})
			if bad != 0 {
				t.Errorf("trial %d rank %d: %d corrupted values (chain %v)", trial, ctx.Rank(), bad, dists)
			}
			return nil
		})
	}
}

func TestNoTransferSemantics(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		dom := index.Dim(8)
		d1 := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)   // p0: 1-4
		d2 := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg) // p0: odd
		a := New(ctx, "A", dom, d1)
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		base := ctx.Machine().Stats().Snapshot()
		if err := a.RedistributeTo(ctx, d2, NoTransfer()); err != nil {
			return err
		}
		delta := ctx.Machine().Stats().Snapshot().Sub(base)
		// NOTRANSFER must move no array payload (barrier messages are
		// zero-byte; schedule exchange does not happen)
		if delta.TotalBytes() != 0 {
			t.Errorf("NOTRANSFER moved %d bytes", delta.TotalBytes())
		}
		l := a.Local(ctx)
		// kept elements: indices I owned under both distributions
		if ctx.Rank() == 0 {
			// rank 0 owned 1-4, now owns 1,3,5,7; 1 and 3 kept, 5,7 zero
			if l.At(index.Point{1}) != 1 || l.At(index.Point{3}) != 3 {
				t.Error("kept values lost")
			}
			if l.At(index.Point{5}) != 0 || l.At(index.Point{7}) != 0 {
				t.Error("non-kept values should be zero")
			}
		}
		return nil
	})
}

func TestRedistributeNoOp(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		dom := index.Dim(8)
		d1 := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		d1b := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		a := New(ctx, "A", dom, d1)
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		if err := a.RedistributeTo(ctx, d1b); err != nil { // logically identical
			return err
		}
		if a.Epoch() != 0 {
			t.Errorf("no-op redistribution bumped epoch to %d", a.Epoch())
		}
		if a.Local(ctx).At(index.Point{a.Local(ctx).Grid().Dims[0].At(0)}) == 0 {
			t.Error("values lost on no-op")
		}
		return nil
	})
}

func TestScheduleCacheReuse(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		dom := index.Dim(10)
		d1 := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		d2 := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg)
		a := New(ctx, "A", dom, d1)
		for i := 0; i < 3; i++ {
			if err := a.RedistributeTo(ctx, d2); err != nil {
				return err
			}
			if err := a.RedistributeTo(ctx, d1); err != nil {
				return err
			}
		}
		ctx.Barrier()
		if ctx.Rank() == 0 {
			hits, misses := a.ScheduleCacheStats()
			// 6 redistributions x 2 ranks = 12 lookups over 4 distinct keys
			if misses != 4 {
				t.Errorf("misses = %d, want 4", misses)
			}
			if hits != 8 {
				t.Errorf("hits = %d, want 8", hits)
			}
		}
		return nil
	})
}

func TestGhostExchange1D(t *testing.T) {
	run(t, 3, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 3).Whole()
		dom := index.Dim(12)
		d := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		a := New(ctx, "A", dom, d, WithGhost(2))
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0] * p[0]) })
		ctx.Barrier()
		a.ExchangeGhosts(ctx, 0)
		l := a.Local(ctx)
		lo, hi, _ := l.Segment()
		// ghosts within 2 of my segment hold neighbour values
		for i := lo[0] - 2; i <= hi[0]+2; i++ {
			if i < 1 || i > 12 {
				continue
			}
			if got := l.At(index.Point{i}); got != float64(i*i) {
				t.Errorf("rank %d: ghost/own at %d = %v want %d", ctx.Rank(), i, got, i*i)
			}
		}
		return nil
	})
}

func TestGhostExchange2DBlockBlock(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("G", 2, 2).Whole()
		dom := index.Dim(8, 8)
		d := dist.MustNew(dist.NewType(dist.BlockDim(), dist.BlockDim()), dom, tg)
		a := New(ctx, "A", dom, d, WithGhost(1, 1))
		a.FillFunc(ctx, val2)
		ctx.Barrier()
		a.ExchangeAllGhosts(ctx)
		l := a.Local(ctx)
		lo, hi, _ := l.Segment()
		// all face-adjacent ghosts valid (corners not exchanged)
		for i := lo[0]; i <= hi[0]; i++ {
			for _, j := range []int{lo[1] - 1, hi[1] + 1} {
				if j < 1 || j > 8 {
					continue
				}
				if got := l.At(index.Point{i, j}); got != val2(index.Point{i, j}) {
					t.Errorf("rank %d ghost (%d,%d) = %v", ctx.Rank(), i, j, got)
				}
			}
		}
		for j := lo[1]; j <= hi[1]; j++ {
			for _, i := range []int{lo[0] - 1, hi[0] + 1} {
				if i < 1 || i > 8 {
					continue
				}
				if got := l.At(index.Point{i, j}); got != val2(index.Point{i, j}) {
					t.Errorf("rank %d ghost (%d,%d) = %v", ctx.Rank(), i, j, got)
				}
			}
		}
		return nil
	})
}

func TestGhostExchangeBBlockThinSegments(t *testing.T) {
	run(t, 3, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 3).Whole()
		dom := index.Dim(10)
		// segments: p0: 1-1 (thin), p1: 2-2 (thin), p2: 3-10
		d := dist.MustNew(dist.NewType(dist.BBlockDim(1, 2, 10)), dom, tg)
		a := New(ctx, "A", dom, d, WithGhost(2))
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		a.ExchangeGhosts(ctx, 0)
		l := a.Local(ctx)
		if ctx.Rank() == 2 {
			// p2's low ghost can only get 1 row from thin neighbour p1
			if got := l.At(index.Point{2}); got != 2 {
				t.Errorf("thin neighbour ghost = %v", got)
			}
		}
		if ctx.Rank() == 1 {
			if got := l.At(index.Point{1}); got != 1 {
				t.Errorf("p1 low ghost = %v", got)
			}
			if got := l.At(index.Point{3}); got != 3 {
				t.Errorf("p1 high ghost = %v", got)
			}
		}
		return nil
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 4).Whole()
		dom := index.Dim(9, 4)
		d := dist.MustNew(dist.NewType(dist.CyclicDim(2), dist.ElidedDim()), dom, tg)
		a := New(ctx, "A", dom, d)
		var data []float64
		if ctx.Rank() == 0 {
			data = make([]float64, dom.Size())
			for i := range data {
				data[i] = float64(i) * 1.5
			}
		}
		if err := a.ScatterFrom(ctx, 0, data); err != nil {
			return err
		}
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			for i := range got {
				if got[i] != float64(i)*1.5 {
					t.Errorf("roundtrip[%d] = %v", i, got[i])
				}
			}
		}
		return nil
	})
}

func TestReplicatedArray(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("G", 2, 2).Whole()
		dom := index.Dim(6)
		d := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg) // replicated over dim 1
		a := New(ctx, "R", dom, d)
		// writes update every replica
		if ctx.Rank() == 0 {
			for i := 1; i <= 6; i++ {
				a.Set(ctx, index.Point{i}, float64(i*7))
			}
		}
		ctx.Barrier()
		// every owner reads the value locally
		l := a.Local(ctx)
		l.ForEachOwned(func(p index.Point, v *float64) {
			if *v != float64(p[0]*7) {
				t.Errorf("rank %d replica at %v = %v", ctx.Rank(), p, *v)
			}
		})
		if s, err := a.ReduceSum(ctx); err != nil {
			return err
		} else if s != float64(7*(1+2+3+4+5+6)) {
			t.Errorf("sum = %v", s)
		}
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 && got[0] != 7 {
			t.Errorf("gather replicated = %v", got)
		}
		return nil
	})
}

func TestDArrayOverTCP(t *testing.T) {
	tcp, err := msg.NewTCPTransport(4)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(4, machine.WithTransport(tcp))
	defer m.Close()
	if err := m.Run(func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 4).Whole()
		dom := index.Dim(16)
		d1 := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		d2 := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg)
		a := New(ctx, "A", dom, d1)
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		if err := a.RedistributeTo(ctx, d2); err != nil {
			return err
		}
		bad := 0
		a.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
			if *v != float64(p[0]) {
				bad++
			}
		})
		if bad != 0 {
			t.Errorf("tcp redistribute corrupted %d values", bad)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 2).Whole()
		dom := index.Dim(6)
		d := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		x := New(ctx, "X", dom, d)
		y := New(ctx, "Y", dom, d)
		x.Fill(ctx, 1)
		y.Fill(ctx, 1)
		ctx.Barrier()
		if got, err := MaxAbsDiff(ctx, x, y); err != nil {
			return err
		} else if got != 0 {
			t.Errorf("identical arrays diff = %v", got)
		}
		if ctx.Rank() == 1 {
			y.Set(ctx, index.Point{6}, 3.5)
		}
		ctx.Barrier()
		if got, err := MaxAbsDiff(ctx, x, y); err != nil {
			return err
		} else if got != 2.5 {
			t.Errorf("diff = %v", got)
		}
		return nil
	})
}
