package darray

// End-to-end memory-budget tests: the planner's peak estimate is checked
// against the measured wire-buffer gauge on a live machine, and budgeted
// redistributions are compared bit-for-bit against unbounded ones.

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/redist"
)

// gatherAfterRedist runs fill -> redistribute(opts) -> gather on a fresh
// 4-rank machine and returns the gathered contents and the machine's peak
// resident wire bytes.
func gatherAfterRedist(t *testing.T, dom index.Domain, mk1, mk2 func(m *machine.Machine) *dist.Distribution, opts ...RedistOption) ([]float64, int64) {
	t.Helper()
	var out []float64
	m := run(t, 4, func(ctx *machine.Ctx) error {
		d1 := mk1(ctx.Machine())
		d2 := mk2(ctx.Machine())
		a := New(ctx, "B", dom, d1)
		a.FillFunc(ctx, val2)
		ctx.Barrier()
		if err := a.RedistributeTo(ctx, d2, opts...); err != nil {
			return err
		}
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			out = got
		}
		return nil
	})
	return out, m.Stats().PeakWireBytes()
}

// TestRedistributeMemBudgetBounded redistributes an array eight times the
// budget: the measured peak must respect the bound and the result must be
// bit-identical to the unbounded redistribution.
func TestRedistributeMemBudgetBounded(t *testing.T) {
	dom := index.Dim(4096, 1) // 32 KiB of float64 data
	const budget = 4096       // array is 8x the budget
	mk1 := func(m *machine.Machine) *dist.Distribution {
		return dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), dom, m.ProcsDim("P", 4).Whole())
	}
	mk2 := func(m *machine.Machine) *dist.Distribution {
		return dist.MustNew(dist.NewType(dist.CyclicDim(1), dist.ElidedDim()), dom, m.ProcsDim("P", 4).Whole())
	}

	free, freePeak := gatherAfterRedist(t, dom, mk1, mk2)
	if freePeak <= budget {
		t.Fatalf("unbounded peak %d not above budget %d; test would be vacuous", freePeak, budget)
	}

	bounded, boundedPeak := gatherAfterRedist(t, dom, mk1, mk2, MemBudget(budget))
	if boundedPeak > budget {
		t.Fatalf("measured peak wire bytes %d exceeds budget %d", boundedPeak, budget)
	}
	if len(free) != len(bounded) {
		t.Fatalf("gather lengths differ: %d vs %d", len(free), len(bounded))
	}
	for i := range free {
		if free[i] != bounded[i] {
			t.Fatalf("budgeted result differs from unbounded at %d: %v vs %v", i, bounded[i], free[i])
		}
	}
}

// TestRedistributeMemBudget1Dto2D crosses processor arrangements (1-D
// block -> 2-D block/block) under a budget an eighth of the array.
func TestRedistributeMemBudget1Dto2D(t *testing.T) {
	dom := index.Dim(64, 64) // 32 KiB
	const budget = 4096
	mk1 := func(m *machine.Machine) *dist.Distribution {
		return dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), dom, m.ProcsDim("P", 4).Whole())
	}
	mk2 := func(m *machine.Machine) *dist.Distribution {
		return dist.MustNew(dist.NewType(dist.BlockDim(), dist.BlockDim()), dom, m.ProcsDim("G", 2, 2).Whole())
	}

	free, _ := gatherAfterRedist(t, dom, mk1, mk2)
	bounded, boundedPeak := gatherAfterRedist(t, dom, mk1, mk2, MemBudget(budget))
	if boundedPeak > budget {
		t.Fatalf("measured peak wire bytes %d exceeds budget %d", boundedPeak, budget)
	}
	for i := range free {
		if free[i] != bounded[i] {
			t.Fatalf("budgeted result differs from unbounded at %d", i)
		}
	}
}

// TestRedistributeUnboundedExactCounts pins the no-budget path to the
// legacy direct alltoallv: payload bytes and data-message counts must
// equal the schedule-derived sums exactly.
func TestRedistributeUnboundedExactCounts(t *testing.T) {
	dom := index.Dim(50, 3)
	var before, after msg.Snapshot
	var wantBytes, wantMsgs int64
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 4).Whole()
		d1 := dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), dom, tg)
		d2 := dist.MustNew(dist.NewType(dist.CyclicDim(3), dist.ElidedDim()), dom, tg)
		a := New(ctx, "C", dom, d1)
		a.FillFunc(ctx, val2)
		ctx.Barrier()
		if ctx.Rank() == 0 {
			before = ctx.Machine().Stats().Snapshot()
			for r := 0; r < 4; r++ {
				s := redist.Build(d1, d2, r, 4)
				wantBytes += int64(s.SendBytes())
				wantMsgs += int64(s.RemoteSendCount())
			}
		}
		ctx.Barrier()
		if err := a.RedistributeTo(ctx, d2); err != nil {
			return err
		}
		ctx.Barrier()
		if ctx.Rank() == 0 {
			after = ctx.Machine().Stats().Snapshot()
		}
		ctx.Barrier()
		return nil
	})
	// Barrier messages are zero-byte, so the payload/data-message deltas
	// isolate the redistribution itself.
	if got := after.TotalBytes() - before.TotalBytes(); got != wantBytes {
		t.Errorf("unbounded redistribution moved %d payload bytes, schedules say %d", got, wantBytes)
	}
	if got := after.TotalDataMsgs() - before.TotalDataMsgs(); got != wantMsgs {
		t.Errorf("unbounded redistribution sent %d data messages, schedules say %d", got, wantMsgs)
	}
}

// TestRedistributeBudgetInfeasible: a budget no candidate can satisfy
// fails symmetrically before any data moves, leaving the old
// distribution and all values intact.
func TestRedistributeBudgetInfeasible(t *testing.T) {
	dom := index.Dim(32)
	run(t, 4, func(ctx *machine.Ctx) error {
		tg := ctx.Machine().ProcsDim("P", 4).Whole()
		d1 := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		d2 := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg)
		a := New(ctx, "D", dom, d1)
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(7 * p[0]) })
		ctx.Barrier()
		err := a.RedistributeTo(ctx, d2, MemBudget(1))
		if !errors.Is(err, redist.ErrNoPlan) {
			t.Errorf("rank %d: budget of 1 byte: got %v, want ErrNoPlan", ctx.Rank(), err)
		}
		ctx.Barrier()
		// The array must still be fully usable under the old distribution.
		if a.Epoch() != 0 {
			t.Errorf("rank %d: epoch advanced to %d on failed plan", ctx.Rank(), a.Epoch())
		}
		l := a.Local(ctx)
		l.ForEachOwned(func(p index.Point, v *float64) {
			if *v != float64(7*p[0]) {
				t.Errorf("rank %d: value at %v clobbered: %v", ctx.Rank(), p, *v)
			}
		})
		// And a feasible retry succeeds.
		if err := a.RedistributeTo(ctx, d2); err != nil {
			return err
		}
		bad := 0
		a.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
			if *v != float64(7*p[0]) {
				bad++
			}
		})
		if bad != 0 {
			t.Errorf("rank %d: %d wrong values after retry", ctx.Rank(), bad)
		}
		return nil
	})
}
