// Package darray is the distributed-array runtime of the Vienna Fortran
// Engine — the run-time representation of arrays described in paper
// §3.2.1.  Every array carries the descriptor components the paper lists:
//
//	index_dom(A)   — Array.Domain
//	dist(A)        — Array.Dist (a *dist.Distribution)
//	loc_map        — Local.Offset / Local.li (global → local storage)
//	segment        — Local.Segment (per-dimension local bounds for
//	                 regular and irregular BLOCK distributions)
//
// (connect_class(A) and alignment(C) live one level up, in
// internal/core, which manages the equivalence classes of §2.3.)
//
// Access functions follow §3.2.1: local elements are read through
// loc_map; non-local elements are fetched from the owner determined by
// dist(A).  In this in-process engine the one-sided fetch reads the
// owner's memory directly and *accounts* for the two messages a real
// engine would exchange (request + reply) in the transport's statistics
// and cost model.  All bulk communication — ghost-area exchange,
// redistribution, gather/scatter — moves real messages and therefore
// works unchanged over the TCP transport.
//
// Mutation discipline: the engine assumes the SPMD owner-computes model —
// between two barriers, an element is either written only by its owner or
// read by anyone, never both.  This is exactly the guarantee compiled
// Vienna Fortran code provides.
package darray

import (
	"fmt"
	"sync"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/redist"
)

// Array is a distributed array of float64 (Fortran REAL*8) elements.
// The handle is shared by all processors; per-processor state lives in
// locals[rank].
type Array struct {
	name   string
	dom    index.Domain
	m      *machine.Machine
	ghost  []int // symmetric ghost width per dimension
	locals []*Local
	bufs   []commBufs // per-rank reusable pack buffers (indexed like locals)
	// retired parks each rank's storage when a DISTRIBUTE replaces it,
	// keyed by distribution fingerprint; phase-alternating programs
	// bounce between a few mappings, so the next DISTRIBUTE back reuses
	// the allocation instead of growing the heap every transition.
	retired []map[string]*Local
	cache   *redist.Cache

	mu   sync.RWMutex
	dst  *dist.Distribution
	epoc int // redistribution epoch (diagnostics)

	// win is the one-sided window over the locals' storage, created
	// lazily by the first ghost exchange (winOnce gives every rank a
	// consistent view of the shared object without a barrier).  Each
	// rank re-registers its storage whenever its Local is replaced.
	winOnce sync.Once
	win     *msg.Window
}

// Option configures array creation.
type Option func(*arrOpts)

type arrOpts struct {
	ghost []int
}

// WithGhost declares symmetric overlap (ghost) areas of the given width
// per dimension, used by stencil codes; ghost cells are refreshed with
// ExchangeGhosts.  Ghosts require block-family distribution (or elision)
// in that dimension.
func WithGhost(widths ...int) Option {
	return func(o *arrOpts) { o.ghost = widths }
}

// New collectively creates a distributed array.  Every processor must
// call it with equivalent arguments (SPMD discipline); the returned
// handle is shared.  The array's elements are zero-initialized.
func New(ctx *machine.Ctx, name string, dom index.Domain, d *dist.Distribution, opts ...Option) *Array {
	var o arrOpts
	for _, op := range opts {
		op(&o)
	}
	// Validate outside the collective constructor so every rank fails
	// identically (a panic inside CollectiveOnce would leave the other
	// ranks with a nil object).
	g := o.ghost
	if g == nil {
		g = make([]int, dom.Rank())
	}
	if len(g) != dom.Rank() {
		panic(fmt.Sprintf("darray: %s: %d ghost widths for rank-%d array", name, len(g), dom.Rank()))
	}
	a := ctx.CollectiveOnce(func() any {
		return &Array{
			name:    name,
			dom:     dom,
			m:       ctx.Machine(),
			ghost:   g,
			locals:  make([]*Local, ctx.NP()),
			bufs:    make([]commBufs, ctx.NP()),
			retired: make([]map[string]*Local, ctx.NP()),
			cache:   redist.NewCache(),
			dst:     d,
		}
	}).(*Array)
	if d != nil {
		// Under SPMD discipline every rank passes an equivalent (often
		// distinct) descriptor object; allocate from the shared one so
		// its memoized per-rank tables (local grids, coordinates,
		// fingerprint) are built once instead of once per rank.
		if sd := a.Dist(); sd != nil && (sd == d || sd.Equal(d)) {
			d = sd
		}
		a.locals[ctx.Rank()] = a.allocLocal(ctx.Rank(), d)
	}
	ctx.Barrier()
	return a
}

// NewUndistributed creates the handle of a DYNAMIC array that has no
// initial distribution (paper §2.3: such an array "cannot be legally
// accessed before it has been explicitly associated with a distribution").
// Accessors panic until the first Redistribute.
func NewUndistributed(ctx *machine.Ctx, name string, dom index.Domain) *Array {
	return New(ctx, name, dom, nil)
}

// Name returns the array's declaration name.
func (a *Array) Name() string { return a.name }

// Domain returns the array's index domain.
func (a *Array) Domain() index.Domain { return a.dom }

// Ghost returns the per-dimension ghost widths.
func (a *Array) Ghost() []int { return a.ghost }

// Dist returns the current distribution (nil before the first
// association).
func (a *Array) Dist() *dist.Distribution {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.dst
}

// DistType returns the current distribution type, panicking if the array
// has not been associated with a distribution yet.
func (a *Array) DistType() dist.Type {
	d := a.Dist()
	if d == nil {
		panic(fmt.Sprintf("darray: %s accessed before association with a distribution", a.name))
	}
	return d.DistType()
}

// Distributed reports whether the array currently has a distribution.
func (a *Array) Distributed() bool { return a.Dist() != nil }

// Epoch returns the number of redistributions performed so far.
func (a *Array) Epoch() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.epoc
}

// Local returns this processor's local part.
func (a *Array) Local(ctx *machine.Ctx) *Local {
	l := a.locals[ctx.Rank()]
	if l == nil {
		panic(fmt.Sprintf("darray: %s accessed before association with a distribution", a.name))
	}
	return l
}

func (a *Array) requireDist() *dist.Distribution {
	d := a.Dist()
	if d == nil {
		panic(fmt.Sprintf("darray: %s accessed before association with a distribution", a.name))
	}
	return d
}

// Get reads a global element.  Local reads go through loc_map; remote
// reads are one-sided fetches from the owner with message accounting
// (16-byte request, 8-byte reply).
func (a *Array) Get(ctx *machine.Ctx, p index.Point) float64 {
	d := a.requireDist()
	rank := ctx.Rank()
	if d.IsLocal(rank, p) {
		return a.locals[rank].At(p)
	}
	owner := d.Owner(p)
	a.accountRMA(ctx, owner)
	return a.locals[owner].At(p)
}

// Set writes a global element on whichever processor calls it; remote
// writes are one-sided puts into the owner's memory (owner-computes
// programs never need them, but explicit reassignment phases — e.g. PIC
// particle motion — do).  Under replication every replica is updated.
func (a *Array) Set(ctx *machine.Ctx, p index.Point, v float64) {
	d := a.requireDist()
	rank := ctx.Rank()
	if d.IsLocal(rank, p) && !d.Replicated() {
		a.locals[rank].SetAt(p, v)
		return
	}
	for _, owner := range d.Owners(p) {
		if owner == rank {
			a.locals[rank].SetAt(p, v)
			continue
		}
		a.accountRMA(ctx, owner)
		a.locals[owner].SetAt(p, v)
	}
}

// accountRMA records the traffic and modeled cost of one simulated
// one-sided element access (request + reply).  owner is a view rank;
// stats, trace, and cost slots are physical-rank indexed, so both ends
// are translated before charging — otherwise a post-regroup access
// would land in another (possibly dead) rank's slot.
func (a *Array) accountRMA(ctx *machine.Ctx, owner int) {
	rank, powner := ctx.PhysRank(), ctx.PhysOf(owner)
	st := a.m.Stats()
	st.OnSend(rank, powner, 16)
	st.OnRecv(powner, rank, 16)
	st.OnSend(powner, rank, 8)
	st.OnRecv(rank, powner, 8)
	tr := a.m.Tracer()
	tr.Send(rank, powner, 16)
	tr.Recv(powner, rank, 16)
	tr.Send(powner, rank, 8)
	tr.Recv(rank, powner, 8)
	if cm := a.m.Cost(); cm != nil {
		cm.Charge(rank, 2*cm.Alpha+cm.Beta*24)
	}
}

// FillFunc sets every locally owned element to f(p).  Collective only in
// the sense that each processor fills its part; no communication.
func (a *Array) FillFunc(ctx *machine.Ctx, f func(p index.Point) float64) {
	l := a.Local(ctx)
	l.ForEachOwned(func(p index.Point, v *float64) { *v = f(p) })
}

// Fill sets every locally owned element to v.
func (a *Array) Fill(ctx *machine.Ctx, v float64) {
	a.FillFunc(ctx, func(index.Point) float64 { return v })
}

// String describes the array.
func (a *Array) String() string {
	d := a.Dist()
	if d == nil {
		return fmt.Sprintf("%s%v DYNAMIC (no distribution)", a.name, a.dom)
	}
	return fmt.Sprintf("%s%v DIST %v", a.name, a.dom, d)
}

// Local is one processor's storage for its part of an Array: a dense
// column-major block over the owned extents plus ghost margins.
type Local struct {
	rank  int
	dom   index.Domain
	grid  index.Grid // owned global indices
	shape []int      // owned counts per dim
	gLo   []int      // ghost width below (only block-family dims)
	gHi   []int      // ghost width above
	alloc []int      // allocated extents = shape + gLo + gHi
	strd  []int      // column-major strides over alloc
	data  []float64
	// fast per-dimension addressing: for single stride-1 runs the local
	// index is i - base[k]; otherwise IndexOf on the run set.
	base   []int
	simple []bool
	// segment descriptor (§3.2.1), precomputed because kernels query it
	// every sweep; nil slices when the owned set is not one contiguous
	// block per dimension.
	segLo []int
	segHi []int
	segOK bool
	// ghost-face grids, memoized per (dimension, phase): the faces only
	// depend on the owned grid and the (steady) face widths, so stencil
	// iteration asks for the same four grids per dimension every step.
	faces []faceEnt
}

type faceEnt struct {
	run index.Run
	g   index.Grid
	ok  bool
}

func (a *Array) allocLocal(rank int, d *dist.Distribution) *Local {
	g := d.LocalGrid(rank)
	r := a.dom.Rank()
	l := &Local{
		rank:   rank,
		dom:    a.dom,
		grid:   g,
		shape:  make([]int, r),
		gLo:    make([]int, r),
		gHi:    make([]int, r),
		alloc:  make([]int, r),
		strd:   make([]int, r),
		base:   make([]int, r),
		simple: make([]bool, r),
	}
	n := 1
	for k := 0; k < r; k++ {
		rs := g.Dims[k]
		l.shape[k] = rs.Count()
		if len(rs) == 1 && rs[0].Stride == 1 {
			l.simple[k] = true
			l.base[k] = rs[0].Lo
		} else if l.shape[k] == 0 {
			l.simple[k] = true
			l.base[k] = 0
		}
		if w := a.ghost[k]; w > 0 && l.shape[k] > 0 {
			if !l.simple[k] {
				panic(fmt.Sprintf("darray: %s: ghost areas need a contiguous (block-family) dimension %d, distribution is %v",
					a.name, k+1, d.DistType()))
			}
			// ghosts clipped at the domain boundary
			if lo := l.base[k] - w; lo < a.dom.Lo[k] {
				l.gLo[k] = l.base[k] - a.dom.Lo[k]
			} else {
				l.gLo[k] = w
			}
			hi := rs[0].Hi
			if hi+w > a.dom.Hi[k] {
				l.gHi[k] = a.dom.Hi[k] - hi
			} else {
				l.gHi[k] = w
			}
		}
		l.alloc[k] = l.shape[k] + l.gLo[k] + l.gHi[k]
		l.strd[k] = n
		n *= l.alloc[k]
	}
	l.data = make([]float64, n)
	l.segLo = make([]int, r)
	l.segHi = make([]int, r)
	l.segOK = true
	for k, rs := range g.Dims {
		if len(rs) != 1 || rs[0].Stride != 1 {
			l.segLo, l.segHi, l.segOK = nil, nil, false
			break
		}
		l.segLo[k], l.segHi[k] = rs[0].Lo, rs[0].Hi
	}
	return l
}

// takeLocal returns a recycled Local for d — zeroed, so it is
// indistinguishable from a fresh allocation — when one was retired under
// the same mapping (the steady state of phase-alternating DISTRIBUTE
// sequences), and allocates otherwise.
func (a *Array) takeLocal(rank int, d *dist.Distribution) *Local {
	if l, ok := a.retired[rank][d.Fingerprint()]; ok {
		delete(a.retired[rank], d.Fingerprint())
		clear(l.data)
		return l
	}
	return a.allocLocal(rank, d)
}

// maxRetired bounds how many mappings' storage a rank parks; programs
// alternating among more distributions than this fall back to allocation.
const maxRetired = 4

// retireLocal parks replaced storage for a later DISTRIBUTE back to the
// same mapping.
func (a *Array) retireLocal(rank int, d *dist.Distribution, l *Local) {
	m := a.retired[rank]
	if m == nil {
		m = make(map[string]*Local, maxRetired)
		a.retired[rank] = m
	}
	fp := d.Fingerprint()
	if _, ok := m[fp]; !ok && len(m) >= maxRetired {
		return
	}
	m[fp] = l
}

// Rank returns the owning processor's rank.
func (l *Local) Rank() int { return l.rank }

// Grid returns the owned global index set.
func (l *Local) Grid() index.Grid { return l.grid }

// Shape returns the owned extents per dimension (without ghosts).
func (l *Local) Shape() []int { return l.shape }

// Count returns the number of owned elements.
func (l *Local) Count() int { return l.grid.Count() }

// Data exposes the raw local storage (owned + ghost cells, column-major
// over AllocShape).  Kernels use it with Offset for index-free loops.
func (l *Local) Data() []float64 { return l.data }

// AllocShape returns the allocated extents including ghosts.
func (l *Local) AllocShape() []int { return l.alloc }

// GhostLo returns the below-ghost widths actually allocated (clipped at
// domain boundaries).
func (l *Local) GhostLo() []int { return l.gLo }

// GhostHi returns the above-ghost widths actually allocated.
func (l *Local) GhostHi() []int { return l.gHi }

// Segment returns the owned global bounds per dimension when every
// dimension is contiguous; ok is false otherwise (the `segment`
// descriptor of §3.2.1).  The returned slices are shared (the descriptor
// is precomputed once per local allocation) and must not be modified.
func (l *Local) Segment() (lo, hi []int, ok bool) {
	return l.segLo, l.segHi, l.segOK
}

// face returns the owned grid with dimension k replaced by run r,
// memoized per (dimension, phase) slot: ghost exchange requests the same
// four faces per dimension on every stencil step, so after the first
// exchange this allocates nothing.  Only the owning rank calls it.
func (l *Local) face(k, slot int, r index.Run) index.Grid {
	if l.faces == nil {
		l.faces = make([]faceEnt, 4*len(l.grid.Dims))
	}
	e := &l.faces[4*k+slot]
	if !e.ok || e.run != r {
		g := index.Grid{Dims: make([]index.RunSet, len(l.grid.Dims))}
		copy(g.Dims, l.grid.Dims)
		g.Dims[k] = index.RunSet{r}
		e.run, e.g, e.ok = r, g, true
	}
	return e.g
}

// li returns the local storage index of global index i along dimension k
// (including the ghost offset).  For contiguous dimensions, indices up to
// the allocated ghost margins are valid.
func (l *Local) li(k, i int) int {
	if l.simple[k] {
		return i - l.base[k] + l.gLo[k]
	}
	pos := l.grid.Dims[k].IndexOf(i)
	if pos < 0 {
		panic(fmt.Sprintf("darray: global index %d of dim %d not local to rank %d", i, k+1, l.rank))
	}
	return pos + l.gLo[k]
}

// Offset returns the storage offset of global point p (the loc_map of
// §3.2.1).  Ghost cells of contiguous dimensions are addressable.
func (l *Local) Offset(p index.Point) int {
	off := 0
	for k, i := range p {
		li := l.li(k, i)
		if li < 0 || li >= l.alloc[k] {
			panic(fmt.Sprintf("darray: point %v outside local allocation of rank %d (dim %d)", p, l.rank, k+1))
		}
		off += li * l.strd[k]
	}
	return off
}

// At reads the element at global point p (must be local or ghost).
func (l *Local) At(p index.Point) float64 { return l.data[l.Offset(p)] }

// SetAt writes the element at global point p (must be local or ghost).
func (l *Local) SetAt(p index.Point, v float64) { l.data[l.Offset(p)] = v }

// Owns reports whether global point p is owned (ghosts excluded).
func (l *Local) Owns(p index.Point) bool { return l.grid.Contains(p) }

// ForEachOwned calls f with every owned global point and a pointer to its
// storage.  The point is reused between calls.  Internally this walks the
// owned set span by span (Grid.ForEachRun): the storage offset is
// computed once per innermost run and advanced by a constant step, so
// filling and reducing stay off the per-point loc_map path.
func (l *Local) ForEachOwned(f func(p index.Point, v *float64)) {
	l.grid.ForEachRun(func(p index.Point, r index.Run) bool {
		row := l.rowOffset(p)
		if li0, step, ok := l.dimSpan(0, r); ok {
			off := row + li0*l.strd[0]
			st := step * l.strd[0]
			for i := r.Lo; i <= r.Hi; i += r.Stride {
				p[0] = i
				f(p, &l.data[off])
				off += st
			}
		} else {
			for i := r.Lo; i <= r.Hi; i += r.Stride {
				p[0] = i
				f(p, &l.data[row+l.li(0, i)*l.strd[0]])
			}
		}
		return true
	})
}

// Stride returns the column-major storage strides (over AllocShape).
func (l *Local) Stride() []int { return l.strd }
