package darray

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/msg"
)

// Run-based data movement.  All bulk transfers (redistribution, ghost
// faces, gather/scatter) move the elements of an index.Grid in canonical
// enumeration order.  Instead of visiting every point through a closure
// and computing its storage offset from scratch (a per-element walk over
// all dimensions), the routines here iterate Grid.ForEachRun: the offset
// of the outer dimensions is computed once per innermost span, the span
// itself advances by a constant storage step, and values are encoded into
// (or decoded from) the wire-format []byte directly — no intermediate
// []float64 and, with recycled buffers, no per-iteration allocation.

// dimSpan returns affine storage addressing for run r along dimension k:
// the local index of r.Lo and the local-index step between consecutive
// run elements.  ok is false when the run does not map to an arithmetic
// progression in local storage (it straddles several runs of a
// non-contiguous owned set), in which case callers fall back to
// per-element addressing.
//
// For contiguous (simple) dimensions the mapping is i - base, which is
// affine for any stride and also covers ghost indices outside the owned
// set.  For a non-contiguous dimension the local index is the position in
// the owned RunSet enumeration; that is affine exactly when r lies inside
// a single owned run and r.Stride is a multiple of that run's stride —
// true for every transfer grid produced by per-dimension intersection
// with a single-run distribution, and checked here rather than assumed.
func (l *Local) dimSpan(k int, r index.Run) (li0, step int, ok bool) {
	if l.simple[k] {
		return r.Lo - l.base[k] + l.gLo[k], r.Stride, true
	}
	pos := 0
	for _, lr := range l.grid.Dims[k] {
		if r.Lo >= lr.Lo && r.Lo <= lr.Hi {
			if (r.Lo-lr.Lo)%lr.Stride != 0 || r.Hi > lr.Hi || r.Stride%lr.Stride != 0 {
				return 0, 0, false
			}
			return pos + (r.Lo-lr.Lo)/lr.Stride + l.gLo[k], r.Stride / lr.Stride, true
		}
		pos += lr.Count()
	}
	return 0, 0, false
}

// rowOffset returns the storage offset contribution of dimensions >= 1 of
// point p (the per-span constant part of the loc_map).
func (l *Local) rowOffset(p index.Point) int {
	off := 0
	for k := 1; k < len(p); k++ {
		off += l.li(k, p[k]) * l.strd[k]
	}
	return off
}

// appendPacked appends the wire encoding (8 bytes per element, canonical
// grid order — identical to msg.EncodeFloat64s(packGrid(l, g))) of the
// values at g's points to buf and returns the extended slice.  Reusing
// the returned buffer across calls makes steady-state packing
// allocation-free apart from the span iterator itself.
func (l *Local) appendPacked(buf []byte, g index.Grid) []byte {
	var off int
	buf, off = msg.GrowFloat64s(buf, g.Count())
	data := l.data
	g.ForEachRun(func(p index.Point, r index.Run) bool {
		row := l.rowOffset(p)
		if li0, step, ok := l.dimSpan(0, r); ok {
			so := row + li0*l.strd[0]
			st := step * l.strd[0]
			for n := r.Count(); n > 0; n-- {
				msg.PutFloat64(buf, off, data[so])
				off += 8
				so += st
			}
		} else {
			for i := r.Lo; i <= r.Hi; i += r.Stride {
				msg.PutFloat64(buf, off, data[row+l.li(0, i)*l.strd[0]])
				off += 8
			}
		}
		return true
	})
	return buf
}

// unpackWire stores a wire payload (canonical grid order) at g's points —
// the fused decode+unpack counterpart of appendPacked.  The payload
// length must match the grid exactly.
func (l *Local) unpackWire(g index.Grid, buf []byte) {
	if n := msg.Float64Count(buf); n != g.Count() {
		panic(fmt.Sprintf("darray: unpack count mismatch: %d points, %d values", g.Count(), n))
	}
	off := 0
	data := l.data
	g.ForEachRun(func(p index.Point, r index.Run) bool {
		row := l.rowOffset(p)
		if li0, step, ok := l.dimSpan(0, r); ok {
			do := row + li0*l.strd[0]
			st := step * l.strd[0]
			for n := r.Count(); n > 0; n-- {
				data[do] = msg.GetFloat64(buf, off)
				off += 8
				do += st
			}
		} else {
			for i := r.Lo; i <= r.Hi; i += r.Stride {
				data[row+l.li(0, i)*l.strd[0]] = msg.GetFloat64(buf, off)
				off += 8
			}
		}
		return true
	})
}

// AppendPacked appends the wire encoding (8 bytes per element, canonical
// grid order) of the values at g's points to buf and returns the extended
// slice.  Every point of g must be addressable on this Local.  This is the
// exported entry the checkpoint subsystem uses to serialize local spans
// with the same fused pack+encode path redistribution uses.
func (l *Local) AppendPacked(buf []byte, g index.Grid) []byte {
	return l.appendPacked(buf, g)
}

// UnpackWire stores a wire payload (canonical grid order, as produced by
// AppendPacked) at g's points — the restore-side counterpart used by the
// checkpoint subsystem.  The payload length must match the grid exactly.
func (l *Local) UnpackWire(g index.Grid, buf []byte) {
	l.unpackWire(g, buf)
}

// unpackSelect stores at g's points the values found in buf, where buf is
// the canonical wire packing of the (super)grid src with g ⊆ src — the
// local-select half of allgather-based redistribution: a peer published
// its whole owned part, and this rank picks out just the spans it needs.
// Positions are the src enumeration's linear indices (dimension 0
// fastest, matching appendPacked's order).
func (l *Local) unpackSelect(g, src index.Grid, buf []byte) error {
	if n := msg.Float64Count(buf); n != src.Count() {
		return fmt.Errorf("darray: select: %d values for a %d-point source grid", n, src.Count())
	}
	rank := g.Rank()
	strides := make([]int, rank)
	mult := 1
	for k := 0; k < rank; k++ {
		strides[k] = mult
		mult *= src.Dims[k].Count()
	}
	data := l.data
	outside := false
	g.ForEachRun(func(p index.Point, r index.Run) bool {
		rowPos := 0
		for k := 1; k < rank; k++ {
			pos := src.Dims[k].IndexOf(p[k])
			if pos < 0 {
				outside = true
				return false
			}
			rowPos += pos * strides[k]
		}
		row := l.rowOffset(p)
		for i := r.Lo; i <= r.Hi; i += r.Stride {
			pos := src.Dims[0].IndexOf(i)
			if pos < 0 {
				outside = true
				return false
			}
			data[row+l.li(0, i)*l.strd[0]] = msg.GetFloat64(buf, 8*(rowPos+pos))
		}
		return true
	})
	if outside {
		return fmt.Errorf("darray: select: transfer grid not contained in source grid")
	}
	return nil
}

// copyGrid copies the values at g's points from src into dst (both must
// address every point of g) — the span-loop form of the redistribution
// local move and the NOTRANSFER keep.
func copyGrid(dst, src *Local, g index.Grid) {
	sd, dd := src.data, dst.data
	g.ForEachRun(func(p index.Point, r index.Run) bool {
		srow, drow := src.rowOffset(p), dst.rowOffset(p)
		sli, sstep, sok := src.dimSpan(0, r)
		dli, dstep, dok := dst.dimSpan(0, r)
		if sok && dok {
			so := srow + sli*src.strd[0]
			do := drow + dli*dst.strd[0]
			sst, dst0 := sstep*src.strd[0], dstep*dst.strd[0]
			if sst == 1 && dst0 == 1 {
				copy(dd[do:do+r.Count()], sd[so:so+r.Count()])
				return true
			}
			for n := r.Count(); n > 0; n-- {
				dd[do] = sd[so]
				so += sst
				do += dst0
			}
			return true
		}
		for i := r.Lo; i <= r.Hi; i += r.Stride {
			dd[drow+dst.li(0, i)*dst.strd[0]] = sd[srow+src.li(0, i)*src.strd[0]]
		}
		return true
	})
}

// commBufs is one processor's reusable communication scratch: per-peer
// redistribution send buffers, the alltoall views passed to the
// transport, and the ghost-face pack buffer.  Like locals, each rank
// touches only its own entry, so no locking is needed.  Buffers may be
// handed to Endpoint.Send and reused immediately after it returns (the
// transport finishes reading them first — see msg.Endpoint).
type commBufs struct {
	send     [][]byte // per-peer pack buffers, reused across redistributions
	views    [][]byte // per-call send views handed to AlltoallvSched
	recvFrom []bool
	face     []byte // ghost-face pack buffer
	stream   []byte // single just-in-time pack buffer for streamed rounds
}

// sendBuf returns the peer's recycled pack buffer, emptied, with capacity
// for count elements (sized once from the cached schedule).
func (b *commBufs) sendBuf(np, peer, count int) []byte {
	if b.send == nil {
		b.send = make([][]byte, np)
	}
	buf := b.send[peer]
	if cap(buf) < 8*count {
		buf = make([]byte, 0, 8*count)
		b.send[peer] = buf
	}
	return buf[:0]
}

// streamBuf returns the single recycled streaming pack buffer, emptied,
// with capacity for count elements.  Unlike sendBuf there is one buffer
// total, not one per peer: streamed (pairwise) rounds pack one peer at a
// time and hand the buffer to Send before packing the next, which is
// exactly what keeps their peak residency to a single transfer.
func (b *commBufs) streamBuf(count int) []byte {
	if cap(b.stream) < 8*count {
		b.stream = make([]byte, 0, 8*count)
	}
	return b.stream[:0]
}

// alltoallScratch returns the cleared per-call send views and expected-
// receive flags.
func (b *commBufs) alltoallScratch(np int) ([][]byte, []bool) {
	if b.views == nil {
		b.views = make([][]byte, np)
		b.recvFrom = make([]bool, np)
	}
	for i := range b.views {
		b.views[i] = nil
		b.recvFrom[i] = false
	}
	return b.views, b.recvFrom
}
