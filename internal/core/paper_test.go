package core

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/query"
)

// run executes an SPMD body over a fresh machine + engine.
func run(t *testing.T, np int, body func(ctx *machine.Ctx, e *Engine) error) *machine.Machine {
	t.Helper()
	m := machine.New(np)
	t.Cleanup(func() { m.Close() })
	e := NewEngine(m)
	if err := m.Run(func(ctx *machine.Ctx) error { return body(ctx, e) }); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPaperExample1 reproduces the paper's Example 1:
//
//	PARAMETER (M=2)
//	PROCESSORS R(1:M,1:M)
//	REAL C(10,10,10) DIST(BLOCK,BLOCK,:) TO R
//	REAL D(10,10,10) ALIGN D(I,J,K) WITH C(J,I,K)
//
// "δC(i,j,k) = {R(⌈i/5⌉,⌈j/5⌉)} for all k" and "the resulting alignment
// function maps each index triplet (i,j,k) in I^D to (j,i,k) in I^C".
func TestPaperExample1(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx, e *Engine) error {
		r := e.Machine().Procs("R", [2]int{1, 2}, [2]int{1, 2})
		c := e.MustDeclare(ctx, Decl{
			Name: "C", Domain: index.Dim(10, 10, 10),
			Static: &DistSpec{
				Type:   dist.NewType(dist.BlockDim(), dist.BlockDim(), dist.ElidedDim()),
				Target: r.Whole(),
			},
		})
		d := e.MustDeclare(ctx, Decl{
			Name: "D", Domain: index.Dim(10, 10, 10),
			StaticAlign: &dist.Alignment{Maps: []dist.AxisMap{dist.Axis(1), dist.Axis(0), dist.Axis(2)}},
			AlignWith:   "C",
		})
		if ctx.Rank() != 0 {
			return nil
		}
		for _, tc := range []struct{ i, j, k int }{{1, 1, 1}, {6, 3, 5}, {3, 6, 10}, {10, 10, 2}} {
			p := index.Point{tc.i, tc.j, tc.k}
			// δC(i,j,k) = R(ceil(i/5), ceil(j/5)) as a rank
			wantCoords := []int{(tc.i-1)/5 + 1, (tc.j-1)/5 + 1}
			if got, want := c.Dist().Owner(p), r.RankOf(wantCoords); got != want {
				t.Errorf("δC%v = %d want %d", p, got, want)
			}
			// δD(i,j,k) = δC(j,i,k)
			if got, want := d.Dist().Owner(p), c.Dist().Owner(index.Point{tc.j, tc.i, tc.k}); got != want {
				t.Errorf("δD%v = %d want δC(transposed) = %d", p, got, want)
			}
		}
		if d.Dynamic() || c.Dynamic() {
			t.Error("Example 1 arrays are statically distributed")
		}
		return nil
	})
}

// TestPaperExample2 reproduces the declarations of Example 2 and checks
// the stated consequence: "C(B4) ⊇ {B4, A1, A2}; the connections ensure
// that the distribution type of A1 and A2 will always be the same as that
// of B4."
func TestPaperExample2(t *testing.T) {
	const m, n = 8, 12
	run(t, 4, func(ctx *machine.Ctx, e *Engine) error {
		r2 := e.Machine().Procs("R", [2]int{1, 2}, [2]int{1, 2})
		b1 := e.MustDeclare(ctx, Decl{Name: "B1", Domain: index.Dim(m), Dynamic: true})
		b2 := e.MustDeclare(ctx, Decl{Name: "B2", Domain: index.Dim(n), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		rng := dist.Range{
			dist.NewPattern(dist.PBlock(), dist.PBlock()),
			dist.NewPattern(dist.PAny(), dist.PCyclic(1)),
		}
		b3 := e.MustDeclare(ctx, Decl{Name: "B3", Domain: index.Dim(n, n), Dynamic: true,
			Range: rng, Init: &DistSpec{Type: dist.NewType(dist.BlockDim(), dist.CyclicDim(1)), Target: r2.Whole()}})
		b4 := e.MustDeclare(ctx, Decl{Name: "B4", Domain: index.Dim(n, n), Dynamic: true,
			Range: rng, Init: &DistSpec{Type: dist.NewType(dist.BlockDim(), dist.CyclicDim(1)), Target: r2.Whole()}})
		a1 := e.MustDeclare(ctx, Decl{Name: "A1", Domain: index.Dim(n, n), Dynamic: true,
			ConnectTo: "B4"})
		a2 := e.MustDeclare(ctx, Decl{Name: "A2", Domain: index.Dim(n, n), Dynamic: true,
			ConnectTo: "B4", Align: &dist.Alignment{Maps: []dist.AxisMap{dist.Axis(0), dist.Axis(1)}}})

		if ctx.Rank() == 0 {
			if b1.Distributed() {
				t.Error("B1 has no initial distribution")
			}
			if !b2.Distributed() || !b2.DistType().Equal(dist.NewType(dist.BlockDim())) {
				t.Error("B2 initial distribution wrong")
			}
			members := b4.ClassMembers()
			if len(members) != 3 || members[0] != b4 || members[1] != a1 || members[2] != a2 {
				t.Errorf("C(B4) = %v", members)
			}
			if len(b3.ClassMembers()) != 1 {
				t.Error("B3 class should be {B3}")
			}
			if !a1.DistType().Equal(b4.DistType()) {
				t.Errorf("A1 type %v != B4 type %v", a1.DistType(), b4.DistType())
			}
			if a1.Conn() != ConnExtract || a2.Conn() != ConnAlign {
				t.Error("connection kinds wrong")
			}
			if a1.PrimaryArray() != b4 {
				t.Error("primary wrong")
			}
		}
		ctx.Barrier()
		// Redistributing B4 moves A1, A2 with it and keeps types equal.
		e.MustDistribute(ctx, []*Array{b4}, DimsOf(dist.BlockDim(), dist.BlockDim()).To(r2.Whole()))
		if ctx.Rank() == 0 {
			if !a1.DistType().Equal(b4.DistType()) {
				t.Errorf("after DISTRIBUTE, A1 %v != B4 %v", a1.DistType(), b4.DistType())
			}
			// identity alignment over BLOCK derives a general block with
			// identical segments — owner equality is the real invariant
			for _, p := range []index.Point{{1, 1}, {5, 9}, {12, 12}} {
				if a2.Dist().Owner(p) != b4.Dist().Owner(p) {
					t.Errorf("A2 owner%v diverged from B4", p)
				}
			}
		}
		_ = b1
		return nil
	})
}

// TestPaperExample3 executes the distribute statements of Example 3:
//
//	DISTRIBUTE B1 :: (BLOCK)
//	K = expr
//	DISTRIBUTE B1,B2 :: (CYCLIC(K))
//	DISTRIBUTE B3 :: (BLOCK, CYCLIC)
//	DISTRIBUTE B4 :: (=B1, CYCLIC(3))
//
// After the last statement, "B4 and the associated secondary arrays A1
// and A2 are distributed as (CYCLIC(k'), CYCLIC(3))".
func TestPaperExample3(t *testing.T) {
	const m, n = 8, 12
	run(t, 4, func(ctx *machine.Ctx, e *Engine) error {
		r2 := e.Machine().Procs("R2", [2]int{1, 2}, [2]int{1, 2})
		b1 := e.MustDeclare(ctx, Decl{Name: "B1", Domain: index.Dim(m), Dynamic: true})
		b2 := e.MustDeclare(ctx, Decl{Name: "B2", Domain: index.Dim(n), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		b4 := e.MustDeclare(ctx, Decl{Name: "B4", Domain: index.Dim(n, n), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim(), dist.CyclicDim(1)), Target: r2.Whole()}})
		a1 := e.MustDeclare(ctx, Decl{Name: "A1", Domain: index.Dim(n, n), Dynamic: true, ConnectTo: "B4"})

		e.MustDistribute(ctx, []*Array{b1}, DimsOf(dist.BlockDim()))
		if ctx.Rank() == 0 && !b1.DistType().Equal(dist.NewType(dist.BlockDim())) {
			t.Errorf("B1 = %v", b1.DistType())
		}
		ctx.Barrier()

		k := 2 // K = expr
		e.MustDistribute(ctx, []*Array{b1, b2}, DimsOf(dist.CyclicDim(k)))
		if ctx.Rank() == 0 {
			if !b1.DistType().Equal(dist.NewType(dist.CyclicDim(2))) || !b2.DistType().Equal(dist.NewType(dist.CyclicDim(2))) {
				t.Errorf("B1/B2 after CYCLIC(K): %v %v", b1.DistType(), b2.DistType())
			}
		}
		ctx.Barrier()

		// DISTRIBUTE B4 :: (=B1, CYCLIC(3)) TO R2
		e.MustDistribute(ctx, []*Array{b4},
			Dims(From("B1"), Lit(dist.CyclicDim(3))).To(r2.Whole()))
		if ctx.Rank() == 0 {
			want := dist.NewType(dist.CyclicDim(2), dist.CyclicDim(3))
			if !b4.DistType().Equal(want) {
				t.Errorf("B4 = %v want %v", b4.DistType(), want)
			}
			if !a1.DistType().Equal(want) {
				t.Errorf("A1 = %v want %v (follows its primary)", a1.DistType(), want)
			}
		}
		return nil
	})
}

func TestRangeViolation(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		rng := dist.Range{dist.NewPattern(dist.PBlock())}
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Range: rng, Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		err := e.Distribute(ctx, []*Array{b}, DimsOf(dist.CyclicDim(1)))
		if err == nil || !strings.Contains(err.Error(), "violates") {
			t.Errorf("range violation not caught: %v", err)
		}
		// the array keeps its old distribution
		if !b.DistType().Equal(dist.NewType(dist.BlockDim())) {
			t.Error("failed DISTRIBUTE must not change the distribution")
		}
		// initial distribution violating the range is caught at declaration
		_, err = e.Declare(ctx, Decl{Name: "BAD", Domain: index.Dim(8), Dynamic: true,
			Range: rng, Init: &DistSpec{Type: dist.NewType(dist.CyclicDim(4))}})
		if err == nil {
			t.Error("declaration with out-of-range initial distribution accepted")
		}
		return nil
	})
}

func TestDistributeOnSecondaryOrStaticRejected(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		s := e.MustDeclare(ctx, Decl{Name: "S", Domain: index.Dim(8),
			Static: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		a := e.MustDeclare(ctx, Decl{Name: "A", Domain: index.Dim(8), Dynamic: true, ConnectTo: "B"})
		if err := e.Distribute(ctx, []*Array{s}, DimsOf(dist.CyclicDim(1))); err == nil {
			t.Error("DISTRIBUTE on static array accepted")
		}
		if err := e.Distribute(ctx, []*Array{a}, DimsOf(dist.CyclicDim(1))); err == nil {
			t.Error("DISTRIBUTE on secondary array accepted")
		}
		return nil
	})
}

func TestNoTransferAttribute(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		a := e.MustDeclare(ctx, Decl{Name: "A", Domain: index.Dim(8), Dynamic: true, ConnectTo: "B"})
		b.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		a.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0] * 10) })
		ctx.Barrier()
		// NOTRANSFER(A): B's data moves, A's does not.
		e.MustDistribute(ctx, []*Array{b}, DimsOf(dist.CyclicDim(1)), NoTransfer(a))
		if ctx.Rank() == 0 {
			if got := b.Get(ctx, 7); got != 7 {
				t.Errorf("B(7) = %v, data should have moved", got)
			}
		}
		ctx.Barrier()
		// A's type still follows B
		if !a.DistType().Equal(b.DistType()) {
			t.Error("NOTRANSFER must still update the access function / type")
		}
		// but values did not travel: a kept only elements it already had
		if ctx.Rank() == 0 {
			// rank 0 owned 1-4 before, owns odd indices now: 1,3 kept; 5,7 zeroed
			l := a.Local(ctx)
			if l.At(index.Point{1}) != 10 || l.At(index.Point{3}) != 30 {
				t.Error("NOTRANSFER lost in-place values")
			}
			if l.At(index.Point{5}) != 0 || l.At(index.Point{7}) != 0 {
				t.Error("NOTRANSFER moved values it should not have")
			}
		}
		// NOTRANSFER of a non-secondary is rejected
		if err := e.Distribute(ctx, []*Array{b}, DimsOf(dist.BlockDim()), NoTransfer(b)); err == nil {
			t.Error("NOTRANSFER of the primary itself accepted")
		}
		return nil
	})
}

func TestDistributeAlignForm(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx, e *Engine) error {
		c := e.MustDeclare(ctx, Decl{Name: "C", Domain: index.Dim(8, 8),
			Static: &DistSpec{Type: dist.NewType(dist.BlockDim(), dist.ElidedDim())}})
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8, 8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.ElidedDim(), dist.BlockDim())}})
		// DISTRIBUTE B :: ALIGN B(I,J) WITH C(J,I)
		e.MustDistribute(ctx, []*Array{b}, AlignWith("C", dist.Transpose2D()))
		if ctx.Rank() == 0 {
			for _, p := range []index.Point{{1, 5}, {8, 1}, {4, 4}} {
				if b.Dist().Owner(p) != c.Dist().Owner(index.Point{p[1], p[0]}) {
					t.Errorf("aligned owner%v wrong", p)
				}
			}
		}
		return nil
	})
}

func TestAccessBeforeFirstDistributeFails(t *testing.T) {
	m := machine.New(2)
	defer m.Close()
	e := NewEngine(m)
	err := m.Run(func(ctx *machine.Ctx) error {
		b := e.MustDeclare(ctx, Decl{Name: "B1", Domain: index.Dim(8), Dynamic: true})
		b.Get(ctx, 1) // must panic: no initial distribution, no DISTRIBUTE yet
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "before association") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateDeclarationRejected(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		e.MustDeclare(ctx, Decl{Name: "X", Domain: index.Dim(4), Dynamic: true})
		ctx.Barrier()
		_, err := e.Declare(ctx, Decl{Name: "X", Domain: index.Dim(4), Dynamic: true})
		if err == nil {
			t.Error("duplicate declaration accepted")
		}
		return nil
	})
}

func TestConnectToNonPrimaryRejected(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		e.MustDeclare(ctx, Decl{Name: "A", Domain: index.Dim(8), Dynamic: true, ConnectTo: "B"})
		ctx.Barrier()
		// connecting to a secondary is forbidden (classes have one primary)
		_, err := e.Declare(ctx, Decl{Name: "A2", Domain: index.Dim(8), Dynamic: true, ConnectTo: "A"})
		if err == nil {
			t.Error("CONNECT to secondary accepted")
		}
		// connecting to a static array is forbidden
		e.MustDeclare(ctx, Decl{Name: "S", Domain: index.Dim(8),
			Static: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		ctx.Barrier()
		_, err = e.Declare(ctx, Decl{Name: "A3", Domain: index.Dim(8), Dynamic: true, ConnectTo: "S"})
		if err == nil {
			t.Error("CONNECT to static array accepted")
		}
		return nil
	})
}

func TestCallWithRestores(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		b.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		// HPF-style: restore on return
		err := b.CallWith(ctx, DistSpec{Type: dist.NewType(dist.CyclicDim(1))}, true, func() error {
			if !b.DistType().Equal(dist.NewType(dist.CyclicDim(1))) {
				t.Error("callee does not see its declared distribution")
			}
			return nil
		})
		if err != nil {
			return err
		}
		if !b.DistType().Equal(dist.NewType(dist.BlockDim())) {
			t.Error("restore=true did not restore the caller's distribution")
		}
		ctx.Barrier()
		// Vienna Fortran style: the new distribution returns to the caller
		err = b.CallWith(ctx, DistSpec{Type: dist.NewType(dist.CyclicDim(2))}, false, func() error { return nil })
		if err != nil {
			return err
		}
		if !b.DistType().Equal(dist.NewType(dist.CyclicDim(2))) {
			t.Error("restore=false should keep the callee's distribution")
		}
		// values preserved throughout
		if ctx.Rank() == 0 && b.Get(ctx, 5) != 5 {
			t.Error("values lost across CallWith")
		}
		return nil
	})
}

func TestCoreArraysWorkWithDCase(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		v := e.MustDeclare(ctx, Decl{Name: "V", Domain: index.Dim(8, 8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.ElidedDim(), dist.BlockDim())}})
		picked := ""
		_, err := query.Select(v).
			Case(func() error { picked = "columns"; return nil },
				query.P(dist.NewPattern(dist.PElided(), dist.PBlock()))).
			Case(func() error { picked = "rows"; return nil },
				query.P(dist.NewPattern(dist.PBlock(), dist.PElided()))).
			Default(func() error { picked = "other"; return nil }).
			Run()
		if err != nil {
			return err
		}
		if picked != "columns" {
			t.Errorf("picked %q", picked)
		}
		if !query.IDT(v, dist.NewPattern(dist.PAny(), dist.PBlock())) {
			t.Error("IDT on core array failed")
		}
		return nil
	})
}

func TestEngineLookupAndArrays(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		e.MustDeclare(ctx, Decl{Name: "P1", Domain: index.Dim(4), Dynamic: true})
		e.MustDeclare(ctx, Decl{Name: "P2", Domain: index.Dim(4), Dynamic: true})
		ctx.Barrier()
		if ctx.Rank() == 0 {
			if _, ok := e.Lookup("P1"); !ok {
				t.Error("lookup failed")
			}
			if _, ok := e.Lookup("NOPE"); ok {
				t.Error("phantom array")
			}
			names := []string{}
			for _, a := range e.Arrays() {
				names = append(names, a.Name())
			}
			if len(names) != 2 || names[0] != "P1" || names[1] != "P2" {
				t.Errorf("arrays = %v", names)
			}
			if e.NP() != 2 {
				t.Error("NP")
			}
		}
		return nil
	})
}

// TestMigrationBetweenProcessorSections exercises "a distribution
// expression, possibly associated with a processor section" (§2.4): the
// array migrates between two disjoint halves of the machine.
func TestMigrationBetweenProcessorSections(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx, e *Engine) error {
		l := e.Machine().ProcsDim("L", 4)
		left := l.Section([3]int{1, 2, 1})  // ranks 0,1
		right := l.Section([3]int{3, 4, 1}) // ranks 2,3
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim()), Target: left}})
		b.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0] * 3) })
		ctx.Barrier()
		// only the left half owns data initially
		if ctx.Rank() <= 1 && b.Local(ctx).Count() != 4 {
			t.Errorf("rank %d should own 4 elements", ctx.Rank())
		}
		if ctx.Rank() >= 2 && b.Local(ctx).Count() != 0 {
			t.Errorf("rank %d should own nothing", ctx.Rank())
		}
		ctx.Barrier()
		// DISTRIBUTE B :: (CYCLIC) TO L(3:4)
		e.MustDistribute(ctx, []*Array{b}, DimsOf(dist.CyclicDim(1)).To(right))
		if ctx.Rank() >= 2 {
			bad := 0
			b.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
				if *v != float64(p[0]*3) {
					bad++
				}
			})
			if bad != 0 || b.Local(ctx).Count() != 4 {
				t.Errorf("rank %d: migration corrupted data (%d bad, %d owned)", ctx.Rank(), bad, b.Local(ctx).Count())
			}
		} else if b.Local(ctx).Count() != 0 {
			t.Errorf("rank %d should have handed everything off", ctx.Rank())
		}
		// gather still assembles the full array
		got, err := b.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			for i := 1; i <= 8; i++ {
				if got[i-1] != float64(i*3) {
					t.Errorf("gathered[%d] = %v", i, got[i-1])
				}
			}
		}
		return nil
	})
}

// TestReplicatedTargetSectionOnDistribute moves a 1-D array onto a 2-D
// section, replicating across the unused dimension, then back.
func TestReplicatedTargetSectionOnDistribute(t *testing.T) {
	run(t, 4, func(ctx *machine.Ctx, e *Engine) error {
		g := e.Machine().ProcsDim("G", 2, 2)
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(6), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		b.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		e.MustDistribute(ctx, []*Array{b}, DimsOf(dist.BlockDim()).To(g.Whole()))
		// every rank is now a replica owner of half the array
		if c := b.Local(ctx).Count(); c != 3 {
			t.Errorf("rank %d owns %d, want 3", ctx.Rank(), c)
		}
		bad := 0
		b.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
			if *v != float64(p[0]) {
				bad++
			}
		})
		if bad != 0 {
			t.Errorf("rank %d: replicas missing data", ctx.Rank())
		}
		// and back to the default 1-D view
		e.MustDistribute(ctx, []*Array{b}, DimsOf(dist.CyclicDim(1)))
		if s, err := b.DArray().ReduceSum(ctx); err != nil {
			return err
		} else if s != 21 {
			t.Errorf("sum = %v", s)
		}
		return nil
	})
}

// TestConnectDoesNotCrossScopes checks §2.3 rule 5: "The connect relation
// does not extend across procedure boundaries."  Engines model procedure
// scopes; connecting to an array declared in a different scope fails.
func TestConnectDoesNotCrossScopes(t *testing.T) {
	m := machine.New(2)
	defer m.Close()
	outer := NewEngine(m)
	inner := NewEngine(m)
	if err := m.Run(func(ctx *machine.Ctx) error {
		outer.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		ctx.Barrier()
		_, err := inner.Declare(ctx, Decl{Name: "A", Domain: index.Dim(8), Dynamic: true, ConnectTo: "B"})
		if err == nil || !strings.Contains(err.Error(), "unknown array") {
			t.Errorf("cross-scope CONNECT accepted: %v", err)
		}
		// the same name may be redeclared independently in the new scope
		if _, err := inner.Declare(ctx, Decl{Name: "B", Domain: index.Dim(4), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.CyclicDim(1))}}); err != nil {
			t.Errorf("independent scope declaration failed: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSBlockDistribute uses S_BLOCK through the full DISTRIBUTE path.
func TestSBlockDistribute(t *testing.T) {
	run(t, 3, func(ctx *machine.Ctx, e *Engine) error {
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(12), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		b.FillFunc(ctx, func(p index.Point) float64 { return float64(p[0]) })
		ctx.Barrier()
		e.MustDistribute(ctx, []*Array{b}, DimsOf(dist.SBlockDim(2, 7, 3)))
		counts := []int{2, 7, 3}
		if got := b.Local(ctx).Count(); got != counts[ctx.Rank()] {
			t.Errorf("rank %d owns %d want %d", ctx.Rank(), got, counts[ctx.Rank()])
		}
		bad := 0
		b.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
			if *v != float64(p[0]) {
				bad++
			}
		})
		if bad != 0 {
			t.Errorf("S_BLOCK redistribution corrupted %d values", bad)
		}
		// IDT sees the irregular kind
		if !query.IDT(b, dist.NewPattern(dist.PSBlock())) {
			t.Error("IDT(S_BLOCK(*)) failed")
		}
		return nil
	})
}
