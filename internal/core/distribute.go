package core

import (
	"fmt"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/trace"
)

// DimExpr is one component of a distribution expression in a DISTRIBUTE
// statement.  Besides literal specifiers, Vienna Fortran lets a component
// extract another array's current per-dimension distribution — paper
// Example 3 redistributes B4 as "(=B1, CYCLIC(3))", giving B4's first
// dimension whatever distribution B1 has *at execution time*.
type DimExpr interface {
	eval(e *Engine) (dist.DimSpec, error)
}

type litDim struct{ spec dist.DimSpec }

func (l litDim) eval(*Engine) (dist.DimSpec, error) { return l.spec, nil }

// Lit lifts a literal dimension specifier into a DimExpr.
func Lit(spec dist.DimSpec) DimExpr { return litDim{spec} }

type fromDim struct {
	name string
	dim  int
}

func (f fromDim) eval(e *Engine) (dist.DimSpec, error) {
	src, ok := e.Lookup(f.name)
	if !ok {
		return dist.DimSpec{}, fmt.Errorf("core: distribution extraction from unknown array %s", f.name)
	}
	if !src.Distributed() {
		return dist.DimSpec{}, fmt.Errorf("core: distribution extraction from %s before it has a distribution", f.name)
	}
	t := src.DistType()
	if f.dim < 0 || f.dim >= t.Rank() {
		return dist.DimSpec{}, fmt.Errorf("core: extraction of dimension %d from rank-%d array %s", f.dim+1, t.Rank(), f.name)
	}
	return t.Dims[f.dim], nil
}

// FromDim extracts dimension dim (0-based) of the named array's current
// distribution type.
func FromDim(name string, dim int) DimExpr { return fromDim{name, dim} }

// From extracts the single dimension of a one-dimensional array's current
// distribution type ("=B1" of paper Example 3).
func From(name string) DimExpr { return fromDim{name, 0} }

// Expr is the right-hand side of a DISTRIBUTE statement: either a
// distribution expression (Dims, possibly with a target section) or an
// alignment specification relative to another array.
type Expr struct {
	dims   []DimExpr
	target dist.Target

	alignWith string
	align     *dist.Alignment
}

// Dims builds a distribution-expression Expr.
func Dims(dims ...DimExpr) Expr { return Expr{dims: dims} }

// DimsOf builds a distribution-expression Expr from literal specifiers.
func DimsOf(specs ...dist.DimSpec) Expr {
	dims := make([]DimExpr, len(specs))
	for i, s := range specs {
		dims[i] = Lit(s)
	}
	return Expr{dims: dims}
}

// ExprOf lifts a resolved DistSpec into an Expr.
func ExprOf(spec DistSpec) Expr {
	ex := DimsOf(spec.Type.Dims...)
	ex.target = spec.Target
	return ex
}

// To attaches a target processor section ("TO R(...)").
func (x Expr) To(target dist.Target) Expr {
	x.target = target
	return x
}

// AlignWith builds an alignment-specification Expr: the distributed
// array's new distribution is CONSTRUCT(align, δ_other).
func AlignWith(name string, align dist.Alignment) Expr {
	return Expr{alignWith: name, align: &align}
}

// evalFor computes the new distribution for primary array b, resolving
// an omitted target over the executing view.
func (x Expr) evalFor(ctx *machine.Ctx, e *Engine, b *Array) (*dist.Distribution, error) {
	if x.align != nil {
		other, ok := e.Lookup(x.alignWith)
		if !ok {
			return nil, fmt.Errorf("core: DISTRIBUTE %s: alignment with unknown array %s", b.name, x.alignWith)
		}
		if !other.Distributed() {
			return nil, fmt.Errorf("core: DISTRIBUTE %s: alignment with undistributed array %s", b.name, x.alignWith)
		}
		return dist.Construct(*x.align, other.Dist(), b.dom)
	}
	specs := make([]dist.DimSpec, len(x.dims))
	for i, dx := range x.dims {
		s, err := dx.eval(e)
		if err != nil {
			return nil, err
		}
		specs[i] = s
	}
	typ := dist.NewType(specs...)
	if typ.Rank() != b.dom.Rank() {
		return nil, fmt.Errorf("core: DISTRIBUTE %s: expression rank %d != array rank %d", b.name, typ.Rank(), b.dom.Rank())
	}
	tg := x.target
	if tg == nil {
		tg = e.viewTarget(ctx)
	}
	return dist.New(typ, b.dom, tg)
}

// DistOption configures a DISTRIBUTE statement; mark arrays NOTRANSFER
// with core.NoTransfer(c1, c2, ...).
type DistOption interface {
	applyDist(*distConfig)
}

type distConfig struct {
	noTransfer []*Array
	memBudget  *int64 // nil = use the engine default
}

type distOptionFunc func(*distConfig)

func (f distOptionFunc) applyDist(c *distConfig) { f(c) }

// MemBudget bounds the peak resident wire bytes per rank for this
// DISTRIBUTE statement's data transfers, overriding the engine default
// installed with Engine.SetMemBudget.  n <= 0 means unbounded (and also
// overrides a bounded engine default back to unbounded).
func MemBudget(n int64) DistOption {
	return distOptionFunc(func(c *distConfig) { c.memBudget = &n })
}

// NoTransfer lists secondary arrays whose data is not physically moved by
// the DISTRIBUTE — the paper's NOTRANSFER attribute ("only the access
// function ... is changed").  Each listed array must be a secondary of
// one of the distributed connect classes.
func NoTransfer(arrays ...*Array) DistOption {
	return distOptionFunc(func(c *distConfig) {
		c.noTransfer = append(c.noTransfer, arrays...)
	})
}

// Distribute executes
//
//	DISTRIBUTE B1, ..., Bn :: da [NOTRANSFER (C1, ..., Cm)]
//
// following §2.4/§3.2.2: da is evaluated once per primary; each primary's
// declared RANGE is enforced; each primary is redistributed with data
// transfer; every secondary array in the primaries' connect classes gets
// its distribution re-derived from its connection and is redistributed,
// with data transfer unless listed in a NoTransfer option.
//
// It is an error (wrapping ErrNotPrimary) to apply Distribute to a
// secondary or statically distributed array, and an error to list a
// NOTRANSFER array that is not a secondary of one of the primaries'
// classes.  Collective.
func (e *Engine) Distribute(ctx *machine.Ctx, primaries []*Array, expr Expr, opts ...DistOption) error {
	if len(primaries) == 0 {
		return fmt.Errorf("core: DISTRIBUTE with no arrays")
	}
	var cfg distConfig
	for _, o := range opts {
		o.applyDist(&cfg)
	}
	// Validate the NOTRANSFER set up front.
	nt := make(map[*Array]bool, len(cfg.noTransfer))
	for _, c := range cfg.noTransfer {
		ok := false
		for _, b := range primaries {
			for _, s := range b.class.secondaries {
				if s == c {
					ok = true
				}
			}
		}
		if !ok {
			return fmt.Errorf("core: NOTRANSFER array %s is not a secondary of the distributed class(es)", c.name)
		}
		nt[c] = true
	}
	for _, b := range primaries {
		if b.connKind != ConnNone {
			return fmt.Errorf("core: DISTRIBUTE applied to secondary array %s: %w", b.name, ErrNotPrimary)
		}
		if !b.dynamic {
			return fmt.Errorf("core: DISTRIBUTE applied to statically distributed array %s: %w", b.name, ErrNotPrimary)
		}
		newD, err := expr.evalFor(ctx, e, b)
		if err != nil {
			return err
		}
		budget := e.MemBudgetDefault()
		if cfg.memBudget != nil {
			budget = *cfg.memBudget
		}
		if err := e.distributeToBudget(ctx, b, newD, nt, budget); err != nil {
			return err
		}
	}
	return nil
}

// distributeTo moves one primary's class to newD under the engine's
// default memory budget.
func (e *Engine) distributeTo(ctx *machine.Ctx, b *Array, newD *dist.Distribution, nt map[*Array]bool) error {
	return e.distributeToBudget(ctx, b, newD, nt, e.MemBudgetDefault())
}

// distributeToBudget moves one primary's class to newD.  The whole
// statement is recorded as a structural trace span; the per-array
// DISTRIBUTE spans the redistributions open inside it carry the
// attributed costs.  budget bounds each member's peak resident wire
// bytes (0 = unbounded).
func (e *Engine) distributeToBudget(ctx *machine.Ctx, b *Array, newD *dist.Distribution, nt map[*Array]bool, budget int64) error {
	if !b.rng.Allows(newD.DistType()) {
		return fmt.Errorf("core: DISTRIBUTE %s :: %v violates declared %v: %w", b.name, newD.DistType(), b.rng, ErrRangeViolation)
	}
	defer ctx.Tracer().BeginSpan(ctx.Rank(), trace.CatStmt, "DISTRIBUTE "+b.name).End()
	var bopt []darray.RedistOption
	if budget > 0 {
		bopt = append(bopt, darray.MemBudget(budget))
	}
	// Step 1+2 (§3.2.2): new distribution and access functions for B.
	if err := b.arr.RedistributeTo(ctx, newD, bopt...); err != nil {
		return fmt.Errorf("core: DISTRIBUTE %s: %w", b.name, err)
	}
	// Step 2+3: derive and communicate for every connected array.
	for _, c := range b.class.secondaries {
		cd, err := c.derive(newD)
		if err != nil {
			return fmt.Errorf("core: DISTRIBUTE %s: deriving %s: %w", b.name, c.name, err)
		}
		ropts := bopt
		if nt[c] {
			ropts = append(bopt[:len(bopt):len(bopt)], darray.NoTransfer())
		}
		if err := c.arr.RedistributeTo(ctx, cd, ropts...); err != nil {
			return fmt.Errorf("core: DISTRIBUTE %s: %w", b.name, err)
		}
	}
	return nil
}

// MustDistribute is Distribute that panics on error.
func (e *Engine) MustDistribute(ctx *machine.Ctx, primaries []*Array, expr Expr, opts ...DistOption) {
	if err := e.Distribute(ctx, primaries, expr, opts...); err != nil {
		panic(err)
	}
}
