// Package core implements the paper's primary contribution: Vienna
// Fortran's *dynamic data distributions* (paper §2.3–§2.4).
//
// It provides:
//
//   - statically and dynamically distributed array declarations, with the
//     DYNAMIC, RANGE, DIST (initial distribution) and CONNECT annotations;
//   - the connect equivalence relation: every dynamic array belongs to a
//     class C(B) with one primary array B and any number of secondary
//     arrays connected by distribution extraction ("CONNECT (=B)") or by
//     alignment; classes in different scopes are independent and do not
//     extend across procedure boundaries (§2.3, conditions 1–5);
//   - the executable DISTRIBUTE statement with the NOTRANSFER attribute,
//     implemented exactly as §3.2.2 prescribes: evaluate the new
//     distribution, derive every connected array's distribution with
//     CONSTRUCT, then COMMUNICATE for every member not in NOTRANSFER;
//   - procedure-boundary redistribution (§4): CallWith temporarily
//     redistributes an array to a callee's declared distribution, and —
//     unlike HPF, as the paper notes — returns the new distribution to
//     the caller when asked to.
//
// An Engine is a declaration scope (a procedure's environment).  All
// operations are SPMD-collective: every processor calls them in the same
// order with equivalent arguments.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ckpt"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Engine is a Vienna Fortran declaration scope bound to a machine.
type Engine struct {
	m *machine.Machine

	mu     sync.Mutex
	arrays map[string]*Array
	order  []string

	// memBudget is the default peak-resident-wire-bytes bound applied to
	// every DISTRIBUTE data transfer (0 = unbounded; see darray.MemBudget).
	memBudget atomic.Int64

	// ckptMu guards ckptOpts (function-valued fields rule out an atomic).
	ckptMu   sync.Mutex
	ckptOpts ckpt.Options
}

// SetCkptOptions installs the parallel-I/O options (I/O server count,
// redundancy mode, retention, filesystem and retry policy) applied to
// every Checkpoint/Restore/Recover through this engine.  The SPMD
// contract applies: every rank must observe the same value at each
// collective.
func (e *Engine) SetCkptOptions(o ckpt.Options) {
	e.ckptMu.Lock()
	e.ckptOpts = o
	e.ckptMu.Unlock()
}

// CkptOptions returns the engine's checkpoint I/O options.
func (e *Engine) CkptOptions() ckpt.Options {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return e.ckptOpts
}

// SetMemBudget installs a default redistribution memory budget: every
// DISTRIBUTE (and CallWith restore) executed through this engine bounds
// its peak resident wire bytes per rank to n, unless a statement-level
// core.MemBudget option overrides it.  n <= 0 restores the unbounded
// default.  Safe to call from any rank, but the SPMD contract applies:
// every rank must observe the same value at each collective.
func (e *Engine) SetMemBudget(n int64) { e.memBudget.Store(n) }

// MemBudgetDefault returns the engine's default redistribution memory
// budget (0 = unbounded).
func (e *Engine) MemBudgetDefault() int64 { return e.memBudget.Load() }

// NewEngine creates a scope on the given machine.  Collective-by-
// convention: create it before Machine.Run (it is plain construction, no
// communication).
func NewEngine(m *machine.Machine) *Engine {
	return &Engine{m: m, arrays: make(map[string]*Array)}
}

// Machine returns the underlying machine.
func (e *Engine) Machine() *machine.Machine { return e.m }

// NP returns the number of executing processors — the paper's $NP
// intrinsic ("Vienna Fortran supports an intrinsic function $NP which
// returns the number of processors being used to execute the program").
func (e *Engine) NP() int { return e.m.NP() }

// DefaultTarget returns the whole machine viewed as a one-dimensional
// processor array $P(1:NP), the target used when a declaration omits
// "TO R(...)".
func (e *Engine) DefaultTarget() dist.Target {
	return e.m.ProcsDim("$P", e.m.NP()).Whole()
}

// viewTarget is DefaultTarget restricted to the processors that actually
// execute: on membership epoch 0 the whole machine, after an online
// regroup the shrunken survivor view.  Distributions resolved over the
// machine's full width on a smaller view would leave their last blocks
// owned by no executing rank — data silently dropped at the next
// DISTRIBUTE — so every declaration and DISTRIBUTE target defaults to
// the view, not the machine.
func (e *Engine) viewTarget(ctx *machine.Ctx) dist.Target {
	np := ctx.NP()
	if np == e.m.NP() {
		return e.DefaultTarget()
	}
	return e.m.ProcsDim(fmt.Sprintf("$P.%d", ctx.Epoch()), np).Whole()
}

// Lookup finds a declared array by name.
func (e *Engine) Lookup(name string) (*Array, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.arrays[name]
	return a, ok
}

// Arrays lists the declared arrays in declaration order.
func (e *Engine) Arrays() []*Array {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Array, 0, len(e.order))
	for _, n := range e.order {
		out = append(out, e.arrays[n])
	}
	return out
}

// ConnKind tells how a secondary array is connected to its primary.
type ConnKind int

// Connection kinds.
const (
	// ConnNone marks a primary (or static) array.
	ConnNone ConnKind = iota
	// ConnExtract is distribution extraction: CONNECT (=B).
	ConnExtract
	// ConnAlign is an alignment connection: CONNECT A(I,J) WITH B(...).
	ConnAlign
)

// connectClass is the equivalence class C(B) of §2.3.
type connectClass struct {
	primary     *Array
	secondaries []*Array
}

// Decl describes one array declaration.  Exactly the information of the
// paper's annotations, in Go values:
//
//	REAL B3(N,N) DYNAMIC, RANGE((BLOCK,BLOCK),(*,CYCLIC)), DIST(BLOCK,CYCLIC)
//
// becomes
//
//	Decl{Name: "B3", Domain: index.Dim(n, n), Dynamic: true,
//	     Range: dist.Range{...}, Init: &DistSpec{Type: ...}}
type Decl struct {
	Name   string
	Domain index.Domain

	// Dynamic declares the array DYNAMIC; otherwise it is statically
	// distributed and Static must be set.
	Dynamic bool
	// Static is the fixed distribution of a non-dynamic array.
	Static *DistSpec
	// StaticAlign declares a static array aligned with another array
	// (Example 1's "ALIGN D(I,J,K) WITH C(J,I,K)"): the distribution is
	// derived from AlignWith's at declaration time.
	StaticAlign *dist.Alignment
	// AlignWith names the target array of StaticAlign.
	AlignWith string

	// Range restricts the distribution types a dynamic primary may take
	// (empty = unrestricted).
	Range dist.Range
	// Init is the initial distribution of a dynamic primary (nil = none;
	// the array may not be accessed before its first DISTRIBUTE).
	Init *DistSpec

	// ConnectTo makes this a secondary array of the named primary.
	ConnectTo string
	// Connect chooses extraction (default when Align is nil) or
	// alignment.
	Align *dist.Alignment

	// Ghost declares overlap areas (per-dimension symmetric widths).
	Ghost []int
}

// DistSpec is a distribution expression plus an optional target section
// ("TO R(...)"); a nil Target means the engine's default 1-D view.
type DistSpec struct {
	Type   dist.Type
	Target dist.Target
}

// resolve applies the spec to a domain, defaulting the target to the
// executing view.
func (e *Engine) resolve(ctx *machine.Ctx, s *DistSpec, dom index.Domain) (*dist.Distribution, error) {
	tg := s.Target
	if tg == nil {
		tg = e.viewTarget(ctx)
	}
	return dist.New(s.Type, dom, tg)
}

// Declare executes a declaration on every processor (collective).  It
// enforces the static rules of §2.3: a secondary must connect to a
// dynamic primary declared in the same scope; an initial distribution
// must satisfy the declared range; static arrays must have a (derivable)
// distribution.
func (e *Engine) Declare(ctx *machine.Ctx, d Decl) (*Array, error) {
	if d.Domain.Rank() == 0 {
		return nil, fmt.Errorf("core: %s: empty domain", d.Name)
	}
	defer ctx.Tracer().BeginSpan(ctx.Rank(), trace.CatDeclare, "DECLARE "+d.Name).End()

	// Resolve what the array's first distribution is, if any.
	var d0 *dist.Distribution
	var err error
	switch {
	case !d.Dynamic && d.StaticAlign != nil:
		other, ok := e.Lookup(d.AlignWith)
		if !ok {
			return nil, fmt.Errorf("core: %s: ALIGN WITH unknown array %s", d.Name, d.AlignWith)
		}
		if other.Dynamic() {
			return nil, fmt.Errorf("core: %s: static alignment with dynamic array %s (use DYNAMIC, CONNECT)", d.Name, d.AlignWith)
		}
		d0, err = dist.Construct(*d.StaticAlign, other.arr.Dist(), d.Domain)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", d.Name, err)
		}
	case !d.Dynamic:
		if d.Static == nil {
			return nil, fmt.Errorf("core: %s: static array needs a DIST annotation", d.Name)
		}
		d0, err = e.resolve(ctx, d.Static, d.Domain)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", d.Name, err)
		}
	case d.ConnectTo != "":
		// Secondary: distribution (if the primary has one) derived below.
		if d.Init != nil || len(d.Range) > 0 {
			return nil, fmt.Errorf("core: %s: secondary arrays take no RANGE or initial DIST of their own", d.Name)
		}
	case d.Init != nil:
		d0, err = e.resolve(ctx, d.Init, d.Domain)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", d.Name, err)
		}
		if !d.Range.Allows(d0.DistType()) {
			return nil, fmt.Errorf("core: %s: initial distribution %v violates %v: %w", d.Name, d0.DistType(), d.Range, ErrRangeViolation)
		}
	}

	a := ctx.CollectiveOnce(func() any {
		return &Array{e: e, name: d.Name, dom: d.Domain, dynamic: d.Dynamic, rng: d.Range}
	}).(*Array)

	// Connect-class wiring and registration: the first processor to take
	// the lock wires the shared Array object; the others see a.class set
	// and skip.  Validation errors are deterministic, so every processor
	// that attempts the wiring fails identically.
	if err := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if a.class != nil || a.declErr != nil {
			return a.declErr
		}
		if old, dup := e.arrays[a.name]; dup && old != a {
			a.declErr = fmt.Errorf("core: array %s: %w", a.name, ErrAlreadyDeclared)
			return a.declErr
		}
		fail := func(err error) error {
			a.declErr = err
			return err
		}
		if d.ConnectTo != "" {
			prim, ok := e.arrays[d.ConnectTo]
			if !ok {
				return fail(fmt.Errorf("core: %s: CONNECT to unknown array %s", d.Name, d.ConnectTo))
			}
			if !prim.dynamic || prim.connKind != ConnNone {
				return fail(fmt.Errorf("core: %s: CONNECT target %s is not a dynamic primary array", d.Name, d.ConnectTo))
			}
			if !d.Dynamic {
				return fail(fmt.Errorf("core: %s: secondary arrays must be DYNAMIC", d.Name))
			}
			if d.Align != nil {
				if err := d.Align.Validate(d.Domain, prim.dom); err != nil {
					return fail(fmt.Errorf("core: %s: %w", d.Name, err))
				}
				a.connKind = ConnAlign
				a.align = *d.Align
			} else {
				if d.Domain.Rank() != prim.dom.Rank() {
					return fail(fmt.Errorf("core: %s: extraction rank mismatch with %s", d.Name, d.ConnectTo))
				}
				a.connKind = ConnExtract
			}
			a.class = prim.class
			a.class.secondaries = append(a.class.secondaries, a)
		} else {
			a.class = &connectClass{primary: a}
		}
		e.arrays[a.name] = a
		e.order = append(e.order, a.name)
		return nil
	}(); err != nil {
		return nil, err
	}
	if err := ctx.Barrier(); err != nil {
		return nil, err
	}

	// Secondary with an already-distributed primary: derive now.
	if a.connKind != ConnNone && d0 == nil {
		prim := a.class.primary
		if prim.arr != nil && prim.arr.Distributed() {
			d0, err = a.derive(prim.arr.Dist())
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", d.Name, err)
			}
		}
	}

	// Storage allocation (collective).
	var opts []darray.Option
	if d.Ghost != nil {
		opts = append(opts, darray.WithGhost(d.Ghost...))
	}
	arr := darray.New(ctx, d.Name, d.Domain, d0, opts...)
	e.mu.Lock()
	if a.arr == nil {
		a.arr = arr // same object on every rank (CollectiveOnce in darray)
	}
	e.mu.Unlock()
	if err := ctx.Barrier(); err != nil {
		return nil, err
	}
	return a, nil
}

// MustDeclare is Declare that panics on error.
func (e *Engine) MustDeclare(ctx *machine.Ctx, d Decl) *Array {
	a, err := e.Declare(ctx, d)
	if err != nil {
		panic(err)
	}
	return a
}
