package core

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
)

// The engine's statement-level failures carry typed sentinels so callers
// can dispatch with errors.Is instead of matching message text.

func TestTypedErrRangeViolation(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		rng := dist.Range{dist.NewPattern(dist.PBlock())}
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Range: rng, Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		err := e.Distribute(ctx, []*Array{b}, DimsOf(dist.CyclicDim(1)))
		if !errors.Is(err, ErrRangeViolation) {
			t.Errorf("DISTRIBUTE outside RANGE: got %v, want errors.Is ErrRangeViolation", err)
		}
		_, err = e.Declare(ctx, Decl{Name: "BAD", Domain: index.Dim(8), Dynamic: true,
			Range: rng, Init: &DistSpec{Type: dist.NewType(dist.CyclicDim(4))}})
		if !errors.Is(err, ErrRangeViolation) {
			t.Errorf("out-of-range initial DIST: got %v, want errors.Is ErrRangeViolation", err)
		}
		return nil
	})
}

func TestTypedErrNotPrimary(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		s := e.MustDeclare(ctx, Decl{Name: "S", Domain: index.Dim(8),
			Static: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		e.MustDeclare(ctx, Decl{Name: "B", Domain: index.Dim(8), Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.BlockDim())}})
		a := e.MustDeclare(ctx, Decl{Name: "A", Domain: index.Dim(8), Dynamic: true, ConnectTo: "B"})
		if err := e.Distribute(ctx, []*Array{s}, DimsOf(dist.CyclicDim(1))); !errors.Is(err, ErrNotPrimary) {
			t.Errorf("DISTRIBUTE on static array: got %v, want errors.Is ErrNotPrimary", err)
		}
		if err := e.Distribute(ctx, []*Array{a}, DimsOf(dist.CyclicDim(1))); !errors.Is(err, ErrNotPrimary) {
			t.Errorf("DISTRIBUTE on secondary array: got %v, want errors.Is ErrNotPrimary", err)
		}
		return nil
	})
}

func TestTypedErrAlreadyDeclared(t *testing.T) {
	run(t, 2, func(ctx *machine.Ctx, e *Engine) error {
		e.MustDeclare(ctx, Decl{Name: "X", Domain: index.Dim(4), Dynamic: true})
		ctx.Barrier()
		_, err := e.Declare(ctx, Decl{Name: "X", Domain: index.Dim(4), Dynamic: true})
		if !errors.Is(err, ErrAlreadyDeclared) {
			t.Errorf("duplicate declaration: got %v, want errors.Is ErrAlreadyDeclared", err)
		}
		return nil
	})
}

// TestConnectClassScheduleCache drives an ADI-style phase-alternating
// DISTRIBUTE over a whole connect class (primary + extraction secondary)
// and checks that, per array, the redistribution schedule cache misses
// only on the first occurrence of each transition (2 per array per rank)
// and hits on every later iteration.
func TestConnectClassScheduleCache(t *testing.T) {
	const np, iters = 4, 3
	run(t, np, func(ctx *machine.Ctx, e *Engine) error {
		dom := index.Dim(8, 8)
		b := e.MustDeclare(ctx, Decl{Name: "B", Domain: dom, Dynamic: true,
			Init: &DistSpec{Type: dist.NewType(dist.ElidedDim(), dist.BlockDim())}})
		a := e.MustDeclare(ctx, Decl{Name: "A", Domain: dom, Dynamic: true, ConnectTo: "B"})
		b.FillFunc(ctx, func(p index.Point) float64 { return float64(8*p[0] + p[1]) })
		a.FillFunc(ctx, func(p index.Point) float64 { return -float64(8*p[0] + p[1]) })
		ctx.Barrier()

		for it := 0; it < iters; it++ {
			e.MustDistribute(ctx, []*Array{b}, DimsOf(dist.BlockDim(), dist.ElidedDim()))
			e.MustDistribute(ctx, []*Array{b}, DimsOf(dist.ElidedDim(), dist.BlockDim()))
		}
		ctx.Barrier()

		if ctx.Rank() == 0 {
			// 2*iters transitions per array; the 2 distinct ones miss once
			// per rank, everything after the first full cycle hits.
			wantMisses := 2 * np
			wantHits := (2*iters - 2) * np
			for _, arr := range []*Array{b, a} {
				hits, misses := arr.DArray().ScheduleCacheStats()
				if hits != wantHits || misses != wantMisses {
					t.Errorf("%s: schedule cache %d hits / %d misses, want %d / %d",
						arr.Name(), hits, misses, wantHits, wantMisses)
				}
			}
		}
		return nil
	})
}
