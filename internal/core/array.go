package core

import (
	"fmt"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
)

// Array is a Vienna Fortran array: a distributed array plus the
// declaration attributes of §2.3 (static/dynamic, distribution range,
// connect-class membership).  It implements query.Selector, so it can be
// used directly in IDT and DCASE constructs.
type Array struct {
	e       *Engine
	name    string
	dom     index.Domain
	dynamic bool
	rng     dist.Range

	class    *connectClass
	connKind ConnKind
	align    dist.Alignment
	// declErr records a wiring failure so that every SPMD rank returns
	// the same declaration error (instead of one erroring and the others
	// blocking in the collective).
	declErr error

	arr *darray.Array
}

// Name returns the declaration name.
func (a *Array) Name() string { return a.name }

// QueryName implements query.Selector.
func (a *Array) QueryName() string { return a.name }

// Domain returns the index domain.
func (a *Array) Domain() index.Domain { return a.dom }

// Dynamic reports whether the array was declared DYNAMIC.
func (a *Array) Dynamic() bool { return a.dynamic }

// Primary reports whether the array is the primary of its connect class
// (static arrays are trivially primary).
func (a *Array) Primary() bool { return a.connKind == ConnNone }

// ConnKind returns how the array connects to its primary.
func (a *Array) Conn() ConnKind { return a.connKind }

// PrimaryArray returns the primary of the array's connect class.
func (a *Array) PrimaryArray() *Array { return a.class.primary }

// ClassMembers returns the full equivalence class C(B): the primary
// followed by the secondaries, in declaration order.
func (a *Array) ClassMembers() []*Array {
	out := []*Array{a.class.primary}
	return append(out, a.class.secondaries...)
}

// Range returns the declared distribution range (empty = unrestricted).
func (a *Array) Range() dist.Range { return a.rng }

// Distributed implements query.Selector: whether the array currently has
// a well-defined distribution.
func (a *Array) Distributed() bool { return a.arr.Distributed() }

// DistType implements query.Selector.
func (a *Array) DistType() dist.Type { return a.arr.DistType() }

// Dist returns the current distribution (nil before first association).
func (a *Array) Dist() *dist.Distribution { return a.arr.Dist() }

// DArray exposes the underlying runtime array for kernels.
func (a *Array) DArray() *darray.Array { return a.arr }

// Local returns the calling processor's local storage.
func (a *Array) Local(ctx *machine.Ctx) *darray.Local { return a.arr.Local(ctx) }

// Get reads a global element (one-sided when remote).
func (a *Array) Get(ctx *machine.Ctx, p ...int) float64 {
	return a.arr.Get(ctx, index.Point(p))
}

// Set writes a global element (one-sided when remote).
func (a *Array) Set(ctx *machine.Ctx, v float64, p ...int) {
	a.arr.Set(ctx, index.Point(p), v)
}

// FillFunc fills the locally owned elements.
func (a *Array) FillFunc(ctx *machine.Ctx, f func(p index.Point) float64) {
	a.arr.FillFunc(ctx, f)
}

// Fill sets every locally owned element to v.
func (a *Array) Fill(ctx *machine.Ctx, v float64) { a.arr.Fill(ctx, v) }

// GatherTo collects the array on root (nil elsewhere), returning a
// wrapped error on transport failure or a size-mismatched contribution.
func (a *Array) GatherTo(ctx *machine.Ctx, root int) ([]float64, error) {
	return a.arr.GatherTo(ctx, root)
}

// ScatterFrom distributes a dense global slice from root, returning a
// wrapped error on transport failure or a wrong-sized slice.
func (a *Array) ScatterFrom(ctx *machine.Ctx, root int, data []float64) error {
	return a.arr.ScatterFrom(ctx, root, data)
}

// ExchangeGhosts refreshes overlap areas along dimension k, returning a
// wrapped error on transport failure.
func (a *Array) ExchangeGhosts(ctx *machine.Ctx, k int) error { return a.arr.ExchangeGhosts(ctx, k) }

// ExchangeAllGhosts refreshes all overlap areas, returning a wrapped
// error on transport failure.
func (a *Array) ExchangeAllGhosts(ctx *machine.Ctx) error { return a.arr.ExchangeAllGhosts(ctx) }

// StartExchangeGhosts begins an asynchronous refresh of dimension k's
// overlap areas; complete it with darray.GhostHandle.Wait before reading
// the ghost cells.  The start/wait split lets a sweep compute its
// interior while the halos are in flight.
func (a *Array) StartExchangeGhosts(ctx *machine.Ctx, k int) (*darray.GhostHandle, error) {
	return a.arr.StartExchangeGhosts(ctx, k)
}

// StartExchangeAllGhosts begins an asynchronous refresh of every overlap
// area, returning one handle that completes them all.
func (a *Array) StartExchangeAllGhosts(ctx *machine.Ctx) (*darray.GhostHandle, error) {
	return a.arr.StartExchangeAllGhosts(ctx)
}

// Epoch returns the number of redistributions so far.
func (a *Array) Epoch() int { return a.arr.Epoch() }

func (a *Array) String() string { return a.arr.String() }

// derive computes this secondary array's distribution from the primary's,
// per the connection recorded at declaration (§2.4 step "for each
// secondary array A in C(B), its distribution is determined from the
// distribution type associated with da, I^A, and the connection").
func (a *Array) derive(primDist *dist.Distribution) (*dist.Distribution, error) {
	switch a.connKind {
	case ConnExtract:
		return dist.Extract(primDist, a.dom)
	case ConnAlign:
		return dist.Construct(a.align, primDist, a.dom)
	}
	return nil, fmt.Errorf("core: %s is not a secondary array", a.name)
}

// CallWith implements procedure-boundary implicit redistribution (§4):
// the array is redistributed to the callee's declared distribution, body
// runs, and afterwards the array either keeps the (possibly changed)
// distribution — Vienna Fortran semantics, where "if an array is
// redistributed in a procedure, [the language permits] the new
// distribution to be returned to the calling procedure" — or is restored
// to the distribution it had at the call when restore is true (the HPF
// behaviour the paper contrasts).
//
// CallWith is only legal on primary arrays; the whole connect class moves,
// as a DISTRIBUTE would.
func (a *Array) CallWith(ctx *machine.Ctx, spec DistSpec, restore bool, body func() error) error {
	if a.connKind != ConnNone {
		return fmt.Errorf("core: CallWith on secondary array %s: %w", a.name, ErrNotPrimary)
	}
	if !a.dynamic {
		return fmt.Errorf("core: CallWith on statically distributed array %s: %w", a.name, ErrNotPrimary)
	}
	saved := a.arr.Dist()
	if err := a.e.Distribute(ctx, []*Array{a}, ExprOf(spec)); err != nil {
		return err
	}
	err := body()
	if restore && saved != nil {
		dErr := a.e.distributeTo(ctx, a, saved, nil)
		if err == nil {
			err = dErr
		}
	}
	return err
}
