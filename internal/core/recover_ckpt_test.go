package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
)

// fillA/fillB give full-width float64 mantissas so bit-identity failures
// cannot hide behind round numbers.
func fillA(p index.Point) float64 { return 1 + math.Sin(float64(p[0]*3))*math.E }
func fillB(p index.Point) float64 { return 2 + math.Cos(float64(p[0]*7))*math.Pi }

// unevenBounds builds deliberately lopsided B_BLOCK segment upper bounds
// for np processors over dom: tiny head segments and one huge one, the
// shape a load balancer produces under a skewed particle distribution.
func unevenBounds(dom index.Domain, np int) []int {
	n := dom.Extent(0)
	if np == 1 {
		return []int{dom.Hi[0]}
	}
	segs := make([]int, np)
	for i := range segs {
		segs[i] = 1 // minimal head segments
	}
	segs[np-1] = 2
	rest := n
	for _, s := range segs {
		rest -= s
	}
	segs[np-2] += rest // the bulk lands on one processor
	bounds := make([]int, np)
	used := 0
	for i, s := range segs {
		used += s
		bounds[i] = dom.Lo[0] + used - 1
	}
	return bounds
}

// checkpointUnevenConnected runs np ranks declaring a B_BLOCK primary
// with uneven bounds plus a CONNECTed secondary, fills both, and
// checkpoints them into dir.
func checkpointUnevenConnected(t *testing.T, np int, dir string) {
	t.Helper()
	m := machine.New(np)
	defer m.Close()
	eng := core.NewEngine(m)
	dom := index.Dim(29)
	err := m.Run(func(ctx *machine.Ctx) error {
		bspec := core.DistSpec{Type: dist.NewType(dist.BBlockDim(unevenBounds(dom, np)...))}
		u := eng.MustDeclare(ctx, core.Decl{Name: "U", Domain: dom, Dynamic: true, Init: &bspec})
		w := eng.MustDeclare(ctx, core.Decl{Name: "W", Domain: dom, Dynamic: true, ConnectTo: "U"})
		u.FillFunc(ctx, fillA)
		w.FillFunc(ctx, fillB)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		_, err := eng.CheckpointIter(ctx, dir, 3)
		return err
	})
	if err != nil {
		t.Fatalf("checkpoint on %d ranks: %v", np, err)
	}
}

// restoreUnevenConnected restores the checkpoint onto np ranks and
// verifies both arrays bit-exactly, plus the CONNECT invariant (the
// secondary still shares the primary's distribution).
func restoreUnevenConnected(t *testing.T, np int, dir string, wantIter int) {
	t.Helper()
	m := machine.New(np)
	defer m.Close()
	eng := core.NewEngine(m)
	dom := index.Dim(29)
	err := m.Run(func(ctx *machine.Ctx) error {
		// The declared initial distribution must fit *this* machine (np
		// may be smaller than the writer's); Restore replays the
		// recorded descriptor over it.
		bspec := core.DistSpec{Type: dist.NewType(dist.BBlockDim(unevenBounds(dom, np)...))}
		u := eng.MustDeclare(ctx, core.Decl{Name: "U", Domain: dom, Dynamic: true, Init: &bspec})
		w := eng.MustDeclare(ctx, core.Decl{Name: "W", Domain: dom, Dynamic: true, ConnectTo: "U"})
		man, err := eng.Restore(ctx, dir)
		if err != nil {
			return err
		}
		if iter, ok := man.MetaInt("iter"); !ok || iter != wantIter {
			t.Errorf("np %d: restored iter = %d, %v; want %d", np, iter, ok, wantIter)
		}
		for _, tc := range []struct {
			a    *core.Array
			want func(index.Point) float64
		}{{u, fillA}, {w, fillB}} {
			got, err := tc.a.GatherTo(ctx, 0)
			if err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				dom.WholeSection().ForEach(func(p index.Point) bool {
					if g, want := got[dom.Offset(p)], tc.want(p); g != want {
						t.Errorf("np %d: %s[%v] = %v, want %v (bit-exact)", np, tc.a.Name(), p, g, want)
						return false
					}
					return true
				})
			}
		}
		if ctx.Rank() == 0 {
			if ud, wd := u.DistType().String(), w.DistType().String(); ud != wd {
				t.Errorf("np %d: CONNECT broken after restore: U dist %s, W dist %s", np, ud, wd)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("restore on %d ranks: %v", np, err)
	}
}

// TestRestoreOntoFewerRanksUnevenBBlock checkpoints a primary B_BLOCK
// array with lopsided segment bounds plus a CONNECTed secondary on 4
// ranks and restores onto 3, 2, and 1 — the shrink path must replay the
// pair onto the smaller grid with bit-exact values and an intact
// connect class.
func TestRestoreOntoFewerRanksUnevenBBlock(t *testing.T) {
	dir := t.TempDir()
	checkpointUnevenConnected(t, 4, dir)
	for _, np := range []int{3, 2, 1} {
		restoreUnevenConnected(t, np, dir, 3)
	}
}

// TestRestoreOntoSameRanksUnevenBBlock: same-size restore must take the
// bit-identical fast path even for uneven B_BLOCK bounds and keep the
// CONNECTed secondary aligned.
func TestRestoreOntoSameRanksUnevenBBlock(t *testing.T) {
	dir := t.TempDir()
	checkpointUnevenConnected(t, 4, dir)
	restoreUnevenConnected(t, 4, dir, 3)
}
