package core

import "errors"

// Sentinel errors for the statically checkable misuses of the dynamic
// distribution constructs (§2.3–§2.4).  Errors returned by Engine and
// Array methods wrap these, so callers can classify failures with
// errors.Is while the message keeps the full context.
var (
	// ErrRangeViolation marks a distribution that falls outside an
	// array's declared RANGE, at declaration or in a DISTRIBUTE.
	ErrRangeViolation = errors.New("distribution outside declared RANGE")

	// ErrNotPrimary marks a DISTRIBUTE or CallWith applied to an array
	// that is not a dynamic primary (a secondary of a connect class, or a
	// statically distributed array).
	ErrNotPrimary = errors.New("array is not a dynamic primary")

	// ErrAlreadyDeclared marks a duplicate declaration of an array name
	// within one scope.
	ErrAlreadyDeclared = errors.New("array already declared in this scope")
)
