package core

import (
	"fmt"
	"strconv"

	"repro/internal/ckpt"
	"repro/internal/darray"
	"repro/internal/machine"
)

// Checkpoint writes one coordinated checkpoint epoch of every currently
// distributed array in the scope to dir (collective; traced as its own
// "checkpoint" phase).  meta (may be nil) is stored in the manifest for
// the recovering run — by convention the interpreter and the apps store
// the iteration counter under "iter".  Arrays not yet associated with a
// distribution are skipped: before its first DISTRIBUTE an array holds
// no committed data.  It returns the committed epoch number.
func (e *Engine) Checkpoint(ctx *machine.Ctx, dir string, meta map[string]string) (int, error) {
	ctx.PhaseBegin("checkpoint")
	defer ctx.PhaseEnd("checkpoint")
	var das []*darray.Array
	for _, a := range e.Arrays() {
		if a.Distributed() {
			das = append(das, a.DArray())
		}
	}
	if len(das) == 0 {
		return -1, fmt.Errorf("core: checkpoint: no distributed arrays in scope")
	}
	epoch, err := ckpt.SaveOpts(ctx, dir, das, meta, e.CkptOptions())
	if err != nil {
		return -1, fmt.Errorf("core: checkpoint to %s: %w", dir, err)
	}
	return epoch, nil
}

// CheckpointIter is Checkpoint with the iteration counter stored under
// the conventional "iter" meta key.
func (e *Engine) CheckpointIter(ctx *machine.Ctx, dir string, iter int) (int, error) {
	return e.Checkpoint(ctx, dir, map[string]string{"iter": strconv.Itoa(iter)})
}

// Restore fills the scope's arrays from the latest committed checkpoint
// epoch in dir (collective; traced as its own "restore" phase).  Every
// checkpointed array must be declared in this scope with the same
// domain; each is re-associated with the restored (possibly shrunken)
// distribution and refilled, and arrays with ghost regions get a ghost
// exchange so stencil code can resume immediately.  The manifest is
// returned so the caller can read back its Meta (e.g. the iteration to
// resume from).
func (e *Engine) Restore(ctx *machine.Ctx, dir string) (*ckpt.Manifest, error) {
	ctx.PhaseBegin("restore")
	defer ctx.PhaseEnd("restore")
	var das []*darray.Array
	for _, a := range e.Arrays() {
		das = append(das, a.DArray())
	}
	res, err := ckpt.RestoreOpts(ctx, dir, das, e.CkptOptions())
	if err != nil {
		return nil, fmt.Errorf("core: restore from %s: %w", dir, err)
	}
	for _, a := range e.Arrays() {
		if !a.Distributed() {
			continue
		}
		if err := a.ExchangeAllGhosts(ctx); err != nil {
			return nil, fmt.Errorf("core: restore: ghost refresh of %s: %w", a.Name(), err)
		}
	}
	return res.Manifest, nil
}

// Recover is the in-process arm of failure recovery: called on the
// survivors of a Ctx.Regroup, it restores the last committed checkpoint
// epoch from dir onto the regrouped processor view — the recorded
// distributions are replayed and shrunk onto the compacted survivor
// numbering, array payloads are refilled from disk over the live epoch
// Comm, and ghost regions are re-exchanged — so the iteration loop can
// resume within the same Run.  It is Restore under a "recover" trace
// phase; the distinction is the caller's contract (a live regrouped
// machine, not a fresh relaunch).
func (e *Engine) Recover(ctx *machine.Ctx, dir string) (*ckpt.Manifest, error) {
	ctx.PhaseBegin("recover")
	defer ctx.PhaseEnd("recover")
	man, err := e.Restore(ctx, dir)
	if err != nil {
		return nil, fmt.Errorf("core: online recovery (epoch %d, np %d): %w", ctx.Epoch(), ctx.NP(), err)
	}
	return man, nil
}
