package redist_test

// Planner property tests.  They run without a machine: distributions are
// built over ckpt's virtual replay target (a dense column-major processor
// array with no transport behind it), every candidate plan is executed as
// a schedule-level simulation, and the delivered element set is checked
// for exact equality with the new distribution's ownership — the
// bit-identity property the byte-level executor tests in internal/darray
// then confirm end to end on a live machine.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/redist"
)

type crossing struct {
	name string
	dom  index.Domain
	oldD *dist.Distribution
	newD *dist.Distribution
	np   int
}

// planCrossings covers the distribution-kind matrix of the acceptance
// criteria: block/cyclic/B_BLOCK/2-D crossings, uneven extents, and a
// 1-D -> 2-D processor-arrangement change.
func planCrossings(t *testing.T) []crossing {
	t.Helper()
	line := ckpt.NewVirtualTarget(4)
	grid := ckpt.NewVirtualTarget(2, 2)
	mk := func(typ dist.Type, dom index.Domain, tg dist.Target) *dist.Distribution {
		d, err := dist.New(typ, dom, tg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d64 := index.Dim(64)
	d23 := index.Dim(23) // uneven: 23 = 4*5+3
	d2d := index.Dim(12, 10)
	dun := index.Dim(13, 7) // uneven 2-D
	return []crossing{
		{"block->cyclic", d64,
			mk(dist.NewType(dist.BlockDim()), d64, line),
			mk(dist.NewType(dist.CyclicDim(1)), d64, line), 4},
		{"block->cyclic uneven", d23,
			mk(dist.NewType(dist.BlockDim()), d23, line),
			mk(dist.NewType(dist.CyclicDim(1)), d23, line), 4},
		{"cyclic(3)->block uneven", d23,
			mk(dist.NewType(dist.CyclicDim(3)), d23, line),
			mk(dist.NewType(dist.BlockDim()), d23, line), 4},
		{"bblock->cyclic(2)", d23,
			mk(dist.NewType(dist.BBlockDim(2, 9, 15, 23)), d23, line),
			mk(dist.NewType(dist.CyclicDim(2)), d23, line), 4},
		{"cols->rows 2-D", d2d,
			mk(dist.NewType(dist.ElidedDim(), dist.BlockDim()), d2d, line),
			mk(dist.NewType(dist.BlockDim(), dist.ElidedDim()), d2d, line), 4},
		{"1-D block -> 2-D block", d2d,
			mk(dist.NewType(dist.BlockDim(), dist.ElidedDim()), d2d, line),
			mk(dist.NewType(dist.BlockDim(), dist.BlockDim()), d2d, grid), 4},
		{"2-D block -> cyclic uneven", dun,
			mk(dist.NewType(dist.BlockDim(), dist.BlockDim()), dun, grid),
			mk(dist.NewType(dist.CyclicDim(1), dist.ElidedDim()), dun, line), 4},
	}
}

func planVal(p index.Point) float64 {
	v := float64(p[0])
	if len(p) > 1 {
		v += 1000 * float64(p[1])
	}
	return v
}

// simulatePlan replays every step of the plan at the schedule level:
// deliveries follow each step's (panel-restricted) receive transfers, so
// panel overlap shows up as a duplicate delivery and a panel gap as a
// missing element — exactness, not just coverage.
func simulatePlan(t *testing.T, c crossing, plan *redist.Plan) {
	t.Helper()
	scheds := make([]*redist.Schedule, c.np)
	for r := 0; r < c.np; r++ {
		scheds[r] = redist.Build(c.oldD, c.newD, r, c.np)
	}
	got := make([]map[string]float64, c.np)
	for r := range got {
		got[r] = map[string]float64{}
	}
	deliver := func(rank int, p index.Point) {
		key := p.String()
		if _, dup := got[rank][key]; dup {
			t.Fatalf("%s/%s: %v delivered to rank %d twice", c.name, plan.Kind, p, rank)
		}
		got[rank][key] = planVal(p)
	}
	// The self-transfer is local and whole-domain in every plan.
	for r := 0; r < c.np; r++ {
		for _, snd := range scheds[r].Sends {
			if snd.Peer == r {
				r := r
				snd.Grid.ForEach(func(p index.Point) bool { deliver(r, p); return true })
			}
		}
	}
	for k := range plan.Steps {
		for r := 0; r < c.np; r++ {
			sub := plan.StepSchedule(scheds[r], k)
			for _, rcv := range sub.Recvs {
				if rcv.Peer == r {
					continue
				}
				peer, rank := rcv.Peer, r
				rcv.Grid.ForEach(func(p index.Point) bool {
					if !c.oldD.IsLocal(peer, p) {
						t.Fatalf("%s/%s step %d: rank %d receives %v from %d, who never owned it",
							c.name, plan.Kind, k, rank, p, peer)
					}
					deliver(rank, p)
					return true
				})
			}
		}
	}
	for r := 0; r < c.np; r++ {
		g := c.newD.LocalGrid(r)
		n := 0
		r := r
		g.ForEach(func(p index.Point) bool {
			v, ok := got[r][p.String()]
			if !ok {
				t.Fatalf("%s/%s: rank %d missing %v", c.name, plan.Kind, r, p)
			}
			if v != planVal(p) {
				t.Fatalf("%s/%s: rank %d wrong value at %v", c.name, plan.Kind, r, p)
			}
			n++
			return true
		})
		if n != len(got[r]) {
			t.Fatalf("%s/%s: rank %d got %d deliveries for %d owned points", c.name, plan.Kind, r, len(got[r]), n)
		}
	}
}

// TestPlanCandidatesBitIdentical simulates every candidate decomposition
// for every crossing at several budgets: whatever the planner could pick,
// the moved element set must equal the direct alltoallv's exactly.
func TestPlanCandidatesBitIdentical(t *testing.T) {
	for _, c := range planCrossings(t) {
		seen := map[string]bool{}
		// Budgets chosen to materialize different chunk counts (chunked
		// candidates only exist when panel stepping is needed to fit).
		for _, budget := range []int64{0, 1 << 20, 512, 64, 16} {
			for _, plan := range redist.Candidates(c.oldD, c.newD, c.np, redist.PlanOptions{MemBudget: budget}) {
				if seen[plan.Kind] {
					continue
				}
				seen[plan.Kind] = true
				t.Run(fmt.Sprintf("%s/%s", c.name, plan.Kind), func(t *testing.T) {
					simulatePlan(t, c, plan)
				})
			}
		}
	}
}

// TestPlanEstimatesConsistent checks the candidate cost bookkeeping:
// pairwise and chunked move exactly the direct plan's bytes; nothing
// beats direct on messages except allgather; plan totals equal the sums
// of their steps.
func TestPlanEstimatesConsistent(t *testing.T) {
	for _, c := range planCrossings(t) {
		cands := redist.Candidates(c.oldD, c.newD, c.np, redist.PlanOptions{MemBudget: 64})
		var direct *redist.Plan
		for _, p := range cands {
			if p.Kind == "direct" {
				direct = p
			}
		}
		if direct == nil {
			t.Fatalf("%s: no direct candidate", c.name)
		}
		// Direct's totals must equal the schedule-level sums the legacy
		// executor produces.
		var wantMsgs, wantBytes int64
		for r := 0; r < c.np; r++ {
			s := redist.Build(c.oldD, c.newD, r, c.np)
			wantMsgs += int64(s.RemoteSendCount())
			wantBytes += int64(s.SendBytes())
		}
		if direct.Msgs != wantMsgs || direct.Bytes != wantBytes {
			t.Fatalf("%s: direct plan %d msgs/%d bytes, schedules say %d/%d",
				c.name, direct.Msgs, direct.Bytes, wantMsgs, wantBytes)
		}
		for _, p := range cands {
			var stepPeak, stepMsgs, stepBytes int64
			for _, s := range p.Steps {
				if s.PeakBytes > stepPeak {
					stepPeak = s.PeakBytes
				}
				stepMsgs += s.Msgs
				stepBytes += s.Bytes
			}
			if stepPeak != p.PeakBytes || stepMsgs != p.Msgs || stepBytes != p.Bytes {
				t.Errorf("%s/%s: plan totals (%d,%d,%d) != step sums (%d,%d,%d)",
					c.name, p.Kind, p.PeakBytes, p.Msgs, p.Bytes, stepPeak, stepMsgs, stepBytes)
			}
			switch p.Kind {
			case "pairwise":
				if p.Bytes != direct.Bytes || p.Msgs != direct.Msgs {
					t.Errorf("%s/pairwise: %d msgs/%d bytes, want direct's %d/%d",
						c.name, p.Msgs, p.Bytes, direct.Msgs, direct.Bytes)
				}
				if p.PeakBytes > direct.PeakBytes {
					t.Errorf("%s/pairwise: peak %d exceeds direct's %d", c.name, p.PeakBytes, direct.PeakBytes)
				}
			case "allgather":
			default:
				if p.Bytes != direct.Bytes {
					t.Errorf("%s/%s: moves %d bytes, direct moves %d", c.name, p.Kind, p.Bytes, direct.Bytes)
				}
				if p.Msgs < direct.Msgs {
					t.Errorf("%s/%s: %d msgs beat direct's %d without publishing", c.name, p.Kind, p.Msgs, direct.Msgs)
				}
			}
		}
	}
}

// TestPlanSelection pins the selection rule: no budget -> always direct;
// a budget picks the lowest-peak/fewest-message feasible candidate; an
// impossible budget is a typed, enforced error.
func TestPlanSelection(t *testing.T) {
	tg := ckpt.NewVirtualTarget(4)
	dom := index.Dim(256)
	oldD, err := dist.New(dist.NewType(dist.BlockDim()), dom, tg)
	if err != nil {
		t.Fatal(err)
	}
	newD, err := dist.New(dist.NewType(dist.CyclicDim(1)), dom, tg)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := redist.PlanMove(oldD, newD, 4, redist.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Kind != "direct" || len(direct.Steps) != 1 {
		t.Fatalf("no budget must select the direct plan, got %v", direct)
	}

	// A budget at the direct peak admits pairwise, which strictly lowers
	// the peak at the same message count.
	p, err := redist.PlanMove(oldD, newD, 4, redist.PlanOptions{MemBudget: direct.PeakBytes})
	if err != nil {
		t.Fatal(err)
	}
	if p.PeakBytes > direct.PeakBytes || p.Msgs != direct.Msgs || p.Bytes != direct.Bytes {
		t.Fatalf("budgeted plan %v worse than direct (peak %d msgs %d bytes %d)",
			p, direct.PeakBytes, direct.Msgs, direct.Bytes)
	}
	if p.Budget != direct.PeakBytes {
		t.Fatalf("plan does not echo its budget: %d", p.Budget)
	}

	// An eighth of the transfer forces panel chunking: still all the
	// bytes, more messages, peak within budget.
	small := direct.PeakBytes / 8
	ch, err := redist.PlanMove(oldD, newD, 4, redist.PlanOptions{MemBudget: small})
	if err != nil {
		t.Fatal(err)
	}
	if ch.PeakBytes > small {
		t.Fatalf("plan peak %d exceeds budget %d", ch.PeakBytes, small)
	}
	if ch.Bytes != direct.Bytes {
		t.Fatalf("budgeted plan moves %d bytes, direct moves %d", ch.Bytes, direct.Bytes)
	}
	if len(ch.Steps) < 2 {
		t.Fatalf("budget %d of peak %d should need multiple steps, got %v", small, direct.PeakBytes, ch)
	}

	// Impossible budget: typed error, no plan.
	if _, err := redist.PlanMove(oldD, newD, 4, redist.PlanOptions{MemBudget: 1}); !errors.Is(err, redist.ErrNoPlan) {
		t.Fatalf("budget 1 byte: got %v, want ErrNoPlan", err)
	}
}

// TestPlanDeterministic: the plan is a pure function of its arguments —
// the SPMD contract that lets every rank plan independently.
func TestPlanDeterministic(t *testing.T) {
	for _, c := range planCrossings(t) {
		for _, budget := range []int64{0, 4096, 128} {
			a, errA := redist.PlanMove(c.oldD, c.newD, c.np, redist.PlanOptions{MemBudget: budget})
			b, errB := redist.PlanMove(c.oldD, c.newD, c.np, redist.PlanOptions{MemBudget: budget})
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s budget %d: nondeterministic error %v vs %v", c.name, budget, errA, errB)
			}
			if errA != nil {
				continue
			}
			if a.Kind != b.Kind || len(a.Steps) != len(b.Steps) || a.PeakBytes != b.PeakBytes ||
				a.Msgs != b.Msgs || a.Bytes != b.Bytes {
				t.Fatalf("%s budget %d: plans differ: %v vs %v", c.name, budget, a, b)
			}
		}
	}
}
