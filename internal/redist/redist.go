// Package redist computes communication schedules for the executable
// DISTRIBUTE statement (paper §2.4, implementation §3.2.2): "Each
// processor determines the new locations of current local data, sends it
// to the new locations, and receives data from other processors."
//
// A schedule is computed symmetrically on every processor from the old
// and new distributions alone — no coordination messages are needed.  Per
// peer, the transfer set is the intersection of "what I own now" with
// "what the peer will own", which the ownership algebra expresses as a
// per-dimension intersection of strided-run sets (index.Grid).  This is
// the "run time optimization of communication related to dynamic array
// references" of §3.2: schedules never enumerate elements to discover
// owners, and are cached keyed by the (old, new) distribution pair.
package redist

import (
	"sync"

	"repro/internal/dist"
	"repro/internal/index"
)

// Transfer describes one peer's part of a redistribution on a given rank.
type Transfer struct {
	// Peer is the other processor's rank.
	Peer int
	// Grid is the set of global indices to move, in canonical
	// (column-major RunSet enumeration) order, identical on both ends.
	Grid index.Grid
	// Count caches Grid.Count().
	Count int
}

// Schedule is one rank's plan for a redistribution.
type Schedule struct {
	// Rank is the processor this schedule belongs to.
	Rank int
	// Sends lists outgoing transfers (data I own under the old
	// distribution that peers own under the new one).  Only primary
	// owners send; the self-transfer (Peer == Rank) is included and is
	// executed as a local copy.
	Sends []Transfer
	// Recvs lists incoming transfers.  Under a replicated new
	// distribution every replica receives its copy.
	Recvs []Transfer
	// LocalKeep is the self-overlap (data already in place), identical
	// to the send/recv entry with Peer == Rank when present.
	LocalKeep index.Grid
}

// SendBytes returns the payload bytes this rank sends to remote peers
// (8 bytes per element, excluding the local copy).
func (s *Schedule) SendBytes() int {
	n := 0
	for _, t := range s.Sends {
		if t.Peer != s.Rank {
			n += 8 * t.Count
		}
	}
	return n
}

// RemoteSendCount returns the number of messages this rank sends.
func (s *Schedule) RemoteSendCount() int {
	n := 0
	for _, t := range s.Sends {
		if t.Peer != s.Rank {
			n++
		}
	}
	return n
}

// Build computes rank's schedule for redistributing from oldD to newD.
// Both distributions must cover the same index domain.  np is the
// transport size (peers are enumerated 0..np-1; ranks outside a
// distribution's target simply own nothing).
func Build(oldD, newD *dist.Distribution, rank, np int) *Schedule {
	s := &Schedule{Rank: rank}
	myOld := oldD.LocalGrid(rank)
	myNew := newD.LocalGrid(rank)
	iAmPrimaryOld := oldD.IsPrimaryRank(rank)
	for peer := 0; peer < np; peer++ {
		if iAmPrimaryOld && !myOld.Empty() {
			peerNew := newD.LocalGrid(peer)
			if g := myOld.Intersect(peerNew); !g.Empty() {
				s.Sends = append(s.Sends, Transfer{Peer: peer, Grid: g, Count: g.Count()})
				if peer == rank {
					s.LocalKeep = g
				}
			}
		}
		if !myNew.Empty() && oldD.IsPrimaryRank(peer) {
			peerOld := oldD.LocalGrid(peer)
			if g := peerOld.Intersect(myNew); !g.Empty() {
				s.Recvs = append(s.Recvs, Transfer{Peer: peer, Grid: g, Count: g.Count()})
			}
		}
	}
	return s
}

// cacheKey identifies a (old,new,rank,view) schedule structurally: SPMD
// ranks build their own logically-equal Distribution objects, so
// fingerprints rather than pointers key the cache.  np is part of the
// key because the schedule enumerates peers 0..np-1: after a membership
// Regroup shrinks the view, a schedule built for the wider epoch would
// address ranks that no longer exist.
type cacheKey struct {
	oldFP string
	newFP string
	rank  int
	np    int
}

// planKey identifies a selected Plan: plans are rank-independent (every
// SPMD rank computes the same one), so only the distribution pair, the
// view width and the budget distinguish them.  α/β are deliberately not
// in the key — within one run they are fixed machine parameters.
type planKey struct {
	oldFP  string
	newFP  string
	np     int
	budget int64
}

// Cache memoizes schedules and plans.  The VFE keeps redistribution
// schedules around because phase-structured codes (ADI, PIC) alternate
// between the same pair of distributions every iteration.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*Schedule
	p  map[planKey]*Plan

	hits, misses int
}

// NewCache creates an empty schedule cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*Schedule), p: make(map[planKey]*Plan)}
}

// Get returns the cached schedule or builds and caches it; hit reports
// whether the schedule was served from the cache.
func (c *Cache) Get(oldD, newD *dist.Distribution, rank, np int) (s *Schedule, hit bool) {
	k := cacheKey{oldD.Fingerprint(), newD.Fingerprint(), rank, np}
	c.mu.Lock()
	if s, ok := c.m[k]; ok {
		c.hits++
		c.mu.Unlock()
		return s, true
	}
	c.misses++
	c.mu.Unlock()
	s = Build(oldD, newD, rank, np)
	c.mu.Lock()
	c.m[k] = s
	c.mu.Unlock()
	return s, false
}

// GetPlan returns the cached plan for (oldD, newD, np, opt) or computes
// and caches it.  Like Get, it is keyed structurally and safe to call
// concurrently from every SPMD rank; all ranks of one view receive the
// same *Plan, so the per-step sub-schedule memoization inside the plan is
// shared too.
func (c *Cache) GetPlan(oldD, newD *dist.Distribution, np int, opt PlanOptions) (*Plan, error) {
	budget := opt.MemBudget
	if budget < 0 {
		budget = 0
	}
	k := planKey{oldD.Fingerprint(), newD.Fingerprint(), np, budget}
	c.mu.Lock()
	if p, ok := c.p[k]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	p, err := PlanMove(oldD, newD, np, opt)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prev, ok := c.p[k]; ok {
		p = prev // another rank raced us; share its memoization
	} else {
		c.p[k] = p
	}
	c.mu.Unlock()
	return p, nil
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
