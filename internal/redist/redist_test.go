package redist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
)

func targets(t *testing.T, np int) dist.Target {
	t.Helper()
	m := machine.New(np)
	t.Cleanup(func() { m.Close() })
	return m.ProcsDim("P", np).Whole()
}

func TestScheduleBlockToCyclic(t *testing.T) {
	tg := targets(t, 2)
	dom := index.Dim(8)
	oldD := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)   // p0: 1-4, p1: 5-8
	newD := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg) // p0: odd, p1: even
	s0 := Build(oldD, newD, 0, 2)
	// p0 owned 1-4; new: p0 gets odds {1,3}, p1 gets evens {2,4}
	if len(s0.Sends) != 2 {
		t.Fatalf("sends = %+v", s0.Sends)
	}
	for _, tr := range s0.Sends {
		if tr.Peer == 0 && tr.Count != 2 {
			t.Errorf("self-keep count = %d", tr.Count)
		}
		if tr.Peer == 1 && tr.Count != 2 {
			t.Errorf("send to 1 count = %d", tr.Count)
		}
	}
	if s0.LocalKeep.Empty() || s0.LocalKeep.Count() != 2 {
		t.Errorf("local keep = %v", s0.LocalKeep)
	}
	if s0.SendBytes() != 16 { // 2 elements * 8 bytes to remote peer
		t.Errorf("send bytes = %d", s0.SendBytes())
	}
	if s0.RemoteSendCount() != 1 {
		t.Errorf("remote sends = %d", s0.RemoteSendCount())
	}
}

func TestScheduleSymmetry(t *testing.T) {
	tg := targets(t, 4)
	dom := index.Dim(23)
	rng := rand.New(rand.NewSource(3))
	mk := func() *dist.Distribution {
		switch rng.Intn(3) {
		case 0:
			return dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
		case 1:
			return dist.MustNew(dist.NewType(dist.CyclicDim(1+rng.Intn(4))), dom, tg)
		default:
			b := make([]int, 4)
			acc := 0
			for i := 0; i < 3; i++ {
				acc += rng.Intn(23 - acc + 1)
				if acc > 23 {
					acc = 23
				}
				b[i] = acc
			}
			b[3] = 23
			return dist.MustNew(dist.NewType(dist.BBlockDim(b...)), dom, tg)
		}
	}
	for trial := 0; trial < 30; trial++ {
		oldD, newD := mk(), mk()
		scheds := make([]*Schedule, 4)
		for r := 0; r < 4; r++ {
			scheds[r] = Build(oldD, newD, r, 4)
		}
		// symmetry: r's send to q == q's recv from r (same grid count)
		for r := 0; r < 4; r++ {
			for _, snd := range scheds[r].Sends {
				found := false
				for _, rcv := range scheds[snd.Peer].Recvs {
					if rcv.Peer == r {
						found = true
						if rcv.Count != snd.Count {
							t.Fatalf("trial %d: asymmetric counts %d vs %d", trial, snd.Count, rcv.Count)
						}
					}
				}
				if !found {
					t.Fatalf("trial %d: %d sends to %d but no matching recv", trial, r, snd.Peer)
				}
			}
		}
		// coverage: total received counts == domain size
		total := 0
		for r := 0; r < 4; r++ {
			for _, rcv := range scheds[r].Recvs {
				total += rcv.Count
			}
		}
		if total != dom.Size() {
			t.Fatalf("trial %d: recv total %d != %d (old %v new %v)", trial, total, dom.Size(), oldD, newD)
		}
	}
}

func TestScheduleValuePreservationSimulated(t *testing.T) {
	// Simulate a full redistribution with schedules only: every element's
	// value must arrive at its new owner.
	tg := targets(t, 3)
	dom := index.Dim(10, 7)
	oldD := dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), dom, tg)
	newD := dist.MustNew(dist.NewType(dist.CyclicDim(2), dist.ElidedDim()), dom, tg)

	val := func(p index.Point) float64 { return float64(p[0]*100 + p[1]) }
	// "mailboxes": per new-owner, received (point, value) pairs
	got := make([]map[string]float64, 3)
	for r := range got {
		got[r] = map[string]float64{}
	}
	for r := 0; r < 3; r++ {
		s := Build(oldD, newD, r, 3)
		for _, tr := range s.Sends {
			tr.Grid.ForEach(func(p index.Point) bool {
				if !oldD.IsLocal(r, p) {
					t.Fatalf("rank %d sending non-local %v", r, p)
				}
				got[tr.Peer][p.String()] = val(p)
				return true
			})
		}
	}
	count := 0
	for r := 0; r < 3; r++ {
		g := newD.LocalGrid(r)
		g.ForEach(func(p index.Point) bool {
			v, ok := got[r][p.String()]
			if !ok {
				t.Fatalf("rank %d missing %v", r, p)
			}
			if v != val(p) {
				t.Fatalf("rank %d wrong value at %v", r, p)
			}
			count++
			return true
		})
	}
	if count != dom.Size() {
		t.Fatalf("covered %d of %d", count, dom.Size())
	}
}

func TestScheduleWithReplication(t *testing.T) {
	// old: BLOCK on 1-D view of 4 procs; new: BLOCK onto 2x2 (replicated
	// across dim 1).  Each element must reach both replicas, sent once
	// per (primary sender, replica receiver) pair.
	m := machine.New(4)
	defer m.Close()
	tg1 := m.ProcsDim("L", 4).Whole()
	tg2 := m.ProcsDim("G", 2, 2).Whole()
	dom := index.Dim(8)
	oldD := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg1)
	newD := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg2)
	recvTotal := 0
	for r := 0; r < 4; r++ {
		s := Build(oldD, newD, r, 4)
		for _, rcv := range s.Recvs {
			recvTotal += rcv.Count
		}
	}
	// every rank owns 4 elements under newD (replication degree 2)
	if recvTotal != 16 {
		t.Fatalf("recv total = %d, want 16", recvTotal)
	}
	// reverse direction: replicated -> non-replicated; only primaries send
	sendersSeen := map[int]bool{}
	for r := 0; r < 4; r++ {
		s := Build(newD, oldD, r, 4)
		for _, snd := range s.Sends {
			sendersSeen[r] = true
			_ = snd
		}
	}
	for r := range sendersSeen {
		if !newD.IsPrimaryRank(r) {
			t.Fatalf("non-primary rank %d sent data", r)
		}
	}
}

func TestCache(t *testing.T) {
	tg := targets(t, 2)
	dom := index.Dim(10)
	a := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
	b := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg)
	c := NewCache()
	s1, hit1 := c.Get(a, b, 0, 2)
	s2, hit2 := c.Get(a, b, 0, 2)
	if s1 != s2 {
		t.Fatal("cache should return the same schedule")
	}
	if hit1 || !hit2 {
		t.Fatalf("hit flags = %v/%v, want false/true", hit1, hit2)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d/%d", h, m)
	}
	if s3, _ := c.Get(b, a, 0, 2); s3 == s1 {
		t.Fatal("different key should build a different schedule")
	}
}

func TestCacheKeyedOnView(t *testing.T) {
	// Regression: a schedule built for one membership view must not be
	// served on a shrunken view.  Both distributions fingerprint
	// identically across the two Get calls — only np differs — and the
	// np=4 schedule addresses rank 3, which no longer exists after a
	// Regroup onto a 3-rank view.  The old cache key (oldFP, newFP, rank)
	// returned the stale schedule as a hit.
	tg := targets(t, 4)
	dom := index.Dim(16)
	oldD := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
	newD := dist.MustNew(dist.NewType(dist.CyclicDim(1)), dom, tg)
	c := NewCache()

	wide, hit := c.Get(oldD, newD, 0, 4)
	if hit {
		t.Fatal("first build should miss")
	}
	peers := func(s *Schedule) map[int]bool {
		out := map[int]bool{}
		for _, tr := range s.Recvs {
			out[tr.Peer] = true
		}
		return out
	}
	if !peers(wide)[3] {
		t.Fatalf("np=4 schedule should receive from rank 3, got peers %v", peers(wide))
	}

	narrow, hit := c.Get(oldD, newD, 0, 3)
	if hit {
		t.Fatal("shrunken view must not be served the wider view's schedule")
	}
	if narrow == wide {
		t.Fatal("np=3 schedule aliases the np=4 schedule")
	}
	if peers(narrow)[3] {
		t.Fatalf("np=3 schedule addresses departed rank 3: %v", peers(narrow))
	}

	// Re-asking for either view is a hit on its own entry.
	if s, hit := c.Get(oldD, newD, 0, 4); !hit || s != wide {
		t.Fatal("np=4 entry lost")
	}
	if s, hit := c.Get(oldD, newD, 0, 3); !hit || s != narrow {
		t.Fatal("np=3 entry lost")
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"4096", 4096, false},
		{"4K", 4 << 10, false},
		{"4k", 4 << 10, false},
		{"2M", 2 << 20, false},
		{"1G", 1 << 30, false},
		{" 64K ", 64 << 10, false},
		{"-1", 0, true},
		{"x", 0, true},
		{"4T", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseBudget(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseBudget(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestParseBudgetOverflow: n × multiplier must not wrap around int64 —
// before the range check, "99999999999999G" silently overflowed to a
// bogus (possibly negative) budget.  Every suffix is probed just above
// and just below its overflow point, with and without whitespace.
func TestParseBudgetOverflow(t *testing.T) {
	const maxI64 = math.MaxInt64
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		// the historical overflow reproducer
		{"99999999999999G", 0, true},
		// per-suffix boundaries: the largest n that still fits, and n+1
		{fmt.Sprintf("%d", int64(maxI64)), maxI64, false},
		{"9223372036854775808", 0, true}, // MaxInt64+1: strconv range error
		{fmt.Sprintf("%dK", maxI64>>10), (maxI64 >> 10) << 10, false},
		{fmt.Sprintf("%dK", maxI64>>10+1), 0, true},
		{fmt.Sprintf("%dM", maxI64>>20), (maxI64 >> 20) << 20, false},
		{fmt.Sprintf("%dM", maxI64>>20+1), 0, true},
		{fmt.Sprintf("%dG", maxI64>>30), (maxI64 >> 30) << 30, false},
		{fmt.Sprintf("%dG", maxI64>>30+1), 0, true},
		// whitespace must not change the verdict either way
		{fmt.Sprintf("  %dG  ", maxI64>>30), (maxI64 >> 30) << 30, false},
		{"  99999999999999G  ", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseBudget(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err != nil && !errors.Is(err, strconv.ErrRange) && !strings.Contains(err.Error(), "range") {
			t.Errorf("ParseBudget(%q) error %v is not a range error", c.in, err)
		}
		if !c.err && got != c.want {
			t.Errorf("ParseBudget(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
