package redist

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dist"
	"repro/internal/index"
)

// This file turns redist from a one-shot schedule builder into a
// *planner*: a (dist_A -> dist_B) move is decomposed into a short sequence
// of bounded collective steps, each plan candidate is costed with a
// Hockney α/β model plus an exact peak-resident-wire-bytes estimate, and
// the plan that fits the caller's memory budget is selected.  The
// decomposition grammar follows "Memory-efficient array redistribution
// through portable collective communication" (Rink et al.): any move
// factors into direct all-to-all, pairwise exchange rounds, panel-chunked
// rounds, and allgather+local-select; the multi-step scheduling cost
// model follows Sudarsan & Ribbens.
//
//	plan     := direct | pairwise | chunked(C) | allgather
//	direct   := one alltoallv, every send packed before the exchange
//	pairwise := np-1 ring rounds, one peer's send+recv resident at a time
//	chunked  := C domain panels, each moved by pairwise rounds
//	allgather:= every rank publishes its part, receivers select locally
//
// All candidates move exactly the same element set (the symmetric
// Schedule); they differ only in how many wire bytes are resident at
// once and in how many messages they take.

// StepKind enumerates the portable collective step types a plan is built
// from.
type StepKind int

// Step kinds.
const (
	// StepDirect is one monolithic alltoallv: every outgoing span is
	// packed before the exchange and every incoming payload is resident
	// until unpacked — today's legacy execution, maximal peak memory.
	StepDirect StepKind = iota
	// StepPairwise moves (a panel of) the transfer in np-1 staggered
	// ring rounds; at most one peer's send buffer and one peer's receive
	// payload are resident at any time.
	StepPairwise
	// StepAllgather publishes every rank's packed local part and lets
	// each receiver select the spans it needs locally — few messages,
	// peak memory on the order of the whole array.
	StepAllgather
)

func (k StepKind) String() string {
	switch k {
	case StepDirect:
		return "direct"
	case StepPairwise:
		return "pairwise"
	case StepAllgather:
		return "allgather"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Step is one bounded collective round of a plan.
type Step struct {
	Kind StepKind
	// Panel restricts the move to a slab of the index domain (chunked
	// plans); an empty Dims slice means the whole domain.
	Panel index.Grid
	// PeakBytes is the maximum resident wire bytes any rank holds during
	// this step (send buffers + received payloads, 8 bytes/element).
	PeakBytes int64
	// Msgs and Bytes are the remote data messages and payload bytes the
	// step moves, summed over all ranks.
	Msgs  int64
	Bytes int64
}

// Whole reports whether the step covers the full domain (no panel
// restriction).
func (s *Step) Whole() bool { return len(s.Panel.Dims) == 0 }

// PlanOptions parameterizes plan selection.
type PlanOptions struct {
	// MemBudget bounds the peak resident wire bytes per rank.  Zero (or
	// negative) means unbounded, which guarantees the direct plan — and
	// with it exact byte/msg parity with the legacy one-shot alltoallv.
	MemBudget int64
	// Alpha and Beta are the Hockney model parameters (seconds per
	// message, seconds per byte) used for the modeled-time tie-break;
	// both zero selects uninformed defaults.
	Alpha, Beta float64
}

// Plan is the selected decomposition of one redistribution, identical on
// every rank (it is computed from the distributions alone, SPMD-
// symmetrically — no coordination messages).
type Plan struct {
	// Kind names the decomposition ("direct", "pairwise", "chunked[8]",
	// "allgather").
	Kind string
	// Steps execute in order; each is individually bounded.
	Steps []Step
	// PeakBytes is max over steps of Step.PeakBytes — the planned peak
	// resident wire bytes on the worst rank.
	PeakBytes int64
	// Msgs and Bytes total the remote traffic over all steps and ranks.
	Msgs  int64
	Bytes int64
	// ModelTime is the plan's modeled execution time (seconds) under the
	// α/β parameters the planner was given.
	ModelTime float64
	// Budget echoes the MemBudget the plan was selected under.
	Budget int64

	// chunkDim is the domain dimension panels slice (chunked plans).
	chunkDim int

	mu  sync.Mutex
	sub map[subKey]*Schedule // memoized per-(rank,step) panel schedules
}

type subKey struct {
	rank, step int
}

func (p *Plan) String() string {
	return fmt.Sprintf("%s steps=%d peak=%dB msgs=%d bytes=%d", p.Kind, len(p.Steps), p.PeakBytes, p.Msgs, p.Bytes)
}

// ErrNoPlan reports that no candidate decomposition fits the memory
// budget (the budget is below even a single-panel pairwise exchange of
// the finest chunking).  The budget is enforced, not advisory: callers
// must fail the redistribution rather than exceed it.
var ErrNoPlan = errors.New("redist: no plan fits the memory budget")

// StepSchedule returns s restricted to step k's panel: every transfer
// grid intersected with the panel, empty transfers dropped.  Whole-domain
// steps return s itself.  Results are memoized per (rank, step) — phase-
// alternating programs execute the same plan every iteration.
func (p *Plan) StepSchedule(s *Schedule, k int) *Schedule {
	st := &p.Steps[k]
	if st.Whole() {
		return s
	}
	key := subKey{s.Rank, k}
	p.mu.Lock()
	if p.sub == nil {
		p.sub = make(map[subKey]*Schedule)
	}
	if sub, ok := p.sub[key]; ok {
		p.mu.Unlock()
		return sub
	}
	p.mu.Unlock()
	sub := restrictSchedule(s, st.Panel, p.chunkDim)
	p.mu.Lock()
	p.sub[key] = sub
	p.mu.Unlock()
	return sub
}

// restrictSchedule intersects every transfer of s with the panel (which
// differs from the full domain only along dimension chunkDim).
func restrictSchedule(s *Schedule, panel index.Grid, chunkDim int) *Schedule {
	out := &Schedule{Rank: s.Rank}
	clip := func(g index.Grid) index.Grid {
		ng := index.Grid{Dims: make([]index.RunSet, len(g.Dims))}
		copy(ng.Dims, g.Dims)
		ng.Dims[chunkDim] = g.Dims[chunkDim].Intersect(panel.Dims[chunkDim])
		return ng
	}
	for _, t := range s.Sends {
		if g := clip(t.Grid); !g.Empty() {
			out.Sends = append(out.Sends, Transfer{Peer: t.Peer, Grid: g, Count: g.Count()})
		}
	}
	for _, t := range s.Recvs {
		if g := clip(t.Grid); !g.Empty() {
			out.Recvs = append(out.Recvs, Transfer{Peer: t.Peer, Grid: g, Count: g.Count()})
		}
	}
	if !s.LocalKeep.Empty() {
		if g := clip(s.LocalKeep); !g.Empty() {
			out.LocalKeep = g
		}
	}
	return out
}

// panelCount returns the element count of grid g restricted along
// dimension k to the runs of panel (cheap: only dimension k's count
// changes).
func panelCount(g index.Grid, k int, panel index.RunSet) int {
	dk := g.Dims[k].Count()
	if dk == 0 {
		return 0
	}
	return g.Count() / dk * g.Dims[k].Intersect(panel).Count()
}

// planner carries the shared inputs of candidate construction.
type planner struct {
	oldD, newD *dist.Distribution
	np         int
	opt        PlanOptions
	scheds     []*Schedule // per-rank symmetric schedules
}

// PlanMove selects the decomposition of (oldD -> newD) over np ranks
// under opt.  It is deterministic in its arguments, so every SPMD rank
// computes the same plan.  With no budget the direct plan is returned
// unconditionally (exact byte/msg parity with the legacy path); with a
// budget, candidates are ranked by (peak bytes, messages, modeled time)
// among those that fit, and ErrNoPlan is returned when none does.
func PlanMove(oldD, newD *dist.Distribution, np int, opt PlanOptions) (*Plan, error) {
	pl := newPlanner(oldD, newD, np, opt)
	direct := pl.direct()
	if pl.opt.MemBudget <= 0 {
		return direct, nil
	}
	cands := pl.candidates(direct)
	var best *Plan
	for _, c := range cands {
		if c.PeakBytes > opt.MemBudget {
			continue
		}
		if best == nil || better(c, best) {
			best = c
		}
	}
	if best == nil {
		min := direct
		for _, c := range cands {
			if c.PeakBytes < min.PeakBytes {
				min = c
			}
		}
		return nil, fmt.Errorf("%w: budget %d bytes, finest decomposition (%s) still peaks at %d bytes",
			ErrNoPlan, opt.MemBudget, min.Kind, min.PeakBytes)
	}
	best.Budget = opt.MemBudget
	return best, nil
}

// newPlanner builds the shared candidate-construction state: the
// symmetric per-rank schedules and the (defaulted) cost parameters.
func newPlanner(oldD, newD *dist.Distribution, np int, opt PlanOptions) *planner {
	if opt.Alpha == 0 && opt.Beta == 0 {
		// Uninformed defaults: iPSC-class latency, ~100 MB/s — only the
		// tie-break depends on them.
		opt.Alpha, opt.Beta = 1e-4, 1e-8
	}
	pl := &planner{oldD: oldD, newD: newD, np: np, opt: opt}
	pl.scheds = make([]*Schedule, np)
	for r := 0; r < np; r++ {
		pl.scheds[r] = Build(oldD, newD, r, np)
	}
	return pl
}

// candidates lists every decomposition the planner considers under its
// options, in enumeration (tie-break) order.
func (pl *planner) candidates(direct *Plan) []*Plan {
	cands := []*Plan{direct, pl.pairwise()}
	if ch := pl.chunked(); ch != nil {
		cands = append(cands, ch)
	}
	if ag := pl.allgather(); ag != nil {
		cands = append(cands, ag)
	}
	return cands
}

// Candidates returns every candidate decomposition the planner would
// consider for (oldD -> newD) under opt, feasible or not — direct and
// pairwise always, chunked when a budget forces panel stepping and the
// domain can be sliced, allgather when the old distribution is not
// replicated.  Exposed for the planner's property tests and for analysis
// tooling; plan selection itself goes through PlanMove.
func Candidates(oldD, newD *dist.Distribution, np int, opt PlanOptions) []*Plan {
	pl := newPlanner(oldD, newD, np, opt)
	return pl.candidates(pl.direct())
}

// better ranks candidate plans: lowest peak resident bytes first, then
// fewest messages, then lowest modeled time.  Strict comparisons keep the
// enumeration order (direct, pairwise, chunked, allgather) as the final
// tie-break.
func better(a, b *Plan) bool {
	if a.PeakBytes != b.PeakBytes {
		return a.PeakBytes < b.PeakBytes
	}
	if a.Msgs != b.Msgs {
		return a.Msgs < b.Msgs
	}
	return a.ModelTime < b.ModelTime
}

// remoteBytes returns rank r's remote send and receive payload bytes.
func remoteBytes(s *Schedule) (send, recv, sendMsgs, recvMsgs int64) {
	for _, t := range s.Sends {
		if t.Peer != s.Rank {
			send += int64(8 * t.Count)
			sendMsgs++
		}
	}
	for _, t := range s.Recvs {
		if t.Peer != s.Rank {
			recv += int64(8 * t.Count)
			recvMsgs++
		}
	}
	return
}

// direct builds the legacy one-shot candidate: one alltoallv step, every
// send buffer packed up front, every receive payload resident until
// unpacked.
func (pl *planner) direct() *Plan {
	var peak, msgs, bytes int64
	var worst float64
	for r := 0; r < pl.np; r++ {
		s, v, sm, rm := remoteBytes(pl.scheds[r])
		if p := s + v; p > peak {
			peak = p
		}
		msgs += sm
		bytes += s
		if t := pl.opt.Alpha*float64(sm+rm) + pl.opt.Beta*float64(s+v); t > worst {
			worst = t
		}
	}
	return &Plan{
		Kind:      "direct",
		Steps:     []Step{{Kind: StepDirect, PeakBytes: peak, Msgs: msgs, Bytes: bytes}},
		PeakBytes: peak, Msgs: msgs, Bytes: bytes, ModelTime: worst,
	}
}

// pairwise builds the ring-round candidate over the whole domain: same
// messages and bytes as direct, but only one peer's send and one peer's
// receive resident per round.
func (pl *planner) pairwise() *Plan {
	peak := pl.pairwisePeak(nil)
	_, msgs, bytes, t := pl.roundCost(nil)
	return &Plan{
		Kind:      "pairwise",
		Steps:     []Step{{Kind: StepPairwise, PeakBytes: peak, Msgs: msgs, Bytes: bytes}},
		PeakBytes: peak, Msgs: msgs, Bytes: bytes, ModelTime: t,
	}
}

// pairBytes returns the payload bytes rank r sends to peer q under the
// optional panel restriction (nil = whole domain) along chunkDim.
func (pl *planner) pairBytes(r, q int, panel index.RunSet, chunkDim int) int64 {
	for _, t := range pl.scheds[r].Sends {
		if t.Peer != q {
			continue
		}
		if panel == nil {
			return int64(8 * t.Count)
		}
		return int64(8 * panelCount(t.Grid, chunkDim, panel))
	}
	return 0
}

// pairwisePeak computes max over (rank, ring round) of resident bytes
// (send to the round's peer + receive from the round's peer) under the
// optional panel restriction.
func (pl *planner) pairwisePeak(panel index.RunSet) int64 {
	chunkDim := pl.chunkDimOf()
	var peak int64
	for r := 0; r < pl.np; r++ {
		for j := 1; j < pl.np; j++ {
			to := (r + j) % pl.np
			from := (r - j + pl.np) % pl.np
			res := pl.pairBytes(r, to, panel, chunkDim) + pl.pairBytes(from, r, panel, chunkDim)
			if res > peak {
				peak = res
			}
		}
	}
	return peak
}

// roundCost totals messages, bytes and modeled time of one pairwise pass
// under the optional panel restriction.
func (pl *planner) roundCost(panel index.RunSet) (peak, msgs, bytes int64, t float64) {
	chunkDim := pl.chunkDimOf()
	for j := 1; j < pl.np; j++ {
		var roundT float64
		for r := 0; r < pl.np; r++ {
			to := (r + j) % pl.np
			from := (r - j + pl.np) % pl.np
			snd := pl.pairBytes(r, to, panel, chunkDim)
			rcv := pl.pairBytes(from, r, panel, chunkDim)
			if snd > 0 {
				msgs++
				bytes += snd
			}
			var rt float64
			if snd > 0 {
				rt += pl.opt.Alpha + pl.opt.Beta*float64(snd)
			}
			if rcv > 0 {
				rt += pl.opt.Alpha + pl.opt.Beta*float64(rcv)
			}
			if rt > roundT {
				roundT = rt
			}
			if res := snd + rcv; res > peak {
				peak = res
			}
		}
		t += roundT
	}
	return
}

// chunkDimOf picks the domain dimension panels slice: the one with the
// largest extent (ties to the outermost), so panels stay slab-shaped and
// the finest chunking has the most headroom.
func (pl *planner) chunkDimOf() int {
	dom := pl.oldD.Domain()
	best, bestExt := 0, 0
	for k := 0; k < dom.Rank(); k++ {
		if e := dom.Extent(k); e >= bestExt {
			best, bestExt = k, e
		}
	}
	return best
}

// panels splits the chunk dimension's extent into c contiguous slabs.
func (pl *planner) panels(c int) []index.RunSet {
	k := pl.chunkDimOf()
	dom := pl.oldD.Domain()
	lo, hi := dom.Lo[k], dom.Hi[k]
	n := hi - lo + 1
	if c > n {
		c = n
	}
	out := make([]index.RunSet, 0, c)
	for i := 0; i < c; i++ {
		plo := lo + i*n/c
		phi := lo + (i+1)*n/c - 1
		if phi < plo {
			continue
		}
		out = append(out, index.RunSet{index.NewRun(plo, phi, 1)})
	}
	return out
}

// chunked builds the panel-stepping candidate: the smallest chunk count
// (doubling search) whose per-step pairwise peak fits the budget.  Nil
// when even single-index panels do not fit.
func (pl *planner) chunked() *Plan {
	k := pl.chunkDimOf()
	dom := pl.oldD.Domain()
	maxC := dom.Extent(k)
	if maxC < 2 {
		return nil
	}
	for c := 2; ; c *= 2 {
		if c > maxC {
			c = maxC
		}
		panels := pl.panels(c)
		var peak, msgs, bytes int64
		var t float64
		fits := true
		steps := make([]Step, 0, len(panels))
		for _, pn := range panels {
			sp, sm, sb, st := pl.roundCost(pn)
			if sp > pl.opt.MemBudget {
				fits = false
				break
			}
			if sp > peak {
				peak = sp
			}
			msgs += sm
			bytes += sb
			t += st
			g := index.Grid{Dims: make([]index.RunSet, dom.Rank())}
			for d := 0; d < dom.Rank(); d++ {
				g.Dims[d] = index.RunSet{index.NewRun(dom.Lo[d], dom.Hi[d], 1)}
			}
			g.Dims[k] = pn
			steps = append(steps, Step{Kind: StepPairwise, Panel: g, PeakBytes: sp, Msgs: sm, Bytes: sb})
		}
		if fits {
			return &Plan{
				Kind:      fmt.Sprintf("chunked[%d]", len(steps)),
				Steps:     steps,
				PeakBytes: peak, Msgs: msgs, Bytes: bytes, ModelTime: t,
				chunkDim: k,
			}
		}
		if c == maxC {
			return nil
		}
	}
}

// allgather builds the publish-and-select candidate: every rank packs its
// whole old-distribution part, an allgather shares the concatenation, and
// receivers select their new spans locally.  Offered only for
// non-replicated old distributions (otherwise several replicas would
// publish the same elements).
func (pl *planner) allgather() *Plan {
	if pl.oldD.Replicated() {
		return nil
	}
	var sumOwn, maxOwn int64
	for r := 0; r < pl.np; r++ {
		own := int64(8 * pl.oldD.LocalGrid(r).Count())
		sumOwn += own
		if own > maxOwn {
			maxOwn = own
		}
	}
	frame := sumOwn + int64(4*pl.np)
	// Gather to root: np-1 sends of the senders' parts; binomial bcast of
	// the frame: np-1 sends of frame bytes.  Peak resident on any rank is
	// the full frame plus its own packed part.
	msgs := int64(2 * (pl.np - 1))
	bytes := (sumOwn - maxOwn) + int64(pl.np-1)*frame // gather payloads (root sends nothing) + bcast frames
	peak := frame + maxOwn
	logNP := 0
	for 1<<logNP < pl.np {
		logNP++
	}
	t := pl.opt.Alpha*float64(pl.np-1+logNP) + pl.opt.Beta*float64(sumOwn+frame)
	return &Plan{
		Kind:      "allgather",
		Steps:     []Step{{Kind: StepAllgather, PeakBytes: peak, Msgs: msgs, Bytes: bytes}},
		PeakBytes: peak, Msgs: msgs, Bytes: bytes, ModelTime: t,
	}
}

// ParseBudget parses a human-friendly byte count: a plain integer, or an
// integer with a K/M/G suffix (binary multiples).  "0" and "" mean
// unbounded.
func ParseBudget(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("redist: bad budget %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("redist: negative budget %q", s)
	}
	// The suffix multiply must not wrap: "99999999999999G" is out of
	// range, not a silently huge (or negative) budget.
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("redist: budget %q out of range: %w", s, strconv.ErrRange)
	}
	return n * mult, nil
}
