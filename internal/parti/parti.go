// Package parti implements the PARTI-style runtime primitives the paper's
// VFE relies on for irregular accesses (§3.2: "implementation of irregular
// accesses via translation tables and sophisticated buffering schemes for
// accesses to non-local objects, as implemented in the PARTI routines
// [15]", and §4: "the compiler will have to generate runtime code using
// the inspector/executor paradigm [10, 15] to support this particle
// motion").
//
// A TTable is a distributed translation table over a one-dimensional
// global index space: entry i records which processor owns element i and
// at which local position.  The table itself is block-distributed, so a
// lookup for index i goes to the processor holding block ⌈i/blockSize⌉.
//
// A Schedule is the product of the *inspector* phase: given an arbitrary
// list of global indices, it dereferences them through the table, groups
// them by owner, deduplicates, and exchanges request lists so that every
// owner knows what to serve.  The *executor* phase (Gather / Scatter)
// then moves only data, any number of times, until the access pattern
// changes.
package parti

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
)

// TTable is a distributed translation table for a global index space
// 1..N.  The handle is shared by all processors (SPMD).
type TTable struct {
	n     int
	np    int
	owner [][]int32 // per rank: owner of each index in that rank's block
	local [][]int32 // per rank: owner-local position of each index
}

// blockOf returns the rank holding the table entry for global index i
// (1-based), with the table block-distributed over np processors.
func (t *TTable) blockOf(i int) int {
	bs := (t.n + t.np - 1) / t.np
	return (i - 1) / bs
}

func (t *TTable) blockLo(rank int) int {
	bs := (t.n + t.np - 1) / t.np
	return rank*bs + 1
}

func (t *TTable) blockLen(rank int) int {
	bs := (t.n + t.np - 1) / t.np
	lo := rank*bs + 1
	hi := lo + bs - 1
	if hi > t.n {
		hi = t.n
	}
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// NewTTable collectively builds a translation table for a global index
// space of size n.  myIndices lists the global indices this processor
// owns, in local-storage order (the position in the slice is the
// owner-local index).  Every global index must be owned by exactly one
// processor.
func NewTTable(ctx *machine.Ctx, n int, myIndices []int) *TTable {
	np, rank := ctx.NP(), ctx.Rank()
	t := ctx.CollectiveOnce(func() any {
		return &TTable{n: n, np: np, owner: make([][]int32, np), local: make([][]int32, np)}
	}).(*TTable)

	// Route (index, owner, local) triples to the table block holders.
	send := make([][]int, np)
	for pos, g := range myIndices {
		if g < 1 || g > n {
			panic(fmt.Sprintf("parti: global index %d outside 1..%d", g, n))
		}
		b := t.blockOf(g)
		send[b] = append(send[b], g, rank, pos)
	}
	bufs := make([][]byte, np)
	for p, s := range send {
		if len(s) > 0 {
			bufs[p] = msg.EncodeInts(s)
		}
	}
	recvd, err := ctx.Comm().Alltoallv(bufs)
	if err != nil {
		panic(fmt.Sprintf("parti: ttable build exchange: %v", err))
	}
	bl := t.blockLen(rank)
	lo := t.blockLo(rank)
	own := make([]int32, bl)
	loc := make([]int32, bl)
	for i := range own {
		own[i] = -1
	}
	for _, buf := range recvd {
		if buf == nil {
			continue
		}
		trip := msg.DecodeInts(buf)
		for i := 0; i+2 < len(trip); i += 3 {
			g, ownr, pos := trip[i], trip[i+1], trip[i+2]
			idx := g - lo
			if own[idx] != -1 {
				panic(fmt.Sprintf("parti: global index %d registered twice (by %d and %d)", g, own[idx], ownr))
			}
			own[idx] = int32(ownr)
			loc[idx] = int32(pos)
		}
	}
	t.owner[rank] = own
	t.local[rank] = loc
	ctx.Barrier()
	return t
}

// Dereference looks up owners and owner-local positions for an arbitrary
// list of global indices.  Collective: all processors must call it (with
// possibly different index lists).
func (t *TTable) Dereference(ctx *machine.Ctx, indices []int) (owners, locals []int) {
	np, rank := ctx.NP(), ctx.Rank()
	// group queries by table-block holder
	req := make([][]int, np)
	place := make([][]int, np)
	for q, g := range indices {
		if g < 1 || g > t.n {
			panic(fmt.Sprintf("parti: dereference of %d outside 1..%d", g, t.n))
		}
		b := t.blockOf(g)
		req[b] = append(req[b], g)
		place[b] = append(place[b], q)
	}
	bufs := make([][]byte, np)
	for p := range req {
		if len(req[p]) > 0 {
			bufs[p] = msg.EncodeInts(req[p])
		}
	}
	queries, err := ctx.Comm().Alltoallv(bufs)
	if err != nil {
		panic(fmt.Sprintf("parti: dereference query exchange: %v", err))
	}
	// answer incoming queries from my block
	answers := make([][]byte, np)
	lo := t.blockLo(rank)
	for p, buf := range queries {
		if buf == nil {
			continue
		}
		qs := msg.DecodeInts(buf)
		ans := make([]int, 0, 2*len(qs))
		for _, g := range qs {
			idx := g - lo
			o := t.owner[rank][idx]
			if o < 0 {
				panic(fmt.Sprintf("parti: index %d has no registered owner", g))
			}
			ans = append(ans, int(o), int(t.local[rank][idx]))
		}
		answers[p] = msg.EncodeInts(ans)
	}
	replies, err := ctx.Comm().Alltoallv(answers)
	if err != nil {
		panic(fmt.Sprintf("parti: dereference reply exchange: %v", err))
	}
	owners = make([]int, len(indices))
	locals = make([]int, len(indices))
	for p, buf := range replies {
		if buf == nil {
			continue
		}
		ans := msg.DecodeInts(buf)
		for k := 0; k < len(ans)/2; k++ {
			q := place[p][k]
			owners[q] = ans[2*k]
			locals[q] = ans[2*k+1]
		}
	}
	return owners, locals
}

// N returns the size of the translated index space.
func (t *TTable) N() int { return t.n }
