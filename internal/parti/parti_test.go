package parti

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/msg"
)

func run(t *testing.T, np int, body func(ctx *machine.Ctx) error) *machine.Machine {
	t.Helper()
	m := machine.New(np)
	t.Cleanup(func() { m.Close() })
	if err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	return m
}

// irregularOwnership deals indices 1..n to np processors by a fixed
// pseudo-random permutation, returning each rank's list (local order).
func irregularOwnership(n, np int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, np)
	perm := rng.Perm(n)
	for k, idx := range perm {
		r := rng.Intn(np)
		_ = k
		out[r] = append(out[r], idx+1)
	}
	return out
}

func TestTTableBuildAndDereference(t *testing.T) {
	const n, np = 40, 4
	own := irregularOwnership(n, np, 5)
	run(t, np, func(ctx *machine.Ctx) error {
		tt := NewTTable(ctx, n, own[ctx.Rank()])
		// every rank dereferences all indices and checks them
		all := make([]int, n)
		for i := range all {
			all[i] = i + 1
		}
		owners, locals := tt.Dereference(ctx, all)
		for i := 1; i <= n; i++ {
			o, l := owners[i-1], locals[i-1]
			if o < 0 || o >= np {
				t.Errorf("index %d: bad owner %d", i, o)
				continue
			}
			if own[o][l] != i {
				t.Errorf("index %d: owner %d local %d holds %d", i, o, l, own[o][l])
			}
		}
		if tt.N() != n {
			t.Errorf("N = %d", tt.N())
		}
		return nil
	})
}

func TestTTableDuplicateRegistrationPanics(t *testing.T) {
	m := machine.New(2)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		// both ranks claim index 1
		NewTTable(ctx, 4, []int{1, ctx.Rank() + 2})
		return nil
	})
	if err == nil {
		t.Fatal("duplicate ownership should fail")
	}
}

func TestGatherSchedule(t *testing.T) {
	const n, np = 30, 3
	own := irregularOwnership(n, np, 9)
	run(t, np, func(ctx *machine.Ctx) error {
		rank := ctx.Rank()
		tt := NewTTable(ctx, n, own[rank])
		// local data: value of global index g is g*10
		local := make([]float64, len(own[rank]))
		for pos, g := range own[rank] {
			local[pos] = float64(g * 10)
		}
		// each rank requests a scattered pattern incl. duplicates
		want := []int{1, 5, 5, n, rank + 2, 17, 1}
		sched := BuildGather(ctx, tt, want)
		vals := sched.Gather(ctx, local)
		for q, g := range want {
			if vals[q] != float64(g*10) {
				t.Errorf("rank %d: gather[%d] (index %d) = %v", rank, q, g, vals[q])
			}
		}
		// dedup: distinct indices in want (1,5,N,rank+2,17 — maybe overlap)
		distinct := map[int]bool{}
		for _, g := range want {
			distinct[g] = true
		}
		if sched.RequestedValues() != len(distinct) {
			t.Errorf("rank %d: requested %d values for %d distinct indices", rank, sched.RequestedValues(), len(distinct))
		}
		// executor is repeatable
		vals2 := sched.Gather(ctx, local)
		for q := range vals2 {
			if vals2[q] != vals[q] {
				t.Errorf("second gather differs at %d", q)
			}
		}
		return nil
	})
}

func TestScatterCombine(t *testing.T) {
	const n, np = 12, 3
	own := irregularOwnership(n, np, 13)
	run(t, np, func(ctx *machine.Ctx) error {
		rank := ctx.Rank()
		tt := NewTTable(ctx, n, own[rank])
		local := make([]float64, len(own[rank])) // zeros
		// every rank deposits 1.0 into indices 1..n (all of them)
		all := make([]int, n)
		vals := make([]float64, n)
		for i := range all {
			all[i] = i + 1
			vals[i] = 1
		}
		sched := BuildGather(ctx, tt, all)
		sched.Scatter(ctx, local, vals, msg.SumF64)
		ctx.Barrier()
		// each element got np deposits of 1.0
		for pos := range local {
			if local[pos] != float64(np) {
				t.Errorf("rank %d: local[%d] = %v want %d", rank, pos, local[pos], np)
			}
		}
		return nil
	})
}

func TestScatterDuplicatePositions(t *testing.T) {
	const n, np = 6, 2
	own := [][]int{{1, 2, 3}, {4, 5, 6}}
	run(t, np, func(ctx *machine.Ctx) error {
		rank := ctx.Rank()
		tt := NewTTable(ctx, n, own[rank])
		local := make([]float64, 3)
		var idx []int
		var vals []float64
		if rank == 0 {
			idx = []int{4, 4, 4} // three deposits to the same remote index
			vals = []float64{1, 2, 3}
		} else {
			idx = []int{}
			vals = []float64{}
		}
		sched := BuildGather(ctx, tt, idx)
		sched.Scatter(ctx, local, vals, msg.SumF64)
		ctx.Barrier()
		if rank == 1 && local[0] != 6 {
			t.Errorf("combined deposit = %v want 6", local[0])
		}
		return nil
	})
}

func TestGatherAllLocal(t *testing.T) {
	// schedule where every request is local: no messages for data
	run(t, 2, func(ctx *machine.Ctx) error {
		rank := ctx.Rank()
		own := [][]int{{1, 2}, {3, 4}}
		tt := NewTTable(ctx, 4, own[rank])
		local := []float64{float64(rank*2 + 1), float64(rank*2 + 2)}
		sched := BuildGather(ctx, tt, own[rank])
		vals := sched.Gather(ctx, local)
		if vals[0] != local[0] || vals[1] != local[1] {
			t.Errorf("rank %d local gather = %v", rank, vals)
		}
		return nil
	})
}

func TestPICStyleParticleMove(t *testing.T) {
	// Sketch of the §4 PIC reassignment: cells block-owned, particles
	// move to neighbouring cells; values gathered from the new cells.
	const n, np = 16, 4
	own := make([][]int, np)
	for r := 0; r < np; r++ {
		for i := r*4 + 1; i <= r*4+4; i++ {
			own[r] = append(own[r], i)
		}
	}
	run(t, np, func(ctx *machine.Ctx) error {
		rank := ctx.Rank()
		tt := NewTTable(ctx, n, own[rank])
		local := make([]float64, 4)
		for pos, g := range own[rank] {
			local[pos] = float64(g)
		}
		// particles in my cells drift +1 (wrapping)
		dest := make([]int, 4)
		for k, g := range own[rank] {
			dest[k] = g%n + 1
		}
		sched := BuildGather(ctx, tt, dest)
		vals := sched.Gather(ctx, local)
		for k, g := range dest {
			if vals[k] != float64(g) {
				t.Errorf("rank %d: dest %d got %v", rank, g, vals[k])
			}
		}
		return nil
	})
}
