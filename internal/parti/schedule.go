package parti

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/msg"
)

// Schedule is the result of the inspector phase for a fixed irregular
// access pattern: for each peer, which of its local elements this
// processor needs (deduplicated), and which of this processor's local
// elements each peer will request.  Once built, the executor operations
// (Gather / Scatter) move only data and can run every iteration until
// the pattern changes — the amortization that makes inspector/executor
// pay off.
type Schedule struct {
	np int
	// outLen is the number of requested values (with duplicates).
	outLen int
	// reqLocal[p] lists peer-local indices this rank fetches from p
	// (deduplicated, in first-seen order).
	reqLocal [][]int
	// fill[p][k] lists output positions to fill from the k-th fetched
	// value of peer p.
	fill [][][]int
	// serve[p] lists this rank's local indices peer p will fetch.
	serve [][]int
}

// BuildGather runs the inspector: dereference the global indices through
// the translation table, group and deduplicate by owner, and exchange
// request lists.  Collective.
func BuildGather(ctx *machine.Ctx, t *TTable, indices []int) *Schedule {
	np, rank := ctx.NP(), ctx.Rank()
	owners, locals := t.Dereference(ctx, indices)
	s := &Schedule{
		np:       np,
		outLen:   len(indices),
		reqLocal: make([][]int, np),
		fill:     make([][][]int, np),
		serve:    make([][]int, np),
	}
	// dedupe (owner, local) pairs
	seen := make(map[[2]int]int) // -> position in reqLocal[owner]
	for q := range indices {
		o, l := owners[q], locals[q]
		key := [2]int{o, l}
		k, ok := seen[key]
		if !ok {
			k = len(s.reqLocal[o])
			s.reqLocal[o] = append(s.reqLocal[o], l)
			s.fill[o] = append(s.fill[o], nil)
			seen[key] = k
		}
		s.fill[o][k] = append(s.fill[o][k], q)
	}
	// exchange request lists so owners know what to serve
	bufs := make([][]byte, np)
	for p := range bufs {
		if len(s.reqLocal[p]) > 0 && p != rank {
			bufs[p] = msg.EncodeInts(s.reqLocal[p])
		}
	}
	incoming, err := ctx.Comm().Alltoallv(bufs)
	if err != nil {
		panic(fmt.Sprintf("parti: inspector request exchange: %v", err))
	}
	for p, buf := range incoming {
		if buf != nil {
			s.serve[p] = msg.DecodeInts(buf)
		}
	}
	return s
}

// RequestedValues returns the number of distinct remote values fetched
// per Gather (a measure of the schedule's traffic).
func (s *Schedule) RequestedValues() int {
	n := 0
	for p, r := range s.reqLocal {
		_ = p
		n += len(r)
	}
	return n
}

// Gather executes the schedule: fetch the requested values out of every
// owner's local data slice and return them in the original index-list
// order.  Collective.
func (s *Schedule) Gather(ctx *machine.Ctx, local []float64) []float64 {
	np, rank := ctx.NP(), ctx.Rank()
	if np != s.np {
		panic("parti: schedule built for a different machine size")
	}
	send := make([][]byte, np)
	recvFrom := make([]bool, np)
	for p := 0; p < np; p++ {
		if p == rank {
			continue
		}
		if len(s.serve[p]) > 0 {
			vals := make([]float64, len(s.serve[p]))
			for k, li := range s.serve[p] {
				vals[k] = local[li]
			}
			send[p] = msg.EncodeFloat64s(vals)
		}
		recvFrom[p] = len(s.reqLocal[p]) > 0
	}
	recvd, err := ctx.Comm().AlltoallvSched(send, recvFrom)
	if err != nil {
		panic(fmt.Sprintf("parti: gather exchange: %v", err))
	}
	out := make([]float64, s.outLen)
	for p := 0; p < np; p++ {
		if len(s.reqLocal[p]) == 0 {
			continue
		}
		var vals []float64
		if p == rank {
			vals = make([]float64, len(s.reqLocal[p]))
			for k, li := range s.reqLocal[p] {
				vals[k] = local[li]
			}
		} else {
			if recvd[p] == nil {
				panic(fmt.Sprintf("parti: missing gather payload from %d", p))
			}
			vals = msg.DecodeFloat64s(recvd[p])
		}
		for k, v := range vals {
			for _, q := range s.fill[p][k] {
				out[q] = v
			}
		}
	}
	return out
}

// Scatter executes the schedule in reverse: vals (in index-list order)
// are sent to the owners of the corresponding elements and combined into
// their local storage with combine(old, new).  Duplicate positions are
// combined in list order.  Collective.
func (s *Schedule) Scatter(ctx *machine.Ctx, local []float64, vals []float64, combine func(old, new float64) float64) {
	np, rank := ctx.NP(), ctx.Rank()
	if len(vals) != s.outLen {
		panic(fmt.Sprintf("parti: scatter got %d values for %d positions", len(vals), s.outLen))
	}
	// Reduce duplicates locally first (positions sharing one (owner,local)
	// pair), then one value per requested element travels.
	send := make([][]byte, np)
	recvFrom := make([]bool, np)
	perPeer := make([][]float64, np)
	for p := 0; p < np; p++ {
		if len(s.reqLocal[p]) == 0 {
			continue
		}
		agg := make([]float64, len(s.reqLocal[p]))
		have := make([]bool, len(s.reqLocal[p]))
		for k := range s.reqLocal[p] {
			for _, q := range s.fill[p][k] {
				if !have[k] {
					agg[k] = vals[q]
					have[k] = true
				} else {
					agg[k] = combine(agg[k], vals[q])
				}
			}
		}
		perPeer[p] = agg
		if p != rank {
			send[p] = msg.EncodeFloat64s(agg)
		}
	}
	for p := 0; p < np; p++ {
		if p != rank {
			recvFrom[p] = len(s.serve[p]) > 0
		}
	}
	recvd, err := ctx.Comm().AlltoallvSched(send, recvFrom)
	if err != nil {
		panic(fmt.Sprintf("parti: scatter exchange: %v", err))
	}
	// apply local contributions
	if perPeer[rank] != nil {
		for k, li := range s.reqLocal[rank] {
			local[li] = combine(local[li], perPeer[rank][k])
		}
	}
	for p := 0; p < np; p++ {
		if p == rank || len(s.serve[p]) == 0 {
			continue
		}
		if recvd[p] == nil {
			panic(fmt.Sprintf("parti: missing scatter payload from %d", p))
		}
		got := msg.DecodeFloat64s(recvd[p])
		for k, li := range s.serve[p] {
			local[li] = combine(local[li], got[k])
		}
	}
}
