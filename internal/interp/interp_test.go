package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sem"
)

// runProgram executes src on np processors and returns rank 0's state and
// a gather of the named array.
func runProgram(t *testing.T, np int, src string, gather string) (map[string]float64, []float64) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit := sem.Analyze(prog)
	if unit.HasErrors() {
		t.Fatalf("sem: %v", unit.Diags)
	}
	m := machine.New(np)
	t.Cleanup(func() { m.Close() })
	e := core.NewEngine(m)
	in := New(e)
	var scalars map[string]float64
	var data []float64
	if err := m.Run(func(ctx *machine.Ctx) error {
		st, err := in.Run(ctx, unit)
		if err != nil {
			return err
		}
		if gather != "" {
			arr, ok := st.Array(gather)
			if !ok {
				t.Errorf("array %s not declared", gather)
				return nil
			}
			got, err := arr.GatherTo(ctx, 0)
			if err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				data = got
				scalars = st.Scalars
			}
		} else if ctx.Rank() == 0 {
			scalars = st.Scalars
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return scalars, data
}

func TestScalarsAndControlFlow(t *testing.T) {
	sc, _ := runProgram(t, 2, `
PARAMETER (N = 5)
X = 0
DO I = 1, N
  X = X + I
ENDDO
IF (X .EQ. 15) THEN
  Y = 1
ELSE
  Y = 2
ENDIF
Z = MOD(17, 5)
W = $NP
`, "")
	if sc["X"] != 15 || sc["Y"] != 1 || sc["Z"] != 2 || sc["W"] != 2 {
		t.Fatalf("scalars: %v", sc)
	}
}

func TestOwnerComputesAssignment(t *testing.T) {
	_, data := runProgram(t, 4, `
PARAMETER (N = 12)
REAL A(N) DYNAMIC, DIST(CYCLIC(2))
DO I = 1, N
  A(I) = I * 10
ENDDO
`, "A")
	for i := 0; i < 12; i++ {
		if data[i] != float64((i+1)*10) {
			t.Fatalf("A[%d] = %v", i+1, data[i])
		}
	}
}

func TestDistributePreservesValues(t *testing.T) {
	_, data := runProgram(t, 3, `
PARAMETER (N = 9)
REAL A(N) DYNAMIC, DIST(BLOCK)
DO I = 1, N
  A(I) = I
ENDDO
DISTRIBUTE A :: (CYCLIC)
`, "A")
	for i := 0; i < 9; i++ {
		if data[i] != float64(i+1) {
			t.Fatalf("A[%d] = %v after DISTRIBUTE", i+1, data[i])
		}
	}
}

func TestFig1ADIRunsAndMatchesSerial(t *testing.T) {
	const nx, ny = 12, 8
	src := `
PARAMETER (NX = 12, NY = 8)
REAL U(NX, NY), F(NX, NY) DIST (:, BLOCK)
REAL V(NX, NY) DYNAMIC, RANGE( (:, BLOCK), ( BLOCK, :)), &
&    DIST (:, BLOCK)

DO J = 1, NY
  DO I = 1, NX
    U(I, J) = MOD(I * 3 + J * 7, 5)
    F(I, J) = 1
  ENDDO
ENDDO

CALL RESID( V, U, F, NX, NY)

DO J = 1, NY
  CALL TRIDIAG( V(:, J), NX)
ENDDO

DISTRIBUTE V :: ( BLOCK, : )

DO I = 1, NX
  CALL TRIDIAG( V(I, :), NY)
ENDDO
`
	_, got := runProgram(t, 4, src, "V")

	// serial reference
	u := make([]float64, nx*ny)
	f := make([]float64, nx*ny)
	for j := 1; j <= ny; j++ {
		for i := 1; i <= nx; i++ {
			k := (j-1)*nx + (i - 1)
			u[k] = math.Mod(float64(i*3+j*7), 5)
			f[k] = 1
		}
	}
	v := make([]float64, nx*ny)
	kernels.Resid(v, u, f, nx, ny)
	for j := 0; j < ny; j++ {
		kernels.Tridiag(v[j*nx:(j+1)*nx], TriA, TriB, TriC, nil)
	}
	for i := 0; i < nx; i++ {
		kernels.TridiagStrided(v, i, nx, ny, TriA, TriB, TriC, nil)
	}
	for k := range v {
		if math.Abs(got[k]-v[k]) > 1e-10 {
			t.Fatalf("V[%d] = %g want %g", k, got[k], v[k])
		}
	}
}

func TestStaticADIWithoutRedistributeAlsoMatches(t *testing.T) {
	// Same program minus the DISTRIBUTE: the second sweep's lines span
	// processors and TRIDIAG falls back to gather/solve/scatter — the
	// result is identical, only the communication differs (§4).
	const nx, ny = 8, 8
	src := `
PARAMETER (NX = 8, NY = 8)
REAL V(NX, NY) DYNAMIC, DIST (:, BLOCK)
DO J = 1, NY
  DO I = 1, NX
    V(I, J) = MOD(I + J, 3)
  ENDDO
ENDDO
DO J = 1, NY
  CALL TRIDIAG( V(:, J), NX)
ENDDO
DO I = 1, NX
  CALL TRIDIAG( V(I, :), NY)
ENDDO
`
	_, got := runProgram(t, 4, src, "V")
	v := make([]float64, nx*ny)
	for j := 1; j <= ny; j++ {
		for i := 1; i <= nx; i++ {
			v[(j-1)*nx+i-1] = math.Mod(float64(i+j), 3)
		}
	}
	for j := 0; j < ny; j++ {
		kernels.Tridiag(v[j*nx:(j+1)*nx], TriA, TriB, TriC, nil)
	}
	for i := 0; i < nx; i++ {
		kernels.TridiagStrided(v, i, nx, ny, TriA, TriB, TriC, nil)
	}
	for k := range v {
		if math.Abs(got[k]-v[k]) > 1e-10 {
			t.Fatalf("V[%d] = %g want %g", k, got[k], v[k])
		}
	}
}

func TestDCaseDispatchesOnRuntimeDistribution(t *testing.T) {
	sc, _ := runProgram(t, 2, `
PARAMETER (N = 8)
REAL B(N) DYNAMIC, DIST(BLOCK)
SELECT DCASE (B)
CASE (CYCLIC)
  X = 1
CASE (BLOCK)
  X = 2
CASE DEFAULT
  X = 3
END SELECT
DISTRIBUTE B :: (CYCLIC(2))
SELECT DCASE (B)
CASE (CYCLIC(2))
  Y = 1
CASE DEFAULT
  Y = 2
END SELECT
`, "")
	if sc["X"] != 2 || sc["Y"] != 1 {
		t.Fatalf("scalars: %v", sc)
	}
}

func TestIDTBranch(t *testing.T) {
	sc, _ := runProgram(t, 2, `
REAL B(8) DYNAMIC, DIST(CYCLIC)
IF (IDT(B,(CYCLIC)) .AND. .NOT. IDT(B,(BLOCK))) THEN
  X = 7
ENDIF
`, "")
	if sc["X"] != 7 {
		t.Fatalf("X = %v", sc["X"])
	}
}

func TestBBlockFromArray(t *testing.T) {
	_, data := runProgram(t, 2, `
PARAMETER (N = 8)
INTEGER BOUNDS(2)
REAL A(N) DYNAMIC, DIST(BLOCK)
BOUNDS(1) = 6
BOUNDS(2) = 8
DO I = 1, N
  A(I) = I
ENDDO
DISTRIBUTE A :: (B_BLOCK(BOUNDS))
`, "A")
	for i := 0; i < 8; i++ {
		if data[i] != float64(i+1) {
			t.Fatalf("A[%d] = %v", i+1, data[i])
		}
	}
}

func TestConnectClassInInterp(t *testing.T) {
	_, data := runProgram(t, 2, `
PARAMETER (N = 6)
REAL B(N) DYNAMIC, DIST(BLOCK)
REAL A(N) DYNAMIC, CONNECT(=B)
DO I = 1, N
  A(I) = I * 2
ENDDO
DISTRIBUTE B :: (CYCLIC)
`, "A")
	for i := 0; i < 6; i++ {
		if data[i] != float64(2*(i+1)) {
			t.Fatalf("A[%d] = %v (secondary should move with primary)", i+1, data[i])
		}
	}
}

func TestInterpErrors(t *testing.T) {
	run := func(src string) error {
		prog, err := lang.Parse(src)
		if err != nil {
			return err
		}
		unit := sem.Analyze(prog)
		m := machine.New(2)
		defer m.Close()
		e := core.NewEngine(m)
		in := New(e)
		return m.Run(func(ctx *machine.Ctx) error {
			_, err := in.Run(ctx, unit)
			return err
		})
	}
	if err := run("CALL NOSUCH(1)\n"); err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("err = %v", err)
	}
	if err := run("X = NOPE + 1\n"); err == nil || !strings.Contains(err.Error(), "undefined scalar") {
		t.Fatalf("err = %v", err)
	}
	if err := run("REAL B(4) DYNAMIC, RANGE((BLOCK)), DIST(BLOCK)\nDISTRIBUTE B :: (CYCLIC)\n"); err == nil || !strings.Contains(err.Error(), "violates") {
		t.Fatalf("err = %v", err)
	}
}

func TestCustomBuiltin(t *testing.T) {
	prog, err := lang.Parse(`
PARAMETER (N = 6)
REAL A(N) DYNAMIC, DIST(BLOCK)
CALL FILLSQ(A, N)
`)
	if err != nil {
		t.Fatal(err)
	}
	unit := sem.Analyze(prog)
	m := machine.New(2)
	defer m.Close()
	e := core.NewEngine(m)
	in := New(e)
	in.Register("FILLSQ", func(st *State, args []any) error {
		aa := args[0].(*ArrayArg)
		aa.Arr.FillFunc(st.Ctx, func(p index.Point) float64 { return float64(p[0] * p[0]) })
		st.Ctx.Barrier()
		return nil
	})
	var data []float64
	if err := m.Run(func(ctx *machine.Ctx) error {
		st, err := in.Run(ctx, unit)
		if err != nil {
			return err
		}
		arr, _ := st.Array("A")
		got, err := arr.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			data = got
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if data[i] != float64((i+1)*(i+1)) {
			t.Fatalf("A[%d] = %v", i+1, data[i])
		}
	}
}

func TestForallOwnerComputesPartitioning(t *testing.T) {
	// single-assignment body: each rank iterates only its owned indices
	_, data := runProgram(t, 4, `
PARAMETER (N = 16)
REAL A(N) DYNAMIC, DIST(CYCLIC(2))
FORALL I = 1, N
  A(I) = I * I
ENDFORALL
`, "A")
	for i := 0; i < 16; i++ {
		if data[i] != float64((i+1)*(i+1)) {
			t.Fatalf("A[%d] = %v", i+1, data[i])
		}
	}
}

func TestForallGeneralBodyAndStep(t *testing.T) {
	_, data := runProgram(t, 2, `
PARAMETER (N = 10)
REAL A(N), B(N) DYNAMIC, DIST(BLOCK)
FORALL I = 1, N, 2
  A(I) = I
  B(I) = 2 * I
ENDFORALL
`, "B")
	for i := 1; i <= 10; i++ {
		want := 0.0
		if i%2 == 1 {
			want = float64(2 * i)
		}
		if data[i-1] != want {
			t.Fatalf("B[%d] = %v want %v", i, data[i-1], want)
		}
	}
}

func TestForallRejectsDistribute(t *testing.T) {
	prog, err := lang.Parse(`
REAL A(8) DYNAMIC, DIST(BLOCK)
FORALL I = 1, 8
  DISTRIBUTE A :: (CYCLIC)
ENDFORALL
`)
	if err != nil {
		t.Fatal(err)
	}
	unit := sem.Analyze(prog)
	m := machine.New(2)
	defer m.Close()
	e := core.NewEngine(m)
	in := New(e)
	err = m.Run(func(ctx *machine.Ctx) error {
		_, err := in.Run(ctx, unit)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "not allowed inside FORALL") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpNegativeStepAndIntrinsics(t *testing.T) {
	sc, _ := runProgram(t, 2, `
X = 0
DO I = 10, 2, -2
  X = X + I
ENDDO
Y = MIN(3, 7, 1)
Z = MAX(3, 7, 1)
W = -Y + 2 * (Z - 1)
`, "")
	if sc["X"] != 30 || sc["Y"] != 1 || sc["Z"] != 7 || sc["W"] != 11 {
		t.Fatalf("scalars: %v", sc)
	}
}

func TestInterpDCaseNoMatchNoAction(t *testing.T) {
	sc, _ := runProgram(t, 2, `
REAL B(8) DYNAMIC, DIST(BLOCK)
X = 5
SELECT DCASE (B)
CASE (CYCLIC)
  X = 1
END SELECT
`, "")
	if sc["X"] != 5 {
		t.Fatalf("no-match DCASE must not execute an action: %v", sc["X"])
	}
}

func TestInterpArrayElementInCondition(t *testing.T) {
	sc, _ := runProgram(t, 2, `
PARAMETER (N = 4)
REAL A(N) DYNAMIC, DIST(BLOCK)
DO I = 1, N
  A(I) = I
ENDDO
IF (A(3) .GE. 3) THEN
  X = 1
ELSE
  X = 2
ENDIF
`, "")
	if sc["X"] != 1 {
		t.Fatalf("X = %v", sc["X"])
	}
}

func TestInterpAlignedConnectSecondary(t *testing.T) {
	// secondary connected by alignment follows its primary's DISTRIBUTE
	_, data := runProgram(t, 2, `
PARAMETER (N = 6)
REAL B(N,N) DYNAMIC, DIST(BLOCK, :)
REAL A(N,N) DYNAMIC, CONNECT A(I,J) WITH B(J,I)
DO J = 1, N
  DO I = 1, N
    A(I,J) = I * 10 + J
  ENDDO
ENDDO
DISTRIBUTE B :: (:, BLOCK)
`, "A")
	for j := 1; j <= 6; j++ {
		for i := 1; i <= 6; i++ {
			if data[(j-1)*6+i-1] != float64(i*10+j) {
				t.Fatalf("A(%d,%d) = %v", i, j, data[(j-1)*6+i-1])
			}
		}
	}
}

// runProgramCkpt is runProgram with the checkpoint hooks engaged.
func runProgramCkpt(t *testing.T, np int, src, gather, dir string, rec bool) []float64 {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit := sem.Analyze(prog)
	if unit.HasErrors() {
		t.Fatalf("sem: %v", unit.Diags)
	}
	m := machine.New(np)
	t.Cleanup(func() { m.Close() })
	in := New(core.NewEngine(m))
	in.SetCheckpoint(dir, 1)
	in.SetRecover(rec)
	var data []float64
	if err := m.Run(func(ctx *machine.Ctx) error {
		st, err := in.Run(ctx, unit)
		if err != nil {
			return err
		}
		arr, _ := st.Array(gather)
		got, err := arr.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			data = got
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDistributeCheckpointRecover: a DISTRIBUTE statement commits a
// checkpoint; a recovery run on fewer processors restores it at its first
// DISTRIBUTE site and finishes with the same values.
func TestDistributeCheckpointRecover(t *testing.T) {
	const src = `
PARAMETER (N = 12)
REAL A(N) DYNAMIC, DIST(BLOCK)
DO I = 1, N
  A(I) = I * I
ENDDO
DISTRIBUTE A :: (CYCLIC)
DO I = 1, N
  A(I) = A(I) + 1
ENDDO
`
	dir := t.TempDir()
	want := runProgramCkpt(t, 4, src, "A", dir, false)
	// The checkpoint holds A right after the DISTRIBUTE (values i*i); the
	// recovery run restores it there, so the +1 pass still applies once.
	got := runProgramCkpt(t, 3, src, "A", dir, true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A[%d] = %v after shrink-recovery, want %v", i+1, got[i], want[i])
		}
	}
	for i := 0; i < 12; i++ {
		if want[i] != float64((i+1)*(i+1)+1) {
			t.Fatalf("reference A[%d] = %v, want %v", i+1, want[i], (i+1)*(i+1)+1)
		}
	}
}
