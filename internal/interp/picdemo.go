package interp

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/msg"
)

// Builtins backing the Figure 2 demo: the PIC helper procedures the paper
// calls but does not show (initpos, balance, update_field, update_part,
// rebalance).  FIELD(c, 1) holds cell c's particle count; FIELD(c, 2)
// accumulates the "field".  BOUNDS is a replicated integer array that
// balance() fills with B_BLOCK upper bounds equalizing particles.

const picDrift = 0.3 // fraction of particles drifting rightward per step

// RegisterPICDemo installs the Figure 2 helper procedures (INITPOS,
// BALANCE, UPDATE_FIELD, UPDATE_PART, REBALANCE, IMBALANCE) used by the
// runnable PIC demo (PICDemoSource) and its tests.
func RegisterPICDemo(in *Interp) {
	in.Register("INITPOS", func(st *State, args []any) error {
		fa := args[0].(*ArrayArg)
		fa.Arr.FillFunc(st.Ctx, func(p index.Point) float64 {
			if p[1] == 1 {
				return 64 // uniform loading
			}
			return 0
		})
		if err := st.Ctx.Barrier(); err != nil {
			return err
		}
		return nil
	})

	in.Register("BALANCE", func(st *State, args []any) error {
		ba := args[0].(*ArrayArg)
		fa := args[1].(*ArrayArg)
		ctx := st.Ctx
		if err := ctx.Barrier(); err != nil {
			return err
		}
		ncell := fa.Arr.Domain().Extent(0)
		np := ctx.NP()
		// gather per-cell counts to rank 0, compute bounds, broadcast
		counts := make([]float64, 0, ncell)
		lf := fa.Arr.Local(ctx)
		var local []float64
		var cells []int
		lf.ForEachOwned(func(p index.Point, v *float64) {
			if p[1] == 1 {
				local = append(local, *v)
				cells = append(cells, p[0])
			}
		})
		// allgather (cell, count) pairs
		payload := make([]float64, 0, 2*len(local))
		for i := range local {
			payload = append(payload, float64(cells[i]), local[i])
		}
		parts, err := ctx.Comm().Allgather(msg.EncodeFloat64s(payload))
		if err != nil {
			return err
		}
		counts = make([]float64, ncell)
		for _, p := range parts {
			vals := msg.DecodeFloat64s(p)
			for i := 0; i+1 < len(vals); i += 2 {
				counts[int(vals[i])-1] = vals[i+1]
			}
		}
		total := 0.0
		for _, c := range counts {
			total += c
		}
		per := total / float64(np)
		bounds := make([]int, np)
		acc, pi := 0.0, 0
		for i, c := range counts {
			acc += c
			if acc >= per*float64(pi+1) && pi < np-1 {
				bounds[pi] = i + 1
				pi++
			}
		}
		for ; pi < np; pi++ {
			bounds[pi] = ncell
		}
		prev := 0
		for i := range bounds {
			if bounds[i] < prev {
				bounds[i] = prev
			}
			prev = bounds[i]
		}
		bounds[np-1] = ncell
		// store into the replicated BOUNDS array
		lb := ba.Arr.Local(ctx)
		for i, b := range bounds {
			lb.SetAt(index.Point{i + 1}, float64(b))
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		return nil
	})

	in.Register("UPDATE_FIELD", func(st *State, args []any) error {
		fa := args[0].(*ArrayArg)
		ctx := st.Ctx
		if err := ctx.Barrier(); err != nil {
			return err
		}
		l := fa.Arr.Local(ctx)
		l.ForEachOwned(func(p index.Point, v *float64) {
			if p[1] != 1 {
				return
			}
			// field accumulation proportional to the cell's particles
			q := index.Point{p[0], 2}
			l.SetAt(q, l.At(q)+*v)
		})
		if err := ctx.Barrier(); err != nil {
			return err
		}
		return nil
	})

	in.Register("UPDATE_PART", func(st *State, args []any) error {
		fa := args[0].(*ArrayArg)
		ctx := st.Ctx
		if err := ctx.Barrier(); err != nil {
			return err
		}
		arr := fa.Arr
		d := arr.Dist()
		l := arr.Local(ctx)
		ncell := arr.Domain().Extent(0)
		rs := l.Grid().Dims[0]
		ep := ctx.Endpoint()
		const tag = 9400
		var outflow float64
		lastIdx := -1
		if rs.Count() > 0 {
			lo, hi := rs[0].Lo, rs[len(rs)-1].Hi
			for i := hi; i >= lo; i-- {
				p := index.Point{i, 1}
				c := l.At(p)
				mv := float64(int(c * picDrift))
				if i == ncell {
					continue // reflecting boundary
				}
				l.SetAt(p, c-mv)
				if i == hi {
					outflow, lastIdx = mv, i
				} else {
					q := index.Point{i + 1, 1}
					l.SetAt(q, l.At(q)+mv)
				}
			}
		}
		sendTo := -1
		if lastIdx >= 0 && lastIdx < ncell {
			sendTo = d.Owner(index.Point{lastIdx + 1, 1})
		}
		recvFrom := -1
		if rs.Count() > 0 && rs[0].Lo > 1 {
			recvFrom = d.Owner(index.Point{rs[0].Lo - 1, 1})
		}
		if sendTo >= 0 && sendTo != ctx.Rank() {
			if err := ep.Send(sendTo, tag, msg.EncodeFloat64s([]float64{outflow, float64(lastIdx + 1)})); err != nil {
				return err
			}
		} else if sendTo == ctx.Rank() {
			q := index.Point{lastIdx + 1, 1}
			l.SetAt(q, l.At(q)+outflow)
		}
		if recvFrom >= 0 && recvFrom != ctx.Rank() {
			pk, err := ep.Recv(recvFrom, tag)
			if err != nil {
				return err
			}
			vals := msg.DecodeFloat64s(pk.Data)
			q := index.Point{int(vals[1]), 1}
			l.SetAt(q, l.At(q)+vals[0])
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		return nil
	})

	// REBALANCE() returns 1 when max/avg particles per processor exceeds
	// 1.1 — the Figure 2 rebalance() predicate.  It stores the result in
	// the scalar REBAL (call: CALL REBALANCE(FIELD)).
	in.Register("REBALANCE", func(st *State, args []any) error {
		fa := args[0].(*ArrayArg)
		ctx := st.Ctx
		if err := ctx.Barrier(); err != nil {
			return err
		}
		local := 0.0
		fa.Arr.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
			if p[1] == 1 {
				local += *v
			}
		})
		tot, err := ctx.Comm().AllreduceF64([]float64{local}, msg.SumF64)
		if err != nil {
			return err
		}
		mx, err := ctx.Comm().AllreduceF64([]float64{local}, msg.MaxF64)
		if err != nil {
			return err
		}
		avg := tot[0] / float64(ctx.NP())
		st.Scalars["REBAL"] = 0
		if avg > 0 && mx[0]/avg > 1.1 {
			st.Scalars["REBAL"] = 1
		}
		return nil
	})

	// IMBALANCE prints the current max/avg (rank 0 only).
	in.Register("IMBALANCE", func(st *State, args []any) error {
		fa := args[0].(*ArrayArg)
		step := args[1].(float64)
		ctx := st.Ctx
		if err := ctx.Barrier(); err != nil {
			return err
		}
		local := 0.0
		fa.Arr.Local(ctx).ForEachOwned(func(p index.Point, v *float64) {
			if p[1] == 1 {
				local += *v
			}
		})
		tot, err := ctx.Comm().AllreduceF64([]float64{local}, msg.SumF64)
		if err != nil {
			return err
		}
		mx, err := ctx.Comm().AllreduceF64([]float64{local}, msg.MaxF64)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			avg := tot[0] / float64(ctx.NP())
			fmt.Printf("  step %3.0f: imbalance %.3f  (dist %v)\n", step, mx[0]/avg, fa.Arr.DistType())
		}
		return nil
	})
}

// PICDemoSource is Figure 2 made runnable: the structure is the paper's,
// with the helper procedures provided as builtins and the trailing array
// dimensions reduced to 2 planes (counts, field).
const PICDemoSource = `
PARAMETER (NCELL = 128, NPLANE = 2, MAX_TIME = 60)
INTEGER BOUNDS($NP)
REAL FIELD(NCELL, NPLANE) DYNAMIC, DIST( BLOCK, :)

C Compute initial position of particles
CALL INITPOS(FIELD, NCELL, NPLANE)
C Compute initial partition of cells
CALL BALANCE(BOUNDS, FIELD, NCELL, NPLANE)
DISTRIBUTE FIELD :: ( B_BLOCK (BOUNDS), : )

DO K = 1, MAX_TIME
C Compute new field
  CALL UPDATE_FIELD(FIELD, NCELL, NPLANE)
C Compute new particle positions and reassign them
  CALL UPDATE_PART(FIELD, NCELL, NPLANE)
C Rebalance every 10th iteration if necessary
  IF (MOD(K, 10) .EQ. 0) THEN
    CALL IMBALANCE(FIELD, K)
    CALL REBALANCE(FIELD)
    IF (REBAL .EQ. 1) THEN
      CALL BALANCE(BOUNDS, FIELD, NCELL, NPLANE)
      DISTRIBUTE FIELD :: ( B_BLOCK (BOUNDS), : )
    ENDIF
  ENDIF
ENDDO
`
