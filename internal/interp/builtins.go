package interp

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/kernels"
)

// Coefficients of the constant-coefficient tridiagonal system TRIDIAG
// solves (shared with internal/apps so results are comparable).
const (
	TriA = -1.0
	TriB = 4.0
	TriC = -1.0
)

// builtinTridiag is Figure 1's TRIDIAG(line, n): solve the constant-
// coefficient tridiagonal system along the single section dimension of
// the first argument, overwriting the right-hand side with the solution.
//
// When every owner of the line holds it entirely (the section dimension
// is elided or unreplicated-local), the solve is purely local — the
// situation dynamic redistribution creates.  Otherwise the line spans
// processors and the owner of its first element gathers it element-wise,
// solves, and writes it back: the compiler-embedded communication the
// paper describes for the static variant.
func builtinTridiag(st *State, args []any) error {
	if len(args) < 2 {
		return fmt.Errorf("TRIDIAG needs (section, n)")
	}
	aa, ok := args[0].(*ArrayArg)
	if !ok {
		return fmt.Errorf("TRIDIAG first argument must be an array section")
	}
	nf, ok := args[1].(float64)
	if !ok {
		return fmt.Errorf("TRIDIAG second argument must be scalar")
	}
	n := int(nf)
	dims := aa.SectionDims()
	if len(dims) != 1 {
		return fmt.Errorf("TRIDIAG needs exactly one section dimension, got %d", len(dims))
	}
	dim := dims[0]
	arr, ctx := aa.Arr, st.Ctx
	// synchronize: preceding owner-computes writes must be visible before
	// any cross-processor reads below
	if err := ctx.Barrier(); err != nil {
		return err
	}
	d := arr.Dist()
	dom := arr.Domain()
	lo := dom.Lo[dim]
	if n > dom.Extent(dim) {
		return fmt.Errorf("TRIDIAG length %d exceeds extent %d", n, dom.Extent(dim))
	}
	first := make(index.Point, dom.Rank())
	copy(first, aa.Fixed)
	first[dim] = lo

	if d.ProcDim(dim) < 0 {
		// line fully local to its owners: in-place strided solve
		if d.IsLocal(ctx.Rank(), first) {
			l := arr.Local(ctx)
			start := l.Offset(first)
			kernels.TridiagStrided(l.Data(), start, l.Stride()[dim], n, TriA, TriB, TriC, nil)
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		return nil
	}
	// distributed line: gather-solve-scatter on the first element's owner
	if ctx.Rank() == d.Owner(first) {
		vals := make([]float64, n)
		p := first.Clone()
		for i := 0; i < n; i++ {
			p[dim] = lo + i
			vals[i] = arr.DArray().Get(ctx, p)
		}
		kernels.Tridiag(vals, TriA, TriB, TriC, nil)
		for i := 0; i < n; i++ {
			p[dim] = lo + i
			arr.DArray().Set(ctx, p, vals[i])
		}
	}
	if err := ctx.Barrier(); err != nil {
		return err
	}
	return nil
}

// builtinResid is Figure 1's RESID(V, U, F, NX, NY): V = F - A(U) for the
// 5-point Laplacian, owner-computes on V with one-sided reads of U where
// its neighbours are remote.  Boundary residuals are zero.
func builtinResid(st *State, args []any) error {
	if len(args) < 3 {
		return fmt.Errorf("RESID needs (V, U, F, ...)")
	}
	va, ok1 := args[0].(*ArrayArg)
	ua, ok2 := args[1].(*ArrayArg)
	fa, ok3 := args[2].(*ArrayArg)
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("RESID arguments must be whole arrays")
	}
	ctx := st.Ctx
	// preceding writes must be visible before remote reads
	if err := ctx.Barrier(); err != nil {
		return err
	}
	v, u, f := va.Arr, ua.Arr, fa.Arr
	dom := v.Domain()
	lu := u.Local(ctx)
	lf := f.Local(ctx)
	get := func(p index.Point) float64 {
		if lu.Owns(p) {
			return lu.At(p)
		}
		return u.DArray().Get(ctx, p)
	}
	v.Local(ctx).ForEachOwned(func(p index.Point, val *float64) {
		i, j := p[0], p[1]
		if i == dom.Lo[0] || i == dom.Hi[0] || j == dom.Lo[1] || j == dom.Hi[1] {
			*val = 0
			return
		}
		var fv float64
		if lf.Owns(p) {
			fv = lf.At(p)
		} else {
			fv = f.DArray().Get(ctx, p)
		}
		*val = fv - (4*get(p) -
			get(index.Point{i - 1, j}) - get(index.Point{i + 1, j}) -
			get(index.Point{i, j - 1}) - get(index.Point{i, j + 1}))
	})
	if err := ctx.Barrier(); err != nil {
		return err
	}
	return nil
}
