package interp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sem"
)

func TestPICDemoEndToEnd(t *testing.T) {
	prog, err := lang.Parse(PICDemoSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit := sem.Analyze(prog)
	if unit.HasErrors() {
		t.Fatalf("sem: %v", unit.Diags)
	}
	m := machine.New(4)
	defer m.Close()
	e := core.NewEngine(m)
	in := New(e)
	RegisterPICDemo(in)
	var counts []float64
	var epochs int
	var distStr string
	if err := m.Run(func(ctx *machine.Ctx) error {
		st, err := in.Run(ctx, unit)
		if err != nil {
			return err
		}
		field, _ := st.Array("FIELD")
		data, err := field.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			// plane 1 holds the particle counts
			n := field.Domain().Extent(0)
			counts = data[:n]
			epochs = field.Epoch()
			distStr = field.DistType().String()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// particle conservation: 128 cells x 64 particles
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total != 128*64 {
		t.Fatalf("particles not conserved: %v", total)
	}
	// the drift piles particles up on the right: the last cell must hold
	// far more than the first
	if counts[len(counts)-1] <= counts[0] {
		t.Fatalf("no drift pile-up: first %v last %v", counts[0], counts[len(counts)-1])
	}
	// rebalancing fired: initial B_BLOCK + at least one re-DISTRIBUTE
	if epochs < 2 {
		t.Fatalf("expected rebalancing redistributions, epoch = %d", epochs)
	}
	if !strings.Contains(distStr, "B_BLOCK") {
		t.Fatalf("final distribution %s is not a general block", distStr)
	}
}

func TestInterpNoTransfer(t *testing.T) {
	src := `
PARAMETER (N = 8)
REAL B(N) DYNAMIC, DIST(BLOCK)
REAL A(N) DYNAMIC, CONNECT(=B)
DO I = 1, N
  A(I) = I * 10
ENDDO
DISTRIBUTE B :: (CYCLIC) NOTRANSFER (A)
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	unit := sem.Analyze(prog)
	if unit.HasErrors() {
		t.Fatalf("sem: %v", unit.Diags)
	}
	m := machine.New(2)
	defer m.Close()
	e := core.NewEngine(m)
	in := New(e)
	if err := m.Run(func(ctx *machine.Ctx) error {
		st, err := in.Run(ctx, unit)
		if err != nil {
			return err
		}
		a, _ := st.Array("A")
		b, _ := st.Array("B")
		if !a.DistType().Equal(b.DistType()) {
			t.Error("NOTRANSFER must still re-derive the secondary's type")
		}
		// rank 0 owned 1..4 before; under CYCLIC it owns odds. Kept
		// in-place: 1, 3. Elements 5, 7 were not transferred: zero.
		if ctx.Rank() == 0 {
			l := a.Local(ctx)
			if l.At([]int{1}) != 10 || l.At([]int{3}) != 30 {
				t.Error("in-place values lost under NOTRANSFER")
			}
			if l.At([]int{5}) != 0 || l.At([]int{7}) != 0 {
				t.Error("NOTRANSFER moved data")
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
