// Package interp executes Vienna Fortran subset programs (parsed by
// internal/lang, checked by internal/sem) on the Vienna Fortran Engine —
// the runtime counterpart of what the VFCS compiles (paper §3.2: "an
// abstract machine that executes Vienna Fortran object programs").
//
// Semantics follow the paper's SPMD model:
//
//   - the program has a single global name space and a single logical
//     thread of control; every processor executes the interpreter over
//     the same statements (scalar state is replicated and deterministic);
//   - array element assignments follow the owner-computes rule: the
//     owners of the left-hand side evaluate the right-hand side (fetching
//     non-local operands through the one-sided access functions of
//     §3.2.1) and store locally;
//   - DISTRIBUTE statements execute collectively through internal/core,
//     moving whole connect classes and honouring NOTRANSFER and RANGE;
//   - DCASE and IDT dispatch on the *current* distribution via
//     internal/query;
//   - CALLs dispatch to registered builtins.  The provided TRIDIAG
//     mirrors Figure 1's contract: when the referenced line is fully
//     local to its owners it solves in place without communication; when
//     the line spans processors it gathers it element-wise — exactly the
//     "compiler must embed the required communication" fallback the paper
//     describes for the non-redistributed variant.
//
// The interpreter is a semantics demonstrator, not an optimizing
// compiler: array assignments evaluate per element, and only the
// statement forms the paper's listings use are supported.
package interp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/health"
	"repro/internal/index"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/sem"
)

// Builtin is a registered procedure.  Args are scalars (float64) or
// array/section references (*ArrayArg).
type Builtin func(st *State, args []any) error

// ArrayArg is an array or array-section actual argument.
type ArrayArg struct {
	Arr *core.Array
	// Fixed holds the fixed subscripts; -1 marks section (range)
	// dimensions.  A whole-array argument has all dimensions -1.
	Fixed []int
}

// SectionDims returns the indices of the range dimensions.
func (a *ArrayArg) SectionDims() []int {
	var out []int
	for k, v := range a.Fixed {
		if v < 0 {
			out = append(out, k)
		}
	}
	return out
}

// Interp holds the registered builtins and the engine.
type Interp struct {
	Engine   *core.Engine
	builtins map[string]Builtin

	// Checkpoint hooks (vfrun -ckpt-dir/-ckpt-every/-recover).  DISTRIBUTE
	// statements are the natural consistency points of a Vienna Fortran
	// program — the paper's dynamic phase boundaries — so checkpoints are
	// taken after every ckptEvery-th executed DISTRIBUTE, and a recovery
	// run replays the latest committed epoch at the first DISTRIBUTE site
	// (demo-grade: arrays declared after that site are not restored, and
	// statements before it re-execute on the fresh run).
	ckptDir    string
	ckptEvery  int
	recoverRun bool

	// Straggler hooks (vfrun -health-window/-drain/-slow-rank/
	// -slow-factor).  With health scoring on, every compute statement
	// (CALL, assignment, FORALL) reports its busy time to the machine's
	// health scorer via Ctx.ReportWork — one statement is one work unit,
	// which is comparable across ranks because the SPMD program executes
	// the same statement sequence in lockstep.  The injection is
	// report-side: slowRank's work reports are marked slowFactor× more
	// expensive, so the scorer and the drain machinery react exactly as
	// they would to a genuinely slow rank, without distorting the other
	// ranks' measurements (a real mid-statement stall would also inflate
	// their one-sided fetch waits and mask the straggler).  With drain
	// enabled, every DISTRIBUTE checkpoint site doubles as a drain
	// boundary: if a member is classified Degraded, the interpreter
	// returns a *DrainRankError the caller turns into a Ctx.Drain epoch
	// transition plus a recovery re-run.
	healthOn   bool
	drainOn    bool
	slowRank   int
	slowFactor float64
}

// SetStraggler configures the straggler hooks: health-scored work
// reports (healthOn; the machine must run machine.WithHealth and
// liveness heartbeats), drain decisions at DISTRIBUTE checkpoint sites
// (drain; requires SetCheckpoint), and the synthetic straggler
// (slowFactor > 1 inflates slowRank's reported per-statement cost).
func (in *Interp) SetStraggler(healthOn, drain bool, slowRank int, slowFactor float64) {
	in.healthOn, in.drainOn = healthOn, drain
	in.slowRank, in.slowFactor = slowRank, slowFactor
}

// DrainRankError asks the interpreter's caller to voluntarily drain the
// given view rank from the membership: every member's Run returns it
// from the same DISTRIBUTE site (the decision is broadcast), right
// after a committed checkpoint the survivors can replay.
type DrainRankError struct{ ViewRank int }

func (e *DrainRankError) Error() string {
	return fmt.Sprintf("interp: drain view rank %d (straggler mitigation)", e.ViewRank)
}

// SetCheckpoint enables coordinated checkpoints into dir after every
// every-th DISTRIBUTE statement (every <= 0 means every one).
func (in *Interp) SetCheckpoint(dir string, every int) {
	if every <= 0 {
		every = 1
	}
	in.ckptDir, in.ckptEvery = dir, every
}

// SetRecover makes the next Run restore the latest committed checkpoint
// in the SetCheckpoint directory when it reaches the first DISTRIBUTE
// statement.
func (in *Interp) SetRecover(on bool) { in.recoverRun = on }

// SetMemBudget bounds the peak resident wire bytes per rank of every
// DISTRIBUTE the interpreted program executes (vfrun -redist-budget);
// n <= 0 means unbounded.  Delegates to Engine.SetMemBudget.
func (in *Interp) SetMemBudget(n int64) { in.Engine.SetMemBudget(n) }

// SetIO configures the parallel-I/O side of the checkpoint hooks (vfrun
// -io-servers/-io-redundancy/-ckpt-keep): the number of I/O server
// ranks (stripe files) per epoch, the redundancy mode (none, parity or
// replica), and the epoch retention count.  Zero values keep the
// defaults.  Delegates to Engine.SetCkptOptions.
func (in *Interp) SetIO(servers int, redundancy string, keep int) {
	in.Engine.SetCkptOptions(ckpt.Options{Servers: servers, Redundancy: redundancy, Keep: keep})
}

// New creates an interpreter over an engine and registers the standard
// builtins (TRIDIAG, RESID, plus no-op INITPOS hooks used by demos).
func New(e *core.Engine) *Interp {
	in := &Interp{Engine: e, builtins: map[string]Builtin{}}
	in.Register("TRIDIAG", builtinTridiag)
	in.Register("RESID", builtinResid)
	return in
}

// Register adds (or replaces) a builtin procedure.
func (in *Interp) Register(name string, fn Builtin) { in.builtins[name] = fn }

// State is the per-processor execution state.
type State struct {
	In      *Interp
	Ctx     *machine.Ctx
	Unit    *sem.Unit
	Scalars map[string]float64
	arrays  map[string]*core.Array

	// nDistribute counts executed DISTRIBUTE statements; every rank runs
	// the same statement sequence in lockstep, so the counters agree and
	// the checkpoint hooks fire collectively.
	nDistribute int
	recovered   bool
}

// Array resolves a declared array by name.
func (st *State) Array(name string) (*core.Array, bool) {
	a, ok := st.arrays[name]
	return a, ok
}

// Run executes the program on the calling processor (invoke from within
// machine.Run on every rank).
func (in *Interp) Run(ctx *machine.Ctx, unit *sem.Unit) (*State, error) {
	if unit.HasErrors() {
		return nil, fmt.Errorf("interp: program has semantic errors: %v", unit.Diags[0])
	}
	st := &State{In: in, Ctx: ctx, Unit: unit, Scalars: map[string]float64{}, arrays: map[string]*core.Array{}}
	for k, v := range unit.Params {
		st.Scalars[k] = float64(v)
	}
	st.Scalars["$NP"] = float64(ctx.NP())
	if err := st.stmts(unit.Prog.Stmts); err != nil {
		return st, err
	}
	return st, nil
}

func (st *State) stmts(list []lang.Stmt) error {
	for _, s := range list {
		if err := st.stmt(s); err != nil {
			return err
		}
		// Owner-computes stores become visible to the other processors'
		// one-sided reads at the next synchronization point; executing
		// statement lists in lockstep provides it.  (FORALL's owned-only
		// fast path bypasses this deliberately: its iterations are
		// independent by assertion and it barriers once at the end.)
		if as, ok := s.(*lang.AssignStmt); ok {
			if _, isArr := st.arrays[as.LHS.Name]; isArr {
				if err := st.Ctx.Barrier(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (st *State) stmt(s lang.Stmt) error {
	switch stm := s.(type) {
	case *lang.ParameterStmt:
		return nil // resolved by sem
	case *lang.ProcessorsStmt:
		return st.processors(stm)
	case *lang.DeclStmt:
		return st.declare(stm)
	case *lang.DistributeStmt:
		return st.distribute(stm)
	case *lang.SelectStmt:
		return st.selectStmt(stm)
	case *lang.IfStmt:
		c, err := st.evalLogical(stm.Cond)
		if err != nil {
			return err
		}
		if c {
			return st.stmts(stm.Then)
		}
		return st.stmts(stm.Else)
	case *lang.DoStmt:
		from, err := st.evalScalar(stm.From)
		if err != nil {
			return err
		}
		to, err := st.evalScalar(stm.To)
		if err != nil {
			return err
		}
		step := 1.0
		if stm.Step != nil {
			if step, err = st.evalScalar(stm.Step); err != nil {
				return err
			}
		}
		if step == 0 {
			return fmt.Errorf("%v: DO step is zero", stm.Pos())
		}
		for v := from; (step > 0 && v <= to) || (step < 0 && v >= to); v += step {
			st.Scalars[stm.Var] = v
			if err := st.stmts(stm.Body); err != nil {
				return err
			}
		}
		return nil
	case *lang.ForallStmt:
		return st.computeStmt(func() error { return st.forall(stm) })
	case *lang.CallStmt:
		return st.computeStmt(func() error { return st.call(stm) })
	case *lang.AssignStmt:
		return st.computeStmt(func() error { return st.assign(stm) })
	}
	return fmt.Errorf("%v: unsupported statement %T", s.Pos(), s)
}

// computeStmt runs one compute statement through the straggler hooks,
// reporting its busy time to the health scorer as one unit of work (the
// injected straggler's report is inflated by slowFactor).  The builtins'
// internal communication waits are included — demo-grade, but symmetric
// across ranks in this lockstep execution model, so an injected
// asymmetry still dominates the per-unit cost.
func (st *State) computeStmt(run func() error) error {
	in := st.In
	if !in.healthOn {
		return run()
	}
	t0 := time.Now()
	err := run()
	el := time.Since(t0)
	if in.slowFactor > 1 && st.Ctx.PhysRank() == in.slowRank {
		el = time.Duration(float64(el) * in.slowFactor)
	}
	st.Ctx.ReportWork(1, el)
	return err
}

// forall executes an explicitly parallel loop.  Iterations are
// independent by assertion, so the engine partitions the iteration space
// by the owner-computes rule: when the body is a single element
// assignment A(..., V, ...) = expr whose subscript in some dimension is
// exactly the loop variable, each processor iterates only over the values
// of V for which it owns the left-hand side — "the compiler distributes
// work based upon the owner computes rule" (§1).  Otherwise every
// processor walks the full range (the per-element owner test still makes
// each element's store unique).
//
// DISTRIBUTE and DCASE are not legal inside FORALL (the construct is a
// parallel loop; its iterations may not change descriptors).
func (st *State) forall(stm *lang.ForallStmt) error {
	for _, s := range stm.Body {
		switch s.(type) {
		case *lang.DistributeStmt, *lang.SelectStmt:
			return fmt.Errorf("%v: %T not allowed inside FORALL", s.Pos(), s)
		}
	}
	from, err := st.evalScalar(stm.From)
	if err != nil {
		return err
	}
	to, err := st.evalScalar(stm.To)
	if err != nil {
		return err
	}
	step := 1.0
	if stm.Step != nil {
		if step, err = st.evalScalar(stm.Step); err != nil {
			return err
		}
	}
	if step == 0 {
		return fmt.Errorf("%v: FORALL step is zero", stm.Pos())
	}

	// Owner-computes partitioning for the single-assignment body.
	if len(stm.Body) == 1 {
		if as, ok := stm.Body[0].(*lang.AssignStmt); ok {
			if arr, isArr := st.arrays[as.LHS.Name]; isArr && as.LHS.Indices != nil && arr.Distributed() {
				dim := -1
				for k, ix := range as.LHS.Indices {
					if ref, ok := ix.(*lang.Ref); ok && ref.Indices == nil && ref.Name == stm.Var {
						dim = k
					}
				}
				if dim >= 0 {
					// iterate only the owned indices of that dimension
					rs := arr.Local(st.Ctx).Grid().Dims[dim]
					var ferr error
					rs.ForEach(func(i int) bool {
						v := float64(i)
						if (step > 0 && (v < from || v > to)) || (step < 0 && (v > from || v < to)) {
							return true
						}
						if mod := int(v-from) % int(step); step != 1 && mod != 0 {
							return true
						}
						st.Scalars[stm.Var] = v
						if err := st.stmt(stm.Body[0]); err != nil {
							ferr = err
							return false
						}
						return true
					})
					if ferr != nil {
						return ferr
					}
					// FORALL completes collectively
					if err := st.Ctx.Barrier(); err != nil {
						return err
					}
					return nil
				}
			}
		}
	}
	// general body: full-range walk, owner-computes per element
	for v := from; (step > 0 && v <= to) || (step < 0 && v >= to); v += step {
		st.Scalars[stm.Var] = v
		if err := st.stmts(stm.Body); err != nil {
			return err
		}
	}
	if err := st.Ctx.Barrier(); err != nil {
		return err
	}
	return nil
}

func (st *State) processors(stm *lang.ProcessorsStmt) error {
	bounds := make([][2]int, len(stm.Bounds))
	for i, b := range stm.Bounds {
		lo := 1
		if b[0] != nil {
			v, err := st.evalScalar(b[0])
			if err != nil {
				return err
			}
			lo = int(v)
		}
		hi, err := st.evalScalar(b[1])
		if err != nil {
			return err
		}
		bounds[i] = [2]int{lo, int(hi)}
	}
	st.Ctx.Machine().Procs(stm.Name, bounds...)
	return nil
}

func (st *State) declare(stm *lang.DeclStmt) error {
	for _, dn := range stm.Names {
		if len(dn.Dims) == 0 {
			st.Scalars[dn.Name] = 0
			continue
		}
		bounds := make([][2]int, len(dn.Dims))
		for i, b := range dn.Dims {
			lo := 1
			if b[0] != nil {
				v, err := st.evalScalar(b[0])
				if err != nil {
					return err
				}
				lo = int(v)
			}
			hi, err := st.evalScalar(b[1])
			if err != nil {
				return err
			}
			bounds[i] = [2]int{lo, int(hi)}
		}
		dom := index.NewDomain(bounds...)

		decl := core.Decl{Name: dn.Name, Domain: dom, Dynamic: stm.Dynamic}
		ai := st.Unit.Arrays[dn.Name]
		if ai != nil {
			decl.Range = ai.Range
		}
		switch {
		case stm.Connect != nil:
			if stm.Connect.Extract != "" {
				decl.ConnectTo = stm.Connect.Extract
			} else {
				al, err := st.alignment(stm.Connect.Align, dom)
				if err != nil {
					return err
				}
				decl.ConnectTo = stm.Connect.Align.DstName
				decl.Align = al
			}
		case stm.Align != nil:
			al, err := st.alignment(stm.Align, dom)
			if err != nil {
				return err
			}
			decl.AlignWith = stm.Align.DstName
			decl.StaticAlign = al
		case stm.Dist != nil:
			spec, err := st.distSpec(stm.Dist, dom)
			if err != nil {
				return err
			}
			if stm.Dynamic {
				decl.Init = spec
			} else {
				decl.Static = spec
			}
		default:
			if !stm.Dynamic {
				// replicated local array: every dimension elided on the
				// default target
				dims := make([]dist.DimSpec, dom.Rank())
				for i := range dims {
					dims[i] = dist.ElidedDim()
				}
				decl.Static = &core.DistSpec{Type: dist.NewType(dims...)}
			}
		}
		a, err := st.In.Engine.Declare(st.Ctx, decl)
		if err != nil {
			return fmt.Errorf("%v: %w", stm.Pos(), err)
		}
		st.arrays[dn.Name] = a
	}
	return nil
}

// alignment converts a source-level AlignSpec into a dist.Alignment.
func (st *State) alignment(al *lang.AlignSpec, srcDom index.Domain) (*dist.Alignment, error) {
	maps := make([]dist.AxisMap, len(al.DstIdx))
	for j, e := range al.DstIdx {
		name, stride, offset, ok := st.Unit.AffineOf(e, al.SrcIdx)
		if !ok {
			return nil, fmt.Errorf("alignment subscript %v is not affine", e)
		}
		if name == "" {
			maps[j] = dist.AxisConst(offset)
			continue
		}
		srcDim := -1
		for i, n := range al.SrcIdx {
			if n == name {
				srcDim = i
			}
		}
		maps[j] = dist.AxisAffine(srcDim, stride, offset)
	}
	a := dist.NewAlignment(maps...)
	return &a, nil
}

// distSpec evaluates a distribution expression to a core.DistSpec.
func (st *State) distSpec(de *lang.DistExpr, dom index.Domain) (*core.DistSpec, error) {
	dims := make([]dist.DimSpec, len(de.Dims))
	for i, d := range de.Dims {
		spec, err := st.dimSpec(d, dom, i, de.Target)
		if err != nil {
			return nil, err
		}
		dims[i] = spec
	}
	spec := &core.DistSpec{Type: dist.NewType(dims...)}
	if de.Target != "" {
		pa := st.Ctx.Machine().Procs(de.Target, procBounds(st, de.Target)...)
		spec.Target = pa.Whole()
	}
	return spec, nil
}

// procBounds re-resolves a declared processor array's bounds (the
// machine caches by name, so this is consistent).
func procBounds(st *State, name string) [][2]int {
	pi := st.Unit.Procs[name]
	if pi == nil {
		panic(fmt.Sprintf("interp: unknown processor array %s", name))
	}
	out := make([][2]int, pi.Rank)
	for i, e := range pi.Extents {
		if e < 0 {
			e = st.Ctx.NP()
		}
		out[i] = [2]int{1, e}
	}
	return out
}

// dimSpec evaluates one distribution component; B_BLOCK/S_BLOCK arguments
// are integer arrays read from the (replicated) runtime values.
func (st *State) dimSpec(d lang.DistDim, dom index.Domain, dimIdx int, target string) (dist.DimSpec, error) {
	switch d.Kind {
	case lang.DBlock:
		return dist.BlockDim(), nil
	case lang.DElided:
		return dist.ElidedDim(), nil
	case lang.DCyclic:
		k := 1
		if d.Arg != nil {
			v, err := st.evalScalar(d.Arg)
			if err != nil {
				return dist.DimSpec{}, err
			}
			k = int(v)
		}
		return dist.CyclicDim(k), nil
	case lang.DSBlock, lang.DBBlock:
		ref, ok := d.Arg.(*lang.Ref)
		if !ok || ref.Indices != nil {
			return dist.DimSpec{}, fmt.Errorf("%v needs an array argument", d.Kind)
		}
		arr, ok := st.arrays[ref.Name]
		if !ok {
			return dist.DimSpec{}, fmt.Errorf("%v argument %s is not a declared array", d.Kind, ref.Name)
		}
		n := arr.Domain().Size()
		vals := make([]int, n)
		l := arr.Local(st.Ctx)
		i := 0
		l.ForEachOwned(func(p index.Point, v *float64) {
			vals[i] = int(*v)
			i++
		})
		if d.Kind == lang.DSBlock {
			return dist.SBlockDim(vals...), nil
		}
		return dist.BBlockDim(vals...), nil
	}
	return dist.DimSpec{}, fmt.Errorf("unsupported distribution component %v", d.Kind)
}

func (st *State) distribute(stm *lang.DistributeStmt) error {
	in := st.In
	if in.recoverRun && in.ckptDir != "" && !st.recovered {
		// First DISTRIBUTE site of a recovery run: replay the last
		// committed epoch over the declared arrays, then let the
		// statement itself re-establish the program's distribution.
		st.recovered = true
		if _, err := in.Engine.Restore(st.Ctx, in.ckptDir); err != nil {
			return fmt.Errorf("%v: recover: %w", stm.Pos(), err)
		}
	}
	if err := st.distributeExec(stm); err != nil {
		return err
	}
	st.nDistribute++
	if in.ckptDir != "" && st.nDistribute%in.ckptEvery == 0 {
		meta := map[string]string{"distribute": fmt.Sprint(st.nDistribute)}
		if _, err := in.Engine.Checkpoint(st.Ctx, in.ckptDir, meta); err != nil {
			return fmt.Errorf("%v: checkpoint: %w", stm.Pos(), err)
		}
		if in.drainOn && st.Ctx.NP() > 1 {
			view, err := st.drainDecision()
			if err != nil {
				return err
			}
			if view >= 0 {
				return &DrainRankError{ViewRank: view}
			}
		}
	}
	return nil
}

// drainDecision takes one DISTRIBUTE site's drain decision,
// collectively: rank 0 consults the health scorer for a member
// classified Degraded (or worse) and broadcasts its view rank, -1 for
// "everyone is healthy".  The checkpoint this site just committed is
// what the survivors replay after the drain.
func (st *State) drainDecision() (int, error) {
	vals := []int{-1}
	if st.Ctx.Rank() == 0 {
		if h := st.Ctx.Machine().Health(); h != nil {
			members := st.Ctx.Members()
			if worst, class, _, ok := h.Worst(members); ok && class >= health.Degraded {
				for i, p := range members {
					if p == worst {
						vals[0] = i
					}
				}
			}
		}
	}
	out, err := st.Ctx.Comm().BcastInts(0, vals)
	if err != nil {
		return -1, err
	}
	return out[0], nil
}

func (st *State) distributeExec(stm *lang.DistributeStmt) error {
	var arrays []*core.Array
	for _, n := range stm.Names {
		a, ok := st.arrays[n]
		if !ok {
			return fmt.Errorf("%v: DISTRIBUTE of undeclared array %s", stm.Pos(), n)
		}
		arrays = append(arrays, a)
	}
	var nt []*core.Array
	for _, n := range stm.NoTransfer {
		a, ok := st.arrays[n]
		if !ok {
			return fmt.Errorf("%v: NOTRANSFER of undeclared array %s", stm.Pos(), n)
		}
		nt = append(nt, a)
	}
	if stm.Align != nil {
		al, err := st.alignment(stm.Align, arrays[0].Domain())
		if err != nil {
			return err
		}
		return st.In.Engine.Distribute(st.Ctx, arrays, core.AlignWith(stm.Align.DstName, *al), core.NoTransfer(nt...))
	}
	// build the expression; extraction components read current types
	dims := make([]core.DimExpr, len(stm.Expr.Dims))
	for i, d := range stm.Expr.Dims {
		if d.Kind == lang.DExtract {
			dims[i] = core.FromDim(d.From, 0)
			continue
		}
		spec, err := st.dimSpec(d, arrays[0].Domain(), i, stm.Expr.Target)
		if err != nil {
			return fmt.Errorf("%v: %w", stm.Pos(), err)
		}
		dims[i] = core.Lit(spec)
	}
	ex := core.Dims(dims...)
	if stm.Expr.Target != "" {
		pa := st.Ctx.Machine().Procs(stm.Expr.Target, procBounds(st, stm.Expr.Target)...)
		ex = ex.To(pa.Whole())
	}
	if err := st.In.Engine.Distribute(st.Ctx, arrays, ex, core.NoTransfer(nt...)); err != nil {
		return fmt.Errorf("%v: %w", stm.Pos(), err)
	}
	return nil
}

func (st *State) selectStmt(stm *lang.SelectStmt) error {
	var sels []*core.Array
	for _, n := range stm.Selectors {
		a, ok := st.arrays[n]
		if !ok {
			return fmt.Errorf("%v: DCASE selector %s not declared", stm.Pos(), n)
		}
		sels = append(sels, a)
	}
	qsels := make([]querySel, len(sels))
	for i, a := range sels {
		qsels[i] = querySel{a}
	}
	types := make([]dist.Type, len(sels))
	byName := map[string]dist.Type{}
	for i, a := range sels {
		if !a.Distributed() {
			return fmt.Errorf("%v: selector %s has no well-defined distribution", stm.Pos(), a.Name())
		}
		types[i] = a.DistType()
		byName[a.Name()] = types[i]
	}
	for _, arm := range stm.Arms {
		match := true
		if !arm.Default {
			for qi, q := range arm.Queries {
				var t dist.Type
				if q.Tag != "" {
					t = byName[q.Tag]
				} else {
					t = types[qi]
				}
				pat := st.Unit.AbstractPattern(q.Pattern)
				if !pat.Matches(t) {
					match = false
					break
				}
			}
		}
		if match {
			return st.stmts(arm.Body)
		}
	}
	return nil // no match: construct completes without executing an action
}

type querySel struct{ a *core.Array }

func (q querySel) QueryName() string   { return q.a.Name() }
func (q querySel) Distributed() bool   { return q.a.Distributed() }
func (q querySel) DistType() dist.Type { return q.a.DistType() }

func (st *State) call(stm *lang.CallStmt) error {
	fn, ok := st.In.builtins[stm.Name]
	if !ok {
		return fmt.Errorf("%v: CALL of unregistered procedure %s", stm.Pos(), stm.Name)
	}
	args := make([]any, len(stm.Args))
	for i, a := range stm.Args {
		v, err := st.evalArg(a)
		if err != nil {
			return fmt.Errorf("%v: %w", stm.Pos(), err)
		}
		args[i] = v
	}
	return fn(st, args)
}

// evalArg evaluates a call argument: array/section references become
// *ArrayArg, everything else a float64 scalar.
func (st *State) evalArg(e lang.Expr) (any, error) {
	if ref, ok := e.(*lang.Ref); ok {
		if arr, isArr := st.arrays[ref.Name]; isArr {
			fixed := make([]int, arr.Domain().Rank())
			if ref.Indices == nil {
				for i := range fixed {
					fixed[i] = -1
				}
				return &ArrayArg{Arr: arr, Fixed: fixed}, nil
			}
			if len(ref.Indices) != len(fixed) {
				return nil, fmt.Errorf("%s subscripted with %d of %d dimensions", ref.Name, len(ref.Indices), len(fixed))
			}
			hasRange := false
			for k, ix := range ref.Indices {
				if _, isRange := ix.(*lang.RangeIdx); isRange {
					fixed[k] = -1
					hasRange = true
					continue
				}
				v, err := st.evalScalar(ix)
				if err != nil {
					return nil, err
				}
				fixed[k] = int(v)
			}
			if hasRange {
				return &ArrayArg{Arr: arr, Fixed: fixed}, nil
			}
			// fully subscripted element: pass the value
			return arr.DArray().Get(st.Ctx, index.Point(fixed)), nil
		}
	}
	return st.evalScalar(e)
}

// assign executes scalar or owner-computes element assignment.
func (st *State) assign(stm *lang.AssignStmt) error {
	lhs := stm.LHS
	if _, isArr := st.arrays[lhs.Name]; !isArr {
		v, err := st.evalScalar(stm.RHS)
		if err != nil {
			return err
		}
		st.Scalars[lhs.Name] = v
		return nil
	}
	arr := st.arrays[lhs.Name]
	if lhs.Indices == nil {
		return fmt.Errorf("%v: whole-array assignment to %s not supported", stm.Pos(), lhs.Name)
	}
	p := make(index.Point, len(lhs.Indices))
	for k, ix := range lhs.Indices {
		v, err := st.evalScalar(ix)
		if err != nil {
			return err
		}
		p[k] = int(v)
	}
	// owner-computes: only owners evaluate the RHS and store
	d := arr.Dist()
	if d == nil {
		return fmt.Errorf("%v: %s assigned before association with a distribution", stm.Pos(), lhs.Name)
	}
	if d.IsLocal(st.Ctx.Rank(), p) {
		v, err := st.evalScalar(stm.RHS)
		if err != nil {
			return err
		}
		arr.Local(st.Ctx).SetAt(p, v)
	}
	return nil
}

// evalScalar evaluates a numeric expression; array references fetch
// elements (possibly remotely); MOD and MIN/MAX intrinsics supported.
func (st *State) evalScalar(e lang.Expr) (float64, error) {
	switch ex := e.(type) {
	case *lang.IntLit:
		return float64(ex.Value), nil
	case *lang.Ref:
		if arr, ok := st.arrays[ex.Name]; ok {
			if ex.Indices == nil {
				return 0, fmt.Errorf("whole array %s in scalar context", ex.Name)
			}
			p := make(index.Point, len(ex.Indices))
			for k, ix := range ex.Indices {
				v, err := st.evalScalar(ix)
				if err != nil {
					return 0, err
				}
				p[k] = int(v)
			}
			return arr.DArray().Get(st.Ctx, p), nil
		}
		if ex.Indices != nil {
			// intrinsic function call
			args := make([]float64, len(ex.Indices))
			for i, ix := range ex.Indices {
				v, err := st.evalScalar(ix)
				if err != nil {
					return 0, err
				}
				args[i] = v
			}
			switch ex.Name {
			case "MOD":
				if len(args) != 2 {
					return 0, fmt.Errorf("MOD takes 2 arguments")
				}
				return math.Mod(args[0], args[1]), nil
			case "MIN":
				v := args[0]
				for _, a := range args[1:] {
					if a < v {
						v = a
					}
				}
				return v, nil
			case "MAX":
				v := args[0]
				for _, a := range args[1:] {
					if a > v {
						v = a
					}
				}
				return v, nil
			}
			return 0, fmt.Errorf("unknown function %s", ex.Name)
		}
		v, ok := st.Scalars[ex.Name]
		if !ok {
			return 0, fmt.Errorf("undefined scalar %s", ex.Name)
		}
		return v, nil
	case *lang.UnExpr:
		v, err := st.evalScalar(ex.X)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case lang.MINUS:
			return -v, nil
		case lang.NOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *lang.BinExpr:
		switch ex.Op {
		case lang.AND, lang.OR, lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
			b, err := st.evalLogical(ex)
			if err != nil {
				return 0, err
			}
			if b {
				return 1, nil
			}
			return 0, nil
		}
		l, err := st.evalScalar(ex.L)
		if err != nil {
			return 0, err
		}
		r, err := st.evalScalar(ex.R)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case lang.PLUS:
			return l + r, nil
		case lang.MINUS:
			return l - r, nil
		case lang.STAR:
			return l * r, nil
		case lang.SLASH:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l / r, nil
		}
	case *lang.IDTExpr:
		b, err := st.evalIDT(ex)
		if err != nil {
			return 0, err
		}
		if b {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

// evalLogical evaluates a generalized logical expression (§2.5.2).
func (st *State) evalLogical(e lang.Expr) (bool, error) {
	switch ex := e.(type) {
	case *lang.IDTExpr:
		return st.evalIDT(ex)
	case *lang.UnExpr:
		if ex.Op == lang.NOT {
			b, err := st.evalLogical(ex.X)
			return !b, err
		}
	case *lang.BinExpr:
		switch ex.Op {
		case lang.AND, lang.OR:
			l, err := st.evalLogical(ex.L)
			if err != nil {
				return false, err
			}
			r, err := st.evalLogical(ex.R)
			if err != nil {
				return false, err
			}
			if ex.Op == lang.AND {
				return l && r, nil
			}
			return l || r, nil
		case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
			l, err := st.evalScalar(ex.L)
			if err != nil {
				return false, err
			}
			r, err := st.evalScalar(ex.R)
			if err != nil {
				return false, err
			}
			switch ex.Op {
			case lang.EQ:
				return l == r, nil
			case lang.NE:
				return l != r, nil
			case lang.LT:
				return l < r, nil
			case lang.LE:
				return l <= r, nil
			case lang.GT:
				return l > r, nil
			case lang.GE:
				return l >= r, nil
			}
		}
	}
	v, err := st.evalScalar(e)
	return v != 0, err
}

func (st *State) evalIDT(ex *lang.IDTExpr) (bool, error) {
	arr, ok := st.arrays[ex.Array]
	if !ok {
		return false, fmt.Errorf("IDT of undeclared array %s", ex.Array)
	}
	if !arr.Distributed() {
		return false, fmt.Errorf("IDT of %s before association with a distribution", ex.Array)
	}
	pat := st.Unit.AbstractPattern(ex.Pattern)
	return pat.Matches(arr.DistType()), nil
}
