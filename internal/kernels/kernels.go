// Package kernels provides the numerical routines the paper's application
// studies call (§4): the constant-coefficient tridiagonal solver TRIDIAG
// used by the ADI iteration of Figure 1, a residual computation, and the
// 5-point smoothing step whose communication pattern §4 analyzes.
//
// Two variants of the tridiagonal solve exist: a whole-line solve for
// lines that are local to one processor (the dynamic-distribution ADI),
// and segment sweeps for the pipelined distributed solve a compiler must
// emit when the line is spread across processors (the static-distribution
// ADI baseline).
package kernels

// Tridiag overwrites rhs with the solution of the constant-coefficient
// tridiagonal system
//
//	a*x[i-1] + b*x[i] + c*x[i+1] = rhs[i]
//
// (x[-1] = x[n] = 0), the contract of Figure 1's TRIDIAG: "a sequential
// routine ... which is given a right hand side and overwrites it with the
// solution of a constant coefficient tridiagonal system".  scratch must
// have len(rhs) capacity (it holds the modified diagonal); pass nil to
// allocate.
func Tridiag(rhs []float64, a, b, c float64, scratch []float64) {
	n := len(rhs)
	if n == 0 {
		return
	}
	if scratch == nil {
		scratch = make([]float64, n)
	}
	bp := scratch[:n]
	bp[0] = b
	for i := 1; i < n; i++ {
		m := a / bp[i-1]
		bp[i] = b - m*c
		rhs[i] -= m * rhs[i-1]
	}
	rhs[n-1] /= bp[n-1]
	for i := n - 2; i >= 0; i-- {
		rhs[i] = (rhs[i] - c*rhs[i+1]) / bp[i]
	}
}

// TridiagStrided is Tridiag over a strided line data[start], data[start+
// stride], ..., n elements — the form needed to solve along a row of a
// column-major local block without copying.
func TridiagStrided(data []float64, start, stride, n int, a, b, c float64, scratch []float64) {
	if n == 0 {
		return
	}
	if scratch == nil {
		scratch = make([]float64, n)
	}
	bp := scratch[:n]
	bp[0] = b
	idx := start + stride
	for i := 1; i < n; i, idx = i+1, idx+stride {
		m := a / bp[i-1]
		bp[i] = b - m*c
		data[idx] -= m * data[idx-stride]
	}
	last := start + (n-1)*stride
	data[last] /= bp[n-1]
	idx = last - stride
	for i := n - 2; i >= 0; i, idx = i-1, idx-stride {
		data[idx] = (data[idx] - c*data[idx+stride]) / bp[i]
	}
}

// SweepState carries the pipeline state of a distributed Thomas solve
// between processor segments: the modified diagonal and rhs of the last
// row of the upstream segment.
type SweepState struct {
	BP float64 // modified diagonal b'
	D  float64 // modified rhs d'
	// Valid is false on the first segment (no upstream).
	Valid bool
}

// ForwardSegment performs the forward-elimination sweep on one segment of
// a distributed line (strided access as in TridiagStrided), starting from
// the upstream state, and returns the state to pass downstream.  bp
// receives the modified diagonal for the segment (needed by
// BackwardSegment) and must have length n.
func ForwardSegment(data []float64, start, stride, n int, a, b, c float64, in SweepState, bp []float64) SweepState {
	if n == 0 {
		return in
	}
	idx := start
	prevBP, prevD := 0.0, 0.0
	have := in.Valid
	if have {
		prevBP, prevD = in.BP, in.D
	}
	for i := 0; i < n; i, idx = i+1, idx+stride {
		if have {
			m := a / prevBP
			bp[i] = b - m*c
			data[idx] -= m * prevD
		} else {
			bp[i] = b
			have = true
		}
		prevBP, prevD = bp[i], data[idx]
	}
	return SweepState{BP: prevBP, D: prevD, Valid: true}
}

// BackState carries the back-substitution pipeline state: the first
// solution value of the downstream segment.
type BackState struct {
	X     float64
	Valid bool
}

// BackwardSegment performs back-substitution on one segment given the
// downstream state (the solution value just after this segment), using
// the modified diagonal bp produced by ForwardSegment.  It returns the
// state to pass upstream (the segment's first solution value).
func BackwardSegment(data []float64, start, stride, n int, c float64, in BackState, bp []float64) BackState {
	if n == 0 {
		return in
	}
	idx := start + (n-1)*stride
	if in.Valid {
		data[idx] = (data[idx] - c*in.X) / bp[n-1]
	} else {
		data[idx] /= bp[n-1]
	}
	for i := n - 2; i >= 0; i-- {
		idx -= stride
		data[idx] = (data[idx] - c*data[idx+stride]) / bp[i]
	}
	return BackState{X: data[start], Valid: true}
}

// Smooth5 computes one Jacobi smoothing step on the interior of a dense
// column-major nx×ny grid: out = 0.25*(N+S+E+W).  Boundary values are
// copied through.  The 4-nearest-neighbour dependence is the access
// pattern of the paper's §4 grid example.
func Smooth5(out, in []float64, nx, ny int) {
	copy(out, in)
	for j := 1; j < ny-1; j++ {
		base := j * nx
		for i := 1; i < nx-1; i++ {
			k := base + i
			out[k] = 0.25 * (in[k-1] + in[k+1] + in[k-nx] + in[k+nx])
		}
	}
}

// SmoothRow applies the 5-point Jacobi update to one contiguous row span
// of a column-major grid: dst[i] = 0.25*(W+E+N+S) for i in [off, off+n),
// with rowStride the storage distance between vertically adjacent
// elements (dimension-0 storage stride must be 1).  This is the span
// form of Smooth5's inner loop, used by the runtime's distributed
// smoothing sweep so locally owned rows are processed as flat slices —
// no per-point index mapping inside the sweep.
func SmoothRow(dst, src []float64, off, n, rowStride int) {
	for i := off; i < off+n; i++ {
		dst[i] = 0.25 * (src[i-1] + src[i+1] + src[i-rowStride] + src[i+rowStride])
	}
}

// Resid computes v = f - A(u) for the 5-point Laplacian A(u) = 4u -
// u(i±1,j) - u(i,j±1) on the interior of a dense column-major nx×ny grid;
// boundary v is set to 0.  This is the RESID of Figure 1.
func Resid(v, u, f []float64, nx, ny int) {
	for i := range v {
		v[i] = 0
	}
	for j := 1; j < ny-1; j++ {
		base := j * nx
		for i := 1; i < nx-1; i++ {
			k := base + i
			v[k] = f[k] - (4*u[k] - u[k-1] - u[k+1] - u[k-nx] - u[k+nx])
		}
	}
}

// SerialADI runs iters ADI iterations on a dense column-major nx×ny grid
// v (in place): each iteration solves the constant-coefficient tridiagonal
// system along every x-line (columns, stride 1) and then along every
// y-line (rows, stride nx).  It is the reference the distributed runs are
// validated against.
func SerialADI(v []float64, nx, ny, iters int, a, b, c float64) {
	scratch := make([]float64, max(nx, ny))
	for it := 0; it < iters; it++ {
		for j := 0; j < ny; j++ {
			Tridiag(v[j*nx:(j+1)*nx], a, b, c, scratch)
		}
		for i := 0; i < nx; i++ {
			TridiagStrided(v, i, nx, ny, a, b, c, scratch)
		}
	}
}
