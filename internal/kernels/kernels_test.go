package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// applyTridiag computes y = T x for the constant-coefficient tridiagonal
// operator.
func applyTridiag(x []float64, a, b, c float64) []float64 {
	n := len(x)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b * x[i]
		if i > 0 {
			y[i] += a * x[i-1]
		}
		if i < n-1 {
			y[i] += c * x[i+1]
		}
	}
	return y
}

func TestTridiagSolvesSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 100} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		a, b, c := -1.0, 4.0, -1.0
		rhs := applyTridiag(x, a, b, c)
		Tridiag(rhs, a, b, c, nil)
		for i := range x {
			if math.Abs(rhs[i]-x[i]) > 1e-10 {
				t.Fatalf("n=%d: x[%d] = %g want %g", n, i, rhs[i], x[i])
			}
		}
	}
}

func TestTridiagStridedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, stride, start = 17, 3, 2
	data := make([]float64, start+n*stride+5)
	for i := range data {
		data[i] = rng.Float64()
	}
	dense := make([]float64, n)
	for i := 0; i < n; i++ {
		dense[i] = data[start+i*stride]
	}
	a, b, c := -1.0, 4.0, -1.0
	Tridiag(dense, a, b, c, nil)
	TridiagStrided(data, start, stride, n, a, b, c, nil)
	for i := 0; i < n; i++ {
		if math.Abs(data[start+i*stride]-dense[i]) > 1e-12 {
			t.Fatalf("strided[%d] = %g want %g", i, data[start+i*stride], dense[i])
		}
	}
	// untouched elements stay untouched
	if data[0] == 0 {
		t.Fatal("out-of-line element clobbered")
	}
}

func TestSegmentedSweepsMatchWholeLine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 40
	a, b, c := -1.0, 4.0, -1.0
	for _, cuts := range [][]int{{20}, {7, 23}, {1, 2, 3}, {39}} {
		whole := make([]float64, n)
		for i := range whole {
			whole[i] = rng.Float64()
		}
		seg := make([]float64, n)
		copy(seg, whole)
		Tridiag(whole, a, b, c, nil)

		// segmented: forward across segments, then backward in reverse
		bounds := append(append([]int{0}, cuts...), n)
		bps := make([][]float64, len(bounds)-1)
		st := SweepState{}
		for s := 0; s+1 < len(bounds); s++ {
			lo, hi := bounds[s], bounds[s+1]
			bps[s] = make([]float64, hi-lo)
			st = ForwardSegment(seg, lo, 1, hi-lo, a, b, c, st, bps[s])
		}
		back := BackState{}
		for s := len(bounds) - 2; s >= 0; s-- {
			lo, hi := bounds[s], bounds[s+1]
			back = BackwardSegment(seg, lo, 1, hi-lo, c, back, bps[s])
		}
		for i := range whole {
			if math.Abs(seg[i]-whole[i]) > 1e-10 {
				t.Fatalf("cuts %v: seg[%d] = %g want %g", cuts, i, seg[i], whole[i])
			}
		}
	}
}

func TestSegmentedSweepEmptySegment(t *testing.T) {
	const n = 10
	a, b, c := -1.0, 4.0, -1.0
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i + 1)
	}
	want := make([]float64, n)
	copy(want, data)
	Tridiag(want, a, b, c, nil)

	bp0 := make([]float64, 4)
	bp2 := make([]float64, 6)
	st := ForwardSegment(data, 0, 1, 4, a, b, c, SweepState{}, bp0)
	st = ForwardSegment(data, 4, 1, 0, a, b, c, st, nil) // empty middle
	ForwardSegment(data, 4, 1, 6, a, b, c, st, bp2)
	back := BackwardSegment(data, 4, 1, 6, c, BackState{}, bp2)
	back = BackwardSegment(data, 4, 1, 0, c, back, nil)
	BackwardSegment(data, 0, 1, 4, c, back, bp0)
	for i := range want {
		if math.Abs(data[i]-want[i]) > 1e-10 {
			t.Fatalf("with empty segment: [%d] = %g want %g", i, data[i], want[i])
		}
	}
}

func TestSmooth5(t *testing.T) {
	const nx, ny = 4, 3
	in := make([]float64, nx*ny)
	for i := range in {
		in[i] = float64(i)
	}
	out := make([]float64, nx*ny)
	Smooth5(out, in, nx, ny)
	// interior points: (1,1) at 1*4+1=5 and (2,1) at 6
	want5 := 0.25 * (in[4] + in[6] + in[1] + in[9])
	if out[5] != want5 {
		t.Fatalf("out[5] = %g want %g", out[5], want5)
	}
	// boundary copied
	if out[0] != in[0] || out[nx*ny-1] != in[nx*ny-1] {
		t.Fatal("boundary not copied")
	}
}

func TestResid(t *testing.T) {
	const nx, ny = 5, 5
	u := make([]float64, nx*ny)
	f := make([]float64, nx*ny)
	for i := range u {
		u[i] = float64(i % 7)
		f[i] = 1
	}
	v := make([]float64, nx*ny)
	Resid(v, u, f, nx, ny)
	k := 2*nx + 2 // interior point (2,2)
	want := f[k] - (4*u[k] - u[k-1] - u[k+1] - u[k-nx] - u[k+nx])
	if v[k] != want {
		t.Fatalf("v = %g want %g", v[k], want)
	}
	if v[0] != 0 {
		t.Fatal("boundary residual should be 0")
	}
}

func TestSerialADIConverges(t *testing.T) {
	// repeated tridiagonal smoothing with a diagonally dominant operator
	// contracts toward zero for zero rhs
	const nx, ny = 16, 16
	v := make([]float64, nx*ny)
	rng := rand.New(rand.NewSource(4))
	for i := range v {
		v[i] = rng.Float64()
	}
	norm0 := 0.0
	for _, x := range v {
		norm0 += x * x
	}
	SerialADI(v, nx, ny, 5, -1, 4, -1)
	norm1 := 0.0
	for _, x := range v {
		norm1 += x * x
	}
	if norm1 >= norm0 {
		t.Fatalf("ADI did not contract: %g -> %g", norm0, norm1)
	}
}

func TestSmoothRowMatchesSmooth5(t *testing.T) {
	const nx, ny = 9, 7
	in := make([]float64, nx*ny)
	for i := range in {
		in[i] = float64((i*13)%17) * 0.5
	}
	want := make([]float64, nx*ny)
	Smooth5(want, in, nx, ny)
	got := make([]float64, nx*ny)
	copy(got, in)
	for j := 1; j < ny-1; j++ {
		SmoothRow(got, in, j*nx+1, nx-2, nx)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: SmoothRow path %v, Smooth5 %v", i, got[i], want[i])
		}
	}
}
