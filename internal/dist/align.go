package dist

import (
	"fmt"
	"strings"

	"repro/internal/index"
)

// AxisMap describes how one dimension of the alignment *target* array B is
// derived from the indices of the *source* array A in an alignment
// specification (Definition 2: an index mapping α_A from I^A to I^B).
//
//	ALIGN A(I,J) WITH B(J, 2*I+1, 3)
//
// gives B three axis maps: {SrcDim:1}, {SrcDim:0, Stride:2, Offset:1} and
// {Const:true, ConstVal:3}.
type AxisMap struct {
	// SrcDim is the A dimension whose index forms this B coordinate
	// (B_j = Stride*A_i + Offset).  Ignored when Const.
	SrcDim int
	// Stride scales the source index; 0 is normalized to 1.
	Stride int
	// Offset shifts the source index.
	Offset int
	// Const marks a constant coordinate of value ConstVal.
	Const    bool
	ConstVal int
}

// Axis builds an identity axis map for source dimension i.
func Axis(i int) AxisMap { return AxisMap{SrcDim: i, Stride: 1} }

// AxisAffine builds B_j = stride*A_i + offset.
func AxisAffine(i, stride, offset int) AxisMap {
	return AxisMap{SrcDim: i, Stride: stride, Offset: offset}
}

// AxisConst builds a constant coordinate.
func AxisConst(v int) AxisMap { return AxisMap{Const: true, ConstVal: v} }

func (a AxisMap) stride() int {
	if a.Stride == 0 {
		return 1
	}
	return a.Stride
}

func (a AxisMap) String() string {
	if a.Const {
		return fmt.Sprint(a.ConstVal)
	}
	v := fmt.Sprintf("i%d", a.SrcDim+1)
	if s := a.stride(); s != 1 {
		v = fmt.Sprintf("%d*%s", s, v)
	}
	if a.Offset > 0 {
		v += fmt.Sprintf("+%d", a.Offset)
	} else if a.Offset < 0 {
		v += fmt.Sprint(a.Offset)
	}
	return v
}

// Alignment is a complete index mapping I^A → I^B: one AxisMap per B
// dimension.
type Alignment struct {
	Maps []AxisMap
}

// NewAlignment builds an alignment from per-target-dimension axis maps.
func NewAlignment(maps ...AxisMap) Alignment {
	return Alignment{Maps: maps}
}

// Identity returns the identity alignment for the given rank.
func Identity(rank int) Alignment {
	maps := make([]AxisMap, rank)
	for i := range maps {
		maps[i] = Axis(i)
	}
	return Alignment{Maps: maps}
}

// Transpose2D returns the alignment A(I,J) WITH B(J,I) (Example 1 of the
// paper uses the 3-D variant D(I,J,K) WITH C(J,I,K)).
func Transpose2D() Alignment {
	return NewAlignment(Axis(1), Axis(0))
}

// Apply maps a source point to the target point.
func (al Alignment) Apply(p index.Point) index.Point {
	out := make(index.Point, len(al.Maps))
	for j, m := range al.Maps {
		if m.Const {
			out[j] = m.ConstVal
		} else {
			out[j] = m.stride()*p[m.SrcDim] + m.Offset
		}
	}
	return out
}

// Validate checks that the alignment maps every point of aDom into bDom
// and that each source dimension is referenced at most once.
func (al Alignment) Validate(aDom, bDom index.Domain) error {
	if len(al.Maps) != bDom.Rank() {
		return fmt.Errorf("dist: alignment has %d axis maps, target rank is %d", len(al.Maps), bDom.Rank())
	}
	seen := make([]bool, aDom.Rank())
	for j, m := range al.Maps {
		if m.Const {
			if m.ConstVal < bDom.Lo[j] || m.ConstVal > bDom.Hi[j] {
				return fmt.Errorf("dist: alignment constant %d outside target dim %d bounds %d:%d", m.ConstVal, j+1, bDom.Lo[j], bDom.Hi[j])
			}
			continue
		}
		if m.SrcDim < 0 || m.SrcDim >= aDom.Rank() {
			return fmt.Errorf("dist: alignment references source dim %d of rank-%d array", m.SrcDim+1, aDom.Rank())
		}
		if seen[m.SrcDim] {
			return fmt.Errorf("dist: source dimension %d referenced twice in alignment", m.SrcDim+1)
		}
		seen[m.SrcDim] = true
		s := m.stride()
		if s <= 0 {
			return fmt.Errorf("dist: alignment stride %d not positive (dim %d)", s, j+1)
		}
		loImg := s*aDom.Lo[m.SrcDim] + m.Offset
		hiImg := s*aDom.Hi[m.SrcDim] + m.Offset
		if loImg < bDom.Lo[j] || hiImg > bDom.Hi[j] {
			return fmt.Errorf("dist: alignment image %d:%d of source dim %d outside target dim %d bounds %d:%d",
				loImg, hiImg, m.SrcDim+1, j+1, bDom.Lo[j], bDom.Hi[j])
		}
	}
	return nil
}

func (al Alignment) String() string {
	parts := make([]string, len(al.Maps))
	for j, m := range al.Maps {
		parts[j] = m.String()
	}
	return "WITH (" + strings.Join(parts, ",") + ")"
}

// Construct realizes the paper's CONSTRUCT(α_A, δ_B) (§2.1): given the
// distribution of B and an alignment of A with B, derive A's distribution
// so that δ_A(i) = δ_B(α_A(i)) — aligned elements are guaranteed to
// reside on the same processors.
//
// The derivation is exact for the supported alignment forms:
//
//   - identity/offset/stride axes over block-family dimensions become
//     B_BLOCK with preimaged bounds,
//   - identity/offset axes over CYCLIC dimensions become phase-shifted
//     CYCLIC (stride > 1 over CYCLIC is rejected — ownership would not be
//     expressible per-dimension),
//   - constant axes pin the corresponding target dimension's coordinate,
//   - source dimensions not referenced by the alignment are elided (the
//     owner does not depend on them).
func Construct(al Alignment, bDist *Distribution, aDom index.Domain) (*Distribution, error) {
	bDom := bDist.Domain()
	if err := al.Validate(aDom, bDom); err != nil {
		return nil, err
	}
	specs := make([]DimSpec, aDom.Rank())
	procDim := make([]int, aDom.Rank())
	for i := range specs {
		specs[i] = ElidedDim()
		procDim[i] = -1
	}
	fixed := make([]int, bDist.Target().NDims())
	for td := range fixed {
		fixed[td] = bDist.fixed[td] // inherit pins of B itself
	}
	for j, m := range al.Maps {
		bSpec := bDist.typ.Dims[j]
		td := bDist.procDim[j]
		if m.Const {
			if td >= 0 {
				fixed[td] = bDist.OwnerCoord(j, m.ConstVal)
			}
			continue
		}
		if !bSpec.Distributed() || td < 0 {
			continue // A's source dim stays elided: locality unconstrained
		}
		np := bDist.target.Extent(td)
		s, o := m.stride(), m.Offset
		aLo, aHi := aDom.Lo[m.SrcDim], aDom.Hi[m.SrcDim]
		var derived DimSpec
		switch bSpec.Kind {
		case Block, SBlock, BBlock:
			bounds := make([]int, np)
			for p := 0; p < np; p++ {
				_, shi := bSpec.segBounds(p, bDom.Lo[j], bDom.Extent(j), np)
				// preimage upper bound: largest x with s*x+o <= shi
				b := floorDiv(shi-o, s)
				if b < aLo-1 {
					b = aLo - 1
				}
				if b > aHi {
					b = aHi
				}
				bounds[p] = b
			}
			bounds[np-1] = aHi
			derived = DimSpec{Kind: BBlock, Bounds: bounds}
		case Cyclic:
			if s != 1 {
				return nil, fmt.Errorf("dist: alignment stride %d over CYCLIC dimension %d not supported", s, j+1)
			}
			derived = DimSpec{Kind: Cyclic, K: normK(bSpec.K),
				Phase: bSpec.normPhase(np) + (aLo + o - bDom.Lo[j])}
		default:
			return nil, fmt.Errorf("dist: cannot derive through %v dimension", bSpec.Kind)
		}
		specs[m.SrcDim] = derived
		procDim[m.SrcDim] = td
	}
	typ := NewType(specs...)
	return newBound(typ, aDom, bDist.target, procDim, fixed)
}

// Extract realizes distribution extraction "CONNECT (=B)" (§2.3): apply
// B's distribution *type* to A's own index domain on the same target.
// Ranks must agree; irregular specifiers must validate against A's
// extents.
func Extract(bDist *Distribution, aDom index.Domain) (*Distribution, error) {
	if bDist.Domain().Rank() != aDom.Rank() {
		return nil, fmt.Errorf("dist: extraction rank mismatch: %d vs %d", bDist.Domain().Rank(), aDom.Rank())
	}
	return newBound(bDist.typ, aDom, bDist.target, bDist.procDim, bDist.fixed)
}

// floorDiv is floor(a/b) for b > 0.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
