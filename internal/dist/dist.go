// Package dist implements Vienna Fortran's distribution model (paper §2):
// distribution types built from the intrinsic distribution functions
// BLOCK, CYCLIC(k), S_BLOCK and B_BLOCK plus dimension elision ":",
// alignments between arrays (Definition 2) with the CONSTRUCT composition,
// and the distribution-type matching used by the DCASE construct and the
// IDT intrinsic (§2.5).
//
// A Type is a distribution expression such as (BLOCK, CYCLIC(3), :) — a
// *class* of distributions.  Applying a Type to an array's index domain
// and a processor-section target yields a Distribution (paper §2.2: "The
// application of a distribution type to a (data) array and a processor
// section yields a distribution").  A Distribution answers ownership
// queries: which processor owns element i, and which global indices does
// processor p own (as an index.Grid of strided runs, enabling
// communication schedules without per-element owner lookups).
package dist

import (
	"fmt"
	"strings"

	"repro/internal/index"
)

// Kind enumerates the per-dimension distribution functions of §2.2.
type Kind int

// Distribution kinds.
const (
	// Elided is the ":" — the dimension is not distributed.
	Elided Kind = iota
	// Block distributes in evenly sized contiguous segments.
	Block
	// Cyclic maps elements round-robin in blocks of K.
	Cyclic
	// SBlock is S_BLOCK(sizes): contiguous irregular blocks given by
	// per-processor segment sizes.
	SBlock
	// BBlock is B_BLOCK(bounds): contiguous irregular blocks given by
	// per-processor upper bounds (global indices), as used for the PIC
	// load balancing of §4.
	BBlock
)

func (k Kind) String() string {
	switch k {
	case Elided:
		return ":"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	case SBlock:
		return "S_BLOCK"
	case BBlock:
		return "B_BLOCK"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DimSpec is one component of a distribution expression.
type DimSpec struct {
	Kind Kind
	// K is the block length for CYCLIC(K); CYCLIC means CYCLIC(1).
	K int
	// Phase shifts a CYCLIC distribution by Phase elements (owner of
	// index i is ((i-lo+Phase)/K) mod np).  It cannot be written in
	// source programs; it arises from deriving distributions through
	// offset alignments (CONSTRUCT, §2.1) and is ignored by type
	// matching.
	Phase int
	// Sizes holds the per-processor segment sizes for S_BLOCK.
	Sizes []int
	// Bounds holds the per-processor inclusive upper bounds for B_BLOCK.
	Bounds []int
}

// BlockDim returns a BLOCK specifier.
func BlockDim() DimSpec { return DimSpec{Kind: Block} }

// CyclicDim returns a CYCLIC(k) specifier; k <= 0 is normalized to 1.
func CyclicDim(k int) DimSpec {
	if k <= 0 {
		k = 1
	}
	return DimSpec{Kind: Cyclic, K: k}
}

// SBlockDim returns an S_BLOCK(sizes) specifier.
func SBlockDim(sizes ...int) DimSpec {
	cp := make([]int, len(sizes))
	copy(cp, sizes)
	return DimSpec{Kind: SBlock, Sizes: cp}
}

// BBlockDim returns a B_BLOCK(bounds) specifier.
func BBlockDim(bounds ...int) DimSpec {
	cp := make([]int, len(bounds))
	copy(cp, bounds)
	return DimSpec{Kind: BBlock, Bounds: cp}
}

// ElidedDim returns the ":" specifier.
func ElidedDim() DimSpec { return DimSpec{Kind: Elided} }

// Distributed reports whether the dimension consumes a processor
// dimension.
func (d DimSpec) Distributed() bool { return d.Kind != Elided }

func (d DimSpec) String() string {
	switch d.Kind {
	case Elided:
		return ":"
	case Block:
		return "BLOCK"
	case Cyclic:
		s := "CYCLIC"
		if normK(d.K) != 1 {
			s = fmt.Sprintf("CYCLIC(%d)", d.K)
		}
		if d.Phase != 0 {
			s += fmt.Sprintf("@%d", d.Phase)
		}
		return s
	case SBlock:
		return fmt.Sprintf("S_BLOCK%v", d.Sizes)
	case BBlock:
		return fmt.Sprintf("B_BLOCK%v", d.Bounds)
	}
	return d.Kind.String()
}

// Equal reports whether two specifiers denote the same per-dimension
// distribution (CYCLIC and CYCLIC(1) are equal).
func (d DimSpec) Equal(o DimSpec) bool {
	if d.Kind != o.Kind {
		return false
	}
	switch d.Kind {
	case Cyclic:
		return normK(d.K) == normK(o.K) && d.Phase == o.Phase
	case SBlock:
		return intsEqual(d.Sizes, o.Sizes)
	case BBlock:
		return intsEqual(d.Bounds, o.Bounds)
	}
	return true
}

func normK(k int) int {
	if k <= 0 {
		return 1
	}
	return k
}

// normPhase reduces the phase into [0, np*K).
func (d DimSpec) normPhase(np int) int {
	cyc := np * normK(d.K)
	return (d.Phase%cyc + cyc) % cyc
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validate checks the specifier against an array dimension of extent n
// starting at lo, distributed over np processors.
func (d DimSpec) validate(lo, n, np int) error {
	switch d.Kind {
	case Elided, Block, Cyclic:
		return nil
	case SBlock:
		if len(d.Sizes) != np {
			return fmt.Errorf("dist: S_BLOCK has %d sizes for %d processors", len(d.Sizes), np)
		}
		sum := 0
		for _, s := range d.Sizes {
			if s < 0 {
				return fmt.Errorf("dist: S_BLOCK negative size %d", s)
			}
			sum += s
		}
		if sum != n {
			return fmt.Errorf("dist: S_BLOCK sizes sum to %d, dimension extent is %d", sum, n)
		}
		return nil
	case BBlock:
		if len(d.Bounds) != np {
			return fmt.Errorf("dist: B_BLOCK has %d bounds for %d processors", len(d.Bounds), np)
		}
		prev := lo - 1
		for i, b := range d.Bounds {
			if b < prev {
				return fmt.Errorf("dist: B_BLOCK bounds not non-decreasing at %d", i)
			}
			prev = b
		}
		if d.Bounds[np-1] != lo+n-1 {
			return fmt.Errorf("dist: B_BLOCK last bound %d != dimension upper bound %d", d.Bounds[np-1], lo+n-1)
		}
		return nil
	}
	return fmt.Errorf("dist: unknown kind %v", d.Kind)
}

// segBounds returns the inclusive global segment [slo,shi] of processor
// coordinate p for block-family kinds.  For an empty segment shi < slo.
func (d DimSpec) segBounds(p, lo, n, np int) (slo, shi int) {
	switch d.Kind {
	case Block:
		bs := (n + np - 1) / np
		slo = lo + p*bs
		shi = lo + (p+1)*bs - 1
		if shi > lo+n-1 {
			shi = lo + n - 1
		}
		return slo, shi
	case SBlock:
		off := 0
		for i := 0; i < p; i++ {
			off += d.Sizes[i]
		}
		return lo + off, lo + off + d.Sizes[p] - 1
	case BBlock:
		if p == 0 {
			return lo, d.Bounds[0]
		}
		return d.Bounds[p-1] + 1, d.Bounds[p]
	}
	panic("dist: segBounds on non-block kind " + d.Kind.String())
}

// owner returns the processor coordinate owning global index i.
func (d DimSpec) owner(i, lo, n, np int) int {
	switch d.Kind {
	case Block:
		bs := (n + np - 1) / np
		return (i - lo) / bs
	case Cyclic:
		k := normK(d.K)
		return (((i - lo) + d.normPhase(np)) / k) % np
	case SBlock:
		off := i - lo
		for p := 0; p < np; p++ {
			off -= d.Sizes[p]
			if off < 0 {
				return p
			}
		}
		return np - 1
	case BBlock:
		// binary search smallest p with i <= Bounds[p]
		loP, hiP := 0, np-1
		for loP < hiP {
			mid := (loP + hiP) / 2
			if i <= d.Bounds[mid] {
				hiP = mid
			} else {
				loP = mid + 1
			}
		}
		return loP
	}
	panic("dist: owner on elided dimension")
}

// runSet returns the global indices owned by processor coordinate p as a
// RunSet.  Block-family kinds yield a single stride-1 run; CYCLIC(k)
// yields k runs of stride np*k.
func (d DimSpec) runSet(p, lo, n, np int) index.RunSet {
	hi := lo + n - 1
	switch d.Kind {
	case Block, SBlock, BBlock:
		slo, shi := d.segBounds(p, lo, n, np)
		if shi < slo {
			return index.RunSet{}
		}
		return index.RunSet{index.NewRun(slo, shi, 1)}
	case Cyclic:
		k := normK(d.K)
		ph := d.normPhase(np)
		cyc := np * k
		runs := make([]index.Run, 0, k)
		for j := 0; j < k; j++ {
			// offsets off with (off+ph) ≡ p*k+j (mod np*k)
			startOff := ((p*k+j-ph)%cyc + cyc) % cyc
			start := lo + startOff
			if start > hi {
				continue
			}
			r := index.NewRun(start, hi, cyc)
			if !r.Empty() {
				runs = append(runs, r)
			}
		}
		return index.NewRunSet(runs...)
	case Elided:
		return index.RunSet{index.NewRun(lo, hi, 1)}
	}
	panic("dist: runSet unknown kind")
}

// localCount returns the number of indices owned by coordinate p.
func (d DimSpec) localCount(p, lo, n, np int) int {
	switch d.Kind {
	case Block, SBlock, BBlock:
		slo, shi := d.segBounds(p, lo, n, np)
		if shi < slo {
			return 0
		}
		return shi - slo + 1
	case Cyclic:
		if d.Phase != 0 {
			return d.runSet(p, lo, n, np).Count()
		}
		k := normK(d.K)
		full := n / (np * k)
		rem := n - full*np*k
		cnt := full * k
		// leading remainder: coordinates 0.. get extra
		start := p * k
		extra := rem - start
		if extra > k {
			extra = k
		}
		if extra > 0 {
			cnt += extra
		}
		return cnt
	case Elided:
		return n
	}
	panic("dist: localCount unknown kind")
}

// localIndex returns the 0-based local position of global index i on its
// owning coordinate (the paper's loc_map, per dimension).
func (d DimSpec) localIndex(i, lo, n, np int) int {
	switch d.Kind {
	case Block, SBlock, BBlock:
		p := d.owner(i, lo, n, np)
		slo, _ := d.segBounds(p, lo, n, np)
		return i - slo
	case Cyclic:
		if d.Phase != 0 {
			p := d.owner(i, lo, n, np)
			return d.runSet(p, lo, n, np).IndexOf(i)
		}
		k := normK(d.K)
		off := i - lo
		return (off/(np*k))*k + off%k
	case Elided:
		return i - lo
	}
	panic("dist: localIndex unknown kind")
}

// globalIndex is the inverse of localIndex for coordinate p.
func (d DimSpec) globalIndex(li, p, lo, n, np int) int {
	switch d.Kind {
	case Block, SBlock, BBlock:
		slo, _ := d.segBounds(p, lo, n, np)
		return slo + li
	case Cyclic:
		if d.Phase != 0 {
			return d.runSet(p, lo, n, np).At(li)
		}
		k := normK(d.K)
		cycle := li / k
		within := li % k
		return lo + cycle*np*k + p*k + within
	case Elided:
		return lo + li
	}
	panic("dist: globalIndex unknown kind")
}

// Type is a distribution type: a list of per-dimension specifiers
// (paper §2.2, "distribution expression ... determines a class of
// distributions which is called a distribution type").
type Type struct {
	Dims []DimSpec
}

// NewType builds a Type from dimension specifiers.
func NewType(dims ...DimSpec) Type {
	return Type{Dims: dims}
}

// Rank returns the number of array dimensions the type applies to.
func (t Type) Rank() int { return len(t.Dims) }

// DistributedDims returns how many dimensions consume processor
// dimensions.
func (t Type) DistributedDims() int {
	n := 0
	for _, d := range t.Dims {
		if d.Distributed() {
			n++
		}
	}
	return n
}

// Equal reports whether two types are the same class of distributions.
func (t Type) Equal(o Type) bool {
	if len(t.Dims) != len(o.Dims) {
		return false
	}
	for i := range t.Dims {
		if !t.Dims[i].Equal(o.Dims[i]) {
			return false
		}
	}
	return true
}

func (t Type) String() string {
	parts := make([]string, len(t.Dims))
	for i, d := range t.Dims {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}
