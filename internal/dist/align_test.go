package dist

import (
	"math/rand"
	"testing"

	"repro/internal/index"
)

func TestAlignmentApplyTranspose(t *testing.T) {
	// Paper Example 1: ALIGN D(I,J,K) WITH C(J,I,K)
	al := NewAlignment(Axis(1), Axis(0), Axis(2))
	got := al.Apply(index.Point{3, 7, 9})
	if !got.Equal(index.Point{7, 3, 9}) {
		t.Fatalf("apply = %v", got)
	}
}

func TestAlignmentValidate(t *testing.T) {
	aDom := index.Dim(10)
	bDom := index.Dim(10, 10)
	if err := NewAlignment(Axis(0), AxisConst(3)).Validate(aDom, bDom); err != nil {
		t.Fatalf("valid alignment rejected: %v", err)
	}
	if err := NewAlignment(Axis(0)).Validate(aDom, bDom); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if err := NewAlignment(Axis(0), AxisConst(11)).Validate(aDom, bDom); err == nil {
		t.Fatal("out-of-bounds constant accepted")
	}
	if err := NewAlignment(AxisAffine(0, 1, 5), AxisConst(1)).Validate(aDom, bDom); err == nil {
		t.Fatal("image overflow accepted")
	}
	if err := NewAlignment(Axis(0), Axis(0)).Validate(aDom, bDom); err == nil {
		t.Fatal("doubly-referenced source dim accepted")
	}
	// stride-2 image of 1..5 is 2..10: fits
	if err := NewAlignment(AxisAffine(0, 2, 0), AxisConst(1)).Validate(index.Dim(5), bDom); err != nil {
		t.Fatalf("stride alignment rejected: %v", err)
	}
}

// checkConstruct verifies δ_A(i) = δ_B(α(i)) for every point of A.
func checkConstruct(t *testing.T, al Alignment, bDist *Distribution, aDom index.Domain) *Distribution {
	t.Helper()
	aDist, err := Construct(al, bDist, aDom)
	if err != nil {
		t.Fatalf("construct: %v", err)
	}
	aDom.WholeSection().ForEach(func(p index.Point) bool {
		want := bDist.Owner(al.Apply(p))
		got := aDist.Owner(p)
		if got != want {
			t.Fatalf("owner_A%v = %d, owner_B(α%v) = %d (A: %v, B: %v)", p, got, p, want, aDist, bDist)
		}
		return true
	})
	return aDist
}

func TestConstructIdentity(t *testing.T) {
	tg := target1(t, 3)
	b := MustNew(NewType(BlockDim()), index.Dim(12), tg)
	a := checkConstruct(t, Identity(1), b, index.Dim(12))
	// identity alignment over BLOCK derives a general block with the same
	// segments
	if a.LocalCount(0) != b.LocalCount(0) {
		t.Error("identity alignment should preserve counts")
	}
}

func TestConstructTranspose(t *testing.T) {
	tg := target2(t, 2, 2)
	// C(10,10) DIST(BLOCK, CYCLIC)
	c := MustNew(NewType(BlockDim(), CyclicDim(1)), index.Dim(10, 10), tg)
	// D(I,J) WITH C(J,I): D dim0 inherits C dim1 (CYCLIC on target dim 1),
	// D dim1 inherits C dim0 (BLOCK on target dim 0).
	d := checkConstruct(t, Transpose2D(), c, index.Dim(10, 10))
	typ := d.DistType()
	if typ.Dims[0].Kind != Cyclic || typ.Dims[1].Kind != BBlock && typ.Dims[1].Kind != Block {
		t.Errorf("derived type = %v", typ)
	}
	if d.ProcDim(0) != 1 || d.ProcDim(1) != 0 {
		t.Errorf("derived binding = %d,%d", d.ProcDim(0), d.ProcDim(1))
	}
}

func TestConstructOffsetBlock(t *testing.T) {
	tg := target1(t, 4)
	b := MustNew(NewType(BlockDim()), index.Dim(20), tg)
	// A(1:16) aligned with B(I+2): owner_A(x) = owner_B(x+2)
	al := NewAlignment(AxisAffine(0, 1, 2))
	a := checkConstruct(t, al, b, index.Dim(16))
	if a.DistType().Dims[0].Kind != BBlock {
		t.Errorf("offset block should derive B_BLOCK, got %v", a.DistType())
	}
}

func TestConstructOffsetCyclicPhase(t *testing.T) {
	tg := target1(t, 3)
	b := MustNew(NewType(CyclicDim(2)), index.Dim(30), tg)
	al := NewAlignment(AxisAffine(0, 1, 4))
	a := checkConstruct(t, al, b, index.Dim(26))
	spec := a.DistType().Dims[0]
	if spec.Kind != Cyclic || spec.Phase == 0 {
		t.Errorf("offset cyclic should derive phased CYCLIC, got %v", spec)
	}
}

func TestConstructStrideOverCyclicRejected(t *testing.T) {
	tg := target1(t, 2)
	b := MustNew(NewType(CyclicDim(1)), index.Dim(30), tg)
	al := NewAlignment(AxisAffine(0, 2, 0))
	if _, err := Construct(al, b, index.Dim(15)); err == nil {
		t.Fatal("stride over CYCLIC should be rejected")
	}
}

func TestConstructStrideOverBlock(t *testing.T) {
	tg := target1(t, 4)
	b := MustNew(NewType(BlockDim()), index.Dim(40), tg)
	al := NewAlignment(AxisAffine(0, 2, 0)) // A(i) ↦ B(2i)
	checkConstruct(t, al, b, index.Dim(20))
}

func TestConstructConstAxis(t *testing.T) {
	tg := target2(t, 2, 2)
	b := MustNew(NewType(BlockDim(), BlockDim()), index.Dim(10, 10), tg)
	// A(I) WITH B(I, 8): pins target dim 1 to owner of column 8 (coord 1)
	al := NewAlignment(Axis(0), AxisConst(8))
	a := checkConstruct(t, al, b, index.Dim(10))
	if a.Replicated() {
		t.Error("const axis should pin, not replicate")
	}
	// A's owners all have second coordinate 1: ranks 2,3 (column-major)
	for i := 1; i <= 10; i++ {
		o := a.Owner(index.Point{i})
		if o != 2 && o != 3 {
			t.Errorf("owner(%d) = %d, want in {2,3}", i, o)
		}
	}
}

func TestConstructUnreferencedSourceDim(t *testing.T) {
	tg := target1(t, 2)
	b := MustNew(NewType(BlockDim()), index.Dim(10), tg)
	// A(I,J) WITH B(I): J unreferenced → elided
	al := NewAlignment(Axis(0))
	a, err := Construct(al, b, index.Dim(10, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.DistType().Dims[1].Kind != Elided {
		t.Errorf("unreferenced dim should be elided: %v", a.DistType())
	}
	for j := 1; j <= 6; j++ {
		if a.Owner(index.Point{7, j}) != b.Owner(index.Point{7}) {
			t.Error("owner must not depend on unreferenced dim")
		}
	}
}

func TestConstructPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tg := target2(t, 2, 3)
	for trial := 0; trial < 40; trial++ {
		bn0, bn1 := 10+rng.Intn(20), 12+rng.Intn(20)
		bDom := index.Dim(bn0, bn1)
		specs0 := []DimSpec{BlockDim(), CyclicDim(1 + rng.Intn(3)), ElidedDim()}
		specs1 := []DimSpec{BlockDim(), CyclicDim(1 + rng.Intn(3)), ElidedDim()}
		b, err := New(NewType(specs0[rng.Intn(3)], specs1[rng.Intn(3)]), bDom, tg)
		if err != nil {
			t.Fatal(err)
		}
		// random alignment: transpose or identity, with small offsets
		o0, o1 := rng.Intn(3), rng.Intn(3)
		a0 := 4 + rng.Intn(bn0-4-o0)
		a1 := 4 + rng.Intn(bn1-4-o1)
		var al Alignment
		var aDom index.Domain
		if rng.Intn(2) == 0 {
			al = NewAlignment(AxisAffine(0, 1, o0), AxisAffine(1, 1, o1))
			aDom = index.Dim(a0, a1)
		} else {
			al = NewAlignment(AxisAffine(1, 1, o0), AxisAffine(0, 1, o1))
			aDom = index.Dim(a1, a0)
		}
		checkConstruct(t, al, b, aDom)
	}
}

func TestExtract(t *testing.T) {
	tg := target1(t, 3)
	b := MustNew(NewType(BlockDim()), index.Dim(12), tg)
	a, err := Extract(b, index.Dim(9))
	if err != nil {
		t.Fatal(err)
	}
	if !a.DistType().Equal(b.DistType()) {
		t.Error("extraction should preserve the distribution type")
	}
	// BLOCK re-applied to extent 9 on 3 procs: p0 1-3, p1 4-6, p2 7-9
	if a.Owner(index.Point{4}) != 1 {
		t.Error("extracted distribution owner wrong")
	}
	if _, err := Extract(b, index.Dim(4, 4)); err == nil {
		t.Error("rank mismatch extraction should fail")
	}
	// extraction of irregular dist onto different extent fails validation
	sb := MustNew(NewType(SBlockDim(4, 4, 4)), index.Dim(12), tg)
	if _, err := Extract(sb, index.Dim(9)); err == nil {
		t.Error("S_BLOCK extraction onto wrong extent should fail")
	}
}

func TestMatchingBasics(t *testing.T) {
	blockCyclic := NewType(BlockDim(), CyclicDim(2))
	if !NewPattern(PBlock(), PCyclic(2)).Matches(blockCyclic) {
		t.Error("exact match failed")
	}
	if NewPattern(PBlock(), PCyclic(3)).Matches(blockCyclic) {
		t.Error("wrong K matched")
	}
	if !NewPattern(PBlock(), PCyclicAny()).Matches(blockCyclic) {
		t.Error("CYCLIC(*) should match CYCLIC(2)")
	}
	if !NewPattern(PBlock(), PAny()).Matches(blockCyclic) {
		t.Error("(BLOCK,*) should match")
	}
	if !AnyPattern().Matches(blockCyclic) {
		t.Error("* should match everything")
	}
	// implicit trailing *: (BLOCK) matches (BLOCK, CYCLIC(2))
	if !NewPattern(PBlock()).Matches(blockCyclic) {
		t.Error("short pattern should pad with *")
	}
	if NewPattern(PBlock(), PCyclic(2), PAny()).Matches(blockCyclic) {
		t.Error("over-long pattern should not match")
	}
	// CYCLIC pattern matches phased CYCLIC of same K
	phased := NewType(DimSpec{Kind: Cyclic, K: 2, Phase: 5})
	if !NewPattern(PCyclic(2)).Matches(phased) {
		t.Error("phase should be ignored by matching")
	}
}

func TestMatchingIrregular(t *testing.T) {
	sb := NewType(SBlockDim(2, 3))
	if !NewPattern(PSBlock()).Matches(sb) {
		t.Error("S_BLOCK(*) should match")
	}
	if NewPattern(PBBlock()).Matches(sb) {
		t.Error("B_BLOCK pattern should not match S_BLOCK")
	}
	exact := NewPattern(DimPattern{Kind: SBlock, Sizes: []int{2, 3}})
	if !exact.Matches(sb) {
		t.Error("exact sizes should match")
	}
	wrong := NewPattern(DimPattern{Kind: SBlock, Sizes: []int{3, 2}})
	if wrong.Matches(sb) {
		t.Error("wrong sizes should not match")
	}
}

func TestPatternOf(t *testing.T) {
	typ := NewType(BlockDim(), CyclicDim(3), SBlockDim(1, 2), ElidedDim())
	if !PatternOf(typ).Matches(typ) {
		t.Error("PatternOf(t) must match t")
	}
	other := NewType(BlockDim(), CyclicDim(4), SBlockDim(1, 2), ElidedDim())
	if PatternOf(typ).Matches(other) {
		t.Error("PatternOf(t) must not match different K")
	}
}

func TestRangeAllows(t *testing.T) {
	// Paper Example 2: RANGE ((BLOCK, BLOCK), (*, CYCLIC))
	r := Range{
		NewPattern(PBlock(), PBlock()),
		NewPattern(PAny(), PCyclic(1)),
	}
	if !r.Allows(NewType(BlockDim(), BlockDim())) {
		t.Error("(BLOCK,BLOCK) should be allowed")
	}
	if !r.Allows(NewType(CyclicDim(5), CyclicDim(1))) {
		t.Error("(CYCLIC(5),CYCLIC) should be allowed via (*,CYCLIC)")
	}
	// Initial dist of Example 2 is (BLOCK, CYCLIC): allowed via (*, CYCLIC)
	if !r.Allows(NewType(BlockDim(), CyclicDim(1))) {
		t.Error("(BLOCK,CYCLIC) should be allowed")
	}
	if r.Allows(NewType(BlockDim(), CyclicDim(2))) {
		t.Error("(BLOCK,CYCLIC(2)) should be rejected")
	}
	var empty Range
	if !empty.Allows(NewType(BlockDim())) {
		t.Error("empty range allows everything")
	}
	if empty.String() != "RANGE(*)" || r.String() == "" {
		t.Error("strings")
	}
}

func TestConstructInheritsPins(t *testing.T) {
	tg := target2(t, 2, 2)
	b := MustNew(NewType(BlockDim(), BlockDim()), index.Dim(8, 8), tg)
	// A1(I) WITH B(I,3) pins dim1; A2(J) WITH A1... requires chaining
	// through the derived distribution.
	a1 := checkConstruct(t, NewAlignment(Axis(0), AxisConst(3)), b, index.Dim(8))
	a2 := checkConstruct(t, Identity(1), a1, index.Dim(8))
	for i := 1; i <= 8; i++ {
		if a2.Owner(index.Point{i}) != a1.Owner(index.Point{i}) {
			t.Error("chained construct must preserve owners")
		}
	}
}
