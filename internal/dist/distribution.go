package dist

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/index"
)

// Target abstracts the processor section a distribution maps onto
// (machine.ProcSection implements it).  Coordinates are dense and 0-based
// per dimension.
type Target interface {
	NDims() int
	Extent(k int) int
	Size() int
	RankOf(coords []int) int
	CoordsOf(rank int) ([]int, bool)
	Ranks() []int
	String() string
}

// Distribution is a Type applied to an index domain and a target — the
// δ_A of Definition 1: an index mapping from I^A to the powerset of I^R.
//
// Array dimensions bind to target dimensions in order: the k-th
// distributed (non-elided) array dimension consumes the k-th *free*
// target dimension.  Target dimensions may also be pinned to a fixed
// coordinate (arising from constant alignment axes, e.g. ALIGN A(I) WITH
// B(I,3)).  Target dimensions that are neither consumed nor pinned
// replicate the array across that dimension — each element then has
// several owners, which Definition 1 explicitly permits.
type Distribution struct {
	typ    Type
	domain index.Domain
	target Target

	// procDim[k] is the target dimension consumed by array dimension k,
	// or -1 for elided dimensions.
	procDim []int
	// fixed[td] pins target dimension td to a coordinate, or -1.
	fixed []int
	// replDims lists target dimensions that replicate.
	replDims []int

	fpOnce sync.Once
	fp     string // memoized Fingerprint (distributions are immutable)

	lgOnce sync.Once
	lgTab  []index.Grid // memoized LocalGrid per target rank
}

// New applies a distribution type to a domain and target, binding the
// k-th distributed (non-elided) array dimension to the k-th target
// dimension.  The number of distributed dimensions must not exceed the
// number of target dimensions; irregular specifiers are validated against
// extents.
func New(typ Type, dom index.Domain, target Target) (*Distribution, error) {
	if typ.Rank() != dom.Rank() {
		return nil, fmt.Errorf("dist: type rank %d != domain rank %d", typ.Rank(), dom.Rank())
	}
	procDim := make([]int, typ.Rank())
	td := 0
	for k, spec := range typ.Dims {
		if !spec.Distributed() {
			procDim[k] = -1
			continue
		}
		if td >= target.NDims() {
			return nil, fmt.Errorf("dist: type %v has more distributed dimensions than target %v has dimensions", typ, target)
		}
		procDim[k] = td
		td++
	}
	return newBound(typ, dom, target, procDim, nil)
}

// newBound builds a distribution with an explicit binding of array
// dimensions to target dimensions (procDim[k] = target dim or -1) and
// optionally pinned target coordinates (fixedIn[td] >= 0).  Alignment
// derivation uses this to express transposed and sliced mappings.
func newBound(typ Type, dom index.Domain, target Target, procDim, fixedIn []int) (*Distribution, error) {
	if typ.Rank() != dom.Rank() {
		return nil, fmt.Errorf("dist: type rank %d != domain rank %d", typ.Rank(), dom.Rank())
	}
	if len(procDim) != typ.Rank() {
		return nil, fmt.Errorf("dist: binding rank %d != type rank %d", len(procDim), typ.Rank())
	}
	d := &Distribution{
		typ:     typ,
		domain:  dom,
		target:  target,
		procDim: make([]int, typ.Rank()),
		fixed:   make([]int, target.NDims()),
	}
	copy(d.procDim, procDim)
	for td := range d.fixed {
		d.fixed[td] = -1
		if fixedIn != nil && fixedIn[td] >= 0 {
			if fixedIn[td] >= target.Extent(td) {
				return nil, fmt.Errorf("dist: fixed coordinate %d out of range for target dim %d (extent %d)", fixedIn[td], td, target.Extent(td))
			}
			d.fixed[td] = fixedIn[td]
		}
	}
	used := make([]bool, target.NDims())
	for k, spec := range typ.Dims {
		td := d.procDim[k]
		if !spec.Distributed() {
			if td != -1 {
				return nil, fmt.Errorf("dist: elided dimension %d bound to target dim %d", k+1, td)
			}
			continue
		}
		if td < 0 || td >= target.NDims() {
			return nil, fmt.Errorf("dist: dimension %d bound to invalid target dim %d", k+1, td)
		}
		if used[td] {
			return nil, fmt.Errorf("dist: target dim %d bound twice", td)
		}
		if d.fixed[td] >= 0 {
			return nil, fmt.Errorf("dist: target dim %d both bound and pinned", td)
		}
		used[td] = true
		if err := spec.validate(dom.Lo[k], dom.Extent(k), target.Extent(td)); err != nil {
			return nil, fmt.Errorf("dist: dimension %d: %w", k+1, err)
		}
	}
	for td := 0; td < target.NDims(); td++ {
		if !used[td] && d.fixed[td] < 0 {
			d.replDims = append(d.replDims, td)
		}
	}
	return d, nil
}

// MustNew is New that panics on error (for tests and literals).
func MustNew(typ Type, dom index.Domain, target Target) *Distribution {
	d, err := New(typ, dom, target)
	if err != nil {
		panic(err)
	}
	return d
}

// DistType returns the distribution type (used by IDT and DCASE).
func (d *Distribution) DistType() Type { return d.typ }

// Domain returns the array index domain the distribution applies to.
func (d *Distribution) Domain() index.Domain { return d.domain }

// Target returns the processor section.
func (d *Distribution) Target() Target { return d.target }

// Replicated reports whether elements have more than one owner.
func (d *Distribution) Replicated() bool { return len(d.replDims) > 0 }

// ReplicationDegree returns the number of owners per element.
func (d *Distribution) ReplicationDegree() int {
	n := 1
	for _, td := range d.replDims {
		n *= d.target.Extent(td)
	}
	return n
}

// ProcDim returns the target dimension consumed by array dimension k, or
// -1 if dimension k is elided.
func (d *Distribution) ProcDim(k int) int { return d.procDim[k] }

// OwnerCoord returns the target coordinate along ProcDim(k) owning global
// index i of dimension k.  Panics for elided dimensions.
func (d *Distribution) OwnerCoord(k, i int) int {
	td := d.procDim[k]
	if td < 0 {
		panic("dist: OwnerCoord on elided dimension")
	}
	return d.typ.Dims[k].owner(i, d.domain.Lo[k], d.domain.Extent(k), d.target.Extent(td))
}

// Owner returns the primary owner rank of point p (replicated dimensions
// at coordinate 0).
func (d *Distribution) Owner(p index.Point) int {
	coords := make([]int, d.target.NDims())
	for td := range coords {
		if d.fixed[td] >= 0 {
			coords[td] = d.fixed[td]
		}
	}
	for k, td := range d.procDim {
		if td >= 0 {
			coords[td] = d.OwnerCoord(k, p[k])
		}
	}
	return d.target.RankOf(coords)
}

// Owners returns all owner ranks of point p (more than one only under
// replication).
func (d *Distribution) Owners(p index.Point) []int {
	base := make([]int, d.target.NDims())
	for td := range base {
		if d.fixed[td] >= 0 {
			base[td] = d.fixed[td]
		}
	}
	for k, td := range d.procDim {
		if td >= 0 {
			base[td] = d.OwnerCoord(k, p[k])
		}
	}
	if len(d.replDims) == 0 {
		return []int{d.target.RankOf(base)}
	}
	out := []int{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(d.replDims) {
			out = append(out, d.target.RankOf(base))
			return
		}
		td := d.replDims[i]
		for c := 0; c < d.target.Extent(td); c++ {
			base[td] = c
			rec(i + 1)
		}
		base[td] = 0
	}
	rec(0)
	return out
}

// IsLocal reports whether rank owns point p.
func (d *Distribution) IsLocal(rank int, p index.Point) bool {
	coords, ok := d.target.CoordsOf(rank)
	if !ok {
		return false
	}
	for td, c := range coords {
		if d.fixed[td] >= 0 && d.fixed[td] != c {
			return false
		}
	}
	for k, td := range d.procDim {
		if td >= 0 && d.OwnerCoord(k, p[k]) != coords[td] {
			return false
		}
	}
	return true
}

// IsPrimaryRank reports whether rank is a *primary* owner: the replica
// whose coordinates along all replicated target dimensions are zero.
// Under replication each element has several owners; communication
// schedules let only the primary copy send, avoiding duplicate transfers.
func (d *Distribution) IsPrimaryRank(rank int) bool {
	coords, ok := d.target.CoordsOf(rank)
	if !ok {
		return false
	}
	for td, c := range coords {
		if d.fixed[td] >= 0 && d.fixed[td] != c {
			return false
		}
	}
	for _, td := range d.replDims {
		if coords[td] != 0 {
			return false
		}
	}
	return true
}

// LocalGrid returns the set of global indices rank owns, as a Grid of
// per-dimension RunSets.  Ranks outside the target (or off a pinned
// coordinate) own nothing.  The grids are computed once per rank and
// shared (schedule building intersects them per peer on every cache
// miss) — callers must treat the result as read-only.
func (d *Distribution) LocalGrid(rank int) index.Grid {
	if rank >= 0 && rank < d.target.Size() {
		d.lgOnce.Do(func() {
			tab := make([]index.Grid, d.target.Size())
			for r := range tab {
				tab[r] = d.localGrid(r)
			}
			d.lgTab = tab
		})
		return d.lgTab[rank]
	}
	return d.localGrid(rank)
}

func (d *Distribution) localGrid(rank int) index.Grid {
	g := index.Grid{Dims: make([]index.RunSet, d.domain.Rank())}
	coords, ok := d.target.CoordsOf(rank)
	if !ok {
		for k := range g.Dims {
			g.Dims[k] = index.RunSet{}
		}
		return g
	}
	for td, c := range coords {
		if d.fixed[td] >= 0 && d.fixed[td] != c {
			for k := range g.Dims {
				g.Dims[k] = index.RunSet{}
			}
			return g
		}
	}
	for k := range g.Dims {
		g.Dims[k] = d.DimRunSet(k, rankCoord(d, coords, k))
	}
	return g
}

func rankCoord(d *Distribution, coords []int, k int) int {
	td := d.procDim[k]
	if td < 0 {
		return 0
	}
	return coords[td]
}

// DimRunSet returns the indices of array dimension k owned by target
// coordinate c along the dimension's processor dimension.  For elided
// dimensions c is ignored and the full extent is returned.
func (d *Distribution) DimRunSet(k, c int) index.RunSet {
	spec := d.typ.Dims[k]
	lo, n := d.domain.Lo[k], d.domain.Extent(k)
	td := d.procDim[k]
	if td < 0 {
		return spec.runSet(0, lo, n, 1)
	}
	return spec.runSet(c, lo, n, d.target.Extent(td))
}

// LocalCount returns how many elements rank owns.
func (d *Distribution) LocalCount(rank int) int {
	return d.LocalGrid(rank).Count()
}

// LocalShape returns the per-dimension local extents on rank (the shape
// of the dense local storage block, before overlap areas are added).
func (d *Distribution) LocalShape(rank int) []int {
	g := d.LocalGrid(rank)
	out := make([]int, len(g.Dims))
	for k, rs := range g.Dims {
		out[k] = rs.Count()
	}
	return out
}

// LocalIndex returns the per-dimension 0-based local position of global
// point p on its owner (the loc_map of §3.2.1).  The caller must ensure
// p is owned by the rank whose storage is being addressed.
func (d *Distribution) LocalIndex(p index.Point) []int {
	out := make([]int, len(p))
	for k, i := range p {
		td := d.procDim[k]
		np := 1
		if td >= 0 {
			np = d.target.Extent(td)
		}
		out[k] = d.typ.Dims[k].localIndex(i, d.domain.Lo[k], d.domain.Extent(k), np)
	}
	return out
}

// GlobalIndex converts a per-dimension local position on the target
// coordinates of rank back to the global point (inverse of LocalIndex).
func (d *Distribution) GlobalIndex(rank int, li []int) index.Point {
	coords, ok := d.target.CoordsOf(rank)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d outside target %v", rank, d.target))
	}
	p := make(index.Point, len(li))
	for k := range li {
		td := d.procDim[k]
		np, c := 1, 0
		if td >= 0 {
			np = d.target.Extent(td)
			c = coords[td]
		}
		p[k] = d.typ.Dims[k].globalIndex(li[k], c, d.domain.Lo[k], d.domain.Extent(k), np)
	}
	return p
}

// Segment returns rank's contiguous segment (inclusive per-dimension
// bounds) when every distributed dimension is block-family; ok is false
// when a CYCLIC dimension makes the local set non-contiguous or the rank
// owns nothing.  This is the `segment` descriptor component of §3.2.1.
func (d *Distribution) Segment(rank int) (index.Section, bool) {
	for _, spec := range d.typ.Dims {
		if spec.Kind == Cyclic {
			return index.Section{}, false
		}
	}
	g := d.LocalGrid(rank)
	sec := index.Section{Lo: make([]int, g.Rank()), Hi: make([]int, g.Rank()), Stride: make([]int, g.Rank())}
	for k, rs := range g.Dims {
		if rs.Count() == 0 {
			return index.Section{}, false
		}
		sec.Lo[k] = rs[0].Lo
		sec.Hi[k] = rs[len(rs)-1].Hi
		sec.Stride[k] = 1
	}
	return sec, true
}

// Equal reports whether two distributions are identical mappings (same
// type, domain, target identity and binding).  Used by the DISTRIBUTE
// implementation to elide no-op redistributions.
func (d *Distribution) Equal(o *Distribution) bool {
	if d == nil || o == nil {
		return d == o
	}
	if !d.typ.Equal(o.typ) || !d.domain.Equal(o.domain) {
		return false
	}
	// Targets are usually shared pointers; fall back to the printed form
	// (name + section), which identifies the processor set and shape.
	if d.target != o.target && d.target.String() != o.target.String() {
		return false
	}
	if !intsEqual(d.procDim, o.procDim) || !intsEqual(d.fixed, o.fixed) {
		return false
	}
	return true
}

func (d *Distribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v TO %v", d.typ, d.target)
	return b.String()
}

// Fingerprint returns a string identifying the mapping completely (type,
// domain, target, dimension bindings, pinned coordinates).  Two
// distributions with equal fingerprints map every element identically;
// the redistribution schedule cache keys on it, so the string is built
// once and memoized (distributions are immutable after construction) and
// the numeric parts are appended directly rather than formatted.
func (d *Distribution) Fingerprint() string {
	d.fpOnce.Do(func() {
		b := make([]byte, 0, 96)
		for _, spec := range d.typ.Dims {
			b = append(b, 'k')
			b = strconv.AppendInt(b, int64(spec.Kind), 10)
			if spec.Kind == Cyclic {
				b = append(b, ',')
				b = strconv.AppendInt(b, int64(normK(spec.K)), 10)
				b = append(b, '@')
				b = strconv.AppendInt(b, int64(spec.Phase), 10)
			}
			for _, v := range spec.Sizes {
				b = append(b, 's')
				b = strconv.AppendInt(b, int64(v), 10)
			}
			for _, v := range spec.Bounds {
				b = append(b, 'b')
				b = strconv.AppendInt(b, int64(v), 10)
			}
		}
		b = append(b, '|')
		for k := 0; k < d.domain.Rank(); k++ {
			b = strconv.AppendInt(b, int64(d.domain.Lo[k]), 10)
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(d.domain.Hi[k]), 10)
			b = append(b, ',')
		}
		b = append(b, '|')
		b = append(b, d.target.String()...)
		for _, v := range d.procDim {
			b = append(b, '|')
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, '#')
		for _, v := range d.fixed {
			b = append(b, '|')
			b = strconv.AppendInt(b, int64(v), 10)
		}
		d.fp = string(b)
	})
	return d.fp
}
