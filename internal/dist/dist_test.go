package dist

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/machine"
)

// target returns a 1-D processor section of np processors.
func target1(t *testing.T, np int) Target {
	t.Helper()
	m := machine.New(np)
	t.Cleanup(func() { m.Close() })
	return m.ProcsDim("P", np).Whole()
}

// target2 returns a p0 x p1 processor section.
func target2(t *testing.T, p0, p1 int) Target {
	t.Helper()
	m := machine.New(p0 * p1)
	t.Cleanup(func() { m.Close() })
	return m.ProcsDim("R", p0, p1).Whole()
}

func TestBlockOwnership(t *testing.T) {
	tg := target1(t, 3)
	d := MustNew(NewType(BlockDim()), index.Dim(10), tg)
	// ceil(10/3)=4: p0: 1-4, p1: 5-8, p2: 9-10
	wantOwner := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i := 1; i <= 10; i++ {
		if got := d.Owner(index.Point{i}); got != wantOwner[i-1] {
			t.Errorf("owner(%d) = %d want %d", i, got, wantOwner[i-1])
		}
	}
	if c := d.LocalCount(0); c != 4 {
		t.Errorf("count p0 = %d", c)
	}
	if c := d.LocalCount(2); c != 2 {
		t.Errorf("count p2 = %d", c)
	}
	seg, ok := d.Segment(2)
	if !ok || seg.Lo[0] != 9 || seg.Hi[0] != 10 {
		t.Errorf("segment p2 = %v ok=%v", seg, ok)
	}
	// loc_map roundtrip
	li := d.LocalIndex(index.Point{6})
	if li[0] != 1 {
		t.Errorf("localIndex(6) = %v", li)
	}
	if g := d.GlobalIndex(1, []int{1}); g[0] != 6 {
		t.Errorf("globalIndex = %v", g)
	}
}

func TestCyclicOwnership(t *testing.T) {
	tg := target1(t, 2)
	d := MustNew(NewType(CyclicDim(3)), index.Dim(10), tg)
	// k=3, np=2: 1-3→p0, 4-6→p1, 7-9→p0, 10→p1
	owners := map[int]int{1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1, 7: 0, 8: 0, 9: 0, 10: 1}
	for i, w := range owners {
		if got := d.Owner(index.Point{i}); got != w {
			t.Errorf("owner(%d) = %d want %d", i, got, w)
		}
	}
	if d.LocalCount(0) != 6 || d.LocalCount(1) != 4 {
		t.Errorf("counts = %d,%d", d.LocalCount(0), d.LocalCount(1))
	}
	if _, ok := d.Segment(0); ok {
		t.Error("cyclic should not report a contiguous segment")
	}
	// local<->global roundtrip across all elements
	for i := 1; i <= 10; i++ {
		p := index.Point{i}
		owner := d.Owner(p)
		li := d.LocalIndex(p)
		back := d.GlobalIndex(owner, li)
		if back[0] != i {
			t.Errorf("roundtrip %d -> %v -> %v", i, li, back)
		}
	}
	// grid partition: disjoint, total 10
	g0 := d.LocalGrid(0).Dims[0]
	g1 := d.LocalGrid(1).Dims[0]
	if g0.Count()+g1.Count() != 10 {
		t.Errorf("grids don't cover: %v %v", g0, g1)
	}
	if len(g0.Intersect(g1)) != 0 {
		t.Errorf("grids overlap: %v", g0.Intersect(g1))
	}
}

func TestSBlockOwnership(t *testing.T) {
	tg := target1(t, 3)
	d := MustNew(NewType(SBlockDim(2, 5, 3)), index.Dim(10), tg)
	if d.Owner(index.Point{2}) != 0 || d.Owner(index.Point{3}) != 1 || d.Owner(index.Point{7}) != 1 || d.Owner(index.Point{8}) != 2 {
		t.Error("S_BLOCK owners wrong")
	}
	if d.LocalCount(1) != 5 {
		t.Errorf("count p1 = %d", d.LocalCount(1))
	}
	// invalid: sizes don't sum
	if _, err := New(NewType(SBlockDim(2, 2, 2)), index.Dim(10), tg); err == nil {
		t.Error("S_BLOCK sum mismatch should fail")
	}
	if _, err := New(NewType(SBlockDim(5, 5)), index.Dim(10), tg); err == nil {
		t.Error("S_BLOCK wrong processor count should fail")
	}
}

func TestBBlockOwnership(t *testing.T) {
	tg := target1(t, 4)
	// bounds: p0: 1-3, p1: 4-4, p2: (empty), p3: 5-10
	d := MustNew(NewType(BBlockDim(3, 4, 4, 10)), index.Dim(10), tg)
	if d.Owner(index.Point{3}) != 0 || d.Owner(index.Point{4}) != 1 || d.Owner(index.Point{5}) != 3 {
		t.Error("B_BLOCK owners wrong")
	}
	if d.LocalCount(2) != 0 {
		t.Errorf("empty segment count = %d", d.LocalCount(2))
	}
	if d.LocalCount(3) != 6 {
		t.Errorf("p3 count = %d", d.LocalCount(3))
	}
	// invalid: last bound != upper bound
	if _, err := New(NewType(BBlockDim(3, 4, 5, 9)), index.Dim(10), tg); err == nil {
		t.Error("B_BLOCK bad last bound should fail")
	}
	if _, err := New(NewType(BBlockDim(5, 4, 6, 10)), index.Dim(10), tg); err == nil {
		t.Error("B_BLOCK decreasing bounds should fail")
	}
}

func TestPaperExample1(t *testing.T) {
	// REAL C(10,10,10) DIST(BLOCK,BLOCK,:) TO R(1:2,1:2)
	// δC(i,j,k) = {R(⌈i/5⌉,⌈j/5⌉)} for all k.
	tg := target2(t, 2, 2)
	d := MustNew(NewType(BlockDim(), BlockDim(), ElidedDim()), index.Dim(10, 10, 10), tg)
	for _, c := range []struct {
		i, j   int
		coords []int
	}{
		{1, 1, []int{0, 0}}, {5, 5, []int{0, 0}}, {6, 5, []int{1, 0}},
		{5, 6, []int{0, 1}}, {10, 10, []int{1, 1}},
	} {
		for _, k := range []int{1, 5, 10} {
			owner := d.Owner(index.Point{c.i, c.j, k})
			wantRank := c.coords[0] + 2*c.coords[1] // column-major 2x2
			if owner != wantRank {
				t.Errorf("owner(%d,%d,%d) = %d want %d", c.i, c.j, k, owner, wantRank)
			}
		}
	}
	// every rank owns a 5x5x10 brick
	for r := 0; r < 4; r++ {
		if c := d.LocalCount(r); c != 250 {
			t.Errorf("rank %d count = %d", r, c)
		}
	}
	if d.Replicated() {
		t.Error("fully bound distribution should not replicate")
	}
}

func TestReplication(t *testing.T) {
	// 1-D BLOCK onto a 2x3 target: replicated across the 3-wide dim.
	tg := target2(t, 2, 3)
	d := MustNew(NewType(BlockDim()), index.Dim(8), tg)
	if !d.Replicated() || d.ReplicationDegree() != 3 {
		t.Fatalf("replication degree = %d", d.ReplicationDegree())
	}
	owners := d.Owners(index.Point{1})
	if len(owners) != 3 {
		t.Fatalf("owners = %v", owners)
	}
	// element 1 owned by coord (0, 0..2): ranks 0, 2, 4 (column-major 2x3)
	want := map[int]bool{0: true, 2: true, 4: true}
	for _, r := range owners {
		if !want[r] {
			t.Errorf("unexpected owner %d", r)
		}
		if !d.IsLocal(r, index.Point{1}) {
			t.Errorf("IsLocal(%d) false for owner", r)
		}
	}
	if d.IsLocal(1, index.Point{1}) {
		t.Error("rank 1 should not own element 1")
	}
	// each replica owns the same local set
	if !d.LocalGrid(0).Dims[0].Equal(d.LocalGrid(2).Dims[0]) {
		t.Error("replicas should own identical sets")
	}
}

func TestTooManyDistributedDims(t *testing.T) {
	tg := target1(t, 4)
	if _, err := New(NewType(BlockDim(), BlockDim()), index.Dim(4, 4), tg); err == nil {
		t.Fatal("2 distributed dims onto 1-D target should fail")
	}
}

func TestRankMismatch(t *testing.T) {
	tg := target1(t, 2)
	if _, err := New(NewType(BlockDim()), index.Dim(4, 4), tg); err == nil {
		t.Fatal("type rank 1 vs domain rank 2 should fail")
	}
}

func TestLocalGridPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tg := target2(t, 2, 3)
	specsFor := func(extent int, np int) []DimSpec {
		sizes := make([]int, np)
		rem := extent
		for i := 0; i < np-1; i++ {
			s := rng.Intn(rem + 1)
			sizes[i] = s
			rem -= s
		}
		sizes[np-1] = rem
		bounds := make([]int, np)
		acc := 0
		for i, s := range sizes {
			acc += s
			bounds[i] = acc // domain starts at 1 so bound == prefix sum
		}
		return []DimSpec{
			BlockDim(), CyclicDim(1 + rng.Intn(4)),
			SBlockDim(sizes...), BBlockDim(bounds...),
			{Kind: Cyclic, K: 2, Phase: rng.Intn(17)},
		}
	}
	for trial := 0; trial < 60; trial++ {
		e0, e1 := 5+rng.Intn(20), 5+rng.Intn(20)
		dom := index.Dim(e0, e1)
		s0 := specsFor(e0, 2)[rng.Intn(5)]
		s1 := specsFor(e1, 3)[rng.Intn(5)]
		// S_BLOCK/B_BLOCK specs generated for np=2 only work in dim 0
		if s0.Kind == SBlock || s0.Kind == BBlock {
			s0 = BlockDim()
		}
		if s1.Kind == SBlock {
			s1 = SBlockDim(sizesFor(rng, e1, 3)...)
		}
		if s1.Kind == BBlock {
			s1 = BBlockDim(boundsFor(rng, e1, 3)...)
		}
		d, err := New(NewType(s0, s1), dom, tg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Partition: every element owned exactly once, grids match Owner.
		total := 0
		for r := 0; r < 6; r++ {
			g := d.LocalGrid(r)
			total += g.Count()
			g.ForEach(func(p index.Point) bool {
				if d.Owner(p.Clone()) != r {
					t.Fatalf("trial %d: grid of rank %d contains %v owned by %d (dist %v)", trial, r, p, d.Owner(p), d)
				}
				return true
			})
		}
		if total != dom.Size() {
			t.Fatalf("trial %d: grids cover %d of %d (dist %v)", trial, total, dom.Size(), d)
		}
	}
}

func sizesFor(rng *rand.Rand, extent, np int) []int {
	sizes := make([]int, np)
	rem := extent
	for i := 0; i < np-1; i++ {
		s := rng.Intn(rem + 1)
		sizes[i] = s
		rem -= s
	}
	sizes[np-1] = rem
	return sizes
}

func boundsFor(rng *rand.Rand, extent, np int) []int {
	sizes := sizesFor(rng, extent, np)
	bounds := make([]int, np)
	acc := 0
	for i, s := range sizes {
		acc += s
		bounds[i] = acc
	}
	return bounds
}

func TestLocalGlobalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tg := target1(t, 4)
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(40)
		specs := []DimSpec{
			BlockDim(),
			CyclicDim(1 + rng.Intn(5)),
			SBlockDim(sizesFor(rng, n, 4)...),
			BBlockDim(boundsFor(rng, n, 4)...),
			{Kind: Cyclic, K: 3, Phase: rng.Intn(30)},
		}
		d, err := New(NewType(specs[rng.Intn(len(specs))]), index.Dim(n), tg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			p := index.Point{i}
			owner := d.Owner(p)
			li := d.LocalIndex(p)
			if li[0] < 0 || li[0] >= d.LocalCount(owner) {
				t.Fatalf("trial %d: localIndex(%d) = %d outside [0,%d) for %v", trial, i, li[0], d.LocalCount(owner), d)
			}
			if back := d.GlobalIndex(owner, li); back[0] != i {
				t.Fatalf("trial %d: roundtrip %d -> %d for %v", trial, i, back[0], d)
			}
		}
	}
}

func TestTypeEqualAndString(t *testing.T) {
	a := NewType(BlockDim(), CyclicDim(1))
	b := NewType(BlockDim(), CyclicDim(0)) // CYCLIC == CYCLIC(1)
	if !a.Equal(b) {
		t.Error("CYCLIC and CYCLIC(1) should be equal")
	}
	if a.Equal(NewType(BlockDim(), CyclicDim(2))) {
		t.Error("different K should differ")
	}
	if a.String() != "(BLOCK,CYCLIC)" {
		t.Errorf("string = %s", a.String())
	}
	c := NewType(SBlockDim(1, 2), ElidedDim())
	if c.String() != "(S_BLOCK[1 2],:)" {
		t.Errorf("string = %s", c.String())
	}
	if c.DistributedDims() != 1 {
		t.Error("distributed dims")
	}
}

func TestDistributionEqual(t *testing.T) {
	tg := target1(t, 2)
	a := MustNew(NewType(BlockDim()), index.Dim(10), tg)
	b := MustNew(NewType(BlockDim()), index.Dim(10), tg)
	if !a.Equal(b) {
		t.Error("identical distributions should be equal")
	}
	c := MustNew(NewType(CyclicDim(1)), index.Dim(10), tg)
	if a.Equal(c) {
		t.Error("block != cyclic")
	}
	if a.Equal(nil) {
		t.Error("non-nil != nil")
	}
}

func TestFingerprintDistinguishesMappings(t *testing.T) {
	m := machine.New(4)
	t.Cleanup(func() { m.Close() })
	tg := m.ProcsDim("FP", 2, 2).Whole()
	dom := index.Dim(8, 8)
	a := MustNew(NewType(BlockDim(), CyclicDim(1)), dom, tg)
	b := MustNew(NewType(BlockDim(), CyclicDim(1)), dom, tg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal mappings must share a fingerprint")
	}
	// transposed binding through alignment has a different fingerprint
	// even though kinds coincide
	c := MustNew(NewType(CyclicDim(1), BlockDim()), dom, tg)
	d, err := Construct(Transpose2D(), c, dom)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() == a.Fingerprint() {
		t.Fatal("different bindings must not collide")
	}
	// different K
	e := MustNew(NewType(BlockDim(), CyclicDim(2)), dom, tg)
	if e.Fingerprint() == a.Fingerprint() {
		t.Fatal("different parameters must not collide")
	}
	// different domains
	f := MustNew(NewType(BlockDim(), CyclicDim(1)), index.Dim(8, 9), tg)
	if f.Fingerprint() == a.Fingerprint() {
		t.Fatal("different domains must not collide")
	}
}

func TestLocalShapeAndReplicationDegree(t *testing.T) {
	m := machine.New(6)
	t.Cleanup(func() { m.Close() })
	tg := m.ProcsDim("RS", 2, 3).Whole()
	d := MustNew(NewType(BlockDim()), index.Dim(10), tg)
	if d.ReplicationDegree() != 3 {
		t.Fatalf("degree = %d", d.ReplicationDegree())
	}
	if sh := d.LocalShape(0); sh[0] != 5 {
		t.Fatalf("shape = %v", sh)
	}
	if !d.IsPrimaryRank(0) || d.IsPrimaryRank(2) {
		t.Fatal("primary detection wrong")
	}
}
