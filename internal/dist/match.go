package dist

import (
	"strings"
)

// DimPattern matches one dimension of a distribution type in a query
// (paper §2.5: queries in DCASE condition lists, arguments of IDT, and
// the members of a RANGE annotation).  "*" wildcards appear at two
// levels: a whole-dimension wildcard (Any) and a parameter wildcard
// (AnyParam, as in CYCLIC(*)).
type DimPattern struct {
	// Any matches any per-dimension distribution ("*").
	Any bool
	// Kind must match when Any is false.
	Kind Kind
	// AnyParam accepts any parameter for the kind (CYCLIC(*)).
	AnyParam bool
	// K is the CYCLIC block length to match (when !AnyParam).
	K int
	// Sizes/Bounds, when non-nil, require exact irregular parameters.
	Sizes  []int
	Bounds []int
}

// PAny returns the "*" dimension pattern.
func PAny() DimPattern { return DimPattern{Any: true} }

// PBlock matches BLOCK.
func PBlock() DimPattern { return DimPattern{Kind: Block} }

// PCyclic matches CYCLIC(k) exactly (k<=0 means CYCLIC(1)).
func PCyclic(k int) DimPattern { return DimPattern{Kind: Cyclic, K: normK(k)} }

// PCyclicAny matches CYCLIC with any block length — CYCLIC(*).
func PCyclicAny() DimPattern { return DimPattern{Kind: Cyclic, AnyParam: true} }

// PElided matches ":".
func PElided() DimPattern { return DimPattern{Kind: Elided} }

// PSBlock matches any S_BLOCK (parameters ignored).
func PSBlock() DimPattern { return DimPattern{Kind: SBlock, AnyParam: true} }

// PBBlock matches any B_BLOCK (parameters ignored).
func PBBlock() DimPattern { return DimPattern{Kind: BBlock, AnyParam: true} }

// MatchesDim reports whether the pattern accepts the specifier.
func (p DimPattern) MatchesDim(d DimSpec) bool {
	if p.Any {
		return true
	}
	if p.Kind != d.Kind {
		return false
	}
	switch p.Kind {
	case Cyclic:
		return p.AnyParam || normK(p.K) == normK(d.K)
	case SBlock:
		return p.AnyParam || p.Sizes == nil || intsEqual(p.Sizes, d.Sizes)
	case BBlock:
		return p.AnyParam || p.Bounds == nil || intsEqual(p.Bounds, d.Bounds)
	}
	return true
}

func (p DimPattern) String() string {
	if p.Any {
		return "*"
	}
	switch p.Kind {
	case Cyclic:
		if p.AnyParam {
			return "CYCLIC(*)"
		}
		return DimSpec{Kind: Cyclic, K: p.K}.String()
	case SBlock:
		if p.AnyParam || p.Sizes == nil {
			return "S_BLOCK(*)"
		}
		return DimSpec{Kind: SBlock, Sizes: p.Sizes}.String()
	case BBlock:
		if p.AnyParam || p.Bounds == nil {
			return "B_BLOCK(*)"
		}
		return DimSpec{Kind: BBlock, Bounds: p.Bounds}.String()
	}
	return p.Kind.String()
}

// Pattern matches a whole distribution type.
type Pattern struct {
	// Any matches every distribution type (the "*" query).
	Any bool
	// Dims are per-dimension patterns.  A pattern with fewer dimensions
	// than the queried type is padded with implicit "*" (the paper's
	// IDT(B3,(BLOCK(*))) idiom, where only the leading dimensions are
	// constrained); more dimensions than the type never match.
	Dims []DimPattern
}

// NewPattern builds a pattern from dimension patterns.
func NewPattern(dims ...DimPattern) Pattern { return Pattern{Dims: dims} }

// AnyPattern returns the whole-type wildcard.
func AnyPattern() Pattern { return Pattern{Any: true} }

// PatternOf converts a concrete type into the pattern matching exactly
// that type.
func PatternOf(t Type) Pattern {
	dims := make([]DimPattern, t.Rank())
	for i, d := range t.Dims {
		switch d.Kind {
		case Cyclic:
			dims[i] = PCyclic(d.K)
		case SBlock:
			dims[i] = DimPattern{Kind: SBlock, Sizes: d.Sizes}
		case BBlock:
			dims[i] = DimPattern{Kind: BBlock, Bounds: d.Bounds}
		default:
			dims[i] = DimPattern{Kind: d.Kind}
		}
	}
	return Pattern{Dims: dims}
}

// Matches reports whether the pattern accepts the distribution type.
func (p Pattern) Matches(t Type) bool {
	if p.Any {
		return true
	}
	if len(p.Dims) > t.Rank() {
		return false
	}
	for i, dp := range p.Dims {
		if !dp.MatchesDim(t.Dims[i]) {
			return false
		}
	}
	return true
}

func (p Pattern) String() string {
	if p.Any {
		return "*"
	}
	parts := make([]string, len(p.Dims))
	for i, d := range p.Dims {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Range is a distribution range (the RANGE annotation of §2.3): the set
// of distribution types that may be associated with a dynamic array.  A
// nil/empty Range imposes no restriction ("If no distribution range is
// specified, then there is no restriction").
type Range []Pattern

// Allows reports whether the type is permitted by the range.
func (r Range) Allows(t Type) bool {
	if len(r) == 0 {
		return true
	}
	for _, p := range r {
		if p.Matches(t) {
			return true
		}
	}
	return false
}

func (r Range) String() string {
	if len(r) == 0 {
		return "RANGE(*)"
	}
	parts := make([]string, len(r))
	for i, p := range r {
		parts[i] = p.String()
	}
	return "RANGE(" + strings.Join(parts, ", ") + ")"
}
