// Package sem performs the static semantic analysis of Vienna Fortran
// subset programs parsed by internal/lang: it builds the declaration
// environment (PARAMETER constants, processor arrays, data arrays with
// their DIST/DYNAMIC/RANGE/CONNECT/ALIGN annotations), forms the connect
// equivalence classes of §2.3, and enforces the paper's static rules:
//
//   - distribute statements apply to primary arrays only (§2.3 rule 3);
//   - secondary arrays connect to a dynamic primary of the same scope and
//     carry no RANGE or initial distribution of their own;
//   - an initial distribution must lie within the declared RANGE;
//   - statically distributed arrays need a distribution (or a derivable
//     alignment);
//   - DCASE query lists are positional or name-tagged, never mixed, and
//     tags name selectors.
//
// Distribution expressions are abstracted into dist.Pattern values: the
// kinds are always known statically, parameters only when they are
// PARAMETER constants (CYCLIC(K) with runtime K becomes CYCLIC(*);
// S_BLOCK/B_BLOCK bounds arrays are always runtime values).  These
// abstract types are the lattice elements of the reaching-distribution
// analysis in internal/analysis.
package sem

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/lang"
)

// Severity of a diagnostic.
type Severity int

// Severities.
const (
	Error Severity = iota
	Warning
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diag is one diagnostic message.
type Diag struct {
	Pos      lang.Pos
	Severity Severity
	Msg      string
}

func (d Diag) String() string {
	return fmt.Sprintf("%v: %v: %s", d.Pos, d.Severity, d.Msg)
}

// ConnKind mirrors core's connection kinds at the source level.
type ConnKind int

// Connection kinds.
const (
	ConnNone ConnKind = iota
	ConnExtract
	ConnAlign
)

// ArrayInfo is the resolved declaration of one array.
type ArrayInfo struct {
	Name    string
	Rank    int
	Extents []int // -1 where not statically known
	Dynamic bool
	// Range is the declared distribution range (empty = unrestricted).
	Range dist.Range
	// Init is the abstract initial distribution (nil if none).
	Init *dist.Pattern
	// Target is the TO clause of the initial/static DIST ("" = default).
	Target string
	// Conn / Primary describe the connect class membership.
	Conn    ConnKind
	Primary *ArrayInfo
	// Align is the alignment spec of ConnAlign members (and of static
	// ALIGN declarations, with Primary pointing at the target array).
	Align *lang.AlignSpec
	// Secondaries lists the members of C(self) for primaries.
	Secondaries []*ArrayInfo
	// Decl is the declaring statement.
	Decl *lang.DeclStmt
}

// ProcInfo is a declared processor array.
type ProcInfo struct {
	Name    string
	Rank    int
	Extents []int // -1 where runtime ($NP)
}

// Unit is the analyzed program scope.
type Unit struct {
	Prog   *lang.Program
	Params map[string]int
	Procs  map[string]*ProcInfo
	Arrays map[string]*ArrayInfo
	Order  []string
	Diags  []Diag
}

// HasErrors reports whether any Error diagnostics were produced.
func (u *Unit) HasErrors() bool {
	for _, d := range u.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

func (u *Unit) errf(pos lang.Pos, format string, args ...any) {
	u.Diags = append(u.Diags, Diag{Pos: pos, Severity: Error, Msg: fmt.Sprintf(format, args...)})
}

func (u *Unit) warnf(pos lang.Pos, format string, args ...any) {
	u.Diags = append(u.Diags, Diag{Pos: pos, Severity: Warning, Msg: fmt.Sprintf(format, args...)})
}

// Analyze resolves declarations and checks the static rules.
func Analyze(prog *lang.Program) *Unit {
	u := &Unit{
		Prog:   prog,
		Params: map[string]int{},
		Procs:  map[string]*ProcInfo{},
		Arrays: map[string]*ArrayInfo{},
	}
	for _, s := range prog.Stmts {
		u.topLevel(s)
	}
	// executable statements are checked recursively
	u.checkStmts(prog.Stmts)
	return u
}

func (u *Unit) topLevel(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.ParameterStmt:
		for _, d := range st.Defs {
			if _, dup := u.Params[d.Name]; dup {
				u.errf(st.Pos(), "parameter %s redefined", d.Name)
				continue
			}
			v, ok := u.EvalConst(d.Value)
			if !ok {
				u.errf(st.Pos(), "parameter %s has a non-constant value", d.Name)
				continue
			}
			u.Params[d.Name] = v
		}
	case *lang.ProcessorsStmt:
		if _, dup := u.Procs[st.Name]; dup {
			u.errf(st.Pos(), "processor array %s redeclared", st.Name)
			return
		}
		pi := &ProcInfo{Name: st.Name, Rank: len(st.Bounds)}
		for _, b := range st.Bounds {
			lo := 1
			if b[0] != nil {
				if v, ok := u.EvalConst(b[0]); ok {
					lo = v
				} else {
					pi.Extents = append(pi.Extents, -1)
					continue
				}
			}
			if v, ok := u.EvalConst(b[1]); ok {
				pi.Extents = append(pi.Extents, v-lo+1)
			} else {
				pi.Extents = append(pi.Extents, -1)
			}
		}
		u.Procs[st.Name] = pi
	case *lang.DeclStmt:
		u.declStmt(st)
	}
}

func (u *Unit) declStmt(st *lang.DeclStmt) {
	for _, dn := range st.Names {
		if len(dn.Dims) == 0 {
			continue // scalar declaration: no distribution semantics
		}
		if _, dup := u.Arrays[dn.Name]; dup {
			u.errf(st.Pos(), "array %s redeclared", dn.Name)
			continue
		}
		ai := &ArrayInfo{Name: dn.Name, Rank: len(dn.Dims), Dynamic: st.Dynamic, Decl: st}
		for _, b := range dn.Dims {
			lo := 1
			if b[0] != nil {
				if v, ok := u.EvalConst(b[0]); ok {
					lo = v
				} else {
					ai.Extents = append(ai.Extents, -1)
					continue
				}
			}
			if v, ok := u.EvalConst(b[1]); ok {
				ai.Extents = append(ai.Extents, v-lo+1)
			} else {
				ai.Extents = append(ai.Extents, -1)
			}
		}
		u.Arrays[dn.Name] = ai
		u.Order = append(u.Order, dn.Name)

		// RANGE
		for _, r := range st.Range {
			ai.Range = append(ai.Range, u.AbstractPattern(r.Dims))
		}

		switch {
		case st.Connect != nil:
			if !st.Dynamic {
				u.errf(st.Pos(), "%s: CONNECT requires DYNAMIC", dn.Name)
			}
			if st.Dist != nil || len(st.Range) > 0 {
				u.errf(st.Pos(), "%s: secondary arrays take no RANGE or initial DIST of their own", dn.Name)
			}
			primName := st.Connect.Extract
			if st.Connect.Align != nil {
				primName = st.Connect.Align.DstName
			}
			prim, ok := u.Arrays[primName]
			if !ok {
				u.errf(st.Pos(), "%s: CONNECT to unknown array %s", dn.Name, primName)
				break
			}
			if !prim.Dynamic || prim.Conn != ConnNone {
				u.errf(st.Pos(), "%s: CONNECT target %s is not a dynamic primary array", dn.Name, primName)
				break
			}
			ai.Primary = prim
			prim.Secondaries = append(prim.Secondaries, ai)
			if st.Connect.Align != nil {
				ai.Conn = ConnAlign
				ai.Align = st.Connect.Align
				u.checkAlign(st.Pos(), ai, prim, st.Connect.Align)
			} else {
				ai.Conn = ConnExtract
				if prim.Rank != ai.Rank {
					u.errf(st.Pos(), "%s: extraction rank mismatch with %s (%d vs %d)", dn.Name, primName, ai.Rank, prim.Rank)
				}
			}
		case st.Align != nil:
			if st.Dynamic {
				u.errf(st.Pos(), "%s: DYNAMIC alignment must use CONNECT", dn.Name)
			}
			other, ok := u.Arrays[st.Align.DstName]
			if !ok {
				u.errf(st.Pos(), "%s: ALIGN WITH unknown array %s", dn.Name, st.Align.DstName)
				break
			}
			if other.Dynamic {
				u.errf(st.Pos(), "%s: static alignment with dynamic array %s", dn.Name, st.Align.DstName)
			}
			ai.Primary = other
			ai.Align = st.Align
			u.checkAlign(st.Pos(), ai, other, st.Align)
		case st.Dist != nil:
			pat := u.AbstractPattern(st.Dist.Dims)
			ai.Init = &pat
			ai.Target = st.Dist.Target
			if len(st.Dist.Dims) != ai.Rank {
				u.errf(st.Pos(), "%s: DIST has %d components for rank-%d array", dn.Name, len(st.Dist.Dims), ai.Rank)
			}
			if st.Dist.Target != "" {
				if _, ok := u.Procs[st.Dist.Target]; !ok {
					u.errf(st.Pos(), "%s: TO references unknown processor array %s", dn.Name, st.Dist.Target)
				}
			}
			if len(ai.Range) > 0 && !rangeMayAllow(ai.Range, pat) {
				u.errf(st.Pos(), "%s: initial distribution %v violates %v", dn.Name, pat, ai.Range)
			}
		default:
			if !st.Dynamic {
				// An array with no distribution annotation is replicated
				// (every processor holds it whole) — the Fortran default.
				dims := make([]dist.DimPattern, ai.Rank)
				for i := range dims {
					dims[i] = dist.PElided()
				}
				p := dist.NewPattern(dims...)
				ai.Init = &p
			}
			// dynamic with no initial distribution: legal; must be
			// DISTRIBUTEd before access (checked by the flow analysis)
		}
	}
}

// checkAlign validates an alignment spec syntactically: the source index
// list must cover distinct names, target expressions must reference only
// those names (affinely) or constants, and ranks must agree.
func (u *Unit) checkAlign(pos lang.Pos, src, dst *ArrayInfo, al *lang.AlignSpec) {
	if len(al.SrcIdx) != src.Rank {
		u.errf(pos, "%s: alignment lists %d source indices for rank-%d array", src.Name, len(al.SrcIdx), src.Rank)
	}
	if len(al.DstIdx) != dst.Rank {
		u.errf(pos, "%s: alignment has %d target subscripts for rank-%d array %s", src.Name, len(al.DstIdx), dst.Rank, dst.Name)
	}
	seen := map[string]bool{}
	for _, n := range al.SrcIdx {
		if seen[n] {
			u.errf(pos, "%s: duplicate alignment index %s", src.Name, n)
		}
		seen[n] = true
	}
	used := map[string]bool{}
	for _, e := range al.DstIdx {
		if name, _, _, isAffine := u.AffineOf(e, al.SrcIdx); isAffine && name != "" {
			if used[name] {
				u.errf(pos, "%s: alignment index %s used twice", src.Name, name)
			}
			used[name] = true
		} else if _, isConst := u.EvalConst(e); !isConst && !isAffine {
			u.errf(pos, "%s: alignment subscript %v is neither affine in an index nor constant", src.Name, e)
		}
	}
}

// AffineOf decomposes e as stride*IDX + offset over one of the given
// index names; name == "" with ok means a constant.
func (u *Unit) AffineOf(e lang.Expr, idxNames []string) (name string, stride, offset int, ok bool) {
	isIdx := func(n string) bool {
		for _, x := range idxNames {
			if x == n {
				return true
			}
		}
		return false
	}
	switch ex := e.(type) {
	case *lang.IntLit:
		return "", 0, ex.Value, true
	case *lang.Ref:
		if ex.Indices == nil && isIdx(ex.Name) {
			return ex.Name, 1, 0, true
		}
		if v, isConst := u.EvalConst(ex); isConst {
			return "", 0, v, true
		}
		return "", 0, 0, false
	case *lang.BinExpr:
		ln, ls, lo, lok := u.AffineOf(ex.L, idxNames)
		rn, rs, ro, rok := u.AffineOf(ex.R, idxNames)
		if !lok || !rok {
			return "", 0, 0, false
		}
		switch ex.Op {
		case lang.PLUS:
			if ln != "" && rn != "" {
				return "", 0, 0, false
			}
			if ln != "" {
				return ln, ls, lo + ro, true
			}
			return rn, rs, lo + ro, true
		case lang.MINUS:
			if rn != "" {
				return "", 0, 0, false // negative stride unsupported
			}
			return ln, ls, lo - ro, true
		case lang.STAR:
			if ln != "" && rn == "" {
				return ln, ls * ro, lo * ro, true
			}
			if rn != "" && ln == "" {
				return rn, rs * lo, ro * lo, true
			}
			if ln == "" && rn == "" {
				return "", 0, lo * ro, true
			}
		}
		return "", 0, 0, false
	case *lang.UnExpr:
		if ex.Op == lang.MINUS {
			n, _, o, ok := u.AffineOf(ex.X, idxNames)
			if ok && n == "" {
				return "", 0, -o, true
			}
		}
	}
	return "", 0, 0, false
}

// EvalConst evaluates a compile-time constant expression (integers,
// PARAMETER names, + - * /).
func (u *Unit) EvalConst(e lang.Expr) (int, bool) {
	switch ex := e.(type) {
	case *lang.IntLit:
		return ex.Value, true
	case *lang.Ref:
		if ex.Indices != nil {
			return 0, false
		}
		v, ok := u.Params[ex.Name]
		return v, ok
	case *lang.UnExpr:
		if ex.Op == lang.MINUS {
			v, ok := u.EvalConst(ex.X)
			return -v, ok
		}
	case *lang.BinExpr:
		l, lok := u.EvalConst(ex.L)
		r, rok := u.EvalConst(ex.R)
		if !lok || !rok {
			return 0, false
		}
		switch ex.Op {
		case lang.PLUS:
			return l + r, true
		case lang.MINUS:
			return l - r, true
		case lang.STAR:
			return l * r, true
		case lang.SLASH:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		}
	}
	return 0, false
}

// AbstractDim converts a parsed distribution component into the abstract
// domain.
func (u *Unit) AbstractDim(d lang.DistDim) dist.DimPattern {
	switch d.Kind {
	case lang.DBlock:
		return dist.PBlock()
	case lang.DCyclic:
		if d.ArgAny || d.Arg == nil {
			if d.Arg == nil && !d.ArgAny {
				return dist.PCyclic(1) // CYCLIC == CYCLIC(1)
			}
			return dist.PCyclicAny()
		}
		if v, ok := u.EvalConst(d.Arg); ok {
			return dist.PCyclic(v)
		}
		return dist.PCyclicAny()
	case lang.DSBlock:
		return dist.PSBlock()
	case lang.DBBlock:
		return dist.PBBlock()
	case lang.DElided:
		return dist.PElided()
	case lang.DAny:
		return dist.PAny()
	}
	// DExtract is resolved by the flow analysis; abstractly: anything.
	return dist.PAny()
}

// AbstractPattern converts a component list.
func (u *Unit) AbstractPattern(dims []lang.DistDim) dist.Pattern {
	out := make([]dist.DimPattern, len(dims))
	for i, d := range dims {
		out[i] = u.AbstractDim(d)
	}
	return dist.NewPattern(out...)
}

// rangeMayAllow reports whether some pattern of the range may accept some
// concretization of t.
func rangeMayAllow(r dist.Range, t dist.Pattern) bool {
	if len(r) == 0 {
		return true
	}
	for _, p := range r {
		if MayMatch(p, t) {
			return true
		}
	}
	return false
}

// checkStmts walks executable statements recursively.
func (u *Unit) checkStmts(stmts []lang.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *lang.DistributeStmt:
			u.checkDistribute(st)
		case *lang.SelectStmt:
			u.checkSelect(st)
			for _, arm := range st.Arms {
				u.checkStmts(arm.Body)
			}
		case *lang.IfStmt:
			u.checkExpr(st.Cond)
			u.checkStmts(st.Then)
			u.checkStmts(st.Else)
		case *lang.DoStmt:
			u.checkStmts(st.Body)
		case *lang.ForallStmt:
			u.checkStmts(st.Body)
		case *lang.CallStmt:
			for _, a := range st.Args {
				u.checkExpr(a)
			}
		case *lang.AssignStmt:
			u.checkExpr(st.RHS)
		}
	}
}

func (u *Unit) checkExpr(e lang.Expr) {
	switch ex := e.(type) {
	case *lang.IDTExpr:
		if _, ok := u.Arrays[ex.Array]; !ok {
			u.errf(ex.Pos(), "IDT references unknown array %s", ex.Array)
		}
	case *lang.BinExpr:
		u.checkExpr(ex.L)
		u.checkExpr(ex.R)
	case *lang.UnExpr:
		u.checkExpr(ex.X)
	case *lang.Ref:
		for _, ix := range ex.Indices {
			u.checkExpr(ix)
		}
	case *lang.RangeIdx:
		// nothing to check
	}
}

func (u *Unit) checkDistribute(st *lang.DistributeStmt) {
	for _, n := range st.Names {
		ai, ok := u.Arrays[n]
		if !ok {
			u.errf(st.Pos(), "DISTRIBUTE of undeclared array %s", n)
			continue
		}
		if !ai.Dynamic {
			u.errf(st.Pos(), "DISTRIBUTE applied to statically distributed array %s", n)
		}
		if ai.Conn != ConnNone {
			u.errf(st.Pos(), "DISTRIBUTE applied to secondary array %s (apply it to %s)", n, ai.Primary.Name)
		}
		if st.Expr != nil && len(st.Expr.Dims) != ai.Rank {
			u.errf(st.Pos(), "DISTRIBUTE %s: expression has %d components for rank-%d array", n, len(st.Expr.Dims), ai.Rank)
		}
	}
	if st.Expr != nil {
		for _, d := range st.Expr.Dims {
			if d.Kind == lang.DExtract {
				src, ok := u.Arrays[d.From]
				if !ok {
					u.errf(st.Pos(), "extraction from undeclared array %s", d.From)
				} else if !src.Dynamic && src.Init == nil {
					u.warnf(st.Pos(), "extraction from array %s with no distribution annotation", d.From)
				}
			}
		}
		if st.Expr.Target != "" {
			if _, ok := u.Procs[st.Expr.Target]; !ok {
				u.errf(st.Pos(), "TO references unknown processor array %s", st.Expr.Target)
			}
		}
	}
	if st.Align != nil {
		if _, ok := u.Arrays[st.Align.DstName]; !ok {
			u.errf(st.Pos(), "DISTRIBUTE alignment with unknown array %s", st.Align.DstName)
		}
	}
	// NOTRANSFER members must be secondaries of the distributed classes
	for _, n := range st.NoTransfer {
		c, ok := u.Arrays[n]
		if !ok {
			u.errf(st.Pos(), "NOTRANSFER of undeclared array %s", n)
			continue
		}
		legal := false
		for _, pn := range st.Names {
			if p, ok := u.Arrays[pn]; ok && c.Conn != ConnNone && c.Primary == p {
				legal = true
			}
		}
		if !legal {
			u.errf(st.Pos(), "NOTRANSFER array %s is not a secondary of the distributed class(es)", n)
		}
	}
}

func (u *Unit) checkSelect(st *lang.SelectStmt) {
	names := map[string]bool{}
	for _, s := range st.Selectors {
		if _, ok := u.Arrays[s]; !ok {
			u.errf(st.Pos(), "DCASE selector %s is not a declared array", s)
			continue
		}
		names[s] = true
	}
	for _, arm := range st.Arms {
		if arm.Default {
			continue
		}
		tagged, positional := 0, 0
		seen := map[string]bool{}
		for _, q := range arm.Queries {
			if q.Tag == "" {
				positional++
				continue
			}
			tagged++
			if !names[q.Tag] {
				u.errf(arm.Pos(), "name tag %s is not a selector", q.Tag)
			}
			if seen[q.Tag] {
				u.errf(arm.Pos(), "selector %s tagged twice in one query list", q.Tag)
			}
			seen[q.Tag] = true
		}
		if tagged > 0 && positional > 0 {
			u.errf(arm.Pos(), "query list mixes positional and name-tagged queries")
		}
		if positional > len(st.Selectors) {
			u.errf(arm.Pos(), "%d positional queries for %d selectors", positional, len(st.Selectors))
		}
	}
}

// DefMatch reports that query pattern q accepts *every* concretization of
// abstract type t (per dimension; shorter q pads with implicit "*").
func DefMatch(q, t dist.Pattern) bool {
	if q.Any {
		return true
	}
	if len(q.Dims) > len(t.Dims) && !t.Any {
		return false
	}
	if t.Any {
		return len(q.Dims) == 0
	}
	for i, qd := range q.Dims {
		if !defMatchDim(qd, t.Dims[i]) {
			return false
		}
	}
	return true
}

// MayMatch reports that q accepts *some* concretization of t.
func MayMatch(q, t dist.Pattern) bool {
	if q.Any || t.Any {
		return true
	}
	if len(q.Dims) > len(t.Dims) {
		return false
	}
	for i, qd := range q.Dims {
		if !mayMatchDim(qd, t.Dims[i]) {
			return false
		}
	}
	return true
}

func defMatchDim(q, t dist.DimPattern) bool {
	if q.Any {
		return true
	}
	if t.Any {
		return false
	}
	if q.Kind != t.Kind {
		return false
	}
	switch q.Kind {
	case dist.Cyclic:
		if q.AnyParam {
			return true
		}
		return !t.AnyParam && q.K == t.K
	case dist.SBlock, dist.BBlock:
		// abstract types never know irregular parameters; only a
		// parameter-wildcard query definitely matches
		return q.AnyParam || (q.Sizes == nil && q.Bounds == nil)
	}
	return true
}

func mayMatchDim(q, t dist.DimPattern) bool {
	if q.Any || t.Any {
		return true
	}
	if q.Kind != t.Kind {
		return false
	}
	switch q.Kind {
	case dist.Cyclic:
		return q.AnyParam || t.AnyParam || q.K == t.K
	}
	return true
}
