package sem

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/lang"
)

func analyze(t *testing.T, src string) *Unit {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(prog)
}

func wantError(t *testing.T, u *Unit, frag string) {
	t.Helper()
	for _, d := range u.Diags {
		if d.Severity == Error && strings.Contains(d.Msg, frag) {
			return
		}
	}
	t.Fatalf("missing error containing %q; got %v", frag, u.Diags)
}

func wantClean(t *testing.T, u *Unit) {
	t.Helper()
	if u.HasErrors() {
		t.Fatalf("unexpected errors: %v", u.Diags)
	}
}

func TestExample2Semantics(t *testing.T) {
	u := analyze(t, lang.FixtureExample2)
	wantClean(t, u)
	if u.Params["M"] != 16 || u.Params["N"] != 12 {
		t.Fatalf("params: %v", u.Params)
	}
	r2 := u.Procs["R2"]
	if r2 == nil || r2.Rank != 2 || r2.Extents[0] != 2 {
		t.Fatalf("R2: %+v", r2)
	}
	b4 := u.Arrays["B4"]
	if b4 == nil || !b4.Dynamic || len(b4.Range) != 2 || b4.Init == nil || b4.Target != "R2" {
		t.Fatalf("B4: %+v", b4)
	}
	if len(b4.Secondaries) != 2 {
		t.Fatalf("C(B4) secondaries: %d", len(b4.Secondaries))
	}
	a1, a2 := u.Arrays["A1"], u.Arrays["A2"]
	if a1.Conn != ConnExtract || a1.Primary != b4 {
		t.Fatalf("A1: %+v", a1)
	}
	if a2.Conn != ConnAlign || a2.Primary != b4 || a2.Align == nil {
		t.Fatalf("A2: %+v", a2)
	}
	// abstract init: (BLOCK, CYCLIC)
	if !b4.Init.Matches(dist.NewType(dist.BlockDim(), dist.CyclicDim(1))) {
		t.Fatalf("B4 init abstraction: %v", b4.Init)
	}
	b1 := u.Arrays["B1"]
	if b1.Init != nil || b1.Extents[0] != 16 {
		t.Fatalf("B1: %+v", b1)
	}
}

func TestFig1And2Clean(t *testing.T) {
	wantClean(t, analyze(t, lang.FixtureFig1))
	wantClean(t, analyze(t, lang.FixtureFig2))
	wantClean(t, analyze(t, lang.FixtureExample4))
	wantClean(t, analyze(t, lang.FixtureIDT))
}

func TestAbstraction(t *testing.T) {
	u := analyze(t, `
PARAMETER (K = 3)
REAL A(10) DYNAMIC, DIST(CYCLIC(K))
REAL B(10) DYNAMIC, DIST(CYCLIC(KRUNTIME))
REAL C(10,10) DYNAMIC, DIST(B_BLOCK(BNDS), :)
`)
	wantClean(t, u)
	a := u.Arrays["A"].Init
	if a.Dims[0].Kind != dist.Cyclic || a.Dims[0].AnyParam || a.Dims[0].K != 3 {
		t.Fatalf("A init: %+v", a.Dims[0])
	}
	b := u.Arrays["B"].Init
	if b.Dims[0].Kind != dist.Cyclic || !b.Dims[0].AnyParam {
		t.Fatalf("B init: %+v", b.Dims[0])
	}
	c := u.Arrays["C"].Init
	if c.Dims[0].Kind != dist.BBlock || c.Dims[1].Kind != dist.Elided {
		t.Fatalf("C init: %+v", c)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"REAL A(4) DIST(BLOCK)\nREAL A(4) DIST(BLOCK)\n", "redeclared"},
		{"REAL A(4) DYNAMIC, CONNECT(=NOPE)\n", "unknown array"},
		{"REAL S(4) DIST(BLOCK)\nREAL A(4) DYNAMIC, CONNECT(=S)\n", "not a dynamic primary"},
		{"REAL B(4) DYNAMIC\nREAL A(4) DYNAMIC, CONNECT(=B)\nREAL X(4) DYNAMIC, CONNECT(=A)\n", "not a dynamic primary"},
		{"REAL B(4) DYNAMIC\nREAL A(4,4) DYNAMIC, CONNECT(=B)\n", "rank mismatch"},
		{"REAL A(4) DYNAMIC, RANGE((BLOCK)), DIST(CYCLIC)\n", "violates"},
		{"REAL A(4,4) DYNAMIC, DIST(BLOCK)\n", "components"},
		{"REAL A(4) DIST(BLOCK) TO NOWHERE\n", "unknown processor array"},
		{"REAL S(4) DIST(BLOCK)\nDISTRIBUTE S :: (CYCLIC)\n", "statically distributed"},
		{"REAL B(4) DYNAMIC\nREAL A(4) DYNAMIC, CONNECT(=B)\nDISTRIBUTE A :: (CYCLIC)\n", "secondary"},
		{"DISTRIBUTE NOPE :: (BLOCK)\n", "undeclared"},
		{"REAL B(4), C(4) DYNAMIC\nDISTRIBUTE B :: (CYCLIC) NOTRANSFER (C)\n", "not a secondary"},
		{"REAL B(4) DYNAMIC\nSELECT DCASE (B)\nCASE NOPE: (BLOCK)\nEND SELECT\n", "not a selector"},
		{"REAL B(4) DYNAMIC\nREAL C(4) DYNAMIC\nSELECT DCASE (B, C)\nCASE (BLOCK), B: (BLOCK)\nEND SELECT\n", "mixes"},
		{"SELECT DCASE (NOPE)\nCASE DEFAULT\nEND SELECT\n", "not a declared array"},
		{"IF (IDT(NOPE,(BLOCK))) THEN\nENDIF\n", "unknown array"},
		{"PARAMETER (N = 2)\nPARAMETER (N = 3)\n", "redefined"},
		{"REAL B(4) DYNAMIC, CONNECT(=B4), DIST(BLOCK)\n", "no RANGE or initial DIST"},
	}
	for _, c := range cases {
		u := analyze(t, c.src)
		wantError(t, u, c.frag)
	}
}

func TestDefMayMatch(t *testing.T) {
	blockP := dist.NewPattern(dist.PBlock())
	cycAny := dist.NewPattern(dist.PCyclicAny())
	cyc3 := dist.NewPattern(dist.PCyclic(3))
	anyP := dist.NewPattern(dist.PAny())

	// query (BLOCK) vs abstract BLOCK: definite
	if !DefMatch(blockP, blockP) || !MayMatch(blockP, blockP) {
		t.Fatal("block vs block")
	}
	// query CYCLIC(3) vs abstract CYCLIC(*): may but not definite
	if DefMatch(cyc3, cycAny) {
		t.Fatal("CYCLIC(3) should not definitely match CYCLIC(*)")
	}
	if !MayMatch(cyc3, cycAny) {
		t.Fatal("CYCLIC(3) may match CYCLIC(*)")
	}
	// query CYCLIC(*) vs abstract CYCLIC(3): definite
	if !DefMatch(cycAny, cyc3) {
		t.Fatal("CYCLIC(*) definitely matches CYCLIC(3)")
	}
	// query (BLOCK) vs abstract "*": may, not definite
	if DefMatch(blockP, anyP) || !MayMatch(blockP, anyP) {
		t.Fatal("block vs any")
	}
	// mismatched kinds: neither
	if MayMatch(blockP, cyc3) || DefMatch(blockP, cyc3) {
		t.Fatal("block vs cyclic")
	}
	// shorter query pads with *
	bc := dist.NewPattern(dist.PBlock(), dist.PCyclic(2))
	if !DefMatch(blockP, bc) {
		t.Fatal("(BLOCK) should definitely match (BLOCK,CYCLIC(2))")
	}
	// longer query never matches
	if MayMatch(bc, blockP) {
		t.Fatal("longer query matched shorter type")
	}
}

func TestEvalConst(t *testing.T) {
	u := analyze(t, "PARAMETER (N = 10, M = N*2+1)\n")
	wantClean(t, u)
	if u.Params["M"] != 21 {
		t.Fatalf("M = %d", u.Params["M"])
	}
	prog, _ := lang.Parse("X = (3+4)*2-10/5\n")
	v, ok := u.EvalConst(prog.Stmts[0].(*lang.AssignStmt).RHS)
	if !ok || v != 12 {
		t.Fatalf("eval = %d %v", v, ok)
	}
	// $NP is not a compile-time constant
	prog2, _ := lang.Parse("X = $NP\n")
	if _, ok := u.EvalConst(prog2.Stmts[0].(*lang.AssignStmt).RHS); ok {
		t.Fatal("$NP must not be constant")
	}
}

func TestAffineOf(t *testing.T) {
	u := analyze(t, "PARAMETER (C = 5)\n")
	parse := func(s string) lang.Expr {
		prog, err := lang.Parse("X = " + s + "\n")
		if err != nil {
			t.Fatalf("parse %s: %v", s, err)
		}
		return prog.Stmts[0].(*lang.AssignStmt).RHS
	}
	idx := []string{"I", "J"}
	if n, s, o, ok := u.AffineOf(parse("2*I+1"), idx); !ok || n != "I" || s != 2 || o != 1 {
		t.Fatalf("2*I+1 -> %s %d %d %v", n, s, o, ok)
	}
	if n, _, o, ok := u.AffineOf(parse("J-3"), idx); !ok || n != "J" || o != -3 {
		t.Fatalf("J-3 -> %s %d %v", n, o, ok)
	}
	if n, _, o, ok := u.AffineOf(parse("C"), idx); !ok || n != "" || o != 5 {
		t.Fatalf("C -> %q %d %v", n, o, ok)
	}
	if _, _, _, ok := u.AffineOf(parse("I*J"), idx); ok {
		t.Fatal("I*J should not be affine")
	}
}
