package machine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/msg"
	"repro/internal/trace"
)

// ErrEpochRevoked is the typed abort delivered to every operation of a
// membership epoch once a member has been declared dead: the epoch
// View's liveness check fails, SendRetry/RecvRetry stop retrying, and
// the collective returns a wrapped ErrEpochRevoked instead of timing
// out peer by peer.  The SPMD body reacts by calling Ctx.Regroup.
var ErrEpochRevoked = errors.New("machine: membership epoch revoked")

// ErrExcluded is returned by Regroup on a rank that the surviving
// membership has voted out (including a rank that observes itself in
// the failure detector's dead set — the fail-stop contract).  The body
// must return it; Machine.Run treats excluded ranks as expected
// casualties rather than as an SPMD abort.
var ErrExcluded = errors.New("machine: rank excluded from surviving membership")

// epochCheck builds the liveness check an epoch View consults before
// every communication attempt: revoked as soon as any member of the
// epoch is declared dead.
func (m *Machine) epochCheck(phys []int) func() error {
	return func() error {
		if r := m.det.firstDeadOf(phys); r >= 0 {
			return fmt.Errorf("%w: member (physical rank %d) declared dead", ErrEpochRevoked, r)
		}
		return nil
	}
}

// regroupBudget is the per-round agreement deadline: generous enough
// that a survivor still unwinding from an aborted epoch-e operation (at
// worst one full escalated receive per the CommConfig) joins the round
// before anyone suspects it.
func (m *Machine) regroupBudget() time.Duration {
	attempt := m.commCfg.MaxTimeout
	if attempt <= 0 {
		shift := m.commCfg.Retries
		if shift > 10 {
			shift = 10
		}
		attempt = m.commCfg.Timeout << shift
	}
	budget := time.Duration(m.commCfg.Retries+1)*attempt + m.liveness.Window + 250*time.Millisecond
	return budget
}

func encodeMask(mask []bool) []byte {
	bits := make([]int, len(mask))
	for i, b := range mask {
		if b {
			bits[i] = 1
		}
	}
	return msg.EncodeInts(bits)
}

func decodeMask(data []byte, np int) []bool {
	bits := msg.DecodeInts(data)
	mask := make([]bool, np)
	for i := 0; i < np && i < len(bits); i++ {
		mask[i] = bits[i] != 0
	}
	return mask
}

// Regroup transitions this rank from membership epoch e to e+1 after a
// member death: survivors agree on the dead set via a coordinator-free
// exchange of suspected-dead bitmasks over the raw (un-viewed)
// transport, wait for the dead members' goroutines to exit, and install
// a compacted epoch-(e+1) view — renumbered ranks, epoch-folded tags, a
// fresh collective sequence.  Stragglers of the revoked epoch can then
// never match a receive of the new one.
//
// On the dead rank itself (the detector is shared, so a rank sees its
// own death) Regroup returns ErrExcluded, which the body must return.
// Regroup requires WithLiveness and a CommConfig Timeout (a dead rank's
// goroutine can only unwind through receive deadlines).
//
// All survivors must call Regroup (SPMD discipline); it is collective
// over the survivor set and ends with a confirmation barrier on the new
// epoch.
func (c *Ctx) Regroup() error {
	m := c.m
	if m.det == nil {
		return errors.New("machine: Regroup requires WithLiveness")
	}
	if m.commCfg.Timeout <= 0 {
		return errors.New("machine: Regroup requires a CommConfig Timeout (dead ranks unwind through receive deadlines)")
	}
	myPhys := c.phys[c.rank]
	tr := m.Tracer()
	tr.BeginSpan(myPhys, trace.CatPhase, "regroup")
	defer tr.EndSpan(myPhys, trace.CatPhase, "regroup")

	budget := m.regroupBudget()

	// Phase 1: confirm a member death.  Regroup may be entered off any
	// error; if no member is actually dead within the detection window
	// there is nothing to regroup from and the caller's original error
	// stands.
	waitUntil := time.Now().Add(m.liveness.Window + budget)
	for m.det.firstDeadOf(c.phys) < 0 {
		if time.Now().After(waitUntil) {
			return fmt.Errorf("machine: regroup: no member of epoch %d declared dead within %v", c.epoch, m.liveness.Window+budget)
		}
		time.Sleep(m.liveness.Interval)
	}
	dead := m.det.snapshotDead()
	if dead[myPhys] {
		return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrExcluded)
	}

	// Phase 2: coordinator-free agreement.  Every candidate repeatedly
	// exchanges its suspected-dead mask with the other candidates and
	// unions what it hears; a candidate that misses a round deadline is
	// itself suspected.  Masks only grow, so the exchange converges: the
	// round in which nothing changed and every peer echoed my exact mask
	// is the decision round — every participant of that round took the
	// same decision from the same masks.
	suspect := make([]bool, m.np)
	for _, p := range c.phys {
		if dead[p] {
			suspect[p] = true
		}
	}
	newEpoch := c.epoch + 1
	ep := m.transport.Endpoint(myPhys)
	converged := false
	for round := 0; round < m.np+2 && !converged; round++ {
		tag := msg.FoldTag(newEpoch, msg.TagMemberBase+round)
		payload := encodeMask(suspect)
		mine := append([]bool(nil), suspect...)
		for _, p := range c.phys {
			if p == myPhys || suspect[p] {
				continue
			}
			if err := ep.Send(p, tag, payload); err != nil {
				return fmt.Errorf("machine: regroup: agreement send to %d: %w", p, err)
			}
		}
		changed, allEqual := false, true
		roundDeadline := time.Now().Add(budget)
		for _, p := range c.phys {
			if p == myPhys || mine[p] {
				continue
			}
			left := time.Until(roundDeadline)
			if left < time.Millisecond {
				left = time.Millisecond
			}
			pkt, err := ep.RecvTimeout(p, tag, left)
			if err != nil {
				if isClosedErr(err) {
					return fmt.Errorf("machine: regroup: agreement recv from %d: %w", p, err)
				}
				suspect[p] = true
				changed = true
				allEqual = false
				continue
			}
			theirs := decodeMask(pkt.Data, m.np)
			for r, s := range theirs {
				if s != mine[r] {
					allEqual = false
				}
				if s && !suspect[r] {
					suspect[r] = true
					changed = true
				}
			}
		}
		converged = !changed && allEqual
	}
	if !converged {
		return fmt.Errorf("machine: regroup: agreement did not converge after %d rounds", m.np+2)
	}
	if suspect[myPhys] {
		return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrExcluded)
	}
	// A rank that limped through the agreement alone (everyone else
	// converged without it) decides a bogus singleton membership; by the
	// time that happens the shared detector has long declared it dead.
	// The fail-stop re-check turns that divergence into an exclusion.
	if m.det.snapshotDead()[myPhys] {
		return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrExcluded)
	}

	survivors := make([]int, 0, len(c.phys))
	for _, p := range c.phys {
		if !suspect[p] {
			survivors = append(survivors, p)
		}
	}

	// Phase 3: wait for the excluded members' goroutines to exit.  A
	// survivor that takes over a dead member's compacted rank slot will
	// touch per-rank state (array locals, pack buffers) the dead
	// goroutine last wrote; the exit-channel join is the happens-before
	// edge that makes the takeover race-free.  Dead ranks unwind through
	// their receive deadlines, so the wait is bounded by the same retry
	// budget the agreement rounds assume.
	for _, p := range c.phys {
		if !suspect[p] {
			continue
		}
		select {
		case <-m.exits[p]:
		case <-time.After(budget):
			return fmt.Errorf("machine: regroup: excluded rank %d's goroutine still running after %v", p, budget)
		}
	}

	// Phase 4: install the compacted epoch-(e+1) view.
	myView := -1
	for i, p := range survivors {
		if p == myPhys {
			myView = i
		}
	}
	c.epoch = newEpoch
	c.phys = survivors
	c.rank = myView
	c.comm = msg.NewComm(msg.NewView(ep, newEpoch, survivors, m.epochCheck(survivors)))
	c.comm.SetConfig(m.commCfg)
	c.collSeq = 0
	if tr != nil {
		tr.Instant(myPhys, trace.CatPhase, fmt.Sprintf("epoch:%d", newEpoch), myView, int64(len(survivors)))
	}

	// Confirmation barrier on the new epoch: every survivor is present
	// and renumbered before application traffic resumes.
	if err := c.comm.Barrier(); err != nil {
		return fmt.Errorf("machine: regroup: epoch %d confirmation: %w", newEpoch, err)
	}
	return nil
}

// Members returns the physical ranks of the current membership epoch in
// view-rank order (nil without liveness).
func (c *Ctx) Members() []int {
	if c.phys == nil {
		return nil
	}
	return append([]int(nil), c.phys...)
}
