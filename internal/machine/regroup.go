package machine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/msg"
	"repro/internal/trace"
)

// ErrEpochRevoked is the typed abort delivered to every operation of a
// membership epoch once a member has been declared dead: the epoch
// View's liveness check fails, SendRetry/RecvRetry stop retrying, and
// the collective returns a wrapped ErrEpochRevoked instead of timing
// out peer by peer.  The SPMD body reacts by calling Ctx.Regroup.
var ErrEpochRevoked = errors.New("machine: membership epoch revoked")

// ErrExcluded is returned by Regroup on a rank that the surviving
// membership has voted out (including a rank that observes itself in
// the failure detector's dead set — the fail-stop contract).  The body
// must return it; Machine.Run treats excluded ranks as expected
// casualties rather than as an SPMD abort.
var ErrExcluded = errors.New("machine: rank excluded from surviving membership")

// epochCheck builds the liveness check an epoch View consults before
// every communication attempt: revoked as soon as any member of the
// epoch is declared dead.
func (m *Machine) epochCheck(phys []int) func() error {
	return func() error {
		if r := m.det.firstDeadOf(phys); r >= 0 {
			return fmt.Errorf("%w: member (physical rank %d) declared dead", ErrEpochRevoked, r)
		}
		return nil
	}
}

// regroupBudget is the per-round agreement deadline: generous enough
// that a survivor still unwinding from an aborted epoch-e operation (at
// worst one full escalated receive per the CommConfig) joins the round
// before anyone suspects it.
func (m *Machine) regroupBudget() time.Duration {
	attempt := m.commCfg.MaxTimeout
	if attempt <= 0 {
		shift := m.commCfg.Retries
		if shift > 10 {
			shift = 10
		}
		attempt = m.commCfg.Timeout << shift
	}
	budget := time.Duration(m.commCfg.Retries+1)*attempt + m.liveness.Window + 250*time.Millisecond
	return budget
}

// encodeMasks packs the suspected-dead, pending-join, and pending-drain
// masks of one agreement round into a single payload: 3·np bits, dead
// first, joins second, drains last.
func encodeMasks(suspect, join, drain []bool) []byte {
	np := len(suspect)
	bits := make([]int, 3*np)
	for i, b := range suspect {
		if b {
			bits[i] = 1
		}
	}
	for i, b := range join {
		if b {
			bits[np+i] = 1
		}
	}
	for i, b := range drain {
		if b {
			bits[2*np+i] = 1
		}
	}
	return msg.EncodeInts(bits)
}

func decodeMasks(data []byte, np int) (suspect, join, drain []bool) {
	bits := msg.DecodeInts(data)
	suspect, join, drain = make([]bool, np), make([]bool, np), make([]bool, np)
	for i := 0; i < np && i < len(bits); i++ {
		suspect[i] = bits[i] != 0
	}
	for i := 0; i < np && np+i < len(bits); i++ {
		join[i] = bits[np+i] != 0
	}
	for i := 0; i < np && 2*np+i < len(bits); i++ {
		drain[i] = bits[2*np+i] != 0
	}
	return suspect, join, drain
}

// Regroup transitions this rank from membership epoch e to e+1 after a
// member death: survivors agree on the dead set via a coordinator-free
// exchange of suspected-dead bitmasks over the raw (un-viewed)
// transport, wait for the dead members' goroutines to exit, and install
// a compacted epoch-(e+1) view — renumbered ranks, epoch-folded tags, a
// fresh collective sequence.  Stragglers of the revoked epoch can then
// never match a receive of the new one.
//
// On the dead rank itself (the detector is shared, so a rank sees its
// own death) Regroup returns ErrExcluded, which the body must return.
// Regroup requires WithLiveness and a CommConfig Timeout (a dead rank's
// goroutine can only unwind through receive deadlines).
//
// All survivors must call Regroup (SPMD discipline); it is collective
// over the survivor set and ends with a confirmation barrier on the new
// epoch.  Reserved ranks pending in AwaitJoin at the time of the
// regroup are admitted into the new epoch by the same transition, so a
// join racing a concurrent death resolves in one agreement.
func (c *Ctx) Regroup() error {
	return c.transition(transRegroup)
}

// transKind is a membership transition's trigger: what phase 1 must
// confirm before the agreement proceeds.  All three kinds run the same
// combined-mask agreement, so deaths, joins, and drains discovered
// while any transition is underway resolve in that one transition.
type transKind int

const (
	// transRegroup: a member death must be confirmed (Ctx.Regroup).
	transRegroup transKind = iota
	// transAdmit: a pending joiner must exist (Ctx.Admit).
	transAdmit
	// transDrain: a pending voluntary drain must exist (Ctx.Drain).
	transDrain
)

// transition moves this rank from membership epoch e to e+1: survivors
// agree on the dead set, the admitted-joiner set AND the drained set
// via a coordinator-free exchange of (dead, join, drain) bitmask
// triples, wait for the dead members' goroutines to exit, and install a
// compacted epoch-(e+1) view — survivors first in their epoch-e order,
// admitted joiners appended in ascending physical rank.  kind
// distinguishes the entry points: Regroup (a death must be confirmed),
// Admit (a pending joiner must exist), Drain (a pending drain must
// exist); whatever else the masks pick up along the way — deaths
// discovered mid-agreement, joiners registered in time, drains racing a
// death — is resolved by the same decision round.
func (c *Ctx) transition(kind transKind) error {
	m := c.m
	if m.det == nil {
		return errors.New("machine: Regroup requires WithLiveness")
	}
	if m.commCfg.Timeout <= 0 {
		return errors.New("machine: Regroup requires a CommConfig Timeout (dead ranks unwind through receive deadlines)")
	}
	myPhys := c.phys[c.rank]
	tr := m.Tracer()
	tr.BeginSpan(myPhys, trace.CatPhase, "regroup")
	defer tr.EndSpan(myPhys, trace.CatPhase, "regroup")

	budget := m.regroupBudget()
	newEpoch := c.epoch + 1
	// The epoch must stay representable in folded wire tags; past the
	// fold capacity a new epoch's traffic would collide with (or
	// wildcard-match) other epochs'.  Fail loudly here, at the membership
	// layer, rather than corrupting tags downstream.
	if err := msg.CheckEpoch(newEpoch); err != nil {
		return fmt.Errorf("machine: transition to epoch %d: %w", newEpoch, err)
	}

	// Phase 1: confirm the transition's trigger.  A Regroup may be
	// entered off any error; if no member is actually dead within the
	// detection window there is nothing to regroup from and the caller's
	// original error stands.  An Admit needs at least one registered
	// joiner; a Drain at least one registered drain candidate.
	switch kind {
	case transRegroup:
		waitUntil := time.Now().Add(m.liveness.Window + budget)
		for m.det.firstDeadOf(c.phys) < 0 {
			if time.Now().After(waitUntil) {
				return fmt.Errorf("machine: regroup: no member of epoch %d declared dead within %v", c.epoch, m.liveness.Window+budget)
			}
			time.Sleep(m.liveness.Interval)
		}
	case transAdmit:
		if len(m.pendingJoiners(c.phys)) == 0 {
			return fmt.Errorf("machine: admit: no joiner registered with epoch %d", c.epoch)
		}
	case transDrain:
		if len(m.pendingDrains(c.phys)) == 0 {
			return fmt.Errorf("machine: drain: no drain registered with epoch %d", c.epoch)
		}
	}
	dead := m.det.snapshotDead()
	if dead[myPhys] {
		return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrExcluded)
	}

	// Phase 2: coordinator-free agreement.  Every candidate repeatedly
	// exchanges its (suspected-dead, pending-join) mask pair with the
	// other candidates and unions what it hears; a candidate that misses
	// a round deadline is itself suspected.  Masks only grow, so the
	// exchange converges: the round in which nothing changed and every
	// peer echoed my exact masks is the decision round — every
	// participant of that round took the same decision from the same
	// masks.
	suspect := make([]bool, m.np)
	for _, p := range c.phys {
		if dead[p] {
			suspect[p] = true
		}
	}
	join := make([]bool, m.np)
	for _, p := range m.pendingJoiners(c.phys) {
		join[p] = true
	}
	drain := make([]bool, m.np)
	for _, p := range m.pendingDrains(c.phys) {
		drain[p] = true
	}
	ep := m.transport.Endpoint(myPhys)
	converged := false
	for round := 0; round < m.np+2 && !converged; round++ {
		tag := msg.FoldTag(newEpoch, msg.TagMemberBase+round)
		payload := encodeMasks(suspect, join, drain)
		mineS := append([]bool(nil), suspect...)
		mineJ := append([]bool(nil), join...)
		mineD := append([]bool(nil), drain...)
		for _, p := range c.phys {
			if p == myPhys || suspect[p] {
				continue
			}
			if err := ep.Send(p, tag, payload); err != nil {
				return fmt.Errorf("machine: regroup: agreement send to %d: %w", p, err)
			}
		}
		changed, allEqual := false, true
		roundDeadline := time.Now().Add(budget)
		for _, p := range c.phys {
			if p == myPhys || mineS[p] {
				continue
			}
			left := time.Until(roundDeadline)
			if left < time.Millisecond {
				left = time.Millisecond
			}
			pkt, err := ep.RecvTimeout(p, tag, left)
			if err != nil {
				if isClosedErr(err) {
					return fmt.Errorf("machine: regroup: agreement recv from %d: %w", p, err)
				}
				suspect[p] = true
				changed = true
				allEqual = false
				continue
			}
			theirS, theirJ, theirD := decodeMasks(pkt.Data, m.np)
			for r, s := range theirS {
				if s != mineS[r] {
					allEqual = false
				}
				if s && !suspect[r] {
					suspect[r] = true
					changed = true
				}
			}
			for r, s := range theirJ {
				if s != mineJ[r] {
					allEqual = false
				}
				if s && !join[r] {
					join[r] = true
					changed = true
				}
			}
			for r, s := range theirD {
				if s != mineD[r] {
					allEqual = false
				}
				if s && !drain[r] {
					drain[r] = true
					changed = true
				}
			}
		}
		converged = !changed && allEqual
	}
	if !converged {
		return fmt.Errorf("machine: regroup: agreement did not converge after %d rounds", m.np+2)
	}
	if suspect[myPhys] {
		return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrExcluded)
	}
	// A rank that limped through the agreement alone (everyone else
	// converged without it) decides a bogus singleton membership; by the
	// time that happens the shared detector has long declared it dead.
	// The fail-stop re-check turns that divergence into an exclusion.
	if m.det.snapshotDead()[myPhys] {
		return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrExcluded)
	}

	// Drained members: agreed on and still alive (a drain candidate that
	// died mid-agreement is a suspect — the involuntary path wins).  The
	// decision round fixed these masks identically on every participant,
	// so every rank — including the drained one — clears the registry and
	// computes the same shrunken member list.
	var drained []int
	for _, p := range c.phys {
		if drain[p] && !suspect[p] {
			drained = append(drained, p)
		}
	}
	m.drains.remove(drained)
	survivors := make([]int, 0, len(c.phys))
	for _, p := range c.phys {
		if !suspect[p] && !drain[p] {
			survivors = append(survivors, p)
		}
	}
	// Admitted joiners: registered, agreed on, and not themselves
	// declared dead while waiting.  Reserved slots carry the highest
	// physical ranks, so appending them in ascending order keeps the
	// whole member list ascending — and keeps every survivor's view rank
	// unchanged when nobody died.
	isMember := make([]bool, m.np)
	for _, p := range c.phys {
		isMember[p] = true
	}
	var admitted []int
	for p := 0; p < m.np; p++ {
		if join[p] && !suspect[p] && !drain[p] && !isMember[p] && !dead[p] {
			admitted = append(admitted, p)
		}
	}
	members := append(append([]int(nil), survivors...), admitted...)
	if drain[myPhys] {
		// This rank was released by the agreement: it exits here, before
		// the survivors' exit-wait and view install — it neither takes
		// over anyone's slot nor appears in the new epoch's barrier.
		return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrDrained)
	}
	if len(members) == 0 {
		return fmt.Errorf("machine: transition to epoch %d decided an empty membership", newEpoch)
	}

	// Phase 3: wait for the excluded members' goroutines to exit.  A
	// survivor that takes over a dead member's compacted rank slot will
	// touch per-rank state (array locals, pack buffers) the dead
	// goroutine last wrote; the exit-channel join is the happens-before
	// edge that makes the takeover race-free.  Dead ranks unwind through
	// their receive deadlines, so the wait is bounded by the same retry
	// budget the agreement rounds assume.
	for _, p := range c.phys {
		if !suspect[p] {
			continue
		}
		select {
		case <-m.exits[p]:
		case <-time.After(budget):
			return fmt.Errorf("machine: regroup: excluded rank %d's goroutine still running after %v", p, budget)
		}
	}

	// Phase 4: install the epoch-(e+1) view — compacted survivors plus
	// admitted joiners.
	myView := -1
	for i, p := range members {
		if p == myPhys {
			myView = i
		}
	}
	c.epoch = newEpoch
	c.phys = members
	c.rank = myView
	c.comm = msg.NewComm(msg.NewView(ep, newEpoch, members, m.epochCheck(members)))
	c.comm.SetConfig(m.commCfg)
	c.collSeq = 0
	if tr != nil {
		tr.Instant(myPhys, trace.CatPhase, fmt.Sprintf("epoch:%d", newEpoch), myView, int64(len(members)))
	}

	// Welcome the admitted joiners: the new epoch's view rank 0 marks
	// each as engaged (its exit now counts toward run completion) and
	// hands it the member list; every survivor clears them from the
	// pending registry.  The welcome precedes the confirmation barrier,
	// which the joiners take part in.
	if myView == 0 {
		for _, p := range admitted {
			m.run.engage(p)
			if err := ep.Send(p, msg.TagJoinWelcome, msg.EncodeInts(append([]int{newEpoch}, members...))); err != nil {
				return fmt.Errorf("machine: join welcome to %d: %w", p, err)
			}
		}
	}
	m.joins.remove(admitted)

	// Confirmation barrier on the new epoch: every member is present
	// and renumbered before application traffic resumes.
	if err := c.comm.Barrier(); err != nil {
		return fmt.Errorf("machine: regroup: epoch %d confirmation: %w", newEpoch, err)
	}
	return nil
}

// Members returns the physical ranks of the current membership epoch in
// view-rank order (nil without liveness).
func (c *Ctx) Members() []int {
	if c.phys == nil {
		return nil
	}
	return append([]int(nil), c.phys...)
}
