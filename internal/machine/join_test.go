package machine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/msg"
)

// joinMachine builds a machine with base active ranks plus reserve
// parked joiners, liveness, deadlines, and an optional fault plan.
func joinMachine(t *testing.T, base, reserve int, plan *msg.FaultPlan) *Machine {
	t.Helper()
	lc, cc := hbCfg()
	var tr msg.Transport = msg.NewChanTransport(base + reserve)
	if plan != nil {
		tr = msg.NewFaultTransport(tr, plan)
	}
	return New(base, WithReserve(reserve), WithTransport(tr), WithLiveness(lc), WithCommConfig(cc))
}

// TestJoinAdmit: a reserved rank registers via AwaitJoin; the two active
// members agree via PollJoin, Admit it, and all three run collectives on
// the grown epoch-1 view — with the survivors' view ranks unchanged and
// the joiner numbered last.
func TestJoinAdmit(t *testing.T) {
	m := joinMachine(t, 2, 1, nil)
	defer m.Close()
	views := make([]int, 3) // physical rank -> view rank after the join
	err := m.Run(func(ctx *Ctx) error {
		if ctx.Reserved() {
			if err := ctx.AwaitJoin(); err != nil {
				return err
			}
		} else {
			// A few epoch-0 collectives first: the join must not disturb
			// an already-running epoch.
			if err := ctx.Barrier(); err != nil {
				return err
			}
			for {
				grow, err := ctx.PollJoin()
				if err != nil {
					return err
				}
				if grow {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err := ctx.Admit(); err != nil {
				return err
			}
		}
		if ctx.Epoch() != 1 || ctx.NP() != 3 {
			t.Errorf("after join: epoch %d np %d, want 1, 3", ctx.Epoch(), ctx.NP())
		}
		views[ctx.PhysRank()] = ctx.Rank()
		got, err := ctx.Comm().AllreduceInts([]int{ctx.Rank() + 1}, msg.SumInt)
		if err != nil {
			return err
		}
		if got[0] != 6 { // 1+2+3: all three renumbered ranks participated
			t.Errorf("epoch-1 allreduce = %d, want 6", got[0])
		}
		return ctx.Barrier()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if views[0] != 0 || views[1] != 1 || views[2] != 2 {
		t.Fatalf("view numbering = %v, want [0 1 2] (survivors unchanged, joiner last)", views)
	}
	if s := m.Survivors(); len(s) != 3 {
		t.Fatalf("survivors = %v, want all 3", s)
	}
}

// TestJoinNeverAdmitted: a reserved rank whose run ends without an
// admission gets ErrNeverJoined (a non-fatal exit), and the active
// epoch-0 view stays fully operational to the end.
func TestJoinNeverAdmitted(t *testing.T) {
	m := joinMachine(t, 2, 1, nil)
	defer m.Close()
	sawNeverJoined := false
	err := m.Run(func(ctx *Ctx) error {
		if ctx.Reserved() {
			err := ctx.AwaitJoin()
			if errors.Is(err, ErrNeverJoined) {
				sawNeverJoined = true
			} else {
				t.Errorf("AwaitJoin without admission = %v, want ErrNeverJoined", err)
			}
			return err
		}
		for i := 0; i < 3; i++ {
			if err := ctx.Barrier(); err != nil {
				return err
			}
		}
		if ctx.Epoch() != 0 || ctx.NP() != 2 {
			t.Errorf("members drifted to epoch %d np %d, want 0, 2", ctx.Epoch(), ctx.NP())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("never-admitted joiner must not abort the run: %v", err)
	}
	if !sawNeverJoined {
		t.Fatal("reserved rank never saw ErrNeverJoined")
	}
}

// TestAdmitNothingPending: Admit with no registered joiner is a plain
// error on every member — a rejected join — and the epoch-0 view keeps
// working afterwards.
func TestAdmitNothingPending(t *testing.T) {
	m := joinMachine(t, 2, 1, nil)
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		if ctx.Reserved() {
			return nil // never registers
		}
		err := ctx.Admit()
		if err == nil {
			return errors.New("Admit with nothing pending should fail")
		}
		if errors.Is(err, ErrExcluded) || errors.Is(err, ErrEpochRevoked) {
			return errors.New("want a plain no-joiner error, got: " + err.Error())
		}
		if ctx.Epoch() != 0 {
			t.Errorf("failed Admit moved the epoch to %d", ctx.Epoch())
		}
		return ctx.Barrier() // the epoch-e view is still operational
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegroupTwoDeadSameWindow: two ranks go silent inside the same
// liveness window; the mask agreement must converge on the union and
// produce one epoch transition excluding both.
func TestRegroupTwoDeadSameWindow(t *testing.T) {
	lc, cc := hbCfg()
	plan := &msg.FaultPlan{Rules: []msg.FaultRule{
		{Kind: msg.FaultDrop, Rank: 2, Peer: -1, After: 0},
		{Kind: msg.FaultDrop, Rank: 3, Peer: -1, After: 0},
	}}
	m := New(5, WithTransport(msg.NewFaultTransport(msg.NewChanTransport(5), plan)),
		WithLiveness(lc), WithCommConfig(cc))
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		var err error
		for i := 0; i < 400 && err == nil; i++ {
			time.Sleep(5 * time.Millisecond)
			err = ctx.Barrier()
		}
		if err == nil {
			return errors.New("no revocation observed")
		}
		if rerr := ctx.Regroup(); rerr != nil {
			return rerr // both dead ranks exit with ErrExcluded
		}
		if ctx.Epoch() != 1 || ctx.NP() != 3 {
			t.Errorf("after double-death regroup: epoch %d np %d, want 1, 3", ctx.Epoch(), ctx.NP())
		}
		got, err := ctx.Comm().AllreduceInts([]int{ctx.Rank() + 1}, msg.SumInt)
		if err != nil {
			return err
		}
		if got[0] != 6 {
			t.Errorf("epoch-1 allreduce = %d, want 6", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if s := m.Survivors(); len(s) != 3 || s[0] != 0 || s[1] != 1 || s[2] != 4 {
		t.Fatalf("survivors = %v, want [0 1 4]", s)
	}
}

// TestJoinRacesDeath: a joiner registers while a member is dying.  The
// survivors' single Regroup both excludes the dead rank and admits the
// pending joiner — one transition, one new epoch, net size unchanged.
func TestJoinRacesDeath(t *testing.T) {
	m := joinMachine(t, 3, 1, killPlan(t, 1, 0))
	defer m.Close()
	views := make([]int, 4)
	for i := range views {
		views[i] = -1
	}
	err := m.Run(func(ctx *Ctx) error {
		if ctx.Reserved() {
			if err := ctx.AwaitJoin(); err != nil {
				return err
			}
		} else {
			var err error
			for i := 0; i < 400 && err == nil; i++ {
				time.Sleep(5 * time.Millisecond)
				err = ctx.Barrier()
			}
			if err == nil {
				return errors.New("no revocation observed")
			}
			if rerr := ctx.Regroup(); rerr != nil {
				return rerr // the killed rank exits with ErrExcluded
			}
		}
		if ctx.Epoch() != 1 || ctx.NP() != 3 {
			t.Errorf("after join-during-death: epoch %d np %d, want 1, 3", ctx.Epoch(), ctx.NP())
		}
		views[ctx.PhysRank()] = ctx.Rank()
		got, err := ctx.Comm().AllreduceInts([]int{ctx.Rank() + 1}, msg.SumInt)
		if err != nil {
			return err
		}
		if got[0] != 6 {
			t.Errorf("epoch-1 allreduce = %d, want 6", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Members [phys 0, 2] compact to views 0, 1; the joiner (phys 3) is
	// numbered last; the dead rank holds no view.
	if views[0] != 0 || views[1] != -1 || views[2] != 1 || views[3] != 2 {
		t.Fatalf("view numbering = %v, want [0 -1 1 2]", views)
	}
}
